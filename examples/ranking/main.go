// Ranked keyword search (use case Q8): a small keyword-search-over-
// databases scenario in the style the paper's WEIGHT/cost semiring
// targets. Edges between relations carry costs (similarity, authority,
// data quality); a materialized answer view stores its provenance once,
// and different user-specific cost assignments re-rank the same view
// without re-running the query — the paper's argument for storing
// provenance rather than scores.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proql"
)

func main() {
	// Publications join authors via a link table; the Answer view
	// materializes (author, title) pairs reachable through join paths.
	schema := model.NewSchema()
	must(schema.AddRelation(model.MustRelation("Paper",
		[]model.Column{{Name: "pid", Type: model.TypeInt}, {Name: "title", Type: model.TypeString}},
		"pid")))
	must(schema.AddRelation(model.MustRelation("Wrote",
		[]model.Column{{Name: "aid", Type: model.TypeInt}, {Name: "pid", Type: model.TypeInt}},
		"aid", "pid")))
	must(schema.AddRelation(model.MustRelation("Author",
		[]model.Column{{Name: "aid", Type: model.TypeInt}, {Name: "name", Type: model.TypeString}},
		"aid")))
	must(schema.AddRelation(model.MustRelation("Answer",
		[]model.Column{{Name: "name", Type: model.TypeString}, {Name: "title", Type: model.TypeString}},
		"name", "title")))
	v := model.V
	must(schema.AddMapping(model.NewMapping("joinPath",
		model.NewAtom("Answer", v("n"), v("t")),
		model.NewAtom("Author", v("a"), v("n")),
		model.NewAtom("Wrote", v("a"), v("p")),
		model.NewAtom("Paper", v("p"), v("t")),
	)))

	sys, err := core.Open(schema, core.Options{})
	must(err)
	must(sys.InsertLocal("Paper",
		model.Tuple{int64(1), "Provenance Semirings"},
		model.Tuple{int64(2), "Querying Data Provenance"},
	))
	must(sys.InsertLocal("Author",
		model.Tuple{int64(100), "Green"},
		model.Tuple{int64(101), "Karvounarakis"},
		model.Tuple{int64(102), "Tannen"},
	))
	must(sys.InsertLocal("Wrote",
		model.Tuple{int64(100), int64(1)},
		model.Tuple{int64(101), int64(1)},
		model.Tuple{int64(102), int64(1)},
		model.Tuple{int64(101), int64(2)},
		model.Tuple{int64(102), int64(2)},
	))
	must(sys.Run())

	// Ranking model 1: every join edge costs 1 (path length).
	rank(sys, "uniform edge costs", `EVALUATE WEIGHT OF {
		FOR [Answer $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	} ASSIGNING EACH leaf_node $y {
		DEFAULT : SET 1
	}`)

	// Ranking model 2: TF/IDF-ish — papers are cheap, link rows carry
	// the real cost, authors free. Same provenance, new scores.
	rank(sys, "link-weighted costs", `EVALUATE WEIGHT OF {
		FOR [Answer $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	} ASSIGNING EACH leaf_node $y {
		CASE $y in Wrote and $y.aid = 101 : SET 0.25
		CASE $y in Wrote : SET 2
		DEFAULT : SET 0
	}`)
}

func rank(sys *core.System, label, query string) {
	res, err := sys.Query(query)
	must(err)
	fmt.Printf("== Ranking with %s\n", label)
	printRanked(res)
	fmt.Println()
}

func printRanked(res *proql.Result) {
	type scored struct {
		ref  string
		cost float64
	}
	var rows []scored
	for _, ref := range res.SortedRefs("x") {
		v := res.Annotations[ref]
		rows = append(rows, scored{ref.String(), v.(float64)})
	}
	// Lowest cost first (the WEIGHT semiring keeps the cheapest
	// derivation per answer).
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].cost < rows[i].cost {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for i, r := range rows {
		fmt.Printf("%d. %-60s cost=%g\n", i+1, r.ref, r.cost)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
