// Probabilistic query answering (use case Q9, Trio-style): base tuples
// carry independent existence probabilities; the PROBABILITY semiring
// computes each view tuple's event expression from its provenance, and
// ProbabilityOf turns events into numbers (exact inclusion–exclusion
// for small events, seeded Monte Carlo beyond).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/semiring"
)

func main() {
	// Sensor sightings from two unreliable feeds, fused into one view.
	schema := model.NewSchema()
	must(schema.AddRelation(model.MustRelation("FeedA",
		[]model.Column{{Name: "obj", Type: model.TypeString}, {Name: "zone", Type: model.TypeString}},
		"obj", "zone")))
	must(schema.AddRelation(model.MustRelation("FeedB",
		[]model.Column{{Name: "obj", Type: model.TypeString}, {Name: "zone", Type: model.TypeString}},
		"obj", "zone")))
	must(schema.AddRelation(model.MustRelation("Sighting",
		[]model.Column{{Name: "obj", Type: model.TypeString}, {Name: "zone", Type: model.TypeString}},
		"obj", "zone")))
	v := model.V
	must(schema.AddMapping(model.NewMapping("fromA",
		model.NewAtom("Sighting", v("o"), v("z")),
		model.NewAtom("FeedA", v("o"), v("z")))))
	must(schema.AddMapping(model.NewMapping("fromB",
		model.NewAtom("Sighting", v("o"), v("z")),
		model.NewAtom("FeedB", v("o"), v("z")))))

	sys, err := core.Open(schema, core.Options{})
	must(err)
	must(sys.InsertLocal("FeedA",
		model.Tuple{"drone", "north"},
		model.Tuple{"truck", "south"},
	))
	must(sys.InsertLocal("FeedB",
		model.Tuple{"drone", "north"},
		model.Tuple{"boat", "east"},
	))
	must(sys.Run())

	res, err := sys.Query(`EVALUATE PROBABILITY OF {
		FOR [Sighting $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	}`)
	must(err)

	// Feed reliabilities: independent base-event probabilities keyed
	// by tuple identity.
	probs := map[string]float64{}
	for _, tn := range res.MustGraph().Tuples() {
		switch tn.Ref.Rel {
		case "FeedA":
			probs[tn.Ref.String()] = 0.8
		case "FeedB":
			probs[tn.Ref.String()] = 0.6
		}
	}

	fmt.Println("Sighting view with event expressions and probabilities:")
	for _, ref := range res.SortedRefs("x") {
		event := res.Annotations[ref].(semiring.DNF)
		p := semiring.ProbabilityOf(event, probs, 0)
		fmt.Printf("  %-30s event=%-40s P=%.3f\n", ref, event, p)
	}
	fmt.Println()
	fmt.Println("The drone sighting is corroborated by both feeds:")
	fmt.Println("P = 1 - (1-0.8)(1-0.6) = 0.92; single-feed sightings keep their feed's reliability.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
