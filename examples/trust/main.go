// Trust assessment (use case Q7): the paper's running example with
// peer-specific trust policies — distrust mapping m4, distrust animal
// records with length >= 6, and compute which organism tuples should
// be trusted. Also demonstrates the CONFIDENTIALITY semiring (use case
// Q10) over the same provenance: the same materialized provenance
// supports both annotation models, the paper's "generalized
// materialized view" argument.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fixture"
)

func main() {
	ex, err := fixture.System(fixture.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sys := core.Wrap(ex)

	fmt.Println("== Trust (Q7): distrust m4; distrust A tuples with length >= 6")
	res, err := sys.Query(`EVALUATE TRUST OF {
		FOR [O $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	} ASSIGNING EACH leaf_node $y {
		CASE $y in C : SET true
		CASE $y in A and $y.length >= 6 : SET false
		DEFAULT : SET true
	} ASSIGNING EACH mapping $p($z) {
		CASE $p = m4 : SET false
		DEFAULT : SET $z
	}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatResult(res, "x"))

	fmt.Println("\n== Confidentiality (Q10): A records are secret, the rest public")
	res, err = sys.Query(`EVALUATE CONFIDENTIALITY OF {
		FOR [O $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	} ASSIGNING EACH leaf_node $y {
		CASE $y in A : SET 3
		DEFAULT : SET 0
	}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatResult(res, "x"))
	fmt.Println("\nEvery O tuple requires secret clearance: all derivations join through A.")
}
