// Quickstart: declare a two-peer sharing setting, exchange data with
// provenance, and ask the two fundamental provenance questions — how
// was a tuple derived (graph projection) and is it still derivable if
// a base tuple disappears (derivability annotation).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	// Two peers: a source catalog and a derived directory. The
	// directory joins products with their suppliers.
	schema := model.NewSchema()
	must(schema.AddRelation(model.MustRelation("Product",
		[]model.Column{{Name: "pid", Type: model.TypeInt}, {Name: "name", Type: model.TypeString}, {Name: "sid", Type: model.TypeInt}},
		"pid")))
	must(schema.AddRelation(model.MustRelation("Supplier",
		[]model.Column{{Name: "sid", Type: model.TypeInt}, {Name: "city", Type: model.TypeString}},
		"sid")))
	must(schema.AddRelation(model.MustRelation("Directory",
		[]model.Column{{Name: "name", Type: model.TypeString}, {Name: "city", Type: model.TypeString}},
		"name", "city")))
	v := model.V
	must(schema.AddMapping(model.NewMapping("joinCity",
		model.NewAtom("Directory", v("n"), v("c")),
		model.NewAtom("Product", v("p"), v("n"), v("s")),
		model.NewAtom("Supplier", v("s"), v("c")),
	)))

	sys, err := core.Open(schema, core.Options{})
	must(err)
	must(sys.InsertLocal("Product",
		model.Tuple{int64(1), "widget", int64(10)},
		model.Tuple{int64(2), "gadget", int64(10)},
		model.Tuple{int64(3), "widget", int64(20)},
	))
	must(sys.InsertLocal("Supplier",
		model.Tuple{int64(10), "Philadelphia"},
		model.Tuple{int64(20), "Indianapolis"},
	))
	must(sys.Run())

	// Graph projection: every derivation of every Directory tuple.
	res, err := sys.Query(`FOR [Directory $x] INCLUDE PATH [$x] <-+ [] RETURN $x`)
	must(err)
	fmt.Println("Directory tuples and their provenance:")
	fmt.Print(core.FormatResult(res, "x"))
	fmt.Printf("projected subgraph: %d tuple nodes, %d derivations\n\n",
		res.MustGraph().NumTuples(), res.MustGraph().NumDerivations())

	// Derivability: which Directory entries survive if supplier 10 is
	// retracted? (Q5 of the paper, with a trust condition on leaves.)
	res, err = sys.Query(`EVALUATE TRUST OF {
		FOR [Directory $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	} ASSIGNING EACH leaf_node $y {
		CASE $y in Supplier and $y.sid = 10 : SET false
		DEFAULT : SET true
	}`)
	must(err)
	fmt.Println("Derivable without supplier 10?")
	fmt.Print(core.FormatResult(res, "x"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
