// Incremental view maintenance (use case Q5): a curated database
// retracts a base record, and provenance determines which view tuples
// remain derivable — including the subtle case of derivation cycles
// that support each other but lost all external support.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/model"
)

func main() {
	// The running example with mapping m3, which makes C and N derive
	// each other (a cyclic CDSS, as ORCHESTRA permits).
	ex, err := fixture.System(fixture.Options{IncludeM3: true})
	if err != nil {
		log.Fatal(err)
	}
	sys := core.Wrap(ex)

	show := func(header string) {
		fmt.Println(header)
		for _, rel := range []string{"A", "C", "N", "O"} {
			for _, row := range ex.DB.MustTable(rel).SortedRows() {
				fmt.Printf("  %s%s\n", rel, row.Format())
			}
		}
		fmt.Println()
	}
	show("Before retraction:")

	// Retract the curator-entered common name N(1, cn1, false). The
	// derived C(1,cn1) rests on it via m1 — and it, in turn, re-derives
	// N(1,cn1,false) via m3: a cycle with no remaining external
	// support, which must collapse together with O(cn1,7).
	report, err := sys.DeleteLocal("N", []model.Datum{int64(1), "cn1", false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Retracted %d base tuple(s); maintenance removed %d derived tuple(s) and %d derivation(s),\n",
		report.LocalDeleted, report.TuplesDeleted, report.DerivationsDeleted)
	fmt.Printf("visiting only the affected subgraph (%d tuple(s), %d derivation(s)) via the support index.\n\n",
		report.TuplesVisited, report.DerivationsVisited)
	show("After retraction:")

	fmt.Println("Note the C(1,cn1) ⇄ N(1,cn1,false) cycle collapsed: provenance-based")
	fmt.Println("derivability (the fixpoint of Section 2.1) sees that the cycle lost its")
	fmt.Println("only external support, which counting-based maintenance would miss.")
}
