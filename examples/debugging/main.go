// Schema-mapping debugging (use case Q3, SPIDER-style): a mapping
// author suspects one mapping produces bad data. Query the provenance
// for tuples derived through it, inspect the offending derivations,
// and export the projected subgraph as Graphviz DOT for the
// "interactive provenance browser" the paper motivates.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/provgraph"
)

func main() {
	ex, err := fixture.System(fixture.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sys := core.Wrap(ex)

	// Which tuples does the suspicious mapping m5 produce, and from
	// what? (Q3-style query restricted to one mapping.)
	res, err := sys.Query(`FOR [$x] <$p []
		WHERE $p = m5
		INCLUDE PATH [$x] <m5 []
		RETURN $x`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Tuples derived through m5 and their one-step derivations:")
	fmt.Print(core.FormatResult(res, "x"))

	// Full derivation context of one bad tuple, for visualization.
	deep, err := sys.Query(`FOR [O $x]
		WHERE $x.name = 'cn1'
		INCLUDE PATH [$x] <-+ []
		RETURN $x`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFull provenance of O(cn1,...): %d tuple nodes, %d derivations\n",
		deep.MustGraph().NumTuples(), deep.MustGraph().NumDerivations())

	out := "provenance.dot"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := provgraph.WriteDOT(f, deep.MustGraph(), "derivations of O(cn1)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s — render with `dot -Tpng %s -o provenance.png`\n", out, out)
}
