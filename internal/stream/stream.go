// Package stream defines the pull-based iterator abstraction shared by
// the ProQL physical-operator runtimes: the graph backend's operators
// (internal/proql/physplan) stream variable-binding rows through it,
// and the relational backend (internal/relstore) exposes its plans as
// tuple streams through the same interface. Keeping the interface in
// one tiny package lets the engine drive either backend with the same
// drain loop and lets pipeline stages compose without materializing
// intermediate results.
package stream

import "sync"

// Iterator yields values one at a time. Next returns (value, true, nil)
// for each element, and (zero, false, err) when the stream is
// exhausted or failed. Close releases resources (worker goroutines,
// held inputs) and must be safe to call multiple times and after
// exhaustion.
type Iterator[T any] interface {
	Next() (T, bool, error)
	Close()
}

// Func adapts a closure to an Iterator. Close is optional.
type Func[T any] struct {
	NextFn  func() (T, bool, error)
	CloseFn func()
}

// Next implements Iterator.
func (f *Func[T]) Next() (T, bool, error) { return f.NextFn() }

// Close implements Iterator.
func (f *Func[T]) Close() {
	if f.CloseFn != nil {
		f.CloseFn()
	}
}

// Slice streams a materialized slice.
type Slice[T any] struct {
	items []T
	pos   int
}

// FromSlice wraps items in an Iterator.
func FromSlice[T any](items []T) *Slice[T] { return &Slice[T]{items: items} }

// Next implements Iterator.
func (s *Slice[T]) Next() (T, bool, error) {
	var zero T
	if s.pos >= len(s.items) {
		return zero, false, nil
	}
	v := s.items[s.pos]
	s.pos++
	return v, true, nil
}

// Close implements Iterator.
func (s *Slice[T]) Close() { s.items = nil }

// Collect drains an iterator into a slice, closing it.
func Collect[T any](it Iterator[T]) ([]T, error) {
	defer it.Close()
	var out []T
	for {
		v, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}

// Map transforms each element of an iterator.
func Map[T, U any](it Iterator[T], fn func(T) (U, error)) Iterator[U] {
	return &Func[U]{
		NextFn: func() (U, bool, error) {
			var zero U
			v, ok, err := it.Next()
			if err != nil || !ok {
				return zero, false, err
			}
			u, err := fn(v)
			if err != nil {
				return zero, false, err
			}
			return u, true, nil
		},
		CloseFn: it.Close,
	}
}

// OrderedParallel runs every maker concurrently (bounded by workers)
// and yields their elements in maker order: all elements of makers[0]
// first, then makers[1], and so on. The consumer can start draining
// maker 0 while later makers are still producing, so a slow tail does
// not delay the head. A maker or element error cancels the remaining
// work and surfaces on Next.
func OrderedParallel[T any](makers []func() (Iterator[T], error), workers int) Iterator[T] {
	if workers < 1 {
		workers = 1
	}
	type result struct {
		items []T
		err   error
	}
	done := make([]chan result, len(makers))
	for i := range done {
		done[i] = make(chan result, 1)
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	sem := make(chan struct{}, workers)
	go func() {
		for i, mk := range makers {
			select {
			case sem <- struct{}{}:
			case <-stop:
				done[i] <- result{}
				continue
			}
			go func(i int, mk func() (Iterator[T], error)) {
				defer func() { <-sem }()
				it, err := mk()
				if err != nil {
					done[i] <- result{err: err}
					return
				}
				items, err := Collect(it)
				done[i] <- result{items: items, err: err}
			}(i, mk)
		}
	}()

	cur := 0
	var buf []T
	var pos int
	var failed error // sticky: once a maker errs, the stream stays dead
	return &Func[T]{
		NextFn: func() (T, bool, error) {
			var zero T
			if failed != nil {
				return zero, false, failed
			}
			for {
				if pos < len(buf) {
					v := buf[pos]
					pos++
					return v, true, nil
				}
				if cur >= len(makers) {
					return zero, false, nil
				}
				r := <-done[cur]
				cur++
				if r.err != nil {
					failed = r.err
					cancel()
					return zero, false, failed
				}
				buf, pos = r.items, 0
			}
		},
		CloseFn: cancel,
	}
}
