// Package fixture builds the paper's running example (Example 2.1 /
// Figure 1): three data-sharing participants with relations A (animals),
// C (common names), N (names), and O (organisms), inter-related by
// mappings m1–m5. Tests, examples, and the CLI demo all share this
// setting.
package fixture

import (
	"fmt"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/wal"
)

// Example 2.1 mapping names.
const (
	M1 = "m1" // C(i,n)       :- A(i,s,_), N(i,n,false)
	M2 = "m2" // N(i,n,true)  :- A(i,n,_)
	M3 = "m3" // N(i,n,false) :- C(i,n)        (creates a provenance cycle with m1)
	M4 = "m4" // O(n,h,true)  :- A(i,n,h)
	M5 = "m5" // O(n,h,true)  :- A(i,_,h), C(i,n)
)

// Options selects fixture variants.
type Options struct {
	// IncludeM3 adds mapping m3, which makes the provenance graph
	// cyclic at both schema and instance level (C and N derive each
	// other). ProQL unfolding targets acyclic settings, so most tests
	// leave it out; the cyclic-evaluation tests turn it on.
	IncludeM3 bool
	// Exchange options.
	Exchange exchange.Options
}

// Schema builds the Example 2.1 schema with the paper's keys: A keyed
// by id, C by (id, name), N by (id, name, isCanonical) — so the true
// and false name entries of Figure 1 are distinct tuple nodes — and O
// by (name, height).
func Schema(opts Options) (*model.Schema, error) {
	s := model.NewSchema()
	rels := []*model.Relation{
		model.MustRelation("A", []model.Column{
			{Name: "id", Type: model.TypeInt},
			{Name: "sciName", Type: model.TypeString},
			{Name: "length", Type: model.TypeInt},
		}, "id"),
		model.MustRelation("C", []model.Column{
			{Name: "id", Type: model.TypeInt},
			{Name: "name", Type: model.TypeString},
		}, "id", "name"),
		model.MustRelation("N", []model.Column{
			{Name: "id", Type: model.TypeInt},
			{Name: "name", Type: model.TypeString},
			{Name: "isCanonical", Type: model.TypeBool},
		}, "id", "name", "isCanonical"),
		model.MustRelation("O", []model.Column{
			{Name: "name", Type: model.TypeString},
			{Name: "height", Type: model.TypeInt},
			{Name: "isAnimal", Type: model.TypeBool},
		}, "name", "height"),
	}
	for _, r := range rels {
		if err := s.AddRelation(r); err != nil {
			return nil, err
		}
	}
	v, c := model.V, model.C
	mappings := []*model.Mapping{
		model.NewMapping(M1,
			model.NewAtom("C", v("i"), v("n")),
			model.NewAtom("A", v("i"), v("s"), v("_")),
			model.NewAtom("N", v("i"), v("n"), c(false))),
		model.NewMapping(M2,
			model.NewAtom("N", v("i"), v("n"), c(true)),
			model.NewAtom("A", v("i"), v("n"), v("_"))),
		model.NewMapping(M4,
			model.NewAtom("O", v("n"), v("h"), c(true)),
			model.NewAtom("A", v("i"), v("n"), v("h"))),
		model.NewMapping(M5,
			model.NewAtom("O", v("n"), v("h"), c(true)),
			model.NewAtom("A", v("i"), v("_"), v("h")),
			model.NewAtom("C", v("i"), v("n"))),
	}
	if opts.IncludeM3 {
		mappings = append(mappings, model.NewMapping(M3,
			model.NewAtom("N", v("i"), v("n"), c(false)),
			model.NewAtom("C", v("i"), v("n"))))
	}
	for _, m := range mappings {
		if err := s.AddMapping(m); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// System builds the example system, loads the Figure 1 base data, and
// runs update exchange:
//
//	A_l: (1, sn1, 7), (2, sn2, 5)
//	N_l: (1, cn1, false)
//	C_l: (2, cn2)
func System(opts Options) (*exchange.System, error) {
	schema, err := Schema(opts)
	if err != nil {
		return nil, err
	}
	sys, err := exchange.NewSystem(schema, opts.Exchange)
	if err != nil {
		return nil, err
	}
	if err := seedBase(sys); err != nil {
		return nil, err
	}
	return sys, nil
}

// DurableSystem is System over persistent storage in dir: a fresh
// directory is seeded with the Figure 1 base data and exchanged; an
// existing one recovers its instance (checkpoint + log replay, warm
// engine re-attach) without re-seeding, so mutations from earlier
// processes survive restarts.
func DurableSystem(opts Options, dir string, wopts wal.Options) (*exchange.System, *wal.Store, error) {
	schema, err := Schema(opts)
	if err != nil {
		return nil, nil, err
	}
	sys, st, err := exchange.OpenDurable(schema, dir, wopts, opts.Exchange)
	if err != nil {
		return nil, nil, err
	}
	if sys.DB.TotalRows() == 0 {
		if err := seedBase(sys); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	return sys, st, nil
}

// seedBase loads the Figure 1 base data and runs the initial exchange.
func seedBase(sys *exchange.System) error {
	if err := sys.InsertLocal("A",
		model.Tuple{int64(1), "sn1", int64(7)},
		model.Tuple{int64(2), "sn2", int64(5)},
	); err != nil {
		return err
	}
	if err := sys.InsertLocal("N", model.Tuple{int64(1), "cn1", false}); err != nil {
		return err
	}
	if err := sys.InsertLocal("C", model.Tuple{int64(2), "cn2"}); err != nil {
		return err
	}
	return sys.Run()
}

// MustSystem is System for tests and examples that cannot proceed on
// failure.
func MustSystem(opts Options) *exchange.System {
	sys, err := System(opts)
	if err != nil {
		panic(fmt.Sprintf("fixture: %v", err))
	}
	return sys
}
