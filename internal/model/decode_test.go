package model

import "testing"

func TestDecodeDatumsRoundtrip(t *testing.T) {
	cases := [][]Datum{
		nil,
		{int64(0)},
		{int64(-42), "hello", true, false, nil, 3.25},
		{"", "with|pipe", "12:34", "s5:x"},
		{int64(9_000_000_000), -1.5e-7},
	}
	for _, ds := range cases {
		enc := EncodeDatums(ds)
		got, err := DecodeDatums(enc)
		if err != nil {
			t.Fatalf("DecodeDatums(%q): %v", enc, err)
		}
		if len(got) != len(ds) {
			t.Fatalf("DecodeDatums(%q) = %v, want %v", enc, got, ds)
		}
		for i := range ds {
			if !Equal(got[i], ds[i]) {
				t.Errorf("datum %d: got %v, want %v", i, got[i], ds[i])
			}
		}
	}
}

func TestDecodeDatumsMalformed(t *testing.T) {
	for _, enc := range []string{"i", "i12", "x|", "s", "s3:ab", "s-1:|", "sx:|", "fnope|", "T"} {
		if _, err := DecodeDatums(enc); err == nil {
			t.Errorf("DecodeDatums(%q) should fail", enc)
		}
	}
}

func TestTupleRefKeyDatums(t *testing.T) {
	ref := RefFromKey("R", []Datum{int64(7), "cn1"})
	ds, err := ref.KeyDatums()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || !Equal(ds[0], int64(7)) || !Equal(ds[1], "cn1") {
		t.Errorf("KeyDatums = %v", ds)
	}
}
