// Package model defines the shared data vocabulary for the provenance
// system: datums (scalar values), tuples, relation schemas, keys, and
// schema mappings. Every other package — the relational store, the
// Datalog engine, update exchange, the provenance graph, and ProQL —
// speaks in these types.
package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Datum is a scalar database value. The supported dynamic types are
// int64, float64, string, and bool. nil represents SQL NULL (used only
// in ASR padding rows produced by outer joins).
type Datum any

// DatumType identifies the dynamic type of a Datum.
type DatumType int

// Datum types. TypeNull is the type of a nil Datum.
const (
	TypeNull DatumType = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

func (t DatumType) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	}
	return fmt.Sprintf("DatumType(%d)", int(t))
}

// TypeOf reports the dynamic type of d. It panics on unsupported types,
// which indicates a programming error rather than bad data.
func TypeOf(d Datum) DatumType {
	switch d.(type) {
	case nil:
		return TypeNull
	case int64:
		return TypeInt
	case float64:
		return TypeFloat
	case string:
		return TypeString
	case bool:
		return TypeBool
	}
	panic(fmt.Sprintf("model: unsupported datum type %T", d))
}

// Equal reports whether two datums are equal. Datums of different
// dynamic types are never equal (no numeric coercion); NULL equals NULL
// for the purposes of key encoding and map lookups.
func Equal(a, b Datum) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta, tb := TypeOf(a), TypeOf(b)
	if ta != tb {
		return false
	}
	return a == b
}

// Compare orders two datums. NULL sorts before everything; across types
// the order is null < int < float < string < bool, which gives a total
// order for index structures without implicit coercion.
func Compare(a, b Datum) int {
	ta, tb := TypeOf(a), TypeOf(b)
	if ta != tb {
		return int(ta) - int(tb)
	}
	switch ta {
	case TypeNull:
		return 0
	case TypeInt:
		x, y := a.(int64), b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case TypeFloat:
		x, y := a.(float64), b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case TypeString:
		return strings.Compare(a.(string), b.(string))
	case TypeBool:
		x, y := a.(bool), b.(bool)
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		}
		return 1
	}
	panic("model: unreachable")
}

// EncodeDatum appends a canonical, injective string encoding of d to sb.
// The encoding is used for hash-index keys and tuple identities; it
// tags each value with its type so int64(1) and "1" never collide.
func EncodeDatum(sb *strings.Builder, d Datum) {
	switch v := d.(type) {
	case nil:
		sb.WriteByte('n')
	case int64:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v, 10))
	case float64:
		sb.WriteByte('f')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	case string:
		sb.WriteByte('s')
		sb.WriteString(strconv.Itoa(len(v)))
		sb.WriteByte(':')
		sb.WriteString(v)
	case bool:
		if v {
			sb.WriteByte('T')
		} else {
			sb.WriteByte('F')
		}
	default:
		panic(fmt.Sprintf("model: unsupported datum type %T", d))
	}
	sb.WriteByte('|')
}

// AppendDatum appends the same canonical encoding EncodeDatum produces
// to buf and returns the extended slice. Hash-probe hot paths (the
// compiled Datalog engine) use it with a reused []byte key buffer so a
// probe costs no builder allocation.
func AppendDatum(buf []byte, d Datum) []byte {
	switch v := d.(type) {
	case nil:
		buf = append(buf, 'n')
	case int64:
		buf = append(buf, 'i')
		buf = strconv.AppendInt(buf, v, 10)
	case float64:
		buf = append(buf, 'f')
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	case string:
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(len(v)), 10)
		buf = append(buf, ':')
		buf = append(buf, v...)
	case bool:
		if v {
			buf = append(buf, 'T')
		} else {
			buf = append(buf, 'F')
		}
	default:
		panic(fmt.Sprintf("model: unsupported datum type %T", d))
	}
	return append(buf, '|')
}

// EncodeDatums returns the canonical encoding of a datum sequence.
func EncodeDatums(ds []Datum) string {
	var sb strings.Builder
	for _, d := range ds {
		EncodeDatum(&sb, d)
	}
	return sb.String()
}

// DecodeDatums parses a canonical encoding produced by EncodeDatums
// back into the datum sequence. The encoding is self-delimiting (every
// datum ends with '|', strings carry a length prefix), so round-
// tripping is exact; malformed input returns an error.
func DecodeDatums(enc string) ([]Datum, error) {
	var out []Datum
	for len(enc) > 0 {
		tag := enc[0]
		enc = enc[1:]
		switch tag {
		case 'n', 'T', 'F':
			if len(enc) == 0 || enc[0] != '|' {
				return nil, fmt.Errorf("model: truncated datum encoding")
			}
			enc = enc[1:]
			switch tag {
			case 'n':
				out = append(out, nil)
			case 'T':
				out = append(out, true)
			case 'F':
				out = append(out, false)
			}
		case 'i', 'f':
			sep := strings.IndexByte(enc, '|')
			if sep < 0 {
				return nil, fmt.Errorf("model: truncated datum encoding")
			}
			body := enc[:sep]
			enc = enc[sep+1:]
			if tag == 'i' {
				v, err := strconv.ParseInt(body, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("model: bad int encoding %q", body)
				}
				out = append(out, v)
			} else {
				v, err := strconv.ParseFloat(body, 64)
				if err != nil {
					return nil, fmt.Errorf("model: bad float encoding %q", body)
				}
				out = append(out, v)
			}
		case 's':
			colon := strings.IndexByte(enc, ':')
			if colon < 0 {
				return nil, fmt.Errorf("model: truncated string encoding")
			}
			n, err := strconv.Atoi(enc[:colon])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("model: bad string length %q", enc[:colon])
			}
			rest := enc[colon+1:]
			if len(rest) < n+1 || rest[n] != '|' {
				return nil, fmt.Errorf("model: truncated string encoding")
			}
			out = append(out, rest[:n])
			enc = rest[n+1:]
		default:
			return nil, fmt.Errorf("model: unknown datum tag %q", tag)
		}
	}
	return out, nil
}

// FormatDatum renders d for human consumption (query output, DOT labels).
func FormatDatum(d Datum) string {
	switch v := d.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(v, 10)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case string:
		return v
	case bool:
		return strconv.FormatBool(v)
	}
	return fmt.Sprintf("%v", d)
}
