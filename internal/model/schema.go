package model

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type DatumType
}

// Relation is a relation schema: a name, an ordered list of columns, and
// the positions of the primary-key columns. Following Section 4.1 of the
// paper, every relation connected by provenance must have a key; the key
// values identify tuple nodes in the provenance graph.
type Relation struct {
	Name    string
	Columns []Column
	Key     []int // indices into Columns

	// IsLocal marks a local-contribution relation (R_l in the paper):
	// leaves of the provenance graph live here.
	IsLocal bool
}

// NewRelation builds a relation schema. keyCols names the primary-key
// columns; they must all exist.
func NewRelation(name string, cols []Column, keyCols ...string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("model: relation name must be non-empty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("model: relation %s must have at least one column", name)
	}
	seen := make(map[string]int, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("model: relation %s column %d has empty name", name, i)
		}
		if _, dup := seen[c.Name]; dup {
			return nil, fmt.Errorf("model: relation %s has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = i
	}
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("model: relation %s must declare a key", name)
	}
	key := make([]int, 0, len(keyCols))
	for _, kc := range keyCols {
		idx, ok := seen[kc]
		if !ok {
			return nil, fmt.Errorf("model: relation %s key column %q not found", name, kc)
		}
		key = append(key, idx)
	}
	return &Relation{Name: name, Columns: cols, Key: key}, nil
}

// MustRelation is NewRelation that panics on error; for statically-known
// schemas in tests and examples.
func MustRelation(name string, cols []Column, keyCols ...string) *Relation {
	r, err := NewRelation(name, cols, keyCols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Columns) }

// ColumnIndex returns the position of the named column, or -1.
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// KeyNames returns the names of the key columns in key order.
func (r *Relation) KeyNames() []string {
	names := make([]string, len(r.Key))
	for i, k := range r.Key {
		names[i] = r.Columns[k].Name
	}
	return names
}

// KeyOf extracts the key datums of a row of this relation.
func (r *Relation) KeyOf(row []Datum) []Datum {
	key := make([]Datum, len(r.Key))
	for i, k := range r.Key {
		key[i] = row[k]
	}
	return key
}

// LocalName returns the conventional name of the local-contribution
// relation paired with r (the paper's R_l).
func (r *Relation) LocalName() string { return r.Name + "_l" }

// LocalRelation derives the local-contribution relation schema for r:
// same columns and key, IsLocal set.
func (r *Relation) LocalRelation() *Relation {
	cols := make([]Column, len(r.Columns))
	copy(cols, r.Columns)
	key := make([]int, len(r.Key))
	copy(key, r.Key)
	return &Relation{Name: r.LocalName(), Columns: cols, Key: key, IsLocal: true}
}

func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(r.Name)
	sb.WriteByte('(')
	keySet := make(map[int]bool, len(r.Key))
	for _, k := range r.Key {
		keySet[k] = true
	}
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		if keySet[i] {
			sb.WriteByte('*')
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// Schema is a complete CDSS setting: the public relations of all peers,
// their local-contribution relations, and the schema mappings that
// inter-relate them (Example 2.1 of the paper).
type Schema struct {
	relations map[string]*Relation
	mappings  map[string]*Mapping
	// mappingOrder preserves declaration order for deterministic
	// iteration (exchange stratification, schema-graph construction).
	mappingOrder []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		relations: make(map[string]*Relation),
		mappings:  make(map[string]*Mapping),
	}
}

// AddRelation registers a public relation together with its derived
// local-contribution relation.
func (s *Schema) AddRelation(r *Relation) error {
	if _, ok := s.relations[r.Name]; ok {
		return fmt.Errorf("model: relation %q already declared", r.Name)
	}
	s.relations[r.Name] = r
	if !r.IsLocal {
		loc := r.LocalRelation()
		if _, ok := s.relations[loc.Name]; ok {
			return fmt.Errorf("model: relation %q already declared", loc.Name)
		}
		s.relations[loc.Name] = loc
	}
	return nil
}

// Relation looks up a relation schema by name.
func (s *Schema) Relation(name string) (*Relation, bool) {
	r, ok := s.relations[name]
	return r, ok
}

// Relations returns all relations sorted by name.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.relations))
	for _, r := range s.relations {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PublicRelations returns the non-local relations sorted by name.
func (s *Schema) PublicRelations() []*Relation {
	out := make([]*Relation, 0, len(s.relations))
	for _, r := range s.relations {
		if !r.IsLocal {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddMapping registers a schema mapping after validating it against the
// declared relations.
func (s *Schema) AddMapping(m *Mapping) error {
	if _, ok := s.mappings[m.Name]; ok {
		return fmt.Errorf("model: mapping %q already declared", m.Name)
	}
	if err := m.Validate(s); err != nil {
		return err
	}
	s.mappings[m.Name] = m
	s.mappingOrder = append(s.mappingOrder, m.Name)
	return nil
}

// Mapping looks up a mapping by name.
func (s *Schema) Mapping(name string) (*Mapping, bool) {
	m, ok := s.mappings[name]
	return m, ok
}

// Mappings returns mappings in declaration order.
func (s *Schema) Mappings() []*Mapping {
	out := make([]*Mapping, 0, len(s.mappingOrder))
	for _, name := range s.mappingOrder {
		out = append(out, s.mappings[name])
	}
	return out
}

// MappingsInto returns the mappings whose head includes relation rel.
func (s *Schema) MappingsInto(rel string) []*Mapping {
	var out []*Mapping
	for _, name := range s.mappingOrder {
		m := s.mappings[name]
		for _, h := range m.Head {
			if h.Rel == rel {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// MappingsFrom returns the mappings whose body includes relation rel.
func (s *Schema) MappingsFrom(rel string) []*Mapping {
	var out []*Mapping
	for _, name := range s.mappingOrder {
		m := s.mappings[name]
		for _, b := range m.Body {
			if b.Rel == rel {
				out = append(out, m)
				break
			}
		}
	}
	return out
}
