package model

import (
	"strings"
)

// Tuple is a row of datums in some relation.
type Tuple []Datum

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Format renders the tuple as R-style "(v1, v2, ...)".
func (t Tuple) Format() string {
	parts := make([]string, len(t))
	for i, d := range t {
		parts[i] = FormatDatum(d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TupleRef identifies a tuple node in the provenance graph: the relation
// it belongs to plus the encoded key datums. TupleRefs are comparable
// and usable as map keys.
type TupleRef struct {
	Rel string
	Key string // EncodeDatums of the key attributes
}

// NewTupleRef builds a TupleRef from a relation schema and a full row.
func NewTupleRef(r *Relation, row Tuple) TupleRef {
	return TupleRef{Rel: r.Name, Key: EncodeDatums(r.KeyOf(row))}
}

// RefFromKey builds a TupleRef directly from key datums.
func RefFromKey(rel string, key []Datum) TupleRef {
	return TupleRef{Rel: rel, Key: EncodeDatums(key)}
}

func (r TupleRef) String() string {
	return r.Rel + "[" + r.Key + "]"
}

// KeyDatums decodes the ref's key attributes back into datums, for
// callers that need to look the tuple up in storage or render it
// (maintenance reports list deleted tuples as refs).
func (r TupleRef) KeyDatums() ([]Datum, error) {
	return DecodeDatums(r.Key)
}
