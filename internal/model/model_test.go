package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeOf(t *testing.T) {
	cases := []struct {
		d    Datum
		want DatumType
	}{
		{nil, TypeNull},
		{int64(3), TypeInt},
		{3.5, TypeFloat},
		{"x", TypeString},
		{true, TypeBool},
	}
	for _, c := range cases {
		if got := TypeOf(c.d); got != c.want {
			t.Errorf("TypeOf(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestTypeOfPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported type")
		}
	}()
	TypeOf(int32(1))
}

func TestEqualNoCoercion(t *testing.T) {
	if Equal(int64(1), 1.0) {
		t.Error("int64(1) should not equal float64(1)")
	}
	if Equal(int64(1), "1") {
		t.Error("int64(1) should not equal \"1\"")
	}
	if !Equal(nil, nil) {
		t.Error("NULL should equal NULL for key purposes")
	}
	if Equal(nil, int64(0)) {
		t.Error("NULL should not equal 0")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	vals := []Datum{nil, int64(-5), int64(0), int64(7), 1.5, 2.25, "a", "b", false, true}
	for i, a := range vals {
		for j, b := range vals {
			got := Compare(a, b)
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", a, b, got)
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", a, b, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", a, b, got)
			}
		}
	}
}

func TestEncodeDatumInjective(t *testing.T) {
	vals := []Datum{nil, int64(1), 1.0, "1", "i1", true, false, "", "s0:", int64(10), "10"}
	seen := make(map[string]Datum)
	for _, v := range vals {
		var sb strings.Builder
		EncodeDatum(&sb, v)
		enc := sb.String()
		if prev, dup := seen[enc]; dup {
			t.Errorf("encoding collision: %v and %v both encode to %q", prev, v, enc)
		}
		seen[enc] = v
	}
}

func TestEncodeDatumsInjectiveOnBoundaries(t *testing.T) {
	// ["ab","c"] must differ from ["a","bc"] and ["abc"].
	a := EncodeDatums([]Datum{"ab", "c"})
	b := EncodeDatums([]Datum{"a", "bc"})
	c := EncodeDatums([]Datum{"abc"})
	if a == b || a == c || b == c {
		t.Errorf("boundary collision: %q %q %q", a, b, c)
	}
}

func TestEncodeStringInjectiveQuick(t *testing.T) {
	f := func(x, y string) bool {
		if x == y {
			return true
		}
		return EncodeDatums([]Datum{x}) != EncodeDatums([]Datum{y})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRelationValidation(t *testing.T) {
	cols := []Column{{"id", TypeInt}, {"name", TypeString}}
	if _, err := NewRelation("", cols, "id"); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewRelation("R", nil, "id"); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewRelation("R", cols); err == nil {
		t.Error("no key should fail")
	}
	if _, err := NewRelation("R", cols, "missing"); err == nil {
		t.Error("unknown key column should fail")
	}
	if _, err := NewRelation("R", []Column{{"id", TypeInt}, {"id", TypeInt}}, "id"); err == nil {
		t.Error("duplicate column should fail")
	}
	r, err := NewRelation("R", cols, "id")
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 2 || r.ColumnIndex("name") != 1 || r.ColumnIndex("zzz") != -1 {
		t.Errorf("relation accessors wrong: %+v", r)
	}
}

func TestKeyOfAndRefs(t *testing.T) {
	r := MustRelation("N", []Column{{"id", TypeInt}, {"name", TypeString}, {"c", TypeBool}}, "id", "name")
	row := Tuple{int64(1), "cn1", false}
	key := r.KeyOf(row)
	if len(key) != 2 || key[0] != int64(1) || key[1] != "cn1" {
		t.Fatalf("KeyOf = %v", key)
	}
	ref := NewTupleRef(r, row)
	ref2 := RefFromKey("N", []Datum{int64(1), "cn1"})
	if ref != ref2 {
		t.Errorf("refs differ: %v vs %v", ref, ref2)
	}
	ref3 := NewTupleRef(r, Tuple{int64(1), "cn2", false})
	if ref == ref3 {
		t.Error("distinct keys must give distinct refs")
	}
}

func TestLocalRelation(t *testing.T) {
	r := MustRelation("A", []Column{{"id", TypeInt}, {"s", TypeString}}, "id")
	l := r.LocalRelation()
	if l.Name != "A_l" || !l.IsLocal || l.Arity() != 2 {
		t.Errorf("local relation wrong: %+v", l)
	}
}

// exampleSchema builds the running example of the paper (Example 2.1):
// A(id, sn, len), C(id, name), N(id, name, canon), O(name, h, isAnimal).
func exampleSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	rels := []*Relation{
		MustRelation("A", []Column{{"id", TypeInt}, {"sn", TypeString}, {"len", TypeInt}}, "id"),
		MustRelation("C", []Column{{"id", TypeInt}, {"name", TypeString}}, "id", "name"),
		MustRelation("N", []Column{{"id", TypeInt}, {"name", TypeString}, {"canon", TypeBool}}, "id", "name"),
		MustRelation("O", []Column{{"name", TypeString}, {"h", TypeInt}, {"isAnimal", TypeBool}}, "name"),
	}
	for _, r := range rels {
		if err := s.AddRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSchemaMappings(t *testing.T) {
	s := exampleSchema(t)
	// m5 : O(n, h, true) :- A(i, _, h), C(i, n)
	m5 := NewMapping("m5",
		NewAtom("O", V("n"), V("h"), C(true)),
		NewAtom("A", V("i"), V("_"), V("h")),
		NewAtom("C", V("i"), V("n")),
	)
	if err := s.AddMapping(m5); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMapping(m5); err == nil {
		t.Error("duplicate mapping should fail")
	}
	into := s.MappingsInto("O")
	if len(into) != 1 || into[0].Name != "m5" {
		t.Errorf("MappingsInto(O) = %v", into)
	}
	from := s.MappingsFrom("A")
	if len(from) != 1 {
		t.Errorf("MappingsFrom(A) = %v", from)
	}
	if len(s.MappingsFrom("O")) != 0 {
		t.Error("no mapping uses O in body")
	}
}

func TestMappingValidate(t *testing.T) {
	s := exampleSchema(t)
	bad := []*Mapping{
		NewMapping("x1", NewAtom("Z", V("i")), NewAtom("A", V("i"), V("s"), V("l"))),                       // unknown head rel
		NewMapping("x2", NewAtom("C", V("i"), V("n")), NewAtom("A", V("i"), V("s"))),                       // wrong arity
		NewMapping("x3", NewAtom("C", V("i"), V("n")), NewAtom("A", V("i"), V("s"), V("l"))),               // n unbound
		NewMapping("x4", NewAtom("C", V("i"), V("_")), NewAtom("A", V("i"), V("s"), V("l"))),               // wildcard head
		NewMapping("x5", NewAtom("A_l", V("i"), V("s"), V("l")), NewAtom("A", V("i"), V("s"), V("l"))),     // local head
		{Name: "x6", Head: []Atom{NewAtom("C", V("i"), V("n"))}},                                           // empty body
		{Name: "", Head: []Atom{NewAtom("C", V("i"), V("n"))}, Body: []Atom{NewAtom("C", V("i"), V("n"))}}, // no name
	}
	for _, m := range bad {
		if err := m.Validate(s); err == nil {
			t.Errorf("mapping %s should fail validation", m.Name)
		}
	}
	good := NewMapping("m2", NewAtom("N", V("i"), V("n"), C(true)), NewAtom("A", V("i"), V("n"), V("_")))
	if err := good.Validate(s); err != nil {
		t.Errorf("m2 should validate: %v", err)
	}
}

func TestProvenanceAttrs(t *testing.T) {
	s := exampleSchema(t)
	// m5 : O(n, h, true) :- A(i, _, h), C(i, n); keys: A.id=i, C.(id,name)=(i,n), O.name=n
	m5 := NewMapping("m5",
		NewAtom("O", V("n"), V("h"), C(true)),
		NewAtom("A", V("i"), V("_"), V("h")),
		NewAtom("C", V("i"), V("n")),
	)
	cols, vars, err := m5.ProvenanceAttrs(s)
	if err != nil {
		t.Fatal(err)
	}
	// Expect deduplicated: i (from A), n (from C); O's key n already seen.
	if len(vars) != 2 || vars[0] != "i" || vars[1] != "n" {
		t.Fatalf("vars = %v, want [i n]", vars)
	}
	if cols[0].Type != TypeInt || cols[1].Type != TypeString {
		t.Errorf("cols = %v", cols)
	}
}

func TestMappingIsProjection(t *testing.T) {
	p := NewMapping("m2", NewAtom("N", V("i"), V("n"), C(true)), NewAtom("A", V("i"), V("n"), V("_")))
	if !p.IsProjection() {
		t.Error("single-body mapping should be a projection")
	}
	j := NewMapping("m5", NewAtom("O", V("n"), V("h"), C(true)),
		NewAtom("A", V("i"), V("_"), V("h")), NewAtom("C", V("i"), V("n")))
	if j.IsProjection() {
		t.Error("join mapping is not a projection")
	}
}

func TestAtomRenameAndVars(t *testing.T) {
	a := NewAtom("R", V("x"), C(int64(1)), V("y"), V("x"), V("_"))
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Fatalf("Vars = %v", vars)
	}
	r := a.Rename(func(v string) string { return v + "_0" })
	if r.Args[0].Var != "x_0" || !r.Args[1].IsConst || r.Args[4].Var != "__0" {
		t.Errorf("Rename = %v", r)
	}
}

func TestSchemaRelationLists(t *testing.T) {
	s := exampleSchema(t)
	pub := s.PublicRelations()
	if len(pub) != 4 {
		t.Fatalf("expected 4 public relations, got %d", len(pub))
	}
	all := s.Relations()
	if len(all) != 8 {
		t.Fatalf("expected 8 total relations (public + local), got %d", len(all))
	}
	if _, ok := s.Relation("A_l"); !ok {
		t.Error("local contribution relation A_l should be auto-registered")
	}
}
