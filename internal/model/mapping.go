package model

import (
	"fmt"
	"sort"
	"strings"
)

// Term is an argument position in a mapping atom: either a variable or
// a constant. Exactly one of Var/Const is meaningful, discriminated by
// IsConst.
type Term struct {
	Var     string
	Const   Datum
	IsConst bool
}

// V constructs a variable term.
func V(name string) Term { return Term{Var: name} }

// C constructs a constant term.
func C(d Datum) Term { return Term{Const: d, IsConst: true} }

func (t Term) String() string {
	if t.IsConst {
		return FormatDatum(t.Const)
	}
	return t.Var
}

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool {
	if t.IsConst != o.IsConst {
		return false
	}
	if t.IsConst {
		return Equal(t.Const, o.Const)
	}
	return t.Var == o.Var
}

// Atom is a relational atom R(t1, ..., tn) in a mapping or Datalog rule.
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, args ...Term) Atom { return Atom{Rel: rel, Args: args} }

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the distinct variable names in the atom, in first-use order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if !t.IsConst && t.Var != "_" && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// Rename returns a copy of the atom with every variable passed through f.
func (a Atom) Rename(f func(string) string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsConst {
			args[i] = t
		} else {
			args[i] = V(f(t.Var))
		}
	}
	return Atom{Rel: a.Rel, Args: args}
}

// Mapping is a schema mapping in the extended-Datalog form of Example
// 2.1: a conjunctive body deriving one or more head atoms. Mappings with
// multiple head atoms model GLAV tuple-generating dependencies (the
// paper's "m source atoms and n target atoms"). A single derivation node
// in the provenance graph relates all body tuples to all head tuples.
type Mapping struct {
	Name string
	Head []Atom
	Body []Atom
}

// NewMapping builds a mapping with a single head atom (the common case).
func NewMapping(name string, head Atom, body ...Atom) *Mapping {
	return &Mapping{Name: name, Head: []Atom{head}, Body: body}
}

// NewMultiHeadMapping builds a mapping with several head atoms.
func NewMultiHeadMapping(name string, head []Atom, body []Atom) *Mapping {
	return &Mapping{Name: name, Head: head, Body: body}
}

func (m *Mapping) String() string {
	heads := make([]string, len(m.Head))
	for i, h := range m.Head {
		heads[i] = h.String()
	}
	bodies := make([]string, len(m.Body))
	for i, b := range m.Body {
		bodies[i] = b.String()
	}
	return fmt.Sprintf("%s : %s :- %s", m.Name, strings.Join(heads, ", "), strings.Join(bodies, ", "))
}

// BodyVars returns the distinct variables appearing in the body.
func (m *Mapping) BodyVars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range m.Body {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// HeadVars returns the distinct variables appearing in any head atom.
func (m *Mapping) HeadVars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range m.Head {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks the mapping against a schema: all relations exist,
// arities match, head variables are range-restricted (appear in the
// body), and no head targets a local-contribution relation.
func (m *Mapping) Validate(s *Schema) error {
	if m.Name == "" {
		return fmt.Errorf("model: mapping must have a name")
	}
	if len(m.Head) == 0 {
		return fmt.Errorf("model: mapping %s has no head atoms", m.Name)
	}
	if len(m.Body) == 0 {
		return fmt.Errorf("model: mapping %s has no body atoms", m.Name)
	}
	check := func(a Atom, where string) error {
		r, ok := s.Relation(a.Rel)
		if !ok {
			return fmt.Errorf("model: mapping %s %s references unknown relation %q", m.Name, where, a.Rel)
		}
		if len(a.Args) != r.Arity() {
			return fmt.Errorf("model: mapping %s %s atom %s has arity %d, relation has %d",
				m.Name, where, a.Rel, len(a.Args), r.Arity())
		}
		return nil
	}
	bodyVars := make(map[string]bool)
	for _, a := range m.Body {
		if err := check(a, "body"); err != nil {
			return err
		}
		for _, v := range a.Vars() {
			bodyVars[v] = true
		}
	}
	for _, a := range m.Head {
		if err := check(a, "head"); err != nil {
			return err
		}
		if r, _ := s.Relation(a.Rel); r.IsLocal {
			return fmt.Errorf("model: mapping %s derives into local relation %q", m.Name, a.Rel)
		}
		for _, t := range a.Args {
			if !t.IsConst && t.Var != "_" && !bodyVars[t.Var] {
				return fmt.Errorf("model: mapping %s head variable %q not bound in body", m.Name, t.Var)
			}
			if !t.IsConst && t.Var == "_" {
				return fmt.Errorf("model: mapping %s has wildcard in head", m.Name)
			}
		}
	}
	return nil
}

// IsProjection reports whether the mapping is a pure projection: a
// single body atom whose variables cover every head variable, with no
// self-joins. Such mappings have "superfluous" provenance relations
// (Section 4.1) that are represented as virtual views over the source.
func (m *Mapping) IsProjection() bool {
	return len(m.Body) == 1
}

// ProvenanceAttrs computes the deduplicated attribute list of the
// mapping's provenance relation P^m (Section 4.1): for each body and
// head atom, the key attributes of the corresponding relation, keeping
// only one copy of any variable that is constrained to be equal across
// positions. Constants are omitted (recoverable from the mapping
// definition). The result is the ordered list of variable names, each
// with the datum type taken from its first occurrence.
func (m *Mapping) ProvenanceAttrs(s *Schema) ([]Column, []string, error) {
	var cols []Column
	var vars []string
	seen := make(map[string]bool)
	add := func(a Atom) error {
		r, ok := s.Relation(a.Rel)
		if !ok {
			return fmt.Errorf("model: unknown relation %q", a.Rel)
		}
		for _, k := range r.Key {
			t := a.Args[k]
			if t.IsConst {
				continue
			}
			if t.Var == "_" {
				return fmt.Errorf("model: mapping %s has wildcard key attribute in %s", m.Name, a.Rel)
			}
			if seen[t.Var] {
				continue
			}
			seen[t.Var] = true
			vars = append(vars, t.Var)
			cols = append(cols, Column{Name: t.Var, Type: r.Columns[k].Type})
		}
		return nil
	}
	for _, a := range m.Body {
		if err := add(a); err != nil {
			return nil, nil, err
		}
	}
	for _, a := range m.Head {
		if err := add(a); err != nil {
			return nil, nil, err
		}
	}
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("model: mapping %s has no provenance attributes", m.Name)
	}
	return cols, vars, nil
}

// SortedVars returns sorted distinct variables of a set of atoms;
// useful for deterministic plan construction.
func SortedVars(atoms []Atom) []string {
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
