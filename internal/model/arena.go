package model

// TupleArena carves tuples out of block allocations, for producers
// that materialize many small long-lived rows in one pass (the Datalog
// engine's firing loops allocate one head row and one provenance row
// per derivation; block carving replaces per-row mallocs with one per
// blockSize datums). Tuples returned by Alloc are full-capacity-capped
// so appends can never alias a neighbor. The zero value is ready to
// use; an arena must not be shared across goroutines.
type TupleArena struct {
	block []Datum
}

const arenaBlockSize = 1024

// Alloc returns a zeroed tuple of width n carved from the current
// block.
func (a *TupleArena) Alloc(n int) Tuple {
	if n > len(a.block) {
		size := arenaBlockSize
		if n > size {
			size = n
		}
		a.block = make([]Datum, size)
	}
	t := Tuple(a.block[:n:n])
	a.block = a.block[n:]
	return t
}
