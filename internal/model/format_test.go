package model

import (
	"strings"
	"testing"
)

func TestFormatDatum(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{nil, "NULL"},
		{int64(-7), "-7"},
		{2.5, "2.5"},
		{"abc", "abc"},
		{true, "true"},
		{false, "false"},
	}
	for _, c := range cases {
		if got := FormatDatum(c.d); got != c.want {
			t.Errorf("FormatDatum(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDatumTypeString(t *testing.T) {
	for typ, want := range map[DatumType]string{
		TypeNull:   "null",
		TypeInt:    "int",
		TypeFloat:  "float",
		TypeString: "string",
		TypeBool:   "bool",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), got, want)
		}
	}
	if got := DatumType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type renders %q", got)
	}
}

func TestTupleFormatAndClone(t *testing.T) {
	tp := Tuple{int64(1), "x", nil}
	if got := tp.Format(); got != "(1, x, NULL)" {
		t.Errorf("Format = %q", got)
	}
	cl := tp.Clone()
	cl[0] = int64(9)
	if tp[0] != int64(1) {
		t.Error("Clone should not alias")
	}
}

func TestRelationString(t *testing.T) {
	r := MustRelation("N", []Column{
		{Name: "id", Type: TypeInt},
		{Name: "name", Type: TypeString},
		{Name: "c", Type: TypeBool},
	}, "id", "name")
	s := r.String()
	if s != "N(id*, name*, c)" {
		t.Errorf("String = %q", s)
	}
}

func TestMappingString(t *testing.T) {
	m := NewMapping("m5",
		NewAtom("O", V("n"), V("h"), C(true)),
		NewAtom("A", V("i"), V("_"), V("h")),
		NewAtom("C", V("i"), V("n")),
	)
	s := m.String()
	for _, part := range []string{"m5 :", "O(n, h, true)", ":-", "A(i, _, h)", "C(i, n)"} {
		if !strings.Contains(s, part) {
			t.Errorf("Mapping.String() = %q missing %q", s, part)
		}
	}
}

func TestTermEqual(t *testing.T) {
	cases := []struct {
		a, b Term
		want bool
	}{
		{V("x"), V("x"), true},
		{V("x"), V("y"), false},
		{C(int64(1)), C(int64(1)), true},
		{C(int64(1)), C(int64(2)), false},
		{V("x"), C(int64(1)), false},
		{C("1"), C(int64(1)), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSortedVars(t *testing.T) {
	atoms := []Atom{
		NewAtom("R", V("z"), V("a")),
		NewAtom("S", V("a"), C(int64(1)), V("m")),
	}
	got := SortedVars(atoms)
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("SortedVars = %v", got)
	}
}

func TestTupleRefString(t *testing.T) {
	ref := RefFromKey("R", []Datum{int64(1), "x"})
	s := ref.String()
	if !strings.HasPrefix(s, "R[") {
		t.Errorf("String = %q", s)
	}
}

func TestCompareSameTypeEdges(t *testing.T) {
	if Compare(nil, nil) != 0 {
		t.Error("NULL vs NULL should compare 0")
	}
	if Compare(true, true) != 0 || Compare(false, true) >= 0 || Compare(true, false) <= 0 {
		t.Error("bool ordering wrong")
	}
	if Compare(1.5, 1.5) != 0 {
		t.Error("float equality wrong")
	}
}
