package datalog

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/relstore"
)

// Binding maps variable names to datums during rule evaluation.
type Binding map[string]model.Datum

// DerivationHook is called once for every rule firing (a distinct
// combination of body tuples satisfying the rule). Update exchange uses
// it to populate provenance relations: the binding restricted to the
// mapping's provenance attributes is exactly one provenance-relation
// row (one derivation node of the provenance graph).
type DerivationHook func(rule *Rule, binding Binding)

// indexThreshold is the table size above which the engine builds a
// secondary hash index for a repeated probe pattern instead of
// scanning.
const indexThreshold = 32

// EngineLegacy is the original tuple-at-a-time interpreter, kept for
// differential testing against the compiled engine (exec.go), exactly
// as proql keeps ExecGraphLegacy beside the physical-plan pipeline. It
// evaluates positive Datalog programs bottom-up over a relstore
// database; each predicate is a table and head facts are inserted with
// the table's set semantics (primary key identity). Its delta
// discipline is coarse: a derivation whose body facts enter the delta
// in the same iteration is re-enumerated once per delta position, so
// the hook can fire several times for one distinct derivation (the
// compiled engine fixes this; consumers keying on all columns absorb
// the duplicates).
type EngineLegacy struct {
	DB   *relstore.Database
	Hook DerivationHook

	// delta tracks the rows inserted in the previous iteration, per
	// predicate, for semi-naive evaluation.
	delta map[string][]model.Tuple
	// next accumulates rows inserted in the current iteration.
	next map[string][]model.Tuple
	// Stats
	Iterations  int
	Derivations int
}

// NewEngineLegacy builds a legacy interpreting engine over db.
func NewEngineLegacy(db *relstore.Database) *EngineLegacy {
	return &EngineLegacy{DB: db}
}

// Run evaluates the rules to fixpoint. All facts already present in the
// database are treated as the initial delta. The evaluation is
// semi-naive at the granularity of one designated delta atom per rule
// firing pass; duplicate derivation enumerations that this coarse
// discipline can produce are absorbed by the set semantics of the
// consumer (provenance tables key on all columns).
func (e *EngineLegacy) Run(rules []Rule) error {
	// Seed delta with every existing fact.
	e.delta = make(map[string][]model.Tuple)
	preds := make(map[string]bool)
	for _, r := range rules {
		for _, a := range r.Body {
			preds[a.Rel] = true
		}
		for _, h := range r.Heads {
			preds[h.Rel] = true
		}
	}
	for p := range preds {
		t, ok := e.DB.Table(p)
		if !ok {
			return fmt.Errorf("datalog: predicate %q has no table", p)
		}
		rows := make([]model.Tuple, 0, t.Len())
		t.Iterate(func(row model.Tuple) bool {
			rows = append(rows, row)
			return true
		})
		if len(rows) > 0 {
			e.delta[p] = rows
		}
	}
	e.Iterations = 0
	for len(e.delta) > 0 {
		e.Iterations++
		e.next = make(map[string][]model.Tuple)
		for i := range rules {
			if err := e.evalRule(&rules[i]); err != nil {
				return err
			}
		}
		e.delta = e.next
	}
	return nil
}

// evalRule fires the rule for every combination of body tuples that
// includes at least one delta tuple.
func (e *EngineLegacy) evalRule(r *Rule) error {
	for i := range r.Body {
		deltaRows := e.delta[r.Body[i].Rel]
		if len(deltaRows) == 0 {
			continue
		}
		for _, row := range deltaRows {
			binding := make(Binding)
			if !matchAtom(r.Body[i], row, binding) {
				continue
			}
			if err := e.joinRest(r, i, 0, binding); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinRest extends binding over the body atoms other than skip,
// processed in order; on a complete match it fires the rule.
func (e *EngineLegacy) joinRest(r *Rule, skip, pos int, binding Binding) error {
	if pos == skip {
		return e.joinRest(r, skip, pos+1, binding)
	}
	if pos >= len(r.Body) {
		return e.fire(r, binding)
	}
	atom := r.Body[pos]
	rows, err := e.candidates(atom, binding)
	if err != nil {
		return err
	}
	for _, row := range rows {
		// Record which vars this atom newly binds so we can undo.
		added := make([]string, 0, 4)
		ok := true
		for k, t := range atom.Args {
			if t.IsConst {
				if !model.Equal(row[k], t.Const) {
					ok = false
					break
				}
				continue
			}
			if t.Var == "_" {
				continue
			}
			if v, bound := binding[t.Var]; bound {
				if !model.Equal(v, row[k]) {
					ok = false
					break
				}
				continue
			}
			binding[t.Var] = row[k]
			added = append(added, t.Var)
		}
		if ok {
			if err := e.joinRest(r, skip, pos+1, binding); err != nil {
				return err
			}
		}
		for _, v := range added {
			delete(binding, v)
		}
	}
	return nil
}

// candidates returns the rows of atom's table consistent with the
// bound columns of atom under binding, using (and lazily creating)
// secondary indexes for large tables.
func (e *EngineLegacy) candidates(atom model.Atom, binding Binding) ([]model.Tuple, error) {
	t, ok := e.DB.Table(atom.Rel)
	if !ok {
		return nil, fmt.Errorf("datalog: predicate %q has no table", atom.Rel)
	}
	var cols []int
	var vals []model.Datum
	for k, term := range atom.Args {
		if term.IsConst {
			cols = append(cols, k)
			vals = append(vals, term.Const)
		} else if term.Var != "_" {
			if v, bound := binding[term.Var]; bound {
				cols = append(cols, k)
				vals = append(vals, v)
			}
		}
	}
	if len(cols) == 0 {
		return t.Rows(), nil
	}
	if t.Len() > indexThreshold && !t.HasIndex(cols) {
		t.CreateIndex(cols)
	}
	return t.Probe(cols, vals), nil
}

// fire instantiates the heads under binding, inserts new facts, and
// invokes the derivation hook.
func (e *EngineLegacy) fire(r *Rule, binding Binding) error {
	e.Derivations++
	if e.Hook != nil {
		e.Hook(r, binding)
	}
	for _, h := range r.Heads {
		t, ok := e.DB.Table(h.Rel)
		if !ok {
			return fmt.Errorf("datalog: head predicate %q has no table", h.Rel)
		}
		row := make(model.Tuple, len(h.Args))
		for k, term := range h.Args {
			if term.IsConst {
				row[k] = term.Const
				continue
			}
			v, bound := binding[term.Var]
			if !bound {
				return fmt.Errorf("datalog: rule %s head variable %q unbound", r.ID, term.Var)
			}
			row[k] = v
		}
		inserted, err := t.Insert(row)
		if err != nil {
			return err
		}
		if inserted {
			e.next[h.Rel] = append(e.next[h.Rel], row)
		}
	}
	return nil
}

// matchAtom extends binding so that atom matches row, returning false
// (with binding possibly partially extended — callers pass a fresh map)
// on mismatch.
func matchAtom(atom model.Atom, row model.Tuple, binding Binding) bool {
	for k, t := range atom.Args {
		if t.IsConst {
			if !model.Equal(row[k], t.Const) {
				return false
			}
			continue
		}
		if t.Var == "_" {
			continue
		}
		if v, bound := binding[t.Var]; bound {
			if !model.Equal(v, row[k]) {
				return false
			}
			continue
		}
		binding[t.Var] = row[k]
	}
	return true
}
