package datalog

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// WarmAttach seeds a compiled program's persistent evaluation state
// directly from the backing tables without evaluating a single rule:
// every predicate journal holds exactly its table's rows (routed by
// key hash for sharded programs), the key→position maps cover them,
// and the age watermarks mark everything OLD — the state a successful
// full run would have left behind, built in O(rows) instead of
// O(derivations). Probe indexes are cleared and rebuild lazily at the
// next run's first round.
//
// exclude lists rows (per predicate name, matched by primary key) to
// leave out of the journals: rows that are in the tables but must seed
// the next RunPogramDelta as Δ — a recovered system's inserted-but-
// never-propagated rows. Excluding them reproduces the journal state
// of a live system with the same pending inserts (journals mirror the
// tables as of the last completed run). Excluded predicates must be
// keyed.
//
// This is the recovery path: a process that restored its tables from
// a checkpoint + write-ahead-log replay attaches warm and proceeds
// with RunProgramDelta, never re-deriving the world with a cold
// RunProgram. The soundness argument is the PR 4–5 invariant the rest
// of this package maintains: between runs, valid state means "journals
// mirror tables", nothing more — so journals rebuilt from the tables
// are exactly as valid as journals left behind by a run.
//
// After WarmAttach, StateValid reports true.
//
// Predicates attach independently (each touches only its own shards
// and reads only its own table), so they are fanned out across the
// machine: attach is the restart path's wall clock, and unlike the
// fixpoint a cold run pays, it has no cross-predicate dependencies to
// serialize on.
func (p *Program) WarmAttach(exclude map[string][]model.Tuple) {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(p.preds) {
		nw = len(p.preds)
	}
	if nw < 1 {
		nw = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.preds) {
					return
				}
				p.attachPred(p.preds[i], exclude)
			}
		}()
	}
	wg.Wait()
	p.stateValid = true
}

// attachPred seeds one predicate's journal state from its table.
func (p *Program) attachPred(ps *predState, exclude map[string][]model.Tuple) {
	var skip map[string]bool
	if rows := exclude[ps.name]; len(rows) > 0 && len(ps.keyCols) > 0 {
		skip = make(map[string]bool, len(rows))
		var kb []byte
		for _, row := range rows {
			kb = appendCols(kb[:0], row, ps.keyCols)
			skip[string(kb)] = true
		}
	}
	nrows := ps.table.Len()

	if p.nShards == 1 {
		// Serial programs do not keep position maps between runs (reset
		// leaves pos nil; ensurePos rebuilds it on demand at the next
		// deletion repair), so the warm attach must not pay for one
		// either: without exclusions the journal seed is a straight
		// append of the table — the restart path's cheapest possible
		// O(rows).
		sh := ps.shards[0]
		if cap(sh.rows) < nrows {
			sh.rows = make([]model.Tuple, 0, nrows)
		} else {
			sh.rows = sh.rows[:0]
		}
		sh.clearIndexes()
		sh.pos = nil
		sh.posBuilt = 0
		if skip == nil {
			ps.table.Iterate(func(row model.Tuple) bool {
				sh.rows = append(sh.rows, row)
				return true
			})
		} else {
			var buf []byte
			ps.table.Iterate(func(row model.Tuple) bool {
				buf = appendCols(buf[:0], row, ps.keyCols)
				if skip[string(buf)] {
					return true
				}
				sh.rows = append(sh.rows, row)
				return true
			})
		}
		sh.oldEnd = len(sh.rows)
		sh.deltaEnd = len(sh.rows)
		sh.synced = len(sh.rows)
		sh.view = sh.rows
		return
	}

	// Sharded programs keep the position maps hot between runs
	// (seedDelta assigns into them), so build them alongside the
	// key-hash routing.
	for _, sh := range ps.shards {
		sh.rows = sh.rows[:0]
		sh.clearIndexes()
		// Presize for an even spread; a fresh map sized for the table
		// beats clearing and regrowing a stale one row by row.
		sh.pos = make(map[string]int32, nrows/len(ps.shards)+1)
		sh.posBuilt = 0
	}
	var buf []byte
	ps.table.Iterate(func(row model.Tuple) bool {
		buf = appendCols(buf[:0], row, ps.keyCols)
		if skip != nil && skip[string(buf)] {
			return true
		}
		sh := ps.shards[shardOfBytes(buf, p.nShards)]
		sh.pos[string(buf)] = int32(len(sh.rows))
		sh.rows = append(sh.rows, row)
		return true
	})
	for _, sh := range ps.shards {
		sh.oldEnd = len(sh.rows)
		sh.deltaEnd = len(sh.rows)
		sh.synced = len(sh.rows)
		sh.posBuilt = len(sh.rows)
		sh.view = sh.rows
	}
}
