package datalog

import (
	"testing"

	"repro/internal/model"
)

// encKey encodes a row's key columns the way the journals and
// TupleRefs do.
func encKey(row model.Tuple, keyCols []int) string {
	var buf []byte
	buf = appendCols(buf, row, keyCols)
	return string(buf)
}

// TestApplyDeletionsKeepsDeltaRunsExact: delete derived and base rows
// from the tables, repair the journals with ApplyDeletions, then
// extend the fixpoint with RunProgramDelta — the result must equal a
// from-scratch fixpoint over the post-deletion base data plus the new
// rows, and the state must stay valid throughout (no full reseeding).
func TestApplyDeletionsKeepsDeltaRunsExact(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	p, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunProgram(p); err != nil {
		t.Fatal(err)
	}

	// Delete edge(3,4) and every path row reaching 4 — the rows a
	// deletion propagator would remove — from the tables.
	edge, path := db.MustTable("edge"), db.MustTable("path")
	keyCols := edge.Schema.Key
	deadEdges := []model.Tuple{{int64(3), int64(4)}}
	deadPaths := []model.Tuple{{int64(3), int64(4)}, {int64(2), int64(4)}, {int64(1), int64(4)}}
	deleted := map[string][]string{}
	for _, row := range deadEdges {
		if ok, err := edge.Delete(row); err != nil || !ok {
			t.Fatalf("delete edge %v: ok=%v err=%v", row, ok, err)
		}
		deleted["edge"] = append(deleted["edge"], encKey(row, keyCols))
	}
	for _, row := range deadPaths {
		if ok, err := path.Delete(row); err != nil || !ok {
			t.Fatalf("delete path %v: ok=%v err=%v", row, ok, err)
		}
		deleted["path"] = append(deleted["path"], encKey(row, keyCols))
	}
	if err := p.ApplyDeletions(deleted); err != nil {
		t.Fatal(err)
	}
	if !p.StateValid() {
		t.Fatal("state invalid after successful deletion repair")
	}
	if err := p.JournalMirrorsTables(); err != nil {
		t.Fatal(err)
	}

	// Extend with a new edge 4->5 (reattaching below the cut) plus
	// 0->1 (prepending): the delta run must see the repaired journals,
	// i.e. not rederive any path through the deleted edge.
	newRows := []model.Tuple{{int64(0), int64(1)}, {int64(4), int64(5)}}
	for _, row := range newRows {
		if _, err := edge.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunProgramDelta(p, map[string][]model.Tuple{"edge": newRows}); err != nil {
		t.Fatal(err)
	}
	if !p.StateValid() {
		t.Fatal("state invalid after delta run over repaired journals")
	}
	if err := p.JournalMirrorsTables(); err != nil {
		t.Fatal(err)
	}

	// Oracle: fresh fixpoint over edges {1-2, 2-3, 0-1, 4-5}.
	odb, orules := tcProgram(t)
	oedge := odb.MustTable("edge")
	if ok, err := oedge.Delete(model.Tuple{int64(3), int64(4)}); err != nil || !ok {
		t.Fatalf("oracle delete: ok=%v err=%v", ok, err)
	}
	for _, row := range newRows {
		if _, err := oedge.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	oe := NewEngine(odb)
	if err := oe.Run(orules); err != nil {
		t.Fatal(err)
	}
	if got, want := dbSignature(db), dbSignature(odb); got != want {
		t.Fatalf("repaired+delta database differs from oracle\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestApplyDeletionsGuards covers the protocol errors: repair without
// valid state, and repair naming a predicate outside the program.
func TestApplyDeletionsGuards(t *testing.T) {
	db, rules := tcProgram(t)
	p, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyDeletions(map[string][]string{"edge": {"x"}}); err == nil {
		t.Fatal("repair before any run must fail")
	}
	e := NewEngine(db)
	if err := e.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := p.ApplyDeletions(map[string][]string{"nosuch": {"x"}}); err == nil {
		t.Fatal("repair of unknown predicate must fail")
	}
	if p.StateValid() {
		t.Fatal("failed repair must invalidate state")
	}
}

// TestApplyDeletionsUnknownKeysAreIgnored: keys absent from the
// journal (never-propagated base rows, repeated deletes) are no-ops
// and leave the state valid.
func TestApplyDeletionsUnknownKeysAreIgnored(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	p, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	ghost := encKey(model.Tuple{int64(99), int64(99)}, db.MustTable("edge").Schema.Key)
	if err := p.ApplyDeletions(map[string][]string{"edge": {ghost}}); err != nil {
		t.Fatal(err)
	}
	if !p.StateValid() {
		t.Fatal("no-op repair invalidated state")
	}
	if err := p.JournalMirrorsTables(); err != nil {
		t.Fatal(err)
	}
}
