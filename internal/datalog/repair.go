package datalog

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// This file is the deletion-repair half of the persistent evaluation
// state: RunProgram/RunProgramDelta (exec.go, shard.go) leave the
// predicate journals mirroring the backing tables, and ApplyDeletions
// keeps that mirror intact when rows are deleted from the tables
// outside a run (update exchange's deletion propagation). Without it a
// deletion forces InvalidateState and the next run pays a full
// fixpoint; with it a Run after a DeleteLocal stays delta-seeded.

// ApplyDeletions removes the identified rows from the persistent
// predicate journals and repairs the hash indexes, key→position maps,
// and age watermarks in place, so the journals keep mirroring the
// backing tables after the caller deleted those rows from storage —
// the program's state stays valid and the next RunProgramDelta needs
// no reseeding full fixpoint.
//
// deleted maps predicate names to the canonical primary-key encodings
// (model.EncodeDatums of the key attributes, a model.TupleRef's Key)
// of the rows removed from that predicate's table. Keys not present in
// a journal are ignored (e.g. a base row that was deleted before it
// was ever propagated). Unknown predicates are an error: every
// predicate the caller can delete from must be part of the program.
//
// The repair is O(deleted rows): each dead key is routed to its shard
// and removed by a swap-delete against the shard's key→position map,
// with in-place surgery on the affected index buckets (bucket
// positions stay ascending, so a partition bound stays a cutoff). The
// position map is built lazily but kept hot from then on: sharded runs
// always maintain it (it is their duplicate filter), while serial runs
// pay only a nil check on the insert hot path until the first repair
// builds the map — after which the executor maintains it per appended
// row (exec.go journalAppend), so every subsequent repair is O(deleted
// rows) even when full runs' worth of inserts intervened. Only a full
// RunProgram reset drops the map back to lazy.
//
// ApplyDeletions requires valid state (StateValid). On any error the
// state is invalidated and the caller must fall back to a full
// RunProgram.
func (p *Program) ApplyDeletions(deleted map[string][]string) error {
	if !p.stateValid {
		return fmt.Errorf("datalog: deletion repair requires valid persistent state (run RunProgram first)")
	}
	for name, keys := range deleted {
		if len(keys) == 0 {
			continue
		}
		id, ok := p.predID[name]
		if !ok {
			p.stateValid = false
			return fmt.Errorf("datalog: deleted predicate %q not in program", name)
		}
		ps := p.preds[id]
		if len(ps.keyCols) == 0 {
			p.stateValid = false
			return fmt.Errorf("datalog: predicate %q has no primary key; cannot repair journal", ps.name)
		}
		for _, k := range keys {
			sh := ps.shards[ShardOfKey(k, p.nShards)]
			sh.ensurePos(ps.keyCols)
			sh.removeKey(k, ps.keyCols)
		}
		// Restore the journal invariants: the whole (now shorter)
		// journal is OLD and fully indexed. Shards the keys did not
		// route to already satisfy this (valid state between runs).
		for _, sh := range ps.shards {
			sh.oldEnd = len(sh.rows)
			sh.deltaEnd = len(sh.rows)
			sh.synced = len(sh.rows)
			for _, ix := range sh.indexes {
				ix.built = len(sh.rows)
			}
		}
	}
	return nil
}

// ensurePos extends the shard's key→position map over the journal rows
// appended since it was last current (all rows, after a serial reset).
func (sh *predShard) ensurePos(keyCols []int) {
	if sh.posBuilt == len(sh.rows) && sh.pos != nil {
		return
	}
	if sh.pos == nil {
		sh.pos = make(map[string]int32, len(sh.rows))
	}
	var buf []byte
	for i := sh.posBuilt; i < len(sh.rows); i++ {
		buf = appendCols(buf[:0], sh.rows[i], keyCols)
		sh.pos[string(buf)] = int32(i)
	}
	sh.posBuilt = len(sh.rows)
}

// removeKey swap-deletes the row with the given key encoding from the
// shard journal: the journal tail replaces the dead row's slot, the
// position map records the move, and each probe index drops the dead
// position and re-files the moved one — O(index count) bucket
// operations per deleted row, independent of the journal length.
func (sh *predShard) removeKey(k string, keyCols []int) {
	p, ok := sh.pos[k]
	if !ok {
		return
	}
	delete(sh.pos, k)
	row := sh.rows[p]
	var buf []byte
	for _, ix := range sh.indexes {
		buf = appendCols(buf[:0], row, ix.cols)
		ix.removePos(buf, p)
	}
	last := int32(len(sh.rows) - 1)
	if p != last {
		moved := sh.rows[last]
		sh.rows[p] = moved
		buf = appendCols(buf[:0], moved, keyCols)
		sh.pos[string(buf)] = p
		for _, ix := range sh.indexes {
			buf = appendCols(buf[:0], moved, ix.cols)
			ix.movePos(buf, last, p)
		}
	}
	// Clear the vacated tail slot so the journal doesn't pin the
	// deleted tuple alive.
	sh.rows[last] = nil
	sh.rows = sh.rows[:last]
	sh.posBuilt = len(sh.rows)
}

// removePos deletes position p from the bucket of the encoded key
// (ascending order preserved; empty buckets are dropped).
func (ix *probeIndex) removePos(key []byte, p int32) {
	b := ix.buckets[string(key)]
	i := sort.Search(len(b), func(i int) bool { return b[i] >= p })
	if i >= len(b) || b[i] != p {
		return
	}
	b = append(b[:i], b[i+1:]...)
	if len(b) == 0 {
		delete(ix.buckets, string(key))
		return
	}
	ix.buckets[string(key)] = b
}

// movePos re-files a journal move old→new inside the encoded key's
// bucket. old is the journal tail, hence the bucket's final (largest)
// entry; new is inserted at its sorted slot.
func (ix *probeIndex) movePos(key []byte, old, new int32) {
	b := ix.buckets[string(key)]
	if n := len(b); n > 0 && b[n-1] == old {
		b = b[:n-1]
	} else {
		// Defensive: the ascending invariant puts the tail row last,
		// but fall back to a search rather than corrupt the bucket.
		i := sort.Search(len(b), func(i int) bool { return b[i] >= old })
		if i < len(b) && b[i] == old {
			b = append(b[:i], b[i+1:]...)
		}
	}
	i := sort.Search(len(b), func(i int) bool { return b[i] >= new })
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = new
	ix.buckets[string(key)] = b
}

// JournalLen reports the journal length of a predicate, summed over
// its shards (tests and diagnostics); -1 when the predicate is not
// part of the program.
func (p *Program) JournalLen(pred string) int {
	id, ok := p.predID[pred]
	if !ok {
		return -1
	}
	n := 0
	for _, sh := range p.preds[id].shards {
		n += len(sh.rows)
	}
	return n
}

// JournalMirrorsTables verifies that every predicate journal holds
// exactly the rows of its backing table (set equality on primary-key
// encodings, multiplicity-checked across shards), that every row sits
// in the shard its key hashes to, and that the position maps index
// their covered prefix exactly. It is O(database) and intended for
// tests and fuzz oracles, not production paths.
func (p *Program) JournalMirrorsTables() error {
	for _, ps := range p.preds {
		counts := make(map[string]int)
		total := 0
		var buf []byte
		for si, sh := range ps.shards {
			if len(sh.pos) != sh.posBuilt {
				return fmt.Errorf("datalog: %s shard %d position map holds %d keys, covers %d rows", ps.name, si, len(sh.pos), sh.posBuilt)
			}
			for i, row := range sh.rows {
				buf = appendCols(buf[:0], row, ps.table.Schema.Key)
				counts[string(buf)]++
				total++
				if p.nShards > 1 {
					if got := shardOfBytes(buf, p.nShards); got != si {
						return fmt.Errorf("datalog: %s row %s in shard %d, hashes to %d", ps.name, row.Format(), si, got)
					}
					if sh.synced != len(sh.rows) {
						return fmt.Errorf("datalog: %s shard %d synced watermark %d, journal %d", ps.name, si, sh.synced, len(sh.rows))
					}
				}
				if i < sh.posBuilt {
					if got, ok := sh.pos[string(buf)]; !ok || got != int32(i) {
						return fmt.Errorf("datalog: %s shard %d position map misses row %d", ps.name, si, i)
					}
				}
			}
		}
		n := 0
		var err error
		ps.table.Iterate(func(row model.Tuple) bool {
			buf = appendCols(buf[:0], row, ps.table.Schema.Key)
			if counts[string(buf)] == 0 {
				err = fmt.Errorf("datalog: table %s row %s missing from journal", ps.name, row.Format())
				return false
			}
			counts[string(buf)]--
			n++
			return true
		})
		if err != nil {
			return err
		}
		if n != total {
			return fmt.Errorf("datalog: journal of %s holds %d rows, table %d", ps.name, total, n)
		}
	}
	return nil
}
