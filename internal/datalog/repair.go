package datalog

import (
	"fmt"

	"repro/internal/model"
)

// This file is the deletion-repair half of the persistent evaluation
// state: RunProgram/RunProgramDelta (exec.go) leave the predicate
// journals mirroring the backing tables, and ApplyDeletions keeps that
// mirror intact when rows are deleted from the tables outside a run
// (update exchange's deletion propagation). Without it a deletion
// forces InvalidateState and the next run pays a full fixpoint; with
// it a Run after a DeleteLocal stays delta-seeded.

// ApplyDeletions removes the identified rows from the persistent
// predicate journals and repairs the hash indexes and age watermarks
// in place, so the journals keep mirroring the backing tables after
// the caller deleted those rows from storage — the program's state
// stays valid and the next RunProgramDelta needs no reseeding full
// fixpoint.
//
// deleted maps predicate names to the canonical primary-key encodings
// (model.EncodeDatums of the key attributes, a model.TupleRef's Key)
// of the rows removed from that predicate's table. Keys not present in
// a journal are ignored (e.g. a base row that was deleted before it
// was ever propagated). Unknown predicates are an error: every
// predicate the caller can delete from must be part of the program.
//
// The repair compacts each affected predicate's journal and rebuilds
// only that predicate's probe indexes: cost is O(journal rows of the
// touched predicates), independent of the rest of the database and of
// the derivation count a full fixpoint would re-enumerate.
//
// ApplyDeletions requires valid state (StateValid). On any error the
// state is invalidated and the caller must fall back to a full
// RunProgram.
func (p *Program) ApplyDeletions(deleted map[string][]string) error {
	if !p.stateValid {
		return fmt.Errorf("datalog: deletion repair requires valid persistent state (run RunProgram first)")
	}
	for name, keys := range deleted {
		if len(keys) == 0 {
			continue
		}
		id, ok := p.predID[name]
		if !ok {
			p.stateValid = false
			return fmt.Errorf("datalog: deleted predicate %q not in program", name)
		}
		ps := p.preds[id]
		dead := make(map[string]bool, len(keys))
		for _, k := range keys {
			dead[k] = true
		}
		if err := ps.compactDead(dead); err != nil {
			p.stateValid = false
			return err
		}
	}
	return nil
}

// compactDead removes the journal rows whose primary-key encoding is
// in dead, then restores the journal invariants: watermarks cover the
// whole (now shorter) journal as OLD and the probe indexes are rebuilt
// over the surviving rows (bucket positions must stay ascending and
// gap-free, so in-place bucket surgery would cost as much as a
// rebuild).
func (ps *predState) compactDead(dead map[string]bool) error {
	keyCols := ps.table.Schema.Key
	if keyCols == nil {
		return fmt.Errorf("datalog: predicate %q has no primary key; cannot repair journal", ps.name)
	}
	var buf []byte
	kept := ps.rows[:0]
	for _, row := range ps.rows {
		buf = appendCols(buf[:0], row, keyCols)
		if dead[string(buf)] {
			continue
		}
		kept = append(kept, row)
	}
	removed := len(ps.rows) - len(kept)
	// Drop the vacated tail slots so the journal doesn't pin deleted
	// tuples alive.
	for i := len(kept); i < len(ps.rows); i++ {
		ps.rows[i] = nil
	}
	ps.rows = kept
	ps.oldEnd = len(ps.rows)
	ps.deltaEnd = len(ps.rows)
	if removed == 0 {
		return nil
	}
	for _, ix := range ps.indexes {
		ix.buckets = make(map[string][]int32, len(ix.buckets))
		ix.built = 0
	}
	ps.extendIndexes()
	return nil
}

// JournalLen reports the journal length of a predicate (tests and
// diagnostics); -1 when the predicate is not part of the program.
func (p *Program) JournalLen(pred string) int {
	id, ok := p.predID[pred]
	if !ok {
		return -1
	}
	return len(p.preds[id].rows)
}

// JournalMirrorsTables verifies that every predicate journal holds
// exactly the rows of its backing table (set equality on primary-key
// encodings, multiplicity-checked). It is O(database) and intended for
// tests and fuzz oracles, not production paths.
func (p *Program) JournalMirrorsTables() error {
	for _, ps := range p.preds {
		counts := make(map[string]int, len(ps.rows))
		var buf []byte
		for _, row := range ps.rows {
			buf = appendCols(buf[:0], row, ps.table.Schema.Key)
			counts[string(buf)]++
		}
		n := 0
		var err error
		ps.table.Iterate(func(row model.Tuple) bool {
			buf = appendCols(buf[:0], row, ps.table.Schema.Key)
			if counts[string(buf)] == 0 {
				err = fmt.Errorf("datalog: table %s row %s missing from journal", ps.name, row.Format())
				return false
			}
			counts[string(buf)]--
			n++
			return true
		})
		if err != nil {
			return err
		}
		if n != len(ps.rows) {
			return fmt.Errorf("datalog: journal of %s holds %d rows, table %d", ps.name, len(ps.rows), n)
		}
	}
	return nil
}
