package datalog

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/relstore"
)

// This file is the compiler half of the compiled semi-naive engine
// (exec.go holds the executor, shard.go the shard-parallel loop). A
// Program is built once per rule set and database — update exchange
// compiles its mapping program a single time and reuses it across runs
// — and turns every rule into flat, integer-addressed join programs:
//
//   - each rule's variables are numbered into slots, so a firing pass
//     runs over a reusable []model.Datum with zero map operations;
//   - per body atom, the probe columns (constants and already-bound
//     variables), residual equality checks, and bind positions are
//     precomputed against the greedily chosen join order;
//   - per delta position d, a Δ-specialized program tags every other
//     atom with the partition it may range over — atoms before d see
//     OLD ∪ Δ, atoms after d see OLD only — which is the classic
//     semi-naive decomposition under which every derivation is
//     enumerated exactly once across the whole fixpoint.
//
// A program compiled with CompileSharded(S > 1) additionally partitions
// every predicate's fact space into S shards by a hash of the row's
// primary-key encoding: each shard owns its own journal segment, probe
// indexes, and key→position map, and the executor runs every round's
// firing passes on all shards in parallel (shard.go). Compile is the
// single-shard special case.

// Program is a rule set compiled against the tables of one database.
// It is immutable after Compile except for the per-run storage inside
// its predicate states, which the executor resets on every run; a
// Program must only be executed via engines over the same database.
type Program struct {
	db     *relstore.Database
	rules  []*compiledRule
	preds  []*predState
	predID map[string]int
	// maxSlots is the widest rule's slot count, sizing the executor's
	// reusable binding buffers.
	maxSlots int
	// nShards is the shard count the program was compiled for (1 for
	// Compile). It is fixed for the program's lifetime: the shard a row
	// belongs to is part of the persistent journal layout.
	nShards int
	// stateValid reports that the predicate journals, indexes, and age
	// watermarks mirror the backing tables exactly (set after a
	// successful run, cleared by InvalidateState and on run errors), so
	// a delta-seeded run may extend them instead of reseeding.
	stateValid bool
	// execs is the sharded executor scratch (binding buffers, cross-
	// shard queues, arenas), kept on the program so successive runs
	// reuse grown queue capacity. Like the journals, it assumes one run
	// at a time.
	execs []*shardExec
}

// StateValid reports whether the program's persistent evaluation state
// (fact journals, hash indexes, age watermarks) is coherent with the
// backing tables, i.e. whether RunProgramDelta may be used.
func (p *Program) StateValid() bool { return p.stateValid }

// InvalidateState marks the persistent evaluation state stale. Callers
// must invoke it after mutating any backing table outside a run (e.g.
// deletion propagation); the next RunProgram reseeds from the tables.
func (p *Program) InvalidateState() { p.stateValid = false }

// Shards reports the shard count the program was compiled for.
func (p *Program) Shards() int { return p.nShards }

// predState is one predicate's compiled metadata plus its per-shard
// storage. The journal of a predicate is the union of its shards'
// journals; with one shard (Compile) the layout degenerates to the
// single append-only journal of the serial engine.
type predState struct {
	name  string
	table *relstore.Table
	// keyCols is the table's primary-key column list (nil for keyless
	// tables, which sharded programs reject): rows are routed to shards
	// by the hash of their key encoding, and the per-shard key→position
	// maps are keyed by the same encoding.
	keyCols []int
	// indexCols registers the probe column patterns the compiled join
	// steps need, by ordinal; every shard materializes one probeIndex
	// per pattern. indexOrd maps a pattern signature to its ordinal.
	indexCols [][]int
	indexOrd  map[string]int

	shards []*predShard
}

// predShard is one shard's slice of a predicate's storage: an
// append-only journal of the shard's facts partitioned by age
// watermarks. rows[:oldEnd] were derived two or more rounds ago (OLD),
// rows[oldEnd:deltaEnd] in the previous round (Δ), and rows[deltaEnd:]
// in the current round (NEW — invisible to joins until the round ends
// and the watermarks advance).
type predShard struct {
	rows     []model.Tuple
	oldEnd   int
	deltaEnd int
	// view is the journal slice header snapshot other shards read
	// during a parallel round: the owner may append (and reallocate)
	// rows concurrently, but view keeps addressing the rows below the
	// round's watermarks. Refreshed at every round barrier.
	view []model.Tuple
	// synced is the prefix of rows already present in the backing
	// table. Sharded runs buffer fresh rows in the journal and write
	// them back at end of run (the tables are single-writer); serial
	// runs insert into the table first, so they never consult it.
	synced int
	// pos maps a row's primary-key encoding to its journal position —
	// the shard-local duplicate filter of sharded runs and the
	// O(deleted)-repair index of ApplyDeletions. Built lazily up to
	// posBuilt: serial runs skip it entirely on the insert hot path and
	// the first repair after a run extends it; sharded runs keep it hot
	// (it replaces the table's primary-key probe).
	pos      map[string]int32
	posBuilt int
	// indexes holds the shard's probe indexes, parallel to the
	// predicate's indexCols. Buckets store row positions in ascending
	// order, so a partition bound is a cutoff, not a filter.
	indexes []*probeIndex
}

// probeIndex is a hash index over a shard's journal for one probe
// column pattern. built is the journal watermark the index covers; it
// is extended to deltaEnd at the start of every round.
type probeIndex struct {
	cols    []int
	buckets map[string][]int32
	built   int
}

// partition selects which journal region a join step may range over.
type partition uint8

const (
	// partOld restricts a step to rows derived before the previous
	// round.
	partOld partition = iota
	// partFull admits OLD ∪ Δ (everything except the current round's
	// NEW rows).
	partFull
)

// colConst checks a column against a constant.
type colConst struct {
	col int
	val model.Datum
}

// colSlot ties a column to a binding slot (a bind target or an
// equality check source, depending on context).
type colSlot struct {
	col  int
	slot int
}

// colRef is a column constrained by either a constant or a slot.
type colRef struct {
	col     int
	isConst bool
	konst   model.Datum
	slot    int
}

// compiledRule is one rule lowered to slot form.
type compiledRule struct {
	// rule is a copy of the source rule; hooks receive its address.
	rule Rule
	// slotVars names each slot, in slot order (first body occurrence).
	slotVars []string
	slotOf   map[string]int
	heads    []headSpec
	// progs holds one Δ-specialized join program per body position.
	progs []deltaProg
}

// headSpec materializes one head atom from a completed binding.
type headSpec struct {
	pred *predState
	cols []headCol
}

type headCol struct {
	isConst bool
	konst   model.Datum
	slot    int
}

// compiledRule is single-head in sharded programs; head returns the
// spec the shard executor routes by.
func (cr *compiledRule) head() *headSpec { return &cr.heads[0] }

// deltaProg is the rule specialized to "the Δ fact sits at body
// position d": the seed spec matches a Δ row, then the remaining atoms
// join in precomputed greedy order against their partitions.
type deltaProg struct {
	pred *predState
	seed seedSpec
	// steps covers every body atom except the Δ position.
	steps []joinStep
}

// seedSpec matches one Δ row against the rule's delta atom: constant
// rejects first, then slot binds, then repeated-variable equality
// checks (whose slots the binds just filled).
type seedSpec struct {
	consts []colConst
	binds  []colSlot
	eqs    []colSlot
}

// joinStep extends a partial binding through one body atom. When probe
// is non-empty the step goes through the predicate's index of ordinal
// indexOrd, whose buckets already satisfy every probe constraint;
// checks holds only the residual intra-atom repeated-variable
// equalities. An unconstrained step scans its partition.
type joinStep struct {
	pred   *predState
	part   partition
	probe  []colRef
	checks []colSlot
	binds  []colSlot
	// indexOrd is the ordinal of the probe index in every shard's
	// indexes slice, or -1 for scan steps. index is the single-shard
	// fast path: for nShards == 1 finalize resolves the ordinal to the
	// one shard's probeIndex so the serial executor pays no extra
	// indirection per probe.
	indexOrd int
	index    *probeIndex
	// routeProbe, when non-nil, maps each primary-key column of the
	// probed predicate to the probe entry supplying its value: the
	// probe constrains every key column, so any matching row's shard is
	// computable from the binding and only that one shard's index needs
	// probing. Nil probes (or probes missing a key column) fan out over
	// all shards. routeIsProbe marks the common special case where the
	// probe columns are exactly the key columns in key order — the
	// probe encoding doubles as the routing key.
	routeProbe   []int
	routeIsProbe bool
}

// Compile lowers rules into a single-shard Program over db's tables.
// It fails on predicates without tables, on head wildcards, and on
// head variables not bound in the body — conditions the legacy engine
// only detects at evaluation time.
func Compile(db *relstore.Database, rules []Rule) (*Program, error) {
	return CompileSharded(db, rules, 1)
}

// CompileSharded is Compile with the fact space of every predicate
// partitioned into the given number of shards (values below 2 compile
// the serial single-shard program). Sharded programs require every
// rule to have exactly one head atom and every predicate to have a
// primary key: a derivation is applied by the shard owning its head
// row, and rows are routed by their key encoding.
func CompileSharded(db *relstore.Database, rules []Rule, shards int) (*Program, error) {
	if shards < 1 {
		shards = 1
	}
	p := &Program{db: db, predID: make(map[string]int), nShards: shards}
	for i := range rules {
		cr, err := p.compileRule(rules[i])
		if err != nil {
			return nil, err
		}
		if shards > 1 && len(cr.heads) != 1 {
			return nil, fmt.Errorf("datalog: sharded program requires single-head rules; rule %s has %d heads", cr.rule.ID, len(cr.heads))
		}
		p.rules = append(p.rules, cr)
		if n := len(cr.slotVars); n > p.maxSlots {
			p.maxSlots = n
		}
	}
	if err := p.finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// finalize allocates the per-shard storage (rule compilation only
// registered index patterns) and, for single-shard programs, resolves
// every join step's index ordinal to the one shard's probeIndex.
func (p *Program) finalize() error {
	for _, ps := range p.preds {
		if p.nShards > 1 && len(ps.keyCols) == 0 {
			return fmt.Errorf("datalog: sharded program requires keyed predicates; %q has no primary key", ps.name)
		}
		ps.shards = make([]*predShard, p.nShards)
		for i := range ps.shards {
			sh := &predShard{indexes: make([]*probeIndex, len(ps.indexCols))}
			for j, cols := range ps.indexCols {
				sh.indexes[j] = &probeIndex{cols: cols, buckets: make(map[string][]int32)}
			}
			ps.shards[i] = sh
		}
	}
	if p.nShards == 1 {
		for _, cr := range p.rules {
			for pi := range cr.progs {
				steps := cr.progs[pi].steps
				for si := range steps {
					if steps[si].indexOrd >= 0 {
						steps[si].index = steps[si].pred.shards[0].indexes[steps[si].indexOrd]
					}
				}
			}
		}
	}
	return nil
}

// pred interns the predicate state for a table-backed predicate.
func (p *Program) pred(name string) (*predState, error) {
	if id, ok := p.predID[name]; ok {
		return p.preds[id], nil
	}
	t, ok := p.db.Table(name)
	if !ok {
		return nil, fmt.Errorf("datalog: predicate %q has no table", name)
	}
	ps := &predState{name: name, table: t, keyCols: t.Schema.Key, indexOrd: make(map[string]int)}
	p.predID[name] = len(p.preds)
	p.preds = append(p.preds, ps)
	return ps, nil
}

// ensureIndex registers (or reuses) the probe index pattern on exactly
// cols, returning its ordinal.
func (ps *predState) ensureIndex(cols []int) int {
	key := relstore.IndexName(cols)
	if ord, ok := ps.indexOrd[key]; ok {
		return ord
	}
	ord := len(ps.indexCols)
	ps.indexOrd[key] = ord
	ps.indexCols = append(ps.indexCols, append([]int(nil), cols...))
	return ord
}

func (p *Program) compileRule(r Rule) (*compiledRule, error) {
	cr := &compiledRule{rule: r, slotOf: make(map[string]int)}
	slot := func(v string) int {
		if s, ok := cr.slotOf[v]; ok {
			return s
		}
		s := len(cr.slotVars)
		cr.slotOf[v] = s
		cr.slotVars = append(cr.slotVars, v)
		return s
	}
	// Number every body variable in first-occurrence order. Head
	// variables must re-use body slots (range restriction).
	for _, a := range r.Body {
		for _, v := range a.Vars() {
			slot(v)
		}
	}
	for _, h := range r.Heads {
		ps, err := p.pred(h.Rel)
		if err != nil {
			return nil, err
		}
		hs := headSpec{pred: ps, cols: make([]headCol, len(h.Args))}
		for i, t := range h.Args {
			if t.IsConst {
				hs.cols[i] = headCol{isConst: true, konst: t.Const}
				continue
			}
			if t.Var == "_" {
				return nil, fmt.Errorf("datalog: rule %s has wildcard in head", r.ID)
			}
			s, bound := cr.slotOf[t.Var]
			if !bound {
				return nil, fmt.Errorf("datalog: rule %s head variable %q unbound", r.ID, t.Var)
			}
			hs.cols[i] = headCol{slot: s}
		}
		cr.heads = append(cr.heads, hs)
	}
	for d := range r.Body {
		dp, err := p.compileDeltaProg(cr, r, d)
		if err != nil {
			return nil, err
		}
		cr.progs = append(cr.progs, dp)
	}
	return cr, nil
}

// compileDeltaProg builds the Δ-specialization of r at body position d.
func (p *Program) compileDeltaProg(cr *compiledRule, r Rule, d int) (deltaProg, error) {
	var dp deltaProg
	ps, err := p.pred(r.Body[d].Rel)
	if err != nil {
		return dp, err
	}
	dp.pred = ps
	bound := make(map[string]bool)
	// Seed spec for the Δ atom itself.
	for col, t := range r.Body[d].Args {
		switch {
		case t.IsConst:
			dp.seed.consts = append(dp.seed.consts, colConst{col: col, val: t.Const})
		case t.Var == "_":
		case bound[t.Var]:
			dp.seed.eqs = append(dp.seed.eqs, colSlot{col: col, slot: cr.slotOf[t.Var]})
		default:
			bound[t.Var] = true
			dp.seed.binds = append(dp.seed.binds, colSlot{col: col, slot: cr.slotOf[t.Var]})
		}
	}
	// Greedy ordering of the remaining atoms (the physplan planner's
	// approach): most equality-constrained columns first, connectivity
	// to the bound variables as tiebreak, then body order.
	remaining := make([]int, 0, len(r.Body)-1)
	for j := range r.Body {
		if j != d {
			remaining = append(remaining, j)
		}
	}
	for len(remaining) > 0 {
		best, bestScore, bestConn := -1, -1, false
		for _, j := range remaining {
			score, conn := 0, false
			for _, t := range r.Body[j].Args {
				switch {
				case t.IsConst:
					score++
				case t.Var != "_" && bound[t.Var]:
					score++
					conn = true
				}
			}
			if score > bestScore || (score == bestScore && conn && !bestConn) {
				best, bestScore, bestConn = j, score, conn
			}
		}
		j := best
		for k, rj := range remaining {
			if rj == j {
				remaining = append(remaining[:k], remaining[k+1:]...)
				break
			}
		}
		st, err := p.compileStep(cr, r.Body[j], j < d, bound)
		if err != nil {
			return dp, err
		}
		dp.steps = append(dp.steps, st)
	}
	return dp, nil
}

// compileStep lowers one non-Δ body atom given the set of variables
// bound so far (which it extends with the atom's fresh variables).
func (p *Program) compileStep(cr *compiledRule, a model.Atom, beforeDelta bool, bound map[string]bool) (joinStep, error) {
	ps, err := p.pred(a.Rel)
	if err != nil {
		return joinStep{}, err
	}
	st := joinStep{pred: ps, part: partOld, indexOrd: -1}
	if beforeDelta {
		st.part = partFull
	}
	for col, t := range a.Args {
		switch {
		case t.IsConst:
			st.probe = append(st.probe, colRef{col: col, isConst: true, konst: t.Const})
		case t.Var == "_":
		case bound[t.Var]:
			st.probe = append(st.probe, colRef{col: col, slot: cr.slotOf[t.Var]})
		default:
			bound[t.Var] = true
			st.binds = append(st.binds, colSlot{col: col, slot: cr.slotOf[t.Var]})
		}
	}
	// A variable bound by this very atom (a repeated variable like
	// R(x, x) with x fresh) cannot join the probe key — the bind
	// happens while reading the row — so it becomes a residual check.
	// Re-walk the columns: binds marked the variable bound, so later
	// occurrences landed in probe; move those to checks.
	if len(st.binds) > 0 {
		ownSlots := make(map[int]bool, len(st.binds))
		firstCol := make(map[int]int, len(st.binds))
		for _, b := range st.binds {
			ownSlots[b.slot] = true
			firstCol[b.slot] = b.col
		}
		kept := st.probe[:0]
		for _, pr := range st.probe {
			if !pr.isConst && ownSlots[pr.slot] && pr.col > firstCol[pr.slot] {
				st.checks = append(st.checks, colSlot{col: pr.col, slot: pr.slot})
				continue
			}
			kept = append(kept, pr)
		}
		st.probe = kept
	}
	if len(st.probe) > 0 {
		cols := make([]int, len(st.probe))
		for i, pr := range st.probe {
			cols[i] = pr.col
		}
		st.indexOrd = ps.ensureIndex(cols)
		st.compileRoute(ps)
	}
	return st, nil
}

// compileRoute precomputes shard routing for an indexed step: when the
// probe constrains every primary-key column of the probed predicate,
// the shard holding any matching row is computable from the binding,
// so the step probes exactly one shard instead of fanning out.
func (st *joinStep) compileRoute(ps *predState) {
	if len(ps.keyCols) == 0 {
		return
	}
	route := make([]int, len(ps.keyCols))
	for i, k := range ps.keyCols {
		found := -1
		for j, pr := range st.probe {
			if pr.col == k {
				found = j
				break
			}
		}
		if found < 0 {
			return
		}
		route[i] = found
	}
	st.routeProbe = route
	if len(st.probe) == len(ps.keyCols) {
		exact := true
		for i, k := range ps.keyCols {
			if st.probe[i].col != k {
				exact = false
				break
			}
		}
		st.routeIsProbe = exact
	}
}

// VarSlots resolves variable names to slot positions for the (first)
// rule with the given ID, so hooks can read a fixed set of variables
// per firing with integer indexing instead of per-firing map lookups.
func (p *Program) VarSlots(ruleID string, vars []string) ([]int, error) {
	cr, err := p.ruleByID(ruleID)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(vars))
	for i, v := range vars {
		s, ok := cr.slotOf[v]
		if !ok {
			return nil, fmt.Errorf("datalog: rule %s has no variable %q", ruleID, v)
		}
		out[i] = s
	}
	return out, nil
}

func (p *Program) ruleByID(ruleID string) (*compiledRule, error) {
	for _, cr := range p.rules {
		if cr.rule.ID == ruleID {
			return cr, nil
		}
	}
	return nil, fmt.Errorf("datalog: no rule %q in program", ruleID)
}

// KeyCol is one key column of an atom resolved against a rule's
// compiled slot numbering: either a constant from the atom itself or a
// binding-slot position to read at firing time. It reuses the same
// slot assignment the join programs probe with, so a consumer (e.g.
// update exchange's support index) encodes a tuple key straight from
// the firing's slot buffer with no name resolution.
type KeyCol struct {
	IsConst bool
	Const   model.Datum
	Slot    int
}

// AtomKeySlots resolves the key terms of one atom of the identified
// rule into KeyCol form. keyIdx lists the positions of the relation's
// key attributes within the atom's argument list. Wildcards and
// variables absent from the rule are errors: a key term must be
// recoverable from every firing.
func (p *Program) AtomKeySlots(ruleID string, a model.Atom, keyIdx []int) ([]KeyCol, error) {
	cr, err := p.ruleByID(ruleID)
	if err != nil {
		return nil, err
	}
	out := make([]KeyCol, len(keyIdx))
	for i, k := range keyIdx {
		if k < 0 || k >= len(a.Args) {
			return nil, fmt.Errorf("datalog: rule %s atom %s key index %d out of range", ruleID, a.Rel, k)
		}
		t := a.Args[k]
		if t.IsConst {
			out[i] = KeyCol{IsConst: true, Const: t.Const}
			continue
		}
		if t.Var == "_" {
			return nil, fmt.Errorf("datalog: rule %s atom %s has wildcard key term", ruleID, a.Rel)
		}
		s, ok := cr.slotOf[t.Var]
		if !ok {
			return nil, fmt.Errorf("datalog: rule %s has no variable %q", ruleID, t.Var)
		}
		out[i] = KeyCol{Slot: s}
	}
	return out, nil
}
