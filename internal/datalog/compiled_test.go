package datalog

import (
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

// firingKey canonicalizes one (rule, binding) firing for multiset
// comparison.
func firingKey(r *Rule, b Binding) string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	key := r.ID
	for _, v := range vars {
		key += "|" + v + "=" + model.EncodeDatums([]model.Datum{b[v]})
	}
	return key
}

// tcProgram is the 2-rule transitive-closure program over a 3-edge
// chain used by the duplicate-derivation regression test. Its distinct
// derivations at fixpoint are exactly six: the three base-rule firings
// plus step firings edge(1,2)⋈path(2,3), edge(2,3)⋈path(3,4), and
// edge(1,2)⋈path(2,4).
func tcProgram(t *testing.T) (*relstore.Database, []Rule) {
	t.Helper()
	db := relstore.NewDatabase()
	edge := mkTable(t, db, "edge", 2, true)
	mkTable(t, db, "path", 2, true)
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
		edge.Insert(model.Tuple{e[0], e[1]})
	}
	rules := []Rule{
		NewRule("base", model.NewAtom("path", model.V("x"), model.V("y")),
			model.NewAtom("edge", model.V("x"), model.V("y"))),
		NewRule("step", model.NewAtom("path", model.V("x"), model.V("z")),
			model.NewAtom("edge", model.V("x"), model.V("y")),
			model.NewAtom("path", model.V("y"), model.V("z"))),
	}
	return db, rules
}

const tcDistinctDerivations = 6

// TestCompiledEngineCountsEachDerivationOnce is the regression test
// for the legacy engine's coarse-Δ duplicate-derivation bug: on a
// recursive 2-rule program the interpreter re-enumerates a derivation
// once per delta position holding one of its facts (and once more when
// a fact inserted earlier in the same pass is seen again as Δ), so
// Derivations over-counts and the hook re-fires. The compiled engine's
// Δ-partitioned programs must enumerate every distinct derivation
// exactly once.
func TestCompiledEngineCountsEachDerivationOnce(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	firings := map[string]int{}
	e.Hook = func(r *Rule, vars []string, slots []model.Datum) {
		firings[firingKey(r, BindingFromSlots(vars, slots))]++
	}
	if err := e.Run(rules); err != nil {
		t.Fatal(err)
	}
	if e.Derivations != tcDistinctDerivations {
		t.Errorf("compiled Derivations = %d, want %d", e.Derivations, tcDistinctDerivations)
	}
	if len(firings) != tcDistinctDerivations {
		t.Errorf("distinct firings = %d, want %d", len(firings), tcDistinctDerivations)
	}
	for key, n := range firings {
		if n != 1 {
			t.Errorf("firing %s seen %d times, want 1", key, n)
		}
	}
	if got := db.MustTable("path").Len(); got != 6 {
		t.Errorf("path has %d rows, want 6", got)
	}
}

// TestLegacyEngineOverCountsDerivations documents the bug the compiled
// engine fixes: on the same program the interpreter fires the hook
// more than once for at least one derivation.
func TestLegacyEngineOverCountsDerivations(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngineLegacy(db)
	firings := map[string]int{}
	e.Hook = func(r *Rule, b Binding) {
		firings[firingKey(r, b)]++
	}
	if err := e.Run(rules); err != nil {
		t.Fatal(err)
	}
	if len(firings) != tcDistinctDerivations {
		t.Errorf("legacy distinct firings = %d, want %d", len(firings), tcDistinctDerivations)
	}
	if e.Derivations <= tcDistinctDerivations {
		t.Errorf("legacy Derivations = %d; expected over-count > %d (has the coarse-Δ bug been fixed? then fold EngineLegacy into Engine)",
			e.Derivations, tcDistinctDerivations)
	}
}

// TestCompiledEngineParallelMatchesSerial runs a larger transitive
// closure serially and with a worker pool; fixpoints, derivation
// counts, and firing multisets must be identical.
func TestCompiledEngineParallelMatchesSerial(t *testing.T) {
	build := func() (*relstore.Database, []Rule) {
		db := relstore.NewDatabase()
		edge := mkTable(t, db, "edge", 2, true)
		mkTable(t, db, "path", 2, true)
		for i := int64(0); i < 60; i++ {
			edge.Insert(model.Tuple{i, i + 1})
			if i%7 == 0 {
				edge.Insert(model.Tuple{i, i + 3})
			}
		}
		rules := []Rule{
			NewRule("base", model.NewAtom("path", model.V("x"), model.V("y")),
				model.NewAtom("edge", model.V("x"), model.V("y"))),
			NewRule("step", model.NewAtom("path", model.V("x"), model.V("z")),
				model.NewAtom("edge", model.V("x"), model.V("y")),
				model.NewAtom("path", model.V("y"), model.V("z"))),
		}
		return db, rules
	}
	run := func(par int) (map[string]int, int, *relstore.Database) {
		db, rules := build()
		e := NewEngine(db)
		e.Parallelism = par
		firings := map[string]int{}
		e.Hook = func(r *Rule, vars []string, slots []model.Datum) {
			firings[firingKey(r, BindingFromSlots(vars, slots))]++
		}
		if err := e.Run(rules); err != nil {
			t.Fatal(err)
		}
		return firings, e.Derivations, db
	}
	serialFirings, serialDerivs, serialDB := run(0)
	parFirings, parDerivs, parDB := run(4)
	if serialDerivs != parDerivs {
		t.Errorf("derivations: serial %d, parallel %d", serialDerivs, parDerivs)
	}
	if len(serialFirings) != len(parFirings) {
		t.Errorf("distinct firings: serial %d, parallel %d", len(serialFirings), len(parFirings))
	}
	for key, n := range serialFirings {
		if parFirings[key] != n {
			t.Errorf("firing %s: serial %d, parallel %d", key, n, parFirings[key])
		}
	}
	for _, name := range []string{"edge", "path"} {
		s := serialDB.MustTable(name).SortedRows()
		p := parDB.MustTable(name).SortedRows()
		if len(s) != len(p) {
			t.Fatalf("%s: serial %d rows, parallel %d", name, len(s), len(p))
		}
		for i := range s {
			if model.EncodeDatums(s[i]) != model.EncodeDatums(p[i]) {
				t.Fatalf("%s row %d: serial %v, parallel %v", name, i, s[i], p[i])
			}
		}
	}
}

// TestProgramReuseAcrossRuns compiles once and re-runs the program
// after the base data changes — the update-exchange reuse pattern.
func TestProgramReuseAcrossRuns(t *testing.T) {
	db, rules := tcProgram(t)
	prog, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	if err := e.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if got := db.MustTable("path").Len(); got != 6 {
		t.Fatalf("first run: path has %d rows, want 6", got)
	}
	// Extend the chain and re-run the same program.
	db.MustTable("edge").Insert(model.Tuple{int64(4), int64(5)})
	if err := e.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if got := db.MustTable("path").Len(); got != 10 {
		t.Errorf("second run: path has %d rows, want 10", got)
	}
	if _, ok := db.MustTable("path").LookupKey([]model.Datum{int64(1), int64(5)}); !ok {
		t.Error("missing 1->5 after reuse run")
	}
}

// TestProgramVarSlots checks hook-side slot resolution and the
// compile-time validation errors.
func TestProgramVarSlots(t *testing.T) {
	db, rules := tcProgram(t)
	prog, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := prog.VarSlots("step", []string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	var got [][2]model.Datum
	e.Hook = func(r *Rule, _ []string, s []model.Datum) {
		if r.ID == "step" {
			got = append(got, [2]model.Datum{s[slots[0]], s[slots[1]]})
		}
	}
	if err := e.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("step firings = %d, want 3", len(got))
	}
	for _, pair := range got {
		// z/x of a step firing are the endpoints of the derived path
		// fact, which must be in the table.
		if _, ok := db.MustTable("path").LookupKey([]model.Datum{pair[1], pair[0]}); !ok {
			t.Errorf("step firing endpoints (%v,%v) not a path fact", pair[1], pair[0])
		}
	}
	if _, err := prog.VarSlots("step", []string{"nope"}); err == nil {
		t.Error("unknown variable should error")
	}
	if _, err := prog.VarSlots("ghost", nil); err == nil {
		t.Error("unknown rule should error")
	}
}

// TestCompileRejectsInvalidHeads covers the compile-time validations
// the legacy engine only hits at evaluation time.
func TestCompileRejectsInvalidHeads(t *testing.T) {
	db := relstore.NewDatabase()
	mkTable(t, db, "S", 1, true)
	mkTable(t, db, "H", 1, true)
	if _, err := Compile(db, []Rule{
		NewRule("unbound", model.NewAtom("H", model.V("y")), model.NewAtom("S", model.V("x"))),
	}); err == nil {
		t.Error("unbound head variable should fail to compile")
	}
	if _, err := Compile(db, []Rule{
		NewRule("wild", model.NewAtom("H", model.V("_")), model.NewAtom("S", model.V("x"))),
	}); err == nil {
		t.Error("head wildcard should fail to compile")
	}
}

// TestCompiledEngineRepeatedVarInAtom checks intra-atom repeated
// variables both for Δ seeds and join steps (the residual-check path).
func TestCompiledEngineRepeatedVarInAtom(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			r2 := mkTable(t, db, "R", 2, true)
			s2 := mkTable(t, db, "S", 2, true)
			mkTable(t, db, "Out", 1, true)
			r2.Insert(model.Tuple{int64(1), int64(1)})
			r2.Insert(model.Tuple{int64(1), int64(2)})
			s2.Insert(model.Tuple{int64(3), int64(3)})
			s2.Insert(model.Tuple{int64(4), int64(5)})
			// Out(x) :- R(x, x), S(y, y)
			rule := NewRule("diag", model.NewAtom("Out", model.V("x")),
				model.NewAtom("R", model.V("x"), model.V("x")),
				model.NewAtom("S", model.V("y"), model.V("y")))
			if _, _, err := eng.run(t, db, []Rule{rule}, nil); err != nil {
				t.Fatal(err)
			}
			out := db.MustTable("Out")
			if out.Len() != 1 {
				t.Fatalf("Out has %d rows, want 1", out.Len())
			}
			if _, ok := out.LookupKey([]model.Datum{int64(1)}); !ok {
				t.Error("missing Out(1)")
			}
		})
	}
}

// TestCompiledEngineKeyedDedup exercises narrow primary keys: a head
// row whose key already exists is dropped, exactly as the legacy
// engine's table-set semantics drop it.
func TestCompiledEngineKeyedDedup(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			src := mkTable(t, db, "Src", 2, false) // keyed on col 0 only
			mkTable(t, db, "Dst", 2, false)
			src.Insert(model.Tuple{int64(1), int64(10)})
			src.Insert(model.Tuple{int64(2), int64(10)})
			// Dst(y, x) :- Src(x, y): both source rows map to key 10.
			rule := NewRule("flip", model.NewAtom("Dst", model.V("y"), model.V("x")),
				model.NewAtom("Src", model.V("x"), model.V("y")))
			_, derivs, err := eng.run(t, db, []Rule{rule}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if derivs != 2 {
				t.Errorf("derivations = %d, want 2", derivs)
			}
			if got := db.MustTable("Dst").Len(); got != 1 {
				t.Errorf("Dst has %d rows, want 1 (key dedup)", got)
			}
		})
	}
}

func BenchmarkEngineTransitiveClosure(b *testing.B) {
	mk := func() (*relstore.Database, []Rule) {
		db := relstore.NewDatabase()
		cols := []model.Column{{Name: "a", Type: model.TypeInt}, {Name: "b", Type: model.TypeInt}}
		edge, _ := db.CreateTable(&relstore.TableSchema{Name: "edge", Columns: cols, Key: []int{0, 1}})
		db.CreateTable(&relstore.TableSchema{Name: "path", Columns: cols, Key: []int{0, 1}})
		for i := int64(0); i < 150; i++ {
			edge.Insert(model.Tuple{i, i + 1})
		}
		rules := []Rule{
			NewRule("base", model.NewAtom("path", model.V("x"), model.V("y")),
				model.NewAtom("edge", model.V("x"), model.V("y"))),
			NewRule("step", model.NewAtom("path", model.V("x"), model.V("z")),
				model.NewAtom("edge", model.V("x"), model.V("y")),
				model.NewAtom("path", model.V("y"), model.V("z"))),
		}
		return db, rules
	}
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, rules := mk()
			if err := NewEngineLegacy(db).Run(rules); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, rules := mk()
			if err := NewEngine(db).Run(rules); err != nil {
				b.Fatal(err)
			}
		}
	})
}
