package datalog

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// TestWarmAttachMatchesFullRun is the recovery-path equivalence check:
// a program warm-attached to tables that already hold a fixpoint must
// behave exactly like the program that computed the fixpoint — valid
// state, journals mirroring tables, and subsequent delta runs landing
// on the same database as a never-restarted engine.
func TestWarmAttachMatchesFullRun(t *testing.T) {
	for _, par := range []int{0, 3} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			// Oracle: one engine runs full, then extends by delta.
			odb, orules := tcProgram(t)
			oe := NewEngine(odb)
			oe.Parallelism = par
			op, err := Compile(odb, orules)
			if err != nil {
				t.Fatal(err)
			}
			if err := oe.RunProgram(op); err != nil {
				t.Fatal(err)
			}

			// Subject: compute the same fixpoint, then simulate a restart
			// by compiling a fresh program over the populated tables and
			// attaching warm instead of re-running.
			db, rules := tcProgram(t)
			e := NewEngine(db)
			e.Parallelism = par
			p0, err := Compile(db, rules)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.RunProgram(p0); err != nil {
				t.Fatal(err)
			}
			p, err := Compile(db, rules)
			if err != nil {
				t.Fatal(err)
			}
			if p.StateValid() {
				t.Fatal("fresh program claims valid state")
			}
			p.WarmAttach(nil)
			if !p.StateValid() {
				t.Fatal("state invalid after WarmAttach")
			}
			if err := p.JournalMirrorsTables(); err != nil {
				t.Fatalf("warm-attached journals do not mirror tables: %v", err)
			}

			// Both sides now take the same delta.
			newRows := []model.Tuple{{int64(0), int64(1)}, {int64(4), int64(5)}}
			for _, row := range newRows {
				if _, err := db.MustTable("edge").Insert(row); err != nil {
					t.Fatal(err)
				}
				if _, err := odb.MustTable("edge").Insert(row); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.RunProgramDelta(p, map[string][]model.Tuple{"edge": newRows}); err != nil {
				t.Fatal(err)
			}
			if err := oe.RunProgramDelta(op, map[string][]model.Tuple{"edge": newRows}); err != nil {
				t.Fatal(err)
			}
			if e.Derivations != oe.Derivations {
				t.Errorf("warm-attached delta enumerated %d derivations, never-restarted engine %d", e.Derivations, oe.Derivations)
			}
			if got, want := dbSignature(db), dbSignature(odb); got != want {
				t.Fatalf("warm-attached database differs from oracle\nwarm:\n%s\noracle:\n%s", got, want)
			}
			if err := p.JournalMirrorsTables(); err != nil {
				t.Fatalf("journals diverged after delta run: %v", err)
			}
		})
	}
}

// TestWarmAttachSupportsDeletionRepair checks that ApplyDeletions works
// straight off a warm attach — the position maps seeded by WarmAttach
// must be usable (and kept hot) without an intervening run.
func TestWarmAttachSupportsDeletionRepair(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	p0, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunProgram(p0); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	p.WarmAttach(nil)

	path := db.MustTable("path")
	key := []model.Datum{int64(1), int64(2)}
	if _, err := path.Delete(key); err != nil {
		t.Fatal(err)
	}
	enc := model.EncodeDatums(key)
	if err := p.ApplyDeletions(map[string][]string{"path": {enc}}); err != nil {
		t.Fatal(err)
	}
	if !p.StateValid() {
		t.Fatal("state invalid after deletion repair on warm-attached program")
	}
	if err := p.JournalMirrorsTables(); err != nil {
		t.Fatalf("journals do not mirror tables after repair: %v", err)
	}
	if got, want := p.JournalLen("path"), path.Len(); got != want {
		t.Fatalf("path journal holds %d rows, table %d", got, want)
	}
}
