package datalog

import (
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

func TestAtomKeySlots(t *testing.T) {
	db := relstore.NewDatabase()
	mkTable(t, db, "e", 2, true)
	mkTable(t, db, "p", 2, true)
	rule := NewRule("r1",
		model.Atom{Rel: "p", Args: []model.Term{model.V("x"), model.V("y")}},
		model.Atom{Rel: "e", Args: []model.Term{model.V("x"), model.V("y")}},
	)
	prog, err := Compile(db, []Rule{rule})
	if err != nil {
		t.Fatal(err)
	}
	// Head atom with a constant in one key position.
	atom := model.Atom{Rel: "p", Args: []model.Term{model.V("y"), model.C(int64(7))}}
	cols, err := prog.AtomKeySlots("r1", atom, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("got %d key cols", len(cols))
	}
	if cols[0].IsConst || cols[1].Slot != 0 && !cols[1].IsConst {
		t.Errorf("unexpected cols: %+v", cols)
	}
	ySlots, err := prog.VarSlots("r1", []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Slot != ySlots[0] {
		t.Errorf("y resolved to slot %d, VarSlots says %d", cols[0].Slot, ySlots[0])
	}
	if !cols[1].IsConst || !model.Equal(cols[1].Const, int64(7)) {
		t.Errorf("constant key col not preserved: %+v", cols[1])
	}

	// Errors: wildcard key term, unknown variable, unknown rule,
	// out-of-range key index.
	if _, err := prog.AtomKeySlots("r1", model.Atom{Rel: "p", Args: []model.Term{model.V("_"), model.V("x")}}, []int{0}); err == nil {
		t.Error("wildcard key term should fail")
	}
	if _, err := prog.AtomKeySlots("r1", model.Atom{Rel: "p", Args: []model.Term{model.V("nope"), model.V("x")}}, []int{0}); err == nil {
		t.Error("unknown variable should fail")
	}
	if _, err := prog.AtomKeySlots("zzz", atom, []int{0}); err == nil {
		t.Error("unknown rule should fail")
	}
	if _, err := prog.AtomKeySlots("r1", atom, []int{5}); err == nil {
		t.Error("out-of-range key index should fail")
	}
}
