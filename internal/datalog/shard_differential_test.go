package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
)

// Shard-determinism differential testing: a program compiled with S > 1
// shards must be observationally identical to the serial compiled
// engine on the same inputs — byte-identical fixpoints, the same
// derivation count (both executors enumerate each derivation exactly
// once), and the same firing multiset — across full runs, Δ-seeded
// runs, and journal repair after deletions, at several shard counts and
// worker-pool sizes. The serial engine is the oracle; no semantic
// reasoning about the programs is needed.

// churnStep is one lockstep mutation round: rows to insert into EDB
// tables (followed by a delta run) after deleting a few existing rows
// (followed by ApplyDeletions). Deletions pick rows by index into the
// table's sorted rows, which is deterministic because both sides hold
// byte-identical databases when the step is applied.
type churnStep struct {
	ins  map[string][]model.Tuple
	dels []delPick
}

type delPick struct {
	pred string
	idx  int
}

func genChurnSteps(rng *rand.Rand, s diffSetting, names []string) []churnStep {
	const domain = 3
	steps := make([]churnStep, 3+rng.Intn(2))
	for si := range steps {
		st := churnStep{ins: map[string][]model.Tuple{}}
		for _, p := range []string{"e0", "e1"} {
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				row := make(model.Tuple, s.arities[p])
				for k := range row {
					row[k] = int64(rng.Intn(domain))
				}
				st.ins[p] = append(st.ins[p], row)
			}
		}
		nd := rng.Intn(3)
		for i := 0; i < nd; i++ {
			st.dels = append(st.dels, delPick{pred: names[rng.Intn(len(names))], idx: rng.Intn(24)})
		}
		steps[si] = st
	}
	return steps
}

// shardSide is one engine-under-test (serial oracle or a sharded
// configuration) holding its own database replica and firing log.
type shardSide struct {
	label   string
	eng     *Engine
	prog    *Program
	firings map[string]int
	// byShard collects sharded firings per shard during a run (the hook
	// runs concurrently across shards); mergeFirings folds them in.
	byShard [][]string
}

func (sd *shardSide) mergeFirings() {
	for i, keys := range sd.byShard {
		for _, k := range keys {
			sd.firings[k]++
		}
		sd.byShard[i] = sd.byShard[i][:0]
	}
}

// applyStep mutates the side's database per the step and runs the
// repair + delta machinery: deletions via table delete + ApplyDeletions,
// insertions via table insert + RunProgramDelta.
func (sd *shardSide) applyStep(t *testing.T, trial int, st churnStep) {
	t.Helper()
	deleted := map[string][]string{}
	for _, pick := range st.dels {
		tbl := sd.eng.DB.MustTable(pick.pred)
		rows := tbl.SortedRows()
		if len(rows) == 0 {
			continue
		}
		row := rows[pick.idx%len(rows)]
		if ok, err := tbl.Delete(row); err != nil || !ok {
			t.Fatalf("trial %d %s: delete %v: ok=%v err=%v", trial, sd.label, row, ok, err)
		}
		// Predicates the rules never mention are not part of the program
		// (no journal to repair); the table mutation alone is the step.
		if _, ok := sd.prog.predID[pick.pred]; ok {
			deleted[pick.pred] = append(deleted[pick.pred], encKey(row, tbl.Schema.Key))
		}
	}
	if len(deleted) > 0 {
		if err := sd.prog.ApplyDeletions(deleted); err != nil {
			t.Fatalf("trial %d %s: ApplyDeletions: %v", trial, sd.label, err)
		}
	}
	delta := map[string][]model.Tuple{}
	for pred, rows := range st.ins {
		if _, ok := sd.prog.predID[pred]; !ok {
			continue
		}
		tbl := sd.eng.DB.MustTable(pred)
		for _, row := range rows {
			cp := append(model.Tuple(nil), row...)
			inserted, err := tbl.Insert(cp)
			if err != nil {
				t.Fatalf("trial %d %s: insert: %v", trial, sd.label, err)
			}
			if inserted {
				delta[pred] = append(delta[pred], cp)
			}
		}
	}
	if err := sd.eng.RunProgramDelta(sd.prog, delta); err != nil {
		t.Fatalf("trial %d %s: RunProgramDelta: %v", trial, sd.label, err)
	}
	sd.mergeFirings()
}

func TestDifferentialShardedVsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	shardCounts := []int{2, 3, 8}
	for trial := 0; trial < 50; trial++ {
		s := genDiffSetting(rng)
		var names []string
		for p := range s.arities {
			names = append(names, p)
		}
		sort.Strings(names)
		steps := genChurnSteps(rng, s, names)

		// Serial oracle.
		oracle := &shardSide{label: "serial", firings: map[string]int{}}
		odb := s.materialize(t)
		oracle.eng = NewEngine(odb)
		oracle.eng.Hook = func(r *Rule, vars []string, slots []model.Datum) {
			oracle.firings[firingKey(r, BindingFromSlots(vars, slots))]++
		}
		var err error
		if oracle.prog, err = Compile(odb, s.rules); err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		if err := oracle.eng.RunProgram(oracle.prog); err != nil {
			t.Fatalf("trial %d: serial run: %v", trial, err)
		}

		sides := make([]*shardSide, 0, len(shardCounts))
		for ci, S := range shardCounts {
			sd := &shardSide{
				label:   fmt.Sprintf("S=%d", S),
				firings: map[string]int{},
				byShard: make([][]string, S),
			}
			db := s.materialize(t)
			sd.eng = NewEngine(db)
			sd.eng.Parallelism = []int{0, 1, 3}[(trial+ci)%3]
			sd.eng.HookShard = func(shard int, r *Rule, vars []string, slots []model.Datum, heads []HeadInsert) {
				for _, h := range heads {
					if h.Row == nil {
						t.Errorf("trial %d %s: head with nil row", trial, sd.label)
					}
				}
				sd.byShard[shard] = append(sd.byShard[shard], firingKey(r, BindingFromSlots(vars, slots)))
			}
			if sd.prog, err = CompileSharded(db, s.rules, S); err != nil {
				t.Fatalf("trial %d %s: compile: %v", trial, sd.label, err)
			}
			if err := sd.eng.RunProgram(sd.prog); err != nil {
				t.Fatalf("trial %d %s: run: %v", trial, sd.label, err)
			}
			sd.mergeFirings()
			sides = append(sides, sd)
		}

		check := func(stage string) {
			t.Helper()
			osig := tableSignature(oracle.eng.DB, names)
			for _, sd := range sides {
				if sig := tableSignature(sd.eng.DB, names); sig != osig {
					t.Fatalf("trial %d %s %s: fixpoint differs from serial\nrules: %v\nserial:\n%s\nsharded:\n%s",
						trial, stage, sd.label, s.rules, osig, sig)
				}
				if sd.eng.Derivations != oracle.eng.Derivations {
					t.Fatalf("trial %d %s %s: %d derivations, serial %d\nrules: %v",
						trial, stage, sd.label, sd.eng.Derivations, oracle.eng.Derivations, s.rules)
				}
				if len(sd.firings) != len(oracle.firings) {
					t.Fatalf("trial %d %s %s: %d distinct firings, serial %d",
						trial, stage, sd.label, len(sd.firings), len(oracle.firings))
				}
				for k, n := range oracle.firings {
					if sd.firings[k] != n {
						t.Fatalf("trial %d %s %s: firing %s seen %d times, serial %d",
							trial, stage, sd.label, k, sd.firings[k], n)
					}
				}
				if err := sd.prog.JournalMirrorsTables(); err != nil {
					t.Fatalf("trial %d %s %s: %v", trial, stage, sd.label, err)
				}
			}
		}
		check("full")

		for si, st := range steps {
			oracle.applyStep(t, trial, st)
			for _, sd := range sides {
				sd.applyStep(t, trial, st)
			}
			check(fmt.Sprintf("step %d", si))
		}
	}
}

// TestShardedRunIsDeterministic re-runs one sharded program several
// times at different worker-pool sizes: the firing order inside each
// shard and the journal contents must be identical run to run (the
// merge barrier drains cross-shard queues in stable source order, so
// the pool size must be unobservable).
func TestShardedRunIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := genDiffSetting(rng)
	var names []string
	for p := range s.arities {
		names = append(names, p)
	}
	sort.Strings(names)
	const S = 4
	var want string
	var wantLog []string
	for run, par := range []int{0, 1, 2, 4, 4} {
		db := s.materialize(t)
		eng := NewEngine(db)
		eng.Parallelism = par
		logByShard := make([][]string, S)
		eng.HookShard = func(shard int, r *Rule, vars []string, slots []model.Datum, heads []HeadInsert) {
			logByShard[shard] = append(logByShard[shard],
				fmt.Sprintf("%d:%s", shard, firingKey(r, BindingFromSlots(vars, slots))))
		}
		p, err := CompileSharded(db, s.rules, S)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		var log []string
		for _, l := range logByShard {
			log = append(log, l...)
		}
		sig := tableSignature(db, names)
		if run == 0 {
			want, wantLog = sig, log
			continue
		}
		if sig != want {
			t.Fatalf("run %d (par=%d): fixpoint differs", run, par)
		}
		if len(log) != len(wantLog) {
			t.Fatalf("run %d (par=%d): %d firings, want %d", run, par, len(log), len(wantLog))
		}
		for i := range log {
			if log[i] != wantLog[i] {
				t.Fatalf("run %d (par=%d): firing %d is %s, want %s", run, par, i, log[i], wantLog[i])
			}
		}
	}
}
