package datalog

import (
	"fmt"

	"repro/internal/model"
)

// UnfoldOptions controls rule unfolding.
type UnfoldOptions struct {
	// Defs returns the rules defining a predicate (the mapping rules
	// whose head matches, plus local-contribution copy rules).
	Defs func(pred string) []Rule
	// IsBase reports predicates that are left in place (provenance
	// relations and local-contribution relations in the ProQL
	// translation).
	IsBase func(pred string) bool
	// MaxRules caps the number of produced rules, guarding against the
	// exponential blowup measured in Figures 7–8 exhausting memory.
	// Zero means no cap.
	MaxRules int
	// MaxDepth caps unfolding depth (relevant for cyclic programs);
	// zero means no cap, which is safe only for acyclic programs —
	// the case the paper's prototype targets.
	MaxDepth int
}

// Unfold expands the start rule breadth-first (Section 4.2.4): every
// non-base body atom is replaced by the bodies of its defining rules
// (renamed apart and unified), until all atoms are base atoms. The
// result is the union of conjunctive rules whose UNION ALL evaluates
// the original program for the start rule's head.
//
// Rules whose non-base atoms have no definitions are dropped (no
// derivation of that shape exists). The returned count of unfolded
// rules is the metric plotted in Figures 7 and 8.
func Unfold(start Rule, opts UnfoldOptions) ([]Rule, error) {
	type workItem struct {
		rule  Rule
		depth int
	}
	fresh := 0
	queue := []workItem{{rule: start}}
	var done []Rule
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		// Find the first non-base atom.
		idx := -1
		for i, a := range item.rule.Body {
			if !opts.IsBase(a.Rel) {
				idx = i
				break
			}
		}
		if idx < 0 {
			done = append(done, item.rule)
			if opts.MaxRules > 0 && len(done) > opts.MaxRules {
				return nil, fmt.Errorf("datalog: unfolding exceeded %d rules", opts.MaxRules)
			}
			continue
		}
		if opts.MaxDepth > 0 && item.depth >= opts.MaxDepth {
			// Depth-capped branches are dropped: their derivations are
			// deeper than the requested horizon.
			continue
		}
		atom := item.rule.Body[idx]
		for _, def := range opts.Defs(atom.Rel) {
			fresh++
			renamed := def.RenameApart(fresh)
			if len(renamed.Heads) == 0 {
				continue
			}
			// Multi-head definitions contribute via whichever head
			// matches the atom.
			for _, head := range renamed.Heads {
				if head.Rel != atom.Rel {
					continue
				}
				binding, ok := Unify(atom, head)
				if !ok {
					continue
				}
				newBody := make([]model.Atom, 0, len(item.rule.Body)-1+len(renamed.Body))
				newBody = append(newBody, item.rule.Body[:idx]...)
				newBody = append(newBody, renamed.Body...)
				newBody = append(newBody, item.rule.Body[idx+1:]...)
				nr := Rule{ID: item.rule.ID, Heads: item.rule.Heads, Body: newBody}.Substitute(binding)
				queue = append(queue, workItem{rule: nr, depth: item.depth + 1})
			}
		}
		if opts.MaxRules > 0 && len(queue)+len(done) > 4*opts.MaxRules {
			return nil, fmt.Errorf("datalog: unfolding frontier exceeded %d rules", 4*opts.MaxRules)
		}
	}
	return done, nil
}
