package datalog

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/relstore"
)

// SlotHook is the compiled engine's firing callback, invoked exactly
// once per distinct rule firing (a distinct combination of body tuples
// satisfying the rule — the Δ-partitioned executor never re-enumerates
// a derivation, unlike EngineLegacy). vars names the variable stored in
// each slot. slots is a reused buffer: hooks must copy any datums they
// keep. Precompute positions with Program.VarSlots instead of scanning
// vars per firing.
type SlotHook func(rule *Rule, vars []string, slots []model.Datum)

// HeadInsert describes one head-atom insertion of a firing, surfaced to
// HeadHook consumers: the head predicate, the materialized row, whether
// the backing table actually stored it (false when the primary key
// already existed), and — for keyed predicates — the row's canonical
// key encoding, byte-identical to model.EncodeDatums of the key
// attributes (a model.TupleRef's Key). Consumers that intern tuples by
// encoded key (update exchange's support index) reuse this instead of
// re-encoding the head key from the binding. EncKey and the HeadInsert
// slice are reused buffers, valid only during the hook invocation.
type HeadInsert struct {
	Pred     string
	EncKey   []byte
	Row      model.Tuple
	Inserted bool
}

// HeadHook is the firing callback variant that also receives the head
// insertions. When set it replaces Hook, and the heads are inserted
// BEFORE the callback runs (Hook fires before insertion) — consumers
// needing the insertion results accept that ordering.
type HeadHook func(rule *Rule, vars []string, slots []model.Datum, heads []HeadInsert)

// ShardHook is the firing callback of shard-parallel programs
// (CompileSharded with more than one shard). It is invoked by the
// shard that owns the firing's head row — concurrently across shards,
// never concurrently for the same shard — so implementations must keep
// any mutable state per shard (indexed by the shard argument) or
// immutable. The head insertion semantics match HeadHook, except that
// Inserted reflects the shard journal's duplicate check: the backing
// table itself is only written back at the end of the run.
type ShardHook func(shard int, rule *Rule, vars []string, slots []model.Datum, heads []HeadInsert)

// Engine is the compiled semi-naive Datalog engine: rules are lowered
// once into slot-based join programs (compile.go) and evaluated to
// fixpoint over flat binding arrays, probing incremental hash indexes
// over age-partitioned fact journals. With Parallelism > 1, each
// round's Δ rows are partitioned across a worker pool that collects
// firings into batches, which the coordinating goroutine then applies
// in deterministic task order. Programs compiled with more than one
// shard run every round's firing passes on all shards in parallel
// instead (shard.go), with Parallelism bounding the worker pool.
type Engine struct {
	DB   *relstore.Database
	Hook SlotHook
	// HookHeads, when non-nil, is invoked instead of Hook and
	// additionally receives the firing's head insertions (with their
	// canonical key encodings). See HeadHook for ordering semantics.
	HookHeads HeadHook
	// HookShard is the firing callback for sharded programs; setting it
	// alongside a single-shard program (or Hook/HookHeads alongside a
	// sharded one) is an error — the two modes have different
	// concurrency contracts.
	HookShard ShardHook
	// Parallelism is the worker count for the firing passes; values
	// below 2 run serially. For sharded programs it bounds the shard
	// worker pool (0 means one worker per shard).
	Parallelism int

	// Stats from the last run.
	Iterations  int
	Derivations int
}

// NewEngine builds a compiled engine over db.
func NewEngine(db *relstore.Database) *Engine {
	return &Engine{DB: db}
}

// Run compiles the rules and evaluates them to fixpoint. Callers that
// evaluate the same rule set repeatedly should Compile once and use
// RunProgram.
func (e *Engine) Run(rules []Rule) error {
	p, err := Compile(e.DB, rules)
	if err != nil {
		return err
	}
	return e.RunProgram(p)
}

// BindingFromSlots materializes a hook's slot buffer as a legacy
// Binding map, for tests and debugging output.
func BindingFromSlots(vars []string, slots []model.Datum) Binding {
	b := make(Binding, len(vars))
	for i, v := range vars {
		b[v] = slots[i]
	}
	return b
}

// checkProgram validates the program/engine pairing before a run.
func (e *Engine) checkProgram(p *Program) error {
	if p.db != e.DB {
		return fmt.Errorf("datalog: program was compiled against a different database")
	}
	if p.nShards > 1 && (e.Hook != nil || e.HookHeads != nil) {
		return fmt.Errorf("datalog: sharded program requires HookShard (Hook/HookHeads are single-shard callbacks)")
	}
	if p.nShards == 1 && e.HookShard != nil {
		return fmt.Errorf("datalog: HookShard requires a sharded program")
	}
	return nil
}

// RunProgram evaluates a compiled program to fixpoint. All facts
// already present in the database are the first round's Δ; the program
// may be re-run after the database changes (state is reseeded from the
// tables every call). A successful run leaves the journals, indexes,
// and watermarks mirroring the tables exactly (StateValid), so a
// subsequent RunProgramDelta can extend the fixpoint from newly
// inserted facts alone.
func (e *Engine) RunProgram(p *Program) error {
	if err := e.checkProgram(p); err != nil {
		return err
	}
	p.stateValid = false
	e.Iterations, e.Derivations = 0, 0
	if p.nShards > 1 {
		if err := e.runSharded(p, nil); err != nil {
			return err
		}
		p.stateValid = true
		return nil
	}
	for _, ps := range p.preds {
		ps.shards[0].reset(ps.table)
	}
	if err := e.fixpoint(p); err != nil {
		return err
	}
	p.stateValid = true
	return nil
}

// RunProgramDelta extends a previous run's fixpoint from newly
// inserted base facts alone: the delta rows (per predicate name) seed
// the first semi-naive round as Δ while everything derived before
// stays OLD, so the rounds enumerate exactly the derivations involving
// at least one new fact — inserting k rows costs O(affected
// derivations), not O(database). Requirements: the program's state
// must be valid (a successful full run with no table mutations since —
// see StateValid/InvalidateState), and the delta rows must already be
// stored in their backing tables but absent from the journals (i.e.
// freshly inserted, deduplicated by the caller). Hooks fire only for
// the new derivations. On error the state is invalidated and the next
// run must be a full RunProgram.
func (e *Engine) RunProgramDelta(p *Program, delta map[string][]model.Tuple) error {
	if err := e.checkProgram(p); err != nil {
		return err
	}
	if !p.stateValid {
		return fmt.Errorf("datalog: delta run requires valid persistent state (run RunProgram first)")
	}
	e.Iterations, e.Derivations = 0, 0
	if p.nShards > 1 {
		if err := e.runSharded(p, delta); err != nil {
			p.stateValid = false
			return err
		}
		return nil
	}
	for name, rows := range delta {
		id, ok := p.predID[name]
		if !ok {
			p.stateValid = false
			return fmt.Errorf("datalog: delta predicate %q not in program", name)
		}
		ps := p.preds[id]
		sh := ps.shards[0]
		if sh.pos != nil {
			// Keep the key→position map hot (see apply): the next
			// deletion repair stays O(deleted rows).
			var buf []byte
			for _, row := range rows {
				buf = appendCols(buf[:0], row, ps.keyCols)
				sh.pos[string(buf)] = int32(len(sh.rows))
				sh.rows = append(sh.rows, row)
			}
			sh.posBuilt = len(sh.rows)
		} else {
			sh.rows = append(sh.rows, rows...)
		}
		sh.deltaEnd = len(sh.rows)
	}
	if err := e.fixpoint(p); err != nil {
		p.stateValid = false
		return err
	}
	return nil
}

// fixpoint runs semi-naive rounds until no predicate has Δ rows (the
// single-shard loop; shard.go holds the parallel one). On entry
// rows[oldEnd:deltaEnd] of each predicate is the seed Δ.
func (e *Engine) fixpoint(p *Program) error {
	x := &executor{eng: e, prog: p}
	for {
		work := false
		for _, ps := range p.preds {
			sh := ps.shards[0]
			sh.extendIndexes()
			if sh.deltaEnd > sh.oldEnd {
				work = true
			}
		}
		if !work {
			return nil
		}
		e.Iterations++
		var err error
		if e.Parallelism > 1 {
			err = x.roundParallel(e.Parallelism)
		} else {
			err = x.roundSerial()
		}
		if err != nil {
			return err
		}
		for _, ps := range p.preds {
			sh := ps.shards[0]
			sh.oldEnd = sh.deltaEnd
			sh.deltaEnd = len(sh.rows)
		}
	}
}

// reset reseeds a shard's journal from a backing table and clears the
// indexes and position map; everything stored becomes the first
// round's Δ. (Single-shard form: the whole table lands in the shard.
// Sharded programs route rows by key hash instead — shard.go.)
func (sh *predShard) reset(table *relstore.Table) {
	sh.rows = sh.rows[:0]
	table.Iterate(func(row model.Tuple) bool {
		sh.rows = append(sh.rows, row)
		return true
	})
	sh.oldEnd = 0
	sh.deltaEnd = len(sh.rows)
	sh.synced = len(sh.rows)
	sh.pos = nil
	sh.posBuilt = 0
	sh.clearIndexes()
}

func (sh *predShard) clearIndexes() {
	for _, ix := range sh.indexes {
		ix.buckets = make(map[string][]int32, len(ix.buckets))
		ix.built = 0
	}
}

// extendIndexes brings every probe index up to the joinable watermark.
func (sh *predShard) extendIndexes() {
	var buf []byte
	for _, ix := range sh.indexes {
		for i := ix.built; i < sh.deltaEnd; i++ {
			buf = appendCols(buf[:0], sh.rows[i], ix.cols)
			ix.buckets[string(buf)] = append(ix.buckets[string(buf)], int32(i))
		}
		ix.built = sh.deltaEnd
	}
}

func appendCols(buf []byte, row model.Tuple, cols []int) []byte {
	for _, c := range cols {
		buf = model.AppendDatum(buf, row[c])
	}
	return buf
}

// executor runs one single-shard program's rounds.
type executor struct {
	eng  *Engine
	prog *Program
	// arena carves the head rows the firing passes materialize;
	// apply() runs only on the coordinating goroutine, so one arena
	// suffices even in parallel mode.
	arena model.TupleArena
	// heads and encArena are the reused buffers HookHeads firings
	// materialize head insertions into. Encoded keys are copied out of
	// the tables' scratch buffers into encArena (offsets first, slices
	// materialized after all heads inserted, since appends may move the
	// arena).
	heads    []HeadInsert
	headOffs []int
	encArena []byte
	// posBuf is the key-encoding scratch for journalAppend's position
	// map maintenance.
	posBuf []byte
}

// fireFn receives each completed firing; the serial path applies it
// immediately, the parallel path batches it.
type fireFn func(cr *compiledRule, slots []model.Datum) error

func (x *executor) roundSerial() error {
	slots := make([]model.Datum, x.prog.maxSlots)
	var keyBuf []byte
	for _, cr := range x.prog.rules {
		for pi := range cr.progs {
			dp := &cr.progs[pi]
			sh := dp.pred.shards[0]
			delta := sh.rows[sh.oldEnd:sh.deltaEnd]
			if len(delta) == 0 {
				continue
			}
			if err := runProg(cr, dp, delta, slots, &keyBuf, x.apply); err != nil {
				return err
			}
		}
	}
	return nil
}

// apply records one distinct firing: bump stats, invoke the hook, and
// insert the instantiated heads (new rows join the journal's NEW
// region, invisible until the round ends). With HookHeads set the
// heads are inserted first and surfaced to the callback.
func (x *executor) apply(cr *compiledRule, slots []model.Datum) error {
	x.eng.Derivations++
	if x.eng.HookHeads != nil {
		return x.applyWithHeads(cr, slots)
	}
	if x.eng.Hook != nil {
		x.eng.Hook(&cr.rule, cr.slotVars, slots)
	}
	for hi := range cr.heads {
		h := &cr.heads[hi]
		row := x.arena.Alloc(len(h.cols))
		for i, c := range h.cols {
			if c.isConst {
				row[i] = c.konst
			} else {
				row[i] = slots[c.slot]
			}
		}
		inserted, err := h.pred.table.Insert(row)
		if err != nil {
			return err
		}
		if inserted {
			x.journalAppend(h.pred, row, nil)
		}
	}
	return nil
}

// journalAppend appends a freshly inserted head row to the predicate's
// (single-shard) journal. Once the shard's key→position map exists —
// built by the first deletion repair (repair.go) — it is maintained
// here on the insert path, so every later repair stays O(deleted
// rows) instead of re-scanning the journal; until then the insert hot
// path pays only this nil check. enc is the row's canonical key
// encoding when the caller already has it, nil to encode here.
func (x *executor) journalAppend(pred *predState, row model.Tuple, enc []byte) {
	sh := pred.shards[0]
	if sh.pos != nil {
		if enc == nil {
			x.posBuf = appendCols(x.posBuf[:0], row, pred.keyCols)
			enc = x.posBuf
		}
		sh.pos[string(enc)] = int32(len(sh.rows))
		sh.rows = append(sh.rows, row)
		sh.posBuilt = len(sh.rows)
		return
	}
	sh.rows = append(sh.rows, row)
}

// applyWithHeads is apply for the HookHeads mode: insert every head
// (collecting the insertion results and pk encodings), then invoke the
// callback once with the completed HeadInsert batch. Single-head rules
// (the common case) hand the table's scratch encoding through
// directly; only multi-head rules copy encodings into the executor's
// arena, since a later head insert into the same table would clobber
// the earlier scratch.
func (x *executor) applyWithHeads(cr *compiledRule, slots []model.Datum) error {
	x.heads = x.heads[:0]
	multi := len(cr.heads) > 1
	if multi {
		x.headOffs = x.headOffs[:0]
		x.encArena = x.encArena[:0]
	}
	for hi := range cr.heads {
		h := &cr.heads[hi]
		row := x.arena.Alloc(len(h.cols))
		for i, c := range h.cols {
			if c.isConst {
				row[i] = c.konst
			} else {
				row[i] = slots[c.slot]
			}
		}
		enc, inserted, err := h.pred.table.InsertKeyed(row)
		if err != nil {
			return err
		}
		if inserted {
			x.journalAppend(h.pred, row, enc)
		}
		ins := HeadInsert{Pred: h.pred.name, Row: row, Inserted: inserted}
		if multi {
			x.headOffs = append(x.headOffs, len(x.encArena))
			x.encArena = append(x.encArena, enc...)
		} else {
			ins.EncKey = enc
		}
		x.heads = append(x.heads, ins)
	}
	if multi {
		for i := range x.heads {
			end := len(x.encArena)
			if i+1 < len(x.headOffs) {
				end = x.headOffs[i+1]
			}
			x.heads[i].EncKey = x.encArena[x.headOffs[i]:end]
		}
	}
	x.eng.HookHeads(&cr.rule, cr.slotVars, slots, x.heads)
	return nil
}

// runProg fires one Δ-specialized program over the given Δ rows.
func runProg(cr *compiledRule, dp *deltaProg, delta []model.Tuple, slots []model.Datum, keyBuf *[]byte, fire fireFn) error {
	for _, row := range delta {
		if !matchSeed(&dp.seed, row, slots) {
			continue
		}
		if err := joinFrom(cr, dp, 0, slots, keyBuf, fire); err != nil {
			return err
		}
	}
	return nil
}

func matchSeed(s *seedSpec, row model.Tuple, slots []model.Datum) bool {
	for _, c := range s.consts {
		if !model.Equal(row[c.col], c.val) {
			return false
		}
	}
	for _, b := range s.binds {
		slots[b.slot] = row[b.col]
	}
	for _, q := range s.eqs {
		if !model.Equal(row[q.col], slots[q.slot]) {
			return false
		}
	}
	return true
}

// joinFrom extends the binding through the steps from depth on,
// calling fire on every completed match (single-shard form; shard.go
// holds the fan-out variant). Binds need no undo: each step's checks
// reference only slots bound by earlier steps (or its own row), so
// stale values in later slots are always overwritten before being
// read.
func joinFrom(cr *compiledRule, dp *deltaProg, depth int, slots []model.Datum, keyBuf *[]byte, fire fireFn) error {
	if depth == len(dp.steps) {
		return fire(cr, slots)
	}
	st := &dp.steps[depth]
	sh := st.pred.shards[0]
	limit := sh.deltaEnd
	if st.part == partOld {
		limit = sh.oldEnd
	}
	if limit == 0 {
		return nil
	}
	if st.index != nil {
		buf := (*keyBuf)[:0]
		for _, pr := range st.probe {
			if pr.isConst {
				buf = model.AppendDatum(buf, pr.konst)
			} else {
				buf = model.AppendDatum(buf, slots[pr.slot])
			}
		}
		*keyBuf = buf
		// Bucket positions are ascending, so the partition bound is a
		// cutoff.
		for _, idx := range st.index.buckets[string(buf)] {
			if int(idx) >= limit {
				break
			}
			if err := stepRow(cr, dp, depth, st, sh.rows[idx], slots, keyBuf, fire); err != nil {
				return err
			}
		}
		return nil
	}
	for _, row := range sh.rows[:limit] {
		if err := stepRow(cr, dp, depth, st, row, slots, keyBuf, fire); err != nil {
			return err
		}
	}
	return nil
}

func stepRow(cr *compiledRule, dp *deltaProg, depth int, st *joinStep, row model.Tuple, slots []model.Datum, keyBuf *[]byte, fire fireFn) error {
	for _, b := range st.binds {
		slots[b.slot] = row[b.col]
	}
	for _, q := range st.checks {
		if !model.Equal(row[q.col], slots[q.slot]) {
			return nil
		}
	}
	return joinFrom(cr, dp, depth+1, slots, keyBuf, fire)
}

// roundParallel runs one round's firing passes over a worker pool. Δ
// rows of every (rule, delta-position) pair are chunked into tasks;
// workers enumerate matches into per-task batches (the journals and
// indexes are read-only during this phase), and the coordinator then
// applies all batches in task order — the hook/insert sequence is
// deterministic and identical in content to the serial round.
func (x *executor) roundParallel(workers int) error {
	type task struct {
		cr    *compiledRule
		dp    *deltaProg
		delta []model.Tuple
	}
	var tasks []task
	for _, cr := range x.prog.rules {
		for pi := range cr.progs {
			dp := &cr.progs[pi]
			sh := dp.pred.shards[0]
			delta := sh.rows[sh.oldEnd:sh.deltaEnd]
			if len(delta) == 0 {
				continue
			}
			chunk := (len(delta) + workers*4 - 1) / (workers * 4)
			if chunk < 32 {
				chunk = 32
			}
			for lo := 0; lo < len(delta); lo += chunk {
				hi := lo + chunk
				if hi > len(delta) {
					hi = len(delta)
				}
				tasks = append(tasks, task{cr: cr, dp: dp, delta: delta[lo:hi]})
			}
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// batches[i] holds task i's firings as slot arrays flattened at the
	// rule's stride; counts[i] the firing count (the stride can be 0
	// for variable-free rules).
	batches := make([][]model.Datum, len(tasks))
	counts := make([]int, len(tasks))
	errs := make([]error, workers)
	// Buffered and pre-filled so an early-exiting worker can never
	// strand the producer.
	queue := make(chan int, len(tasks))
	for ti := range tasks {
		queue <- ti
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slots := make([]model.Datum, x.prog.maxSlots)
			var keyBuf []byte
			for ti := range queue {
				t := tasks[ti]
				stride := len(t.cr.slotVars)
				errs[w] = runProg(t.cr, t.dp, t.delta, slots, &keyBuf, func(_ *compiledRule, s []model.Datum) error {
					batches[ti] = append(batches[ti], s[:stride]...)
					counts[ti]++
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for ti, t := range tasks {
		stride := len(t.cr.slotVars)
		for k := 0; k < counts[ti]; k++ {
			if err := x.apply(t.cr, batches[ti][k*stride:(k+1)*stride]); err != nil {
				return err
			}
		}
	}
	return nil
}
