package datalog

import (
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

func mkTable(t *testing.T, db *relstore.Database, name string, arity int, keyAll bool) *relstore.Table {
	t.Helper()
	cols := make([]model.Column, arity)
	for i := range cols {
		cols[i] = model.Column{Name: string(rune('a' + i)), Type: model.TypeInt}
	}
	var key []int
	if keyAll {
		key = make([]int, arity)
		for i := range key {
			key[i] = i
		}
	} else {
		key = []int{0}
	}
	tbl, err := db.CreateTable(&relstore.TableSchema{Name: name, Columns: cols, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// engineRunner runs a rule set on one of the two engines with a
// legacy-style binding hook, so every evaluation scenario below
// exercises both the interpreter and the compiled executor.
type engineRunner struct {
	name string
	run  func(t *testing.T, db *relstore.Database, rules []Rule, hook func(*Rule, Binding)) (iterations, derivations int, err error)
}

func engineRunners() []engineRunner {
	return []engineRunner{
		{name: "legacy", run: func(t *testing.T, db *relstore.Database, rules []Rule, hook func(*Rule, Binding)) (int, int, error) {
			t.Helper()
			e := NewEngineLegacy(db)
			if hook != nil {
				e.Hook = hook
			}
			err := e.Run(rules)
			return e.Iterations, e.Derivations, err
		}},
		{name: "compiled", run: func(t *testing.T, db *relstore.Database, rules []Rule, hook func(*Rule, Binding)) (int, int, error) {
			t.Helper()
			e := NewEngine(db)
			if hook != nil {
				e.Hook = func(r *Rule, vars []string, slots []model.Datum) {
					hook(r, BindingFromSlots(vars, slots))
				}
			}
			err := e.Run(rules)
			return e.Iterations, e.Derivations, err
		}},
	}
}

func TestEngineTransitiveClosure(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			edge := mkTable(t, db, "edge", 2, true)
			mkTable(t, db, "path", 2, true)
			for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
				edge.Insert(model.Tuple{e[0], e[1]})
			}
			rules := []Rule{
				NewRule("base", model.NewAtom("path", model.V("x"), model.V("y")),
					model.NewAtom("edge", model.V("x"), model.V("y"))),
				NewRule("step", model.NewAtom("path", model.V("x"), model.V("z")),
					model.NewAtom("edge", model.V("x"), model.V("y")),
					model.NewAtom("path", model.V("y"), model.V("z"))),
			}
			iters, _, err := eng.run(t, db, rules, nil)
			if err != nil {
				t.Fatal(err)
			}
			path := db.MustTable("path")
			if path.Len() != 6 {
				t.Fatalf("path has %d rows, want 6", path.Len())
			}
			if _, ok := path.LookupKey([]model.Datum{int64(1), int64(4)}); !ok {
				t.Error("missing 1->4")
			}
			if iters < 2 {
				t.Errorf("expected multiple iterations, got %d", iters)
			}
		})
	}
}

func TestEngineDerivationHookSeesAllDerivations(t *testing.T) {
	// r(x) derivable two ways: from s(x) and from t(x); the hook must
	// see both derivations even though the fact is inserted once.
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			s := mkTable(t, db, "s", 1, true)
			u := mkTable(t, db, "t", 1, true)
			mkTable(t, db, "r", 1, true)
			s.Insert(model.Tuple{int64(7)})
			u.Insert(model.Tuple{int64(7)})
			rules := []Rule{
				NewRule("fromS", model.NewAtom("r", model.V("x")), model.NewAtom("s", model.V("x"))),
				NewRule("fromT", model.NewAtom("r", model.V("x")), model.NewAtom("t", model.V("x"))),
			}
			seen := map[string]int{}
			if _, _, err := eng.run(t, db, rules, func(r *Rule, b Binding) {
				seen[r.ID]++
			}); err != nil {
				t.Fatal(err)
			}
			if seen["fromS"] != 1 || seen["fromT"] != 1 {
				t.Errorf("hook calls = %v, want one per rule", seen)
			}
			if db.MustTable("r").Len() != 1 {
				t.Errorf("r has %d rows", db.MustTable("r").Len())
			}
		})
	}
}

func TestEngineJoinWithConstantsAndWildcards(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			a := mkTable(t, db, "A", 3, true)
			c := mkTable(t, db, "C", 2, true)
			mkTable(t, db, "O", 2, true)
			// A(i, s, h), C(i, n) as in the running example.
			a.Insert(model.Tuple{int64(1), int64(100), int64(7)})
			a.Insert(model.Tuple{int64(2), int64(101), int64(5)})
			c.Insert(model.Tuple{int64(2), int64(200)})
			// O(n, h) :- A(i, _, h), C(i, n)
			r := NewRule("m5", model.NewAtom("O", model.V("n"), model.V("h")),
				model.NewAtom("A", model.V("i"), model.V("_"), model.V("h")),
				model.NewAtom("C", model.V("i"), model.V("n")))
			if _, _, err := eng.run(t, db, []Rule{r}, nil); err != nil {
				t.Fatal(err)
			}
			o := db.MustTable("O")
			if o.Len() != 1 {
				t.Fatalf("O has %d rows", o.Len())
			}
			row, ok := o.LookupKey([]model.Datum{int64(200), int64(5)})
			if !ok || row[1] != int64(5) {
				t.Errorf("O row = %v %v", row, ok)
			}
		})
	}
}

func TestEngineConstantInBody(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			n := mkTable(t, db, "N", 2, true)
			mkTable(t, db, "Out", 1, true)
			n.Insert(model.Tuple{int64(1), int64(0)})
			n.Insert(model.Tuple{int64(2), int64(1)})
			// Out(x) :- N(x, 1)
			r := NewRule("k", model.NewAtom("Out", model.V("x")),
				model.NewAtom("N", model.V("x"), model.C(int64(1))))
			if _, _, err := eng.run(t, db, []Rule{r}, nil); err != nil {
				t.Fatal(err)
			}
			if db.MustTable("Out").Len() != 1 {
				t.Errorf("Out = %d rows", db.MustTable("Out").Len())
			}
			if _, ok := db.MustTable("Out").LookupKey([]model.Datum{int64(2)}); !ok {
				t.Error("missing Out(2)")
			}
		})
	}
}

func TestEngineMultiHeadRule(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			src := mkTable(t, db, "S", 2, true)
			mkTable(t, db, "H1", 1, true)
			mkTable(t, db, "H2", 1, true)
			src.Insert(model.Tuple{int64(1), int64(2)})
			r := Rule{ID: "mh",
				Heads: []model.Atom{
					model.NewAtom("H1", model.V("x")),
					model.NewAtom("H2", model.V("y")),
				},
				Body: []model.Atom{model.NewAtom("S", model.V("x"), model.V("y"))},
			}
			hooks := 0
			if _, _, err := eng.run(t, db, []Rule{r}, func(*Rule, Binding) { hooks++ }); err != nil {
				t.Fatal(err)
			}
			if db.MustTable("H1").Len() != 1 || db.MustTable("H2").Len() != 1 {
				t.Error("multi-head insertion failed")
			}
			if hooks != 1 {
				t.Errorf("one derivation expected, hook saw %d", hooks)
			}
		})
	}
}

func TestEngineLargeSelfJoin(t *testing.T) {
	// Large body tables exercise the index paths of both engines: the
	// legacy engine lazily creates table secondary indexes, the
	// compiled engine probes its own journal indexes.
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			edge := mkTable(t, db, "edge", 2, true)
			mkTable(t, db, "out", 2, true)
			n := int64(200) // well above the legacy indexThreshold
			for i := int64(0); i < n; i++ {
				edge.Insert(model.Tuple{i, i + 1})
			}
			// out(x, z) :- edge(x, y), edge(y, z)
			r := NewRule("two", model.NewAtom("out", model.V("x"), model.V("z")),
				model.NewAtom("edge", model.V("x"), model.V("y")),
				model.NewAtom("edge", model.V("y"), model.V("z")))
			if _, _, err := eng.run(t, db, []Rule{r}, nil); err != nil {
				t.Fatal(err)
			}
			if got := db.MustTable("out").Len(); got != int(n-1) {
				t.Errorf("out has %d rows, want %d", got, n-1)
			}
			// The legacy probe pattern (edge joined on column 0) must
			// have built a table index.
			if eng.name == "legacy" && !edge.HasIndex([]int{0}) {
				t.Error("expected lazily created index on edge[0]")
			}
		})
	}
}

func TestEngineStats(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			s := mkTable(t, db, "s", 1, true)
			mkTable(t, db, "r", 1, true)
			s.Insert(model.Tuple{int64(1)})
			s.Insert(model.Tuple{int64(2)})
			iters, derivs, err := eng.run(t, db, []Rule{
				NewRule("copy", model.NewAtom("r", model.V("x")), model.NewAtom("s", model.V("x"))),
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if derivs != 2 {
				t.Errorf("Derivations = %d, want 2", derivs)
			}
			if iters < 1 {
				t.Errorf("Iterations = %d", iters)
			}
		})
	}
}

func TestEngineMissingTableErrors(t *testing.T) {
	for _, eng := range engineRunners() {
		t.Run(eng.name, func(t *testing.T) {
			db := relstore.NewDatabase()
			r := NewRule("x", model.NewAtom("H", model.V("v")), model.NewAtom("B", model.V("v")))
			if _, _, err := eng.run(t, db, []Rule{r}, nil); err == nil {
				t.Error("missing tables should error")
			}
		})
	}
}

func TestUnify(t *testing.T) {
	// O(n, h, true) unifies with O(x, 5, c) binding x↦n? both vars...
	a := model.NewAtom("O", model.V("n"), model.V("h"), model.C(true))
	b := model.NewAtom("O", model.V("x"), model.C(int64(5)), model.V("c"))
	binding, ok := Unify(a, b)
	if !ok {
		t.Fatal("should unify")
	}
	// h must be bound to 5, c to true; n/x linked.
	if bt, okh := binding["h"]; !okh || !bt.IsConst || bt.Const != int64(5) {
		t.Errorf("h binding = %v", binding["h"])
	}
	if ct, okc := binding["c"]; !okc || !ct.IsConst || ct.Const != true {
		t.Errorf("c binding = %v", binding["c"])
	}
	// Mismatched constants fail.
	x := model.NewAtom("R", model.C(int64(1)))
	y := model.NewAtom("R", model.C(int64(2)))
	if _, ok := Unify(x, y); ok {
		t.Error("distinct constants must not unify")
	}
	// Different predicates fail.
	if _, ok := Unify(model.NewAtom("R", model.V("v")), model.NewAtom("S", model.V("v"))); ok {
		t.Error("different predicates must not unify")
	}
	// Wildcards unify freely.
	if _, ok := Unify(model.NewAtom("R", model.V("_")), model.NewAtom("R", model.C(int64(1)))); !ok {
		t.Error("wildcard should unify with constant")
	}
}

func TestUnifyChainedVars(t *testing.T) {
	// R(x, x) ~ R(y, 3) must bind x and y to 3.
	a := model.NewAtom("R", model.V("x"), model.V("x"))
	b := model.NewAtom("R", model.V("y"), model.C(int64(3)))
	binding, ok := Unify(a, b)
	if !ok {
		t.Fatal("should unify")
	}
	resolve := func(v string) model.Term {
		t1, ok := binding[v]
		for ok && !t1.IsConst {
			t1, ok = binding[t1.Var]
		}
		return t1
	}
	if rx := resolve("x"); !rx.IsConst || rx.Const != int64(3) {
		t.Errorf("x resolves to %v", rx)
	}
}

func TestFindHomomorphism(t *testing.T) {
	// Pattern: P5(i,n), P1(i,n)   Target: P5(a,b), Al(a,_,h), P1(a,b), A(a,s,_), N(a,b,false)
	p := []model.Atom{
		model.NewAtom("P5", model.V("i"), model.V("n")),
		model.NewAtom("P1", model.V("i"), model.V("n")),
	}
	r := []model.Atom{
		model.NewAtom("P5", model.V("a"), model.V("b")),
		model.NewAtom("Al", model.V("a"), model.V("_"), model.V("h")),
		model.NewAtom("P1", model.V("a"), model.V("b")),
		model.NewAtom("A", model.V("a"), model.V("s"), model.V("_")),
		model.NewAtom("N", model.V("a"), model.V("b"), model.C(false)),
	}
	mapping, matched, ok := FindHomomorphism(p, r)
	if !ok {
		t.Fatal("homomorphism should exist")
	}
	if matched[0] != 0 || matched[1] != 2 {
		t.Errorf("matched = %v", matched)
	}
	if mi := mapping["i"]; mi.IsConst || mi.Var != "a" {
		t.Errorf("i ↦ %v", mi)
	}
	// Inconsistent variable use must fail: P5(i,n), P1(n,i) vs target
	// where both atoms use (a,b).
	p2 := []model.Atom{
		model.NewAtom("P5", model.V("i"), model.V("n")),
		model.NewAtom("P1", model.V("n"), model.V("i")),
	}
	if _, _, ok := FindHomomorphism(p2, r); ok {
		t.Error("inconsistent homomorphism should fail")
	}
	// Distinctness: pattern with two identical atoms needs two distinct
	// target atoms.
	p3 := []model.Atom{
		model.NewAtom("P5", model.V("i"), model.V("n")),
		model.NewAtom("P5", model.V("i"), model.V("n")),
	}
	if _, _, ok := FindHomomorphism(p3, r); ok {
		t.Error("cannot map two pattern atoms onto one target atom")
	}
}

func TestUnfoldRunningExample(t *testing.T) {
	// Mirrors Example 4.3: O derivations unfold into two conjunctive
	// rules over provenance and local-contribution relations.
	// Rules (with provenance atoms):
	//   target: Q(n)       :- O(n, h)
	//   m5:     O(n, h)    :- P5(i, n), A(i, s, h), C(i, n)
	//   m1:     C(i, n)    :- P1(i, n), A(i, s, l), N(i, n)
	//   LA:     A(i, s, l) :- Al(i, s, l)
	//   LC:     C(i, n)    :- Cl(i, n)
	//   LN:     N(i, n)    :- Nl(i, n)
	defs := map[string][]Rule{
		"O": {NewRule("m5", model.NewAtom("O", model.V("n"), model.V("h")),
			model.NewAtom("P5", model.V("i"), model.V("n")),
			model.NewAtom("A", model.V("i"), model.V("s"), model.V("h")),
			model.NewAtom("C", model.V("i"), model.V("n")))},
		"C": {
			NewRule("LC", model.NewAtom("C", model.V("i"), model.V("n")),
				model.NewAtom("Cl", model.V("i"), model.V("n"))),
			NewRule("m1", model.NewAtom("C", model.V("i"), model.V("n")),
				model.NewAtom("P1", model.V("i"), model.V("n")),
				model.NewAtom("A", model.V("i"), model.V("s"), model.V("l")),
				model.NewAtom("N", model.V("i"), model.V("n"))),
		},
		"A": {NewRule("LA", model.NewAtom("A", model.V("i"), model.V("s"), model.V("l")),
			model.NewAtom("Al", model.V("i"), model.V("s"), model.V("l")))},
		"N": {NewRule("LN", model.NewAtom("N", model.V("i"), model.V("n")),
			model.NewAtom("Nl", model.V("i"), model.V("n")))},
	}
	base := map[string]bool{"P5": true, "P1": true, "Al": true, "Cl": true, "Nl": true}
	start := NewRule("q", model.NewAtom("Q", model.V("n")), model.NewAtom("O", model.V("n"), model.V("h")))
	rules, err := Unfold(start, UnfoldOptions{
		Defs:   func(p string) []Rule { return defs[p] },
		IsBase: func(p string) bool { return base[p] },
	})
	if err != nil {
		t.Fatal(err)
	}
	// O ← m5; A ← Al; C ← {Cl, m1}; within m1: A ← Al, N ← Nl.
	// So 2 unfolded rules: (P5, Al, Cl) and (P5, Al, P1, Al, Nl).
	if len(rules) != 2 {
		for _, r := range rules {
			t.Log(r)
		}
		t.Fatalf("unfolded %d rules, want 2", len(rules))
	}
	for _, r := range rules {
		for _, a := range r.Body {
			if !base[a.Rel] {
				t.Errorf("non-base atom %s survived unfolding in %s", a, r)
			}
		}
	}
}

func TestUnfoldRespectsMaxRules(t *testing.T) {
	// Self-recursive definition with no base case explodes; the cap
	// must stop it.
	defs := map[string][]Rule{
		"R": {
			NewRule("r1", model.NewAtom("R", model.V("x")), model.NewAtom("R", model.V("x"))),
			NewRule("r2", model.NewAtom("R", model.V("x")), model.NewAtom("B", model.V("x"))),
		},
	}
	start := NewRule("q", model.NewAtom("Q", model.V("x")), model.NewAtom("R", model.V("x")))
	_, err := Unfold(start, UnfoldOptions{
		Defs:     func(p string) []Rule { return defs[p] },
		IsBase:   func(p string) bool { return p == "B" },
		MaxRules: 10,
		MaxDepth: 0,
	})
	if err == nil {
		t.Error("unbounded recursive unfolding should hit the cap")
	}
	// With a depth cap it terminates and yields depth-limited rules.
	rules, err := Unfold(start, UnfoldOptions{
		Defs:     func(p string) []Rule { return defs[p] },
		IsBase:   func(p string) bool { return p == "B" },
		MaxDepth: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Errorf("depth-capped unfolding = %d rules, want 5", len(rules))
	}
}

func TestRuleRenameSubstitute(t *testing.T) {
	r := NewRule("m", model.NewAtom("H", model.V("x")),
		model.NewAtom("B", model.V("x"), model.V("y"), model.C(int64(1))))
	r2 := r.RenameApart(3)
	if r2.Heads[0].Args[0].Var != "x_3" || r2.Body[0].Args[1].Var != "y_3" {
		t.Errorf("RenameApart = %v", r2)
	}
	r3 := r.Substitute(map[string]model.Term{"x": model.C(int64(9))})
	if !r3.Heads[0].Args[0].IsConst || r3.Heads[0].Args[0].Const != int64(9) {
		t.Errorf("Substitute = %v", r3)
	}
	vars := r.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}
