package datalog

import (
	"fmt"
	"sync"

	"repro/internal/model"
)

// This file is the shard-parallel executor: programs compiled with
// CompileSharded(S > 1) partition every predicate's fact space into S
// shards by a hash of the row's primary-key encoding, and each
// semi-naive round runs all shards in parallel. A shard worker
// enumerates its own Δ rows and APPLIES the resulting derivations
// locally — journal append, position-map insert, index bookkeeping,
// hook — instead of funneling batches back to a coordinator; only
// firings whose head row hashes to a foreign shard are batched into
// per-(src,dst) cross-shard queues, which the destination shards drain
// at the round's merge barrier in stable source order. The round
// structure preserves the semi-naive exactly-once guarantee (rows
// applied during a round are NEW — invisible until the global
// watermark advance) and makes every run deterministic: per-shard
// journal contents and hook sequences depend only on the shard count,
// never on the worker pool size or goroutine scheduling.
//
// Memory safety across shards: during the firing phase a worker reads
// other shards' journals through `view`, a slice-header snapshot taken
// at the round barrier. The owning shard may append concurrently, but
// appends only touch positions at or beyond deltaEnd (which readers
// never cross) and never move the rows below it — a reallocating
// append leaves the snapshot's backing array intact. Probe indexes and
// watermarks are only mutated at barriers. Backing tables are not
// written at all during a run: fresh rows live in the journals
// (rows[synced:]) and are written back table-by-table when the
// fixpoint completes.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shardOfBytes routes a canonical key encoding to a shard by FNV-1a.
func shardOfBytes(b []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// ShardOfKey reports which of n shards owns the tuple with the given
// canonical key encoding (model.EncodeDatums of the key attributes, a
// model.TupleRef's Key). Exported so consumers that keep per-shard
// satellite state (update exchange's support index) route by the exact
// hash the engine uses.
func ShardOfKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// crossQueue buffers the firings one shard produced for another within
// a round: per firing the rule and its slot binding, flattened at the
// rule's stride into one reusable arena.
type crossQueue struct {
	crs  []*compiledRule
	offs []int32
	flat []model.Datum
}

func (q *crossQueue) reset() {
	q.crs = q.crs[:0]
	q.offs = q.offs[:0]
	q.flat = q.flat[:0]
}

// shardedRun drives one sharded program evaluation.
type shardedRun struct {
	eng     *Engine
	prog    *Program
	n       int
	workers int
	execs   []*shardExec
}

// shardExec is one shard's worker state: reusable binding and
// encoding buffers, the shard's tuple arena, its outgoing cross-shard
// queues, and its derivation count (summed deterministically into the
// engine stats after the run).
type shardExec struct {
	x  *shardedRun
	id int

	slots []model.Datum
	// keyBufs holds one probe-encoding scratch per join depth: a
	// fan-out over shards re-reads the encoded probe after deeper
	// recursion returned, so depths cannot share one buffer the way the
	// single-shard executor does.
	keyBufs [][]byte
	// routeBuf is the scratch for shard-routing encodings (head keys
	// and non-probe-order route keys); always fully consumed before any
	// recursion.
	routeBuf []byte
	arena    model.TupleArena
	headBuf  [1]HeadInsert
	// rowScratch materializes duplicate head rows for the hook without
	// spending arena memory on them; valid only during the hook call,
	// like EncKey.
	rowScratch model.Tuple
	out        []crossQueue

	derivations int
}

// runSharded evaluates a sharded program to fixpoint: a full run when
// delta is nil (journals reseeded and routed from the tables), a
// delta-seeded run otherwise. On success the backing tables have been
// synced with every fresh journal row.
func (e *Engine) runSharded(p *Program, delta map[string][]model.Tuple) error {
	x := &shardedRun{eng: e, prog: p, n: p.nShards}
	x.workers = e.Parallelism
	if x.workers <= 0 || x.workers > x.n {
		x.workers = x.n
	}
	// Exec scratch (binding buffers, cross-shard queues, arenas) lives
	// on the Program so warm re-runs reuse the grown queue capacity
	// instead of re-paying round-1's allocation; a Program only ever
	// evaluates one run at a time, like its journals.
	if p.execs == nil {
		maxSteps := 0
		for _, cr := range p.rules {
			for pi := range cr.progs {
				if n := len(cr.progs[pi].steps); n > maxSteps {
					maxSteps = n
				}
			}
		}
		p.execs = make([]*shardExec, x.n)
		for i := range p.execs {
			p.execs[i] = &shardExec{
				id:      i,
				slots:   make([]model.Datum, p.maxSlots),
				keyBufs: make([][]byte, maxSteps),
				out:     make([]crossQueue, x.n),
			}
		}
	}
	x.execs = p.execs
	for _, se := range x.execs {
		se.x = x
		se.derivations = 0
	}
	if delta == nil {
		if err := x.resetAll(); err != nil {
			return err
		}
	} else if err := x.seedDelta(delta); err != nil {
		return err
	}
	if err := x.fixpoint(); err != nil {
		return err
	}
	if err := x.syncTables(); err != nil {
		return err
	}
	for _, se := range x.execs {
		e.Derivations += se.derivations
	}
	return nil
}

// tasks runs f(0..n-1) over the worker pool and returns the
// lowest-index error.
func (x *shardedRun) tasks(n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := x.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	queue := make(chan int, n)
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// phase runs one per-shard pass over the worker pool (a barrier: every
// shard completes before phase returns).
func (x *shardedRun) phase(f func(se *shardExec) error) error {
	return x.tasks(x.n, func(i int) error { return f(x.execs[i]) })
}

// resetAll reseeds every predicate's shard journals from its backing
// table, routing each row by its key hash; everything stored becomes
// the first round's Δ. Parallel by predicate (each task reads one
// table and writes only that predicate's shards).
func (x *shardedRun) resetAll() error {
	return x.tasks(len(x.prog.preds), func(pi int) error {
		ps := x.prog.preds[pi]
		for _, sh := range ps.shards {
			sh.rows = sh.rows[:0]
			sh.clearIndexes()
			if sh.pos == nil {
				sh.pos = make(map[string]int32)
			} else {
				clear(sh.pos)
			}
			sh.posBuilt = 0
		}
		var buf []byte
		ps.table.Iterate(func(row model.Tuple) bool {
			buf = appendCols(buf[:0], row, ps.keyCols)
			sh := ps.shards[shardOfBytes(buf, x.n)]
			sh.pos[string(buf)] = int32(len(sh.rows))
			sh.rows = append(sh.rows, row)
			return true
		})
		for _, sh := range ps.shards {
			sh.oldEnd = 0
			sh.deltaEnd = len(sh.rows)
			sh.synced = len(sh.rows)
			sh.posBuilt = len(sh.rows)
			sh.view = sh.rows
		}
		return nil
	})
}

// seedDelta routes the delta rows into their shards' journals as the
// first round's Δ. The rows are already stored in the backing tables
// (RunProgramDelta's contract), so the synced watermark advances with
// them.
func (x *shardedRun) seedDelta(delta map[string][]model.Tuple) error {
	for name, rows := range delta {
		id, ok := x.prog.predID[name]
		if !ok {
			return fmt.Errorf("datalog: delta predicate %q not in program", name)
		}
		ps := x.prog.preds[id]
		var buf []byte
		for _, row := range rows {
			buf = appendCols(buf[:0], row, ps.keyCols)
			sh := ps.shards[shardOfBytes(buf, x.n)]
			sh.pos[string(buf)] = int32(len(sh.rows))
			sh.rows = append(sh.rows, row)
		}
		for _, sh := range ps.shards {
			sh.deltaEnd = len(sh.rows)
			sh.synced = len(sh.rows)
			sh.posBuilt = len(sh.rows)
		}
	}
	return nil
}

// fixpoint runs the shard-parallel semi-naive rounds: per round, a
// parallel index/view refresh, the parallel firing phase (local
// applies plus cross-shard enqueues), the parallel queue drain, and
// the serial watermark advance.
func (x *shardedRun) fixpoint() error {
	for {
		if err := x.phase(func(se *shardExec) error {
			for _, ps := range x.prog.preds {
				sh := ps.shards[se.id]
				sh.extendIndexes()
				sh.view = sh.rows
			}
			return nil
		}); err != nil {
			return err
		}
		work := false
		for _, ps := range x.prog.preds {
			for _, sh := range ps.shards {
				if sh.deltaEnd > sh.oldEnd {
					work = true
				}
			}
		}
		if !work {
			return nil
		}
		x.eng.Iterations++
		if err := x.phase((*shardExec).enumerate); err != nil {
			return err
		}
		if err := x.phase((*shardExec).drain); err != nil {
			return err
		}
		for _, ps := range x.prog.preds {
			for _, sh := range ps.shards {
				sh.oldEnd = sh.deltaEnd
				sh.deltaEnd = len(sh.rows)
			}
		}
	}
}

// enumerate is the firing phase of one shard: run every Δ-specialized
// program over the shard's own Δ rows, applying own-shard firings
// in place and enqueueing foreign ones.
func (se *shardExec) enumerate() error {
	for _, cr := range se.x.prog.rules {
		for pi := range cr.progs {
			dp := &cr.progs[pi]
			sh := dp.pred.shards[se.id]
			delta := sh.rows[sh.oldEnd:sh.deltaEnd]
			for _, row := range delta {
				if !matchSeed(&dp.seed, row, se.slots) {
					continue
				}
				if err := se.joinFrom(cr, dp, 0); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// joinFrom is the sharded variant of the executor's join recursion: an
// indexed step whose probe covers the target's key columns routes to
// the single shard that can hold matches; other steps fan out over all
// shards in stable order.
func (se *shardExec) joinFrom(cr *compiledRule, dp *deltaProg, depth int) error {
	if depth == len(dp.steps) {
		return se.fire(cr)
	}
	st := &dp.steps[depth]
	if st.indexOrd >= 0 {
		buf := se.keyBufs[depth][:0]
		for _, pr := range st.probe {
			if pr.isConst {
				buf = model.AppendDatum(buf, pr.konst)
			} else {
				buf = model.AppendDatum(buf, se.slots[pr.slot])
			}
		}
		se.keyBufs[depth] = buf
		if st.routeProbe != nil {
			rb := buf
			if !st.routeIsProbe {
				rb = se.routeBuf[:0]
				for _, j := range st.routeProbe {
					pr := st.probe[j]
					if pr.isConst {
						rb = model.AppendDatum(rb, pr.konst)
					} else {
						rb = model.AppendDatum(rb, se.slots[pr.slot])
					}
				}
				se.routeBuf = rb
			}
			sh := st.pred.shards[shardOfBytes(rb, se.x.n)]
			return se.probeShard(cr, dp, depth, st, sh, buf)
		}
		for _, sh := range st.pred.shards {
			if err := se.probeShard(cr, dp, depth, st, sh, buf); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sh := range st.pred.shards {
		limit := sh.deltaEnd
		if st.part == partOld {
			limit = sh.oldEnd
		}
		view := sh.view
		for _, row := range view[:limit] {
			if err := se.stepRow(cr, dp, depth, st, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// probeShard walks one shard's index bucket for the encoded probe.
// buf is the depth's own scratch, so it stays valid across the shard
// fan-out even though deeper recursion re-encodes at other depths.
func (se *shardExec) probeShard(cr *compiledRule, dp *deltaProg, depth int, st *joinStep, sh *predShard, buf []byte) error {
	limit := sh.deltaEnd
	if st.part == partOld {
		limit = sh.oldEnd
	}
	if limit == 0 {
		return nil
	}
	view := sh.view
	for _, idx := range sh.indexes[st.indexOrd].buckets[string(buf)] {
		if int(idx) >= limit {
			break
		}
		if err := se.stepRow(cr, dp, depth, st, view[idx]); err != nil {
			return err
		}
	}
	return nil
}

func (se *shardExec) stepRow(cr *compiledRule, dp *deltaProg, depth int, st *joinStep, row model.Tuple) error {
	for _, b := range st.binds {
		se.slots[b.slot] = row[b.col]
	}
	for _, q := range st.checks {
		if !model.Equal(row[q.col], se.slots[q.slot]) {
			return nil
		}
	}
	return se.joinFrom(cr, dp, depth+1)
}

// fire routes one completed firing by its head-row key hash: applied
// in place when this shard owns the head row, enqueued for the owning
// shard otherwise.
func (se *shardExec) fire(cr *compiledRule) error {
	h := cr.head()
	buf := se.routeBuf[:0]
	for _, k := range h.pred.keyCols {
		c := h.cols[k]
		if c.isConst {
			buf = model.AppendDatum(buf, c.konst)
		} else {
			buf = model.AppendDatum(buf, se.slots[c.slot])
		}
	}
	se.routeBuf = buf
	dst := shardOfBytes(buf, se.x.n)
	if dst == se.id {
		return se.apply(cr, se.slots, buf)
	}
	q := &se.out[dst]
	q.crs = append(q.crs, cr)
	q.offs = append(q.offs, int32(len(q.flat)))
	q.flat = append(q.flat, se.slots[:len(cr.slotVars)]...)
	return nil
}

// apply records one distinct firing on the shard that owns its head
// row: duplicate-check against the shard's position map (the journals
// mirror the tables, so map presence is exactly table presence plus
// this run's fresh rows), append to the NEW journal region, and invoke
// the shard hook. The backing table is not touched — end-of-run sync
// writes the fresh rows back.
func (se *shardExec) apply(cr *compiledRule, slots []model.Datum, enc []byte) error {
	h := cr.head()
	sh := h.pred.shards[se.id]
	se.derivations++
	_, dup := sh.pos[string(enc)]
	var row model.Tuple
	if dup {
		// Duplicate head rows exist only for the hook call; materialize
		// them in reusable scratch rather than permanent arena memory.
		if cap(se.rowScratch) < len(h.cols) {
			se.rowScratch = make(model.Tuple, len(h.cols))
		}
		row = se.rowScratch[:len(h.cols)]
	} else {
		row = se.arena.Alloc(len(h.cols))
	}
	for i, c := range h.cols {
		if c.isConst {
			row[i] = c.konst
		} else {
			row[i] = slots[c.slot]
		}
	}
	inserted := false
	if !dup {
		sh.pos[string(enc)] = int32(len(sh.rows))
		sh.rows = append(sh.rows, row)
		sh.posBuilt = len(sh.rows)
		inserted = true
	}
	if hook := se.x.eng.HookShard; hook != nil {
		se.headBuf[0] = HeadInsert{Pred: h.pred.name, EncKey: enc, Row: row, Inserted: inserted}
		hook(se.id, &cr.rule, cr.slotVars, slots, se.headBuf[:])
	}
	return nil
}

// drain is the merge phase of one shard: apply the firings every other
// shard queued for it, in stable source order, so the destination
// journal and hook sequence are deterministic.
func (se *shardExec) drain() error {
	for src := 0; src < se.x.n; src++ {
		if src == se.id {
			continue
		}
		q := &se.x.execs[src].out[se.id]
		for i, cr := range q.crs {
			start := q.offs[i]
			slots := q.flat[start : int(start)+len(cr.slotVars)]
			h := cr.head()
			buf := se.routeBuf[:0]
			for _, k := range h.pred.keyCols {
				c := h.cols[k]
				if c.isConst {
					buf = model.AppendDatum(buf, c.konst)
				} else {
					buf = model.AppendDatum(buf, slots[c.slot])
				}
			}
			se.routeBuf = buf
			if err := se.apply(cr, slots, buf); err != nil {
				return err
			}
		}
		q.reset()
	}
	return nil
}

// syncTables writes every shard's fresh journal rows (rows[synced:])
// back to the backing tables, parallel by predicate (each table has
// exactly one writer) and in stable shard order within a table. The
// position maps guarantee key uniqueness across a predicate's shards,
// so every insert must succeed.
func (x *shardedRun) syncTables() error {
	return x.tasks(len(x.prog.preds), func(pi int) error {
		ps := x.prog.preds[pi]
		for _, sh := range ps.shards {
			for _, row := range sh.rows[sh.synced:] {
				inserted, err := ps.table.Insert(row)
				if err != nil {
					return err
				}
				if !inserted {
					return fmt.Errorf("datalog: internal: sharded journal row of %s already in table", ps.name)
				}
			}
			sh.synced = len(sh.rows)
		}
		return nil
	})
}
