package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

// Differential testing in the PR-1 style: random positive Datalog
// programs evaluated by the compiled engine must yield exactly the
// fixpoint and (set of) hook firings the legacy interpreter yields —
// and additionally the compiled engine must never enumerate the same
// derivation twice.

// diffSetting is one randomly generated program plus its base data,
// replayable onto fresh databases so each engine evaluates identical
// inputs.
type diffSetting struct {
	arities map[string]int
	facts   map[string][]model.Tuple
	rules   []Rule
}

// genDiffSetting draws a random program: 2 EDB predicates with random
// facts, 3 IDB predicates, and 2–4 range-restricted rules mixing
// variables, constants, and wildcards over a tiny datum domain (so
// fixpoints stay small while recursion, self-joins, and cross products
// all occur).
func genDiffSetting(rng *rand.Rand) diffSetting {
	s := diffSetting{arities: map[string]int{}, facts: map[string][]model.Tuple{}}
	edb := []string{"e0", "e1"}
	idb := []string{"p0", "p1", "p2"}
	for _, p := range append(append([]string{}, edb...), idb...) {
		s.arities[p] = 1 + rng.Intn(2)
	}
	const domain = 3
	for _, p := range edb {
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			row := make(model.Tuple, s.arities[p])
			for k := range row {
				row[k] = int64(rng.Intn(domain))
			}
			s.facts[p] = append(s.facts[p], row)
		}
	}
	pool := []string{"x", "y", "z", "w"}
	all := append(append([]string{}, edb...), idb...)
	nRules := 2 + rng.Intn(3)
	for ri := 0; ri < nRules; ri++ {
		var body []model.Atom
		varSet := map[string]bool{}
		nAtoms := 1 + rng.Intn(3)
		for ai := 0; ai < nAtoms; ai++ {
			rel := all[rng.Intn(len(all))]
			args := make([]model.Term, s.arities[rel])
			for k := range args {
				switch roll := rng.Intn(10); {
				case roll < 6:
					v := pool[rng.Intn(len(pool))]
					args[k] = model.V(v)
					varSet[v] = true
				case roll < 8:
					args[k] = model.C(int64(rng.Intn(domain)))
				default:
					args[k] = model.V("_")
				}
			}
			body = append(body, model.Atom{Rel: rel, Args: args})
		}
		var bodyVars []string
		for v := range varSet {
			bodyVars = append(bodyVars, v)
		}
		head := idb[rng.Intn(len(idb))]
		hargs := make([]model.Term, s.arities[head])
		for k := range hargs {
			if len(bodyVars) > 0 && rng.Intn(10) < 8 {
				hargs[k] = model.V(bodyVars[rng.Intn(len(bodyVars))])
			} else {
				hargs[k] = model.C(int64(rng.Intn(domain)))
			}
		}
		s.rules = append(s.rules, Rule{
			ID:    fmt.Sprintf("r%d", ri),
			Heads: []model.Atom{{Rel: head, Args: hargs}},
			Body:  body,
		})
	}
	return s
}

// materialize replays the setting onto a fresh database.
func (s diffSetting) materialize(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase()
	for p, arity := range s.arities {
		mkTable(t, db, p, arity, true)
	}
	for p, rows := range s.facts {
		tbl := db.MustTable(p)
		for _, row := range rows {
			if _, err := tbl.Insert(append(model.Tuple(nil), row...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func tableSignature(db *relstore.Database, names []string) string {
	sig := ""
	for _, n := range names {
		sig += n + ":"
		for _, row := range db.MustTable(n).SortedRows() {
			sig += model.EncodeDatums(row) + ";"
		}
		sig += "\n"
	}
	return sig
}

func TestDifferentialCompiledVsLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 80; trial++ {
		s := genDiffSetting(rng)
		var names []string
		for p := range s.arities {
			names = append(names, p)
		}

		legacyDB := s.materialize(t)
		legacy := NewEngineLegacy(legacyDB)
		legacyFirings := map[string]int{}
		legacy.Hook = func(r *Rule, b Binding) {
			legacyFirings[firingKey(r, b)]++
		}
		if err := legacy.Run(s.rules); err != nil {
			t.Fatalf("trial %d: legacy: %v", trial, err)
		}

		compiledDB := s.materialize(t)
		compiled := NewEngine(compiledDB)
		if trial%3 == 2 {
			compiled.Parallelism = 3
		}
		compiledFirings := map[string]int{}
		compiled.Hook = func(r *Rule, vars []string, slots []model.Datum) {
			compiledFirings[firingKey(r, BindingFromSlots(vars, slots))]++
		}
		if err := compiled.Run(s.rules); err != nil {
			t.Fatalf("trial %d: compiled: %v\nrules: %v", trial, err, s.rules)
		}

		// Identical fixpoints.
		lsig, csig := tableSignature(legacyDB, names), tableSignature(compiledDB, names)
		if lsig != csig {
			t.Fatalf("trial %d: fixpoints differ\nrules: %v\nlegacy:\n%s\ncompiled:\n%s",
				trial, s.rules, lsig, csig)
		}
		// Identical firing sets (the legacy engine may enumerate a
		// derivation several times; as a set both engines must agree).
		for key := range legacyFirings {
			if compiledFirings[key] == 0 {
				t.Fatalf("trial %d: firing %s seen by legacy only\nrules: %v", trial, key, s.rules)
			}
		}
		// A firing is a distinct combination of body tuples; the hook
		// only sees the variable binding, which is injective in the
		// tuple combination exactly when the rule has no body
		// wildcards (tables here are keyed on all columns). Restrict
		// the enumerated-exactly-once check to those rules.
		wildcardRule := map[string]bool{}
		anyWildcard := false
		for _, r := range s.rules {
			for _, a := range r.Body {
				for _, arg := range a.Args {
					if !arg.IsConst && arg.Var == "_" {
						wildcardRule[r.ID] = true
						anyWildcard = true
					}
				}
			}
		}
		for key, n := range compiledFirings {
			if legacyFirings[key] == 0 {
				t.Fatalf("trial %d: firing %s seen by compiled only\nrules: %v", trial, key, s.rules)
			}
			ruleID := key
			for i := 0; i < len(key); i++ {
				if key[i] == '|' {
					ruleID = key[:i]
					break
				}
			}
			if !wildcardRule[ruleID] && n != 1 {
				t.Fatalf("trial %d: compiled enumerated %s %d times\nrules: %v", trial, key, n, s.rules)
			}
		}
		if !anyWildcard && compiled.Derivations != len(compiledFirings) {
			t.Fatalf("trial %d: compiled Derivations=%d, distinct firings=%d",
				trial, compiled.Derivations, len(compiledFirings))
		}
	}
}
