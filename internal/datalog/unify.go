package datalog

import (
	"repro/internal/model"
)

// Unify computes a most general unifier of two atoms, treating the
// variable namespaces as already disjoint (callers rename apart first).
// The returned binding maps variables from either atom to terms;
// wildcards ("_") unify with anything without binding. Returns false if
// the atoms do not unify.
func Unify(a, b model.Atom) (map[string]model.Term, bool) {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return nil, false
	}
	binding := make(map[string]model.Term)
	// resolve chases variable bindings to a representative term.
	var resolve func(t model.Term) model.Term
	resolve = func(t model.Term) model.Term {
		for !t.IsConst {
			next, ok := binding[t.Var]
			if !ok {
				return t
			}
			t = next
		}
		return t
	}
	for i := range a.Args {
		x, y := resolve(a.Args[i]), resolve(b.Args[i])
		switch {
		case !x.IsConst && x.Var == "_", !y.IsConst && y.Var == "_":
			// Wildcards match without constraint.
		case x.IsConst && y.IsConst:
			if !model.Equal(x.Const, y.Const) {
				return nil, false
			}
		case !x.IsConst:
			binding[x.Var] = y
		case !y.IsConst:
			binding[y.Var] = x
		}
	}
	// Flatten chains so callers can substitute in one pass.
	flat := make(map[string]model.Term, len(binding))
	for v := range binding {
		flat[v] = resolve(model.V(v))
	}
	return flat, true
}

// FindHomomorphism searches for a homomorphism from pattern body p to
// target body r: a mapping from the variables of p to variables and
// constants of r such that every atom of p is mapped to a *distinct*
// atom of r (distinctness is required because the ASR rewriting
// algorithm removes the matched atoms). It returns the variable mapping
// and, for each atom of p, the index of the r atom it maps to.
//
// This is the findHomomorphism subroutine of the paper's Figure 4.
func FindHomomorphism(p, r []model.Atom) (map[string]model.Term, []int, bool) {
	mapping := make(map[string]model.Term)
	matched := make([]int, len(p))
	used := make([]bool, len(r))

	var try func(i int) bool
	try = func(i int) bool {
		if i == len(p) {
			return true
		}
		pa := p[i]
		for j, ra := range r {
			if used[j] || ra.Rel != pa.Rel || len(ra.Args) != len(pa.Args) {
				continue
			}
			// Attempt to extend the mapping with pa ↦ ra.
			added := make([]string, 0, len(pa.Args))
			ok := true
			for k := range pa.Args {
				pt, rt := pa.Args[k], ra.Args[k]
				if pt.IsConst {
					if !rt.IsConst || !model.Equal(pt.Const, rt.Const) {
						ok = false
						break
					}
					continue
				}
				if pt.Var == "_" {
					continue
				}
				if prev, bound := mapping[pt.Var]; bound {
					if !prev.Equal(rt) {
						ok = false
						break
					}
					continue
				}
				mapping[pt.Var] = rt
				added = append(added, pt.Var)
			}
			if ok {
				used[j] = true
				matched[i] = j
				if try(i + 1) {
					return true
				}
				used[j] = false
			}
			for _, v := range added {
				delete(mapping, v)
			}
		}
		return false
	}
	if !try(0) {
		return nil, nil, false
	}
	return mapping, matched, true
}
