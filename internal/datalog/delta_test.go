package datalog

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

// dbSignature renders every table's sorted live rows for equality
// comparison across engines/run modes.
func dbSignature(db *relstore.Database) string {
	sig := ""
	for _, name := range db.TableNames() {
		sig += name + ":"
		for _, row := range db.MustTable(name).SortedRows() {
			sig += model.EncodeDatums(row) + ";"
		}
		sig += "\n"
	}
	return sig
}

// TestRunProgramDeltaMatchesFullRun checks the Δ-seeded run mode on
// the recursive transitive-closure program: after a full run, new
// edges fed through RunProgramDelta must (a) leave the database
// identical to a from-scratch fixpoint over all edges, and (b) fire
// the hook exactly once per derivation that involves a new fact —
// never re-enumerating old derivations.
func TestRunProgramDeltaMatchesFullRun(t *testing.T) {
	for _, par := range []int{0, 3} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			db, rules := tcProgram(t)
			e := NewEngine(db)
			e.Parallelism = par
			p, err := Compile(db, rules)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.RunProgram(p); err != nil {
				t.Fatal(err)
			}
			if !p.StateValid() {
				t.Fatal("state invalid after successful full run")
			}
			fullDerivs := e.Derivations

			// Insert new edges 0->1 and 4->5: 0->1 prepends to the chain
			// (paths 0->1..0->5), 4->5 appends (paths 1..4 ->5).
			edge := db.MustTable("edge")
			newRows := []model.Tuple{{int64(0), int64(1)}, {int64(4), int64(5)}}
			for _, row := range newRows {
				if _, err := edge.Insert(row); err != nil {
					t.Fatal(err)
				}
			}
			firings := map[string]int{}
			e.Hook = func(r *Rule, vars []string, slots []model.Datum) {
				firings[firingKey(r, BindingFromSlots(vars, slots))]++
			}
			if err := e.RunProgramDelta(p, map[string][]model.Tuple{"edge": newRows}); err != nil {
				t.Fatal(err)
			}
			if !p.StateValid() {
				t.Fatal("state invalid after successful delta run")
			}
			for key, n := range firings {
				if n != 1 {
					t.Errorf("delta firing %s seen %d times, want 1", key, n)
				}
			}

			// Oracle: fresh database with all five edges, full fixpoint.
			odb, orules := tcProgram(t)
			oedge := odb.MustTable("edge")
			for _, row := range newRows {
				if _, err := oedge.Insert(row); err != nil {
					t.Fatal(err)
				}
			}
			oe := NewEngine(odb)
			if err := oe.Run(orules); err != nil {
				t.Fatal(err)
			}
			if got, want := dbSignature(db), dbSignature(odb); got != want {
				t.Fatalf("delta-extended database differs from oracle\ndelta:\n%s\noracle:\n%s", got, want)
			}
			// Every derivation is enumerated exactly once across the two
			// runs: full + delta must equal the oracle's total.
			if fullDerivs+e.Derivations != oe.Derivations {
				t.Errorf("derivations full(%d) + delta(%d) != oracle(%d)", fullDerivs, e.Derivations, oe.Derivations)
			}
			// And the delta run enumerated strictly fewer than the whole
			// program (it skipped all old-only derivations).
			if e.Derivations >= oe.Derivations {
				t.Errorf("delta run enumerated %d derivations, oracle total is %d — no savings", e.Derivations, oe.Derivations)
			}
		})
	}
}

// TestRunProgramDeltaEmptyIsNoOp checks a delta run with no pending
// rows terminates immediately without touching anything.
func TestRunProgramDeltaEmptyIsNoOp(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	p, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	before := dbSignature(db)
	if err := e.RunProgramDelta(p, nil); err != nil {
		t.Fatal(err)
	}
	if e.Derivations != 0 || e.Iterations != 0 {
		t.Errorf("empty delta run did work: iterations=%d derivations=%d", e.Iterations, e.Derivations)
	}
	if got := dbSignature(db); got != before {
		t.Error("empty delta run changed the database")
	}
}

// TestRunProgramDeltaStateGuards checks the validity protocol: a delta
// run demands a prior successful full run, and InvalidateState forces
// the next run to be full.
func TestRunProgramDeltaStateGuards(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	p, err := Compile(db, rules)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunProgramDelta(p, nil); err == nil {
		t.Fatal("delta run before any full run must fail")
	}
	if err := e.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	p.InvalidateState()
	if err := e.RunProgramDelta(p, nil); err == nil {
		t.Fatal("delta run after InvalidateState must fail")
	}
	if err := e.RunProgram(p); err != nil {
		t.Fatal(err)
	}
	if err := e.RunProgramDelta(p, map[string][]model.Tuple{"nosuch": {{int64(1)}}}); err == nil {
		t.Fatal("delta on unknown predicate must fail")
	}
	if p.StateValid() {
		t.Fatal("failed delta run must invalidate state")
	}
}

// TestHeadHookSurfacesEncodedKeys checks the HookHeads path: heads are
// inserted before the callback, Inserted reflects primary-key dedup,
// and EncKey is byte-identical to the canonical key encoding a
// TupleRef carries.
func TestHeadHookSurfacesEncodedKeys(t *testing.T) {
	db, rules := tcProgram(t)
	e := NewEngine(db)
	type seen struct {
		pred     string
		enc      string
		row      string
		inserted bool
	}
	var got []seen
	e.HookHeads = func(r *Rule, vars []string, slots []model.Datum, heads []HeadInsert) {
		for _, h := range heads {
			// The table must already contain the row when the hook runs.
			if _, ok := db.MustTable(h.Pred).LookupEncoded(string(h.EncKey)); !ok {
				t.Errorf("head %s row %v not stored before hook", h.Pred, h.Row)
			}
			got = append(got, seen{pred: h.Pred, enc: string(h.EncKey), row: model.EncodeDatums(h.Row), inserted: h.Inserted})
		}
	}
	if err := e.Run(rules); err != nil {
		t.Fatal(err)
	}
	if len(got) != tcDistinctDerivations {
		t.Fatalf("HookHeads fired for %d heads, want %d", len(got), tcDistinctDerivations)
	}
	inserted := 0
	for _, s := range got {
		if s.pred != "path" {
			t.Errorf("unexpected head pred %q", s.pred)
		}
		// path's key is all columns, so EncKey == encoded row.
		if s.enc != s.row {
			t.Errorf("EncKey %q != canonical key encoding %q", s.enc, s.row)
		}
		if s.inserted {
			inserted++
		}
	}
	if want := db.MustTable("path").Len(); inserted != want {
		t.Errorf("Inserted=true for %d heads, table holds %d rows", inserted, want)
	}
	// Spot-check canonical form against model.EncodeDatums.
	keys := make([]string, 0, len(got))
	for _, s := range got {
		keys = append(keys, s.enc)
	}
	sort.Strings(keys)
	if keys[0] != model.EncodeDatums([]model.Datum{int64(1), int64(2)}) {
		t.Errorf("unexpected minimal key %q", keys[0])
	}
}
