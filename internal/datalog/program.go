// Package datalog implements the Datalog machinery the paper's pipeline
// rests on: bottom-up evaluation with derivation hooks (used by update
// exchange to materialize instances and populate provenance relations,
// Section 4.1), unification and homomorphism finding (used by the ASR
// rewriting algorithm of Figure 4), and rule unfolding (used to expand
// ProQL Datalog programs into unions of conjunctive rules, Section
// 4.2.4).
package datalog

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Rule is a (possibly multi-head) Datalog rule. Multi-head rules model
// GLAV schema mappings whose single derivation relates several target
// tuples.
type Rule struct {
	// ID names the rule; for mapping rules it is the mapping name, so
	// derivation hooks can attribute derivations to mappings.
	ID    string
	Heads []model.Atom
	Body  []model.Atom
}

// NewRule builds a single-head rule.
func NewRule(id string, head model.Atom, body ...model.Atom) Rule {
	return Rule{ID: id, Heads: []model.Atom{head}, Body: body}
}

func (r Rule) String() string {
	heads := make([]string, len(r.Heads))
	for i, h := range r.Heads {
		heads[i] = h.String()
	}
	bodies := make([]string, len(r.Body))
	for i, b := range r.Body {
		bodies[i] = b.String()
	}
	return fmt.Sprintf("%s : %s :- %s", r.ID, strings.Join(heads, ", "), strings.Join(bodies, ", "))
}

// Vars returns the distinct variables of the rule in first-use order
// (body first, then heads).
func (r Rule) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(a model.Atom) {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for _, a := range r.Body {
		add(a)
	}
	for _, a := range r.Heads {
		add(a)
	}
	return out
}

// Rename returns a copy of the rule with all variables passed through f.
func (r Rule) Rename(f func(string) string) Rule {
	heads := make([]model.Atom, len(r.Heads))
	for i, h := range r.Heads {
		heads[i] = h.Rename(f)
	}
	body := make([]model.Atom, len(r.Body))
	for i, b := range r.Body {
		body[i] = b.Rename(f)
	}
	return Rule{ID: r.ID, Heads: heads, Body: body}
}

// RenameApart suffixes every variable with "_<n>", producing a rule
// variable-disjoint from any rule renamed with a different n.
func (r Rule) RenameApart(n int) Rule {
	suffix := fmt.Sprintf("_%d", n)
	return r.Rename(func(v string) string {
		if v == "_" {
			return v
		}
		return v + suffix
	})
}

// Substitute applies a variable binding to the rule, replacing bound
// variables with their terms.
func (r Rule) Substitute(binding map[string]model.Term) Rule {
	sub := func(a model.Atom) model.Atom {
		args := make([]model.Term, len(a.Args))
		for i, t := range a.Args {
			if !t.IsConst {
				if b, ok := binding[t.Var]; ok {
					args[i] = b
					continue
				}
			}
			args[i] = t
		}
		return model.Atom{Rel: a.Rel, Args: args}
	}
	heads := make([]model.Atom, len(r.Heads))
	for i, h := range r.Heads {
		heads[i] = sub(h)
	}
	body := make([]model.Atom, len(r.Body))
	for i, b := range r.Body {
		body[i] = sub(b)
	}
	return Rule{ID: r.ID, Heads: heads, Body: body}
}

// RuleFromMapping converts a schema mapping to a Datalog rule.
func RuleFromMapping(m *model.Mapping) Rule {
	return Rule{ID: m.Name, Heads: m.Head, Body: m.Body}
}
