package semiring

import (
	"sort"
	"strings"
)

// DNF is a positive boolean expression over base-tuple identifiers in
// disjunctive normal form: a set of monomials, each monomial a set of
// identifiers. DNFs are kept normalized — monomials sorted and
// deduplicated, and absorbed (no monomial is a superset of another),
// which is sound because the boolean and probability-event algebras are
// idempotent and absorptive.
//
// DNF is the value representation shared by the Probability semiring
// (probabilistic event expressions, Table 1 row 6) and the PosBool
// semiring (the most general absorptive provenance semiring).
type DNF struct {
	// Monomials, each sorted ascending; the slice itself is sorted by
	// the monomial encoding. An empty Monomials means "false"/"empty
	// event"; a single empty monomial means "true"/"certain event".
	Monomials [][]string
}

// FalseDNF is the empty disjunction (impossible event).
func FalseDNF() DNF { return DNF{} }

// TrueDNF is the disjunction containing the empty conjunction
// (certain event).
func TrueDNF() DNF { return DNF{Monomials: [][]string{{}}} }

// VarDNF is the event of a single base tuple.
func VarDNF(id string) DNF { return DNF{Monomials: [][]string{{id}}} }

// IsFalse reports whether the DNF denotes the impossible event.
func (d DNF) IsFalse() bool { return len(d.Monomials) == 0 }

// IsTrue reports whether the DNF denotes the certain event.
func (d DNF) IsTrue() bool { return len(d.Monomials) == 1 && len(d.Monomials[0]) == 0 }

func monoKey(m []string) string { return strings.Join(m, "\x00") }

// normalizeDNF sorts, deduplicates, and absorbs monomials.
func normalizeDNF(monos [][]string) DNF {
	// Sort each monomial and dedup its variables (x ∧ x = x).
	cleaned := make([][]string, 0, len(monos))
	for _, m := range monos {
		mm := append([]string(nil), m...)
		sort.Strings(mm)
		mm = dedupSorted(mm)
		cleaned = append(cleaned, mm)
	}
	// Absorption: drop any monomial that is a superset of another.
	sort.Slice(cleaned, func(i, j int) bool {
		if len(cleaned[i]) != len(cleaned[j]) {
			return len(cleaned[i]) < len(cleaned[j])
		}
		return monoKey(cleaned[i]) < monoKey(cleaned[j])
	})
	var kept [][]string
	seen := make(map[string]bool)
	for _, m := range cleaned {
		k := monoKey(m)
		if seen[k] {
			continue
		}
		absorbed := false
		for _, prev := range kept {
			if subsetSorted(prev, m) {
				absorbed = true
				break
			}
		}
		if absorbed {
			continue
		}
		seen[k] = true
		kept = append(kept, m)
	}
	sort.Slice(kept, func(i, j int) bool { return monoKey(kept[i]) < monoKey(kept[j]) })
	return DNF{Monomials: kept}
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// subsetSorted reports whether sorted slice a ⊆ sorted slice b.
func subsetSorted(a, b []string) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// unionSorted merges two sorted string slices, deduplicating.
func unionSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Or returns the normalized disjunction of two DNFs.
func (d DNF) Or(o DNF) DNF {
	monos := make([][]string, 0, len(d.Monomials)+len(o.Monomials))
	monos = append(monos, d.Monomials...)
	monos = append(monos, o.Monomials...)
	return normalizeDNF(monos)
}

// And returns the normalized conjunction (distributed product) of two
// DNFs.
func (d DNF) And(o DNF) DNF {
	monos := make([][]string, 0, len(d.Monomials)*len(o.Monomials))
	for _, m1 := range d.Monomials {
		for _, m2 := range o.Monomials {
			monos = append(monos, unionSorted(m1, m2))
		}
	}
	return normalizeDNF(monos)
}

// EqDNF reports structural equality of normalized DNFs.
func EqDNF(a, b DNF) bool {
	if len(a.Monomials) != len(b.Monomials) {
		return false
	}
	for i := range a.Monomials {
		if monoKey(a.Monomials[i]) != monoKey(b.Monomials[i]) {
			return false
		}
	}
	return true
}

// Vars returns the sorted distinct identifiers mentioned in the DNF.
func (d DNF) Vars() []string {
	seen := make(map[string]bool)
	for _, m := range d.Monomials {
		for _, v := range m {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (d DNF) String() string {
	if d.IsFalse() {
		return "⊥"
	}
	if d.IsTrue() {
		return "⊤"
	}
	parts := make([]string, len(d.Monomials))
	for i, m := range d.Monomials {
		parts[i] = strings.Join(m, "∧")
	}
	return strings.Join(parts, " ∨ ")
}

// EvalDNF evaluates the DNF as a boolean formula under a truth
// assignment (absent identifiers are false).
func EvalDNF(d DNF, truth map[string]bool) bool {
	for _, m := range d.Monomials {
		all := true
		for _, v := range m {
			if !truth[v] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
