package semiring

import (
	"math/rand"
	"testing"
)

func TestDNFNormalization(t *testing.T) {
	// (x ∧ x) should normalize to x.
	d := VarDNF("x").And(VarDNF("x"))
	if !EqDNF(d, VarDNF("x")) {
		t.Errorf("x∧x = %s, want x", d)
	}
	// x ∨ (x ∧ y) should absorb to x.
	d = VarDNF("x").Or(VarDNF("x").And(VarDNF("y")))
	if !EqDNF(d, VarDNF("x")) {
		t.Errorf("x ∨ x∧y = %s, want x", d)
	}
	// Duplicate monomials collapse.
	d = VarDNF("x").Or(VarDNF("x"))
	if len(d.Monomials) != 1 {
		t.Errorf("x ∨ x has %d monomials", len(d.Monomials))
	}
}

func TestDNFTrueFalse(t *testing.T) {
	if !FalseDNF().IsFalse() || FalseDNF().IsTrue() {
		t.Error("FalseDNF classification wrong")
	}
	if !TrueDNF().IsTrue() || TrueDNF().IsFalse() {
		t.Error("TrueDNF classification wrong")
	}
	// true ∨ x absorbs to true.
	d := TrueDNF().Or(VarDNF("x"))
	if !d.IsTrue() {
		t.Errorf("⊤ ∨ x = %s", d)
	}
	// false ∧ x = false.
	d = FalseDNF().And(VarDNF("x"))
	if !d.IsFalse() {
		t.Errorf("⊥ ∧ x = %s", d)
	}
}

func TestDNFString(t *testing.T) {
	d := VarDNF("a").And(VarDNF("b")).Or(VarDNF("c"))
	if s := d.String(); s != "c ∨ a∧b" && s != "a∧b ∨ c" {
		t.Errorf("String = %q", s)
	}
	if FalseDNF().String() != "⊥" || TrueDNF().String() != "⊤" {
		t.Error("constant rendering wrong")
	}
}

// randomDNF builds a small random DNF over vars x0..x3.
func randomDNF(rng *rand.Rand) DNF {
	vars := []string{"x0", "x1", "x2", "x3"}
	n := rng.Intn(4)
	var monos [][]string
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(3)
		var m []string
		for j := 0; j < k; j++ {
			m = append(m, vars[rng.Intn(len(vars))])
		}
		monos = append(monos, m)
	}
	return normalizeDNF(monos)
}

// TestDNFOpsAgreeWithBooleanSemantics cross-checks the symbolic algebra
// against truth-table evaluation: for random DNFs d, e and all 2^4
// assignments, eval(d∨e) = eval(d)||eval(e) and eval(d∧e) =
// eval(d)&&eval(e). This pins the normalization (dedup + absorption) as
// semantics-preserving.
func TestDNFOpsAgreeWithBooleanSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"x0", "x1", "x2", "x3"}
	for trial := 0; trial < 200; trial++ {
		d, e := randomDNF(rng), randomDNF(rng)
		or := d.Or(e)
		and := d.And(e)
		for mask := 0; mask < 16; mask++ {
			truth := map[string]bool{}
			for i, v := range vars {
				truth[v] = mask&(1<<i) != 0
			}
			dv, ev := EvalDNF(d, truth), EvalDNF(e, truth)
			if EvalDNF(or, truth) != (dv || ev) {
				t.Fatalf("Or semantics broken: d=%s e=%s mask=%d", d, e, mask)
			}
			if EvalDNF(and, truth) != (dv && ev) {
				t.Fatalf("And semantics broken: d=%s e=%s mask=%d", d, e, mask)
			}
		}
	}
}

func TestDNFVars(t *testing.T) {
	d := VarDNF("b").And(VarDNF("a")).Or(VarDNF("c"))
	vars := d.Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "c" {
		t.Errorf("Vars = %v", vars)
	}
}

// TestProbabilityExactMatchesBruteForce checks inclusion–exclusion
// against direct possible-worlds enumeration.
func TestProbabilityExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []string{"x0", "x1", "x2", "x3"}
	probs := map[string]float64{"x0": 0.5, "x1": 0.25, "x2": 0.75, "x3": 0.1}
	for trial := 0; trial < 100; trial++ {
		d := randomDNF(rng)
		got := ProbabilityOf(d, probs, 0)
		// Brute force over 2^4 worlds.
		want := 0.0
		for mask := 0; mask < 16; mask++ {
			truth := map[string]bool{}
			w := 1.0
			for i, v := range vars {
				if mask&(1<<i) != 0 {
					truth[v] = true
					w *= probs[v]
				} else {
					w *= 1 - probs[v]
				}
			}
			if EvalDNF(d, truth) {
				want += w
			}
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("ProbabilityOf(%s) = %g, brute force %g", d, got, want)
		}
	}
}

func TestProbabilityMonteCarloPath(t *testing.T) {
	// Build an event with > exactInclusionExclusionLimit monomials to
	// force the sampling path: disjunction of 25 independent pairs.
	var d DNF
	probs := map[string]float64{}
	for i := 0; i < 25; i++ {
		a := VarDNF(varName("a", i))
		b := VarDNF(varName("b", i))
		d = d.Or(a.And(b))
		probs[varName("a", i)] = 0.3
		probs[varName("b", i)] = 0.3
	}
	if len(d.Monomials) <= exactInclusionExclusionLimit {
		t.Fatalf("expected large DNF, got %d monomials", len(d.Monomials))
	}
	got := ProbabilityOf(d, probs, 20000)
	// Exact: 1 - (1-0.09)^25 ≈ 0.9054
	want := 0.9054
	if got < want-0.03 || got > want+0.03 {
		t.Errorf("Monte Carlo estimate %g too far from %g", got, want)
	}
	// Deterministic across calls.
	if again := ProbabilityOf(d, probs, 20000); again != got {
		t.Errorf("Monte Carlo not deterministic: %g vs %g", got, again)
	}
}

func varName(prefix string, i int) string {
	return prefix + string(rune('A'+i))
}

func TestProbabilityOfConstants(t *testing.T) {
	if ProbabilityOf(FalseDNF(), nil, 0) != 0 {
		t.Error("P[⊥] should be 0")
	}
	if ProbabilityOf(TrueDNF(), nil, 0) != 1 {
		t.Error("P[⊤] should be 1")
	}
}
