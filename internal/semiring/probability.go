package semiring

import (
	"math/rand"
	"sort"
)

// Probability is Table 1 row 6: values are probabilistic event
// expressions over independent base events (one per EDB tuple), with
// product = event intersection and sum = event union. This is the
// Trio-style lineage used for query answering in probabilistic
// databases (use case Q9).
//
// Value type: DNF (a positive boolean event expression in disjunctive
// normal form). Computing a numeric probability from an event
// expression is #P-complete in general (the paper cites [19] and
// declares it out of scope); ProbabilityOf below implements exact
// inclusion–exclusion for small expressions and seeded Monte Carlo
// estimation beyond that, which is enough to exercise the code path.
type Probability struct{}

// Name implements Semiring.
func (Probability) Name() string { return "PROBABILITY" }

// Zero implements Semiring (the impossible event).
func (Probability) Zero() Value { return FalseDNF() }

// One implements Semiring (the certain event).
func (Probability) One() Value { return TrueDNF() }

// Plus implements Semiring (event union).
func (Probability) Plus(a, b Value) Value { return a.(DNF).Or(b.(DNF)) }

// Times implements Semiring (event intersection).
func (Probability) Times(a, b Value) Value { return a.(DNF).And(b.(DNF)) }

// Eq implements Semiring.
func (Probability) Eq(a, b Value) bool { return EqDNF(a.(DNF), b.(DNF)) }

// Format implements Semiring.
func (Probability) Format(v Value) string { return v.(DNF).String() }

// Absorptive implements Semiring: e ∪ (e ∩ f) = e.
func (Probability) CycleSafe() bool { return true }

// exactInclusionExclusionLimit bounds the number of monomials for which
// ProbabilityOf uses exact inclusion–exclusion (2^n subset terms).
const exactInclusionExclusionLimit = 20

// ProbabilityOf computes P[event] assuming the base events are
// independent with the given marginal probabilities (missing entries
// default to 0). Expressions with at most exactInclusionExclusionLimit
// monomials are evaluated exactly by inclusion–exclusion; larger ones
// are estimated with n Monte Carlo samples from a deterministic seed.
func ProbabilityOf(event DNF, probs map[string]float64, samples int) float64 {
	if event.IsFalse() {
		return 0
	}
	if event.IsTrue() {
		return 1
	}
	if len(event.Monomials) <= exactInclusionExclusionLimit {
		return inclusionExclusion(event.Monomials, probs)
	}
	return monteCarlo(event, probs, samples)
}

// inclusionExclusion sums (-1)^(|S|+1) P[∧ of union of monomials in S]
// over non-empty subsets S of the monomials; independence makes
// P[conjunction] the product of marginals of the distinct variables.
func inclusionExclusion(monos [][]string, probs map[string]float64) float64 {
	n := len(monos)
	total := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		var union []string
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				bits++
				union = unionSorted(union, monos[i])
			}
		}
		p := 1.0
		for _, v := range union {
			p *= probs[v]
		}
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	// Clamp against floating-point drift.
	if total < 0 {
		return 0
	}
	if total > 1 {
		return 1
	}
	return total
}

func monteCarlo(event DNF, probs map[string]float64, samples int) float64 {
	if samples <= 0 {
		samples = 100000
	}
	vars := event.Vars()
	rng := rand.New(rand.NewSource(deterministicSeed(vars)))
	hits := 0
	truth := make(map[string]bool, len(vars))
	for i := 0; i < samples; i++ {
		for _, v := range vars {
			truth[v] = rng.Float64() < probs[v]
		}
		if EvalDNF(event, truth) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// deterministicSeed derives a stable seed from the variable names so
// estimates are reproducible run to run.
func deterministicSeed(vars []string) int64 {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	var h int64 = 1469598103934665603
	for _, v := range sorted {
		for i := 0; i < len(v); i++ {
			h ^= int64(v[i])
			h *= 1099511628211
		}
	}
	return h
}

// PosBool is the semiring of positive boolean expressions PosBool(X),
// the most general absorptive ("distributive lattice") provenance
// semiring. It shares the DNF value representation with Probability but
// is registered under its own name so ProQL users and tests can request
// it directly; evaluating a PosBool annotation under a truth assignment
// answers "is this tuple derivable if exactly these base tuples are
// present?" — the foundation of the derivability and trust semirings.
//
// Value type: DNF.
type PosBool struct{}

// Name implements Semiring.
func (PosBool) Name() string { return "POSBOOL" }

// Zero implements Semiring.
func (PosBool) Zero() Value { return FalseDNF() }

// One implements Semiring.
func (PosBool) One() Value { return TrueDNF() }

// Plus implements Semiring.
func (PosBool) Plus(a, b Value) Value { return a.(DNF).Or(b.(DNF)) }

// Times implements Semiring.
func (PosBool) Times(a, b Value) Value { return a.(DNF).And(b.(DNF)) }

// Eq implements Semiring.
func (PosBool) Eq(a, b Value) bool { return EqDNF(a.(DNF), b.(DNF)) }

// Format implements Semiring.
func (PosBool) Format(v Value) string { return v.(DNF).String() }

// Absorptive implements Semiring.
func (PosBool) CycleSafe() bool { return true }
