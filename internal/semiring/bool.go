package semiring

import "strconv"

// Derivability is the boolean semiring ({true,false}, ∨, ∧, false, true)
// of Table 1 row 1: base value true for every EDB tuple; a tuple's
// annotation is true iff it is derivable from the base tuples (use case
// Q5, incremental view maintenance).
//
// Value type: bool.
type Derivability struct{}

// Name implements Semiring.
func (Derivability) Name() string { return "DERIVABILITY" }

// Zero implements Semiring.
func (Derivability) Zero() Value { return false }

// One implements Semiring.
func (Derivability) One() Value { return true }

// Plus implements Semiring (logical OR).
func (Derivability) Plus(a, b Value) Value { return a.(bool) || b.(bool) }

// Times implements Semiring (logical AND).
func (Derivability) Times(a, b Value) Value { return a.(bool) && b.(bool) }

// Eq implements Semiring.
func (Derivability) Eq(a, b Value) bool { return a.(bool) == b.(bool) }

// Format implements Semiring.
func (Derivability) Format(v Value) string { return strconv.FormatBool(v.(bool)) }

// Absorptive implements Semiring: a ∨ (a ∧ b) = a.
func (Derivability) CycleSafe() bool { return true }

// Trust is Table 1 row 2: identical algebra to Derivability but base
// values come from per-tuple trust conditions and mappings may carry
// the distrust function D_m (use case Q7). Keeping it as a distinct
// registered semiring matches the paper's EVALUATE TRUST OF syntax.
//
// Value type: bool.
type Trust struct{}

// Name implements Semiring.
func (Trust) Name() string { return "TRUST" }

// Zero implements Semiring.
func (Trust) Zero() Value { return false }

// One implements Semiring.
func (Trust) One() Value { return true }

// Plus implements Semiring (logical OR).
func (Trust) Plus(a, b Value) Value { return a.(bool) || b.(bool) }

// Times implements Semiring (logical AND).
func (Trust) Times(a, b Value) Value { return a.(bool) && b.(bool) }

// Eq implements Semiring.
func (Trust) Eq(a, b Value) bool { return a.(bool) == b.(bool) }

// Format implements Semiring.
func (Trust) Format(v Value) string { return strconv.FormatBool(v.(bool)) }

// Absorptive implements Semiring.
func (Trust) CycleSafe() bool { return true }
