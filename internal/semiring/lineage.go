package semiring

import (
	"sort"
	"strings"
)

// LineageSet is the value domain of the Lineage semiring: either the
// distinguished bottom element ⊥ (annotation of an underivable tuple)
// or a set of base-tuple identifiers. The identifiers are kept as a
// sorted, deduplicated slice; LineageSet values are treated as
// immutable.
type LineageSet struct {
	Bottom bool
	IDs    []string
}

// BottomLineage is the ⊥ element (Zero).
func BottomLineage() LineageSet { return LineageSet{Bottom: true} }

// EmptyLineage is the empty set (One).
func EmptyLineage() LineageSet { return LineageSet{} }

// NewLineage builds a lineage set from identifiers.
func NewLineage(ids ...string) LineageSet {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return LineageSet{IDs: dedupSorted(out)}
}

// Contains reports membership of id.
func (l LineageSet) Contains(id string) bool {
	if l.Bottom {
		return false
	}
	i := sort.SearchStrings(l.IDs, id)
	return i < len(l.IDs) && l.IDs[i] == id
}

// Lineage is Table 1 row 5: the lineage of a tuple is the set of all
// base tuples contributing to *some* derivation of it, without
// distinguishing among derivations (Cui-style lineage [18], use case
// Q6). Both the abstract sum and product are set union, with a
// distinguished bottom element ⊥ serving as Zero so that the semiring
// laws hold: ⊥ ⊕ S = S and ⊥ ⊗ S = ⊥.
//
// Value type: LineageSet.
type Lineage struct{}

// Name implements Semiring.
func (Lineage) Name() string { return "LINEAGE" }

// Zero implements Semiring (⊥).
func (Lineage) Zero() Value { return BottomLineage() }

// One implements Semiring (∅ — joining adds no lineage).
func (Lineage) One() Value { return EmptyLineage() }

// Plus implements Semiring: union, with ⊥ as identity.
func (Lineage) Plus(a, b Value) Value {
	x, y := a.(LineageSet), b.(LineageSet)
	if x.Bottom {
		return y
	}
	if y.Bottom {
		return x
	}
	return LineageSet{IDs: unionSorted(x.IDs, y.IDs)}
}

// Times implements Semiring: union, with ⊥ annihilating.
func (Lineage) Times(a, b Value) Value {
	x, y := a.(LineageSet), b.(LineageSet)
	if x.Bottom || y.Bottom {
		return BottomLineage()
	}
	return LineageSet{IDs: unionSorted(x.IDs, y.IDs)}
}

// Eq implements Semiring.
func (Lineage) Eq(a, b Value) bool {
	x, y := a.(LineageSet), b.(LineageSet)
	if x.Bottom != y.Bottom {
		return false
	}
	if x.Bottom {
		return true
	}
	if len(x.IDs) != len(y.IDs) {
		return false
	}
	for i := range x.IDs {
		if x.IDs[i] != y.IDs[i] {
			return false
		}
	}
	return true
}

// Format implements Semiring.
func (Lineage) Format(v Value) string {
	l := v.(LineageSet)
	if l.Bottom {
		return "⊥"
	}
	return "{" + strings.Join(l.IDs, ", ") + "}"
}

// Absorptive implements Semiring: S ∪ (S ∪ T) ⊇ S but absorption here
// means a ⊕ (a ⊗ b) = a ∪ (a ∪ b) which equals a only when b ⊆ a; the
// lineage semiring is nonetheless safe for cyclic fixpoints because the
// carrier (subsets of a finite base) is a finite lattice and both
// operations are monotone — annotations cannot grow forever. The paper
// groups it with the first five "finite in the presence of cycles"
// semirings, so we report true.
func (Lineage) CycleSafe() bool { return true }
