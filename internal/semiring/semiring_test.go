package semiring

import (
	"math/rand"
	"strings"
	"testing"
)

// samplesFor produces a value sample for law-checking each semiring.
func samplesFor(name string, rng *rand.Rand) []Value {
	switch name {
	case "DERIVABILITY", "TRUST":
		return []Value{true, false}
	case "CONFIDENTIALITY":
		return []Value{Public, Internal, Confidential, Secret, TopSecret}
	case "WEIGHT":
		out := []Value{0.0, 1.0, 2.5}
		for i := 0; i < 5; i++ {
			out = append(out, float64(rng.Intn(100)))
		}
		return out
	case "COUNT":
		out := []Value{int64(0), int64(1), int64(2)}
		for i := 0; i < 5; i++ {
			out = append(out, int64(rng.Intn(50)))
		}
		return out
	case "LINEAGE":
		return []Value{
			BottomLineage(), EmptyLineage(),
			NewLineage("a"), NewLineage("b"), NewLineage("a", "b"), NewLineage("a", "c"),
		}
	case "PROBABILITY", "POSBOOL":
		x, y, z := VarDNF("x"), VarDNF("y"), VarDNF("z")
		return []Value{
			FalseDNF(), TrueDNF(), x, y, z,
			x.And(y), x.Or(y), x.And(y).Or(z),
		}
	case "POLYNOMIAL":
		x, y := VarPoly("x"), VarPoly("y")
		return []Value{
			ZeroPoly(), OnePoly(), ConstPoly(2), x, y,
			AddPoly(x, y), MulPoly(x, y), AddPoly(MulPoly(x, x), ConstPoly(3)),
		}
	}
	return nil
}

func TestAllRegisteredSemiringsSatisfyLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sample := samplesFor(name, rng)
		if sample == nil {
			t.Fatalf("no sample generator for semiring %s", name)
		}
		if err := CheckLaws(s, sample); err != nil {
			t.Errorf("semiring law violation: %v", err)
		}
	}
}

func TestAbsorptiveSemirings(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, name := range []string{"DERIVABILITY", "TRUST", "CONFIDENTIALITY", "WEIGHT", "PROBABILITY", "POSBOOL"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAbsorption(s, samplesFor(name, rng)); err != nil {
			t.Errorf("absorption violation: %v", err)
		}
	}
	// Counting is the canonical non-absorptive example: 1 + 1·1 ≠ 1.
	if err := CheckAbsorption(Counting{}, samplesFor("COUNT", rng)); err == nil {
		t.Error("counting semiring should fail absorption")
	}
}

func TestLookupCaseInsensitiveAndUnknown(t *testing.T) {
	if _, err := Lookup("trust"); err != nil {
		t.Errorf("lowercase lookup failed: %v", err)
	}
	if _, err := Lookup("Weight"); err != nil {
		t.Errorf("mixed-case lookup failed: %v", err)
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Error("unknown semiring should error")
	} else if !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("error should mention the name: %v", err)
	}
}

func TestRegisterCustomSemiring(t *testing.T) {
	Register(customMax{})
	s, err := Lookup("MAXPLUS_TEST")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Plus(int64(3), int64(5)); got != int64(5) {
		t.Errorf("custom Plus = %v", got)
	}
}

// customMax is a toy (max, +) semiring over non-negative ints for the
// registration test.
type customMax struct{}

func (customMax) Name() string { return "MAXPLUS_TEST" }
func (customMax) Zero() Value  { return int64(-1 << 40) }
func (customMax) One() Value   { return int64(0) }
func (customMax) Plus(a, b Value) Value {
	if a.(int64) > b.(int64) {
		return a
	}
	return b
}
func (customMax) Times(a, b Value) Value { return a.(int64) + b.(int64) }
func (customMax) Eq(a, b Value) bool     { return a.(int64) == b.(int64) }
func (customMax) Format(v Value) string  { return "x" }
func (customMax) CycleSafe() bool        { return false }

func TestSumAllProductAll(t *testing.T) {
	c := Counting{}
	if got := SumAll(c, []Value{int64(1), int64(2), int64(3)}); got != int64(6) {
		t.Errorf("SumAll = %v", got)
	}
	if got := SumAll(c, nil); got != int64(0) {
		t.Errorf("SumAll(empty) = %v", got)
	}
	if got := ProductAll(c, []Value{int64(2), int64(3), int64(4)}); got != int64(24) {
		t.Errorf("ProductAll = %v", got)
	}
	if got := ProductAll(c, nil); got != int64(1) {
		t.Errorf("ProductAll(empty) = %v", got)
	}
}

func TestMappingFuncs(t *testing.T) {
	if Identity(int64(7)) != int64(7) {
		t.Error("Identity changed its input")
	}
	d := ConstZero(Trust{})
	if d(true) != false {
		t.Error("ConstZero(Trust) should send everything to false")
	}
}

func TestWeightSemantics(t *testing.T) {
	w := Weight{}
	// Cheapest of two alternative derivations wins.
	if got := w.Plus(3.0, 5.0); got != 3.0 {
		t.Errorf("Plus = %v", got)
	}
	// A join sums costs.
	if got := w.Times(3.0, 5.0); got != 8.0 {
		t.Errorf("Times = %v", got)
	}
	// Underivable = infinite cost; joining with it stays infinite.
	inf := w.Zero()
	if !w.Eq(w.Times(inf, 3.0), inf) {
		t.Error("Zero should annihilate Times")
	}
}

func TestConfidentialitySemantics(t *testing.T) {
	c := Confidentiality{}
	// Join of public and secret data requires secret clearance.
	if got := c.Times(Public, Secret); got != Secret {
		t.Errorf("Times = %v", got)
	}
	// If also derivable from internal data alone, internal suffices.
	if got := c.Plus(Secret, Internal); got != Internal {
		t.Errorf("Plus = %v", got)
	}
	if c.Format(Confidential) != "confidential" {
		t.Errorf("Format = %s", c.Format(Confidential))
	}
}

func TestLineageSemantics(t *testing.T) {
	l := Lineage{}
	ab := l.Times(NewLineage("a"), NewLineage("b"))
	if !l.Eq(ab, NewLineage("a", "b")) {
		t.Errorf("Times = %v", l.Format(ab))
	}
	// Lineage does not distinguish derivations: union again.
	abc := l.Plus(ab, NewLineage("c"))
	if !l.Eq(abc, NewLineage("a", "b", "c")) {
		t.Errorf("Plus = %v", l.Format(abc))
	}
	if !NewLineage("a", "b").Contains("a") || NewLineage("a").Contains("z") {
		t.Error("Contains wrong")
	}
	if BottomLineage().Contains("a") {
		t.Error("bottom contains nothing")
	}
}

func TestCountingSemantics(t *testing.T) {
	c := Counting{}
	// Two derivations, one joining 3 ways of one input with 2 of another.
	n := c.Plus(c.Times(int64(3), int64(2)), int64(1))
	if n != int64(7) {
		t.Errorf("count = %v", n)
	}
}
