package semiring

import (
	"math/rand"
	"testing"
)

func TestPolyBasics(t *testing.T) {
	x, y := VarPoly("x"), VarPoly("y")
	p := AddPoly(MulPoly(x, y), MulPoly(x, y)) // 2xy
	if p.Coeff(Mono{"x": 1, "y": 1}) != 2 {
		t.Errorf("coeff of xy = %d, want 2", p.Coeff(Mono{"x": 1, "y": 1}))
	}
	q := MulPoly(p, x) // 2x^2y
	if q.Coeff(Mono{"x": 2, "y": 1}) != 2 {
		t.Errorf("coeff of x^2y = %d", q.Coeff(Mono{"x": 2, "y": 1}))
	}
	if !EqPoly(MulPoly(x, ZeroPoly()), ZeroPoly()) {
		t.Error("x·0 should be 0")
	}
	if !EqPoly(MulPoly(x, OnePoly()), x) {
		t.Error("x·1 should be x")
	}
}

func TestPolyString(t *testing.T) {
	x, y := VarPoly("x"), VarPoly("y")
	p := AddPoly(AddPoly(MulPoly(x, MulPoly(x, y)), ConstPoly(3)), MulPoly(ConstPoly(2), y))
	if s := p.String(); s != "3 + x^2*y + 2*y" {
		t.Errorf("String = %q", s)
	}
	if ZeroPoly().String() != "0" {
		t.Error("zero renders wrong")
	}
	if OnePoly().String() != "1" {
		t.Error("one renders wrong")
	}
}

// randomPoly builds a small random polynomial over x,y,z.
func randomPoly(rng *rand.Rand) Poly {
	vars := []string{"x", "y", "z"}
	p := ZeroPoly()
	terms := rng.Intn(4)
	for i := 0; i < terms; i++ {
		term := ConstPoly(int64(1 + rng.Intn(3)))
		factors := rng.Intn(3)
		for j := 0; j < factors; j++ {
			term = MulPoly(term, VarPoly(vars[rng.Intn(len(vars))]))
		}
		p = AddPoly(p, term)
	}
	return p
}

// TestPolynomialUniversality is the key property tying N[X] to every
// other semiring: evaluating polynomials via EvalPoly is a semiring
// homomorphism — Eval(p+q) = Eval(p) ⊕ Eval(q) and Eval(p·q) =
// Eval(p) ⊗ Eval(q) — for every registered semiring. This is the formal
// justification (PODS'07) for the paper's strategy of storing
// provenance once and computing any Table-1 annotation from it.
func TestPolynomialUniversality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	assignFor := func(name string) map[string]Value {
		switch name {
		case "DERIVABILITY", "TRUST":
			return map[string]Value{"x": true, "y": false, "z": true}
		case "CONFIDENTIALITY":
			return map[string]Value{"x": Public, "y": Secret, "z": Internal}
		case "WEIGHT":
			return map[string]Value{"x": 1.0, "y": 2.0, "z": 5.0}
		case "COUNT":
			return map[string]Value{"x": int64(2), "y": int64(3), "z": int64(1)}
		case "LINEAGE":
			return map[string]Value{"x": NewLineage("x"), "y": NewLineage("y"), "z": NewLineage("z")}
		case "PROBABILITY", "POSBOOL":
			return map[string]Value{"x": VarDNF("x"), "y": VarDNF("y"), "z": VarDNF("z")}
		case "POLYNOMIAL":
			return map[string]Value{"x": VarPoly("x"), "y": VarPoly("y"), "z": VarPoly("z")}
		}
		return nil
	}
	for _, name := range []string{"DERIVABILITY", "TRUST", "CONFIDENTIALITY", "WEIGHT", "COUNT", "LINEAGE", "PROBABILITY", "POSBOOL", "POLYNOMIAL"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		assign := assignFor(name)
		for trial := 0; trial < 50; trial++ {
			p, q := randomPoly(rng), randomPoly(rng)
			sum := EvalPoly(AddPoly(p, q), s, assign)
			if !s.Eq(sum, s.Plus(EvalPoly(p, s, assign), EvalPoly(q, s, assign))) {
				t.Fatalf("%s: Eval not additive for p=%s q=%s", name, p, q)
			}
			prod := EvalPoly(MulPoly(p, q), s, assign)
			if !s.Eq(prod, s.Times(EvalPoly(p, s, assign), EvalPoly(q, s, assign))) {
				t.Fatalf("%s: Eval not multiplicative for p=%s q=%s", name, p, q)
			}
		}
		// Identity under the identity assignment: Eval in POLYNOMIAL
		// with x↦x must be the identity map.
		if name == "POLYNOMIAL" {
			for trial := 0; trial < 20; trial++ {
				p := randomPoly(rng)
				if got := EvalPoly(p, s, assign).(Poly); !EqPoly(got, p) {
					t.Fatalf("identity evaluation changed %s into %s", p, got)
				}
			}
		}
	}
}

func TestEvalPolyMissingVarIsZero(t *testing.T) {
	c := Counting{}
	p := AddPoly(VarPoly("x"), ConstPoly(4))
	// x unassigned → treated as 0 → result 4.
	if got := EvalPoly(p, c, map[string]Value{}); got != int64(4) {
		t.Errorf("EvalPoly = %v, want 4", got)
	}
}

// TestFig1ProvenancePolynomial encodes the core of the paper's Figure 1:
// C(2,cn2) is derivable directly from C_l and via m1 joining A(2,sn1,5)
// with N(2,...); its polynomial is c + a·n, and evaluating under
// derivability with all base tuples true yields true, while dropping
// both c and n yields false.
func TestFig1ProvenancePolynomial(t *testing.T) {
	a, c, n := VarPoly("A(2)"), VarPoly("Cl(2,cn2)"), VarPoly("N(2)")
	prov := AddPoly(c, MulPoly(a, n))
	d := Derivability{}
	all := map[string]Value{"A(2)": true, "Cl(2,cn2)": true, "N(2)": true}
	if EvalPoly(prov, d, all) != true {
		t.Error("should be derivable from all base tuples")
	}
	onlyA := map[string]Value{"A(2)": true}
	if EvalPoly(prov, d, onlyA) != false {
		t.Error("A alone derives nothing")
	}
	// Number of derivations: both monomials count.
	if got := EvalPoly(prov, Counting{}, map[string]Value{
		"A(2)": int64(1), "Cl(2,cn2)": int64(1), "N(2)": int64(1),
	}); got != int64(2) {
		t.Errorf("derivation count = %v, want 2", got)
	}
}
