package semiring

import (
	"sort"
	"strconv"
	"strings"
)

// Mono is a monomial over provenance variables: a multiset of variable
// identifiers represented as exponents. Monomials are the "products of
// base tuples" in a provenance polynomial.
type Mono map[string]int

// monoEncode returns a canonical key for a monomial ("x^2·y").
func monoEncode(m Mono) string {
	if len(m) == 0 {
		return ""
	}
	vars := make([]string, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var sb strings.Builder
	for i, v := range vars {
		if i > 0 {
			sb.WriteByte('*')
		}
		sb.WriteString(v)
		if e := m[v]; e > 1 {
			sb.WriteByte('^')
			sb.WriteString(strconv.Itoa(e))
		}
	}
	return sb.String()
}

func monoMul(a, b Mono) Mono {
	out := make(Mono, len(a)+len(b))
	for v, e := range a {
		out[v] = e
	}
	for v, e := range b {
		out[v] += e
	}
	return out
}

// Poly is a provenance polynomial in N[X]: a finite map from monomials
// (by canonical encoding) to positive natural coefficients. Poly values
// are treated as immutable.
type Poly struct {
	terms map[string]polyTerm
}

type polyTerm struct {
	mono  Mono
	coeff int64
}

// ZeroPoly is the zero polynomial.
func ZeroPoly() Poly { return Poly{} }

// OnePoly is the constant polynomial 1.
func OnePoly() Poly { return ConstPoly(1) }

// ConstPoly is the constant polynomial c.
func ConstPoly(c int64) Poly {
	if c == 0 {
		return ZeroPoly()
	}
	return Poly{terms: map[string]polyTerm{"": {mono: Mono{}, coeff: c}}}
}

// VarPoly is the polynomial consisting of a single variable.
func VarPoly(id string) Poly {
	m := Mono{id: 1}
	return Poly{terms: map[string]polyTerm{monoEncode(m): {mono: m, coeff: 1}}}
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// NumTerms returns the number of monomials with non-zero coefficient.
func (p Poly) NumTerms() int { return len(p.terms) }

// Coeff returns the coefficient of the monomial, 0 if absent.
func (p Poly) Coeff(m Mono) int64 {
	if p.terms == nil {
		return 0
	}
	t, ok := p.terms[monoEncode(m)]
	if !ok {
		return 0
	}
	return t.coeff
}

// AddPoly returns p + q.
func AddPoly(p, q Poly) Poly {
	out := make(map[string]polyTerm, len(p.terms)+len(q.terms))
	for k, t := range p.terms {
		out[k] = t
	}
	for k, t := range q.terms {
		if prev, ok := out[k]; ok {
			out[k] = polyTerm{mono: prev.mono, coeff: prev.coeff + t.coeff}
		} else {
			out[k] = t
		}
	}
	return Poly{terms: out}
}

// MulPoly returns p · q.
func MulPoly(p, q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return ZeroPoly()
	}
	out := make(map[string]polyTerm, len(p.terms)*len(q.terms))
	for _, t1 := range p.terms {
		for _, t2 := range q.terms {
			m := monoMul(t1.mono, t2.mono)
			k := monoEncode(m)
			if prev, ok := out[k]; ok {
				out[k] = polyTerm{mono: prev.mono, coeff: prev.coeff + t1.coeff*t2.coeff}
			} else {
				out[k] = polyTerm{mono: m, coeff: t1.coeff * t2.coeff}
			}
		}
	}
	return Poly{terms: out}
}

// EqPoly reports equality of polynomials.
func EqPoly(p, q Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		u, ok := q.terms[k]
		if !ok || u.coeff != t.coeff {
			return false
		}
	}
	return true
}

// String renders the polynomial with monomials in canonical order.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(" + ")
		}
		t := p.terms[k]
		switch {
		case k == "":
			sb.WriteString(strconv.FormatInt(t.coeff, 10))
		case t.coeff == 1:
			sb.WriteString(k)
		default:
			sb.WriteString(strconv.FormatInt(t.coeff, 10))
			sb.WriteByte('*')
			sb.WriteString(k)
		}
	}
	return sb.String()
}

// EvalPoly evaluates p in the target semiring s under an assignment of
// semiring values to variables — the unique semiring homomorphism from
// N[X] extending the assignment (the universality property of
// provenance polynomials). Missing variables evaluate to s.Zero().
func EvalPoly(p Poly, s Semiring, assign map[string]Value) Value {
	acc := s.Zero()
	for _, t := range p.terms {
		term := s.One()
		for v, e := range t.mono {
			val, ok := assign[v]
			if !ok {
				val = s.Zero()
			}
			for i := 0; i < e; i++ {
				term = s.Times(term, val)
			}
		}
		for i := int64(0); i < t.coeff; i++ {
			acc = s.Plus(acc, term)
		}
	}
	return acc
}

// Polynomial is the provenance-polynomial semiring N[X] of Green,
// Karvounarakis, Tannen (PODS 2007) — the "most general formalism for
// tuple-based provenance" that the paper's provenance graphs encode.
// Materializing a view's annotations in N[X] lets any Table-1 score be
// recomputed later via EvalPoly without re-running the query
// (the paper's "generalized materialized view support").
//
// Value type: Poly. Not absorptive: like counting, it may diverge over
// cyclic graphs.
type Polynomial struct{}

// Name implements Semiring.
func (Polynomial) Name() string { return "POLYNOMIAL" }

// Zero implements Semiring.
func (Polynomial) Zero() Value { return ZeroPoly() }

// One implements Semiring.
func (Polynomial) One() Value { return OnePoly() }

// Plus implements Semiring.
func (Polynomial) Plus(a, b Value) Value { return AddPoly(a.(Poly), b.(Poly)) }

// Times implements Semiring.
func (Polynomial) Times(a, b Value) Value { return MulPoly(a.(Poly), b.(Poly)) }

// Eq implements Semiring.
func (Polynomial) Eq(a, b Value) bool { return EqPoly(a.(Poly), b.(Poly)) }

// Format implements Semiring.
func (Polynomial) Format(v Value) string { return v.(Poly).String() }

// Absorptive implements Semiring.
func (Polynomial) CycleSafe() bool { return false }
