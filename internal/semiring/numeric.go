package semiring

import (
	"math"
	"strconv"
)

// Weight is the tropical (min, +) semiring of Table 1 row 4: base value
// is the tuple's weight, joins sum weights, unions take the minimum
// (cheapest alternative). Used for ranked keyword search and data
// quality scores (use case Q8).
//
// Value type: float64; Zero is +Inf, One is 0.
type Weight struct{}

// Name implements Semiring.
func (Weight) Name() string { return "WEIGHT" }

// Zero implements Semiring (+Inf: an underivable tuple has infinite cost).
func (Weight) Zero() Value { return math.Inf(1) }

// One implements Semiring (cost 0: joining with it adds nothing).
func (Weight) One() Value { return float64(0) }

// Plus implements Semiring (min: keep the cheapest derivation).
func (Weight) Plus(a, b Value) Value { return math.Min(a.(float64), b.(float64)) }

// Times implements Semiring (+: a join costs the sum of its inputs).
func (Weight) Times(a, b Value) Value { return a.(float64) + b.(float64) }

// Eq implements Semiring.
func (Weight) Eq(a, b Value) bool {
	x, y := a.(float64), b.(float64)
	if math.IsInf(x, 1) || math.IsInf(y, 1) {
		return math.IsInf(x, 1) && math.IsInf(y, 1)
	}
	return x == y
}

// Format implements Semiring.
func (Weight) Format(v Value) string {
	f := v.(float64)
	if math.IsInf(f, 1) {
		return "inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Absorptive implements Semiring: min(a, a+b) = a for b ≥ 0; the paper
// lists weight/cost among the absorptive semirings (weights are
// non-negative costs).
func (Weight) CycleSafe() bool { return true }

// Confidentiality is Table 1 row 3: access-control levels. A join
// requires the *most* secure level of any input (more_secure = max);
// a union requires only the *least* secure alternative (less_secure =
// min). Levels are ordered integers: higher = more secure. Used for
// computing access-control levels of view tuples (use case Q10).
//
// Value type: int64 in [0, MaxLevel]; Zero is MaxLevel+... — see below.
//
// To make this a genuine bounded-lattice semiring we fix a top element:
// Zero (the annotation of an underivable tuple) is the maximally secret
// level TopSecret, and One (identity for join) is Public = 0.
type Confidentiality struct{}

// Confidentiality levels. Applications may use any int64 in
// [Public, TopSecret]; the five named levels match common usage.
const (
	Public       int64 = 0
	Internal     int64 = 1
	Confidential int64 = 2
	Secret       int64 = 3
	TopSecret    int64 = 4
)

// Name implements Semiring.
func (Confidentiality) Name() string { return "CONFIDENTIALITY" }

// Zero implements Semiring: an underivable tuple requires top clearance.
func (Confidentiality) Zero() Value { return TopSecret }

// One implements Semiring: joining with public data adds no restriction.
func (Confidentiality) One() Value { return Public }

// Plus implements Semiring (less_secure = min over alternatives).
func (Confidentiality) Plus(a, b Value) Value {
	x, y := a.(int64), b.(int64)
	if x < y {
		return x
	}
	return y
}

// Times implements Semiring (more_secure = max over joined inputs).
func (Confidentiality) Times(a, b Value) Value {
	x, y := a.(int64), b.(int64)
	if x > y {
		return x
	}
	return y
}

// Eq implements Semiring.
func (Confidentiality) Eq(a, b Value) bool { return a.(int64) == b.(int64) }

// Format implements Semiring.
func (Confidentiality) Format(v Value) string {
	switch v.(int64) {
	case Public:
		return "public"
	case Internal:
		return "internal"
	case Confidential:
		return "confidential"
	case Secret:
		return "secret"
	case TopSecret:
		return "top-secret"
	}
	return strconv.FormatInt(v.(int64), 10)
}

// Absorptive implements Semiring: min(a, max(a,b)) = a.
func (Confidentiality) CycleSafe() bool { return true }

// Counting is Table 1 row 7: the natural-numbers semiring (N, +, ·, 0, 1)
// counting the number of distinct derivations of each tuple, as in the
// bag relational model. Not absorptive: over cyclic provenance graphs
// counts may diverge (the paper notes this limitation), so cyclic
// fixpoint evaluation refuses this semiring.
//
// Value type: int64.
type Counting struct{}

// Name implements Semiring.
func (Counting) Name() string { return "COUNT" }

// Zero implements Semiring.
func (Counting) Zero() Value { return int64(0) }

// One implements Semiring.
func (Counting) One() Value { return int64(1) }

// Plus implements Semiring.
func (Counting) Plus(a, b Value) Value { return a.(int64) + b.(int64) }

// Times implements Semiring.
func (Counting) Times(a, b Value) Value { return a.(int64) * b.(int64) }

// Eq implements Semiring.
func (Counting) Eq(a, b Value) bool { return a.(int64) == b.(int64) }

// Format implements Semiring.
func (Counting) Format(v Value) string { return strconv.FormatInt(v.(int64), 10) }

// Absorptive implements Semiring.
func (Counting) CycleSafe() bool { return false }
