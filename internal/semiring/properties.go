package semiring

import "fmt"

// CheckLaws verifies the commutative-semiring axioms on a sample of
// values from the semiring's domain. It is used by the test suite
// (with testing/quick-generated samples) and is exported so that
// applications registering custom semirings can validate them.
//
// The axioms checked, for all a, b, c in sample:
//
//	(K, ⊕, 0) is a commutative monoid
//	(K, ⊗, 1) is a commutative monoid
//	⊗ distributes over ⊕
//	0 annihilates ⊗
//	if s.CycleSafe(): ⊕ is idempotent
//
// The first violation found is returned as a descriptive error.
// CheckAbsorption separately verifies the strict absorption law for the
// semirings that have it.
func CheckLaws(s Semiring, sample []Value) error {
	eq := s.Eq
	zero, one := s.Zero(), s.One()
	// Include the identities themselves in the sample.
	vals := append([]Value{zero, one}, sample...)

	for _, a := range vals {
		if !eq(s.Plus(a, zero), a) {
			return fmt.Errorf("%s: a ⊕ 0 ≠ a for a=%s", s.Name(), s.Format(a))
		}
		if !eq(s.Plus(zero, a), a) {
			return fmt.Errorf("%s: 0 ⊕ a ≠ a for a=%s", s.Name(), s.Format(a))
		}
		if !eq(s.Times(a, one), a) {
			return fmt.Errorf("%s: a ⊗ 1 ≠ a for a=%s", s.Name(), s.Format(a))
		}
		if !eq(s.Times(one, a), a) {
			return fmt.Errorf("%s: 1 ⊗ a ≠ a for a=%s", s.Name(), s.Format(a))
		}
		if !eq(s.Times(a, zero), zero) {
			return fmt.Errorf("%s: a ⊗ 0 ≠ 0 for a=%s", s.Name(), s.Format(a))
		}
		if !eq(s.Times(zero, a), zero) {
			return fmt.Errorf("%s: 0 ⊗ a ≠ 0 for a=%s", s.Name(), s.Format(a))
		}
		if s.CycleSafe() && !eq(s.Plus(a, a), a) {
			return fmt.Errorf("%s: ⊕ not idempotent for a=%s", s.Name(), s.Format(a))
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			if !eq(s.Plus(a, b), s.Plus(b, a)) {
				return fmt.Errorf("%s: ⊕ not commutative for a=%s b=%s", s.Name(), s.Format(a), s.Format(b))
			}
			if !eq(s.Times(a, b), s.Times(b, a)) {
				return fmt.Errorf("%s: ⊗ not commutative for a=%s b=%s", s.Name(), s.Format(a), s.Format(b))
			}
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if !eq(s.Plus(s.Plus(a, b), c), s.Plus(a, s.Plus(b, c))) {
					return fmt.Errorf("%s: ⊕ not associative for a=%s b=%s c=%s",
						s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
				if !eq(s.Times(s.Times(a, b), c), s.Times(a, s.Times(b, c))) {
					return fmt.Errorf("%s: ⊗ not associative for a=%s b=%s c=%s",
						s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
				if !eq(s.Times(a, s.Plus(b, c)), s.Plus(s.Times(a, b), s.Times(a, c))) {
					return fmt.Errorf("%s: ⊗ does not distribute over ⊕ for a=%s b=%s c=%s",
						s.Name(), s.Format(a), s.Format(b), s.Format(c))
				}
			}
		}
	}
	return nil
}

// CheckAbsorption verifies the strict absorption law a ⊕ (a ⊗ b) = a on
// a sample. Absorption holds for the derivability, trust,
// confidentiality, weight (non-negative costs), probability-event and
// PosBool semirings — the paper's guarantee that their annotations stay
// finite under cyclic evaluation. It does NOT hold for lineage (which is
// cycle-safe for the weaker finite-lattice reason), counting, or
// polynomials.
func CheckAbsorption(s Semiring, sample []Value) error {
	vals := append([]Value{s.Zero(), s.One()}, sample...)
	for _, a := range vals {
		for _, b := range vals {
			if !s.Eq(s.Plus(a, s.Times(a, b)), a) {
				return fmt.Errorf("%s: absorption fails for a=%s b=%s", s.Name(), s.Format(a), s.Format(b))
			}
		}
	}
	return nil
}
