// Package semiring implements the annotation algebras of Table 1 of
// "Querying Data Provenance" (SIGMOD 2010) together with the provenance
// polynomial semiring N[X] of Green, Karvounarakis, Tannen (PODS 2007)
// that the paper's graph model encodes.
//
// A commutative semiring (K, ⊕, ⊗, 0, 1) supplies the abstract sum used
// to combine alternative derivations of a tuple (union) and the abstract
// product used to combine the inputs joined by a single derivation.
// ProQL selects semirings at runtime by name (EVALUATE TRUST OF {...}),
// so the core abstraction here is dynamically typed: values are `any`
// and each semiring documents its value type. CheckLaws (properties.go)
// verifies the algebraic laws for every implementation.
package semiring

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Value is an annotation drawn from some semiring's domain.
type Value = any

// Semiring is a commutative semiring over dynamically typed values.
type Semiring interface {
	// Name is the identifier used in ProQL's EVALUATE clause
	// (case-insensitive), e.g. "DERIVABILITY", "TRUST", "WEIGHT".
	Name() string
	// Zero is the identity of Plus and annihilates Times.
	Zero() Value
	// One is the identity of Times; it is the default leaf value
	// when an ASSIGNING EACH clause has no DEFAULT statement.
	One() Value
	// Plus is the abstract sum (combines alternative derivations).
	Plus(a, b Value) Value
	// Times is the abstract product (combines joined inputs).
	Times(a, b Value) Value
	// Eq reports semantic equality of two values.
	Eq(a, b Value) bool
	// Format renders a value for query output.
	Format(v Value) string
	// CycleSafe reports whether fixpoint annotation evaluation over
	// cyclic provenance graphs terminates in this semiring (Section
	// 2.1, "Cycles"): ⊕ is idempotent and the annotation of any tuple
	// ranges over a finite set under monotone iteration. The first
	// five semirings of Table 1 (and probability events) qualify; the
	// counting and polynomial semirings do not (counts can diverge).
	CycleSafe() bool
}

// registry maps upper-cased semiring names to factories. ProQL resolves
// EVALUATE <name> OF through Lookup.
var (
	regMu    sync.RWMutex
	registry = map[string]Semiring{}
)

// Register makes a semiring available to ProQL by name. Later
// registrations under the same name replace earlier ones, which lets
// applications plug in domain-specific semirings (Section 3.2.2 notes
// implementers "may wish to add additional semirings").
func Register(s Semiring) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToUpper(s.Name())] = s
}

// Lookup resolves a semiring by (case-insensitive) name.
func Lookup(name string) (Semiring, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("semiring: unknown semiring %q (known: %s)", name, strings.Join(registeredNamesLocked(), ", "))
	}
	return s, nil
}

// Names lists the registered semiring names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredNamesLocked()
}

func registeredNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(Derivability{})
	Register(Trust{})
	Register(Confidentiality{})
	Register(Weight{})
	Register(Lineage{})
	Register(Probability{})
	Register(Counting{})
	Register(Polynomial{})
	Register(PosBool{})
}

// SumAll folds Plus over vs, returning Zero for an empty slice.
func SumAll(s Semiring, vs []Value) Value {
	acc := s.Zero()
	for _, v := range vs {
		acc = s.Plus(acc, v)
	}
	return acc
}

// ProductAll folds Times over vs, returning One for an empty slice.
func ProductAll(s Semiring, vs []Value) Value {
	acc := s.One()
	for _, v := range vs {
		acc = s.Times(acc, v)
	}
	return acc
}

// MappingFunc is a unary function attached to a schema mapping during
// annotation computation (the second ASSIGNING EACH clause). The paper
// restricts these functions: f(0) = 0, and f must commute with sums.
// Identity and ConstZero (the "distrust" function D_m) satisfy both.
type MappingFunc func(Value) Value

// Identity is the neutral mapping function N_m (default).
func Identity(v Value) Value { return v }

// ConstZero builds the distrust function D_m for semiring s: it sends
// every input to Zero (false on all inputs, in the trust semiring).
func ConstZero(s Semiring) MappingFunc {
	zero := s.Zero()
	return func(Value) Value { return zero }
}
