package asr

import (
	"repro/internal/exchange"
	"repro/internal/model"
)

// Advise implements a simple version of the automated ASR selection
// the paper lists as future work (Section 8): given the relation a
// provenance-query workload is anchored at (the distinguished relation
// of target-style queries) and a maximum path length, it decomposes
// the mapping graph backwards-reachable from that relation into
// non-overlapping chains, splits them into segments of at most maxLen,
// and registers one ASR per segment on the index.
//
// The suggested kind is Suffix: target-style queries look for paths
// ending at the anchor, which Section 6.4 found suffix ASRs serve
// best. Single-mapping segments are skipped (they would only mirror
// the provenance table).
func (ix *Index) Advise(anchorRel string, maxLen int) ([]*Def, error) {
	chains := chainsFrom(ix.sys, anchorRel, ix.used)
	var defs []*Def
	for _, chain := range chains {
		for i := 0; i < len(chain); i += maxLen {
			j := i + maxLen
			if j > len(chain) {
				j = len(chain)
			}
			seg := chain[i:j]
			if len(seg) < 2 {
				continue
			}
			d, err := ix.Define(Suffix, seg...)
			if err != nil {
				return nil, err
			}
			defs = append(defs, d)
		}
	}
	return defs, nil
}

// chainsFrom decomposes the mapping graph backwards-reachable from rel
// into edge-disjoint chains ordered derived-end first: the first
// unclaimed incoming mapping continues the current chain through the
// first of its source relations that still has unclaimed incoming
// mappings; every other mapping and source starts a new chain.
// Mappings already claimed by existing definitions (used) are skipped;
// claiming per mapping also terminates on cyclic schema graphs.
func chainsFrom(sys *exchange.System, rel string, used map[string]string) [][]string {
	var chains [][]string
	claimed := make(map[string]bool, len(used))
	for m := range used {
		claimed[m] = true
	}
	connects := func(down, up string) bool {
		_, err := connect(sys, down, up)
		return err == nil
	}
	// hasUnclaimedConnected reports whether rel has an unclaimed
	// incoming mapping that actually connects to prev (shared relation
	// with compatible key terms).
	hasUnclaimedConnected := func(prev, rel string) bool {
		for _, m := range sys.Schema.MappingsInto(rel) {
			if !claimed[m.Name] && connects(prev, m.Name) {
				return true
			}
		}
		return false
	}

	var extend func(rel string, acc []string)
	extend = func(rel string, acc []string) {
		continued := false
		last := ""
		if len(acc) > 0 {
			last = acc[len(acc)-1]
		}
		for _, m := range sys.Schema.MappingsInto(rel) {
			if claimed[m.Name] {
				continue
			}
			claimed[m.Name] = true
			var cur []string
			if !continued && (last == "" || connects(last, m.Name)) {
				cur = append(append([]string(nil), acc...), m.Name)
				continued = true
			} else {
				cur = []string{m.Name}
			}
			srcs := sourceRels(m)
			contIdx := -1
			for si, s := range srcs {
				if hasUnclaimedConnected(m.Name, s) {
					contIdx = si
					break
				}
			}
			if contIdx < 0 {
				chains = append(chains, cur)
			} else {
				extend(srcs[contIdx], cur)
			}
			for si, s := range srcs {
				if si != contIdx {
					extend(s, nil)
				}
			}
		}
		if !continued && len(acc) > 0 {
			chains = append(chains, acc)
		}
	}
	extend(rel, nil)
	return chains
}

func sourceRels(m *model.Mapping) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range m.Body {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}
