package asr

import (
	"fmt"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/relstore"
)

// Index manages a set of non-overlapping ASR definitions over one
// system, materializes their backing tables, and rewrites unfolded
// rules to use them. The paper restricts definitions to non-overlapping
// paths so that the greedy Figure 4 rewriting is minimal; Define
// enforces mapping-disjointness.
type Index struct {
	sys  *exchange.System
	defs []*Def
	used map[string]string // mapping → ASR name, for overlap checks
	// materializations counts full backing-table rebuilds
	// (materializeDef calls); steady-state update paths patch via
	// ApplyInsertions/ApplyDeletions instead, so tests pin this
	// counter to catch rebuild regressions.
	materializations int
}

// NewIndex creates an empty ASR index for a system.
func NewIndex(sys *exchange.System) *Index {
	return &Index{sys: sys, used: make(map[string]string)}
}

// Defs returns the registered definitions.
func (ix *Index) Defs() []*Def { return ix.defs }

// Define registers an ASR over a mapping chain, rejecting overlaps
// with previously defined ASRs.
func (ix *Index) Define(kind Kind, chain ...string) (*Def, error) {
	d, err := NewDef(ix.sys, kind, chain)
	if err != nil {
		return nil, err
	}
	for _, m := range chain {
		if prev, dup := ix.used[m]; dup {
			return nil, fmt.Errorf("asr: mapping %s already indexed by %s (overlapping ASRs are not supported)", m, prev)
		}
	}
	for _, m := range chain {
		ix.used[m] = d.Name
	}
	ix.defs = append(ix.defs, d)
	return d, nil
}

// Materialize builds (or rebuilds) the backing tables of every
// definition and creates hash indexes on each span's boundary columns,
// mirroring the paper's B-Tree indexes on ASR key columns. It is the
// full-rebuild path — definition changes and full exchange runs; the
// steady-state update path patches the tables incrementally via
// ApplyInsertions/ApplyDeletions (maintain.go) instead.
func (ix *Index) Materialize() error {
	// One storage epoch for the whole rebuild: concurrent snapshot
	// readers never observe a half-built ASR table.
	ix.sys.DB.BeginBatch()
	defer ix.sys.DB.EndBatch()
	for _, d := range ix.defs {
		if err := ix.materializeDef(d); err != nil {
			return err
		}
	}
	return nil
}

// DropAll removes the backing tables (used between benchmark
// configurations).
func (ix *Index) DropAll() {
	for _, d := range ix.defs {
		ix.sys.DB.DropTable(d.Name)
	}
	ix.defs = nil
	ix.used = make(map[string]string)
}

// TotalRows reports the materialized ASR storage footprint.
func (ix *Index) TotalRows() int {
	total := 0
	for _, d := range ix.defs {
		if t, ok := ix.sys.DB.Table(d.Name); ok {
			total += t.Len()
		}
	}
	return total
}

// Materializations reports how many full backing-table builds have
// happened (for tests asserting the steady-state path patches rather
// than rebuilds).
func (ix *Index) Materializations() int { return ix.materializations }

func (ix *Index) materializeDef(d *Def) error {
	ix.materializations++
	ix.sys.DB.DropTable(d.Name)
	t, err := ix.sys.DB.CreateTable(&relstore.TableSchema{
		Name:    d.Name,
		Columns: d.columns,
	})
	if err != nil {
		return err
	}
	// Fetch provenance rows per chain position once.
	provRows := make([][]model.Tuple, len(d.Chain))
	for k, m := range d.Chain {
		rows, err := ix.sys.ProvRows(m)
		if err != nil {
			return err
		}
		provRows[k] = rows
	}
	for _, sp := range d.spans {
		if err := materializeSpan(d, t, sp, provRows); err != nil {
			return err
		}
	}
	// Index the span column together with each position's columns so
	// rewritten lookups are fast.
	t.EnsureIndex([]int{0})
	return nil
}

// materializeSpan inner-joins the provenance rows of one subpath and
// inserts NULL-padded rows tagged with the span discriminator.
func materializeSpan(d *Def, t *relstore.Table, sp span, provRows [][]model.Tuple) error {
	// partial holds, per accumulated row, the joined provenance rows
	// of positions From..cur.
	type partial []model.Tuple
	acc := make([]partial, 0, len(provRows[sp.From]))
	for _, row := range provRows[sp.From] {
		acc = append(acc, partial{row})
	}
	for k := sp.From; k < sp.To; k++ {
		step := d.joins[k]
		// Hash the upstream side on its join columns.
		build := make(map[string][]model.Tuple)
		for _, urow := range provRows[k+1] {
			key := encodeAt(urow, step.upCols)
			build[key] = append(build[key], urow)
		}
		var next []partial
		for _, p := range acc {
			drow := p[len(p)-1]
			key := encodeAt(drow, step.downCols)
			for _, urow := range build[key] {
				np := make(partial, len(p)+1)
				copy(np, p)
				np[len(p)] = urow
				next = append(next, np)
			}
		}
		acc = next
	}
	tag := sp.tag()
	for _, p := range acc {
		row := make(model.Tuple, len(d.columns))
		row[0] = tag
		for k := sp.From; k <= sp.To; k++ {
			prow := p[k-sp.From]
			for i, col := range d.colOf[k] {
				row[col] = prow[i]
			}
		}
		if _, err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

func encodeAt(row model.Tuple, cols []int) string {
	ds := make([]model.Datum, len(cols))
	for i, c := range cols {
		ds[i] = row[c]
	}
	return model.EncodeDatums(ds)
}
