package asr

import (
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/relstore"
)

// This file is the incremental half of ASR management. Materialize
// (index.go) rebuilds every backing table by re-joining whole
// provenance relations; the paper's amortization argument for ASRs,
// however, assumes the indexes persist across updates. ApplyInsertions
// and ApplyDeletions patch the backing tables directly from update
// exchange's insertion/deletion reports — the same deltas that keep
// the engine journals and the cached provenance graph alive — so the
// steady-state update path never re-materializes: cost scales with the
// provenance rows that changed, not the instance. Materialize remains
// the fallback for full runs (no delta to patch from) and for
// definition changes.

// ApplyInsertions patches every definition's backing table with the
// ASR rows arising from the report's new derivations. For each span
// and each chain position holding new provenance rows, the new rows
// are joined leftward against pre-insertion rows only and rightward
// against the full (old ∪ new) rows — the classic delta-join
// decomposition under which every new combination is produced exactly
// once (at its leftmost delta position). A Full report carries no
// delta, so it falls back to Materialize.
func (ix *Index) ApplyInsertions(report *exchange.InsertionReport) error {
	if len(ix.defs) == 0 || report == nil {
		return nil
	}
	if report.Full {
		return ix.Materialize()
	}
	if len(report.InsertedDerivations) == 0 {
		return nil
	}
	ix.sys.DB.BeginBatch()
	defer ix.sys.DB.EndBatch()
	delta := make(map[string][]model.Tuple)
	for _, d := range report.InsertedDerivations {
		delta[d.Mapping] = append(delta[d.Mapping], d.Row)
	}
	for _, d := range ix.defs {
		touched := false
		for _, m := range d.Chain {
			if len(delta[m]) > 0 {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		if err := ix.patchDefInsert(d, delta); err != nil {
			// A half-applied patch must not survive as a silently
			// stale index: rebuild this definition from scratch.
			if merr := ix.materializeDef(d); merr != nil {
				return merr
			}
		}
	}
	return nil
}

// ApplyDeletions removes from every definition's backing table the ASR
// rows embedding a deleted derivation: one scan per touched table, no
// join re-computation. A report carrying counts but no row lists (the
// legacy whole-graph propagator) can't be patched from and falls back
// to Materialize.
func (ix *Index) ApplyDeletions(report *exchange.MaintenanceReport) error {
	if len(ix.defs) == 0 || report == nil {
		return nil
	}
	if len(report.DeletedDerivations) == 0 {
		if report.DerivationsDeleted == 0 {
			return nil
		}
		return ix.Materialize()
	}
	ix.sys.DB.BeginBatch()
	defer ix.sys.DB.EndBatch()
	deleted := make(map[string]*deletedProv)
	for _, dd := range report.DeletedDerivations {
		set := deleted[dd.Mapping]
		if set == nil {
			set = &deletedProv{enc: make(map[string]bool), first: make(map[model.Datum]bool)}
			deleted[dd.Mapping] = set
		}
		set.enc[model.EncodeDatums(dd.Row)] = true
		if len(dd.Row) > 0 {
			set.first[dd.Row[0]] = true
		}
	}
	for _, d := range ix.defs {
		touched := false
		for _, m := range d.Chain {
			if deleted[m] != nil {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		if err := ix.patchDefDelete(d, deleted); err != nil {
			// Same stale-index guard as the insertion path.
			if merr := ix.materializeDef(d); merr != nil {
				return merr
			}
		}
	}
	return nil
}

// sideProbe answers "which provenance rows of one chain position have
// these values in these columns". Materialized provenance relations
// are probed through a persistent relstore secondary index — created
// lazily on first use and thereafter maintained by the table's own
// insert/delete paths, mirroring the paper's B-Tree indexes on
// provenance keys — so a patch does no per-call hash builds. Virtual
// provenance relations have no table; their rows are hashed once per
// patch.
type sideProbe struct {
	table *relstore.Table
	cols  []int
	hash  map[string][]model.Tuple // fallback for virtual mappings
}

func (sp *sideProbe) candidates(vals []model.Datum) []model.Tuple {
	if sp.table != nil {
		return sp.table.Probe(sp.cols, vals)
	}
	return sp.hash[model.EncodeDatums(vals)]
}

// newSideProbe builds the probe for one chain position and column set.
func (ix *Index) newSideProbe(mapping string, cols []int) (*sideProbe, error) {
	if pr := ix.sys.Prov[mapping]; pr != nil && !pr.Virtual {
		if tbl, ok := ix.sys.DB.Table(pr.TableName); ok {
			tbl.EnsureIndex(cols)
			return &sideProbe{table: tbl, cols: cols}, nil
		}
	}
	rows, err := ix.sys.ProvRows(mapping)
	if err != nil {
		return nil, err
	}
	build := make(map[string][]model.Tuple, len(rows))
	for _, row := range rows {
		build[encodeAt(row, cols)] = append(build[encodeAt(row, cols)], row)
	}
	return &sideProbe{cols: cols, hash: build}, nil
}

// patchDefInsert delta-joins one definition's new provenance rows into
// its backing table.
func (ix *Index) patchDefInsert(d *Def, delta map[string][]model.Tuple) error {
	t, ok := ix.sys.DB.Table(d.Name)
	if !ok {
		// Defined but never materialized: nothing to patch, build fresh.
		return ix.materializeDef(d)
	}
	n := len(d.Chain)
	deltaRows := make([][]model.Tuple, n)
	deltaSet := make([]map[string]bool, n)
	for k, m := range d.Chain {
		deltaRows[k] = delta[m]
		if len(deltaRows[k]) == 0 {
			continue
		}
		set := make(map[string]bool, len(deltaRows[k]))
		for _, row := range deltaRows[k] {
			set[model.EncodeDatums(row)] = true
		}
		deltaSet[k] = set
	}
	// Lazily built probes per position: downProbe[k] answers leftward
	// extensions INTO position k (keyed on joins[k].downCols),
	// upProbe[k] rightward extensions INTO position k (keyed on
	// joins[k-1].upCols). Probes see the FULL (old ∪ new) rows;
	// leftward extensions must see only pre-insertion rows, so their
	// matches are filtered against the (small) per-position delta set.
	downProbe := make([]*sideProbe, n)
	upProbe := make([]*sideProbe, n)
	getDown := func(k int) (*sideProbe, error) {
		if downProbe[k] == nil {
			sp, err := ix.newSideProbe(d.Chain[k], d.joins[k].downCols)
			if err != nil {
				return nil, err
			}
			downProbe[k] = sp
		}
		return downProbe[k], nil
	}
	getUp := func(k int) (*sideProbe, error) {
		if upProbe[k] == nil {
			sp, err := ix.newSideProbe(d.Chain[k], d.joins[k-1].upCols)
			if err != nil {
				return nil, err
			}
			upProbe[k] = sp
		}
		return upProbe[k], nil
	}
	for _, sp := range d.spans {
		for m := sp.From; m <= sp.To; m++ {
			if len(deltaRows[m]) == 0 {
				continue
			}
			if err := emitDeltaSpan(d, t, sp, m, deltaRows[m], deltaSet, getDown, getUp); err != nil {
				return err
			}
		}
	}
	return nil
}

// datumsAt gathers a row's values at cols into buf.
func datumsAt(buf []model.Datum, row model.Tuple, cols []int) []model.Datum {
	buf = buf[:0]
	for _, c := range cols {
		buf = append(buf, row[c])
	}
	return buf
}

// emitDeltaSpan inserts the span's new rows for one delta position m:
// chains seeded by the new provenance rows at m, extended rightward
// through the full rows and leftward through the pre-insertion rows
// (full rows minus the delta set — filtered per matched candidate, so
// only join candidates are ever re-encoded).
func emitDeltaSpan(d *Def, t *relstore.Table, sp span, m int, seed []model.Tuple,
	deltaSet []map[string]bool, getDown, getUp func(int) (*sideProbe, error)) error {
	parts := make([][]model.Tuple, 0, len(seed))
	for _, row := range seed {
		parts = append(parts, []model.Tuple{row})
	}
	var vals []model.Datum
	// Rightward: parts cover positions m..k, p[len-1] at position k.
	for k := m; k < sp.To && len(parts) > 0; k++ {
		probe, err := getUp(k + 1)
		if err != nil {
			return err
		}
		var next [][]model.Tuple
		for _, p := range parts {
			vals = datumsAt(vals, p[len(p)-1], d.joins[k].downCols)
			for _, urow := range probe.candidates(vals) {
				np := make([]model.Tuple, len(p)+1)
				copy(np, p)
				np[len(p)] = urow
				next = append(next, np)
			}
		}
		parts = next
	}
	// Leftward: prepend positions m-1..From, p[0] at the leftmost.
	for k := m; k > sp.From && len(parts) > 0; k-- {
		probe, err := getDown(k - 1)
		if err != nil {
			return err
		}
		fresh := deltaSet[k-1]
		var next [][]model.Tuple
		for _, p := range parts {
			vals = datumsAt(vals, p[0], d.joins[k-1].upCols)
			for _, drow := range probe.candidates(vals) {
				if fresh != nil && fresh[model.EncodeDatums(drow)] {
					continue
				}
				np := make([]model.Tuple, len(p)+1)
				np[0] = drow
				copy(np[1:], p)
				next = append(next, np)
			}
		}
		parts = next
	}
	tag := sp.tag()
	for _, p := range parts {
		row := make(model.Tuple, len(d.columns))
		row[0] = tag
		for k := sp.From; k <= sp.To; k++ {
			prow := p[k-sp.From]
			for i, col := range d.colOf[k] {
				row[col] = prow[i]
			}
		}
		if _, err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// deletedProv is one mapping's deleted provenance rows: the full-row
// encodings that identify them, plus the set of their first datums —
// a cheap prefilter, since fully encoding every span position of
// every ASR row would dominate the deletion patch on long chains.
type deletedProv struct {
	enc   map[string]bool
	first map[model.Datum]bool
}

// patchDefDelete scans one definition's backing table and removes the
// rows embedding any deleted derivation at any of their span's
// positions.
func (ix *Index) patchDefDelete(d *Def, deleted map[string]*deletedProv) error {
	t, ok := ix.sys.DB.Table(d.Name)
	if !ok {
		return ix.materializeDef(d)
	}
	spanOf := make(map[string]span, len(d.spans))
	for _, sp := range d.spans {
		spanOf[sp.tag()] = sp
	}
	t.DeleteWhere(func(row model.Tuple) bool {
		tag, _ := row[0].(string)
		sp, ok := spanOf[tag]
		if !ok {
			return false
		}
		for k := sp.From; k <= sp.To; k++ {
			set := deleted[d.Chain[k]]
			if set == nil {
				continue
			}
			cols := d.colOf[k]
			if len(cols) > 0 && !set.first[row[cols[0]]] {
				continue
			}
			if set.enc[encodeAt(row, cols)] {
				return true
			}
		}
		return false
	})
	return nil
}
