package asr_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/asr"
	"repro/internal/exchange"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/workload"
)

// asrSnapshot renders every definition's backing table as one sorted,
// comparable string.
func asrSnapshot(t *testing.T, ix *asr.Index, sys *exchange.System) string {
	t.Helper()
	var lines []string
	for _, d := range ix.Defs() {
		tbl, ok := sys.DB.Table(d.Name)
		if !ok {
			t.Fatalf("ASR table %s missing", d.Name)
		}
		for _, row := range tbl.Rows() {
			lines = append(lines, d.Name+"|"+model.EncodeDatums(row))
		}
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestASRPatchMatchesMaterialize drives interleaved insert/delete
// churn through a chain setting carrying ASR indexes of every kind
// over randomly split mapping chains, and asserts after every
// operation that the incrementally patched backing tables are
// row-identical to a full re-materialization — then re-materializes so
// the next operation again starts from ground truth.
func TestASRPatchMatchesMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	kinds := []asr.Kind{asr.CompletePath, asr.Subpath, asr.Prefix, asr.Suffix}
	for trial := 0; trial < 8; trial++ {
		kind := kinds[trial%len(kinds)]
		cfg := workload.Config{
			Topology:   workload.Chain,
			Profile:    workload.ProfileLinear,
			NumPeers:   5 + rng.Intn(3),
			DataPeers:  nil, // filled below
			BaseSize:   20,
			Categories: 16,
			Seed:       int64(1000 + trial),
		}
		cfg.DataPeers = workload.UpstreamDataPeers(cfg.NumPeers, 2)
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys := set.Sys
		ix := asr.NewIndex(sys)
		for _, chain := range set.AChains() {
			// Random segment split: complete/subpath (and prefix/suffix)
			// delta semantics over varying span structures.
			maxLen := 1 + rng.Intn(len(chain))
			for _, seg := range workload.SplitChain(chain, maxLen) {
				if _, err := ix.Define(kind, seg...); err != nil {
					t.Fatalf("trial %d: define %v over %v: %v", trial, kind, seg, err)
				}
			}
		}
		if err := ix.Materialize(); err != nil {
			t.Fatal(err)
		}

		src := cfg.NumPeers - 1
		var next int64
		for op := 0; op < 6; op++ {
			if op%2 == 0 {
				// Insert a fresh base row at the far peer and propagate
				// incrementally; patch the ASRs from the report.
				k := int64(src)*10_000_000 + int64(cfg.BaseSize) + next
				next++
				row := model.Tuple{k, k % int64(cfg.Categories)}
				for a := 0; a < 10; a++ {
					row = append(row, k+int64(a))
				}
				if err := sys.InsertLocal(workload.ARel(src), row); err != nil {
					t.Fatal(err)
				}
				report, err := sys.RunDelta()
				if err != nil {
					t.Fatal(err)
				}
				if report.Full {
					t.Fatalf("trial %d op %d: RunDelta fell back to a full run", trial, op)
				}
				if err := ix.ApplyInsertions(report); err != nil {
					t.Fatal(err)
				}
			} else {
				// Delete one existing base row; patch the ASRs from the
				// deletion report.
				key := []model.Datum{int64(src)*10_000_000 + int64(op%cfg.BaseSize)}
				report, err := sys.DeleteLocal(workload.ARel(src), key)
				if err != nil {
					t.Fatal(err)
				}
				if err := ix.ApplyDeletions(report); err != nil {
					t.Fatal(err)
				}
			}
			patched := asrSnapshot(t, ix, sys)
			if err := ix.Materialize(); err != nil {
				t.Fatal(err)
			}
			rebuilt := asrSnapshot(t, ix, sys)
			if patched != rebuilt {
				t.Fatalf("trial %d (kind=%v) op %d: patched ASR tables differ from re-materialization\npatched:\n%s\nrebuilt:\n%s",
					trial, kind, op, patched, rebuilt)
			}
		}
	}
}

// TestASRPatchVirtualProvenance covers the virtual-provenance side of
// the patch probes: chain m1→m3 of the cyclic running example ends in
// a projection mapping whose provenance relation is a view, so the
// patch must fall back to per-call hashing for that position (no
// backing table to index) while still matching a re-materialization
// under insert AND delete churn.
func TestASRPatchVirtualProvenance(t *testing.T) {
	sys, err := fixture.System(fixture.Options{IncludeM3: true})
	if err != nil {
		t.Fatal(err)
	}
	if pr := sys.Prov["m3"]; pr == nil || !pr.Virtual {
		t.Fatal("fixture m3 is expected to have a virtual provenance relation")
	}
	ix := asr.NewIndex(sys)
	if _, err := ix.Define(asr.Subpath, "m1", "m3"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		patched := asrSnapshot(t, ix, sys)
		if err := ix.Materialize(); err != nil {
			t.Fatal(err)
		}
		if rebuilt := asrSnapshot(t, ix, sys); patched != rebuilt {
			t.Fatalf("%s: patched ASR tables differ from re-materialization\npatched:\n%s\nrebuilt:\n%s",
				stage, patched, rebuilt)
		}
	}

	// Insert churn: a new A row plus a curated N row feeding m1 (and,
	// through C, the virtual m3).
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.InsertLocal("A", model.Tuple{int64(9), "sn9", int64(3)}))
	must(sys.InsertLocal("N", model.Tuple{int64(9), "cn9", false}))
	report, err := sys.RunDelta()
	if err != nil {
		t.Fatal(err)
	}
	if report.Full {
		t.Fatal("RunDelta fell back to a full run")
	}
	if err := ix.ApplyInsertions(report); err != nil {
		t.Fatal(err)
	}
	check("after insert")

	// Delete churn: retract the curated N(1,cn1,false), collapsing the
	// C⇄N cycle and its m1/m3 derivations.
	drep, err := sys.DeleteLocal("N", []model.Datum{int64(1), "cn1", false})
	if err != nil {
		t.Fatal(err)
	}
	if drep.DerivationsDeleted == 0 {
		t.Fatal("expected the retraction to delete derivations")
	}
	if err := ix.ApplyDeletions(drep); err != nil {
		t.Fatal(err)
	}
	check("after delete")
}

// TestASRApplyDeletionsLegacyReportRebuilds: a report carrying only
// counters (the legacy whole-graph propagator leaves the row lists
// nil) cannot be patched from, so ApplyDeletions must fall back to a
// full re-materialization.
func TestASRApplyDeletionsLegacyReportRebuilds(t *testing.T) {
	set, err := workload.Build(workload.Config{
		Topology:  workload.Chain,
		Profile:   workload.ProfileLinear,
		NumPeers:  4,
		DataPeers: workload.UpstreamDataPeers(4, 1),
		BaseSize:  10,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := asr.NewIndex(set.Sys)
	chain := set.AChains()[0]
	if _, err := ix.Define(asr.CompletePath, chain...); err != nil {
		t.Fatal(err)
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	before := ix.Materializations()
	legacy := &exchange.MaintenanceReport{DerivationsDeleted: 3}
	if err := ix.ApplyDeletions(legacy); err != nil {
		t.Fatal(err)
	}
	if got := ix.Materializations(); got != before+len(ix.Defs()) {
		t.Fatalf("legacy report materialized %d defs, want %d", got-before, len(ix.Defs()))
	}
	// An empty report is a no-op, not a rebuild.
	before = ix.Materializations()
	if err := ix.ApplyDeletions(&exchange.MaintenanceReport{}); err != nil {
		t.Fatal(err)
	}
	if got := ix.Materializations(); got != before {
		t.Fatalf("empty report triggered %d materializations", got-before)
	}
}
