package asr_test

import (
	"context"
	"testing"

	"repro/internal/asr"
	"repro/internal/fixture"
	"repro/internal/proql"
)

func TestSpansPerKind(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	cases := []struct {
		kind asr.Kind
		want int
	}{
		{asr.CompletePath, 1},
		{asr.Prefix, 2},
		{asr.Suffix, 2},
		{asr.Subpath, 3},
	}
	for _, c := range cases {
		d, err := asr.NewDef(sys, c.kind, []string{"m5", "m1"})
		if err != nil {
			t.Fatalf("%v: %v", c.kind, err)
		}
		spans := d.Spans()
		if len(spans) != c.want {
			t.Errorf("%v spans = %d, want %d", c.kind, len(spans), c.want)
		}
		// Longest first.
		for i := 1; i < len(spans); i++ {
			li := spans[i-1][1] - spans[i-1][0]
			lj := spans[i][1] - spans[i][0]
			if li < lj {
				t.Errorf("%v spans not ordered by decreasing length: %v", c.kind, spans)
			}
		}
	}
}

func TestDefValidation(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	if _, err := asr.NewDef(sys, asr.CompletePath, nil); err == nil {
		t.Error("empty chain should fail")
	}
	if _, err := asr.NewDef(sys, asr.CompletePath, []string{"nope"}); err == nil {
		t.Error("unknown mapping should fail")
	}
	// m4 and m2 are unconnected (m2's head N is not a source of m4).
	if _, err := asr.NewDef(sys, asr.CompletePath, []string{"m4", "m2"}); err == nil {
		t.Error("disconnected chain should fail")
	}
}

func TestIndexOverlapRejected(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	ix := asr.NewIndex(sys)
	if _, err := ix.Define(asr.CompletePath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Define(asr.Subpath, "m1"); err == nil {
		t.Error("overlapping definition should be rejected")
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]asr.Kind{
		"complete": asr.CompletePath,
		"subpath":  asr.Subpath,
		"prefix":   asr.Prefix,
		"suffix":   asr.Suffix,
	} {
		got, err := asr.ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := asr.ParseKind("zigzag"); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestMaterializeCompletePath(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	ix := asr.NewIndex(sys)
	if _, err := ix.Define(asr.CompletePath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	// P_m5 has rows (1,cn1,7),(2,cn2,5); P_m1 has (1,cn1). Only the
	// first joins: one complete-path row.
	if got := ix.TotalRows(); got != 1 {
		t.Errorf("complete-path ASR rows = %d, want 1", got)
	}
}

func TestMaterializeSubpath(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	ix := asr.NewIndex(sys)
	if _, err := ix.Define(asr.Subpath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	// Spans: [0,1] → 1 row; [0,0] → 2 rows (P_m5); [1,1] → 1 row (P_m1).
	if got := ix.TotalRows(); got != 4 {
		t.Errorf("subpath ASR rows = %d, want 4", got)
	}
}

// execWith runs a query with and without ASR rewriting and verifies
// identical results — the correctness contract of Section 5.2.
func execWith(t *testing.T, kind asr.Kind, query string) {
	t.Helper()
	sys := fixture.MustSystem(fixture.Options{})
	eng := proql.NewEngine(sys)
	q := proql.MustParse(query)
	base, err := eng.Exec(context.Background(), q, proql.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ix := asr.NewIndex(sys)
	if _, err := ix.Define(kind, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	eng.RewriteRules = ix.RewriteRules
	opt, err := eng.Exec(context.Background(), q, proql.Options{})
	if err != nil {
		t.Fatal(err)
	}

	baseRefs := base.SortedRefs("x")
	optRefs := opt.SortedRefs("x")
	if len(baseRefs) != len(optRefs) {
		t.Fatalf("%v: bindings %d vs %d", kind, len(baseRefs), len(optRefs))
	}
	for i := range baseRefs {
		if baseRefs[i] != optRefs[i] {
			t.Errorf("%v: binding %d differs: %v vs %v", kind, i, baseRefs[i], optRefs[i])
		}
	}
	if base.MustGraph().NumDerivations() != opt.MustGraph().NumDerivations() {
		t.Errorf("%v: derivations %d vs %d", kind, base.MustGraph().NumDerivations(), opt.MustGraph().NumDerivations())
	}
	if base.Annotations != nil {
		for ref, v := range base.Annotations {
			ov, ok := opt.Annotations[ref]
			if !ok {
				t.Errorf("%v: missing annotation for %v", kind, ref)
				continue
			}
			if !base.Semiring.Eq(v, ov) {
				t.Errorf("%v: annotation(%v) = %v vs %v", kind, ref,
					base.Semiring.Format(v), base.Semiring.Format(ov))
			}
		}
	}
}

func TestRewritePreservesResults(t *testing.T) {
	queries := map[string]string{
		"projection": `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`,
		"derivability": `EVALUATE DERIVABILITY OF {
			FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`,
		"trust": `EVALUATE TRUST OF {
			FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
		} ASSIGNING EACH leaf_node $y {
			CASE $y in A and $y.length >= 6 : SET false
			DEFAULT : SET true
		} ASSIGNING EACH mapping $p($z) {
			CASE $p = m4 : SET false
			DEFAULT : SET $z
		}`,
		"count": `EVALUATE COUNT OF {
			FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`,
	}
	for _, kind := range []asr.Kind{asr.CompletePath, asr.Subpath, asr.Prefix, asr.Suffix} {
		for name, query := range queries {
			t.Run(kind.String()+"/"+name, func(t *testing.T) {
				execWith(t, kind, query)
			})
		}
	}
}

func TestRewriteReducesJoinCount(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	comp, err := proql.CompileUnfold(sys, proql.MustParse(`FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`))
	if err != nil {
		t.Fatal(err)
	}
	ix := asr.NewIndex(sys)
	if _, err := ix.Define(asr.CompletePath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	rewritten := ix.RewriteRules(comp.Rules)
	// Find the m5∘m1 rule: it had P_m5 and P_m1 atoms; after rewriting
	// both are folded into one ASR atom (one join fewer, Example 5.1).
	reduced := false
	for i, r := range rewritten {
		orig := comp.Rules[i]
		if len(r.Body) < len(orig.Body) {
			reduced = true
			foundASR := false
			for _, a := range r.Body {
				if a.Rel == "ASR_m5_m1" {
					foundASR = true
				}
				if a.Rel == "P_m5" || a.Rel == "P_m1" {
					t.Errorf("provenance atom %s should have been replaced", a.Rel)
				}
			}
			if !foundASR {
				t.Error("rewritten rule lacks the ASR atom")
			}
		}
	}
	if !reduced {
		t.Error("no rule was rewritten")
	}
	// Inputs untouched.
	for _, r := range comp.Rules {
		for _, a := range r.Body {
			if a.Rel == "ASR_m5_m1" {
				t.Fatal("RewriteRules mutated its input")
			}
		}
	}
}
