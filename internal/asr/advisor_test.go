package asr_test

import (
	"context"
	"testing"

	"repro/internal/asr"
	"repro/internal/fixture"
	"repro/internal/proql"
	"repro/internal/workload"
)

func TestAdviseOnChainWorkload(t *testing.T) {
	set, err := workload.Build(workload.Config{
		Topology:  workload.Chain,
		Profile:   workload.ProfileLinear,
		NumPeers:  10,
		DataPeers: workload.UpstreamDataPeers(10, 2),
		BaseSize:  20,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := asr.NewIndex(set.Sys)
	defs, err := ix.Advise(workload.ARel(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 9 mappings split into segments of ≤4 with the length-1 tail
	// dropped: [4,4] (the final singleton is skipped).
	if len(defs) != 2 {
		for _, d := range defs {
			t.Logf("def %s over %v", d.Name, d.Chain)
		}
		t.Fatalf("advised %d defs, want 2", len(defs))
	}
	for _, d := range defs {
		if d.Kind != asr.Suffix {
			t.Errorf("advised kind = %v, want suffix", d.Kind)
		}
		if len(d.Chain) != 4 {
			t.Errorf("segment length = %d, want 4", len(d.Chain))
		}
	}
	if err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	// Advised indexes must preserve query results.
	eng := proql.NewEngine(set.Sys)
	q := proql.MustParse(set.TargetQuery())
	base, err := eng.Exec(context.Background(), q, proql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RewriteRules = ix.RewriteRules
	opt, err := eng.Exec(context.Background(), q, proql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.SortedRefs("x")) != len(opt.SortedRefs("x")) {
		t.Error("advised ASRs changed query results")
	}
}

func TestAdviseOnBranchedWorkload(t *testing.T) {
	set, err := workload.Build(workload.Config{
		Topology:  workload.Branched,
		Profile:   workload.ProfileLinear,
		NumPeers:  13, // 4 branches of 3 peers each
		DataPeers: workload.UpstreamDataPeers(13, 4),
		BaseSize:  10,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := asr.NewIndex(set.Sys)
	defs, err := ix.Advise(workload.ARel(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 4 branches × 3 mappings: one length-3 suffix def per branch.
	if len(defs) != 4 {
		t.Fatalf("advised %d defs, want 4", len(defs))
	}
	// Disjointness is enforced by Define; a second Advise over the
	// same anchor has nothing unclaimed left to index.
	more, err := ix.Advise(workload.ARel(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 0 {
		t.Errorf("second advise should find nothing, got %d defs", len(more))
	}
}

func TestAdviseRunningExample(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	ix := asr.NewIndex(sys)
	defs, err := ix.Advise("O", 5)
	if err != nil {
		t.Fatal(err)
	}
	// From O: m4 chains only to A (no incoming mappings → length-1
	// chain, dropped); m5 continues through C into m1. m1 does not
	// connect further: m2 produces N(…,true) but m1 consumes
	// N(…,false), so the chain ends → [m5, m1].
	if len(defs) != 1 || len(defs[0].Chain) != 2 {
		for _, d := range defs {
			t.Logf("def %v", d.Chain)
		}
		t.Fatalf("advise on example = %d defs", len(defs))
	}
	if defs[0].Chain[0] != "m5" || defs[0].Chain[1] != "m1" {
		t.Fatalf("chain = %v, want [m5 m1]", defs[0].Chain)
	}
}
