// Package asr implements access support relations for provenance
// (Section 5 of the paper): materialized joins of provenance relations
// along mapping paths, in four flavours (complete path, subpath,
// prefix, suffix), plus the greedy rewriting algorithm of Figure 4
// (unfoldASRs / unfoldPath / findHomomorphism) that substitutes ASRs
// into unfolded ProQL rules.
//
// Representation note: the paper materializes subpath/prefix/suffix
// ASRs with outer joins, padding the unindexed steps with NULLs. We
// materialize the same information as a union of inner joins over the
// indexed (sub)paths, each row tagged with a span discriminator column,
// which makes rewritten rules select exactly the rows of one subpath
// (no NULL-probing ambiguity) while preserving the storage/benefit
// trade-offs between ASR types that Figures 11–13 measure.
package asr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/exchange"
	"repro/internal/model"
)

// Kind selects which (sub)paths of a mapping chain an ASR indexes
// (Section 5.1).
type Kind int

// ASR kinds.
const (
	// CompletePath indexes only the full chain (inner join).
	CompletePath Kind = iota
	// Subpath indexes every contiguous subpath (full outer join /
	// union of joins in the paper's construction).
	Subpath
	// Prefix indexes the chain and all its prefixes. A provenance path
	// runs from base tuples toward derived tuples, so prefixes are
	// anchored at the *source* end — they benefit queries returning
	// everything derivable from a particular base tuple (Section 6.4).
	Prefix
	// Suffix indexes the chain and all its suffixes, anchored at the
	// *derived* end — they benefit the target query, which looks for
	// paths starting anywhere but ending at a specific derived
	// relation (Section 6.4).
	Suffix
)

func (k Kind) String() string {
	switch k {
	case CompletePath:
		return "complete"
	case Subpath:
		return "subpath"
	case Prefix:
		return "prefix"
	case Suffix:
		return "suffix"
	}
	return "?"
}

// ParseKind resolves a kind name ("complete", "subpath", "prefix",
// "suffix").
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "complete", "completepath", "complete-path":
		return CompletePath, nil
	case "subpath":
		return Subpath, nil
	case "prefix":
		return Prefix, nil
	case "suffix":
		return Suffix, nil
	}
	return 0, fmt.Errorf("asr: unknown ASR kind %q", name)
}

// Def is one ASR definition: a chain of mappings ordered from the
// derived (query-anchor) side toward the source side; consecutive
// mappings must connect (a source relation of chain[k] is a head
// relation of chain[k+1]).
type Def struct {
	Name  string
	Kind  Kind
	Chain []string

	// columns of the backing table: a span discriminator followed by
	// the provenance attributes of every chain position.
	columns []model.Column
	// colOf[k][i] is the table column of chain position k's i-th
	// provenance attribute.
	colOf [][]int
	// joins[k] connects position k to k+1.
	joins []joinStep
	// spans lists the indexed subpaths, ordered by decreasing length
	// (the Figure 4 rewriting order).
	spans []span
	// varNames are the canonical pattern variable names per chain
	// position, with connection columns sharing names (rewrite.go).
	varNames [][]string
}

// joinStep records the join columns between consecutive chain
// positions, as indices into each provenance relation's Vars.
type joinStep struct {
	rel      string // connecting relation
	downCols []int  // columns in P_chain[k] (source atom keys)
	upCols   []int  // columns in P_chain[k+1] (head atom keys)
}

// span is one indexed contiguous subpath [From..To] (inclusive).
type span struct {
	From, To int
}

func (s span) length() int { return s.To - s.From + 1 }

func (s span) tag() string { return fmt.Sprintf("%d:%d", s.From, s.To) }

// TableNamePrefix prefixes ASR table names.
const TableNamePrefix = "ASR_"

// NewDef validates and constructs an ASR definition over a system's
// mappings.
func NewDef(sys *exchange.System, kind Kind, chain []string) (*Def, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("asr: empty mapping chain")
	}
	d := &Def{
		Name:  TableNamePrefix + strings.Join(chain, "_"),
		Kind:  kind,
		Chain: append([]string(nil), chain...),
	}
	d.columns = append(d.columns, model.Column{Name: "span", Type: model.TypeString})
	for k, m := range chain {
		pr, ok := sys.Prov[m]
		if !ok {
			return nil, fmt.Errorf("asr: unknown mapping %q", m)
		}
		cols := make([]int, len(pr.Vars))
		for i, v := range pr.Vars {
			cols[i] = len(d.columns)
			d.columns = append(d.columns, model.Column{
				Name: fmt.Sprintf("p%d_%s", k, v),
				Type: pr.Cols[i].Type,
			})
		}
		d.colOf = append(d.colOf, cols)
	}
	for k := 0; k+1 < len(chain); k++ {
		step, err := connect(sys, chain[k], chain[k+1])
		if err != nil {
			return nil, err
		}
		d.joins = append(d.joins, *step)
	}
	d.spans = spansFor(kind, len(chain))
	d.buildVarNames()
	return d, nil
}

// connect finds the relation linking two consecutive chain mappings
// and the corresponding provenance-attribute columns.
func connect(sys *exchange.System, down, up string) (*joinStep, error) {
	dpr := sys.Prov[down]
	upr := sys.Prov[up]
	if dpr == nil || upr == nil {
		return nil, fmt.Errorf("asr: unknown mapping in chain %s→%s", down, up)
	}
	for _, src := range dpr.Mapping.Body {
		for _, head := range upr.Mapping.Head {
			if src.Rel != head.Rel {
				continue
			}
			rel, ok := sys.Schema.Relation(src.Rel)
			if !ok {
				return nil, fmt.Errorf("asr: unknown relation %q", src.Rel)
			}
			var dCols, uCols []int
			ok = true
			for _, k := range rel.Key {
				dt, ut := src.Args[k], head.Args[k]
				if dt.IsConst || ut.IsConst {
					// Constant key positions join only if both sides
					// fix the same constant (m1 consuming N(…,false)
					// never connects to m2 producing N(…,true)).
					if dt.IsConst && ut.IsConst && model.Equal(dt.Const, ut.Const) {
						continue
					}
					ok = false
					break
				}
				dc := provColOf(dpr, dt)
				uc := provColOf(upr, ut)
				if dc < 0 || uc < 0 {
					ok = false
					break
				}
				dCols = append(dCols, dc)
				uCols = append(uCols, uc)
			}
			if ok {
				return &joinStep{rel: src.Rel, downCols: dCols, upCols: uCols}, nil
			}
		}
	}
	return nil, fmt.Errorf("asr: mappings %s and %s are not connected (no shared relation)", down, up)
}

// provColOf finds a key term's column in the provenance relation; -1
// for constants (which need no join column).
func provColOf(pr *exchange.ProvRel, t model.Term) int {
	if t.IsConst {
		return -1
	}
	for i, v := range pr.Vars {
		if v == t.Var {
			return i
		}
	}
	return -1
}

// spansFor enumerates the indexed subpaths of a kind, longest first.
// Def.Chain is ordered derived-end first (chain[0] is the mapping
// nearest the derived tuples), while the paper's prefix/suffix naming
// follows the path direction base→derived: a path *prefix* is anchored
// at the source end (spans [i..n-1] here) and a *suffix* at the
// derived end (spans [0..j]).
func spansFor(kind Kind, n int) []span {
	var out []span
	switch kind {
	case CompletePath:
		out = append(out, span{0, n - 1})
	case Suffix:
		for j := n - 1; j >= 0; j-- {
			out = append(out, span{0, j})
		}
	case Prefix:
		for i := 0; i < n; i++ {
			out = append(out, span{i, n - 1})
		}
	case Subpath:
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				out = append(out, span{i, j})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].length() > out[b].length() })
	return out
}

// Spans exposes the indexed subpaths as (from, to) pairs; for tests
// and tooling.
func (d *Def) Spans() [][2]int {
	out := make([][2]int, len(d.spans))
	for i, s := range d.spans {
		out[i] = [2]int{s.From, s.To}
	}
	return out
}

// Width returns the backing table's column count.
func (d *Def) Width() int { return len(d.columns) }
