package asr

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/proql"
)

// RewriteRules is the unfoldASRs algorithm of Figure 4: for every
// unfolded conjunctive rule, repeatedly try to replace joins of
// provenance atoms with ASR atoms, considering each ASR's indexed
// paths in inverse order of length. Because definitions are
// non-overlapping, the greedy order yields a minimal rewriting
// (shorter subpaths are only unfolded if no longer superpath matched).
//
// The returned rules are fresh copies; the inputs are not mutated, so
// an engine can run with and without ASRs over the same compilation.
// Plug this into proql.Engine.RewriteRules.
func (ix *Index) RewriteRules(rules []*proql.ConjRule) []*proql.ConjRule {
	out := make([]*proql.ConjRule, len(rules))
	for i, r := range rules {
		out[i] = ix.rewriteRule(r)
	}
	return out
}

func (ix *Index) rewriteRule(r *proql.ConjRule) *proql.ConjRule {
	body := append([]model.Atom(nil), r.Body...)
	for {
		didSomething := false
		for _, d := range ix.defs {
			foundUnfolding := false
			for _, sp := range d.spans { // longest first
				if foundUnfolding {
					break
				}
				foundUnfolding = unfoldPath(&body, d, sp)
			}
			if foundUnfolding {
				didSomething = true
			}
		}
		if !didSomething {
			break
		}
	}
	return &proql.ConjRule{Anchor: r.Anchor, Body: body, Tree: r.Tree, Prov: r.Prov}
}

// unfoldPath is Figure 4's unfoldPath: look for a homomorphism from
// the span's provenance-join pattern into the rule body; if found,
// remove the matched atoms and add the ASR atom selecting that span.
func unfoldPath(body *[]model.Atom, d *Def, sp span) bool {
	pattern := d.patternFor(sp)
	mapping, matched, ok := datalog.FindHomomorphism(pattern, *body)
	if !ok {
		return false
	}
	args := make([]model.Term, len(d.columns))
	args[0] = model.C(sp.tag())
	for c := 1; c < len(args); c++ {
		args[c] = model.V("_")
	}
	for k := sp.From; k <= sp.To; k++ {
		for i, col := range d.colOf[k] {
			name := d.varNames[k][i]
			t, bound := mapping[name]
			if !bound {
				// Unreachable for well-formed defs: every pattern var
				// occurs in some pattern atom.
				return false
			}
			args[col] = t
		}
	}
	removed := make(map[int]bool, len(matched))
	for _, idx := range matched {
		removed[idx] = true
	}
	var next []model.Atom
	for i, a := range *body {
		if !removed[i] {
			next = append(next, a)
		}
	}
	next = append(next, model.Atom{Rel: d.Name, Args: args})
	*body = next
	return true
}

// patternFor builds the canonical provenance-join pattern of one span:
// one P atom per chain position, with shared variables expressing the
// connection joins.
func (d *Def) patternFor(sp span) []model.Atom {
	atoms := make([]model.Atom, 0, sp.length())
	for k := sp.From; k <= sp.To; k++ {
		names := d.varNames[k]
		args := make([]model.Term, len(names))
		for i, n := range names {
			args[i] = model.V(n)
		}
		atoms = append(atoms, model.Atom{
			Rel:  exchange.ProvTablePrefix + d.Chain[k],
			Args: args,
		})
	}
	return atoms
}

// buildVarNames assigns canonical pattern variable names per chain
// position, unifying the connection columns of consecutive positions.
func (d *Def) buildVarNames() {
	d.varNames = make([][]string, len(d.Chain))
	for k := range d.Chain {
		names := make([]string, len(d.colOf[k]))
		for i := range names {
			names[i] = fmt.Sprintf("h%d_%d", k, i)
		}
		d.varNames[k] = names
	}
	for k, step := range d.joins {
		for j, uc := range step.upCols {
			d.varNames[k+1][uc] = d.varNames[k][step.downCols[j]]
		}
	}
}
