// Package core is the library facade tying the provenance system
// together: schema and mapping declaration, local-data insertion,
// update exchange with provenance recording, ProQL querying (graph
// projection and semiring annotation computation), ASR index
// management, and provenance-graph export.
//
// A typical session (see examples/quickstart):
//
//	sys, _ := core.Open(schema, core.Options{})
//	sys.InsertLocal("A", rows...)
//	sys.Run()
//	res, _ := sys.Query(`EVALUATE TRUST OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`)
package core

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/asr"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/provgraph"
	"repro/internal/semiring"
	"repro/internal/wal"
)

// System is one CDSS replica with query and indexing support.
//
// Concurrency: queries (Query, and the engine's Exec* family) may run
// from any number of goroutines, including while a mutation commits —
// each query reads a pinned storage snapshot or latched graph, so it
// observes either the whole commit or none of it. Mutations
// (InsertLocal, Run, DeleteLocal, DefineASR, AdviseASRs, UseASRs) are
// serialized by an internal writer lock: callers may issue them from
// multiple goroutines, but they execute one at a time.
type System struct {
	ex     *exchange.System
	engine *proql.Engine
	index  *asr.Index
	useASR bool
	// store is the durability layer of a system created by OpenDurable;
	// nil for purely in-memory systems.
	store *wal.Store

	// wmu serializes mutations. Single-logical-writer keeps the epoch
	// protocol simple: every commit is one batch, and the cached-graph
	// patch that follows it always sees the post-commit epoch.
	wmu sync.Mutex
}

// Options configures Open.
type Options struct {
	// MaterializeAllProvenance disables the superfluous-provenance-
	// relation optimization of Section 4.1.
	MaterializeAllProvenance bool
	// SyncEvery is the durable store's fsync cadence in committed
	// batches (<= 1 syncs every commit). Only used by OpenDurable.
	SyncEvery int
	// CheckpointEvery, when > 0, checkpoints the durable store after
	// this many committed batches (checked after each Run/DeleteLocal).
	// Only used by OpenDurable.
	CheckpointEvery int
	// RetainEpochs, when non-zero, keeps superseded row versions for
	// time-travel queries: the newest RetainEpochs committed epochs stay
	// answerable via QueryAsOf/Diff (relstore.RetainAll retains
	// everything). Zero disables history retention (live-only sweeping,
	// the pre-time-travel behaviour).
	RetainEpochs uint64
}

// Open creates a system over a declared schema.
func Open(schema *model.Schema, opts Options) (*System, error) {
	ex, err := exchange.NewSystem(schema, exchange.Options{
		MaterializeAll: opts.MaterializeAllProvenance,
	})
	if err != nil {
		return nil, err
	}
	if opts.RetainEpochs != 0 {
		ex.DB.SetRetention(opts.RetainEpochs)
	}
	s := &System{ex: ex, engine: proql.NewEngine(ex)}
	s.index = asr.NewIndex(ex)
	return s, nil
}

// OpenDurable creates (or reopens) a system whose storage persists in
// dir: every committed batch is appended to a write-ahead log and
// restart recovers from the newest checkpoint plus the log suffix,
// re-attaching the exchange engine's delta state warm — no cold full
// exchange. Call Checkpoint (or set Options.CheckpointEvery) to bound
// the replay suffix, and Close before process exit.
func OpenDurable(schema *model.Schema, dir string, opts Options) (*System, error) {
	ex, st, err := exchange.OpenDurable(schema, dir,
		wal.Options{SyncEvery: opts.SyncEvery, CheckpointEvery: opts.CheckpointEvery,
			Retain: opts.RetainEpochs},
		exchange.Options{MaterializeAll: opts.MaterializeAllProvenance})
	if err != nil {
		return nil, err
	}
	s := &System{ex: ex, engine: proql.NewEngine(ex), store: st}
	s.index = asr.NewIndex(ex)
	return s, nil
}

// Store exposes the durability layer (nil for in-memory systems).
func (s *System) Store() *wal.Store { return s.store }

// Checkpoint snapshots a durable system and truncates its log; a
// no-op on in-memory systems. Serialized with other mutations.
func (s *System) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.store.Checkpoint()
}

// Close flushes and closes the durability layer; the system stays
// usable in memory. A no-op on in-memory systems.
func (s *System) Close() error {
	if s.store == nil {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.store.Close()
}

// maybeCheckpointLocked runs the configured checkpoint cadence after a
// committed mutation. Called with wmu held (the store itself only
// needs commit-hook exclusion, but holding the writer lock keeps the
// checkpoint ordered against other mutations).
func (s *System) maybeCheckpointLocked() error {
	if s.store == nil {
		return nil
	}
	_, err := s.store.MaybeCheckpoint()
	return err
}

// Wrap adapts an already-built exchange system (e.g. a generated
// workload setting or the running-example fixture) into the facade.
func Wrap(ex *exchange.System) *System {
	return &System{ex: ex, engine: proql.NewEngine(ex), index: asr.NewIndex(ex)}
}

// WrapDurable is Wrap for an exchange system opened through a durable
// store (exchange.OpenDurable, fixture.DurableSystem, workload.
// OpenDurable): the facade takes ownership of the store, so Checkpoint,
// Close, and the CheckpointEvery cadence work as with OpenDurable.
func WrapDurable(ex *exchange.System, st *wal.Store) *System {
	s := Wrap(ex)
	s.store = st
	return s
}

// Exchange exposes the underlying exchange system for advanced use.
func (s *System) Exchange() *exchange.System { return s.ex }

// Engine exposes the ProQL engine for advanced use.
func (s *System) Engine() *proql.Engine { return s.engine }

// InsertLocal adds local-contribution tuples to a relation. Call Run
// afterwards to propagate them.
func (s *System) InsertLocal(rel string, rows ...model.Tuple) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.ex.InsertLocal(rel, rows...)
}

// Run executes update exchange, materializing all peer instances and
// their provenance. The first call runs the full fixpoint; afterwards
// the engine's state persists, so subsequent calls propagate only the
// rows inserted since the previous run (a Δ-seeded RunDelta whose cost
// scales with the affected derivations, not the database), the cached
// provenance graph is patched in place instead of rebuilt, and ASR
// backing tables are patched from the same insertion report instead of
// re-materialized. Deletions do not break the chain: DeleteLocal
// repairs the engine's journals from its deletion report, so a Run
// after it is still delta-seeded.
func (s *System) Run() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	// One outer batch makes the exchange run and the ASR patches a
	// single storage epoch: a concurrent snapshot sees the pre-run
	// state or the fully propagated-and-indexed one, never an exchanged
	// instance whose ASR tables lag behind.
	db := s.ex.DB
	db.BeginBatch()
	report, err := s.ex.RunDelta()
	if err != nil {
		db.EndBatch()
		return err
	}
	asrErr := s.index.ApplyInsertions(report)
	db.EndBatch()
	// Patch the cached graph only after the batch published: the
	// engine compares its graph's epoch to the post-commit epoch to
	// decide between patching and skipping (a concurrent query may
	// have rebuilt the graph from the committed state already).
	if report.Full {
		s.engine.InvalidateGraph()
	} else {
		s.engine.MaintainGraphInsert(report)
	}
	if asrErr != nil {
		return asrErr
	}
	return s.maybeCheckpointLocked()
}

// DeleteLocal removes base tuples and incrementally propagates the
// deletions through the materialized views using their provenance
// (use case Q5); the cached provenance graph and the ASR backing
// tables are patched in place from the deletion report rather than
// rebuilt.
func (s *System) DeleteLocal(rel string, keys ...[]model.Datum) (*exchange.MaintenanceReport, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	// Same epoch discipline as Run: deletions and the ASR patches they
	// imply commit atomically; the graph patch follows the publish.
	db := s.ex.DB
	db.BeginBatch()
	report, err := s.ex.DeleteLocal(rel, keys...)
	if err != nil {
		db.EndBatch()
		return nil, err
	}
	asrErr := s.index.ApplyDeletions(report)
	db.EndBatch()
	s.engine.MaintainGraph(report)
	if asrErr != nil {
		return nil, asrErr
	}
	if err := s.maybeCheckpointLocked(); err != nil {
		return nil, err
	}
	return report, nil
}

// Query parses and executes a ProQL query.
func (s *System) Query(text string) (*proql.Result, error) {
	return s.engine.ExecString(text)
}

// QueryAsOf parses and executes a ProQL query against the retained
// state at epoch (time travel). It fails with
// relstore.ErrEpochOutOfRange when the epoch predates the retention
// horizon or exceeds the current Epoch(). Requires Options.RetainEpochs
// (epoch == Epoch() works regardless: the newest state is always
// retained).
func (s *System) QueryAsOf(text string, epoch uint64) (*proql.Result, error) {
	q, err := proql.Parse(text)
	if err != nil {
		return nil, err
	}
	return s.engine.Exec(context.Background(), q, proql.Options{AsOfEpoch: epoch})
}

// Diff evaluates a ProQL query at two retained epochs and reports the
// bindings and derivations that appeared or disappeared between them.
func (s *System) Diff(text string, from, to uint64) (*proql.DiffResult, error) {
	q, err := proql.Parse(text)
	if err != nil {
		return nil, err
	}
	return s.engine.Diff(context.Background(), q, from, to, proql.Options{})
}

// Epoch returns the newest committed storage epoch — the upper bound
// for QueryAsOf/Diff (and the epoch a live query observes).
func (s *System) Epoch() uint64 { return s.ex.DB.Epoch() }

// RetentionFloor returns the oldest epoch QueryAsOf can currently
// answer, or 0 when history retention is off.
func (s *System) RetentionFloor() uint64 { return s.ex.DB.RetentionFloor() }

// DefineASR registers an access support relation over a mapping chain
// (ordered from the derived end toward the sources) and materializes
// it. UseASRs must be enabled for queries to exploit it.
func (s *System) DefineASR(kind asr.Kind, chain ...string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := s.index.Define(kind, chain...); err != nil {
		return err
	}
	return s.index.Materialize()
}

// AdviseASRs runs the automated ASR selection (the paper's Section 8
// future work) for target-style queries anchored at a relation,
// materializes the suggested indexes, and enables rewriting.
func (s *System) AdviseASRs(anchorRel string, maxLen int) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := s.index.Advise(anchorRel, maxLen); err != nil {
		return err
	}
	if err := s.index.Materialize(); err != nil {
		return err
	}
	s.useASRsLocked(true)
	return nil
}

// UseASRs toggles ASR-based rewriting for subsequent queries. Like all
// mutations it is serialized with other writers, but it swaps a hook
// the query path reads without a latch: call it during setup, not
// while queries are in flight.
func (s *System) UseASRs(on bool) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.useASRsLocked(on)
}

func (s *System) useASRsLocked(on bool) {
	s.useASR = on
	if on {
		s.engine.RewriteRules = s.index.RewriteRules
	} else {
		s.engine.RewriteRules = nil
	}
}

// ASRIndex exposes the index for inspection.
func (s *System) ASRIndex() *asr.Index { return s.index }

// Graph returns the full materialized provenance graph.
func (s *System) Graph() (*provgraph.Graph, error) {
	return s.engine.Graph()
}

// WriteDOT renders the full provenance graph (or a query's projected
// subgraph, via res.Graph) in Graphviz format.
func (s *System) WriteDOT(w io.Writer, title string) error {
	g, err := s.Graph()
	if err != nil {
		return err
	}
	return provgraph.WriteDOT(w, g, title)
}

// Annotate evaluates a semiring over the full provenance graph with
// custom leaf values and mapping functions — the programmatic
// counterpart of EVALUATE ... ASSIGNING for applications that prefer
// Go callbacks over ProQL text.
func (s *System) Annotate(
	semiringName string,
	leaf func(ref model.TupleRef, row model.Tuple) semiring.Value,
	mapFunc func(mapping string) semiring.MappingFunc,
) (map[model.TupleRef]semiring.Value, error) {
	sr, err := semiring.Lookup(semiringName)
	if err != nil {
		return nil, err
	}
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	opts := provgraph.EvalOptions{MapFunc: mapFunc}
	if leaf != nil {
		opts.Leaf = func(tn *provgraph.TupleNode) semiring.Value {
			return leaf(tn.Ref, tn.Row)
		}
	}
	ann, err := provgraph.Eval(g, sr, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[model.TupleRef]semiring.Value, g.NumTuples())
	for _, tn := range g.Tuples() {
		if v, ok := ann.Annotation(tn); ok {
			out[tn.Ref] = v
		}
	}
	return out, nil
}

// FormatResult renders a query result compactly for CLIs and examples.
func FormatResult(res *proql.Result, variable string) string {
	g, err := res.Graph()
	if err != nil {
		return fmt.Sprintf("(error assembling result graph: %v)\n", err)
	}
	out := ""
	for _, ref := range res.SortedRefs(variable) {
		line := provgraph.FormatRef(g, ref)
		if res.Annotations != nil {
			if v, ok := res.Annotations[ref]; ok {
				line += " -> " + res.Semiring.Format(v)
			}
		}
		out += line + "\n"
	}
	out += fmt.Sprintf("(%d results; backend=%s rules=%d unfold=%v eval=%v)\n",
		len(res.SortedRefs(variable)), res.Stats.Backend, res.Stats.UnfoldedRules,
		res.Stats.UnfoldTime.Round(10_000), res.Stats.EvalTime.Round(10_000))
	return out
}
