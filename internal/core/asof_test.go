package core_test

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/relstore"
)

const asOfQuery = `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`

// renderFull renders a result deterministically: every sorted binding
// ref plus every projected derivation ID, sorted — the byte-identity
// the differential test compares under.
func renderFull(t *testing.T, res *proql.Result) string {
	t.Helper()
	var sb strings.Builder
	for _, ref := range res.SortedRefs("x") {
		sb.WriteString(ref.Rel + "(" + ref.Key + ")\n")
	}
	g, err := res.Graph()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(g.Derivations()))
	for _, dn := range g.Derivations() {
		ids = append(ids, dn.ID)
	}
	sort.Strings(ids)
	sb.WriteString("derivations: " + strings.Join(ids, ",") + "\n")
	return sb.String()
}

var asOfBackends = []string{"auto", "graph", "asr"}

// runAsOfCommits drives a system through k commit points, recording
// the epoch and the per-backend live rendering at each — the oracle
// the time-travel answers are compared against.
func runAsOfCommits(t *testing.T, sys *core.System) (epochs []uint64, oracle []map[string]string) {
	t.Helper()
	record := func() {
		epochs = append(epochs, sys.Epoch())
		views := map[string]string{}
		for _, b := range asOfBackends {
			q, err := proql.Parse(asOfQuery)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Engine().Exec(t.Context(), q, proql.Options{Backend: b})
			if err != nil {
				t.Fatalf("live %s: %v", b, err)
			}
			views[b] = renderFull(t, res)
		}
		oracle = append(oracle, views)
	}
	record() // the initial exchanged state
	mustRun := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustRun(sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(9)}))
	mustRun(sys.Run())
	record()
	mustRun(sys.InsertLocal("N", model.Tuple{int64(3), "cn3", false}))
	mustRun(sys.Run())
	record()
	_, err := sys.DeleteLocal("A", []model.Datum{int64(3)})
	mustRun(err)
	record()
	mustRun(sys.InsertLocal("A", model.Tuple{int64(4), "sn4", int64(2)}))
	mustRun(sys.Run())
	record()
	return epochs, oracle
}

// checkAsOf replays every recorded epoch on every backend and demands
// byte-identical output to the oracle recorded when that state was
// live.
func checkAsOf(t *testing.T, sys *core.System, epochs []uint64, oracle []map[string]string) {
	t.Helper()
	for i, e := range epochs {
		for _, b := range asOfBackends {
			q, err := proql.Parse(asOfQuery)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Engine().Exec(t.Context(), q, proql.Options{Backend: b, AsOfEpoch: e})
			if err != nil {
				t.Fatalf("as of %d on %s: %v", e, b, err)
			}
			if res.Stats.AsOf != e {
				t.Errorf("as of %d on %s: Stats.AsOf = %d", e, b, res.Stats.AsOf)
			}
			if got := renderFull(t, res); got != oracle[i][b] {
				t.Errorf("as of %d on %s diverged from live oracle\ngot:\n%s\nwant:\n%s", e, b, got, oracle[i][b])
			}
		}
	}
}

func TestQueryAsOfDifferential(t *testing.T) {
	schema, err := fixture.Schema(fixture.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Open(schema, core.Options{RetainEpochs: relstore.RetainAll})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A",
		model.Tuple{int64(1), "sn1", int64(7)},
		model.Tuple{int64(2), "sn2", int64(5)},
	); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("N", model.Tuple{int64(1), "cn1", false}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("C", model.Tuple{int64(2), "cn2"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	epochs, oracle := runAsOfCommits(t, sys)
	checkAsOf(t, sys, epochs, oracle)

	// The three backends agree with each other at every epoch, not
	// just each with its own history.
	for i := range epochs {
		auto := bindingLines(oracle[i]["auto"])
		for _, b := range []string{"graph", "asr"} {
			if got := bindingLines(oracle[i][b]); got != auto {
				t.Errorf("epoch %d: %s bindings %q != auto %q", epochs[i], b, got, auto)
			}
		}
	}

	// Epochs outside the window surface the typed error through the
	// query API.
	if _, err := sys.QueryAsOf(asOfQuery, sys.Epoch()+100); err == nil {
		t.Fatal("future epoch answered")
	} else {
		var oor *relstore.ErrEpochOutOfRange
		if !errors.As(err, &oor) {
			t.Fatalf("future epoch error = %v, want ErrEpochOutOfRange", err)
		}
	}

	// And the diff primitive reports the A(3) insert appearing between
	// the first two commit points.
	d, err := sys.Diff(asOfQuery, epochs[0], epochs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Appeared) != 1 || len(d.Disappeared) != 0 {
		t.Fatalf("diff(%d, %d): %d appeared, %d disappeared, want 1/0",
			epochs[0], epochs[1], len(d.Appeared), len(d.Disappeared))
	}
	if len(d.AppearedDerivations) == 0 {
		t.Error("diff lost the new derivations")
	}
	rev, err := sys.Diff(asOfQuery, epochs[1], epochs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Disappeared) != 1 || len(rev.Appeared) != 0 {
		t.Fatalf("reverse diff: %d appeared, %d disappeared, want 0/1", len(rev.Appeared), len(rev.Disappeared))
	}
}

// bindingLines strips the derivation line so cross-backend agreement
// is judged on bindings (derivation ID spelling is backend-internal).
func bindingLines(render string) string {
	lines := strings.Split(render, "\n")
	keep := lines[:0]
	for _, l := range lines {
		if !strings.HasPrefix(l, "derivations: ") {
			keep = append(keep, l)
		}
	}
	return strings.Join(keep, "\n")
}

func TestQueryAsOfSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	schema, err := fixture.Schema(fixture.Options{})
	if err != nil {
		t.Fatal(err)
	}
	open := func() *core.System {
		sys, err := core.OpenDurable(schema, dir, core.Options{RetainEpochs: relstore.RetainAll})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := open()
	if err := sys.InsertLocal("A",
		model.Tuple{int64(1), "sn1", int64(7)},
		model.Tuple{int64(2), "sn2", int64(5)},
	); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("N", model.Tuple{int64(1), "cn1", false}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("C", model.Tuple{int64(2), "cn2"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	epochs, oracle := runAsOfCommits(t, sys)
	// Checkpoint mid-history: the older epochs must travel inside the
	// checkpoint while the tail replays from the log.
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeleteLocal("A", []model.Datum{int64(4)}); err != nil {
		t.Fatal(err)
	}
	epochs = append(epochs, sys.Epoch())
	q, err := proql.Parse(asOfQuery)
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]string{}
	for _, b := range asOfBackends {
		res, err := sys.Engine().Exec(t.Context(), q, proql.Options{Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		views[b] = renderFull(t, res)
	}
	oracle = append(oracle, views)

	checkAsOf(t, sys, epochs, oracle)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	re := open()
	defer re.Close()
	checkAsOf(t, re, epochs, oracle)
}
