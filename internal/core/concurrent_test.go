package core_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/proql"
)

// fingerprint renders the committed public state of a system (or a
// snapshot view of one) deterministically: every public relation's
// sorted rows. Two equal fingerprints observed the same epoch.
func fingerprint(ex *exchange.System) string {
	var sb strings.Builder
	for _, r := range ex.Schema.PublicRelations() {
		t, ok := ex.DB.Table(r.Name)
		if !ok {
			continue
		}
		sb.WriteString(r.Name)
		sb.WriteByte(':')
		for _, row := range t.SortedRows() {
			sb.WriteString(model.EncodeDatums(row))
			sb.WriteByte(';')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// churnStep is one commit of the mixed workload: insert a fresh animal
// (and its non-canonical name) and run exchange, or delete it again.
func churnStep(t *testing.T, sys *core.System, id int64, insert bool) {
	t.Helper()
	if insert {
		if err := sys.InsertLocal("A", model.Tuple{id, fmt.Sprintf("sn%d", id), id}); err != nil {
			t.Error(err)
			return
		}
		if err := sys.InsertLocal("N", model.Tuple{id, fmt.Sprintf("cn%d", id), false}); err != nil {
			t.Error(err)
			return
		}
		if err := sys.Run(); err != nil {
			t.Error(err)
		}
		return
	}
	if _, err := sys.DeleteLocal("A", []model.Datum{id}); err != nil {
		t.Error(err)
		return
	}
	if _, err := sys.DeleteLocal("N", []model.Datum{id, fmt.Sprintf("cn%d", id), false}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentServeSmoke drives readers on all three ProQL backends
// (relational, graph, asr) against a RunDelta+DeleteLocal churn
// writer. Every query must observe a committed epoch: with the churn
// toggling one extra animal, the O relation holds either 4 or 6
// bindings — any other count is a torn read. Run under -race this is
// the whole-suite concurrent serve smoke.
func TestConcurrentServeSmoke(t *testing.T) {
	sys := openExample(t)
	eng := sys.Engine()
	q, err := proql.Parse(`FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	const itersPerReader = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(mode int) {
			defer wg.Done()
			for n := 0; n < itersPerReader; n++ {
				var res *proql.Result
				var err error
				switch mode % 3 {
				case 0:
					res, err = eng.Exec(context.Background(), q, proql.Options{})
				case 1:
					res, err = eng.Exec(context.Background(), q, proql.Options{Backend: "graph"})
				default:
					res, err = eng.Exec(context.Background(), q, proql.Options{Backend: "asr"})
				}
				if err != nil {
					t.Errorf("reader %d: %v", mode, err)
					return
				}
				if got := len(res.SortedRefs("x")); got != 4 && got != 6 {
					t.Errorf("reader %d (backend %d): O bindings = %d, want 4 or 6 (torn read)", mode, mode%3, got)
					return
				}
			}
		}(i)
	}
	// Churn writer: one goroutine (mutations serialize internally, but
	// the single-writer shape mirrors the paper's per-peer engine).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < 8; round++ {
			churnStep(t, sys, 3, true)
			churnStep(t, sys, 3, false)
		}
	}()
	wg.Wait()
	<-stop

	// The system must land in the base state and still answer queries.
	res, err := sys.Query(`FOR [O $x] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.SortedRefs("x")); got != 4 {
		t.Errorf("final O bindings = %d, want 4", got)
	}
}

// TestSnapshotReaderVsSerializedOracle is the differential test of the
// snapshot guarantee: a reader that pinned a snapshot before a
// RunDelta/DeleteLocal commit keeps observing exactly the pre-commit
// state, byte for byte, while the live system advances — and every
// state the live system publishes matches the one a serialized oracle
// (same commits, no concurrency) produces.
func TestSnapshotReaderVsSerializedOracle(t *testing.T) {
	live := openExample(t)
	oracle := openExample(t)

	type step struct {
		insert bool
		id     int64
	}
	script := []step{
		{insert: true, id: 3},
		{insert: true, id: 4},
		{insert: false, id: 3},
		{insert: false, id: 4},
	}

	// The oracle runs the script serially, recording the fingerprint
	// after every commit.
	want := []string{fingerprint(oracle.Exchange())}
	for _, st := range script {
		churnStep(t, oracle, st.id, st.insert)
		want = append(want, fingerprint(oracle.Exchange()))
	}

	// The live system runs the same script; before each commit a reader
	// pins a snapshot and verifies — after the commit published — that
	// it still reads the pre-commit state the oracle recorded.
	for i, st := range script {
		snap, release := live.Exchange().Snapshot()
		pre := fingerprint(snap)
		if pre != want[i] {
			t.Fatalf("step %d: pre-commit snapshot diverges from oracle state %d", i, i)
		}
		churnStep(t, live, st.id, st.insert)
		if got := fingerprint(snap); got != pre {
			t.Errorf("step %d: snapshot changed under the commit:\npre:  %q\npost: %q", i, pre, got)
		}
		release()
		if got := fingerprint(live.Exchange()); got != want[i+1] {
			t.Errorf("step %d: live state diverges from serialized oracle", i)
		}
	}
}
