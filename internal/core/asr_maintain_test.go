package core_test

import (
	"sort"
	"testing"

	"repro/internal/asr"
	"repro/internal/core"
	"repro/internal/model"
)

// facadeASRSnapshot renders the ASR backing tables of a facade system
// as one sorted comparable string.
func facadeASRSnapshot(t *testing.T, sys *core.System) string {
	t.Helper()
	var lines []string
	for _, d := range sys.ASRIndex().Defs() {
		tbl, ok := sys.Exchange().DB.Table(d.Name)
		if !ok {
			t.Fatalf("ASR table %s missing", d.Name)
		}
		for _, row := range tbl.Rows() {
			lines = append(lines, d.Name+"|"+model.EncodeDatums(row))
		}
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestFacadeSteadyStateNeverMaterializes is the acceptance check for
// incremental ASR maintenance: after an ASR is defined, the
// steady-state update path (InsertLocal+Run, DeleteLocal) must patch
// the backing tables from the insertion/deletion reports and never
// invoke Materialize again — while leaving the tables row-identical to
// a full re-materialization.
func TestFacadeSteadyStateNeverMaterializes(t *testing.T) {
	sys := openExample(t)
	if err := sys.DefineASR(asr.Subpath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	baseline := sys.ASRIndex().Materializations()

	// Steady-state churn: insert + run, delete, insert + run.
	if err := sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(4)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeleteLocal("A", []model.Datum{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(1), "sn1", int64(7)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sys.ASRIndex().Materializations(); got != baseline {
		t.Fatalf("steady-state path re-materialized ASRs %d time(s); want patches only", got-baseline)
	}

	// The patched tables must equal ground truth.
	patched := facadeASRSnapshot(t, sys)
	if err := sys.ASRIndex().Materialize(); err != nil {
		t.Fatal(err)
	}
	rebuilt := facadeASRSnapshot(t, sys)
	if patched != rebuilt {
		t.Fatalf("patched ASR tables differ from re-materialization\npatched:\n%s\nrebuilt:\n%s", patched, rebuilt)
	}
}
