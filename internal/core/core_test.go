package core_test

import (
	"strings"
	"testing"

	"repro/internal/asr"
	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/semiring"
)

func openExample(t *testing.T) *core.System {
	t.Helper()
	schema, err := fixture.Schema(fixture.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Open(schema, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A",
		model.Tuple{int64(1), "sn1", int64(7)},
		model.Tuple{int64(2), "sn2", int64(5)},
	); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("N", model.Tuple{int64(1), "cn1", false}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("C", model.Tuple{int64(2), "cn2"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := openExample(t)
	res, err := sys.Query(`EVALUATE DERIVABILITY OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Annotations) != 4 {
		t.Errorf("annotations = %d", len(res.Annotations))
	}
	out := core.FormatResult(res, "x")
	if !strings.Contains(out, "-> true") || !strings.Contains(out, "4 results") {
		t.Errorf("FormatResult output:\n%s", out)
	}
}

func TestFacadeASRLifecycle(t *testing.T) {
	sys := openExample(t)
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	base, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineASR(asr.Subpath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	sys.UseASRs(true)
	opt, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.SortedRefs("x")) != len(base.SortedRefs("x")) {
		t.Error("ASR-rewritten query changed the result")
	}
	sys.UseASRs(false)
	if sys.ASRIndex().TotalRows() == 0 {
		t.Error("ASR table should be materialized")
	}
}

func TestFacadeAnnotateCallback(t *testing.T) {
	sys := openExample(t)
	ann, err := sys.Annotate("WEIGHT",
		func(ref model.TupleRef, row model.Tuple) semiring.Value { return 2.0 },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := model.RefFromKey("O", []model.Datum{"sn1", int64(7)})
	if ann[ref] != 2.0 {
		t.Errorf("weight = %v, want 2", ann[ref])
	}
	if _, err := sys.Annotate("BOGUS", nil, nil); err == nil {
		t.Error("unknown semiring should error")
	}
}

func TestFacadeWriteDOT(t *testing.T) {
	sys := openExample(t)
	var sb strings.Builder
	if err := sys.WriteDOT(&sb, "example"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph provenance") {
		t.Error("DOT output malformed")
	}
}

func TestFacadeIncrementalRun(t *testing.T) {
	sys := openExample(t)
	if err := sys.DefineASR(asr.CompletePath, "m5", "m1"); err != nil {
		t.Fatal(err)
	}
	before := sys.ASRIndex().TotalRows()
	// New upstream data: A(3) joins nothing new for m5∘m1... add a C
	// partner so the complete path grows.
	if err := sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(9)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("N", model.Tuple{int64(3), "cn3", false}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	after := sys.ASRIndex().TotalRows()
	if after <= before {
		t.Errorf("ASR not refreshed on Run: %d -> %d", before, after)
	}
	res, err := sys.Query(`FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}
	// New derivations: m2/m4 for A(3), m1 for C(3,cn3), m5 for O(cn3,9).
	if got := len(res.SortedRefs("x")); got != 6 {
		t.Errorf("O bindings after incremental run = %d, want 6", got)
	}
}

func TestAdviseASRs(t *testing.T) {
	sys := openExample(t)
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	base, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdviseASRs("O", 4); err != nil {
		t.Fatal(err)
	}
	if len(sys.ASRIndex().Defs()) == 0 {
		t.Fatal("advisor registered no definitions")
	}
	opt, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.SortedRefs("x")) != len(base.SortedRefs("x")) {
		t.Error("advised ASRs changed query results")
	}
}

func TestWrapMatchesOpen(t *testing.T) {
	ex := fixture.MustSystem(fixture.Options{})
	wrapped := core.Wrap(ex)
	res, err := wrapped.Query(`FOR [O $x] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SortedRefs("x")) != 4 {
		t.Errorf("wrapped query bindings = %d", len(res.SortedRefs("x")))
	}
}
