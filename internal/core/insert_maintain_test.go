package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// TestFacadeRunPatchesGraphOnInsert: after the first full run, the
// facade's Run propagates new local rows with the Δ-seeded RunDelta
// and patches the cached provenance graph in place; graph-backend
// queries afterwards must see exactly what a fresh engine over the
// same storage sees.
func TestFacadeRunPatchesGraphOnInsert(t *testing.T) {
	sys := openExample(t)
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	if _, err := sys.Query(q); err != nil { // warm the graph cache
		t.Fatal(err)
	}
	gBefore, err := sys.Engine().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(4)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	gAfter, err := sys.Engine().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gAfter != gBefore {
		t.Fatal("incremental insertion rebuilt the cached graph instead of patching it")
	}
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SortedRefs("x")

	fresh := core.Wrap(sys.Exchange())
	wantRes, err := fresh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.SortedRefs("x")
	if len(got) != len(want) {
		t.Fatalf("patched engine returned %d refs, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ref %d: patched %v, fresh %v", i, got[i], want[i])
		}
	}
	// The new A(3) row derives O(sn3,4) via m4.
	found := false
	for _, ref := range got {
		if ref == model.RefFromKey("O", []model.Datum{"sn3", int64(4)}) {
			found = true
		}
	}
	if !found {
		t.Errorf("newly derived O tuple missing from patched query results: %v", got)
	}
}

// TestFacadeRunAfterDeleteFallsBackToFullRun: a deletion invalidates
// the persistent engine state, so the next Run is a full re-exchange
// and the graph cache is dropped (not patched) — and results still
// match a fresh engine.
func TestFacadeRunAfterDeleteFallsBackToFullRun(t *testing.T) {
	sys := openExample(t)
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	if _, err := sys.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeleteLocal("A", []model.Datum{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(1), "sn1", int64(7)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SortedRefs("x")
	fresh := core.Wrap(sys.Exchange())
	wantRes, err := fresh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.SortedRefs("x")
	if len(got) != len(want) {
		t.Fatalf("got %d refs, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ref %d: got %v, fresh %v", i, got[i], want[i])
		}
	}
}
