package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// TestFacadeRunPatchesGraphOnInsert: after the first full run, the
// facade's Run propagates new local rows with the Δ-seeded RunDelta
// and patches the cached provenance graph in place; graph-backend
// queries afterwards must see exactly what a fresh engine over the
// same storage sees.
func TestFacadeRunPatchesGraphOnInsert(t *testing.T) {
	sys := openExample(t)
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	if _, err := sys.Query(q); err != nil { // warm the graph cache
		t.Fatal(err)
	}
	gBefore, err := sys.Engine().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(4)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	gAfter, err := sys.Engine().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gAfter != gBefore {
		t.Fatal("incremental insertion rebuilt the cached graph instead of patching it")
	}
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SortedRefs("x")

	fresh := core.Wrap(sys.Exchange())
	wantRes, err := fresh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.SortedRefs("x")
	if len(got) != len(want) {
		t.Fatalf("patched engine returned %d refs, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ref %d: patched %v, fresh %v", i, got[i], want[i])
		}
	}
	// The new A(3) row derives O(sn3,4) via m4.
	found := false
	for _, ref := range got {
		if ref == model.RefFromKey("O", []model.Datum{"sn3", int64(4)}) {
			found = true
		}
	}
	if !found {
		t.Errorf("newly derived O tuple missing from patched query results: %v", got)
	}
}

// TestFacadeRunAfterDeleteStaysDelta: a deletion feeds its report
// back into the persistent engine journals (datalog journal repair),
// so the Run after a DeleteLocal is STILL delta-seeded — the cached
// graph is patched, not rebuilt, the run enumerates only the affected
// derivations, and results still match a fresh engine.
func TestFacadeRunAfterDeleteStaysDelta(t *testing.T) {
	sys := openExample(t)
	fullDerivations := sys.Exchange().LastDerivations
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	if _, err := sys.Query(q); err != nil {
		t.Fatal(err)
	}
	gBefore, err := sys.Engine().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeleteLocal("A", []model.Datum{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if !sys.Exchange().DeltaReady() {
		t.Fatal("deletion broke the delta chain (journal repair failed)")
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(1), "sn1", int64(7)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// The post-deletion run was delta-seeded: it enumerated only the
	// derivations of the re-inserted row, not the whole fixpoint.
	if got := sys.Exchange().LastDerivations; got >= fullDerivations {
		t.Fatalf("run after deletion enumerated %d derivations (full fixpoint is %d) — not delta-seeded",
			got, fullDerivations)
	}
	gAfter, err := sys.Engine().Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gAfter != gBefore {
		t.Fatal("run after deletion rebuilt the cached graph instead of patching it")
	}
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SortedRefs("x")
	fresh := core.Wrap(sys.Exchange())
	wantRes, err := fresh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.SortedRefs("x")
	if len(got) != len(want) {
		t.Fatalf("got %d refs, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ref %d: got %v, fresh %v", i, got[i], want[i])
		}
	}
}
