package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/model"
)

// TestFacadeDeleteLocalPatchesGraph: the facade's DeleteLocal patches
// the engine's cached provenance graph in place; graph-backend queries
// afterwards must see exactly what a fresh engine over the same
// storage sees.
func TestFacadeDeleteLocalPatchesGraph(t *testing.T) {
	sys := openExample(t)
	q := `FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x`
	if _, err := sys.Query(q); err != nil { // warm the graph cache
		t.Fatal(err)
	}
	if _, err := sys.Engine().Graph(); err != nil {
		t.Fatal(err)
	}
	report, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if report.TuplesDeleted == 0 {
		t.Fatalf("deletion should have propagated, report=%+v", report)
	}
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.SortedRefs("x")

	fresh := core.Wrap(sys.Exchange())
	wantRes, err := fresh.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.SortedRefs("x")
	if len(got) != len(want) {
		t.Fatalf("patched engine returned %d refs, fresh engine %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ref %d: patched %v, fresh %v", i, got[i], want[i])
		}
	}
	// The surviving O tuples rest on A(2) only.
	for _, ref := range got {
		if ref.Rel != "O" {
			t.Errorf("unexpected relation in result: %v", ref)
		}
	}
	if len(got) != 2 {
		t.Errorf("want 2 surviving O tuples, got %d", len(got))
	}
}

// TestFacadeDeleteThenRerun: deletions followed by new inserts and a
// re-Run must keep storage, support index, and query results coherent.
func TestFacadeDeleteThenRerun(t *testing.T) {
	sys := openExample(t)
	if _, err := sys.DeleteLocal("A", []model.Datum{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(1), "sn1", int64(7)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Everything that rested on A(1) is re-derived.
	sysFresh := fixture.MustSystem(fixture.Options{})
	for _, rel := range []string{"A", "C", "N", "O"} {
		got := sys.Exchange().DB.MustTable(rel).SortedRows()
		want := sysFresh.DB.MustTable(rel).SortedRows()
		if len(got) != len(want) {
			t.Errorf("%s: %d rows after delete+rerun, want %d", rel, len(got), len(want))
			continue
		}
		for i := range got {
			if model.EncodeDatums(got[i]) != model.EncodeDatums(want[i]) {
				t.Errorf("%s row %d: %v vs %v", rel, i, got[i], want[i])
			}
		}
	}
	// And a second deletion still propagates correctly off the
	// hook-maintained index.
	report, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if report.TuplesDeleted != 5 {
		t.Errorf("TuplesDeleted = %d, want 5", report.TuplesDeleted)
	}
}
