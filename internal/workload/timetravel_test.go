package workload

import (
	"testing"

	"repro/internal/relstore"
)

// TestRunTimeTravelSmall exercises the E17 harness end to end at a
// tiny scale: a finite horizon plus RetainAll, real
// insert-propagate-delete churn. The harness itself verifies the
// AS OF arm against the live arm off the clock, so a pass here also
// checks the time-travel path on the workload's target query.
func TestRunTimeTravelSmall(t *testing.T) {
	rows, err := RunTimeTravel([]uint64{6, relstore.RetainAll}, 4, 1, 20, 3, 3, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.LiveTime <= 0 || r.AsOfTime <= 0 {
			t.Errorf("depth %s: implausible latencies %+v", DepthLabel(r.Depth), r)
		}
		if r.FloorEpoch == 0 || r.WindowEpochs == 0 {
			t.Errorf("depth %s: empty answerable window %+v", DepthLabel(r.Depth), r)
		}
		if r.RetainedVersions <= 0 {
			t.Errorf("depth %s: churn retained no versions", DepthLabel(r.Depth))
		}
		if r.Depth != relstore.RetainAll && r.WindowEpochs > r.Depth {
			t.Errorf("depth %d: window %d epochs exceeds the horizon", r.Depth, r.WindowEpochs)
		}
	}
	// The finite horizon must retain no more history than RetainAll on
	// the identical churn.
	if rows[0].RetainedVersions > rows[1].RetainedVersions {
		t.Errorf("finite horizon retained %d versions, RetainAll %d",
			rows[0].RetainedVersions, rows[1].RetainedVersions)
	}
	// Depth 0 is a configuration error, not a silent no-op arm.
	if _, err := RunTimeTravel([]uint64{0}, 4, 1, 20, 3, 3, 3, 42); err == nil {
		t.Error("depth 0 accepted")
	}
}
