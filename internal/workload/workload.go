// Package workload generates the synthetic CDSS settings of Section
// 6.1: peer schemas derived from partitioning a SWISS-PROT-style
// 25-attribute universal relation into two relations with a shared
// key, inter-related by join mappings along chain (Figure 5) and
// branched (Figure 6) topologies, with large strings replaced by
// integer hashes (as the paper did).
//
// Two mapping profiles are provided, each matching the phenomenon its
// figures measure:
//
//   - ProfileLinear (Figures 9–13): each hop joins the propagated
//     partition A with the peer's local reference partition B. Unfolded
//     rule counts grow linearly with peers-with-data, so very long
//     chains (20–80 peers) with large base sizes are feasible; this is
//     the profile whose long provenance-relation join paths the ASR
//     experiments accelerate.
//   - ProfileFan (Figures 7–8): each hop joins two *propagated*
//     partitions (A with X), so the unfolding must consider all
//     combinations for each side of the join and the number of
//     unfolded rules grows exponentially with the number of peers
//     supplying local data — the paper's stress test.
//
// All generation is deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/wal"
)

// Profile selects the mapping structure.
type Profile int

// Profiles.
const (
	ProfileLinear Profile = iota
	ProfileFan
)

func (p Profile) String() string {
	if p == ProfileFan {
		return "fan"
	}
	return "linear"
}

// Topology selects the mapping graph shape.
type Topology int

// Topologies (Figures 5 and 6).
const (
	Chain Topology = iota
	Branched
)

func (t Topology) String() string {
	if t == Branched {
		return "branched"
	}
	return "chain"
}

// Config describes one synthetic setting.
type Config struct {
	Topology Topology
	Profile  Profile
	// NumPeers is the total number of peers; peer 0 is the target the
	// mappings propagate data toward.
	NumPeers int
	// DataPeers lists the peers with local contributions. For the
	// linear profile the paper places them at the authoritative
	// upstream end; for the fan profile the cascade is anchored at the
	// target. Helpers UpstreamDataPeers and DownstreamDataPeers build
	// the two placements.
	DataPeers []int
	// BaseSize is the number of locally inserted A-partition tuples
	// per data peer (the paper's "base size").
	BaseSize int
	// Categories is the cardinality of the reference partition B at
	// every peer (the A⋈B join fans out 1:1 through it).
	Categories int
	// Seed drives all random generation.
	Seed int64
	// LegacyEngine runs update exchange on the interpreting Datalog
	// engine instead of the compiled one (engine-comparison sweeps).
	LegacyEngine bool
	// Parallelism is the compiled engine's worker count (0/1 serial).
	// It sets how many goroutines evaluate a round — how much hardware
	// the engine may use — and is independent of Shards, which sets how
	// the fact space is partitioned.
	Parallelism int
	// Shards partitions the fact space into this many hash shards, each
	// with its own journal, indexes, and arena (0/1 = unsharded serial
	// engine). Shards fixes the data layout and the deterministic merge
	// order; Parallelism fixes the worker count that evaluates the
	// shards. S shards saturate at Parallelism = S workers.
	Shards int
	// NoSupportIndex disables hook-maintenance of the deletion-support
	// index during exchange (index-overhead ablations).
	NoSupportIndex bool
}

// DefaultLegacyEngine, DefaultParallelism, and DefaultShards are
// process-wide engine defaults applied to Configs that leave the
// corresponding fields zero; proqlbench's -engine, -par, and -shards
// flags reach every sweep through them.
var (
	DefaultLegacyEngine bool
	DefaultParallelism  int
	DefaultShards       int
)

// Defaults fills zero fields.
func (c *Config) defaults() {
	if c.NumPeers <= 0 {
		c.NumPeers = 2
	}
	if c.BaseSize <= 0 {
		c.BaseSize = 100
	}
	if c.Categories <= 0 {
		c.Categories = 16
	}
	if !c.LegacyEngine {
		c.LegacyEngine = DefaultLegacyEngine
	}
	if c.Parallelism == 0 {
		c.Parallelism = DefaultParallelism
	}
	if c.Shards == 0 {
		c.Shards = DefaultShards
	}
}

// UpstreamDataPeers places d data peers at the far (source) end of an
// n-peer topology — the paper's authoritative-sources placement.
func UpstreamDataPeers(n, d int) []int {
	var out []int
	for p := n - 1; p >= 0 && len(out) < d; p-- {
		out = append(out, p)
	}
	return out
}

// DownstreamDataPeers places d data peers nearest the target.
func DownstreamDataPeers(n, d int) []int {
	var out []int
	for p := 0; p < n && len(out) < d; p++ {
		out = append(out, p)
	}
	return out
}

// AllDataPeers marks every peer as contributing (Figure 7's stress
// test).
func AllDataPeers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Relation name helpers.
func ARel(p int) string { return fmt.Sprintf("A%d", p) }

// BRel names peer p's reference partition.
func BRel(p int) string { return fmt.Sprintf("B%d", p) }

// XRel names peer p's second propagated partition (fan profile).
func XRel(p int) string { return fmt.Sprintf("X%d", p) }

// AMapping names the mapping propagating A from peer src to its
// parent.
func AMapping(src int) string { return fmt.Sprintf("mA%d", src) }

// XMapping names the mapping propagating X from peer src to its
// parent (fan profile).
func XMapping(src int) string { return fmt.Sprintf("mX%d", src) }

// Setting is a generated CDSS instance.
type Setting struct {
	Config Config
	Schema *model.Schema
	Sys    *exchange.System
	// Edges lists the (child → parent) topology edges.
	Edges [][2]int
}

// BranchCount is the number of long branches in the branched topology
// (Figure 6 of the paper shows a tree with a few branch points and
// long linear runs, so query-time growth stays roughly linear in the
// number of peers — the Figure 10 claim).
const BranchCount = 4

// parentOf computes the topology parent of peer p (p > 0): the
// previous peer on the same branch, or the target for the first peer
// of each branch.
func parentOf(topo Topology, p int) int {
	if topo == Branched {
		if p-BranchCount >= 1 {
			return p - BranchCount
		}
		return 0
	}
	return p - 1
}

// Build generates the schema, creates the system, inserts seeded local
// data, and runs update exchange.
func Build(cfg Config) (*Setting, error) {
	set, err := BuildSchema(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := exchange.NewSystem(set.Schema, set.exchangeOptions())
	if err != nil {
		return nil, err
	}
	set.Sys = sys
	if err := set.Seed(); err != nil {
		return nil, err
	}
	return set, nil
}

// OpenDurable is Build over persistent storage: the setting's system
// is opened from dir through the write-ahead-log store. A fresh
// directory is seeded and exchanged exactly as Build does; an existing
// one recovers its instance from the newest checkpoint plus the log
// suffix and re-attaches the engine warm — the deterministic seed is
// NOT re-inserted, so mutations applied in earlier processes survive.
func OpenDurable(cfg Config, dir string, wopts wal.Options) (*Setting, *wal.Store, error) {
	set, err := BuildSchema(cfg)
	if err != nil {
		return nil, nil, err
	}
	sys, st, err := exchange.OpenDurable(set.Schema, dir, wopts, set.exchangeOptions())
	if err != nil {
		return nil, nil, err
	}
	set.Sys = sys
	if sys.DB.TotalRows() == 0 {
		if err := set.Seed(); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	return set, st, nil
}

// exchangeOptions maps the workload knobs onto exchange options.
func (set *Setting) exchangeOptions() exchange.Options {
	return exchange.Options{
		UseLegacyEngine: set.Config.LegacyEngine,
		Parallelism:     set.Config.Parallelism,
		Shards:          set.Config.Shards,
		NoSupportIndex:  set.Config.NoSupportIndex,
	}
}

// Seed inserts the deterministic local data and runs the initial
// update exchange — the data half of Build, separated so durable
// settings can skip it when recovering an existing instance.
func (set *Setting) Seed() error {
	if err := set.insertData(); err != nil {
		return err
	}
	return set.Sys.Run()
}

// BuildSchema generates the schema and topology of a setting without
// creating a system — the schema half of Build, shared by the durable
// open path (which must declare the schema before recovery).
func BuildSchema(cfg Config) (*Setting, error) {
	cfg.defaults()
	schema := model.NewSchema()
	set := &Setting{Config: cfg, Schema: schema}

	// The universal relation's 25 attributes split into the A
	// partition (key, category, 10 payload hashes) and the B partition
	// (category, 12 payload hashes); the fan profile adds the X
	// partition (key, category, 10 payload hashes) standing in for a
	// second propagated projection of the universal relation.
	aCols := []model.Column{{Name: "k", Type: model.TypeInt}, {Name: "c", Type: model.TypeInt}}
	for i := 1; i <= 10; i++ {
		aCols = append(aCols, model.Column{Name: fmt.Sprintf("a%d", i), Type: model.TypeInt})
	}
	bCols := []model.Column{{Name: "c", Type: model.TypeInt}}
	for i := 1; i <= 12; i++ {
		bCols = append(bCols, model.Column{Name: fmt.Sprintf("b%d", i), Type: model.TypeInt})
	}
	xCols := []model.Column{{Name: "k", Type: model.TypeInt}, {Name: "c", Type: model.TypeInt}}
	for i := 1; i <= 10; i++ {
		xCols = append(xCols, model.Column{Name: fmt.Sprintf("x%d", i), Type: model.TypeInt})
	}

	for p := 0; p < cfg.NumPeers; p++ {
		if err := schema.AddRelation(model.MustRelation(ARel(p), aCols, "k")); err != nil {
			return nil, err
		}
		if err := schema.AddRelation(model.MustRelation(BRel(p), bCols, "c")); err != nil {
			return nil, err
		}
		if cfg.Profile == ProfileFan {
			if err := schema.AddRelation(model.MustRelation(XRel(p), xCols, "k")); err != nil {
				return nil, err
			}
		}
	}

	v := model.V
	aVars := func() []model.Term {
		out := []model.Term{v("k"), v("c")}
		for i := 1; i <= 10; i++ {
			out = append(out, v(fmt.Sprintf("a%d", i)))
		}
		return out
	}
	bVars := func() []model.Term {
		out := []model.Term{v("c")}
		for i := 1; i <= 12; i++ {
			out = append(out, v(fmt.Sprintf("b%d", i)))
		}
		return out
	}
	xVars := func() []model.Term {
		out := []model.Term{v("k"), v("c")}
		for i := 1; i <= 10; i++ {
			out = append(out, v(fmt.Sprintf("x%d", i)))
		}
		return out
	}

	for p := 1; p < cfg.NumPeers; p++ {
		parent := parentOf(cfg.Topology, p)
		set.Edges = append(set.Edges, [2]int{p, parent})
		switch cfg.Profile {
		case ProfileLinear:
			// A_parent(k,c,ā) :- A_p(k,c,ā), B_p(c,b̄)
			m := model.NewMapping(AMapping(p),
				model.Atom{Rel: ARel(parent), Args: aVars()},
				model.Atom{Rel: ARel(p), Args: aVars()},
				model.Atom{Rel: BRel(p), Args: bVars()},
			)
			if err := schema.AddMapping(m); err != nil {
				return nil, err
			}
		case ProfileFan:
			// A_parent :- A_p ⋈ X_p  (two propagated partitions)
			mA := model.NewMapping(AMapping(p),
				model.Atom{Rel: ARel(parent), Args: aVars()},
				model.Atom{Rel: ARel(p), Args: aVars()},
				model.Atom{Rel: XRel(p), Args: xVars()},
			)
			if err := schema.AddMapping(mA); err != nil {
				return nil, err
			}
			// X_parent :- X_p ⋈ B_p
			mX := model.NewMapping(XMapping(p),
				model.Atom{Rel: XRel(parent), Args: xVars()},
				model.Atom{Rel: XRel(p), Args: xVars()},
				model.Atom{Rel: BRel(p), Args: bVars()},
			)
			if err := schema.AddMapping(mX); err != nil {
				return nil, err
			}
		}
	}

	return set, nil
}

// insertData populates the reference partition B at every peer and the
// propagated partitions at the data peers, sampling attribute hashes
// from the seeded generator (the paper replaced SWISS-PROT CLOBs with
// integer hashes the same way).
func (set *Setting) insertData() error {
	cfg := set.Config
	rng := rand.New(rand.NewSource(cfg.Seed))
	for p := 0; p < cfg.NumPeers; p++ {
		rows := make([]model.Tuple, 0, cfg.Categories)
		for c := 0; c < cfg.Categories; c++ {
			row := model.Tuple{int64(c)}
			for i := 0; i < 12; i++ {
				row = append(row, int64(rng.Uint32()))
			}
			rows = append(rows, row)
		}
		if err := set.Sys.InsertLocal(BRel(p), rows...); err != nil {
			return err
		}
	}
	for _, p := range cfg.DataPeers {
		if p < 0 || p >= cfg.NumPeers {
			return fmt.Errorf("workload: data peer %d out of range", p)
		}
		aRows := make([]model.Tuple, 0, cfg.BaseSize)
		xRows := make([]model.Tuple, 0, cfg.BaseSize)
		for i := 0; i < cfg.BaseSize; i++ {
			k := int64(p)*10_000_000 + int64(i)
			c := int64(i % cfg.Categories)
			aRow := model.Tuple{k, c}
			for j := 0; j < 10; j++ {
				aRow = append(aRow, int64(rng.Uint32()))
			}
			aRows = append(aRows, aRow)
			if cfg.Profile == ProfileFan {
				xRow := model.Tuple{k, c}
				for j := 0; j < 10; j++ {
					xRow = append(xRow, int64(rng.Uint32()))
				}
				xRows = append(xRows, xRow)
			}
		}
		if err := set.Sys.InsertLocal(ARel(p), aRows...); err != nil {
			return err
		}
		if cfg.Profile == ProfileFan {
			if err := set.Sys.InsertLocal(XRel(p), xRows...); err != nil {
				return err
			}
		}
	}
	return nil
}

// TargetQuery is the experiment query of Section 6.1.2, anchored at
// the target peer's propagated relation:
//
//	FOR [A0 $x] INCLUDE PATH [$x] <-+ [] RETURN $x
func (set *Setting) TargetQuery() string {
	return fmt.Sprintf("FOR [%s $x] INCLUDE PATH [$x] <-+ [] RETURN $x", ARel(0))
}

// TargetAnnotationQuery is the target query wrapped in a TRUST
// evaluation (Section 6.1.2 notes annotation computation adds little
// over graph projection).
func (set *Setting) TargetAnnotationQuery() string {
	return fmt.Sprintf(`EVALUATE TRUST OF { %s } ASSIGNING EACH leaf_node $y { DEFAULT : SET true }`,
		set.TargetQuery())
}

// InstanceSize is the Figures 9–10 metric: total tuples across all
// relations and provenance tables.
func (set *Setting) InstanceSize() int {
	return set.Sys.DB.TotalRows()
}

// AChains returns edge-disjoint downward chains of A-propagation
// mappings covering the whole topology, ordered derived-end first —
// the paths the ASR experiments index. For the chain topology there is
// a single chain; for the branched topology the tree is decomposed
// into disjoint paths (first child continues the current path, other
// children start new ones), since the paper restricts ASR definitions
// to non-overlapping paths.
func (set *Setting) AChains() [][]string {
	children := make(map[int][]int)
	for _, e := range set.Edges {
		children[e[1]] = append(children[e[1]], e[0])
	}
	var chains [][]string
	var walk func(peer int, acc []string)
	walk = func(peer int, acc []string) {
		kids := children[peer]
		if len(kids) == 0 {
			if len(acc) > 0 {
				chains = append(chains, acc)
			}
			return
		}
		for i, kid := range kids {
			if i == 0 {
				walk(kid, append(acc, AMapping(kid)))
			} else {
				walk(kid, []string{AMapping(kid)})
			}
		}
	}
	walk(0, nil)
	return chains
}

// SplitChain cuts a mapping chain into consecutive segments of at most
// maxLen, the way Section 6.4 "splits the chain into paths up to this
// length".
func SplitChain(chain []string, maxLen int) [][]string {
	if maxLen <= 0 {
		maxLen = 1
	}
	var out [][]string
	for i := 0; i < len(chain); i += maxLen {
		j := i + maxLen
		if j > len(chain) {
			j = len(chain)
		}
		out = append(out, chain[i:j])
	}
	return out
}
