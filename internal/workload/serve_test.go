package workload

import "testing"

// TestRunServeSmall exercises the E15 harness end to end at a tiny
// scale: all three backends, two reader counts, real churn. Under
// -race this doubles as a concurrency check on the whole serving
// stack (facade writer lock, snapshot reads, graph latch, ASR
// adapter refcounting).
func TestRunServeSmall(t *testing.T) {
	rows, err := RunServe([]int{1, 2}, 4, 1, 20, 4, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (2 reader counts x 3 backends)", len(rows))
	}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Errorf("%s/%d readers: %d read errors, want 0", r.Backend, r.Readers, r.Errors)
		}
		if r.Queries != r.Readers*5 {
			t.Errorf("%s/%d readers: %d queries, want %d", r.Backend, r.Readers, r.Queries, r.Readers*5)
		}
		if r.P50 <= 0 || r.P99 < r.P50 || r.Max < r.P99 || r.SoloP50 <= 0 {
			t.Errorf("%s/%d readers: implausible latencies %+v", r.Backend, r.Readers, r)
		}
	}
}
