package workload

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
)

// RecoveryRow is one point of the durable-restart experiment (E16):
// the same exchanged instance brought back either by reopening its
// data directory (load the newest checkpoint, replay the write-ahead
// log's suffix, re-attach the engine warm) or by a cold full exchange
// from the base data — the restart a non-durable system pays.
type RecoveryRow struct {
	Peers int
	// RecoverTime is checkpoint load + WAL-suffix replay + warm engine
	// attach: O(rows) to reload plus O(changed rows since the
	// checkpoint) to replay, no rule ever fired.
	RecoverTime time.Duration
	// ColdTime is the full re-exchange: rebuild the setting, re-insert
	// the base data, and run the complete fixpoint from scratch.
	ColdTime time.Duration
	// ReplayBatches is the number of committed batches the recovery
	// replayed from the log suffix (the churn after the checkpoint).
	ReplayBatches int
	InstanceSize  int
}

// RunRecovery measures restart time at Fig.-10-style scales: each
// setting is seeded durably, checkpointed, churned with churnOps
// insert-and-propagate operations (so the log holds a realistic
// suffix of changed rows), then reopened repeatedly with the recovery
// path timed against a cold full exchange of the same setting. The
// recovered instance must carry every committed row, including the
// post-checkpoint churn the cold arm cannot restore at all.
// applyChurn runs churnOps insert-and-propagate operations of batch
// rows each at the last peer (the same key scheme as RunInsertion),
// each followed by a delta exchange.
func applyChurn(set *Setting, n, baseSize, batch, churnOps, categories int) error {
	src := n - 1
	var next int64
	for op := 0; op < churnOps; op++ {
		rows := make([]model.Tuple, batch)
		for j := range rows {
			k := int64(src)*10_000_000 + int64(baseSize) + next
			next++
			r := model.Tuple{k, k % int64(categories)}
			for a := 0; a < 10; a++ {
				r = append(r, k+int64(a))
			}
			rows[j] = r
		}
		if err := set.Sys.InsertLocal(ARel(src), rows...); err != nil {
			return err
		}
		if rep, err := set.Sys.RunDelta(); err != nil {
			return err
		} else if rep.Full {
			return fmt.Errorf("workload: recovery churn fell back to a full run")
		}
	}
	return nil
}

func RunRecovery(peerCounts []int, dataPeers, baseSize, batch, churnOps, runs int, seed int64) ([]RecoveryRow, error) {
	var out []RecoveryRow
	for _, n := range peerCounts {
		cfg := Config{
			Topology:   Chain,
			Profile:    ProfileFan,
			NumPeers:   n,
			DataPeers:  UpstreamDataPeers(n, dataPeers),
			BaseSize:   baseSize,
			Categories: 16,
			Seed:       seed,
		}
		row := RecoveryRow{Peers: n}

		dir, err := os.MkdirTemp("", "proql-recover-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		set, st, err := OpenDurable(cfg, dir, wal.Options{SyncEvery: 1})
		if err != nil {
			return nil, err
		}
		// Checkpoint after the seed exchange: recovery loads the
		// exchanged instance in O(rows) and replays only the churn.
		if err := st.Checkpoint(); err != nil {
			return nil, err
		}
		if err := applyChurn(set, n, baseSize, batch, churnOps, cfg.Categories); err != nil {
			return nil, err
		}
		row.InstanceSize = set.InstanceSize()
		if err := st.Close(); err != nil {
			return nil, err
		}
		// Drop the crashed process's in-memory instance before timing:
		// a real restart begins with an empty heap, and a retained copy
		// of the whole instance would inflate GC mark cost inside both
		// timed arms.
		set, st = nil, nil
		runtime.GC()

		// The clock covers the restart itself — open, load, replay,
		// attach; verifying the recovered instance and closing the
		// store happen between samples, off the clock on both arms.
		row.RecoverTime, err = timedWith(runs, func() (func() error, error) {
			rset, rst, err := OpenDurable(cfg, dir, wal.Options{})
			if err != nil {
				return nil, err
			}
			return func() error {
				if row.ReplayBatches == 0 {
					row.ReplayBatches = rst.Replayed()
				}
				got := rset.InstanceSize()
				cerr := rst.Close()
				if got != row.InstanceSize {
					return fmt.Errorf("workload: recovered %d rows, want %d", got, row.InstanceSize)
				}
				return cerr
			}, nil
		})
		if err != nil {
			return nil, err
		}

		// The cold arm rebuilds the same final state without the log:
		// re-insert the base data, run the full fixpoint, then re-apply
		// the churn ops (a non-durable restart must replay them from
		// upstream to catch back up — assuming upstream can even
		// re-serve them).
		row.ColdTime, err = timedWith(runs, func() (func() error, error) {
			cset, err := Build(cfg)
			if err != nil {
				return nil, err
			}
			if err := applyChurn(cset, n, baseSize, batch, churnOps, cfg.Categories); err != nil {
				return nil, err
			}
			return func() error {
				if got := cset.InstanceSize(); got != row.InstanceSize {
					return fmt.Errorf("workload: cold rebuild reached %d rows, want %d", got, row.InstanceSize)
				}
				return nil
			}, nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}
