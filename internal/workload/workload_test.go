package workload

import (
	"context"
	"testing"

	"repro/internal/asr"
	"repro/internal/proql"
	"repro/internal/provgraph"
)

func TestBuildLinearChainPropagation(t *testing.T) {
	set, err := Build(Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  5,
		DataPeers: UpstreamDataPeers(5, 2), // peers 4 and 3
		BaseSize:  10,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Peer 4's 10 tuples propagate to peers 3..0; peer 3's to 2..0.
	// A4=10, A3=10+10=20, A2=A1=A0=20.
	for p, want := range map[int]int{4: 10, 3: 20, 2: 20, 1: 20, 0: 20} {
		if got := set.Sys.DB.MustTable(ARel(p)).Len(); got != want {
			t.Errorf("A%d has %d rows, want %d", p, got, want)
		}
	}
	// Every peer has the reference partition.
	for p := 0; p < 5; p++ {
		if got := set.Sys.DB.MustTable(BRel(p)).Len(); got != 16 {
			t.Errorf("B%d has %d rows, want 16", p, got)
		}
	}
	// Provenance rows: one per propagated tuple per hop.
	if got := set.Sys.ProvRowCount(); got != 10+20*3 {
		t.Errorf("provenance rows = %d, want 70", got)
	}
}

func TestBuildBranchedPropagation(t *testing.T) {
	set, err := Build(Config{
		Topology:  Branched,
		Profile:   ProfileLinear,
		NumPeers:  7, // 4 branches off peer 0: 1←5, 2←6, 3, 4
		DataPeers: []int{3, 6},
		BaseSize:  5,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Peer 3's data flows 3→0; peer 6's flows 6→2→0.
	if got := set.Sys.DB.MustTable(ARel(0)).Len(); got != 10 {
		t.Errorf("A0 has %d rows, want 10", got)
	}
	if got := set.Sys.DB.MustTable(ARel(2)).Len(); got != 5 {
		t.Errorf("A2 has %d rows, want 5", got)
	}
	chains := set.AChains()
	// Disjoint decomposition into one downward path per branch.
	if len(chains) != 4 {
		t.Fatalf("chains = %v", chains)
	}
	seen := map[string]bool{}
	total := 0
	for _, c := range chains {
		total += len(c)
		for _, m := range c {
			if seen[m] {
				t.Errorf("mapping %s appears in two chains", m)
			}
			seen[m] = true
		}
	}
	if total != 6 {
		t.Errorf("chains cover %d mappings, want 6 (one per edge)", total)
	}
}

func TestFanProfileRuleGrowth(t *testing.T) {
	// The fan profile's unfolded-rule counts follow
	// f(d) = 1 + f(d-1)·(d-1)-ish growth: 1, 2, 5, 16 for d = 1..4.
	want := map[int]int{1: 1, 2: 2, 3: 5, 4: 16}
	for d := 1; d <= 4; d++ {
		set, err := Build(Config{
			Topology:  Chain,
			Profile:   ProfileFan,
			NumPeers:  6,
			DataPeers: DownstreamDataPeers(6, d),
			BaseSize:  4,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := proql.CompileUnfold(set.Sys, proql.MustParse(set.TargetQuery()))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(comp.Rules); got != want[d] {
			t.Errorf("d=%d: unfolded rules = %d, want %d", d, got, want[d])
		}
	}
}

func TestTargetQueryResultsMatchInstance(t *testing.T) {
	set, err := Build(Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  6,
		DataPeers: UpstreamDataPeers(6, 2),
		BaseSize:  8,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := proql.NewEngine(set.Sys)
	res, err := eng.ExecString(set.TargetQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Every A0 tuple is bound (all are derived).
	if got, want := len(res.SortedRefs("x")), set.Sys.DB.MustTable(ARel(0)).Len(); got != want {
		t.Errorf("bindings = %d, want %d", got, want)
	}
	// Derivability over the same query: everything true.
	ann, err := eng.ExecString(set.TargetAnnotationQuery())
	if err != nil {
		t.Fatal(err)
	}
	for ref, v := range ann.Annotations {
		if v != true {
			t.Errorf("%v not trusted", ref)
		}
	}
}

func TestASRSweepMatchesBaselineResults(t *testing.T) {
	set, err := Build(Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  6,
		DataPeers: UpstreamDataPeers(6, 2),
		BaseSize:  10,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := proql.NewEngine(set.Sys)
	q := proql.MustParse(set.TargetQuery())
	base, err := eng.Exec(context.Background(), q, proql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []asr.Kind{asr.CompletePath, asr.Subpath, asr.Prefix, asr.Suffix} {
		for _, maxLen := range []int{1, 2, 3, 5} {
			ix := asr.NewIndex(set.Sys)
			for _, chain := range set.AChains() {
				for _, seg := range SplitChain(chain, maxLen) {
					if _, err := ix.Define(kind, seg...); err != nil {
						t.Fatalf("%v len=%d: %v", kind, maxLen, err)
					}
				}
			}
			if err := ix.Materialize(); err != nil {
				t.Fatal(err)
			}
			eng.RewriteRules = ix.RewriteRules
			opt, err := eng.Exec(context.Background(), q, proql.Options{})
			if err != nil {
				t.Fatalf("%v len=%d: %v", kind, maxLen, err)
			}
			eng.RewriteRules = nil
			ix.DropAll()
			if got, want := len(opt.SortedRefs("x")), len(base.SortedRefs("x")); got != want {
				t.Errorf("%v len=%d: bindings %d, want %d", kind, maxLen, got, want)
			}
			if got, want := opt.MustGraph().NumDerivations(), base.MustGraph().NumDerivations(); got != want {
				t.Errorf("%v len=%d: derivations %d, want %d", kind, maxLen, got, want)
			}
		}
	}
}

func TestSplitChain(t *testing.T) {
	chain := []string{"a", "b", "c", "d", "e"}
	segs := SplitChain(chain, 2)
	if len(segs) != 3 || len(segs[0]) != 2 || len(segs[2]) != 1 {
		t.Errorf("segs = %v", segs)
	}
	segs = SplitChain(chain, 10)
	if len(segs) != 1 || len(segs[0]) != 5 {
		t.Errorf("segs = %v", segs)
	}
	if got := SplitChain(chain, 0); len(got) != 5 {
		t.Errorf("maxLen 0 should clamp to 1: %v", got)
	}
}

func TestDataPeerPlacements(t *testing.T) {
	up := UpstreamDataPeers(10, 3)
	if len(up) != 3 || up[0] != 9 || up[2] != 7 {
		t.Errorf("upstream = %v", up)
	}
	down := DownstreamDataPeers(10, 3)
	if len(down) != 3 || down[0] != 0 || down[2] != 2 {
		t.Errorf("downstream = %v", down)
	}
	all := AllDataPeers(4)
	if len(all) != 4 {
		t.Errorf("all = %v", all)
	}
}

func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	rows, err := RunFig7([]int{2, 3}, 4, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].UnfoldedRules <= rows[0].UnfoldedRules {
		t.Errorf("Fig7 rows = %+v (rules must grow)", rows)
	}
	srows, err := RunFig9(5, 2, []int{5, 10}, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(srows) != 2 || srows[1].ChainSize <= srows[0].ChainSize {
		t.Errorf("Fig9 rows = %+v (instance must grow)", srows)
	}
	exp, err := RunASRSweep(Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  5,
		DataPeers: UpstreamDataPeers(5, 2),
		BaseSize:  10,
		Seed:      7,
	}, []int{1, 2}, []asr.Kind{asr.CompletePath, asr.Suffix}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 4 {
		t.Errorf("ASR sweep rows = %d", len(exp.Rows))
	}
	mrows, err := RunMixed([]int{4}, 1, 20, 2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrows) != 1 || mrows[0].DeltaTime <= 0 || mrows[0].FullRerunTime <= 0 ||
		mrows[0].ASRPatchTime <= 0 || mrows[0].ASRRematTime <= 0 {
		t.Errorf("mixed rows = %+v", mrows)
	}
	if mrows[0].DeltaDerivations <= 0 || mrows[0].TuplesVisited <= 0 {
		t.Errorf("mixed row counters empty: %+v", mrows[0])
	}
	ov, err := RunAnnotationOverhead(Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  4,
		DataPeers: UpstreamDataPeers(4, 1),
		BaseSize:  10,
		Seed:      7,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ov.ProjectionTime <= 0 || ov.AnnotatedTime <= 0 {
		t.Errorf("overhead row = %+v", ov)
	}
}

// TestShardedBuildParity builds the same setting unsharded and at two
// shard counts and requires identical instances: the shard partitioning
// is an execution layout, never a semantics change.
func TestShardedBuildParity(t *testing.T) {
	base := Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  6,
		DataPeers: UpstreamDataPeers(6, 2),
		BaseSize:  20,
		Seed:      7,
	}
	serial, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 8} {
		cfg := base
		cfg.Shards = s
		cfg.Parallelism = 2
		sharded, err := Build(cfg)
		if err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		if got, want := sharded.InstanceSize(), serial.InstanceSize(); got != want {
			t.Errorf("S=%d: instance size %d, serial %d", s, got, want)
		}
		for p := 0; p < base.NumPeers; p++ {
			for _, rel := range []string{ARel(p), BRel(p)} {
				if got, want := sharded.Sys.DB.MustTable(rel).Len(), serial.Sys.DB.MustTable(rel).Len(); got != want {
					t.Errorf("S=%d: %s has %d rows, serial %d", s, rel, got, want)
				}
			}
		}
		if got, want := sharded.Sys.ProvRowCount(), serial.Sys.ProvRowCount(); got != want {
			t.Errorf("S=%d: %d provenance rows, serial %d", s, got, want)
		}
	}
}

// TestProQLSweepZeroBuildsAt100x runs the E14 backend sweep at 1× and
// 100× of the base setting and asserts the asr backend's defining
// invariant at both points: the Q4-shaped multi-path query and the
// Q5-shaped annotation query evaluate with zero provgraph
// materializations, with the plan cache hitting on repeated shapes.
func TestProQLSweepZeroBuildsAt100x(t *testing.T) {
	rows, err := RunProQL([]int{1, 100}, 6, 2, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.GraphBuilds != 0 {
			t.Errorf("scale %d: asr arm materialized %d provenance graphs, want 0", r.Scale, r.GraphBuilds)
		}
		if r.CacheHits == 0 {
			t.Errorf("scale %d: repeated shapes never hit the plan cache: %+v", r.Scale, r)
		}
		if r.GraphBuildTime <= 0 || r.GraphEvalTime <= 0 || r.ASRFirstTime <= 0 || r.ASREvalTime <= 0 {
			t.Errorf("scale %d: non-positive times: %+v", r.Scale, r)
		}
	}
	// The fixed-size B partitions don't scale with BaseSize, so the
	// whole-instance ratio is below 100x; 10x is the sanity floor.
	if rows[1].InstanceSize <= rows[0].InstanceSize*10 {
		t.Errorf("100x instance (%d tuples) did not scale over 1x (%d)", rows[1].InstanceSize, rows[0].InstanceSize)
	}

	// Q5 shape (derivability annotation) at the 100x point, same
	// invariant: annotation evaluation stays on the projected result,
	// never the full graph.
	set, err := Build(Config{
		Topology:  Chain,
		Profile:   ProfileLinear,
		NumPeers:  6,
		DataPeers: UpstreamDataPeers(6, 2),
		BaseSize:  400,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := proql.NewEngine(set.Sys)
	eng.Backend = "asr"
	before := provgraph.Builds()
	ann, err := eng.ExecString(set.TargetAnnotationQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(ann.Annotations) == 0 {
		t.Fatal("annotation query returned no annotations")
	}
	if got := provgraph.Builds() - before; got != 0 {
		t.Errorf("annotation query materialized %d provenance graphs, want 0", got)
	}
}

// TestRunShardScaling smoke-tests the E13 sweep at a tiny scale: every
// shard count must produce the same instance and delta derivation
// count (the rows differ only in time).
func TestRunShardScaling(t *testing.T) {
	rows, err := RunShardScaling([]int{1, 3}, 6, 2, 20, 2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for i, r := range rows {
		if r.RunTime <= 0 || r.DeltaTime <= 0 {
			t.Errorf("row %d has non-positive times: %+v", i, r)
		}
		if r.InstanceSize != rows[0].InstanceSize || r.DeltaDerivations != rows[0].DeltaDerivations {
			t.Errorf("row %d diverges from S=1: %+v vs %+v", i, r, rows[0])
		}
	}
}
