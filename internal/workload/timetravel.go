package workload

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/relstore"
)

// TimeTravelRow is one point of the time-travel experiment (E17): the
// Section 6.1.2 target query answered live (newest epoch) versus AS OF
// the oldest retained epoch, on a setting whose retention horizon held
// the superseded versions a churn loop produced. AsOfTime at the floor
// is the worst retained case — the snapshot furthest from the live
// heads — and RetainedVersions is the memory the horizon costs: the
// superseded row versions the epoch sweep would otherwise reclaim.
type TimeTravelRow struct {
	// Depth is the configured retention horizon in epochs
	// (relstore.RetainAll = unbounded since enablement).
	Depth uint64
	// LiveTime answers the target query at the newest epoch (the
	// ordinary query path, warm caches).
	LiveTime time.Duration
	// AsOfTime answers the same query AS OF the retention floor.
	AsOfTime time.Duration
	// FloorEpoch and WindowEpochs describe the answerable window after
	// the churn: [FloorEpoch, FloorEpoch+WindowEpochs-1].
	FloorEpoch   uint64
	WindowEpochs uint64
	// RetainedVersions is relstore's dead-version count after the
	// churn: the history overhead the horizon buys.
	RetainedVersions int64
	InstanceSize     int
}

// applyVersionChurn drives churnOps insert-propagate-delete cycles at
// the source peer: each op commits a fresh batch of base tuples,
// exchanges them down the chain, then deletes the batch again, so
// every op turns its own derived rows into superseded versions all the
// way to the target. This is the history-producing counterpart of
// applyChurn, whose insert-only ops never kill a version.
func applyVersionChurn(sys *core.System, set *Setting, batch, churnOps, categories int) error {
	src := set.Config.NumPeers - 1
	var next int64
	for op := 0; op < churnOps; op++ {
		rows := make([]model.Tuple, batch)
		keys := make([][]model.Datum, batch)
		for j := range rows {
			k := int64(src)*10_000_000 + int64(set.Config.BaseSize) + next
			next++
			r := model.Tuple{k, k % int64(categories)}
			for a := 0; a < 10; a++ {
				r = append(r, k+int64(a))
			}
			rows[j] = r
			keys[j] = []model.Datum{k}
		}
		if err := sys.InsertLocal(ARel(src), rows...); err != nil {
			return err
		}
		if err := sys.Run(); err != nil {
			return err
		}
		if _, err := sys.DeleteLocal(ARel(src), keys...); err != nil {
			return err
		}
	}
	return nil
}

// RunTimeTravel measures AS OF query latency against the live path
// (E17): for each retention depth, a chain setting is built, retention
// enabled, and churned with churnOps insert-propagate-delete cycles so
// the horizon is populated with superseded versions; then the target
// query is timed live and AS OF the retention floor. Before timing,
// the AS OF path is differentially verified: the query AS OF the
// newest epoch must bind exactly what the live query binds.
func RunTimeTravel(depths []uint64, numPeers, dataPeers, baseSize, batch, churnOps, runs int, seed int64) ([]TimeTravelRow, error) {
	var out []TimeTravelRow
	for _, depth := range depths {
		if depth == 0 {
			return nil, fmt.Errorf("workload: time-travel depth 0 (retention off) has no AS OF arm")
		}
		cfg := Config{
			Topology:   Chain,
			Profile:    ProfileLinear,
			NumPeers:   numPeers,
			DataPeers:  UpstreamDataPeers(numPeers, dataPeers),
			BaseSize:   baseSize,
			Categories: 16,
			Seed:       seed,
		}
		set, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		// History starts after the seed exchange: the churn below is
		// what the horizon retains.
		set.Sys.DB.SetRetention(depth)
		sys := core.Wrap(set.Sys)
		if err := applyVersionChurn(sys, set, batch, churnOps, cfg.Categories); err != nil {
			return nil, err
		}

		eng := sys.Engine()
		q, err := proql.Parse(set.TargetQuery())
		if err != nil {
			return nil, err
		}
		exec := func(asOf uint64) (*proql.Result, error) {
			return eng.Exec(context.Background(), q, proql.Options{AsOfEpoch: asOf})
		}

		// Warm both arms and verify the time-travel path off the clock:
		// AS OF the newest epoch is the live state, so the two answers
		// must bind the identical refs.
		live, err := exec(0)
		if err != nil {
			return nil, err
		}
		atNow, err := exec(sys.Epoch())
		if err != nil {
			return nil, err
		}
		lr, nr := live.SortedRefs("x"), atNow.SortedRefs("x")
		if len(lr) != len(nr) {
			return nil, fmt.Errorf("workload: as-of at the newest epoch bound %d refs, live bound %d", len(nr), len(lr))
		}
		for i := range lr {
			if lr[i] != nr[i] {
				return nil, fmt.Errorf("workload: as-of at the newest epoch diverged from live at ref %d: %v != %v", i, nr[i], lr[i])
			}
		}

		floor := sys.RetentionFloor()
		if floor == 0 {
			return nil, fmt.Errorf("workload: retention floor 0 after SetRetention(%d)", depth)
		}
		row := TimeTravelRow{
			Depth:        depth,
			FloorEpoch:   floor,
			WindowEpochs: sys.Epoch() - floor + 1,
			InstanceSize: set.InstanceSize(),
		}
		if _, err := exec(floor); err != nil {
			return nil, fmt.Errorf("workload: as-of at the floor %d: %w", floor, err)
		}
		row.LiveTime, err = timed(runs, func() error {
			_, err := exec(0)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.AsOfTime, err = timed(runs, func() error {
			_, err := exec(floor)
			return err
		})
		if err != nil {
			return nil, err
		}
		row.RetainedVersions = sys.Exchange().DB.DeadVersions()
		out = append(out, row)
	}
	return out, nil
}

// DepthLabel renders a retention depth for tables: RetainAll prints as
// "all".
func DepthLabel(d uint64) string {
	if d == relstore.RetainAll {
		return "all"
	}
	return fmt.Sprintf("%d", d)
}
