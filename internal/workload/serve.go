package workload

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/proql"
)

// ServeRow is one point of the concurrent-serving experiment (E15):
// one ProQL backend serving N reader goroutines while a churn writer
// commits interleaved insert/delete exchanges. Latencies are per-query
// read latencies under churn; SoloP50 is the same query measured
// serially on the quiescent system, the reference the bench gate
// normalizes P99 against. Errors counts failed reads — the snapshot
// layer makes the expected value zero.
type ServeRow struct {
	Backend string
	Readers int
	Queries int
	Errors  int
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
	SoloP50 time.Duration
	// Commits is how many exchange commits (Run or DeleteLocal) the
	// churn writer published during the measured read window.
	Commits      int
	Elapsed      time.Duration
	InstanceSize int
}

// serveQuery picks each backend's natural workload: the relational
// backend gets the Section 6.1.2 target query it can unfold; the
// graph and asr backends get the Q4-shaped multi-path query their
// physical pipeline exists for.
func serveQuery(set *Setting, backend string) (*proql.Query, error) {
	if backend == "relational" {
		return proql.Parse(set.TargetQuery())
	}
	return proql.Parse(fmt.Sprintf(
		"FOR [%s $x] <-+ [$z], [%s $y] <-+ [$z] RETURN $x, $y",
		ARel(0), ARel(1)))
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// RunServe measures snapshot-isolated concurrent serving: for every
// reader count and every backend, N goroutines each run the backend's
// query queriesPerReader times against a chain setting while one
// writer goroutine alternates committing a fresh batch of base tuples
// (InsertLocal+Run) and deleting it again (DeleteLocal) — the
// RunDelta/DeleteLocal churn loop. The facade's epoch layer means
// readers never block on the writer and never observe a half-applied
// commit; this harness quantifies what that costs in read latency.
func RunServe(readerCounts []int, numPeers, dataPeers, baseSize, batch, queriesPerReader int, seed int64) ([]ServeRow, error) {
	var out []ServeRow
	for _, readers := range readerCounts {
		for _, backend := range []string{"relational", "graph", "asr"} {
			row, err := serveOne(backend, readers, numPeers, dataPeers, baseSize, batch, queriesPerReader, seed)
			if err != nil {
				return nil, fmt.Errorf("serve %s/%d readers: %w", backend, readers, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func serveOne(backend string, readers, numPeers, dataPeers, baseSize, batch, queriesPerReader int, seed int64) (ServeRow, error) {
	cfg := Config{
		Topology:   Chain,
		Profile:    ProfileLinear,
		NumPeers:   numPeers,
		DataPeers:  UpstreamDataPeers(numPeers, dataPeers),
		BaseSize:   baseSize,
		Categories: 16,
		Seed:       seed,
	}
	set, err := Build(cfg)
	if err != nil {
		return ServeRow{}, err
	}
	sys := core.Wrap(set.Sys)
	eng := sys.Engine()
	q, err := serveQuery(set, backend)
	if err != nil {
		return ServeRow{}, err
	}
	execOnce := func() (time.Duration, error) {
		start := time.Now()
		var execErr error
		switch backend {
		case "graph":
			_, execErr = eng.Exec(context.Background(), q, proql.Options{Backend: "graph"})
		case "asr":
			_, execErr = eng.Exec(context.Background(), q, proql.Options{Backend: "asr"})
		default:
			_, execErr = eng.Exec(context.Background(), q, proql.Options{})
		}
		return time.Since(start), execErr
	}

	row := ServeRow{Backend: backend, Readers: readers, InstanceSize: set.InstanceSize()}

	// Solo reference: the same query, serialized, quiescent system.
	solo := make([]time.Duration, 0, Runs)
	for i := 0; i < Runs; i++ {
		d, err := execOnce()
		if err != nil {
			return ServeRow{}, err
		}
		solo = append(solo, d)
	}
	sort.Slice(solo, func(i, j int) bool { return solo[i] < solo[j] })
	row.SoloP50 = percentile(solo, 0.50)

	// Churn writer: alternate commit a fresh batch / delete it again,
	// so the instance toggles between two states without growing.
	stop := make(chan struct{})
	var writerErr error
	var commits atomic.Int64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		src := numPeers - 1
		var gen int64
		var pending [][]model.Datum
		for {
			select {
			case <-stop:
				return
			default:
			}
			if pending == nil {
				rows := make([]model.Tuple, batch)
				keys := make([][]model.Datum, batch)
				for j := range rows {
					k := int64(src)*10_000_000 + int64(baseSize) + gen
					gen++
					r := model.Tuple{k, k % int64(cfg.Categories)}
					for a := 0; a < 10; a++ {
						r = append(r, k+int64(a))
					}
					rows[j] = r
					keys[j] = []model.Datum{k}
				}
				if err := sys.InsertLocal(ARel(src), rows...); err != nil {
					writerErr = err
					return
				}
				if err := sys.Run(); err != nil {
					writerErr = err
					return
				}
				pending = keys
			} else {
				if _, err := sys.DeleteLocal(ARel(src), pending...); err != nil {
					writerErr = err
					return
				}
				pending = nil
			}
			commits.Add(1)
		}
	}()

	// Measured read window.
	lats := make([][]time.Duration, readers)
	var errCount atomic.Int64
	start := time.Now()
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			ls := make([]time.Duration, 0, queriesPerReader)
			for i := 0; i < queriesPerReader; i++ {
				d, err := execOnce()
				if err != nil {
					errCount.Add(1)
					continue
				}
				ls = append(ls, d)
			}
			lats[r] = ls
		}(r)
	}
	rwg.Wait()
	row.Elapsed = time.Since(start)
	close(stop)
	wwg.Wait()
	if writerErr != nil {
		return ServeRow{}, writerErr
	}

	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row.Queries = len(all)
	row.Errors = int(errCount.Load())
	row.Commits = int(commits.Load())
	row.P50 = percentile(all, 0.50)
	row.P99 = percentile(all, 0.99)
	row.Max = percentile(all, 1.00)
	return row, nil
}
