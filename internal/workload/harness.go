package workload

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/asr"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/provgraph"
)

// Runs is the measurement protocol of Section 6.1.3: each experiment
// is repeated, the best and worst results are discarded, and the rest
// averaged. The paper used 7 runs; harness callers can lower it for
// quick sweeps.
const Runs = 7

// timed measures fn with the discard-extremes-and-average protocol.
func timed(runs int, fn func() error) (time.Duration, error) {
	if runs < 3 {
		runs = 3
	}
	samples := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(start))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	samples = samples[1 : len(samples)-1]
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	return total / time.Duration(len(samples)), nil
}

// timedWith measures fn under the same protocol as timed, but runs
// the closure fn returns off the clock after each sample: experiments
// that open a system time the operation itself, with verification and
// teardown between samples excluded from the measurement (on both
// sides of a comparison, so neither arm is penalized).
func timedWith(runs int, fn func() (func() error, error)) (time.Duration, error) {
	if runs < 3 {
		runs = 3
	}
	samples := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		after, err := fn()
		d := time.Since(start)
		if err != nil {
			return 0, err
		}
		if after != nil {
			if err := after(); err != nil {
				return 0, err
			}
		}
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	samples = samples[1 : len(samples)-1]
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	return total / time.Duration(len(samples)), nil
}

// UnfoldStatsRow is one point of Figures 7 and 8: the unfolded-rule
// count and the unfolding/evaluation time split.
type UnfoldStatsRow struct {
	X             int // number of peers (Fig 7) or peers with data (Fig 8)
	UnfoldedRules int
	UnfoldTime    time.Duration
	EvalTime      time.Duration
}

// RunFig7 reproduces Figure 7: chain topology, data at every peer,
// sweeping the number of peers; fan profile so the unfolding must
// cover all derivation combinations.
func RunFig7(peerCounts []int, baseSize int, runs int, seed int64) ([]UnfoldStatsRow, error) {
	var out []UnfoldStatsRow
	for _, n := range peerCounts {
		set, err := Build(Config{
			Topology:  Chain,
			Profile:   ProfileFan,
			NumPeers:  n,
			DataPeers: AllDataPeers(n),
			BaseSize:  baseSize,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		row, err := measureTarget(set, n, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// RunFig8 reproduces Figure 8: fixed-length chain, sweeping the number
// of peers with local data.
func RunFig8(numPeers int, dataCounts []int, baseSize int, runs int, seed int64) ([]UnfoldStatsRow, error) {
	var out []UnfoldStatsRow
	for _, d := range dataCounts {
		set, err := Build(Config{
			Topology:  Chain,
			Profile:   ProfileFan,
			NumPeers:  numPeers,
			DataPeers: DownstreamDataPeers(numPeers, d),
			BaseSize:  baseSize,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		row, err := measureTarget(set, d, runs)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func measureTarget(set *Setting, x, runs int) (UnfoldStatsRow, error) {
	eng := proql.NewEngine(set.Sys)
	q, err := proql.Parse(set.TargetQuery())
	if err != nil {
		return UnfoldStatsRow{}, err
	}
	var last *proql.Result
	_, err = timed(runs, func() error {
		res, err := eng.Exec(context.Background(), q, proql.Options{})
		last = res
		return err
	})
	if err != nil {
		return UnfoldStatsRow{}, err
	}
	return UnfoldStatsRow{
		X:             x,
		UnfoldedRules: last.Stats.UnfoldedRules,
		UnfoldTime:    last.Stats.UnfoldTime,
		EvalTime:      last.Stats.EvalTime,
	}, nil
}

// ScaleRow is one point of Figures 9 and 10: query processing time and
// instance size for chain and branched topologies.
type ScaleRow struct {
	X            int // base size (Fig 9) or number of peers (Fig 10)
	ChainTime    time.Duration
	BranchedTime time.Duration
	ChainSize    int
	BranchedSize int
}

// RunFig9 reproduces Figure 9: 20-peer chain and branched topologies,
// few upstream data peers, sweeping the base size.
func RunFig9(numPeers, dataPeers int, baseSizes []int, runs int, seed int64) ([]ScaleRow, error) {
	var out []ScaleRow
	for _, base := range baseSizes {
		row := ScaleRow{X: base}
		if err := fillScaleRow(&row, numPeers, dataPeers, base, runs, seed); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// RunFig10 reproduces Figure 10: fixed base size, sweeping the number
// of peers.
func RunFig10(peerCounts []int, dataPeers, baseSize int, runs int, seed int64) ([]ScaleRow, error) {
	var out []ScaleRow
	for _, n := range peerCounts {
		row := ScaleRow{X: n}
		if err := fillScaleRow(&row, n, dataPeers, baseSize, runs, seed); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func fillScaleRow(row *ScaleRow, numPeers, dataPeers, base, runs int, seed int64) error {
	for _, topo := range []Topology{Chain, Branched} {
		set, err := Build(Config{
			Topology:  topo,
			Profile:   ProfileLinear,
			NumPeers:  numPeers,
			DataPeers: UpstreamDataPeers(numPeers, dataPeers),
			BaseSize:  base,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		eng := proql.NewEngine(set.Sys)
		q, err := proql.Parse(set.TargetQuery())
		if err != nil {
			return err
		}
		dur, err := timed(runs, func() error {
			_, err := eng.Exec(context.Background(), q, proql.Options{})
			return err
		})
		if err != nil {
			return err
		}
		if topo == Chain {
			row.ChainTime = dur
			row.ChainSize = set.InstanceSize()
		} else {
			row.BranchedTime = dur
			row.BranchedSize = set.InstanceSize()
		}
	}
	return nil
}

// ASRRow is one point of Figures 11–13: total query processing time
// for one ASR kind at one maximum path length.
type ASRRow struct {
	Kind    asr.Kind
	MaxLen  int
	Time    time.Duration
	ASRRows int // materialized index size
}

// ASRExperiment holds a setting plus its no-ASR baseline.
type ASRExperiment struct {
	Setting  *Setting
	Baseline time.Duration
	Rows     []ASRRow
}

// RunASRSweep reproduces the shape of Figures 11, 12, and 13: build
// the given setting, measure the no-ASR baseline for the target query,
// then for every ASR kind and maximum path length split the topology's
// mapping chains into segments, materialize the ASRs, and re-measure.
func RunASRSweep(cfg Config, maxLens []int, kinds []asr.Kind, runs int) (*ASRExperiment, error) {
	set, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	exp := &ASRExperiment{Setting: set}
	eng := proql.NewEngine(set.Sys)
	q, err := proql.Parse(set.TargetQuery())
	if err != nil {
		return nil, err
	}
	exp.Baseline, err = timed(runs, func() error {
		_, err := eng.Exec(context.Background(), q, proql.Options{})
		return err
	})
	if err != nil {
		return nil, err
	}
	chains := set.AChains()
	for _, kind := range kinds {
		for _, maxLen := range maxLens {
			ix := asr.NewIndex(set.Sys)
			for _, chain := range chains {
				for _, seg := range SplitChain(chain, maxLen) {
					if _, err := ix.Define(kind, seg...); err != nil {
						return nil, fmt.Errorf("define %v over %v: %w", kind, seg, err)
					}
				}
			}
			if err := ix.Materialize(); err != nil {
				return nil, err
			}
			eng.RewriteRules = ix.RewriteRules
			dur, err := timed(runs, func() error {
				_, err := eng.Exec(context.Background(), q, proql.Options{})
				return err
			})
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, ASRRow{
				Kind:    kind,
				MaxLen:  maxLen,
				Time:    dur,
				ASRRows: ix.TotalRows(),
			})
			eng.RewriteRules = nil
			ix.DropAll()
		}
	}
	return exp, nil
}

// DeletionRow is one point of the use-case-Q5 experiment: the time to
// propagate one base-tuple deletion with the delta-driven propagator
// (support index), with the legacy whole-graph derivability walk, and
// by rebuilding the exchange from scratch, plus the size of the
// affected subgraph the delta walk visited versus the instance size.
type DeletionRow struct {
	Peers              int
	MaintainTime       time.Duration
	LegacyTime         time.Duration
	RebuildTime        time.Duration
	TuplesVisited      int
	DerivationsVisited int
	InstanceSize       int
}

// RunDeletion measures incremental deletion at Fig.-10-style scales:
// a chain of n peers with data at the far end, deleting one base tuple
// of the top peer so the whole propagation chain is affected. Each run
// deletes a different key, so every measurement does the same amount
// of work on a warm system.
func RunDeletion(peerCounts []int, dataPeers, baseSize, runs int, seed int64) ([]DeletionRow, error) {
	var out []DeletionRow
	for _, n := range peerCounts {
		cfg := Config{
			Topology:  Chain,
			Profile:   ProfileLinear,
			NumPeers:  n,
			DataPeers: UpstreamDataPeers(n, dataPeers),
			BaseSize:  baseSize,
			Seed:      seed,
		}
		row := DeletionRow{Peers: n}
		src := n - 1
		key := func(i int) []model.Datum {
			return []model.Datum{int64(src)*10_000_000 + int64(i%baseSize)}
		}

		set, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		row.InstanceSize = set.InstanceSize()
		i := 0
		row.MaintainTime, err = timed(runs, func() error {
			rep, err := set.Sys.DeleteLocal(ARel(src), key(i))
			i++
			if rep != nil {
				row.TuplesVisited = rep.TuplesVisited
				row.DerivationsVisited = rep.DerivationsVisited
			}
			return err
		})
		if err != nil {
			return nil, err
		}

		legacySet, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		j := 0
		row.LegacyTime, err = timed(runs, func() error {
			_, err := legacySet.Sys.DeleteLocalLegacy(ARel(src), key(j))
			j++
			return err
		})
		if err != nil {
			return nil, err
		}

		row.RebuildTime, err = timed(runs, func() error {
			_, err := Build(cfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// InsertionRow is one point of the incremental-insertion experiment:
// the time to propagate a small batch of new base tuples with the
// Δ-seeded RunDelta, with a full re-run of the compiled fixpoint, and
// by rebuilding the exchange from scratch, plus the derivations the
// delta run enumerated versus the instance size.
type InsertionRow struct {
	Peers            int
	DeltaTime        time.Duration
	FullRerunTime    time.Duration
	RebuildTime      time.Duration
	DeltaDerivations int
	InstanceSize     int
}

// RunInsertion measures incremental insertion at Fig.-10-style scales:
// a chain of n peers with data at the far end, inserting batch fresh
// base tuples at the top peer so the whole propagation chain extends.
// Each run inserts different keys, so every measurement does the same
// amount of work on a warm system.
func RunInsertion(peerCounts []int, dataPeers, baseSize, batch, runs int, seed int64) ([]InsertionRow, error) {
	var out []InsertionRow
	for _, n := range peerCounts {
		cfg := Config{
			Topology:   Chain,
			Profile:    ProfileLinear,
			NumPeers:   n,
			DataPeers:  UpstreamDataPeers(n, dataPeers),
			BaseSize:   baseSize,
			Categories: 16,
			Seed:       seed,
		}
		row := InsertionRow{Peers: n}
		src := n - 1
		var next int64
		newRows := func() []model.Tuple {
			rows := make([]model.Tuple, batch)
			for j := range rows {
				k := int64(src)*10_000_000 + int64(baseSize) + next
				next++
				r := model.Tuple{k, k % int64(cfg.Categories)}
				for a := 0; a < 10; a++ {
					r = append(r, k+int64(a))
				}
				rows[j] = r
			}
			return rows
		}

		set, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		row.InstanceSize = set.InstanceSize()
		row.DeltaTime, err = timed(runs, func() error {
			if err := set.Sys.InsertLocal(ARel(src), newRows()...); err != nil {
				return err
			}
			rep, err := set.Sys.RunDelta()
			if rep != nil {
				if rep.Full {
					return fmt.Errorf("workload: delta arm fell back to a full run")
				}
				row.DeltaDerivations = rep.Derivations
			}
			return err
		})
		if err != nil {
			return nil, err
		}

		fullSet, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		next = 0
		row.FullRerunTime, err = timed(runs, func() error {
			if err := fullSet.Sys.InsertLocal(ARel(src), newRows()...); err != nil {
				return err
			}
			return fullSet.Sys.Run()
		})
		if err != nil {
			return nil, err
		}

		row.RebuildTime, err = timed(runs, func() error {
			_, err := Build(cfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// MixedRow is one point of the interleaved-churn experiment (E12):
// each operation deletes one existing base tuple AND inserts a small
// batch of fresh ones at the far peer, then propagates. The delta arm
// relies on journal repair — DeleteLocal patches the persistent
// engine state, so the following RunDelta stays delta-seeded; the
// full-rerun arm pays a complete fixpoint per operation; the rebuild
// arm re-exchanges from scratch. The ASR columns measure maintaining
// a complete-path ASR over the whole chain under the same churn:
// patched from the insertion/deletion reports versus re-materialized
// per operation.
type MixedRow struct {
	Peers            int
	DeltaTime        time.Duration
	FullRerunTime    time.Duration
	RebuildTime      time.Duration
	DeltaDerivations int
	TuplesVisited    int
	ASRPatchTime     time.Duration
	ASRRematTime     time.Duration
	InstanceSize     int
}

// RunMixed measures interleaved insert/delete churn at Fig.-10-style
// scales: a chain of n peers with data at the far end; every measured
// operation retracts one base tuple and inserts batch fresh ones at
// the top peer, so the whole propagation chain is touched in both
// directions. Deleted keys and inserted keys are distinct across
// iterations, so every measurement does the same amount of work on a
// warm system.
func RunMixed(peerCounts []int, dataPeers, baseSize, batch, runs int, seed int64) ([]MixedRow, error) {
	var out []MixedRow
	for _, n := range peerCounts {
		cfg := Config{
			Topology:   Chain,
			Profile:    ProfileLinear,
			NumPeers:   n,
			DataPeers:  UpstreamDataPeers(n, dataPeers),
			BaseSize:   baseSize,
			Categories: 16,
			Seed:       seed,
		}
		row := MixedRow{Peers: n}
		src := n - 1
		var delNext, insNext int64
		churn := func() (delKey []model.Datum, ins []model.Tuple) {
			delKey = []model.Datum{int64(src)*10_000_000 + delNext%int64(baseSize)}
			delNext++
			ins = make([]model.Tuple, batch)
			for j := range ins {
				k := int64(src)*10_000_000 + int64(baseSize) + insNext
				insNext++
				r := model.Tuple{k, k % int64(cfg.Categories)}
				for a := 0; a < 10; a++ {
					r = append(r, k+int64(a))
				}
				ins[j] = r
			}
			return delKey, ins
		}

		set, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		row.InstanceSize = set.InstanceSize()
		row.DeltaTime, err = timed(runs, func() error {
			delKey, ins := churn()
			rep, err := set.Sys.DeleteLocal(ARel(src), delKey)
			if err != nil {
				return err
			}
			row.TuplesVisited = rep.TuplesVisited
			if err := set.Sys.InsertLocal(ARel(src), ins...); err != nil {
				return err
			}
			irep, err := set.Sys.RunDelta()
			if err != nil {
				return err
			}
			if irep.Full {
				return fmt.Errorf("workload: mixed delta arm fell back to a full run")
			}
			row.DeltaDerivations = irep.Derivations
			return nil
		})
		if err != nil {
			return nil, err
		}

		fullSet, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		delNext, insNext = 0, 0
		row.FullRerunTime, err = timed(runs, func() error {
			delKey, ins := churn()
			if _, err := fullSet.Sys.DeleteLocal(ARel(src), delKey); err != nil {
				return err
			}
			if err := fullSet.Sys.InsertLocal(ARel(src), ins...); err != nil {
				return err
			}
			return fullSet.Sys.Run()
		})
		if err != nil {
			return nil, err
		}

		row.RebuildTime, err = timed(runs, func() error {
			_, err := Build(cfg)
			return err
		})
		if err != nil {
			return nil, err
		}

		// ASR maintenance under the same churn: a complete-path ASR
		// over the whole A-chain, patched from the reports versus
		// re-materialized per operation.
		patchSet, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		chain := patchSet.AChains()[0]
		patchIx := asr.NewIndex(patchSet.Sys)
		if _, err := patchIx.Define(asr.CompletePath, chain...); err != nil {
			return nil, err
		}
		if err := patchIx.Materialize(); err != nil {
			return nil, err
		}
		delNext, insNext = 0, 0
		row.ASRPatchTime, err = timed(runs, func() error {
			delKey, ins := churn()
			rep, err := patchSet.Sys.DeleteLocal(ARel(src), delKey)
			if err != nil {
				return err
			}
			if err := patchIx.ApplyDeletions(rep); err != nil {
				return err
			}
			if err := patchSet.Sys.InsertLocal(ARel(src), ins...); err != nil {
				return err
			}
			irep, err := patchSet.Sys.RunDelta()
			if err != nil {
				return err
			}
			return patchIx.ApplyInsertions(irep)
		})
		if err != nil {
			return nil, err
		}

		rematSet, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		rematIx := asr.NewIndex(rematSet.Sys)
		if _, err := rematIx.Define(asr.CompletePath, chain...); err != nil {
			return nil, err
		}
		if err := rematIx.Materialize(); err != nil {
			return nil, err
		}
		delNext, insNext = 0, 0
		row.ASRRematTime, err = timed(runs, func() error {
			delKey, ins := churn()
			if _, err := rematSet.Sys.DeleteLocal(ARel(src), delKey); err != nil {
				return err
			}
			if err := rematSet.Sys.InsertLocal(ARel(src), ins...); err != nil {
				return err
			}
			if _, err := rematSet.Sys.RunDelta(); err != nil {
				return err
			}
			return rematIx.Materialize()
		})
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ShardScaleRow is one point of the shard strong-scaling experiment
// (E13): one shard count S on a fixed Fig.-10-style setting, with the
// full exchange fixpoint re-run on a warm system, and one interleaved
// churn operation (1 delete + batch inserts + RunDelta) as the
// incremental arm. S=1 is the unsharded serial engine, so the row
// doubles as the sharding-overhead / parity reference.
type ShardScaleRow struct {
	Shards           int
	RunTime          time.Duration
	DeltaTime        time.Duration
	DeltaDerivations int
	InstanceSize     int
}

// RunShardScaling measures the shard-parallel engine's strong scaling:
// the same chain setting (data at the far end) built at each shard
// count, with Parallelism set to the shard count so each shard can own
// a worker. The full-run arm re-runs the complete exchange fixpoint on
// the warm system — every derivation is re-enumerated, insertions are
// all duplicates — which isolates enumeration + journal bookkeeping
// from schema build and data loading. The delta arm is RunMixed's
// churn operation at the same scale. Sharded and serial runs produce
// byte-identical instances (enforced by the differential suite), so
// rows differ only in time.
func RunShardScaling(shardCounts []int, numPeers, dataPeers, baseSize, batch, runs int, seed int64) ([]ShardScaleRow, error) {
	var out []ShardScaleRow
	for _, s := range shardCounts {
		cfg := Config{
			Topology:    Chain,
			Profile:     ProfileLinear,
			NumPeers:    numPeers,
			DataPeers:   UpstreamDataPeers(numPeers, dataPeers),
			BaseSize:    baseSize,
			Categories:  16,
			Seed:        seed,
			Shards:      s,
			Parallelism: s,
		}
		row := ShardScaleRow{Shards: s}

		set, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		row.InstanceSize = set.InstanceSize()
		row.RunTime, err = timed(runs, set.Sys.Run)
		if err != nil {
			return nil, err
		}

		churnSet, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		src := numPeers - 1
		var delNext, insNext int64
		row.DeltaTime, err = timed(runs, func() error {
			delKey := []model.Datum{int64(src)*10_000_000 + delNext%int64(baseSize)}
			delNext++
			if _, err := churnSet.Sys.DeleteLocal(ARel(src), delKey); err != nil {
				return err
			}
			ins := make([]model.Tuple, batch)
			for j := range ins {
				k := int64(src)*10_000_000 + int64(baseSize) + insNext
				insNext++
				r := model.Tuple{k, k % int64(cfg.Categories)}
				for a := 0; a < 10; a++ {
					r = append(r, k+int64(a))
				}
				ins[j] = r
			}
			if err := churnSet.Sys.InsertLocal(ARel(src), ins...); err != nil {
				return err
			}
			rep, err := churnSet.Sys.RunDelta()
			if err != nil {
				return err
			}
			if rep.Full {
				return fmt.Errorf("workload: shard delta arm fell back to a full run")
			}
			row.DeltaDerivations = rep.Derivations
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// AnnotationOverheadRow compares graph projection alone against
// projection plus annotation computation (Section 6.1.2's observation
// that the projection component dominates).
type AnnotationOverheadRow struct {
	ProjectionTime time.Duration
	AnnotatedTime  time.Duration
}

// RunAnnotationOverhead measures the target query with and without a
// TRUST evaluation over the same setting.
func RunAnnotationOverhead(cfg Config, runs int) (*AnnotationOverheadRow, error) {
	set, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	eng := proql.NewEngine(set.Sys)
	proj, err := proql.Parse(set.TargetQuery())
	if err != nil {
		return nil, err
	}
	annot, err := proql.Parse(set.TargetAnnotationQuery())
	if err != nil {
		return nil, err
	}
	row := &AnnotationOverheadRow{}
	row.ProjectionTime, err = timed(runs, func() error {
		_, err := eng.Exec(context.Background(), proj, proql.Options{})
		return err
	})
	if err != nil {
		return nil, err
	}
	row.AnnotatedTime, err = timed(runs, func() error {
		_, err := eng.Exec(context.Background(), annot, proql.Options{})
		return err
	})
	if err != nil {
		return nil, err
	}
	return row, nil
}

// ProQLRow is one point of the E14 backend sweep: the Q4-shaped
// multi-path common-provenance query evaluated by the materialized
// graph backend and by the goal-directed asr backend, at one scale
// multiplier of the base setting.
type ProQLRow struct {
	Scale        int
	InstanceSize int
	// GraphBuildTime is the provgraph materialization the graph
	// backend pays before answering anything; GraphEvalTime is its
	// warm per-query evaluation over the built graph.
	GraphBuildTime time.Duration
	GraphEvalTime  time.Duration
	// ASRFirstTime is the asr backend's cold evaluation (adapter
	// warm-up plus a plan-cache miss); ASREvalTime is the warm
	// repeated-shape evaluation, where planning is a cache hit.
	ASRFirstTime time.Duration
	ASREvalTime  time.Duration
	// GraphBuilds counts provgraph materializations observed during
	// the asr arm. The backend's defining invariant is 0.
	GraphBuilds int64
	CacheHits   int
	CacheMisses int
}

// RunProQL sweeps the multi-path provenance query across scale
// multipliers of a chain setting, comparing the graph backend
// (materialize the provenance graph, then evaluate) against the
// goal-directed asr backend (probe the ASR tables directly — no
// materialization, and planning amortized by the shape-keyed cache).
func RunProQL(scales []int, numPeers, dataPeers, baseSize, runs int, seed int64) ([]ProQLRow, error) {
	var out []ProQLRow
	for _, sc := range scales {
		cfg := Config{
			Topology:  Chain,
			Profile:   ProfileLinear,
			NumPeers:  numPeers,
			DataPeers: UpstreamDataPeers(numPeers, dataPeers),
			BaseSize:  baseSize * sc,
			Seed:      seed,
		}
		set, err := Build(cfg)
		if err != nil {
			return nil, err
		}
		row := ProQLRow{Scale: sc, InstanceSize: set.InstanceSize()}
		q, err := proql.Parse(fmt.Sprintf(
			"FOR [%s $x] <-+ [$z], [%s $y] <-+ [$z] RETURN $x, $y",
			ARel(0), ARel(1)))
		if err != nil {
			return nil, err
		}

		graphEng := proql.NewEngine(set.Sys)
		graphEng.Backend = "graph"
		row.GraphBuildTime, err = timed(runs, func() error {
			graphEng.InvalidateGraph()
			_, err := graphEng.Graph()
			return err
		})
		if err != nil {
			return nil, err
		}
		row.GraphEvalTime, err = timed(runs, func() error {
			_, err := graphEng.Exec(context.Background(), q, proql.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}

		before := provgraph.Builds()
		// Cold arm: a fresh engine per iteration, so every run pays the
		// adapter warm-up and a plan-cache miss (the discard-extremes
		// protocol tames the noise a single cold measurement carries).
		var asrEng *proql.Engine
		row.ASRFirstTime, err = timed(runs, func() error {
			asrEng = proql.NewEngine(set.Sys)
			asrEng.Backend = "asr"
			_, err := asrEng.Exec(context.Background(), q, proql.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		row.ASREvalTime, err = timed(runs, func() error {
			_, err := asrEng.Exec(context.Background(), q, proql.Options{})
			return err
		})
		if err != nil {
			return nil, err
		}
		row.GraphBuilds = provgraph.Builds() - before
		st := asrEng.PlanCacheStats()
		row.CacheHits, row.CacheMisses = st.Hits, st.Misses
		out = append(out, row)
	}
	return out, nil
}
