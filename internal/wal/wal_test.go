package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

func keyedSchema(name string) *relstore.TableSchema {
	return &relstore.TableSchema{
		Name: name,
		Columns: []model.Column{
			{Name: "k", Type: model.TypeInt},
			{Name: "v", Type: model.TypeString},
		},
		Key: []int{0},
	}
}

func keylessSchema(name string) *relstore.TableSchema {
	return &relstore.TableSchema{
		Name: name,
		Columns: []model.Column{
			{Name: "a", Type: model.TypeInt},
			{Name: "b", Type: model.TypeInt},
		},
	}
}

// signature renders every table's sorted live rows.
func signature(db *relstore.Database) string {
	sig := ""
	for _, name := range db.TableNames() {
		sig += name + ":"
		for _, row := range db.MustTable(name).SortedRows() {
			sig += model.EncodeDatums(row) + ";"
		}
		sig += "\n"
	}
	return sig
}

// TestStoreRoundTrip commits inserts, deletes, and DDL through the
// hook, reopens from disk, and expects the identical database.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := s.DB()
	r, err := db.CreateTable(keyedSchema("R"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.CreateTable(keylessSchema("M"))
	if err != nil {
		t.Fatal(err)
	}
	db.BeginBatch()
	for i := 0; i < 20; i++ {
		r.Insert(model.Tuple{int64(i), fmt.Sprintf("v%d", i)})
	}
	m.Insert(model.Tuple{int64(1), int64(2)})
	m.Insert(model.Tuple{int64(1), int64(2)})
	m.Insert(model.Tuple{int64(1), int64(2)}) // duplicates survive (multiset)
	m.Insert(model.Tuple{int64(3), int64(4)})
	db.EndBatch()
	db.BeginBatch()
	r.Delete([]model.Datum{int64(3)})
	r.Insert(model.Tuple{int64(3), "replaced"})
	// DeleteWhere kills two of the three copies (one OpDeleteRow each);
	// replay must remove exactly two, not all matches.
	killed := 0
	m.DeleteWhere(func(row model.Tuple) bool {
		if killed == 2 || row[0] != int64(1) {
			return false
		}
		killed++
		return true
	})
	db.EndBatch()
	// DDL and per-op (non-batch) commits are logged too.
	db.CreateTable(keyedSchema("S"))
	db.MustTable("S").Insert(model.Tuple{int64(9), "s"})
	db.DropTable("S")
	want := signature(db)
	epoch := db.Epoch()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := signature(s2.DB()); got != want {
		t.Fatalf("recovered database differs\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got := s2.DB().Epoch(); got < epoch {
		t.Fatalf("recovered epoch %d behind on-disk %d", got, epoch)
	}
	// Keyless duplicate count survived: one (1,2) was deleted, one kept.
	n := 0
	s2.DB().MustTable("M").Iterate(func(row model.Tuple) bool {
		if row[0] == int64(1) {
			n++
		}
		return true
	})
	if n != 1 {
		t.Fatalf("keyless multiset replayed to %d copies of (1,2), want 1", n)
	}
}

// TestCheckpointRotation checkpoints mid-history and checks the old
// generation is gone, recovery replays only the suffix, and the result
// matches.
func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := s.DB()
	r, _ := db.CreateTable(keyedSchema("R"))
	for i := 0; i < 50; i++ {
		db.BeginBatch()
		r.Insert(model.Tuple{int64(i), "x"})
		db.EndBatch()
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending %d after checkpoint", s.Pending())
	}
	for i := 50; i < 60; i++ {
		db.BeginBatch()
		r.Insert(model.Tuple{int64(i), "x"})
		db.EndBatch()
	}
	want := signature(db)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "wal-0.log")); !os.IsNotExist(err) {
		t.Fatal("old generation log survived the checkpoint")
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := signature(s2.DB()); got != want {
		t.Fatalf("post-checkpoint recovery differs\ngot:\n%s\nwant:\n%s", got, want)
	}
	if s2.Replayed() != 10 {
		t.Fatalf("replayed %d batches, want the 10-batch suffix", s2.Replayed())
	}
}

// TestTornTailTruncated corrupts the log's tail and expects recovery
// to keep every complete batch and drop the torn one.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := s.DB()
	r, _ := db.CreateTable(keyedSchema("R"))
	for i := 0; i < 10; i++ {
		db.BeginBatch()
		r.Insert(model.Tuple{int64(i), "x"})
		db.EndBatch()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal-0.log")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(blob) / 2, len(blob) - 3} {
		sub := filepath.Join(t.TempDir(), "d")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "wal-0.log"), blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(sub, Options{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		got := 0
		if tb, ok := s2.DB().Table("R"); ok {
			got = tb.Len()
		}
		if got > 10 || (cut == len(blob)-3 && got != 9) {
			t.Fatalf("cut=%d: recovered %d rows", cut, got)
		}
		// The torn tail was truncated: reopening is clean and appends work.
		st, err := os.Stat(filepath.Join(sub, "wal-0.log"))
		if err != nil || st.Size() > int64(cut) {
			t.Fatalf("cut=%d: tail not truncated (%v, size %d)", cut, err, st.Size())
		}
		s2.Close()
	}
	// Flipping a payload byte mid-file cuts replay at the corrupt frame.
	flip := append([]byte(nil), blob...)
	flip[len(flip)/2] ^= 0xff
	sub := t.TempDir()
	if err := os.WriteFile(filepath.Join(sub, "wal-0.log"), flip, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if tb, ok := s3.DB().Table("R"); ok && tb.Len() >= 10 {
		t.Fatalf("corrupt frame not dropped: %d rows", tb.Len())
	}
}

// TestBatchCodecRoundTrip round-trips every op kind through the batch
// codec.
func TestBatchCodecRoundTrip(t *testing.T) {
	ops := []relstore.LoggedOp{
		{Kind: relstore.OpCreateTable, Table: "R", Schema: keyedSchema("R")},
		{Kind: relstore.OpInsert, Table: "R", Row: model.Tuple{int64(-5), "héllo|world"}},
		{Kind: relstore.OpInsert, Table: "R", Row: model.Tuple{int64(1), nil}},
		{Kind: relstore.OpDeleteKey, Table: "R", Key: model.EncodeDatums([]model.Datum{int64(-5)})},
		{Kind: relstore.OpDeleteRow, Table: "M", Row: model.Tuple{3.25, true}},
		{Kind: relstore.OpDropTable, Table: "R"},
	}
	payload := AppendBatch(nil, 42, ops)
	b, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epoch != 42 || len(b.Ops) != len(ops) {
		t.Fatalf("decoded epoch=%d nops=%d", b.Epoch, len(b.Ops))
	}
	if got := model.EncodeDatums(b.Ops[1].Row); got != model.EncodeDatums(ops[1].Row) {
		t.Fatalf("insert row round-trip: %q", got)
	}
	if b.Ops[3].Key != ops[3].Key {
		t.Fatalf("delete key round-trip: %q", b.Ops[3].Key)
	}
	if b.Ops[4].Key != model.EncodeDatums(ops[4].Row) {
		t.Fatalf("keyless delete row kept encoded: %q", b.Ops[4].Key)
	}
	sc := b.Ops[0].Schema
	if sc.Name != "R" || len(sc.Columns) != 2 || sc.Columns[1].Type != model.TypeString || len(sc.Key) != 1 {
		t.Fatalf("schema round-trip: %+v", sc)
	}
}

// TestSyncEveryBatching checks the group-commit counter: with
// SyncEvery=8 the store stays correct (durability of the tail is
// traded, correctness of replay is not).
func TestSyncEveryBatching(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	db := s.DB()
	r, _ := db.CreateTable(keyedSchema("R"))
	for i := 0; i < 30; i++ {
		db.BeginBatch()
		r.Insert(model.Tuple{int64(i), "x"})
		db.EndBatch()
	}
	want := signature(db)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := signature(s2.DB()); got != want {
		t.Fatalf("SyncEvery recovery differs\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMaybeCheckpoint rotates exactly at the configured cadence.
func TestMaybeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db := s.DB()
	r, _ := db.CreateTable(keyedSchema("R"))
	rotated := 0
	for i := 0; i < 12; i++ {
		db.BeginBatch()
		r.Insert(model.Tuple{int64(i), "x"})
		db.EndBatch()
		did, err := s.MaybeCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if did {
			rotated++
		}
	}
	// 13 logged batches (CreateTable publishes one): rotations at >=5
	// pending. Exact count depends on where DDL lands; at least two.
	if rotated < 2 {
		t.Fatalf("MaybeCheckpoint rotated %d times over 12 batches with cadence 5", rotated)
	}
	if _, err := os.Stat(ckptPath(dir, s.gen)); err != nil {
		t.Fatalf("latest checkpoint missing: %v", err)
	}
}

// asOfSignature renders table R's sorted rows at one retained epoch.
func asOfSignature(t *testing.T, db *relstore.Database, epoch uint64) string {
	t.Helper()
	snap, err := db.SnapshotAt(epoch)
	if err != nil {
		t.Fatalf("SnapshotAt(%d): %v", epoch, err)
	}
	defer snap.Close()
	sig := ""
	for _, row := range snap.MustTable("R").SortedRows() {
		sig += model.EncodeDatums(row) + ";"
	}
	return sig
}

// TestHistorySurvivesRestart commits epochs with retention on, takes a
// checkpoint mid-history, commits more, and reopens: every retained
// epoch must answer identically before and after recovery — including
// epochs older than the checkpoint, whose versions travel inside it.
func TestHistorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Retain: relstore.RetainAll})
	if err != nil {
		t.Fatal(err)
	}
	db := s.DB()
	r, err := db.CreateTable(keyedSchema("R"))
	if err != nil {
		t.Fatal(err)
	}
	var epochs []uint64
	commit := func(mutate func()) {
		db.BeginBatch()
		mutate()
		db.EndBatch()
		epochs = append(epochs, db.Epoch())
	}
	commit(func() { r.Insert(model.Tuple{int64(1), "a"}) })
	commit(func() { r.Insert(model.Tuple{int64(2), "b"}) })
	commit(func() {
		r.Delete([]model.Datum{int64(1)})
		r.Insert(model.Tuple{int64(1), "a2"})
	})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint history arrives through log replay.
	commit(func() { r.Delete([]model.Datum{int64(2)}) })
	commit(func() { r.Insert(model.Tuple{int64(3), "c"}) })

	want := make(map[uint64]string, len(epochs))
	for _, e := range epochs {
		want[e] = asOfSignature(t, db, e)
	}
	floor := db.RetentionFloor()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Retain: relstore.RetainAll})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	re := s2.DB()
	if got := re.RetentionFloor(); got != floor {
		t.Fatalf("recovered floor %d, want %d", got, floor)
	}
	for _, e := range epochs {
		if got := asOfSignature(t, re, e); got != want[e] {
			t.Errorf("epoch %d after restart:\ngot:  %s\nwant: %s", e, got, want[e])
		}
	}
	// Epoch stamps replayed exactly: the recovered store publishes at
	// the same epoch the original did.
	if got, wantE := re.Epoch(), epochs[len(epochs)-1]; got != wantE {
		t.Errorf("recovered epoch %d, want %d", got, wantE)
	}
}

// TestHistoryFiniteHorizonAcrossRestart reopens a finite-horizon store
// and checks the floor holds: retained epochs answer, swept ones
// reject.
func TestHistoryFiniteHorizonAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const depth = 3
	s, err := Open(dir, Options{Retain: depth})
	if err != nil {
		t.Fatal(err)
	}
	db := s.DB()
	r, err := db.CreateTable(keyedSchema("R"))
	if err != nil {
		t.Fatal(err)
	}
	var epochs []uint64
	for i := 0; i < 10; i++ {
		db.BeginBatch()
		r.Delete([]model.Datum{int64(1)})
		r.Insert(model.Tuple{int64(1), fmt.Sprintf("g%d", i)})
		db.EndBatch()
		epochs = append(epochs, db.Epoch())
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	floor := db.RetentionFloor()
	want := make(map[uint64]string)
	for _, e := range epochs {
		if e >= floor {
			want[e] = asOfSignature(t, db, e)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Retain: depth})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	re := s2.DB()
	for _, e := range epochs {
		if sig, ok := want[e]; ok {
			if got := asOfSignature(t, re, e); got != sig {
				t.Errorf("epoch %d after restart: got %s, want %s", e, got, sig)
			}
			continue
		}
		if _, err := re.SnapshotAt(e); err == nil {
			t.Errorf("swept epoch %d answered after restart", e)
		}
	}
}
