package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/relstore"
)

// Batch is one committed relstore batch as stored in the log: the
// epoch it published and its mutations in execution order. Rows and
// keys reuse the canonical self-delimiting datum encoding
// (model.AppendDatum), so log records round-trip exactly and a
// replayed key is byte-identical to the one the primary-key map hashed
// on the original run.
type Batch struct {
	Epoch uint64
	Ops   []relstore.LoggedOp
}

// Payload byte layout (all integers uvarint, strings length-prefixed):
//
//	batch   := epoch nops op*
//	op      := kind table body
//	body    := row            (OpInsert, OpDeleteRow — EncodeDatums of the tuple)
//	         | key            (OpDeleteKey — EncodeDatums of the key attributes)
//	         | schema         (OpCreateTable)
//	         | ε              (OpDropTable)
//	schema  := ncols (name type)* nkey keypos*
//	string  := len bytes

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendSchema(buf []byte, sc *relstore.TableSchema) []byte {
	buf = appendUvarint(buf, uint64(len(sc.Columns)))
	for _, c := range sc.Columns {
		buf = appendString(buf, c.Name)
		buf = appendUvarint(buf, uint64(c.Type))
	}
	buf = appendUvarint(buf, uint64(len(sc.Key)))
	for _, k := range sc.Key {
		buf = appendUvarint(buf, uint64(k))
	}
	return buf
}

// AppendBatch appends the encoded batch to buf and returns it.
func AppendBatch(buf []byte, epoch uint64, ops []relstore.LoggedOp) []byte {
	buf = appendUvarint(buf, epoch)
	buf = appendUvarint(buf, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		buf = append(buf, byte(op.Kind))
		buf = appendString(buf, op.Table)
		switch op.Kind {
		case relstore.OpInsert, relstore.OpDeleteRow:
			buf = appendString(buf, model.EncodeDatums(op.Row))
		case relstore.OpDeleteKey:
			buf = appendString(buf, op.Key)
		case relstore.OpCreateTable:
			buf = appendSchema(buf, op.Schema)
		case relstore.OpDropTable:
		default:
			panic(fmt.Sprintf("wal: unknown op kind %d", op.Kind))
		}
	}
	return buf
}

// decoder walks an untrusted payload; every read is bounds-checked so
// arbitrary bytes decode to an error, never a panic.
type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", fmt.Errorf("wal: string length %d exceeds remaining %d bytes", n, len(d.b))
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *decoder) schema() (*relstore.TableSchema, error) {
	ncols, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > uint64(len(d.b)) { // each column costs >= 1 byte
		return nil, fmt.Errorf("wal: column count %d exceeds payload", ncols)
	}
	sc := &relstore.TableSchema{Columns: make([]model.Column, ncols)}
	for i := range sc.Columns {
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		typ, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		sc.Columns[i] = model.Column{Name: name, Type: model.DatumType(typ)}
	}
	nkey, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nkey > ncols {
		return nil, fmt.Errorf("wal: key width %d exceeds %d columns", nkey, ncols)
	}
	for i := uint64(0); i < nkey; i++ {
		k, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if k >= ncols {
			return nil, fmt.Errorf("wal: key position %d out of range", k)
		}
		sc.Key = append(sc.Key, int(k))
	}
	return sc, nil
}

// DecodeBatch parses one batch payload. Inserted rows are decoded to
// datums; delete keys and keyless delete rows stay in their canonical
// encoding (that is what replay compares against).
func DecodeBatch(payload []byte) (Batch, error) {
	d := decoder{b: payload}
	var b Batch
	var err error
	if b.Epoch, err = d.uvarint(); err != nil {
		return b, err
	}
	nops, err := d.uvarint()
	if err != nil {
		return b, err
	}
	if nops > uint64(len(d.b)) { // each op costs >= 1 byte
		return b, fmt.Errorf("wal: op count %d exceeds payload", nops)
	}
	b.Ops = make([]relstore.LoggedOp, 0, nops)
	for i := uint64(0); i < nops; i++ {
		if len(d.b) == 0 {
			return b, fmt.Errorf("wal: truncated op")
		}
		op := relstore.LoggedOp{Kind: relstore.OpKind(d.b[0])}
		d.b = d.b[1:]
		if op.Table, err = d.str(); err != nil {
			return b, err
		}
		switch op.Kind {
		case relstore.OpInsert:
			enc, err := d.str()
			if err != nil {
				return b, err
			}
			if op.Row, err = model.DecodeDatums(enc); err != nil {
				return b, err
			}
		case relstore.OpDeleteRow, relstore.OpDeleteKey:
			// Kept encoded: replay matches on canonical encodings.
			if op.Key, err = d.str(); err != nil {
				return b, err
			}
		case relstore.OpCreateTable:
			if op.Schema, err = d.schema(); err != nil {
				return b, err
			}
			op.Schema.Name = op.Table
		case relstore.OpDropTable:
		default:
			return b, fmt.Errorf("wal: unknown op kind %d", op.Kind)
		}
		b.Ops = append(b.Ops, op)
	}
	if len(d.b) != 0 {
		return b, fmt.Errorf("wal: %d trailing bytes after batch", len(d.b))
	}
	return b, nil
}

// Checkpoint file records. The first record is a header, then the row
// dictionary in one or more frames, then one record per table, then a
// trailer; a checkpoint missing its trailer is rejected as incomplete.
//
//	header  := magic gen epoch floor ndict ntables
//	dict    := 'D' start nrows row*      (rows start..start+nrows-1)
//	table   := 'T' name schema nrows (ref born died)*
//	trailer := trailerMagic
//
// floor is the retention floor at the cut (0 = retention off); born
// and died are each version's epoch stamps (died 0 = live at the cut),
// so restored tables answer SnapshotAt for every epoch in
// [floor, epoch] exactly as the original did — history survives the
// restart. ref is a uvarint dictionary index.
//
// The dictionary holds every distinct row once; tables are streams of
// references into it. An exchanged instance stores the same tuple in
// many tables — the public copy and the provenance copies at every
// propagation hop — so writing (and at restart, decoding) each copy
// separately multiplies the checkpoint's size and the restart's datum
// decode cost by the duplication factor (~9× on the fan workload).
// With the dictionary, a duplicated row costs one varint to store and
// one slice index to restore, and the restored tables share the
// tuple's backing storage the way a live instance does.
//
// Dictionary frames carry their absolute start index and must cover
// 0..ndict-1 in order with no gaps or overlaps: the reader hands each
// frame to a decode worker writing a disjoint range of the shared
// dictionary slice, so sequential coverage is what makes that safe
// against crafted files. All dictionary frames precede all table
// records; the reader barriers on the dictionary being fully decoded
// before any table record is resolved.

const (
	ckptMagic   = "proql-ckpt-4"
	ckptTrailer = "proql-ckpt-end"

	// ckptRecDict / ckptRecTable discriminate checkpoint body records.
	ckptRecDict  = 'D'
	ckptRecTable = 'T'

	// ckptDictFrameTarget bounds a dictionary frame's payload so frame
	// decoding parallelizes across workers.
	ckptDictFrameTarget = 512 << 10
)

// Checkpoint rows use a binary datum encoding, not the canonical text
// one: the canonical form exists for identity (log replay matches keys
// byte-for-byte), but checkpoint rows are only ever decoded back into
// datums, and at restart the decoder is the hot loop — parsing
// millions of textual int64s costs more than the rest of the load.
// Fixed-width little-endian numbers decode in one move.
//
//	bdatum := 'n' | 'T' | 'F'
//	        | 'i' int64:8LE
//	        | 'f' float64:8LE
//	        | 's' len:uvarint bytes
func appendBinDatum(buf []byte, d model.Datum) []byte {
	switch v := d.(type) {
	case nil:
		return append(buf, 'n')
	case bool:
		if v {
			return append(buf, 'T')
		}
		return append(buf, 'F')
	case int64:
		buf = append(buf, 'i')
		return binary.LittleEndian.AppendUint64(buf, uint64(v))
	case float64:
		buf = append(buf, 'f')
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	case string:
		buf = append(buf, 's')
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		return append(buf, v...)
	default:
		panic(fmt.Sprintf("wal: unsupported datum type %T", d))
	}
}

// appendBinDatums appends a whole row: datum count, then each datum.
func appendBinDatums(buf []byte, row model.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, d := range row {
		buf = appendBinDatum(buf, d)
	}
	return buf
}

// decodeBinDatums parses one binary row from the head of b into dst
// (an arena), returning the extended arena and the remaining bytes.
// String datums are copied out of b.
func decodeBinDatums(dst []model.Datum, b []byte) ([]model.Datum, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return dst, b, fmt.Errorf("wal: truncated row header")
	}
	b = b[sz:]
	if n > uint64(len(b)) { // each datum costs >= 1 byte
		return dst, b, fmt.Errorf("wal: row datum count %d exceeds payload", n)
	}
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return dst, b, fmt.Errorf("wal: truncated datum")
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case 'n':
			dst = append(dst, nil)
		case 'T':
			dst = append(dst, true)
		case 'F':
			dst = append(dst, false)
		case 'i':
			if len(b) < 8 {
				return dst, b, fmt.Errorf("wal: truncated int datum")
			}
			dst = append(dst, int64(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case 'f':
			if len(b) < 8 {
				return dst, b, fmt.Errorf("wal: truncated float datum")
			}
			dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(b)))
			b = b[8:]
		case 's':
			l, sz := binary.Uvarint(b)
			if sz <= 0 || l > uint64(len(b)-sz) {
				return dst, b, fmt.Errorf("wal: truncated string datum")
			}
			dst = append(dst, string(b[sz:sz+int(l)]))
			b = b[sz+int(l):]
		default:
			return dst, b, fmt.Errorf("wal: unknown binary datum tag %q", tag)
		}
	}
	return dst, b, nil
}

// appendCkptHeader encodes the checkpoint header record.
func appendCkptHeader(buf []byte, gen, epoch, floor uint64, ndict, ntables int) []byte {
	buf = appendString(buf, ckptMagic)
	buf = appendUvarint(buf, gen)
	buf = appendUvarint(buf, epoch)
	buf = appendUvarint(buf, floor)
	buf = appendUvarint(buf, uint64(ndict))
	return appendUvarint(buf, uint64(ntables))
}

func decodeCkptHeader(payload []byte) (gen, epoch, floor, ndict, ntables uint64, err error) {
	d := decoder{b: payload}
	magic, err := d.str()
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if magic != ckptMagic {
		return 0, 0, 0, 0, 0, fmt.Errorf("wal: bad checkpoint magic %q", magic)
	}
	if gen, err = d.uvarint(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if epoch, err = d.uvarint(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if floor, err = d.uvarint(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if ndict, err = d.uvarint(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if ntables, err = d.uvarint(); err != nil {
		return 0, 0, 0, 0, 0, err
	}
	return gen, epoch, floor, ndict, ntables, nil
}

// peekCkptDictFrame parses a dictionary frame's header without
// touching its rows: the reader validates sequential coverage before
// handing the frame to a decode worker.
func peekCkptDictFrame(payload []byte) (start, nrows uint64, err error) {
	d := decoder{b: payload}
	if len(d.b) == 0 || d.b[0] != ckptRecDict {
		return 0, 0, fmt.Errorf("wal: not a dictionary frame")
	}
	d.b = d.b[1:]
	if start, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if nrows, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if nrows > uint64(len(d.b)) { // each row record costs >= 1 byte
		return 0, 0, fmt.Errorf("wal: dictionary frame row count %d exceeds payload", nrows)
	}
	return start, nrows, nil
}

// decodeCkptDictFrame decodes a dictionary frame's rows into
// dict[start : start+nrows]. The destination range was validated by
// the reader; datums land in one arena per frame so a frame costs one
// slice-header allocation per row and nothing else.
func decodeCkptDictFrame(payload []byte, dict []model.Tuple) error {
	start, nrows, err := peekCkptDictFrame(payload)
	if err != nil {
		return err
	}
	d := decoder{b: payload}
	d.b = d.b[1:]
	if _, err := d.uvarint(); err != nil {
		return err
	}
	if _, err := d.uvarint(); err != nil {
		return err
	}
	hint := nrows * 4
	if max := uint64(len(d.b)); hint > max { // every datum encoding is >= 1 byte
		hint = max
	}
	arena := make([]model.Datum, 0, hint)
	for i := uint64(0); i < nrows; i++ {
		s := len(arena)
		if arena, d.b, err = decodeBinDatums(arena, d.b); err != nil {
			return err
		}
		dict[start+i] = model.Tuple(arena[s:len(arena):len(arena)])
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wal: %d trailing bytes after dictionary frame", len(d.b))
	}
	return nil
}

// appendCkptTable encodes one table record: named schema, then the
// version count, then per version its dictionary reference and epoch
// stamps. refs and vers are parallel (vers supplies the stamps, refs
// the dictionary index of the row content).
func appendCkptTable(buf []byte, name string, sc *relstore.TableSchema, refs []uint64, vers []relstore.Version) []byte {
	buf = append(buf, ckptRecTable)
	buf = appendString(buf, name)
	buf = appendSchema(buf, sc)
	buf = appendUvarint(buf, uint64(len(refs)))
	for i, r := range refs {
		buf = appendUvarint(buf, r)
		buf = appendUvarint(buf, vers[i].Born)
		buf = appendUvarint(buf, vers[i].Died)
	}
	return buf
}

// ckptTable is one decoded checkpoint table record. Its row versions
// alias the shared dictionary: tables restored from the same
// checkpoint share tuple storage exactly as the live instance they
// snapshot did.
type ckptTable struct {
	schema *relstore.TableSchema
	vers   []relstore.Version
}

func decodeCkptTable(payload []byte, dict []model.Tuple) (ckptTable, error) {
	d := decoder{b: payload}
	var ct ckptTable
	if len(d.b) == 0 || d.b[0] != ckptRecTable {
		return ct, fmt.Errorf("wal: not a table record")
	}
	d.b = d.b[1:]
	name, err := d.str()
	if err != nil {
		return ct, err
	}
	if ct.schema, err = d.schema(); err != nil {
		return ct, err
	}
	ct.schema.Name = name
	nrows, err := d.uvarint()
	if err != nil {
		return ct, err
	}
	if nrows > uint64(len(d.b))/3 { // each version costs >= 3 bytes (ref, born, died)
		return ct, fmt.Errorf("wal: row count %d exceeds payload", nrows)
	}
	ct.vers = make([]relstore.Version, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		ref, err := d.uvarint()
		if err != nil {
			return ct, err
		}
		if ref >= uint64(len(dict)) {
			return ct, fmt.Errorf("wal: dictionary reference %d out of range %d", ref, len(dict))
		}
		born, err := d.uvarint()
		if err != nil {
			return ct, err
		}
		died, err := d.uvarint()
		if err != nil {
			return ct, err
		}
		ct.vers = append(ct.vers, relstore.Version{Row: dict[ref], Born: born, Died: died})
	}
	if len(d.b) != 0 {
		return ct, fmt.Errorf("wal: %d trailing bytes after table record", len(d.b))
	}
	return ct, nil
}
