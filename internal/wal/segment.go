// Package wal is the durability layer behind the relstore: an
// append-only write-ahead log of committed batches plus generational
// checkpoints of full table contents. Restart cost is O(changed rows
// since the last checkpoint), not O(database): recovery loads the
// newest checkpoint, replays the current log segment's suffix, and
// hands the warm tables back to the exchange engine, which re-attaches
// its delta-evaluation state in O(rows) (datalog.WarmAttach) instead
// of re-deriving the world with a cold full run.
//
// On-disk layout, one generation live at a time:
//
//	<dir>/ckpt-<gen>.ckpt   full table snapshot (absent for gen with no checkpoint yet)
//	<dir>/wal-<gen>.log     batches committed after that checkpoint
//
// Both files are sequences of CRC-framed records:
//
//	[uint32 LE payload length][uint32 LE CRC-32C of payload][payload]
//
// A checkpoint rotates generations: snapshot → ckpt-(g+1).tmp → fsync
// → rename → fresh wal-(g+1).log → old generation deleted. The rename
// is the commit point, so a crash anywhere leaves either generation g
// fully intact or generation g+1 fully intact. Log appends are group
// committed: each batch is buffered and flushed with a single write,
// and the file is fsynced every SyncEvery batches.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// maxRecord bounds a single record payload (64 MiB). A length prefix
// beyond it is treated as a torn or corrupt tail, not an allocation.
const maxRecord = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the CRC frame for payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrames decodes consecutive frames from r, calling fn with each
// payload (valid only during the call). It returns the byte offset of
// the first incomplete or corrupt frame — the torn-tail truncation
// point — and a nil error: a damaged tail is an expected crash
// artifact, not a failure. Errors from fn abort the scan.
func readFrames(r io.Reader, fn func(payload []byte) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	var hdr [8]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			return off, nil
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != want {
			return off, nil
		}
		if err := fn(buf); err != nil {
			return off, err
		}
		off += 8 + int64(n)
	}
}

// segment is an append-only framed log file with group commit: every
// Append buffers the frame and flushes it in one write; the file is
// fsynced every syncEvery appends (and on Sync/Close).
type segment struct {
	f         *os.File
	bw        *bufio.Writer
	syncEvery int
	unsynced  int
	scratch   []byte
}

// openSegment opens (creating if needed) the log file for appending.
func openSegment(path string, syncEvery int) (*segment, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if syncEvery < 1 {
		syncEvery = 1
	}
	return &segment{f: f, bw: bufio.NewWriterSize(f, 1<<16), syncEvery: syncEvery}, nil
}

// Append writes one framed record and flushes it to the OS. Durability
// lags by at most syncEvery-1 records.
func (s *segment) Append(payload []byte) error {
	s.scratch = appendFrame(s.scratch[:0], payload)
	if _, err := s.bw.Write(s.scratch); err != nil {
		return err
	}
	if err := s.bw.Flush(); err != nil {
		return err
	}
	s.unsynced++
	if s.unsynced >= s.syncEvery {
		return s.Sync()
	}
	return nil
}

// Sync forces the file to stable storage.
func (s *segment) Sync() error {
	s.unsynced = 0
	return s.f.Sync()
}

// Close flushes, syncs, and closes the file.
func (s *segment) Close() error {
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// replayFile scans the framed records of path, truncating a torn tail
// in place. A missing file is an empty log. fn errors abort.
func replayFile(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	good, err := readFrames(f, fn)
	f.Close()
	if err != nil {
		return err
	}
	if good < st.Size() {
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
