package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/relstore"
)

// Options tunes a durable store.
type Options struct {
	// SyncEvery is the fsync cadence in committed batches; <= 1 syncs
	// every commit (full durability), larger values trade the tail of
	// the log for throughput.
	SyncEvery int
	// CheckpointEvery, when > 0, is the batch count at which
	// MaybeCheckpoint rotates generations.
	CheckpointEvery int
	// Retain is the time-travel retention depth in epochs applied to
	// the recovered database (relstore.RetainAll = unbounded, 0 = off).
	// With retention on, checkpoints carry the retained version history
	// and recovery replays batches at their original epochs, so
	// SnapshotAt answers the same epochs after a restart as before it.
	Retain uint64
}

// Store binds a relstore.Database to an on-disk generation: every
// committed batch is appended to the live log segment via the
// database's commit hook, and Checkpoint rotates to a fresh
// generation. Open recovers the database from the newest checkpoint
// plus the log suffix.
//
// The zero value is not usable; construct with Open.
type Store struct {
	dir  string
	opts Options
	db   *relstore.Database

	mu        sync.Mutex
	seg       *segment
	gen       uint64
	pending   int // batches logged since the last checkpoint
	lastEpoch uint64
	replayed  int // batches replayed by Open (stats)
	encBuf    []byte
	err       error // first append failure; surfaced by Err/Close
}

func ckptPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%d.ckpt", gen))
}

func logPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}

// Open recovers (or initialises) a durable database in dir: it loads
// the newest checkpoint generation if one exists, replays the
// generation's log suffix with torn-tail truncation, fast-forwards the
// epoch counter past everything on disk, and installs the commit hook
// so subsequent batches are logged. The returned store owns the
// database's commit hook; install any observers before writing.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Recovery is one allocation burst in which nearly everything
	// allocated stays live (the instance itself), so concurrent GC
	// cycles and mark assists only re-scan a growing live set to
	// reclaim almost nothing. Defer collection until the load is done;
	// peak heap is bounded by the instance plus the largest table's
	// decode buffer. The previous policy is restored on every path out.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	gen, hasCkpt, err := newestGeneration(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, gen: gen, db: relstore.NewDatabase()}
	var ckptEpoch, ckptFloor uint64
	if hasCkpt {
		if ckptEpoch, ckptFloor, err = s.loadCheckpoint(ckptPath(dir, gen)); err != nil {
			return nil, err
		}
	}
	s.lastEpoch = ckptEpoch
	// Retention is configured before the log replays so the replayed
	// history is retained as it lands; the floor recorded at the cut
	// rewinds past the checkpoint epoch when the file carries older
	// retained versions.
	s.db.FastForward(ckptEpoch)
	if opts.Retain != 0 {
		s.db.SetRetention(opts.Retain)
		if ckptFloor > 0 {
			s.db.RestoreHistoryFloor(ckptFloor)
		}
	}
	if err := s.replayLog(logPath(dir, gen), ckptEpoch); err != nil {
		return nil, err
	}
	s.db.FastForward(s.lastEpoch)
	if s.seg, err = openSegment(logPath(dir, gen), opts.SyncEvery); err != nil {
		return nil, err
	}
	removeStaleGenerations(dir, gen)
	s.db.SetCommitHook(s.onCommit)
	return s, nil
}

// removeStaleGenerations deletes files left behind by a crash between
// a checkpoint's commit point and its cleanup: older generations and
// abandoned .tmp checkpoints. Best-effort — recovery ignores them
// anyway (newest generation wins).
func removeStaleGenerations(dir string, live uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var g uint64
		if n, _ := fmt.Sscanf(name, "ckpt-%d.ckpt", &g); n == 1 && filepath.Ext(name) == ".ckpt" && g < live {
			os.Remove(filepath.Join(dir, name))
		} else if n, _ := fmt.Sscanf(name, "wal-%d.log", &g); n == 1 && filepath.Ext(name) == ".log" && g < live {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// newestGeneration scans dir for checkpoint and log files and returns
// the highest generation present. hasCkpt reports whether that
// generation has a checkpoint file (the first generation does not).
func newestGeneration(dir string) (gen uint64, hasCkpt bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, false, err
	}
	best := uint64(0)
	ckpts := map[uint64]bool{}
	for _, e := range ents {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "ckpt-%d.ckpt", &g); n == 1 && filepath.Ext(e.Name()) == ".ckpt" {
			ckpts[g] = true
			if g > best {
				best = g
			}
		} else if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &g); n == 1 && filepath.Ext(e.Name()) == ".log" {
			if g > best {
				best = g
			}
		}
	}
	return best, ckpts[best], nil
}

// loadCheckpoint applies a checkpoint file to the (empty) database and
// returns the epoch it snapshots. The trailer record is required: a
// file missing it is an incomplete write and rejected (the atomic
// rename protocol should make that impossible, but the reader does not
// rely on it).
//
// Table records decode and load concurrently: tables are independent
// (distinct names, one record each, same birth epoch under the open
// batch), so while the reader streams frames off disk, a worker pool
// turns them into loaded tables. The checkpoint load is the restart
// path's largest term — unlike the fixpoint a cold start pays, it
// parallelizes trivially.
func (s *Store) loadCheckpoint(path string) (uint64, uint64, error) {
	var (
		epoch      uint64
		floor      uint64
		ndict      uint64
		ntables    uint64
		dict       []model.Tuple
		dictFilled uint64
		seen       uint64
		state      int // 0 = header, 1 = dict frames, 2 = tables, 3 = done
	)
	nw := runtime.GOMAXPROCS(0)
	if nw > 8 {
		nw = 8
	}
	var wg sync.WaitGroup
	var loadMu sync.Mutex
	var loadErr error
	fail := func(err error) {
		loadMu.Lock()
		if loadErr == nil {
			loadErr = err
		}
		loadMu.Unlock()
	}
	firstErr := func() error {
		loadMu.Lock()
		defer loadMu.Unlock()
		return loadErr
	}
	spawn := func(work func(payload []byte)) chan<- []byte {
		jobs := make(chan []byte, nw)
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for payload := range jobs {
					work(payload)
				}
			}()
		}
		return jobs
	}
	var jobs chan<- []byte
	drain := func() error {
		if jobs != nil {
			close(jobs)
			wg.Wait()
			jobs = nil
		}
		return firstErr()
	}
	defer drain()

	// Dictionary frames decode into disjoint ranges of the shared dict
	// slice (coverage is validated sequentially by the reader below);
	// table records resolve their references only after every
	// dictionary worker has finished.
	decodeDict := func(payload []byte) {
		if err := decodeCkptDictFrame(payload, dict); err != nil {
			fail(err)
		}
	}
	loadTable := func(payload []byte) {
		ct, err := decodeCkptTable(payload, dict)
		if err != nil {
			fail(err)
			return
		}
		t, err := s.db.CreateTable(ct.schema)
		if err != nil {
			fail(err)
			return
		}
		if _, err := t.LoadVersions(ct.vers); err != nil {
			fail(err)
		}
	}

	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}

	err = replayFile(path, func(payload []byte) error {
		switch state {
		case 0:
			_, e, fl, nd, nt, err := decodeCkptHeader(payload)
			if err != nil {
				return err
			}
			// Every dictionary row costs at least one encoded byte, so a
			// header demanding more rows than the file holds bytes is
			// corrupt — checked before allocating the dictionary.
			if nd > uint64(fi.Size()) {
				return fmt.Errorf("wal: dictionary size %d exceeds checkpoint file", nd)
			}
			epoch, floor, ndict, ntables = e, fl, nd, nt
			dict = make([]model.Tuple, ndict)
			state = 1
			if ndict > 0 {
				jobs = spawn(decodeDict)
			}
			return nil
		case 1:
			if dictFilled < ndict {
				start, nrows, err := peekCkptDictFrame(payload)
				if err != nil {
					return err
				}
				if start != dictFilled || nrows == 0 || nrows > ndict-start {
					return fmt.Errorf("wal: dictionary frame covers %d+%d, want next row %d of %d", start, nrows, dictFilled, ndict)
				}
				dictFilled += nrows
				// The frame buffer is reused by the reader; hand the
				// workers their own copy.
				jobs <- append([]byte(nil), payload...)
				return nil
			}
			// Dictionary complete: barrier before any reference resolves.
			if err := drain(); err != nil {
				return err
			}
			state = 2
			if ntables > 0 {
				jobs = spawn(loadTable)
			}
			fallthrough
		case 2:
			if seen == ntables {
				if string(payload) != ckptTrailer {
					return fmt.Errorf("wal: bad checkpoint trailer in %s", path)
				}
				state = 3
				return nil
			}
			jobs <- append([]byte(nil), payload...)
			seen++
			return nil
		default:
			return fmt.Errorf("wal: record after checkpoint trailer in %s", path)
		}
	})
	if derr := drain(); err == nil {
		err = derr
	}
	if err != nil {
		return 0, 0, err
	}
	if state != 3 {
		return 0, 0, fmt.Errorf("wal: incomplete checkpoint %s (%d/%d dictionary rows, %d/%d tables, no trailer)", path, dictFilled, ndict, seen, ntables)
	}
	return epoch, floor, nil
}

// replayLog applies the log's batches to the database in commit order,
// skipping batches already covered by the checkpoint (a batch that
// published while the checkpoint was being cut appears in both). The
// file's torn tail, if any, is truncated in place.
func (s *Store) replayLog(path string, ckptEpoch uint64) error {
	return replayFile(path, func(payload []byte) error {
		b, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("wal: corrupt batch in %s: %w", path, err)
		}
		if b.Epoch > s.lastEpoch {
			s.lastEpoch = b.Epoch
		}
		if b.Epoch <= ckptEpoch {
			return nil
		}
		s.replayed++
		return s.applyBatch(b)
	})
}

// applyBatch replays one logged batch against the database. The epoch
// counter is fast-forwarded to just below the batch's original epoch
// first, so writes stamp (and the batch publishes at) exactly the
// epoch they committed under before the restart — epoch gaps and all.
// Retained history therefore lines up: SnapshotAt(e) after recovery
// reads the same cut as before it.
func (s *Store) applyBatch(b Batch) error {
	if b.Epoch > 0 {
		s.db.FastForward(b.Epoch - 1)
	}
	s.db.BeginBatch()
	defer s.db.EndBatch()
	for _, op := range b.Ops {
		switch op.Kind {
		case relstore.OpInsert:
			t, ok := s.db.Table(op.Table)
			if !ok {
				return fmt.Errorf("wal: insert into unknown table %q", op.Table)
			}
			if _, err := t.Insert(op.Row); err != nil {
				return err
			}
		case relstore.OpDeleteKey:
			t, ok := s.db.Table(op.Table)
			if !ok {
				return fmt.Errorf("wal: delete from unknown table %q", op.Table)
			}
			if _, err := t.DeleteEncoded(op.Key); err != nil {
				return err
			}
		case relstore.OpDeleteRow:
			t, ok := s.db.Table(op.Table)
			if !ok {
				return fmt.Errorf("wal: delete from unknown table %q", op.Table)
			}
			// One logged delete removes one matching row (multiset
			// semantics on keyless tables).
			done := false
			t.DeleteWhere(func(row model.Tuple) bool {
				if done || model.EncodeDatums(row) != op.Key {
					return false
				}
				done = true
				return true
			})
		case relstore.OpCreateTable:
			// Re-creating an existing name replays a drop+create pair
			// whose drop predates the checkpoint.
			s.db.DropTable(op.Table)
			if _, err := s.db.CreateTable(op.Schema); err != nil {
				return err
			}
		case relstore.OpDropTable:
			s.db.DropTable(op.Table)
		default:
			return fmt.Errorf("wal: unknown op kind %d", op.Kind)
		}
	}
	return nil
}

// onCommit is the database's commit hook: it appends the batch to the
// live segment. Append failures latch into s.err (the hook cannot
// return one) and surface on Err, Checkpoint, and Close.
func (s *Store) onCommit(epoch uint64, ops []relstore.LoggedOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.encBuf = AppendBatch(s.encBuf[:0], epoch, ops)
	if err := s.seg.Append(s.encBuf); err != nil && s.err == nil {
		s.err = err
	}
	s.pending++
	s.lastEpoch = epoch
}

// DB returns the recovered database. The store owns its commit hook.
func (s *Store) DB() *relstore.Database { return s.db }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Pending returns the number of batches logged since the last
// checkpoint (or open).
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Replayed returns how many batches Open replayed from the log suffix.
func (s *Store) Replayed() int { return s.replayed }

// Err returns the first background append failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Checkpoint writes a full snapshot of the database and rotates to a
// fresh generation: ckpt-(g+1).tmp → fsync → rename → new empty
// wal-(g+1).log → old generation removed. The rename is the commit
// point; a crash at any step leaves a recoverable directory. Commits
// racing the checkpoint block on the store mutex and land in the new
// generation's log (or, if they published before the snapshot was
// pinned, inside the checkpoint itself — replay skips batches the
// checkpoint epoch covers).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	snap := s.db.Snapshot()
	defer snap.Close()
	// The retention floor at the cut: dead versions still answerable
	// are dumped with their stamps and the floor is recorded in the
	// header so the recovered store answers the same epoch range.
	floor := s.db.RetentionFloor()
	newGen := s.gen + 1

	names := snap.TableNames()
	sort.Strings(names)

	// Pass 1: build the row dictionary and each table's reference
	// stream. Distinct rows append to the current dictionary frame;
	// duplicates (the same tuple stored in many tables — public and
	// provenance copies at every propagation hop) cost one reference.
	// Transient memory is bounded by the distinct row content plus one
	// word per row, a fraction of the instance it snapshots.
	dictIdx := make(map[string]uint64)
	var dictFrames [][]byte
	var cur []byte
	var curStart, curRows uint64
	finishFrame := func() {
		if curRows == 0 {
			return
		}
		frame := make([]byte, 0, len(cur)+binary.MaxVarintLen64*2+1)
		frame = append(frame, ckptRecDict)
		frame = appendUvarint(frame, curStart)
		frame = appendUvarint(frame, curRows)
		dictFrames = append(dictFrames, append(frame, cur...))
		curStart += curRows
		curRows = 0
		cur = cur[:0]
	}
	refs := make([][]uint64, len(names))
	vers := make([][]relstore.Version, len(names))
	var scratch []byte
	for i, name := range names {
		vs := snap.MustTable(name).Versions(floor)
		vers[i] = vs
		r := make([]uint64, len(vs))
		for j := range vs {
			scratch = appendBinDatums(scratch[:0], vs[j].Row)
			id, ok := dictIdx[string(scratch)]
			if !ok {
				id = uint64(len(dictIdx))
				dictIdx[string(scratch)] = id
				cur = append(cur, scratch...)
				curRows++
				if len(cur) >= ckptDictFrameTarget {
					finishFrame()
				}
			}
			r[j] = id
		}
		refs[i] = r
	}
	finishFrame()

	tmp := ckptPath(s.dir, newGen) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var buf []byte
	write := func(payload []byte) {
		if err != nil {
			return
		}
		buf = appendFrame(buf[:0], payload)
		_, err = f.Write(buf)
	}
	var rec []byte
	rec = appendCkptHeader(rec[:0], newGen, snap.Epoch(), floor, len(dictIdx), len(names))
	write(rec)
	for _, frame := range dictFrames {
		write(frame)
	}
	for i, name := range names {
		rec = appendCkptTable(rec[:0], name, snap.MustTable(name).Schema, refs[i], vers[i])
		write(rec)
	}
	write([]byte(ckptTrailer))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, ckptPath(s.dir, newGen)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	// The new generation is durable; swing the log and drop the old
	// generation. Failures past this point leave stale files that the
	// next Open ignores (newest generation wins).
	newSeg, err := openSegment(logPath(s.dir, newGen), s.opts.SyncEvery)
	if err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		newSeg.Close()
		return err
	}
	oldGen := s.gen
	s.seg = newSeg
	s.gen = newGen
	s.pending = 0
	os.Remove(logPath(s.dir, oldGen))
	os.Remove(ckptPath(s.dir, oldGen))
	return syncDir(s.dir)
}

// MaybeCheckpoint rotates generations when the pending batch count has
// reached Options.CheckpointEvery; it reports whether it did.
func (s *Store) MaybeCheckpoint() (bool, error) {
	if s.opts.CheckpointEvery <= 0 {
		return false, nil
	}
	s.mu.Lock()
	due := s.pending >= s.opts.CheckpointEvery
	s.mu.Unlock()
	if !due {
		return false, nil
	}
	return true, s.Checkpoint()
}

// Close flushes and closes the live segment. The database stays usable
// in memory, but further commits are not logged.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.SetCommitHook(nil)
	err := s.seg.Close()
	if s.err != nil {
		err = s.err
	}
	return err
}
