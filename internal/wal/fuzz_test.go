package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

// validLogBlob builds a well-formed log (DDL + inserts + deletes) as a
// fuzz seed, so mutations start from bytes that exercise the decoder's
// deep paths rather than dying at the frame header.
func validLogBlob() []byte {
	sc := keyedSchema("R")
	var blob, payload []byte
	payload = AppendBatch(payload[:0], 1, []relstore.LoggedOp{
		{Kind: relstore.OpCreateTable, Table: "R", Schema: sc},
		{Kind: relstore.OpInsert, Table: "R", Row: model.Tuple{int64(1), "a"}},
		{Kind: relstore.OpInsert, Table: "R", Row: model.Tuple{int64(2), "b"}},
	})
	blob = appendFrame(blob, payload)
	payload = AppendBatch(payload[:0], 2, []relstore.LoggedOp{
		{Kind: relstore.OpDeleteKey, Table: "R", Key: model.EncodeDatums([]model.Datum{int64(1)})},
		{Kind: relstore.OpDeleteRow, Table: "M", Row: model.Tuple{int64(9), int64(9)}},
		{Kind: relstore.OpDropTable, Table: "R"},
	})
	return appendFrame(blob, payload)
}

// FuzzWALReplay feeds arbitrary bytes to the full recovery path — a
// data directory whose log is the fuzz input — and requires it never
// panics: every outcome is either a recovered store or a clean error.
// Frames that survive the CRC but decode to garbage ops must surface
// as errors, and whatever Open accepts must reopen identically
// (recovery is idempotent).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(validLogBlob())
	blob := validLogBlob()
	f.Add(blob[:len(blob)-5]) // torn tail
	mut := append([]byte(nil), blob...)
	mut[9] ^= 0x40 // corrupt first payload byte (CRC catches it)
	f.Add(mut)
	f.Add(appendFrame(nil, []byte{0x07})) // valid frame, garbage batch
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0.log"), data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, Options{})
		if err != nil {
			return
		}
		sig := signature(s.DB())
		epoch := s.DB().Epoch()
		if err := s.Close(); err != nil {
			t.Fatalf("close after successful open: %v", err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen of accepted log failed: %v", err)
		}
		defer s2.Close()
		if got := signature(s2.DB()); got != sig {
			t.Fatalf("reopen diverged\nfirst:\n%s\nsecond:\n%s", sig, got)
		}
		if got := s2.DB().Epoch(); got < epoch {
			t.Fatalf("reopen epoch %d regressed below %d", got, epoch)
		}
	})
}
