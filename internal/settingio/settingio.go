// Package settingio serializes CDSS settings — peer relations, schema
// mappings, and local contributions — as JSON documents, so settings
// can be saved, shared, version-controlled, and loaded into a fresh
// system (which re-runs update exchange deterministically to rebuild
// the instance and its provenance).
package settingio

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/exchange"
	"repro/internal/model"
)

// Document is the on-disk form of a setting.
type Document struct {
	// Version guards future format changes.
	Version   int            `json:"version"`
	Relations []RelationDoc  `json:"relations"`
	Mappings  []MappingDoc   `json:"mappings"`
	Local     []LocalDataDoc `json:"local"`
}

// RelationDoc is a public relation schema.
type RelationDoc struct {
	Name    string      `json:"name"`
	Columns []ColumnDoc `json:"columns"`
	Key     []string    `json:"key"`
}

// ColumnDoc is one attribute.
type ColumnDoc struct {
	Name string `json:"name"`
	Type string `json:"type"` // int, float, string, bool
}

// MappingDoc is one schema mapping.
type MappingDoc struct {
	Name string    `json:"name"`
	Head []AtomDoc `json:"head"`
	Body []AtomDoc `json:"body"`
}

// AtomDoc is a relational atom.
type AtomDoc struct {
	Rel  string    `json:"rel"`
	Args []TermDoc `json:"args"`
}

// TermDoc is a variable or a typed constant. Exactly one of Var/Const
// is set.
type TermDoc struct {
	Var   string    `json:"var,omitempty"`
	Const *DatumDoc `json:"const,omitempty"`
}

// DatumDoc encodes a datum with its type; values are strings to keep
// 64-bit integers exact under JSON.
type DatumDoc struct {
	Type  string `json:"type"`
	Value string `json:"value"`
}

// LocalDataDoc holds one relation's local contributions.
type LocalDataDoc struct {
	Relation string       `json:"relation"`
	Rows     [][]DatumDoc `json:"rows"`
}

// Save serializes a system's schema and local contributions.
func Save(w io.Writer, sys *exchange.System) error {
	doc := Document{Version: 1}
	for _, r := range sys.Schema.PublicRelations() {
		rd := RelationDoc{Name: r.Name, Key: r.KeyNames()}
		for _, c := range r.Columns {
			rd.Columns = append(rd.Columns, ColumnDoc{Name: c.Name, Type: typeName(c.Type)})
		}
		doc.Relations = append(doc.Relations, rd)
	}
	for _, m := range sys.Schema.Mappings() {
		md := MappingDoc{Name: m.Name}
		for _, a := range m.Head {
			md.Head = append(md.Head, atomDoc(a))
		}
		for _, a := range m.Body {
			md.Body = append(md.Body, atomDoc(a))
		}
		doc.Mappings = append(doc.Mappings, md)
	}
	for _, r := range sys.Schema.PublicRelations() {
		lt, ok := sys.DB.Table(r.LocalName())
		if !ok || lt.Len() == 0 {
			continue
		}
		ld := LocalDataDoc{Relation: r.Name}
		for _, row := range lt.SortedRows() {
			var rd []DatumDoc
			for _, d := range row {
				dd, err := datumDoc(d)
				if err != nil {
					return fmt.Errorf("settingio: relation %s: %w", r.Name, err)
				}
				rd = append(rd, dd)
			}
			ld.Rows = append(ld.Rows, rd)
		}
		doc.Local = append(doc.Local, ld)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load parses a document, rebuilds the system, and runs update
// exchange.
func Load(r io.Reader, opts exchange.Options) (*exchange.System, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("settingio: %w", err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("settingio: unsupported version %d", doc.Version)
	}
	schema := model.NewSchema()
	for _, rd := range doc.Relations {
		cols := make([]model.Column, 0, len(rd.Columns))
		for _, c := range rd.Columns {
			t, err := typeOf(c.Type)
			if err != nil {
				return nil, fmt.Errorf("settingio: relation %s: %w", rd.Name, err)
			}
			cols = append(cols, model.Column{Name: c.Name, Type: t})
		}
		rel, err := model.NewRelation(rd.Name, cols, rd.Key...)
		if err != nil {
			return nil, fmt.Errorf("settingio: %w", err)
		}
		if err := schema.AddRelation(rel); err != nil {
			return nil, fmt.Errorf("settingio: %w", err)
		}
	}
	for _, md := range doc.Mappings {
		head := make([]model.Atom, 0, len(md.Head))
		for _, a := range md.Head {
			atom, err := docAtom(a)
			if err != nil {
				return nil, fmt.Errorf("settingio: mapping %s: %w", md.Name, err)
			}
			head = append(head, atom)
		}
		body := make([]model.Atom, 0, len(md.Body))
		for _, a := range md.Body {
			atom, err := docAtom(a)
			if err != nil {
				return nil, fmt.Errorf("settingio: mapping %s: %w", md.Name, err)
			}
			body = append(body, atom)
		}
		if err := schema.AddMapping(model.NewMultiHeadMapping(md.Name, head, body)); err != nil {
			return nil, fmt.Errorf("settingio: %w", err)
		}
	}
	sys, err := exchange.NewSystem(schema, opts)
	if err != nil {
		return nil, err
	}
	for _, ld := range doc.Local {
		rows := make([]model.Tuple, 0, len(ld.Rows))
		for _, rd := range ld.Rows {
			row := make(model.Tuple, 0, len(rd))
			for _, dd := range rd {
				d, err := docDatum(dd)
				if err != nil {
					return nil, fmt.Errorf("settingio: relation %s: %w", ld.Relation, err)
				}
				row = append(row, d)
			}
			rows = append(rows, row)
		}
		if err := sys.InsertLocal(ld.Relation, rows...); err != nil {
			return nil, fmt.Errorf("settingio: %w", err)
		}
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	return sys, nil
}

func typeName(t model.DatumType) string { return t.String() }

func typeOf(name string) (model.DatumType, error) {
	switch name {
	case "int":
		return model.TypeInt, nil
	case "float":
		return model.TypeFloat, nil
	case "string":
		return model.TypeString, nil
	case "bool":
		return model.TypeBool, nil
	}
	return 0, fmt.Errorf("unknown column type %q", name)
}

func atomDoc(a model.Atom) AtomDoc {
	out := AtomDoc{Rel: a.Rel}
	for _, t := range a.Args {
		if t.IsConst {
			dd, err := datumDoc(t.Const)
			if err != nil {
				// Mapping constants are validated datums; this is a
				// programming error.
				panic(err)
			}
			out.Args = append(out.Args, TermDoc{Const: &dd})
		} else {
			out.Args = append(out.Args, TermDoc{Var: t.Var})
		}
	}
	return out
}

func docAtom(a AtomDoc) (model.Atom, error) {
	atom := model.Atom{Rel: a.Rel}
	for _, td := range a.Args {
		switch {
		case td.Const != nil && td.Var != "":
			return model.Atom{}, fmt.Errorf("atom %s: term is both var and const", a.Rel)
		case td.Const != nil:
			d, err := docDatum(*td.Const)
			if err != nil {
				return model.Atom{}, err
			}
			atom.Args = append(atom.Args, model.C(d))
		case td.Var != "":
			atom.Args = append(atom.Args, model.V(td.Var))
		default:
			return model.Atom{}, fmt.Errorf("atom %s: empty term", a.Rel)
		}
	}
	return atom, nil
}

func datumDoc(d model.Datum) (DatumDoc, error) {
	switch v := d.(type) {
	case int64:
		return DatumDoc{Type: "int", Value: strconv.FormatInt(v, 10)}, nil
	case float64:
		return DatumDoc{Type: "float", Value: strconv.FormatFloat(v, 'g', -1, 64)}, nil
	case string:
		return DatumDoc{Type: "string", Value: v}, nil
	case bool:
		return DatumDoc{Type: "bool", Value: strconv.FormatBool(v)}, nil
	}
	return DatumDoc{}, fmt.Errorf("unsupported datum %T", d)
}

func docDatum(dd DatumDoc) (model.Datum, error) {
	switch dd.Type {
	case "int":
		v, err := strconv.ParseInt(dd.Value, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int %q", dd.Value)
		}
		return v, nil
	case "float":
		v, err := strconv.ParseFloat(dd.Value, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", dd.Value)
		}
		return v, nil
	case "string":
		return dd.Value, nil
	case "bool":
		v, err := strconv.ParseBool(dd.Value)
		if err != nil {
			return nil, fmt.Errorf("bad bool %q", dd.Value)
		}
		return v, nil
	}
	return nil, fmt.Errorf("unknown datum type %q", dd.Type)
}
