package settingio_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exchange"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/settingio"
	"repro/internal/workload"
)

func TestRoundTripRunningExample(t *testing.T) {
	orig := fixture.MustSystem(fixture.Options{IncludeM3: true})
	var buf bytes.Buffer
	if err := settingio.Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := settingio.Load(&buf, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt instance must be identical, relation by relation.
	for _, r := range orig.Schema.PublicRelations() {
		a := orig.DB.MustTable(r.Name).SortedRows()
		b := loaded.DB.MustTable(r.Name).SortedRows()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", r.Name, len(a), len(b))
		}
		for i := range a {
			if model.EncodeDatums(a[i]) != model.EncodeDatums(b[i]) {
				t.Errorf("%s row %d differs: %v vs %v", r.Name, i, a[i], b[i])
			}
		}
	}
	// Provenance identical per mapping.
	for _, m := range orig.Schema.Mappings() {
		a, err := orig.ProvRows(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.ProvRows(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("P_%s: %d vs %d rows", m.Name, len(a), len(b))
		}
	}
	// Queries behave identically.
	q := `EVALUATE DERIVABILITY OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`
	r1, err := proql.NewEngine(orig).ExecString(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := proql.NewEngine(loaded).ExecString(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Annotations) != len(r2.Annotations) {
		t.Errorf("annotations %d vs %d", len(r1.Annotations), len(r2.Annotations))
	}
}

func TestRoundTripWorkload(t *testing.T) {
	set, err := workload.Build(workload.Config{
		Topology:  workload.Branched,
		Profile:   workload.ProfileFan,
		NumPeers:  6,
		DataPeers: workload.DownstreamDataPeers(6, 2),
		BaseSize:  7,
		Seed:      31,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := settingio.Save(&buf, set.Sys); err != nil {
		t.Fatal(err)
	}
	loaded, err := settingio.Load(&buf, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.DB.TotalRows(), set.Sys.DB.TotalRows(); got != want {
		t.Errorf("total rows %d, want %d", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "hello",
		"bad version":     `{"version": 99}`,
		"unknown field":   `{"version": 1, "zzz": true}`,
		"bad column type": `{"version":1,"relations":[{"name":"R","columns":[{"name":"a","type":"blob"}],"key":["a"]}]}`,
		"bad datum": `{"version":1,
			"relations":[{"name":"R","columns":[{"name":"a","type":"int"}],"key":["a"]}],
			"local":[{"relation":"R","rows":[[{"type":"int","value":"xyz"}]]}]}`,
		"empty term": `{"version":1,
			"relations":[{"name":"R","columns":[{"name":"a","type":"int"}],"key":["a"]}],
			"mappings":[{"name":"m","head":[{"rel":"R","args":[{}]}],"body":[{"rel":"R","args":[{"var":"x"}]}]}]}`,
	}
	for name, doc := range cases {
		if _, err := settingio.Load(strings.NewReader(doc), exchange.Options{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	var a, b bytes.Buffer
	if err := settingio.Save(&a, sys); err != nil {
		t.Fatal(err)
	}
	if err := settingio.Save(&b, sys); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output is not deterministic")
	}
}
