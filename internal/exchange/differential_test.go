package exchange_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
)

// Differential testing in the PR-1/PR-2 style: on randomly generated
// CDSS settings (acyclic and cyclic mapping graphs, random base data)
// and random deletion batches, the delta-driven DeleteLocal must leave
// the database and provenance tables byte-identical to (a) the legacy
// whole-graph derivability walk and (b) a from-scratch re-exchange
// oracle over the surviving base data.

// delSetting is one randomly generated schema + base data, replayable
// onto fresh systems so each arm sees identical inputs.
type delSetting struct {
	arities  []int
	facts    [][]model.Tuple
	mappings []*model.Mapping
	opts     exchange.Options
}

func relName(i int) string { return fmt.Sprintf("r%d", i) }

// genDelSetting draws a random setting: 4 public relations with
// all-column keys over a tiny int domain, 2–5 mappings with 1–2 body
// atoms (projection mappings exercise virtual provenance relations,
// multi-atom ones materialized tables), and — on cyclic trials — a
// mutually-recursive mapping pair, the shape where counting-based
// maintenance breaks and the cyclic fallback must collapse whole
// components.
func genDelSetting(rng *rand.Rand, cyclic bool) delSetting {
	s := delSetting{}
	const nRels = 4
	const domain = 3
	for i := 0; i < nRels; i++ {
		s.arities = append(s.arities, 1+rng.Intn(2))
	}
	s.facts = make([][]model.Tuple, nRels)
	for i := 0; i < nRels; i++ {
		n := rng.Intn(6)
		for k := 0; k < n; k++ {
			row := make(model.Tuple, s.arities[i])
			for c := range row {
				row[c] = int64(rng.Intn(domain))
			}
			s.facts[i] = append(s.facts[i], row)
		}
	}
	pool := []string{"x", "y", "z"}
	nMaps := 2 + rng.Intn(3)
	for mi := 0; mi < nMaps; mi++ {
		var body []model.Atom
		varSet := map[string]bool{}
		nAtoms := 1 + rng.Intn(2)
		for ai := 0; ai < nAtoms; ai++ {
			ri := rng.Intn(nRels)
			args := make([]model.Term, s.arities[ri])
			for k := range args {
				if rng.Intn(10) < 7 {
					v := pool[rng.Intn(len(pool))]
					args[k] = model.V(v)
					varSet[v] = true
				} else {
					args[k] = model.C(int64(rng.Intn(domain)))
				}
			}
			body = append(body, model.Atom{Rel: relName(ri), Args: args})
		}
		if len(varSet) == 0 {
			// A mapping needs at least one provenance attribute.
			body[0].Args[0] = model.V("x")
			varSet["x"] = true
		}
		var bodyVars []string
		for _, v := range pool {
			if varSet[v] {
				bodyVars = append(bodyVars, v)
			}
		}
		hi := rng.Intn(nRels)
		hargs := make([]model.Term, s.arities[hi])
		for k := range hargs {
			if len(bodyVars) > 0 && rng.Intn(10) < 8 {
				hargs[k] = model.V(bodyVars[rng.Intn(len(bodyVars))])
			} else {
				hargs[k] = model.C(int64(rng.Intn(domain)))
			}
		}
		s.mappings = append(s.mappings, model.NewMapping(
			fmt.Sprintf("mm%d", mi),
			model.Atom{Rel: relName(hi), Args: hargs},
			body...))
	}
	if cyclic {
		// Two same-arity relations copying each other: tuples of the
		// pair support each other and survive exactly as long as some
		// external support remains.
		a, b := 0, 1
		for s.arities[a] != s.arities[b] {
			a, b = rng.Intn(len(s.arities)), rng.Intn(len(s.arities))
		}
		args := make([]model.Term, s.arities[a])
		for k := range args {
			args[k] = model.V(pool[k])
		}
		s.mappings = append(s.mappings,
			model.NewMapping("cycAB", model.Atom{Rel: relName(b), Args: args}, model.Atom{Rel: relName(a), Args: args}),
			model.NewMapping("cycBA", model.Atom{Rel: relName(a), Args: args}, model.Atom{Rel: relName(b), Args: args}),
		)
	}
	s.opts = exchange.Options{
		MaterializeAll: rng.Intn(2) == 0,
		Parallelism:    []int{0, 0, 3}[rng.Intn(3)],
		// Random shard counts thread the shard-parallel engine, hook,
		// and support-index layout through every differential that
		// builds from this generator.
		Shards: []int{0, 0, 2, 3, 8}[rng.Intn(5)],
	}
	return s
}

// build replays the setting onto a fresh system, optionally with a
// subset of the facts (the oracle arm's surviving base data).
func (s delSetting) build(t *testing.T, facts [][]model.Tuple) *exchange.System {
	t.Helper()
	schema := model.NewSchema()
	for i, ar := range s.arities {
		cols := make([]model.Column, ar)
		var keys []string
		for c := 0; c < ar; c++ {
			cols[c] = model.Column{Name: fmt.Sprintf("c%d", c), Type: model.TypeInt}
			keys = append(keys, cols[c].Name)
		}
		if err := schema.AddRelation(model.MustRelation(relName(i), cols, keys...)); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range s.mappings {
		if err := schema.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := exchange.NewSystem(schema, s.opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, rows := range facts {
		for _, row := range rows {
			if err := sys.InsertLocal(relName(i), row.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// signature renders the full storage state — every table's sorted rows
// plus every mapping's (possibly virtual) provenance rows — as one
// comparable string.
func signature(t *testing.T, sys *exchange.System) string {
	t.Helper()
	sig := ""
	for _, name := range sys.DB.TableNames() {
		sig += name + ":"
		for _, row := range sys.DB.MustTable(name).SortedRows() {
			sig += model.EncodeDatums(row) + ";"
		}
		sig += "\n"
	}
	for _, m := range sys.Schema.Mappings() {
		rows, err := sys.ProvRows(m.Name)
		if err != nil {
			t.Fatalf("ProvRows(%s): %v", m.Name, err)
		}
		encs := make([]string, len(rows))
		for i, row := range rows {
			encs[i] = model.EncodeDatums(row)
		}
		sortStrings(encs)
		sig += "P(" + m.Name + "):"
		for _, e := range encs {
			sig += e + ";"
		}
		sig += "\n"
	}
	return sig
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestDifferentialDeletion(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 70; trial++ {
		cyclic := trial%2 == 1
		s := genDelSetting(rng, cyclic)

		sysDelta := s.build(t, s.facts)
		sysLegacy := s.build(t, s.facts)

		// surviving[i] tracks the base rows not yet deleted, keyed by
		// encoding (all columns are the key).
		surviving := make([]map[string]model.Tuple, len(s.facts))
		for i, rows := range s.facts {
			surviving[i] = map[string]model.Tuple{}
			for _, row := range rows {
				surviving[i][model.EncodeDatums(row)] = row
			}
		}

		nBatches := 1 + rng.Intn(3)
		for batch := 0; batch < nBatches; batch++ {
			// Pick a relation and up to 2 of its surviving rows (plus,
			// sometimes, a key that does not exist).
			ri := rng.Intn(len(s.facts))
			var keys [][]model.Datum
			for enc, row := range surviving[ri] {
				if len(keys) >= 1+rng.Intn(2) {
					break
				}
				keys = append(keys, row)
				delete(surviving[ri], enc)
			}
			if rng.Intn(3) == 0 {
				missing := make([]model.Datum, s.arities[ri])
				for c := range missing {
					missing[c] = int64(99)
				}
				keys = append(keys, missing)
			}
			if len(keys) == 0 {
				continue
			}

			repDelta, err := sysDelta.DeleteLocal(relName(ri), keys...)
			if err != nil {
				t.Fatalf("trial %d batch %d: delta: %v", trial, batch, err)
			}
			repLegacy, err := sysLegacy.DeleteLocalLegacy(relName(ri), keys...)
			if err != nil {
				t.Fatalf("trial %d batch %d: legacy: %v", trial, batch, err)
			}
			if repDelta.LocalDeleted != repLegacy.LocalDeleted ||
				repDelta.TuplesDeleted != repLegacy.TuplesDeleted ||
				repDelta.DerivationsDeleted != repLegacy.DerivationsDeleted {
				t.Fatalf("trial %d batch %d: reports differ\ndelta  %+v\nlegacy %+v\nmappings: %v",
					trial, batch, repDelta, repLegacy, s.mappings)
			}
			if repDelta.TuplesDeleted != len(repDelta.DeletedTuples) ||
				repDelta.DerivationsDeleted != len(repDelta.DeletedDerivations) {
				t.Fatalf("trial %d batch %d: delta report lists inconsistent: %+v", trial, batch, repDelta)
			}

			oracleFacts := make([][]model.Tuple, len(s.facts))
			for i := range surviving {
				for _, row := range surviving[i] {
					oracleFacts[i] = append(oracleFacts[i], row)
				}
			}
			oracle := s.build(t, oracleFacts)

			sigDelta, sigLegacy, sigOracle := signature(t, sysDelta), signature(t, sysLegacy), signature(t, oracle)
			if sigDelta != sigOracle {
				t.Fatalf("trial %d batch %d (cyclic=%v): delta != oracle\nmappings: %v\ndelta:\n%s\noracle:\n%s",
					trial, batch, cyclic, s.mappings, sigDelta, sigOracle)
			}
			if sigLegacy != sigOracle {
				t.Fatalf("trial %d batch %d (cyclic=%v): legacy != oracle\nmappings: %v\nlegacy:\n%s\noracle:\n%s",
					trial, batch, cyclic, s.mappings, sigLegacy, sigOracle)
			}
		}
	}
}
