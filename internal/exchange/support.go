package exchange

import (
	"repro/internal/model"
)

// supportIndex is the persistent ref→derivation adjacency the delta-
// driven deletion propagator walks: for every derivation recorded in a
// provenance relation (materialized or virtual) it keeps the source and
// target tuples, and for every tuple the derivations using it as a
// source (uses) and producing it as a target (incoming).
//
// The index is partitioned into per-shard pools mirroring the engine's
// fact-space sharding: a derivation lives in the shard its head (first
// target) key hashes to — exactly the shard whose engine worker fires
// it — so the shard-parallel exchange hook appends derivations to its
// own shard's pools with no coordination. Single-shard systems keep
// the flat layout as shards[0] and pay nothing new. A tuple may be
// interned in several shards (as a source of derivations fired by
// different shards); its incoming chain, however, lives only in its
// home shard, since single-head mappings pin a derivation's target to
// the derivation's own shard. The deletion walk therefore probes every
// shard's adjacency per tuple (maintainDeltaMulti); with one shard it
// runs the original int32 walk untouched.
//
// Within a shard, tuples are interned to dense int32 ids (per-relation
// maps from the canonical key encoding), so the exchange hook adds a
// derivation with one map probe per atom — no TupleRef materialization
// on the hot path — and the propagation worklist runs on integer ids.
// The adjacency lists are intrusive linked lists over one shared edge
// pool per shard: appending an edge never allocates per tuple, only
// the two flat pool arrays grow (the exchange hook runs once per
// derivation, so GC pressure here is what the engine-comparison
// benchmarks see).
//
// The index is built once per System — populated by the exchange hooks
// as Run enumerates derivations, or rebuilt from the provenance tables
// on demand — and kept coherent by DeleteLocal as propagation removes
// tuples and derivations, so a deletion never re-reads the provenance
// tables: its cost scales with the affected subgraph, not the database.
type supportIndex struct {
	shards []*supportShard
}

func newSupportIndex(nShards int) *supportIndex {
	ix := &supportIndex{shards: make([]*supportShard, nShards)}
	for i := range ix.shards {
		ix.shards[i] = &supportShard{
			byRel:    make(map[string]map[string]int32),
			virtSeen: make(map[string]map[string]bool),
			atomFree: make(map[uint16][]int32),
		}
	}
	return ix
}

func (ix *supportIndex) nShards() int { return len(ix.shards) }

// liveDerivs reports the number of live derivation entries across all
// shards (tests).
func (ix *supportIndex) liveDerivs() int {
	n := 0
	for _, sh := range ix.shards {
		n += sh.live()
	}
	return n
}

// supportShard is one shard's pools of the support index.
type supportShard struct {
	// refs maps tuple id → ref; ids are never reclaimed (a deleted
	// tuple's id is reused if the tuple is ever re-derived).
	refs  []model.TupleRef
	byRel map[string]map[string]int32
	// usesHead and incomingHead are per-tuple heads (-1 = empty) into
	// the shared edge pool below. A derivation whose body references
	// the same tuple twice appears twice in that tuple's uses chain,
	// mirroring the per-occurrence pending counts of the propagation
	// worklist. Chains are LIFO (most recent derivation first).
	usesHead     []int32
	incomingHead []int32
	edgeDeriv    []int32 // edge → derivation index
	edgeNext     []int32 // edge → next edge in the same chain, or -1

	derivs []derivEntry
	// atomPool backs every entry's source/target ids (entries address
	// it by offset), so adding a derivation allocates nothing beyond
	// amortized pool growth.
	atomPool []int32
	// free lists tombstoned derivation slots for reuse; edgeFree lists
	// edges unlink spliced out of their chains, and atomFree lists
	// vacated atomPool segments per segment length. With all three
	// recycled, a system under sustained delete/re-derive churn grows
	// the pools with the live derivation count, not the total churn.
	free     []int32
	edgeFree []int32
	atomFree map[uint16][]int32
	// virtSeen dedups virtual derivations across re-runs by encoded
	// provenance row; materialized mappings dedup through their
	// provenance table's set semantics instead. A virtual derivation
	// always hashes to the same shard, so the per-shard maps partition
	// the dedup space.
	virtSeen map[string]map[string]bool
}

// derivEntry is one derivation node: a provenance-relation row plus the
// tuple ids it relates, stored as an atomPool segment of nAtoms ids of
// which the first nSources are body (source) tuples.
type derivEntry struct {
	mapping  string
	row      model.Tuple
	atomOff  int32
	nAtoms   uint16
	nSources uint16
	virtual  bool
	dead     bool
}

// sources and targets return an entry's id segments; the returned
// slices alias atomPool and must not be retained across adds.
func (ix *supportShard) sources(d *derivEntry) []int32 {
	return ix.atomPool[d.atomOff : d.atomOff+int32(d.nSources)]
}

func (ix *supportShard) targets(d *derivEntry) []int32 {
	return ix.atomPool[d.atomOff+int32(d.nSources) : d.atomOff+int32(d.nAtoms)]
}

// tupleID interns the tuple of rel with the given encoded key, passed
// as a scratch buffer: the probe allocates nothing when the tuple is
// already known.
func (ix *supportShard) tupleID(rel string, encKey []byte) int32 {
	m := ix.byRel[rel]
	if m == nil {
		m = make(map[string]int32)
		ix.byRel[rel] = m
	}
	if id, ok := m[string(encKey)]; ok {
		return id
	}
	return ix.intern(m, model.TupleRef{Rel: rel, Key: string(encKey)})
}

// tupleIDRef is tupleID for callers already holding a TupleRef.
func (ix *supportShard) tupleIDRef(ref model.TupleRef) int32 {
	m := ix.byRel[ref.Rel]
	if m == nil {
		m = make(map[string]int32)
		ix.byRel[ref.Rel] = m
	}
	if id, ok := m[ref.Key]; ok {
		return id
	}
	return ix.intern(m, ref)
}

// lookupID probes for a tuple's id without interning it (the
// multi-shard deletion walk asks every shard about every walked ref;
// shards that never saw the tuple must not grow).
func (ix *supportShard) lookupID(ref model.TupleRef) (int32, bool) {
	m := ix.byRel[ref.Rel]
	if m == nil {
		return 0, false
	}
	id, ok := m[ref.Key]
	return id, ok
}

func (ix *supportShard) intern(m map[string]int32, ref model.TupleRef) int32 {
	id := int32(len(ix.refs))
	m[ref.Key] = id
	ix.refs = append(ix.refs, ref)
	ix.usesHead = append(ix.usesHead, -1)
	ix.incomingHead = append(ix.incomingHead, -1)
	return id
}

// markVirtual records a virtual derivation's encoded row, reporting
// whether it was new.
func (ix *supportShard) markVirtual(mapping string, row model.Tuple) bool {
	seen := ix.virtSeen[mapping]
	if seen == nil {
		seen = make(map[string]bool)
		ix.virtSeen[mapping] = seen
	}
	enc := model.EncodeDatums(row)
	if seen[enc] {
		return false
	}
	seen[enc] = true
	return true
}

// add inserts a derivation entry relating atomIDs[:nSources] (body
// tuples) to atomIDs[nSources:] (head tuples) and links it into their
// chains. atomIDs may be a scratch buffer; it is copied. Callers are
// responsible for dedup (provenance-table insert result, or
// markVirtual).
func (ix *supportShard) add(mapping string, virtual bool, row model.Tuple, atomIDs []int32, nSources int) {
	var off int32
	if fl := ix.atomFree[uint16(len(atomIDs))]; len(fl) > 0 {
		off = fl[len(fl)-1]
		ix.atomFree[uint16(len(atomIDs))] = fl[:len(fl)-1]
		copy(ix.atomPool[off:], atomIDs)
	} else {
		off = int32(len(ix.atomPool))
		ix.atomPool = append(ix.atomPool, atomIDs...)
	}
	e := derivEntry{
		mapping:  mapping,
		virtual:  virtual,
		row:      row,
		atomOff:  off,
		nAtoms:   uint16(len(atomIDs)),
		nSources: uint16(nSources),
	}
	var di int32
	if n := len(ix.free); n > 0 {
		di = ix.free[n-1]
		ix.free = ix.free[:n-1]
		ix.derivs[di] = e
	} else {
		di = int32(len(ix.derivs))
		ix.derivs = append(ix.derivs, e)
	}
	for _, t := range atomIDs[:nSources] {
		ix.usesHead[t] = ix.newEdge(di, ix.usesHead[t])
	}
	for _, t := range atomIDs[nSources:] {
		ix.incomingHead[t] = ix.newEdge(di, ix.incomingHead[t])
	}
}

func (ix *supportShard) newEdge(di, next int32) int32 {
	if n := len(ix.edgeFree); n > 0 {
		e := ix.edgeFree[n-1]
		ix.edgeFree = ix.edgeFree[:n-1]
		ix.edgeDeriv[e] = di
		ix.edgeNext[e] = next
		return e
	}
	e := int32(len(ix.edgeDeriv))
	ix.edgeDeriv = append(ix.edgeDeriv, di)
	ix.edgeNext = append(ix.edgeNext, next)
	return e
}

// remove deletes a derivation entry, unlinking every occurrence of it
// from its tuples' chains (returning the edges and the atomPool
// segment to their free lists) and releasing its virtual-dedup mark
// (so a re-derivation after a later insert re-enters the index).
func (ix *supportShard) remove(di int32) {
	d := &ix.derivs[di]
	if d.dead {
		return
	}
	for _, t := range ix.sources(d) {
		ix.unlink(ix.usesHead, t, di)
	}
	for _, t := range ix.targets(d) {
		ix.unlink(ix.incomingHead, t, di)
	}
	if d.virtual {
		if seen := ix.virtSeen[d.mapping]; seen != nil {
			delete(seen, model.EncodeDatums(d.row))
		}
	}
	if d.nAtoms > 0 {
		ix.atomFree[d.nAtoms] = append(ix.atomFree[d.nAtoms], d.atomOff)
	}
	*d = derivEntry{dead: true}
	ix.free = append(ix.free, di)
}

// unlink removes every edge referencing di from head[t]'s chain,
// returning spliced-out edges to the free list.
func (ix *supportShard) unlink(head []int32, t, di int32) {
	p := &head[t]
	for *p != -1 {
		e := *p
		if ix.edgeDeriv[e] == di {
			*p = ix.edgeNext[e]
			ix.edgeFree = append(ix.edgeFree, e)
		} else {
			p = &ix.edgeNext[e]
		}
	}
}

// live reports the number of live derivation entries (tests).
func (ix *supportShard) live() int { return len(ix.derivs) - len(ix.free) }
