package exchange_test

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// Three-way differential for *interleaved* insert/delete workloads —
// the CDSS steady state the paper's update exchange targets. On
// randomly generated settings (acyclic and cyclic mapping graphs) the
// delta arm alternates DeleteLocal (journal repair) with
// InsertLocal+RunDelta and must never fall back to a full fixpoint:
// every run after the first reports Full=false, the persistent
// journals keep mirroring the tables, and after every step the
// database, provenance tables, and support index equal (a) a warm
// system doing full re-runs and (b) a from-scratch exchange oracle
// over the surviving base data.
func TestDifferentialInterleavedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 60; trial++ {
		cyclic := trial%2 == 1
		s := genDelSetting(rng, cyclic)

		// Split the base data: half seeds the initial exchange, the
		// rest arrives over the churn steps.
		initial := make([][]model.Tuple, len(s.facts))
		var later []struct {
			ri  int
			row model.Tuple
		}
		for i, rows := range s.facts {
			for _, row := range rows {
				if rng.Intn(2) == 0 {
					initial[i] = append(initial[i], row)
				} else {
					later = append(later, struct {
						ri  int
						row model.Tuple
					}{i, row})
				}
			}
		}

		sysDelta := s.build(t, initial)
		sysFull := s.build(t, initial)
		current := make([]map[string]model.Tuple, len(s.facts))
		for i, rows := range initial {
			current[i] = map[string]model.Tuple{}
			for _, row := range rows {
				current[i][model.EncodeDatums(row)] = row
			}
		}

		for step := 0; step < 8; step++ {
			// Delete up to two surviving base rows. With no pending
			// inserts buffered the repaired journals must mirror the
			// tables exactly after each deletion.
			nDel := rng.Intn(3)
			for d := 0; d < nDel; d++ {
				ri := rng.Intn(len(current))
				for enc, row := range current[ri] {
					delete(current[ri], enc)
					if _, err := sysDelta.DeleteLocal(relName(ri), row); err != nil {
						t.Fatal(err)
					}
					if _, err := sysFull.DeleteLocal(relName(ri), row); err != nil {
						t.Fatal(err)
					}
					if !sysDelta.DeltaReady() {
						t.Fatalf("trial %d step %d: deletion broke the delta chain (journal repair failed)", trial, step)
					}
					if err := sysDelta.JournalsMirrorTables(); err != nil {
						t.Fatalf("trial %d step %d: journals diverged from tables after deletion: %v", trial, step, err)
					}
					break
				}
			}

			// Insert up to two of the pending rows.
			nIns := rng.Intn(3)
			if nIns > len(later) {
				nIns = len(later)
			}
			for _, ins := range later[:nIns] {
				current[ins.ri][model.EncodeDatums(ins.row)] = ins.row
				if err := sysDelta.InsertLocal(relName(ins.ri), ins.row.Clone()); err != nil {
					t.Fatal(err)
				}
				if err := sysFull.InsertLocal(relName(ins.ri), ins.row.Clone()); err != nil {
					t.Fatal(err)
				}
			}
			later = later[nIns:]

			// Occasionally delete a row WHILE inserts are pending, to
			// exercise the pending-buffer purge (the deleted row may be
			// the one just buffered).
			if nIns > 0 && rng.Intn(4) == 0 {
				ri := rng.Intn(len(current))
				for enc, row := range current[ri] {
					delete(current[ri], enc)
					if _, err := sysDelta.DeleteLocal(relName(ri), row); err != nil {
						t.Fatal(err)
					}
					if _, err := sysFull.DeleteLocal(relName(ri), row); err != nil {
						t.Fatal(err)
					}
					break
				}
			}

			// Propagate. The delta arm must never pay a full fixpoint.
			report, err := sysDelta.RunDelta()
			if err != nil {
				t.Fatalf("trial %d step %d: RunDelta: %v", trial, step, err)
			}
			if report.Full {
				t.Fatalf("trial %d step %d: delta arm fell back to a full fixpoint", trial, step)
			}
			if err := sysDelta.JournalsMirrorTables(); err != nil {
				t.Fatalf("trial %d step %d: journals diverged from tables after delta run: %v", trial, step, err)
			}
			if err := sysFull.Run(); err != nil {
				t.Fatalf("trial %d step %d: full Run: %v", trial, step, err)
			}

			oracleFacts := make([][]model.Tuple, len(current))
			for i := range current {
				for _, row := range current[i] {
					oracleFacts[i] = append(oracleFacts[i], row)
				}
			}
			oracle := s.build(t, oracleFacts)
			sigDelta, sigFull, sigOracle := signature(t, sysDelta), signature(t, sysFull), signature(t, oracle)
			if sigDelta != sigOracle {
				t.Fatalf("trial %d step %d (cyclic=%v): delta != oracle\nmappings: %v\ndelta:\n%s\noracle:\n%s",
					trial, step, cyclic, s.mappings, sigDelta, sigOracle)
			}
			if sigFull != sigOracle {
				t.Fatalf("trial %d step %d (cyclic=%v): full != oracle\nmappings: %v\nfull:\n%s\noracle:\n%s",
					trial, step, cyclic, s.mappings, sigFull, sigOracle)
			}
			if sysDelta.HasSupportIndex() && oracle.HasSupportIndex() {
				if got, want := sysDelta.SupportSignature(), oracle.SupportSignature(); got != want {
					t.Fatalf("trial %d step %d: support index differs from from-scratch build\ndelta:\n%s\noracle:\n%s",
						trial, step, got, want)
				}
			}
		}
	}
}
