package exchange

import (
	"sort"

	"repro/internal/model"
)

// Test-only exports: white-box views of the support index so the
// differential tests can compare an incrementally maintained index
// against a freshly built one, and the churn test can bound pool
// growth.

// SupportSignature renders the live derivation entries of the support
// index — mapping, provenance row, source refs, target refs — as one
// sorted, comparable string. Empty when no index is present.
func (s *System) SupportSignature() string {
	if s.support == nil {
		return ""
	}
	var lines []string
	for _, ix := range s.support.shards {
		for di := range ix.derivs {
			d := &ix.derivs[di]
			if d.dead {
				continue
			}
			line := d.mapping + "|" + model.EncodeDatums(d.row) + "|S:"
			for _, t := range ix.sources(d) {
				line += ix.refs[t].Rel + "#" + ix.refs[t].Key + ";"
			}
			line += "|T:"
			for _, t := range ix.targets(d) {
				line += ix.refs[t].Rel + "#" + ix.refs[t].Key + ";"
			}
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// HasSupportIndex reports whether the system currently holds a support
// index.
func (s *System) HasSupportIndex() bool { return s.support != nil }

// EnsureSupport forces the lazy support-index rebuild from the
// provenance tables (the recovery differential compares a recovered
// system's rebuilt index against a never-crashed one's hook-maintained
// index).
func (s *System) EnsureSupport() error { return s.ensureSupport() }

// SupportPoolSizes reports the support index's pool lengths and free-
// list sizes, summed over shards: total derivation slots, live
// derivations, edge-pool length, free edges, atom-pool length. Zeroes
// when no index exists.
func (s *System) SupportPoolSizes() (derivSlots, live, edges, freeEdges, atomPool int) {
	if s.support == nil {
		return 0, 0, 0, 0, 0
	}
	for _, ix := range s.support.shards {
		derivSlots += len(ix.derivs)
		live += ix.live()
		edges += len(ix.edgeDeriv)
		freeEdges += len(ix.edgeFree)
		atomPool += len(ix.atomPool)
	}
	return
}

// JournalsMirrorTables flushes any deferred journal repairs and then
// verifies the compiled engine's persistent journals hold exactly the
// rows of their backing tables — the invariant deletion repair must
// preserve. Only meaningful when no pending inserts are buffered
// (freshly inserted rows reach the journals at the next delta run);
// nil when the program has not been compiled yet.
func (s *System) JournalsMirrorTables() error {
	if s.prog == nil {
		return nil
	}
	if err := s.flushDeadRows(); err != nil {
		return err
	}
	return s.prog.JournalMirrorsTables()
}
