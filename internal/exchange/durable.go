package exchange

import (
	"fmt"
	"runtime/debug"

	"repro/internal/model"
	"repro/internal/wal"
)

// OpenDurable opens (or creates) a durable system whose storage lives
// in dir: the database is recovered from the newest checkpoint plus
// the write-ahead log's suffix, and every subsequent committed batch
// is logged through the returned store. Restart cost is O(rows) to
// reload state plus O(changed rows since the last checkpoint) to
// replay — never a cold full exchange: the compiled engine re-attaches
// its persistent evaluation state directly from the recovered tables
// (datalog.WarmAttach), so the first Run after a restart is an
// ordinary delta run.
//
// The caller owns the store: Checkpoint to bound the replay suffix,
// Close before process exit. The store's commit hook is installed by
// this call; the system must not be mutated before OpenDurable
// returns.
func OpenDurable(schema *model.Schema, dir string, wopts wal.Options, opts Options) (*System, *wal.Store, error) {
	// A restart is one allocation burst where nearly everything
	// allocated stays live until the open returns — checkpoint load,
	// log replay, probe-index rebuild, warm attach. Concurrent GC
	// would repeatedly re-scan the growing live set to reclaim almost
	// nothing, so it is parked for the duration (wal.Open holds the
	// same guard for its own span; nesting restores correctly).
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	st, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, nil, err
	}
	db := st.DB()
	recovered := len(db.TableNames()) > 0
	sys, err := newSystemOn(db, schema, opts)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	if recovered {
		if err := sys.WarmAttach(); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	return sys, st, nil
}

// WarmAttach brings the in-memory derived state of a system whose
// tables were restored from disk up to what a never-restarted system
// would hold:
//
//   - the compiled engine's fact journals, key→position maps, and age
//     watermarks are seeded from the tables in O(rows), so the next
//     Run is delta-seeded instead of a cold full fixpoint;
//   - the pending delta buffer is recomputed as the local-contribution
//     rows whose public copy is missing — exactly the inserts whose
//     propagating run had not committed at the crash (a run commits as
//     one batch, so its effects are on disk entirely or not at all);
//   - the deletion-support index is dropped for a lazy rebuild from
//     the recovered provenance tables on the first DeleteLocal
//     (hook maintenance resumes afterwards).
//
// Legacy-engine systems have no persistent evaluation state; for them
// only the pending buffer is recovered.
func (s *System) WarmAttach() error {
	if err := s.recoverPending(); err != nil {
		return err
	}
	// The support index must never be live-but-empty over non-empty
	// provenance tables: ensureSupport rebuilds it on demand.
	s.support = nil
	if s.opts.UseLegacyEngine {
		return nil
	}
	if err := s.ensureCompiled(); err != nil {
		return err
	}
	// The recovered pending rows are in the tables but must seed the
	// next RunDelta as Δ — excluding them from the journal seed leaves
	// exactly the state a live system holds between an InsertLocal and
	// its run (journals mirror the tables as of the last completed
	// run), so the delta run appends them without duplication.
	var exclude map[string][]model.Tuple
	if len(s.pending) > 0 {
		exclude = make(map[string][]model.Tuple, len(s.pending))
		for rel, rows := range s.pending {
			r, ok := s.Schema.Relation(rel)
			if !ok {
				return fmt.Errorf("exchange: unknown relation %q in recovered pending delta", rel)
			}
			exclude[r.LocalName()] = rows
		}
	}
	s.prog.WarmAttach(exclude)
	s.deltaReady = true
	return nil
}

// recoverPending rebuilds the pending delta buffer from storage: a
// local-contribution row whose primary key is absent from its public
// relation was inserted but never propagated (the run that would have
// copied it never committed), so it seeds the next delta run.
func (s *System) recoverPending() error {
	for _, r := range s.Schema.PublicRelations() {
		lt, ok := s.DB.Table(r.LocalName())
		if !ok {
			continue
		}
		pt, ok := s.DB.Table(r.Name)
		if !ok {
			continue
		}
		var rows []model.Tuple
		lt.Iterate(func(row model.Tuple) bool {
			if _, found := pt.LookupKey(r.KeyOf(row)); !found {
				rows = append(rows, row)
			}
			return true
		})
		if len(rows) > 0 {
			if s.pending == nil {
				s.pending = make(map[string][]model.Tuple)
			}
			s.pending[r.Name] = rows
		}
	}
	return nil
}
