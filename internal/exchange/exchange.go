// Package exchange implements the subset of the ORCHESTRA update-
// exchange engine the paper builds on (Sections 2 and 4.1): executing
// the schema-mapping Datalog program to materialize the canonical
// universal solution at every peer, while recording one provenance-
// relation row per derivation. It also implements the "superfluous
// provenance relation" optimization: projection mappings get virtual
// views instead of materialized tables.
package exchange

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/model"
	"repro/internal/relstore"
)

// ProvTablePrefix prefixes provenance relation table names: mapping m1
// is stored in table "P_m1" (the paper's P^1).
const ProvTablePrefix = "P_"

// ProvRel describes the provenance relation of one mapping.
type ProvRel struct {
	Mapping *model.Mapping
	// Cols are the deduplicated key attributes of all source and
	// target atoms (Section 4.1).
	Cols []model.Column
	// Vars are the mapping variables corresponding to Cols.
	Vars []string
	// Virtual marks a superfluous provenance relation (projection
	// mapping): no table is materialized; rows are reconstructed from
	// the single source relation on demand.
	Virtual bool
	// TableName is the backing table ("P_<mapping>") when !Virtual.
	TableName string
}

// Options configures a System.
type Options struct {
	// MaterializeAll disables the superfluous-relation optimization,
	// materializing a provenance table even for projection mappings.
	// Used by the storage-overhead ablation.
	MaterializeAll bool
	// UseLegacyEngine evaluates the exchange program with the
	// tuple-at-a-time interpreting engine instead of the compiled
	// semi-naive engine; kept for differential testing and the
	// engine-comparison benchmarks.
	UseLegacyEngine bool
	// Parallelism is the compiled engine's worker count for the firing
	// passes (values below 2 run serially). Ignored by the legacy
	// engine. For sharded systems (Shards > 1) it bounds the shard
	// worker pool instead (0 means one worker per shard).
	Parallelism int
	// Shards partitions the engine's fact space into this many hash
	// shards evaluated in parallel (datalog.CompileSharded): each shard
	// owns its slice of every fact journal, probe index, and the
	// support-index pools, and the exchange hook runs shard-locally.
	// Values below 2 select the single-shard engine. Incompatible with
	// UseLegacyEngine, and requires single-head mappings (the compiler
	// rejects multi-head rules when sharded).
	Shards int
	// NoSupportIndex skips hook-maintenance of the deletion-support
	// index during Run, trading faster exchange for an O(database)
	// index rebuild on the first DeleteLocal (after which the hooks
	// resume keeping it current). For systems that never delete.
	NoSupportIndex bool
}

// System is one CDSS replica: the schema, the backing database, and the
// provenance relations.
type System struct {
	Schema *model.Schema
	DB     *relstore.Database
	Prov   map[string]*ProvRel // by mapping name
	opts   Options

	// prog is the exchange program compiled once on first Run and
	// reused by every subsequent fixpoint over this system; hookPlans
	// maps each mapping to its provenance table and the binding-slot
	// positions of its provenance attributes and atom keys. eng is the
	// compiled engine driving it, created alongside prog; its predicate
	// journals, indexes, and age watermarks persist across runs so
	// RunDelta can seed a fixpoint from newly inserted rows alone.
	prog      *datalog.Program
	hookPlans map[string]hookPlan
	eng       *datalog.Engine
	// hookFull is the firing callback maintaining provenance tables,
	// the support index (reusing the engine-surfaced head keys), and —
	// during delta runs — the insertion report. hookLean is the
	// provenance-only variant installed for full runs when no support
	// index is alive, so exchange skips the head-surfacing machinery
	// it would not consume. hookShard is the sharded-engine variant:
	// it runs concurrently across shards, so all mutable state is in
	// shardHook[shard], and provenance rows are buffered there and
	// flushed into the tables after the run (flushShardHooks) — during
	// the run the hook only reads the tables (a read-only duplicate
	// probe; within one run the engine's exactly-once enumeration
	// cannot fire the same provenance row twice).
	hookFull  datalog.HeadHook
	hookLean  datalog.SlotHook
	hookShard datalog.ShardHook
	shardHook []*shardHookState

	// pending buffers, per public relation, the local-contribution rows
	// InsertLocal actually stored since the last run — the Δ seed of
	// the next RunDelta. deltaReady reports that the engine state still
	// mirrors the tables; deletions keep it alive by repairing the
	// journals from the deletion report (repairJournals), so only run
	// errors and the legacy propagator clear it and force the next run
	// to a full fixpoint. collect, when non-nil, is the report the
	// hooks append insertion effects to (set only during delta runs).
	pending    map[string][]model.Tuple
	deltaReady bool
	collect    *InsertionReport
	// deadRows buffers, per predicate (local or public table name), the
	// encoded keys of rows deletion propagation removed from storage but
	// not yet from the persistent journals. DeleteLocal defers the
	// journal repair here — recording a key is O(1), keeping deletions
	// at their support-index cost — and the next RunDelta flushes the
	// batch into datalog.Program.ApplyDeletions before seeding, so the
	// repair's O(affected journals) cost is amortized into the run that
	// actually needs coherent journals.
	deadRows map[string][]string

	// support is the persistent ref→derivation index DeleteLocal
	// propagates over. It is populated by the Run hooks as exchange
	// enumerates derivations; nil means it must be rebuilt from the
	// provenance tables on the next deletion (after MaintainLegacy, or
	// when ref-plan compilation was not possible for this schema).
	support *supportIndex

	// Stats from the last Run.
	LastIterations  int
	LastDerivations int

	// inProbes is the per-relation reverse-edge probe index built once
	// at NewSystem (it depends only on the schema and the provenance
	// layout, never on the data). Caching it — and pre-building the
	// secondary indexes it probes — keeps the ASR query path free of
	// writes: a concurrent reader never triggers index construction.
	inProbes map[string][]IncomingProbe
}

// hookPlan is the precompiled provenance recipe for one mapping: which
// table receives the rows (nil for virtual provenance relations),
// which engine slots hold the provenance attributes, and — for the
// support index — each source/target atom's key columns resolved to
// slots, so the per-firing hook does no map or name lookups beyond one
// rule-ID fetch.
type hookPlan struct {
	table *relstore.Table
	slots []int
	// atoms lists the mapping's body atoms then head atoms; nSources
	// is the body count. Nil when ref plans could not be compiled.
	atoms    []atomPlan
	nSources int
}

// atomPlan builds one atom's TupleRef from a firing's slot buffer.
type atomPlan struct {
	rel  string
	cols []datalog.KeyCol
}

// shardCount normalizes the Shards option (0 and 1 are the
// single-shard engine).
func (o Options) shardCount() int {
	if o.Shards < 2 {
		return 1
	}
	return o.Shards
}

// shardHookState is one engine shard's private exchange-hook state:
// scratch buffers plus the provenance rows and report entries the
// shard's firings produced, merged in stable shard order after the
// run's final barrier.
type shardHookState struct {
	arena  model.TupleArena
	keyBuf []byte
	idBuf  []int32
	// provFresh buffers, per mapping, the fresh provenance rows this
	// shard derived; flushShardHooks inserts them into the provenance
	// tables once the engine is done (tables are read-only during a
	// sharded run).
	provFresh map[string][]model.Tuple
	// insTuples and insDerivs are the shard's slices of a delta run's
	// insertion report.
	insTuples []InsertedTuple
	insDerivs []InsertedDerivation
}

// NewSystem creates the storage layout for a schema: one table per
// public relation (keyed), one per local-contribution relation, and one
// provenance table per non-superfluous mapping (keyed on all columns,
// since a provenance row is identified by the whole derivation).
func NewSystem(schema *model.Schema, opts Options) (*System, error) {
	return newSystemOn(relstore.NewDatabase(), schema, opts)
}

// ensureTable returns the named table, creating it when absent. A
// pre-existing table (a durable database recovered from disk) must
// match the expected layout.
func ensureTable(db *relstore.Database, schema *relstore.TableSchema) error {
	t, ok := db.Table(schema.Name)
	if !ok {
		_, err := db.CreateTable(schema)
		return err
	}
	if len(t.Schema.Columns) != len(schema.Columns) || len(t.Schema.Key) != len(schema.Key) {
		return fmt.Errorf("exchange: recovered table %q has %d columns / %d key attrs, schema wants %d / %d",
			schema.Name, len(t.Schema.Columns), len(t.Schema.Key), len(schema.Columns), len(schema.Key))
	}
	for i, k := range schema.Key {
		if t.Schema.Key[i] != k {
			return fmt.Errorf("exchange: recovered table %q key mismatch at position %d", schema.Name, i)
		}
	}
	return nil
}

// newSystemOn builds the system over an existing database, creating
// whatever tables it does not already hold — the shared path of
// NewSystem (fresh in-memory database) and OpenDurable (database
// recovered from a checkpoint + log replay).
func newSystemOn(db *relstore.Database, schema *model.Schema, opts Options) (*System, error) {
	if opts.shardCount() > 1 && opts.UseLegacyEngine {
		return nil, fmt.Errorf("exchange: sharded execution requires the compiled engine (Shards=%d with UseLegacyEngine)", opts.Shards)
	}
	sys := &System{Schema: schema, DB: db, Prov: make(map[string]*ProvRel), opts: opts}
	if !opts.NoSupportIndex {
		sys.support = newSupportIndex(opts.shardCount())
	}
	for _, r := range schema.Relations() {
		if err := ensureTable(db, relstore.SchemaOf(r)); err != nil {
			return nil, err
		}
	}
	for _, m := range schema.Mappings() {
		pr, err := sys.provRelFor(m)
		if err != nil {
			return nil, err
		}
		sys.Prov[m.Name] = pr
		if !pr.Virtual {
			key := make([]int, len(pr.Cols))
			for i := range key {
				key[i] = i
			}
			if err := ensureTable(db, &relstore.TableSchema{
				Name:    pr.TableName,
				Columns: pr.Cols,
				Key:     key,
			}); err != nil {
				return nil, err
			}
		}
	}
	// Build the reverse-edge probe index now and pre-ensure every
	// secondary index it probes: query-time EnsureIndex was a hidden
	// write on the read-only ASR path, racing concurrent queries.
	probes, err := sys.IncomingProbes()
	if err != nil {
		return nil, err
	}
	sys.inProbes = probes
	for _, ps := range probes {
		for i := range ps {
			p := &ps[i]
			if !p.Prov.Virtual && len(p.Cols) > 0 {
				db.MustTable(p.Prov.TableName).EnsureIndex(p.Cols)
			}
		}
	}
	return sys, nil
}

// Probes returns the per-relation reverse-edge probe index computed at
// NewSystem. The map and its slices are shared and must not be
// mutated; every probed secondary index was pre-built, so probing is
// read-only.
func (s *System) Probes() map[string][]IncomingProbe { return s.inProbes }

// Snapshot returns a read-only view of the system pinned to the
// current storage epoch, plus a release function. Reads through the
// view (table lookups, provenance rows, leaf checks, probes) observe
// exactly the state committed when Snapshot was called, no matter
// what Run/RunDelta/DeleteLocal commit afterwards. The view carries
// only the fields the read path consults — schema, provenance layout,
// probe index, options — all immutable after NewSystem; the writer's
// journals, delta buffers, and support index are deliberately absent
// (copying them here would race with a concurrent commit mutating
// them). Mutating entry points on the view fail (its database rejects
// writes). Callers must invoke the release function when done;
// holding it only delays reclamation of deleted rows.
func (s *System) Snapshot() (*System, func()) {
	view, release, _ := s.snapView(s.DB.Snapshot(), nil)
	return view, release
}

// SnapshotAt is Snapshot pinned at a retained historical epoch (see
// relstore.Database.SnapshotAt): reads through the view observe the
// state as committed by that epoch. Epochs outside the retention
// window return *relstore.ErrEpochOutOfRange.
func (s *System) SnapshotAt(epoch uint64) (*System, func(), error) {
	snap, err := s.DB.SnapshotAt(epoch)
	return s.snapView(snap, err)
}

func (s *System) snapView(snap *relstore.Database, err error) (*System, func(), error) {
	if err != nil {
		return nil, nil, err
	}
	view := &System{
		Schema:   s.Schema,
		DB:       snap,
		Prov:     s.Prov,
		opts:     s.opts,
		inProbes: s.inProbes,
	}
	return view, snap.Close, nil
}

func (s *System) provRelFor(m *model.Mapping) (*ProvRel, error) {
	cols, vars, err := m.ProvenanceAttrs(s.Schema)
	if err != nil {
		return nil, err
	}
	pr := &ProvRel{
		Mapping:   m,
		Cols:      cols,
		Vars:      vars,
		TableName: ProvTablePrefix + m.Name,
	}
	if !s.opts.MaterializeAll && m.IsProjection() {
		// A single-source mapping's provenance rows are a projection
		// of the source relation: the source key attributes determine
		// the whole row (target keys are copies or constants).
		pr.Virtual = s.virtualizable(m, vars)
	}
	return pr, nil
}

// virtualizable checks that every provenance attribute of the
// projection mapping is available from the single body atom, so the
// provenance relation can be a view over the source.
func (s *System) virtualizable(m *model.Mapping, vars []string) bool {
	body := m.Body[0]
	bodyVars := make(map[string]bool)
	for _, t := range body.Args {
		if !t.IsConst && t.Var != "_" {
			bodyVars[t.Var] = true
		}
	}
	for _, v := range vars {
		if !bodyVars[v] {
			return false
		}
	}
	return true
}

// InsertLocal adds rows to a relation's local-contribution table. Rows
// actually stored (not primary-key duplicates) join the pending delta
// buffer, so the next RunDelta propagates exactly them.
func (s *System) InsertLocal(rel string, rows ...model.Tuple) error {
	r, ok := s.Schema.Relation(rel)
	if !ok {
		return fmt.Errorf("exchange: unknown relation %q", rel)
	}
	t, ok := s.DB.Table(r.LocalName())
	if !ok {
		return fmt.Errorf("exchange: no local table for %q", rel)
	}
	// One batch: a multi-row insert commits as a single epoch, so a
	// concurrent snapshot sees all of the rows or none of them.
	s.DB.BeginBatch()
	defer s.DB.EndBatch()
	for _, row := range rows {
		inserted, err := t.Insert(row)
		if err != nil {
			return err
		}
		if inserted {
			if s.pending == nil {
				s.pending = make(map[string][]model.Tuple)
			}
			s.pending[rel] = append(s.pending[rel], row)
		}
	}
	return nil
}

// LocalCopyRuleID names the copy rule L_R of relation R.
func LocalCopyRuleID(rel string) string { return "L_" + rel }

// Rules builds the full exchange program: local copy rules L_R plus all
// mapping rules.
func (s *System) Rules() []datalog.Rule {
	var rules []datalog.Rule
	for _, r := range s.Schema.PublicRelations() {
		args := make([]model.Term, r.Arity())
		for i := range args {
			args[i] = model.V(fmt.Sprintf("v%d", i))
		}
		rules = append(rules, datalog.NewRule(
			LocalCopyRuleID(r.Name),
			model.Atom{Rel: r.Name, Args: args},
			model.Atom{Rel: r.LocalName(), Args: args},
		))
	}
	for _, m := range s.Schema.Mappings() {
		rules = append(rules, datalog.RuleFromMapping(m))
	}
	return rules
}

// Run executes the exchange program to fixpoint, materializing every
// public relation and populating the provenance tables. The default
// engine is the compiled semi-naive one; the program is compiled once
// per system and reused by subsequent runs (incremental maintenance
// re-running the fixpoint pays no recompilation cost). A successful
// compiled run leaves the engine's journals mirroring the tables, so
// the next batch of InsertLocal rows can be propagated by RunDelta
// instead of a full re-fixpoint.
func (s *System) Run() error {
	// The whole fixpoint — public-relation materialization plus all
	// provenance rows — commits as one storage epoch: snapshots taken
	// while it runs observe the pre-run state only.
	s.DB.BeginBatch()
	defer s.DB.EndBatch()
	if s.opts.UseLegacyEngine {
		return s.runLegacy()
	}
	if err := s.ensureCompiled(); err != nil {
		return err
	}
	s.installHooks()
	s.deltaReady = false
	if err := s.eng.RunProgram(s.prog); err != nil {
		if s.opts.shardCount() > 1 {
			s.dropShardHooks()
		}
		return err
	}
	if s.opts.shardCount() > 1 {
		if err := s.flushShardHooks(nil); err != nil {
			s.invalidateDelta()
			s.support = nil
			return err
		}
	}
	s.LastIterations = s.eng.Iterations
	s.LastDerivations = s.eng.Derivations
	s.deltaReady = true
	s.pending = nil  // a full run consumed everything the tables hold
	s.deadRows = nil // journals reseeded from the tables; nothing stale
	return nil
}

// InsertionReport summarizes one RunDelta: what the delta propagation
// added, so consumers (the cached provenance graph, provgraph.
// ApplyInsertions) can patch instead of rebuilding.
type InsertionReport struct {
	// Full reports that RunDelta fell back to a full exchange — first
	// run, legacy engine, or engine state invalidated by an earlier
	// run error or legacy-propagator deletion (delta-driven DeleteLocal
	// repairs the journals and keeps delta runs alive). The insertion
	// lists below are empty then; cache holders must invalidate rather
	// than patch.
	Full bool

	// Iterations and Derivations are the engine stats of this run; for
	// delta runs Derivations counts only the new derivations.
	Iterations  int
	Derivations int

	// InsertedLocals lists the refs (public relation + key) of the base
	// tuples added to local-contribution tables since the last run —
	// the delta seed. A surviving public tuple gaining a local
	// contribution becomes a leaf even when nothing else changes.
	InsertedLocals []model.TupleRef
	// InsertedTuples lists the public-relation tuples the propagation
	// newly materialized, with their full rows.
	InsertedTuples []InsertedTuple
	// InsertedDerivations lists the new derivations as (mapping,
	// provenance-relation row) pairs, mirroring DeletedDerivation.
	InsertedDerivations []InsertedDerivation
}

// InsertedTuple is one newly materialized public tuple.
type InsertedTuple struct {
	Ref model.TupleRef
	Row model.Tuple
}

// InsertedDerivation identifies one new derivation: the mapping and its
// provenance-relation row.
type InsertedDerivation struct {
	Mapping string
	Row     model.Tuple
}

// RunDelta propagates the pending InsertLocal rows incrementally: the
// persistent engine state (fact journals, hash indexes, age
// watermarks) is kept alive between runs, and the semi-naive rounds
// are seeded from the pending local-delta rows only, so the fixpoint
// enumerates exactly the new derivations — inserting k rows into an
// exchanged system costs O(affected derivations), not O(database).
// The hooks extend the provenance tables and the deletion-support
// index exactly as a full run would, and the returned report lists
// everything added. Interleaved deletions do not break the chain of
// delta runs: DeleteLocal repairs the persistent journals from its
// deletion report, so a RunDelta after it still seeds from the pending
// rows alone. When no valid persistent state exists (first run, legacy
// engine, or an earlier error invalidated it) RunDelta falls back to a
// full Run and reports Full.
func (s *System) RunDelta() (*InsertionReport, error) {
	// One epoch per delta run (batches nest across the full-run
	// fallback): concurrent snapshots see the pre-delta state until
	// the run commits, then all of its effects at once.
	s.DB.BeginBatch()
	defer s.DB.EndBatch()
	if s.opts.UseLegacyEngine || !s.deltaReady || s.prog == nil || !s.prog.StateValid() {
		if err := s.Run(); err != nil {
			return nil, err
		}
		return &InsertionReport{Full: true, Iterations: s.LastIterations, Derivations: s.LastDerivations}, nil
	}
	if err := s.flushDeadRows(); err != nil {
		// Journal repair failed (the datalog layer invalidated its
		// state); reseed with a full run.
		if err := s.Run(); err != nil {
			return nil, err
		}
		return &InsertionReport{Full: true, Iterations: s.LastIterations, Derivations: s.LastDerivations}, nil
	}
	report := &InsertionReport{}
	if len(s.pending) == 0 {
		return report, nil
	}
	delta := make(map[string][]model.Tuple, len(s.pending))
	for rel, rows := range s.pending {
		r, ok := s.Schema.Relation(rel)
		if !ok {
			return nil, fmt.Errorf("exchange: unknown relation %q in pending delta", rel)
		}
		delta[r.LocalName()] = append(delta[r.LocalName()], rows...)
		for _, row := range rows {
			report.InsertedLocals = append(report.InsertedLocals, model.NewTupleRef(r, row))
		}
	}
	// Delta runs always take the head-surfacing hook: the report needs
	// the inserted head tuples regardless of the support index.
	// (Sharded systems keep their one hook; it surfaces heads always.)
	if s.opts.shardCount() == 1 {
		s.eng.HookHeads, s.eng.Hook = s.hookFull, nil
	}
	s.collect = report
	err := s.eng.RunProgramDelta(s.prog, delta)
	s.collect = nil
	if err != nil {
		s.deltaReady = false
		if s.opts.shardCount() > 1 {
			s.dropShardHooks()
		}
		return nil, err
	}
	if s.opts.shardCount() > 1 {
		if err := s.flushShardHooks(report); err != nil {
			s.invalidateDelta()
			s.support = nil
			return nil, err
		}
	}
	s.pending = nil
	s.LastIterations = s.eng.Iterations
	s.LastDerivations = s.eng.Derivations
	report.Iterations = s.eng.Iterations
	report.Derivations = s.eng.Derivations
	return report, nil
}

// DeltaReady reports whether the persistent engine state currently
// mirrors the backing tables, i.e. whether the next RunDelta will run
// incrementally instead of falling back to a full fixpoint. It stays
// true across DeleteLocal (which repairs the journals from its
// report); only run errors and the legacy propagation paths clear it.
func (s *System) DeltaReady() bool {
	return s.deltaReady && s.prog != nil && s.prog.StateValid()
}

// invalidateDelta marks the persistent engine state stale (the tables
// were mutated outside a run and the journals could not be repaired —
// legacy propagation, run errors); the next RunDelta falls back to a
// full fixpoint.
func (s *System) invalidateDelta() {
	s.deltaReady = false
	s.deadRows = nil // a full reseed supersedes any deferred repair
	if s.prog != nil {
		s.prog.InvalidateState()
	}
}

// ensureCompiled compiles the exchange program, the per-mapping hook
// plans, and the persistent engine with its firing hook, once per
// System.
func (s *System) ensureCompiled() error {
	if s.prog != nil {
		return nil
	}
	prog, err := datalog.CompileSharded(s.DB, s.Rules(), s.opts.shardCount())
	if err != nil {
		return err
	}
	plans := make(map[string]hookPlan, len(s.Prov))
	refPlansOK := true
	for name, pr := range s.Prov {
		slots, err := prog.VarSlots(name, pr.Vars)
		if err != nil {
			return err
		}
		hp := hookPlan{slots: slots}
		if !pr.Virtual {
			hp.table = s.DB.MustTable(pr.TableName)
		}
		if atoms, n, err := s.compileRefPlans(prog, name, pr); err == nil {
			hp.atoms, hp.nSources = atoms, n
		} else {
			refPlansOK = false
		}
		plans[name] = hp
	}
	if !refPlansOK {
		// Some atom's key terms cannot be recovered from firings
		// (e.g. a wildcard key term), so the support index cannot
		// be hook-maintained. Drop it: DeleteLocal rebuilds from
		// the provenance rows and surfaces the defect as an error
		// there, exactly as the whole-graph walk did.
		for name, hp := range plans {
			hp.atoms, hp.nSources = nil, 0
			plans[name] = hp
		}
		s.support = nil
	}
	s.prog, s.hookPlans = prog, plans

	eng := datalog.NewEngine(s.DB)
	eng.Parallelism = s.opts.Parallelism
	s.eng = eng
	if s.opts.shardCount() > 1 {
		s.compileShardHook()
		return nil
	}
	var arena model.TupleArena
	var keyBuf []byte
	var idBuf []int32
	s.hookFull = func(rule *datalog.Rule, _ []string, slots []model.Datum, heads []datalog.HeadInsert) {
		hp, ok := s.hookPlans[rule.ID]
		if !ok {
			// Local copy rule: no provenance, but a delta run wants the
			// freshly materialized public tuples for graph patching.
			if s.collect != nil {
				collectHeads(s.collect, heads)
			}
			return
		}
		row := arena.Alloc(len(hp.slots))
		for i, si := range hp.slots {
			row[i] = slots[si]
		}
		// Set semantics on the all-column key keep reruns idempotent
		// (the compiled engine itself never re-enumerates a
		// derivation within one run); only genuinely new derivations
		// enter the support index.
		fresh := false
		if hp.table != nil {
			inserted, err := hp.table.Insert(row)
			if err != nil {
				panic(fmt.Sprintf("exchange: provenance insert: %v", err))
			}
			fresh = inserted
		} else if s.support != nil {
			fresh = s.support.shards[0].markVirtual(rule.ID, row)
		} else if s.collect != nil {
			// Virtual mapping with no support index: delta rounds never
			// re-enumerate a derivation across the system's lifetime,
			// so every delta firing is new.
			fresh = true
		}
		if s.collect != nil {
			collectHeads(s.collect, heads)
			if fresh {
				s.collect.InsertedDerivations = append(s.collect.InsertedDerivations,
					InsertedDerivation{Mapping: rule.ID, Row: row})
			}
		}
		if !fresh || s.support == nil || hp.atoms == nil {
			return
		}
		if cap(idBuf) < len(hp.atoms) {
			idBuf = make([]int32, len(hp.atoms))
		}
		sup := s.support.shards[0]
		ids := idBuf[:len(hp.atoms)]
		for i := 0; i < hp.nSources; i++ {
			ap := &hp.atoms[i]
			keyBuf = keyBuf[:0]
			for _, c := range ap.cols {
				if c.IsConst {
					keyBuf = model.AppendDatum(keyBuf, c.Const)
				} else {
					keyBuf = model.AppendDatum(keyBuf, slots[c.Slot])
				}
			}
			ids[i] = sup.tupleID(ap.rel, keyBuf)
		}
		// Target atoms are the rule's heads in mapping order: reuse the
		// primary-key encoding the engine's head insert already
		// computed instead of re-encoding the key terms from slots.
		for j := range heads {
			ids[hp.nSources+j] = sup.tupleID(heads[j].Pred, heads[j].EncKey)
		}
		sup.add(rule.ID, hp.table == nil, row, ids, hp.nSources)
	}
	// The lean hook only materializes provenance rows; it is installed
	// for full runs with no support index alive, where the engine's
	// head-surfacing pass would feed nothing.
	var leanArena model.TupleArena
	s.hookLean = func(rule *datalog.Rule, _ []string, slots []model.Datum) {
		hp, ok := s.hookPlans[rule.ID]
		if !ok || hp.table == nil {
			return
		}
		row := leanArena.Alloc(len(hp.slots))
		for i, si := range hp.slots {
			row[i] = slots[si]
		}
		if _, err := hp.table.Insert(row); err != nil {
			panic(fmt.Sprintf("exchange: provenance insert: %v", err))
		}
	}
	return nil
}

// compileShardHook builds the sharded-engine firing callback and its
// per-shard state. The contract with datalog.ShardHook: the hook runs
// concurrently across shards but never concurrently for one shard, so
// every mutable structure it touches is either in shardHook[shard] or
// the matching support-index shard. Provenance tables are never
// written during the run — freshness is decided by a read-only
// primary-key probe (sound because a sharded run's exactly-once
// enumeration cannot produce one provenance row twice: the row's
// attributes determine the body-tuple combination), and fresh rows are
// buffered for flushShardHooks.
func (s *System) compileShardHook() {
	n := s.opts.shardCount()
	s.shardHook = make([]*shardHookState, n)
	for i := range s.shardHook {
		s.shardHook[i] = &shardHookState{provFresh: make(map[string][]model.Tuple)}
	}
	s.hookShard = func(shard int, rule *datalog.Rule, _ []string, slots []model.Datum, heads []datalog.HeadInsert) {
		st := s.shardHook[shard]
		hp, ok := s.hookPlans[rule.ID]
		if !ok {
			// Local copy rule: no provenance, but a delta run wants the
			// freshly materialized public tuples for graph patching.
			if s.collect != nil {
				st.insTuples = appendInsertedHeads(st.insTuples, heads)
			}
			return
		}
		row := st.arena.Alloc(len(hp.slots))
		for i, si := range hp.slots {
			row[i] = slots[si]
		}
		fresh := false
		if hp.table != nil {
			// Provenance tables are keyed on all columns, so the row is
			// its own key encoding.
			st.keyBuf = st.keyBuf[:0]
			for _, d := range row {
				st.keyBuf = model.AppendDatum(st.keyBuf, d)
			}
			if _, exists := hp.table.LookupKeyBytes(st.keyBuf); !exists {
				st.provFresh[rule.ID] = append(st.provFresh[rule.ID], row)
				fresh = true
			}
		} else if s.support != nil {
			// A derivation always hashes to the same shard, so the
			// shard-local virtual-dedup map is authoritative for it.
			fresh = s.support.shards[shard].markVirtual(rule.ID, row)
		} else if s.collect != nil {
			// Virtual mapping with no support index: delta rounds never
			// re-enumerate a derivation across the system's lifetime,
			// so every delta firing is new.
			fresh = true
		}
		if s.collect != nil {
			st.insTuples = appendInsertedHeads(st.insTuples, heads)
			if fresh {
				st.insDerivs = append(st.insDerivs, InsertedDerivation{Mapping: rule.ID, Row: row})
			}
		}
		if !fresh || s.support == nil || hp.atoms == nil {
			return
		}
		sup := s.support.shards[shard]
		if cap(st.idBuf) < len(hp.atoms) {
			st.idBuf = make([]int32, len(hp.atoms))
		}
		ids := st.idBuf[:len(hp.atoms)]
		for i := 0; i < hp.nSources; i++ {
			ap := &hp.atoms[i]
			st.keyBuf = st.keyBuf[:0]
			for _, c := range ap.cols {
				if c.IsConst {
					st.keyBuf = model.AppendDatum(st.keyBuf, c.Const)
				} else {
					st.keyBuf = model.AppendDatum(st.keyBuf, slots[c.Slot])
				}
			}
			ids[i] = sup.tupleID(ap.rel, st.keyBuf)
		}
		for j := range heads {
			ids[hp.nSources+j] = sup.tupleID(heads[j].Pred, heads[j].EncKey)
		}
		sup.add(rule.ID, hp.table == nil, row, ids, hp.nSources)
	}
}

// flushShardHooks applies the per-shard hook buffers after a
// successful sharded run: fresh provenance rows enter their tables
// (stable mapping-then-shard order, so reruns are deterministic), and
// a delta run's report slices are merged in shard order. Every
// buffered row must be new — the in-run probe plus exactly-once
// enumeration guarantee it — so a duplicate here is an internal error.
func (s *System) flushShardHooks(report *InsertionReport) error {
	for _, m := range s.Schema.Mappings() {
		pr := s.Prov[m.Name]
		if pr.Virtual {
			continue
		}
		tbl := s.DB.MustTable(pr.TableName)
		for _, st := range s.shardHook {
			rows := st.provFresh[m.Name]
			if len(rows) == 0 {
				continue
			}
			for _, row := range rows {
				inserted, err := tbl.Insert(row)
				if err != nil {
					return err
				}
				if !inserted {
					return fmt.Errorf("exchange: duplicate buffered provenance row for %s", m.Name)
				}
			}
			st.provFresh[m.Name] = nil
		}
	}
	for _, st := range s.shardHook {
		if report != nil {
			report.InsertedTuples = append(report.InsertedTuples, st.insTuples...)
			report.InsertedDerivations = append(report.InsertedDerivations, st.insDerivs...)
		}
		st.insTuples, st.insDerivs = nil, nil
	}
	return nil
}

// dropShardHooks discards the per-shard hook buffers after a failed
// sharded run. The backing tables were never touched mid-run, so they
// are consistent at their pre-run state; the support index, however,
// may hold additions from the aborted enumeration, so it is dropped
// and rebuilt from the provenance tables on the next deletion.
func (s *System) dropShardHooks() {
	for _, st := range s.shardHook {
		for k := range st.provFresh {
			delete(st.provFresh, k)
		}
		st.insTuples, st.insDerivs = nil, nil
	}
	if s.support != nil {
		s.support = nil
	}
}

// appendInsertedHeads appends a firing's freshly inserted head tuples
// to a shard's report slice (the sharded form of collectHeads).
func appendInsertedHeads(dst []InsertedTuple, heads []datalog.HeadInsert) []InsertedTuple {
	for i := range heads {
		if !heads[i].Inserted {
			continue
		}
		dst = append(dst, InsertedTuple{
			Ref: model.TupleRef{Rel: heads[i].Pred, Key: string(heads[i].EncKey)},
			Row: heads[i].Row,
		})
	}
	return dst
}

// installHooks picks the firing callback for a full run: the head-
// surfacing hook when a support index consumes the surfaced keys, the
// lean provenance-only hook otherwise.
func (s *System) installHooks() {
	if s.opts.shardCount() > 1 {
		s.eng.HookShard = s.hookShard
		return
	}
	if s.support != nil {
		s.eng.HookHeads, s.eng.Hook = s.hookFull, nil
	} else {
		s.eng.HookHeads, s.eng.Hook = nil, s.hookLean
	}
}

// collectHeads appends a firing's freshly inserted head tuples to a
// delta run's report.
func collectHeads(report *InsertionReport, heads []datalog.HeadInsert) {
	for i := range heads {
		if !heads[i].Inserted {
			continue
		}
		report.InsertedTuples = append(report.InsertedTuples, InsertedTuple{
			Ref: model.TupleRef{Rel: heads[i].Pred, Key: string(heads[i].EncKey)},
			Row: heads[i].Row,
		})
	}
}

// compileRefPlans resolves, for one mapping, each body and head atom's
// key columns into the compiled rule's slot numbering, so the exchange
// hook can build the support index's TupleRefs straight from a
// firing's slot buffer.
func (s *System) compileRefPlans(prog *datalog.Program, name string, pr *ProvRel) ([]atomPlan, int, error) {
	m := pr.Mapping
	atoms := make([]atomPlan, 0, len(m.Body)+len(m.Head))
	addAtom := func(a model.Atom) error {
		r, ok := s.Schema.Relation(a.Rel)
		if !ok {
			return fmt.Errorf("exchange: unknown relation %q", a.Rel)
		}
		cols, err := prog.AtomKeySlots(name, a, r.Key)
		if err != nil {
			return err
		}
		atoms = append(atoms, atomPlan{rel: a.Rel, cols: cols})
		return nil
	}
	for _, a := range m.Body {
		if err := addAtom(a); err != nil {
			return nil, 0, err
		}
	}
	for _, a := range m.Head {
		if err := addAtom(a); err != nil {
			return nil, 0, err
		}
	}
	return atoms, len(m.Body), nil
}

// runLegacy is Run on the interpreting engine, with its map-based
// binding hook.
func (s *System) runLegacy() error {
	eng := datalog.NewEngineLegacy(s.DB)
	eng.Hook = func(rule *datalog.Rule, binding datalog.Binding) {
		pr, ok := s.Prov[rule.ID]
		if !ok {
			return
		}
		row := make(model.Tuple, len(pr.Vars))
		for i, v := range pr.Vars {
			row[i] = binding[v]
		}
		// Set semantics on the all-column key deduplicate the legacy
		// engine's repeated enumerations of the same derivation.
		fresh := false
		if !pr.Virtual {
			inserted, err := s.DB.MustTable(pr.TableName).Insert(row)
			if err != nil {
				panic(fmt.Sprintf("exchange: provenance insert: %v", err))
			}
			fresh = inserted
		} else if s.support != nil {
			fresh = s.support.shards[0].markVirtual(rule.ID, row)
		}
		if !fresh || s.support == nil {
			return
		}
		sources, targets, err := s.AtomRefs(pr, row)
		if err != nil {
			// Atom keys not recoverable from the provenance row; stop
			// hook maintenance and let DeleteLocal rebuild (and report
			// the defect) on demand.
			s.support = nil
			return
		}
		s.supportAddRefs(0, pr, row, sources, targets)
	}
	if err := eng.Run(s.Rules()); err != nil {
		return err
	}
	s.LastIterations = eng.Iterations
	s.LastDerivations = eng.Derivations
	s.pending = nil
	return nil
}

// ProvRows returns the provenance rows of a mapping, reconstructing
// them from the source relation for virtual provenance relations.
func (s *System) ProvRows(mappingName string) ([]model.Tuple, error) {
	pr, ok := s.Prov[mappingName]
	if !ok {
		return nil, fmt.Errorf("exchange: unknown mapping %q", mappingName)
	}
	if !pr.Virtual {
		return s.DB.MustTable(pr.TableName).Rows(), nil
	}
	return s.virtualProvRows(pr)
}

// virtualProvRows projects the provenance attributes out of the source
// relation of a superfluous mapping. A source tuple yields a derivation
// only if the (possibly filtering) body atom matches, i.e. constant
// positions agree and repeated variables are consistent.
func (s *System) virtualProvRows(pr *ProvRel) ([]model.Tuple, error) {
	body := pr.Mapping.Body[0]
	t, ok := s.DB.Table(body.Rel)
	if !ok {
		return nil, fmt.Errorf("exchange: no table for %q", body.Rel)
	}
	var out []model.Tuple
	t.Iterate(func(row model.Tuple) bool {
		binding := make(map[string]model.Datum, len(body.Args))
		for k, term := range body.Args {
			if term.IsConst {
				if !model.Equal(row[k], term.Const) {
					return true
				}
				continue
			}
			if term.Var == "_" {
				continue
			}
			if prev, bound := binding[term.Var]; bound {
				if !model.Equal(prev, row[k]) {
					return true
				}
				continue
			}
			binding[term.Var] = row[k]
		}
		prow := make(model.Tuple, len(pr.Vars))
		for i, v := range pr.Vars {
			prow[i] = binding[v]
		}
		out = append(out, prow)
		return true
	})
	return out, nil
}

// ProvRowCount counts stored provenance rows across all materialized
// provenance tables — the storage-overhead metric.
func (s *System) ProvRowCount() int {
	total := 0
	for _, pr := range s.Prov {
		if !pr.Virtual {
			total += s.DB.MustTable(pr.TableName).Len()
		}
	}
	return total
}

// IsLeaf reports whether the tuple with the given key has a local
// contribution (a '+' node in Figure 1).
func (s *System) IsLeaf(rel string, key []model.Datum) bool {
	r, ok := s.Schema.Relation(rel)
	if !ok || r.IsLocal {
		return false
	}
	lt, ok := s.DB.Table(r.LocalName())
	if !ok {
		return false
	}
	_, found := lt.LookupKey(key)
	return found
}

// RefKey pairs a tuple reference with its decoded key datums, so
// callers can look the tuple up in storage.
type RefKey struct {
	Ref model.TupleRef
	Key []model.Datum
}

// AtomRefKeys reconstructs, for one provenance row of a mapping, the
// references (and key datums) of all source and target tuples related
// by that derivation node. Every key term of every atom is either a
// provenance variable (bound by the row) or a constant.
func (s *System) AtomRefKeys(pr *ProvRel, row model.Tuple) (sources, targets []RefKey, err error) {
	varVal := make(map[string]model.Datum, len(pr.Vars))
	for i, v := range pr.Vars {
		varVal[v] = row[i]
	}
	refOf := func(a model.Atom) (RefKey, error) {
		r, ok := s.Schema.Relation(a.Rel)
		if !ok {
			return RefKey{}, fmt.Errorf("exchange: unknown relation %q", a.Rel)
		}
		key := make([]model.Datum, 0, len(r.Key))
		for _, k := range r.Key {
			t := a.Args[k]
			if t.IsConst {
				key = append(key, t.Const)
				continue
			}
			v, bound := varVal[t.Var]
			if !bound {
				return RefKey{}, fmt.Errorf("exchange: mapping %s key var %q not in provenance row", pr.Mapping.Name, t.Var)
			}
			key = append(key, v)
		}
		return RefKey{Ref: model.RefFromKey(a.Rel, key), Key: key}, nil
	}
	for _, a := range pr.Mapping.Body {
		rk, err := refOf(a)
		if err != nil {
			return nil, nil, err
		}
		sources = append(sources, rk)
	}
	for _, a := range pr.Mapping.Head {
		rk, err := refOf(a)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, rk)
	}
	return sources, targets, nil
}

// AtomRefs is AtomRefKeys returning only the tuple references.
func (s *System) AtomRefs(pr *ProvRel, row model.Tuple) (sources, targets []model.TupleRef, err error) {
	srcs, tgts, err := s.AtomRefKeys(pr, row)
	if err != nil {
		return nil, nil, err
	}
	for _, rk := range srcs {
		sources = append(sources, rk.Ref)
	}
	for _, rk := range tgts {
		targets = append(targets, rk.Ref)
	}
	return sources, targets, nil
}
