package exchange_test

import (
	"testing"

	"repro/internal/exchange"
	"repro/internal/fixture"
	"repro/internal/model"
)

// TestReportUnknownAndRepeatedKeys: unknown keys never propagate, and
// a second delete of the same key is a no-op with a zeroed report.
func TestReportUnknownAndRepeatedKeys(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	first, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if first.LocalDeleted != 1 || first.TuplesDeleted != 5 {
		t.Fatalf("first delete: %+v", first)
	}
	again, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if again.LocalDeleted != 0 || again.TuplesDeleted != 0 || again.DerivationsDeleted != 0 ||
		again.TuplesVisited != 0 || again.DerivationsVisited != 0 ||
		len(again.DeletedTuples) != 0 || len(again.DeletedLocals) != 0 {
		t.Errorf("repeated delete should be a full no-op: %+v", again)
	}
	// A batch mixing unknown keys with one real key reports only the
	// real deletion.
	mixed, err := sys.DeleteLocal("A", []model.Datum{int64(404)}, []model.Datum{int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.LocalDeleted != 1 || len(mixed.DeletedLocals) != 1 {
		t.Errorf("mixed batch: %+v", mixed)
	}
}

// TestReportLocallyContributedElsewhere: deleting the local
// contribution of a tuple that is also derived through a mapping
// removes only the leaf status — the tuple and its derivations stay.
func TestReportLocallyContributedElsewhere(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	// N(1,sn1,true) is derived by m2 from A(1); add a local
	// contribution for the very same tuple.
	if err := sys.InsertLocal("N", model.Tuple{int64(1), "sn1", true}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	report, err := sys.DeleteLocal("N", []model.Datum{int64(1), "sn1", true})
	if err != nil {
		t.Fatal(err)
	}
	if report.LocalDeleted != 1 {
		t.Fatalf("LocalDeleted = %d", report.LocalDeleted)
	}
	if report.TuplesDeleted != 0 || report.DerivationsDeleted != 0 {
		t.Errorf("tuple survives via m2; report: %+v", report)
	}
	if _, ok := sys.DB.MustTable("N").LookupKey([]model.Datum{int64(1), "sn1", true}); !ok {
		t.Error("N(1,sn1,true) should survive through its m2 derivation")
	}
	if sys.IsLeafRef(model.RefFromKey("N", []model.Datum{int64(1), "sn1", true})) {
		t.Error("leaf status should be gone")
	}
}

// TestReportVirtualProvenance: deletions propagating through virtual
// (superfluous) provenance relations are counted like materialized
// ones, and the deleted-derivation list names both kinds.
func TestReportVirtualProvenance(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	if !sys.Prov[fixture.M2].Virtual || !sys.Prov[fixture.M4].Virtual {
		t.Fatal("precondition: m2 and m4 should be virtual in the fixture")
	}
	if sys.Prov[fixture.M1].Virtual || sys.Prov[fixture.M5].Virtual {
		t.Fatal("precondition: m1 and m5 should be materialized")
	}
	report, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Invalidated: m1's C(1,cn1), m2's N(1,sn1,true), m4's O(sn1,7),
	// m5's O(cn1,7) — two virtual, two materialized.
	if report.DerivationsDeleted != 4 {
		t.Errorf("DerivationsDeleted = %d, want 4 (report %+v)", report.DerivationsDeleted, report)
	}
	byMapping := map[string]int{}
	for _, dd := range report.DeletedDerivations {
		byMapping[dd.Mapping]++
	}
	for _, m := range []string{fixture.M1, fixture.M2, fixture.M4, fixture.M5} {
		if byMapping[m] != 1 {
			t.Errorf("mapping %s: %d deleted derivations, want 1 (%v)", m, byMapping[m], byMapping)
		}
	}
	// The virtual rows must be gone from the reconstructed views too.
	rows, err := sys.ProvRows(fixture.M2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 { // only A(2)'s derivation remains
		t.Errorf("m2 virtual provenance rows = %d, want 1", len(rows))
	}
}

// TestReportMaterializeAllMatchesVirtual: the same deletion over the
// MaterializeAll layout produces identical tables and counts.
func TestReportMaterializeAllMatchesVirtual(t *testing.T) {
	def := fixture.MustSystem(fixture.Options{})
	mat := fixture.MustSystem(fixture.Options{Exchange: exchange.Options{MaterializeAll: true}})
	rDef, err := def.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	rMat, err := mat.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rDef.TuplesDeleted != rMat.TuplesDeleted || rDef.DerivationsDeleted != rMat.DerivationsDeleted {
		t.Errorf("layouts disagree: virtual %+v vs materialized %+v", rDef, rMat)
	}
	for _, rel := range []string{"A", "C", "N", "O"} {
		a, b := def.DB.MustTable(rel).SortedRows(), mat.DB.MustTable(rel).SortedRows()
		if len(a) != len(b) {
			t.Errorf("%s: %d vs %d rows", rel, len(a), len(b))
		}
	}
}

// TestDeleteLocalShortCircuit is the regression test for the no-uses
// fast path: deleting base tuples of a relation no mapping touches
// must not walk any provenance — before the support index, DeleteLocal
// re-read every provenance row of every mapping even then.
func TestDeleteLocalShortCircuit(t *testing.T) {
	schema, err := fixture.Schema(fixture.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// S is a standalone relation: no mapping reads or derives it.
	if err := schema.AddRelation(model.MustRelation("S", []model.Column{
		{Name: "id", Type: model.TypeInt},
	}, "id")); err != nil {
		t.Fatal(err)
	}
	sys, err := exchange.NewSystem(schema, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.InsertLocal("A", model.Tuple{int64(1), "sn1", int64(7)}))
	must(sys.InsertLocal("N", model.Tuple{int64(1), "cn1", false}))
	must(sys.InsertLocal("S", model.Tuple{int64(10)}, model.Tuple{int64(11)}))
	must(sys.Run())
	lenBefore := map[string]int{}
	for _, rel := range []string{"A", "N", "C", "O"} {
		lenBefore[rel] = sys.DB.MustTable(rel).Len()
	}

	report, err := sys.DeleteLocal("S", []model.Datum{int64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if report.DerivationsVisited != 0 {
		t.Errorf("DerivationsVisited = %d, want 0 (no mapping touches S)", report.DerivationsVisited)
	}
	if report.TuplesVisited != 1 {
		t.Errorf("TuplesVisited = %d, want 1 (just the deleted ref)", report.TuplesVisited)
	}
	if report.TuplesDeleted != 1 { // the public copy of S(10)
		t.Errorf("TuplesDeleted = %d, want 1", report.TuplesDeleted)
	}
	if _, ok := sys.DB.MustTable("S").LookupKey([]model.Datum{int64(10)}); ok {
		t.Error("public S(10) should be gone")
	}
	if _, ok := sys.DB.MustTable("S").LookupKey([]model.Datum{int64(11)}); !ok {
		t.Error("S(11) should survive")
	}
	// Nothing else moved.
	for _, rel := range []string{"A", "N", "C", "O"} {
		if got := sys.DB.MustTable(rel).Len(); got != lenBefore[rel] {
			t.Errorf("%s: %d rows, had %d before the unrelated delete", rel, got, lenBefore[rel])
		}
	}

	// The legacy walk on the same deletion visits the whole instance —
	// the cost the support index eliminates.
	sysLegacy, err := exchange.NewSystem(schema, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	must(sysLegacy.InsertLocal("A", model.Tuple{int64(1), "sn1", int64(7)}))
	must(sysLegacy.InsertLocal("N", model.Tuple{int64(1), "cn1", false}))
	must(sysLegacy.InsertLocal("S", model.Tuple{int64(10)}, model.Tuple{int64(11)}))
	must(sysLegacy.Run())
	legacyReport, err := sysLegacy.DeleteLocalLegacy("S", []model.Datum{int64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if legacyReport.DerivationsVisited == 0 || legacyReport.TuplesVisited <= 1 {
		t.Errorf("legacy walk should visit the whole graph, got %+v", legacyReport)
	}
	if legacyReport.TuplesDeleted != report.TuplesDeleted {
		t.Errorf("legacy and delta disagree: %d vs %d", legacyReport.TuplesDeleted, report.TuplesDeleted)
	}
}

// TestSupportIndexRebuildAfterLegacy: MaintainLegacy leaves the
// support index stale, so it is dropped and transparently rebuilt on
// the next delta deletion.
func TestSupportIndexRebuildAfterLegacy(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	if _, err := sys.DeleteLocalLegacy("C", []model.Datum{int64(2), "cn2"}); err != nil {
		t.Fatal(err)
	}
	report, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if report.TuplesDeleted != 5 {
		t.Errorf("TuplesDeleted = %d, want 5 after rebuild", report.TuplesDeleted)
	}
}

// TestNoSupportIndexOption: with NoSupportIndex the hooks skip index
// maintenance and the first DeleteLocal rebuilds it on demand; results
// are identical to the default layout.
func TestNoSupportIndexOption(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{Exchange: exchange.Options{NoSupportIndex: true}})
	report, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if report.TuplesDeleted != 5 || report.DerivationsDeleted != 4 {
		t.Errorf("deferred-index deletion: %+v", report)
	}
	// Subsequent deletions ride the now-built index.
	report2, err := sys.DeleteLocal("A", []model.Datum{int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if report2.TuplesDeleted == 0 {
		t.Errorf("second deletion should propagate: %+v", report2)
	}
}
