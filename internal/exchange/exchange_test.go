package exchange_test

import (
	"testing"

	"repro/internal/exchange"
	"repro/internal/fixture"
	"repro/internal/model"
)

func TestExchangeRunningExampleAcyclic(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})

	// A has the two base tuples.
	if got := sys.DB.MustTable("A").Len(); got != 2 {
		t.Errorf("A has %d rows, want 2", got)
	}
	// N: base (1,cn1,false) + m2 (1,sn1,true), (2,sn2,true).
	if got := sys.DB.MustTable("N").Len(); got != 3 {
		t.Errorf("N has %d rows, want 3", got)
	}
	// C: base (2,cn2) + m1 from A(1),N(1,cn1,false) → (1,cn1).
	if got := sys.DB.MustTable("C").Len(); got != 2 {
		t.Errorf("C has %d rows, want 2", got)
	}
	// O: m4 (sn1,7), (sn2,5); m5 (cn1,7), (cn2,5).
	if got := sys.DB.MustTable("O").Len(); got != 4 {
		t.Errorf("O has %d rows, want 4", got)
	}
	for _, want := range [][]model.Datum{
		{"sn1", int64(7)}, {"sn2", int64(5)}, {"cn1", int64(7)}, {"cn2", int64(5)},
	} {
		if _, ok := sys.DB.MustTable("O").LookupKey(want); !ok {
			t.Errorf("O missing %v", want)
		}
	}
}

func TestExchangeProvenanceRows(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})

	// m1 fired once: (i=1, n=cn1). Its provenance relation carries the
	// deduplicated keys: i, n (N key includes canon=false constant, O
	// absent).
	rows, err := sys.ProvRows(fixture.M1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("P_m1 has %d rows, want 1", len(rows))
	}
	// m5 fired twice: (1, cn1) and (2, cn2).
	rows, err = sys.ProvRows(fixture.M5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("P_m5 has %d rows, want 2", len(rows))
	}
	// m2 and m4 are projections over A: superfluous, virtual views.
	for _, name := range []string{fixture.M2, fixture.M4} {
		pr := sys.Prov[name]
		if !pr.Virtual {
			t.Errorf("%s should have a virtual provenance relation", name)
		}
		rows, err := sys.ProvRows(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Errorf("%s virtual rows = %d, want 2 (one per A tuple)", name, len(rows))
		}
	}
	// m1 and m5 are joins: materialized.
	for _, name := range []string{fixture.M1, fixture.M5} {
		if sys.Prov[name].Virtual {
			t.Errorf("%s should be materialized", name)
		}
	}
}

func TestExchangeMaterializeAllOption(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{
		Exchange: exchange.Options{MaterializeAll: true},
	})
	for _, name := range []string{fixture.M1, fixture.M2, fixture.M4, fixture.M5} {
		if sys.Prov[name].Virtual {
			t.Errorf("MaterializeAll should disable virtual provenance for %s", name)
		}
	}
	// Materialized and virtual row sets must agree with the default run.
	def := fixture.MustSystem(fixture.Options{})
	for _, name := range []string{fixture.M2, fixture.M4} {
		a, err := sys.ProvRows(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := def.ProvRows(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("%s: materialized %d rows vs virtual %d", name, len(a), len(b))
		}
	}
	if sys.ProvRowCount() <= def.ProvRowCount() {
		t.Errorf("materialize-all should store more provenance rows (%d vs %d)",
			sys.ProvRowCount(), def.ProvRowCount())
	}
}

func TestExchangeCyclicMappingsTerminate(t *testing.T) {
	// With m3, C and N derive each other; exchange must still reach a
	// fixpoint (set semantics) and record the extra derivations.
	sys := fixture.MustSystem(fixture.Options{IncludeM3: true})
	// m3 adds N(2,cn2,false) (from C(2,cn2)) and re-derives N(1,cn1,false).
	if got := sys.DB.MustTable("N").Len(); got != 4 {
		t.Errorf("N has %d rows, want 4", got)
	}
	// m1 now also derives C(2,cn2) via N(2,cn2,false): P_m1 has 2 rows.
	rows, err := sys.ProvRows(fixture.M1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("P_m1 has %d rows, want 2", len(rows))
	}
	// m3's provenance: one derivation per C tuple (it is a projection,
	// hence virtual).
	rows, err = sys.ProvRows(fixture.M3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("P_m3 has %d rows, want 2", len(rows))
	}
	// O gains O(cn2, 7)? No: m5 joins A(i,_,h), C(i,n); C unchanged
	// keys; O stays at 4.
	if got := sys.DB.MustTable("O").Len(); got != 4 {
		t.Errorf("O has %d rows, want 4", got)
	}
}

func TestIsLeaf(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	if !sys.IsLeaf("A", []model.Datum{int64(1)}) {
		t.Error("A(1) is a leaf")
	}
	if !sys.IsLeaf("C", []model.Datum{int64(2), "cn2"}) {
		t.Error("C(2,cn2) is a leaf")
	}
	if sys.IsLeaf("C", []model.Datum{int64(1), "cn1"}) {
		t.Error("C(1,cn1) is derived only")
	}
	if sys.IsLeaf("O", []model.Datum{"sn1", int64(7)}) {
		t.Error("O tuples are never local")
	}
	if sys.IsLeaf("nope", nil) {
		t.Error("unknown relation is not a leaf")
	}
}

func TestAtomRefs(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	pr := sys.Prov[fixture.M5]
	rows, err := sys.ProvRows(fixture.M5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		sources, targets, err := sys.AtomRefs(pr, row)
		if err != nil {
			t.Fatal(err)
		}
		if len(sources) != 2 || len(targets) != 1 {
			t.Fatalf("m5 derivation should have 2 sources, 1 target; got %d/%d", len(sources), len(targets))
		}
		if sources[0].Rel != "A" || sources[1].Rel != "C" || targets[0].Rel != "O" {
			t.Errorf("refs = %v -> %v", sources, targets)
		}
	}
}

func TestInsertLocalValidation(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	if err := sys.InsertLocal("nope", model.Tuple{int64(1)}); err == nil {
		t.Error("unknown relation should error")
	}
	if err := sys.InsertLocal("A", model.Tuple{int64(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
}

// dbSignature renders every table (instance and provenance relations
// alike) in sorted-row order for whole-database comparison.
func dbSignature(t *testing.T, sys *exchange.System) string {
	t.Helper()
	sig := ""
	for _, name := range sys.DB.TableNames() {
		sig += name + ":"
		for _, row := range sys.DB.MustTable(name).SortedRows() {
			sig += model.EncodeDatums(row) + ";"
		}
		sig += "\n"
	}
	return sig
}

func TestExchangeCompiledMatchesLegacy(t *testing.T) {
	// The compiled semi-naive engine (default), its parallel mode, and
	// the legacy interpreter must materialize identical instances and
	// identical provenance tables, on both the acyclic and the cyclic
	// (m3) running example.
	for _, includeM3 := range []bool{false, true} {
		legacy := fixture.MustSystem(fixture.Options{
			IncludeM3: includeM3,
			Exchange:  exchange.Options{UseLegacyEngine: true},
		})
		want := dbSignature(t, legacy)
		for name, opts := range map[string]exchange.Options{
			"compiled":          {},
			"compiled-parallel": {Parallelism: 4},
		} {
			sys := fixture.MustSystem(fixture.Options{IncludeM3: includeM3, Exchange: opts})
			if got := dbSignature(t, sys); got != want {
				t.Errorf("m3=%v: %s database differs from legacy\nlegacy:\n%s\ngot:\n%s",
					includeM3, name, want, got)
			}
		}
	}
}

func TestIncrementalReRun(t *testing.T) {
	// Inserting more local data and re-running propagates the new
	// tuples and their provenance.
	sys := fixture.MustSystem(fixture.Options{})
	before := sys.DB.MustTable("O").Len()
	if err := sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(9)}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	after := sys.DB.MustTable("O").Len()
	if after != before+1 { // m4 adds O(sn3, 9, true); no C partner for m5
		t.Errorf("O grew from %d to %d, want +1", before, after)
	}
	if _, ok := sys.DB.MustTable("O").LookupKey([]model.Datum{"sn3", int64(9)}); !ok {
		t.Error("missing propagated O(sn3,9)")
	}
}
