package exchange_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
)

// Lockstep shard-determinism differential for the full update-exchange
// stack: identical settings are exchanged and churned side by side at
// shard counts {1, 2, 3, 8}, and after the initial exchange and every
// interleaved delete / insert+RunDelta step all sides must agree
// byte-for-byte — tables and provenance rows (signature), support-index
// derivations with their source/target refs (SupportSignature),
// engine derivation counts, deletion-walk visit counts, and insertion
// reports (as sets; the sharded engine merges its report in shard
// order, not firing order). The serial side is the oracle; sharded
// sides must also keep their journals mirroring the tables and never
// fall back to a full fixpoint.
func TestDifferentialShardedExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	shardCounts := []int{1, 2, 3, 8}
	for trial := 0; trial < 40; trial++ {
		cyclic := trial%2 == 1
		s := genDelSetting(rng, cyclic)

		// Split the base data: half seeds the initial exchange, the
		// rest arrives over the churn steps.
		initial := make([][]model.Tuple, len(s.facts))
		var later []struct {
			ri  int
			row model.Tuple
		}
		for i, rows := range s.facts {
			for _, row := range rows {
				if rng.Intn(2) == 0 {
					initial[i] = append(initial[i], row)
				} else {
					later = append(later, struct {
						ri  int
						row model.Tuple
					}{i, row})
				}
			}
		}

		sides := make([]*exchange.System, len(shardCounts))
		for i, S := range shardCounts {
			sc := s
			sc.opts.Shards = S
			sides[i] = sc.build(t, initial)
		}
		oracle := sides[0]

		check := func(stage string) {
			t.Helper()
			sig, sup := signature(t, oracle), oracle.SupportSignature()
			for i, sys := range sides[1:] {
				label := fmt.Sprintf("S=%d", shardCounts[i+1])
				if got := signature(t, sys); got != sig {
					t.Fatalf("trial %d %s %s: storage differs from serial\nmappings: %v\nserial:\n%s\nsharded:\n%s",
						trial, stage, label, s.mappings, sig, got)
				}
				if got := sys.SupportSignature(); got != sup {
					t.Fatalf("trial %d %s %s: support index differs from serial\nserial:\n%s\nsharded:\n%s",
						trial, stage, label, sup, got)
				}
				if err := sys.JournalsMirrorTables(); err != nil {
					t.Fatalf("trial %d %s %s: %v", trial, stage, label, err)
				}
			}
		}
		check("initial")
		if d := oracle.LastDerivations; d >= 0 {
			for i, sys := range sides[1:] {
				if sys.LastDerivations != d {
					t.Fatalf("trial %d S=%d: %d derivations on initial exchange, serial %d",
						trial, shardCounts[i+1], sys.LastDerivations, d)
				}
			}
		}

		current := make([]map[string]model.Tuple, len(s.facts))
		for i, rows := range initial {
			current[i] = map[string]model.Tuple{}
			for _, row := range rows {
				current[i][model.EncodeDatums(row)] = row
			}
		}

		for step := 0; step < 6; step++ {
			nDel := rng.Intn(3)
			for d := 0; d < nDel; d++ {
				ri := rng.Intn(len(current))
				for enc, row := range current[ri] {
					delete(current[ri], enc)
					reports := make([]*exchange.MaintenanceReport, len(sides))
					for i, sys := range sides {
						rep, err := sys.DeleteLocal(relName(ri), row)
						if err != nil {
							t.Fatalf("trial %d step %d S=%d: DeleteLocal: %v", trial, step, shardCounts[i], err)
						}
						reports[i] = rep
					}
					for i, rep := range reports[1:] {
						o := reports[0]
						if rep.LocalDeleted != o.LocalDeleted || rep.TuplesDeleted != o.TuplesDeleted ||
							rep.DerivationsDeleted != o.DerivationsDeleted ||
							rep.TuplesVisited != o.TuplesVisited || rep.DerivationsVisited != o.DerivationsVisited {
							t.Fatalf("trial %d step %d S=%d: deletion reports differ\nserial  %+v\nsharded %+v",
								trial, step, shardCounts[i+1], o, rep)
						}
					}
					break
				}
			}

			nIns := rng.Intn(3)
			if nIns > len(later) {
				nIns = len(later)
			}
			for _, ins := range later[:nIns] {
				current[ins.ri][model.EncodeDatums(ins.row)] = ins.row
				for i, sys := range sides {
					if err := sys.InsertLocal(relName(ins.ri), ins.row.Clone()); err != nil {
						t.Fatalf("trial %d step %d S=%d: InsertLocal: %v", trial, step, shardCounts[i], err)
					}
				}
			}
			later = later[nIns:]

			reports := make([]*exchange.InsertionReport, len(sides))
			for i, sys := range sides {
				rep, err := sys.RunDelta()
				if err != nil {
					t.Fatalf("trial %d step %d S=%d: RunDelta: %v", trial, step, shardCounts[i], err)
				}
				if rep.Full {
					t.Fatalf("trial %d step %d S=%d: fell back to a full fixpoint", trial, step, shardCounts[i])
				}
				reports[i] = rep
			}
			for i, rep := range reports[1:] {
				o := reports[0]
				if rep.Derivations != o.Derivations || rep.Iterations != o.Iterations {
					t.Fatalf("trial %d step %d S=%d: delta stats differ: %d derivations / %d rounds, serial %d / %d",
						trial, step, shardCounts[i+1], rep.Derivations, rep.Iterations, o.Derivations, o.Iterations)
				}
				if got, want := insertionSet(rep), insertionSet(o); got != want {
					t.Fatalf("trial %d step %d S=%d: insertion reports differ\nserial:\n%s\nsharded:\n%s",
						trial, step, shardCounts[i+1], want, got)
				}
			}
			check(fmt.Sprintf("step %d", step))
		}
	}
}

// insertionSet renders an insertion report's tuple and derivation
// lists as one sorted comparable string (the sharded engine emits them
// in shard order, the serial one in firing order).
func insertionSet(rep *exchange.InsertionReport) string {
	var lines []string
	for _, it := range rep.InsertedTuples {
		lines = append(lines, "T:"+it.Ref.Rel+"#"+it.Ref.Key+"="+model.EncodeDatums(it.Row))
	}
	for _, d := range rep.InsertedDerivations {
		lines = append(lines, "D:"+d.Mapping+"|"+model.EncodeDatums(d.Row))
	}
	sortStrings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
