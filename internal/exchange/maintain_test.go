package exchange_test

import (
	"testing"

	"repro/internal/exchange"
	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestDeleteLocalPropagates(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	// Delete A(1): everything resting solely on it must disappear —
	// A(1), N(1,sn1,true) (m2), C(1,cn1) (m1), O(sn1,7) (m4),
	// O(cn1,7) (m5) — while the A(2) family survives.
	report, err := sys.DeleteLocal("A", []model.Datum{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if report.LocalDeleted != 1 {
		t.Errorf("LocalDeleted = %d", report.LocalDeleted)
	}
	if report.TuplesDeleted != 5 {
		t.Errorf("TuplesDeleted = %d, want 5", report.TuplesDeleted)
	}
	gone := []struct {
		rel string
		key []model.Datum
	}{
		{"A", []model.Datum{int64(1)}},
		{"N", []model.Datum{int64(1), "sn1", true}},
		{"C", []model.Datum{int64(1), "cn1"}},
		{"O", []model.Datum{"sn1", int64(7)}},
		{"O", []model.Datum{"cn1", int64(7)}},
	}
	for _, g := range gone {
		if _, ok := sys.DB.MustTable(g.rel).LookupKey(g.key); ok {
			t.Errorf("%s%v should have been removed", g.rel, g.key)
		}
	}
	kept := []struct {
		rel string
		key []model.Datum
	}{
		{"A", []model.Datum{int64(2)}},
		{"C", []model.Datum{int64(2), "cn2"}},
		{"N", []model.Datum{int64(1), "cn1", false}}, // its own leaf
		{"O", []model.Datum{"sn2", int64(5)}},
		{"O", []model.Datum{"cn2", int64(5)}},
	}
	for _, k := range kept {
		if _, ok := sys.DB.MustTable(k.rel).LookupKey(k.key); !ok {
			t.Errorf("%s%v should have survived", k.rel, k.key)
		}
	}
}

// TestDeleteLocalMatchesRebuild is the golden test: after a deletion,
// the maintained instance must equal the instance obtained by
// rebuilding exchange from scratch on the reduced base data.
func TestDeleteLocalMatchesRebuild(t *testing.T) {
	maintained := fixture.MustSystem(fixture.Options{})
	if _, err := maintained.DeleteLocal("A", []model.Datum{int64(1)}); err != nil {
		t.Fatal(err)
	}

	// Rebuild: same schema, base data without A(1).
	schema, err := fixture.Schema(fixture.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := exchange.NewSystem(schema, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(rebuilt.InsertLocal("A", model.Tuple{int64(2), "sn2", int64(5)}))
	must(rebuilt.InsertLocal("N", model.Tuple{int64(1), "cn1", false}))
	must(rebuilt.InsertLocal("C", model.Tuple{int64(2), "cn2"}))
	must(rebuilt.Run())

	for _, rel := range []string{"A", "C", "N", "O"} {
		a := maintained.DB.MustTable(rel).SortedRows()
		b := rebuilt.DB.MustTable(rel).SortedRows()
		if len(a) != len(b) {
			t.Errorf("%s: maintained %d rows, rebuilt %d", rel, len(a), len(b))
			continue
		}
		for i := range a {
			if model.EncodeDatums(a[i]) != model.EncodeDatums(b[i]) {
				t.Errorf("%s row %d: %v vs %v", rel, i, a[i], b[i])
			}
		}
	}
	// Provenance rows must match too.
	for _, m := range schema.Mappings() {
		a, err := maintained.ProvRows(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.ProvRows(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("P_%s: maintained %d rows, rebuilt %d", m.Name, len(a), len(b))
		}
	}
}

// TestDeleteLocalCyclicSupport: with m3 the tuples C(1,cn1) and
// N(1,cn1,false) support each other; deleting N's local contribution
// removes their only external support, so the whole cycle must
// collapse — the case where naive counting-based maintenance fails and
// the derivability fixpoint is required.
func TestDeleteLocalCyclicSupport(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{IncludeM3: true})
	report, err := sys.DeleteLocal("N", []model.Datum{int64(1), "cn1", false})
	if err != nil {
		t.Fatal(err)
	}
	if report.LocalDeleted != 1 {
		t.Fatalf("LocalDeleted = %d", report.LocalDeleted)
	}
	for _, g := range []struct {
		rel string
		key []model.Datum
	}{
		{"N", []model.Datum{int64(1), "cn1", false}},
		{"C", []model.Datum{int64(1), "cn1"}},
		{"O", []model.Datum{"cn1", int64(7)}},
	} {
		if _, ok := sys.DB.MustTable(g.rel).LookupKey(g.key); ok {
			t.Errorf("%s%v should have collapsed with the cycle", g.rel, g.key)
		}
	}
	// The C(2,cn2) ⇄ N(2,cn2,false) cycle retains external support
	// (C's local contribution) and must survive.
	for _, k := range []struct {
		rel string
		key []model.Datum
	}{
		{"C", []model.Datum{int64(2), "cn2"}},
		{"N", []model.Datum{int64(2), "cn2", false}},
	} {
		if _, ok := sys.DB.MustTable(k.rel).LookupKey(k.key); !ok {
			t.Errorf("%s%v should have survived (external support remains)", k.rel, k.key)
		}
	}
}

func TestDeleteLocalNoOp(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	report, err := sys.DeleteLocal("A", []model.Datum{int64(999)})
	if err != nil {
		t.Fatal(err)
	}
	if report.LocalDeleted != 0 || report.TuplesDeleted != 0 {
		t.Errorf("deleting a missing key should be a no-op: %+v", report)
	}
	if _, err := sys.DeleteLocal("nope", []model.Datum{int64(1)}); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestDeleteLocalOnWorkloadChain(t *testing.T) {
	set, err := workload.Build(workload.Config{
		Topology:  workload.Chain,
		Profile:   workload.ProfileLinear,
		NumPeers:  5,
		DataPeers: workload.UpstreamDataPeers(5, 2),
		BaseSize:  10,
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := set.Sys
	before := sys.DB.MustTable(workload.ARel(0)).Len() // 20
	// Delete one of peer 4's base tuples: its whole 5-hop chain goes.
	key := []model.Datum{int64(4)*10_000_000 + 0}
	report, err := sys.DeleteLocal(workload.ARel(4), key)
	if err != nil {
		t.Fatal(err)
	}
	if report.TuplesDeleted != 5 { // A4..A0 copies
		t.Errorf("TuplesDeleted = %d, want 5", report.TuplesDeleted)
	}
	if report.DerivationsDeleted != 4 {
		t.Errorf("DerivationsDeleted = %d, want 4", report.DerivationsDeleted)
	}
	if got := sys.DB.MustTable(workload.ARel(0)).Len(); got != before-1 {
		t.Errorf("A0 = %d rows, want %d", got, before-1)
	}
}
