package exchange_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/wal"
)

// The crash-recovery differential: a durable system killed at an
// arbitrary point — between committed batches or mid-append (torn log
// tail) — then reopened and driven through the remaining workload must
// end byte-identical to a never-crashed in-memory system that executed
// the whole workload: same instance (every table), same support index.
//
// Each script op commits exactly one logged batch, so a kill "inside"
// op i recovers the state after op i-1 and the driver re-applies ops
// i..n — the crash-and-continue discipline a real peer follows.

// recoveryOp is one scripted mutation. Ops must be deterministic and
// commit exactly one batch.
type recoveryOp struct {
	name  string
	apply func(sys *exchange.System) error
}

func insOp(rel string, vals ...int64) recoveryOp {
	rows := make([]model.Tuple, len(vals))
	for i, v := range vals {
		rows[i] = model.Tuple{v}
	}
	return recoveryOp{
		name:  fmt.Sprintf("insert %s%v", rel, vals),
		apply: func(sys *exchange.System) error { return sys.InsertLocal(rel, rows...) },
	}
}

func runOp() recoveryOp {
	return recoveryOp{name: "run", apply: func(sys *exchange.System) error {
		_, err := sys.RunDelta()
		return err
	}}
}

func delOp(rel string, key int64) recoveryOp {
	return recoveryOp{
		name: fmt.Sprintf("delete %s[%d]", rel, key),
		apply: func(sys *exchange.System) error {
			_, err := sys.DeleteLocal(rel, []model.Datum{key})
			return err
		},
	}
}

// recoveryScript drives the P⇄Q / R→P cycle schema through inserts,
// delta runs, and propagated deletions.
func recoveryScript() []recoveryOp {
	return []recoveryOp{
		insOp("R", 0, 1, 2),
		insOp("P", 1),
		runOp(),
		insOp("Q", 1, 2),
		runOp(),
		insOp("R", 3, 4),
		runOp(),
		delOp("R", 1),
		insOp("Q", 5),
		runOp(),
		delOp("Q", 2),
		insOp("R", 6),
		runOp(),
	}
}

func cycleSchema(t *testing.T) *model.Schema {
	t.Helper()
	schema := model.NewSchema()
	cols := []model.Column{{Name: "x", Type: model.TypeInt}}
	for _, name := range []string{"P", "Q", "R"} {
		if err := schema.AddRelation(model.MustRelation(name, cols, "x")); err != nil {
			t.Fatal(err)
		}
	}
	v := model.V
	for _, m := range []*model.Mapping{
		model.NewMapping("mRP", model.NewAtom("P", v("x")), model.NewAtom("R", v("x"))),
		model.NewMapping("mPQ", model.NewAtom("Q", v("x")), model.NewAtom("P", v("x"))),
		model.NewMapping("mQP", model.NewAtom("P", v("x")), model.NewAtom("Q", v("x"))),
	} {
		if err := schema.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	return schema
}

func instanceSignature(sys *exchange.System) string {
	sig := ""
	for _, name := range sys.DB.TableNames() {
		sig += name + ":"
		for _, row := range sys.DB.MustTable(name).SortedRows() {
			sig += model.EncodeDatums(row) + ";"
		}
		sig += "\n"
	}
	return sig
}

// currentWAL locates the live log segment (exactly one per directory).
func currentWAL(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one live wal segment in %s, got %v (%v)", dir, matches, err)
	}
	return matches[0]
}

func TestCrashRecoveryDifferential(t *testing.T) {
	schema := cycleSchema(t)
	ops := recoveryScript()

	// Never-crashed oracle: plain in-memory system, whole script.
	oracle, err := exchange.NewSystem(schema, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.apply(oracle); err != nil {
			t.Fatalf("oracle %s: %v", op.name, err)
		}
	}
	wantSig := instanceSignature(oracle)
	if err := oracle.EnsureSupport(); err != nil {
		t.Fatal(err)
	}
	wantSupport := oracle.SupportSignature()
	if wantSupport == "" {
		t.Fatal("oracle produced an empty support signature")
	}

	for k := 0; k <= len(ops); k++ {
		for _, torn := range []bool{false, true} {
			if torn && k == 0 {
				continue // nothing on disk to tear yet
			}
			t.Run(fmt.Sprintf("crash=%d/torn=%v", k, torn), func(t *testing.T) {
				dir := t.TempDir()
				sys, st, err := exchange.OpenDurable(cycleSchema(t), dir, wal.Options{}, exchange.Options{})
				if err != nil {
					t.Fatal(err)
				}
				walPath := currentWAL(t, dir)
				// sizes[i] is the segment length after ops[i] committed;
				// truncating into (sizes[i-1], sizes[i]) simulates a kill
				// mid-append of op i's batch.
				sizes := make([]int64, k)
				for i := 0; i < k; i++ {
					if err := ops[i].apply(sys); err != nil {
						t.Fatalf("%s: %v", ops[i].name, err)
					}
					fi, err := os.Stat(walPath)
					if err != nil {
						t.Fatal(err)
					}
					sizes[i] = fi.Size()
				}
				// Kill: abandon the store without Close. Every committed
				// batch was flushed; the in-process handle just leaks until
				// the test ends.
				_ = st
				resume := k
				if torn {
					// Tear op k-1's batch: keep a strict prefix of its
					// record, forcing recovery back to op k-2's state.
					prev := int64(0)
					if k > 1 {
						prev = sizes[k-2]
					}
					if sizes[k-1] <= prev+1 {
						t.Skip("op appended no bytes to tear")
					}
					if err := os.Truncate(walPath, prev+1); err != nil {
						t.Fatal(err)
					}
					resume = k - 1
				}

				rec, st2, err := exchange.OpenDurable(cycleSchema(t), dir, wal.Options{}, exchange.Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer st2.Close()
				for i := resume; i < len(ops); i++ {
					if err := ops[i].apply(rec); err != nil {
						t.Fatalf("resumed %s: %v", ops[i].name, err)
					}
				}
				if got := instanceSignature(rec); got != wantSig {
					t.Fatalf("recovered instance differs from never-crashed oracle\ngot:\n%s\nwant:\n%s", got, wantSig)
				}
				if err := rec.EnsureSupport(); err != nil {
					t.Fatal(err)
				}
				if got := rec.SupportSignature(); got != wantSupport {
					t.Fatalf("recovered support index differs\ngot:\n%s\nwant:\n%s", got, wantSupport)
				}
				if err := rec.JournalsMirrorTables(); err != nil {
					t.Fatalf("recovered journals do not mirror tables: %v", err)
				}
			})
		}
	}
}

// TestRecoveryWithCheckpoint crashes after a mid-script checkpoint and
// checks recovery = checkpoint + suffix replay, still matching the
// oracle.
func TestRecoveryWithCheckpoint(t *testing.T) {
	schema := cycleSchema(t)
	ops := recoveryScript()
	oracle, err := exchange.NewSystem(schema, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := op.apply(oracle); err != nil {
			t.Fatal(err)
		}
	}
	if err := oracle.EnsureSupport(); err != nil {
		t.Fatal(err)
	}

	for ckptAt := 1; ckptAt < len(ops); ckptAt += 3 {
		t.Run(fmt.Sprintf("ckpt=%d", ckptAt), func(t *testing.T) {
			dir := t.TempDir()
			sys, st, err := exchange.OpenDurable(cycleSchema(t), dir, wal.Options{}, exchange.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range ops {
				if err := op.apply(sys); err != nil {
					t.Fatalf("%s: %v", op.name, err)
				}
				if i == ckptAt {
					if err := st.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Kill without Close, reopen.
			rec, st2, err := exchange.OpenDurable(cycleSchema(t), dir, wal.Options{}, exchange.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if got, want := instanceSignature(rec), instanceSignature(oracle); got != want {
				t.Fatalf("recovered instance differs\ngot:\n%s\nwant:\n%s", got, want)
			}
			if err := rec.EnsureSupport(); err != nil {
				t.Fatal(err)
			}
			if got, want := rec.SupportSignature(), oracle.SupportSignature(); got != want {
				t.Fatalf("recovered support index differs\ngot:\n%s\nwant:\n%s", got, want)
			}
			// Recovery touched only the suffix: batches after the
			// checkpoint, not the whole history.
			if st2.Replayed() >= len(ops) {
				t.Fatalf("replayed %d batches despite checkpoint at op %d", st2.Replayed(), ckptAt)
			}
		})
	}
}
