package exchange_test

import (
	"fmt"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
)

// FuzzDeleteLocal drives random deletion sequences through a cyclic
// setting in which P and Q copy each other (a mutual-support cycle per
// key) and R feeds P external support:
//
//	mRP: P(x) :- R(x)    mPQ: Q(x) :- P(x)    mQP: P(x) :- Q(x)
//
// For every key x the pair {P(x), Q(x)} must exist exactly as long as
// any external support (a local contribution P_l(x), Q_l(x), or the
// base tuple R_l(x)) survives — when the last one goes, the whole
// cycle must be deleted together, which is the case support counting
// alone (without the localized derivability fixpoint) gets wrong.
// Each step also cross-checks the report's counters against observed
// storage deltas.
func FuzzDeleteLocal(f *testing.F) {
	// Seeds: drain a cycle's external support in different orders, at
	// both provenance layouts and several engine shard counts (byte 0
	// is the mode byte, see fuzzOptions).
	f.Add([]byte{0, 0x00, 0x11, 0x21})       // delete R(0), P_l(1), Q_l(1)
	f.Add([]byte{1, 0x01, 0x11, 0x21})       // same key drained in order R,P,Q
	f.Add([]byte{0, 0x21, 0x11, 0x01})       // reverse order
	f.Add([]byte{1, 0x00, 0x00, 0x10, 0x20}) // repeated delete of a gone key
	f.Add([]byte{0, 0x02, 0x12, 0x22, 0x01})
	f.Add([]byte{2, 0x01, 0x11, 0x21})       // 2-shard engine
	f.Add([]byte{7, 0x02, 0x12, 0x22, 0x01}) // 8 shards, materialized provenance

	const domain = 3
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 || len(ops) > 24 {
			t.Skip()
		}
		sys := buildCycleSetting(t, fuzzOptions(ops[0]))
		// present[x] tracks which external supports survive.
		type support struct{ r, p, q bool }
		present := map[int64]*support{}
		for x := int64(0); x < domain; x++ {
			present[x] = &support{r: true, p: x == 1, q: x == 1 || x == 2}
		}
		for _, op := range ops[1:] {
			rel := []string{"R", "P", "Q"}[int(op>>4)%3]
			x := int64(op&0x0f) % domain
			key := []model.Datum{x}

			tuplesBefore := publicRowCount(sys)
			derivsBefore := derivationCount(t, sys)

			report, err := sys.DeleteLocal(rel, key)
			if err != nil {
				t.Fatal(err)
			}

			// Report counters must equal the observed storage deltas.
			if got := tuplesBefore - publicRowCount(sys); got != report.TuplesDeleted {
				t.Fatalf("TuplesDeleted=%d, storage lost %d rows (op %s[%d])",
					report.TuplesDeleted, got, rel, x)
			}
			if got := derivsBefore - derivationCount(t, sys); got != report.DerivationsDeleted {
				t.Fatalf("DerivationsDeleted=%d, storage lost %d derivations (op %s[%d])",
					report.DerivationsDeleted, got, rel, x)
			}
			if report.TuplesDeleted != len(report.DeletedTuples) ||
				report.DerivationsDeleted != len(report.DeletedDerivations) {
				t.Fatalf("report lists inconsistent: %+v", report)
			}

			// Track the independent support model.
			sup := present[x]
			switch rel {
			case "R":
				sup.r = false
			case "P":
				sup.p = false
			case "Q":
				sup.q = false
			}
			// The whole cycle lives or dies together.
			for y := int64(0); y < domain; y++ {
				wantAlive := present[y].r || present[y].p || present[y].q
				_, pAlive := sys.DB.MustTable("P").LookupKey([]model.Datum{y})
				_, qAlive := sys.DB.MustTable("Q").LookupKey([]model.Datum{y})
				if pAlive != wantAlive || qAlive != wantAlive {
					t.Fatalf("key %d: want alive=%v, got P=%v Q=%v (cycle not deleted together)",
						y, wantAlive, pAlive, qAlive)
				}
				_, rAlive := sys.DB.MustTable("R").LookupKey([]model.Datum{y})
				if rAlive != present[y].r {
					t.Fatalf("key %d: R alive=%v, want %v", y, rAlive, present[y].r)
				}
			}
		}
	})
}

// FuzzInsertDelete drives interleaved InsertLocal+RunDelta /
// DeleteLocal sequences through the same cyclic setting, checking
// after every operation that (a) the report counters match the
// observed storage deltas (insertion reports only on genuine delta
// runs — a run after a deletion falls back to full and says so), and
// (b) the mutual-support cycle {P(x), Q(x)} exists exactly when some
// external support survives, under arbitrary orderings of support
// arriving and draining.
func FuzzInsertDelete(f *testing.F) {
	// Seeds: drain then re-add a key's support; insert a brand-new key;
	// alternate insert/delete on one key; both provenance layouts and
	// sharded engines (mode byte 0, see fuzzOptions).
	// Action nibbles: 0/1/2 = del R/P/Q, 3/4/5 = ins R/P/Q.
	f.Add([]byte{0, 0x00, 0x30, 0x00})             // del R(0), ins R(0), del R(0)
	f.Add([]byte{1, 0x33, 0x43, 0x03, 0x13, 0x23}) // new key 3: ins R, ins P, drain all
	f.Add([]byte{0, 0x11, 0x41, 0x21, 0x51})       // mixed P/Q churn on key 1
	f.Add([]byte{1, 0x30, 0x30, 0x00, 0x00})       // duplicate insert, repeated delete
	f.Add([]byte{4, 0x33, 0x43, 0x03, 0x13, 0x23}) // 3-shard engine on the new-key churn

	const domain = 4 // one key beyond the initial data
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 || len(ops) > 24 {
			t.Skip()
		}
		sys := buildCycleSetting(t, fuzzOptions(ops[0]))
		type support struct{ r, p, q bool }
		present := map[int64]*support{}
		for x := int64(0); x < domain; x++ {
			present[x] = &support{r: x < 3, p: x == 1, q: x == 1 || x == 2}
		}
		for _, op := range ops[1:] {
			action := int(op>>4) % 6
			rel := []string{"R", "P", "Q"}[action%3]
			insert := action >= 3
			x := int64(op&0x0f) % domain
			key := []model.Datum{x}
			sup := present[x]

			tuplesBefore := publicRowCount(sys)
			derivsBefore := derivationCount(t, sys)

			if insert {
				if err := sys.InsertLocal(rel, model.Tuple{x}); err != nil {
					t.Fatal(err)
				}
				report, err := sys.RunDelta()
				if err != nil {
					t.Fatal(err)
				}
				if !report.Full {
					if got := publicRowCount(sys) - tuplesBefore; got != len(report.InsertedTuples) {
						t.Fatalf("InsertedTuples=%d, storage gained %d rows (op ins %s[%d])",
							len(report.InsertedTuples), got, rel, x)
					}
					if got := derivationCount(t, sys) - derivsBefore; got != len(report.InsertedDerivations) {
						t.Fatalf("InsertedDerivations=%d, storage gained %d derivations (op ins %s[%d])",
							len(report.InsertedDerivations), got, rel, x)
					}
				}
				switch rel {
				case "R":
					sup.r = true
				case "P":
					sup.p = true
				case "Q":
					sup.q = true
				}
			} else {
				report, err := sys.DeleteLocal(rel, key)
				if err != nil {
					t.Fatal(err)
				}
				if got := tuplesBefore - publicRowCount(sys); got != report.TuplesDeleted {
					t.Fatalf("TuplesDeleted=%d, storage lost %d rows (op del %s[%d])",
						report.TuplesDeleted, got, rel, x)
				}
				if got := derivsBefore - derivationCount(t, sys); got != report.DerivationsDeleted {
					t.Fatalf("DerivationsDeleted=%d, storage lost %d derivations (op del %s[%d])",
						report.DerivationsDeleted, got, rel, x)
				}
				switch rel {
				case "R":
					sup.r = false
				case "P":
					sup.p = false
				case "Q":
					sup.q = false
				}
			}

			// The whole cycle lives or dies with its external support.
			for y := int64(0); y < domain; y++ {
				wantAlive := present[y].r || present[y].p || present[y].q
				_, pAlive := sys.DB.MustTable("P").LookupKey([]model.Datum{y})
				_, qAlive := sys.DB.MustTable("Q").LookupKey([]model.Datum{y})
				if pAlive != wantAlive || qAlive != wantAlive {
					t.Fatalf("key %d: want alive=%v, got P=%v Q=%v", y, wantAlive, pAlive, qAlive)
				}
				_, rAlive := sys.DB.MustTable("R").LookupKey([]model.Datum{y})
				if rAlive != present[y].r {
					t.Fatalf("key %d: R alive=%v, want %v", y, rAlive, present[y].r)
				}
			}
		}
	})
}

// FuzzInterleavedChurn fuzzes the journal-repair path: unlike
// FuzzInsertDelete it buffers multiple inserts before a run and
// interleaves deletions at arbitrary points (including while inserts
// are pending, exercising the pending-buffer purge), asserting that
// (a) the delta chain NEVER breaks — DeleteLocal repairs the
// persistent journals, so every RunDelta after the initial exchange
// reports Full=false, (b) whenever no inserts are pending the
// journals mirror the backing tables exactly, and (c) after every run
// the mutual-support cycle {P(x), Q(x)} exists exactly when some
// external support survives. Action nibbles: 0/1/2 = del R/P/Q,
// 3/4/5 = ins R/P/Q (buffered), 6/7 = RunDelta.
func FuzzInterleavedChurn(f *testing.F) {
	// Seeds: churn one key through delete→insert→run; buffer several
	// inserts across a deletion before running; delete a pending row
	// before it ever propagates; both provenance layouts and sharded
	// engines (mode byte 0, see fuzzOptions).
	f.Add([]byte{0, 0x00, 0x30, 0x60, 0x00, 0x60})       // del R0, ins R0, run, del R0, run
	f.Add([]byte{1, 0x33, 0x43, 0x01, 0x60, 0x13, 0x70}) // ins R3+P3 pending, del P1, run, del P3, run
	f.Add([]byte{0, 0x31, 0x11, 0x60})                   // ins buffered then its key's P support deleted
	f.Add([]byte{1, 0x02, 0x12, 0x22, 0x60, 0x32, 0x60}) // drain key 2, run, re-add, run
	f.Add([]byte{0, 0x60, 0x60, 0x00, 0x60})             // idle runs around a deletion
	f.Add([]byte{2, 0x33, 0x43, 0x01, 0x60, 0x13, 0x70}) // 2-shard engine, churn across pending inserts
	f.Add([]byte{7, 0x00, 0x30, 0x60, 0x00, 0x60})       // 8 shards, materialized provenance

	const domain = 4
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 || len(ops) > 24 {
			t.Skip()
		}
		sys := buildCycleSetting(t, fuzzOptions(ops[0]))
		type support struct{ r, p, q bool }
		present := map[int64]*support{}
		for x := int64(0); x < domain; x++ {
			present[x] = &support{r: x < 3, p: x == 1, q: x == 1 || x == 2}
		}
		pending := 0
		checkCycle := func(where string) {
			t.Helper()
			for y := int64(0); y < domain; y++ {
				wantAlive := present[y].r || present[y].p || present[y].q
				_, pAlive := sys.DB.MustTable("P").LookupKey([]model.Datum{y})
				_, qAlive := sys.DB.MustTable("Q").LookupKey([]model.Datum{y})
				if pAlive != wantAlive || qAlive != wantAlive {
					t.Fatalf("%s: key %d: want alive=%v, got P=%v Q=%v", where, y, wantAlive, pAlive, qAlive)
				}
			}
		}
		for _, op := range ops[1:] {
			action := int(op>>4) % 8
			x := int64(op&0x0f) % domain
			sup := present[x]
			switch {
			case action < 3: // delete
				rel := []string{"R", "P", "Q"}[action]
				tuplesBefore := publicRowCount(sys)
				derivsBefore := derivationCount(t, sys)
				report, err := sys.DeleteLocal(rel, []model.Datum{x})
				if err != nil {
					t.Fatal(err)
				}
				if got := tuplesBefore - publicRowCount(sys); got != report.TuplesDeleted {
					t.Fatalf("TuplesDeleted=%d, storage lost %d rows (op del %s[%d])",
						report.TuplesDeleted, got, rel, x)
				}
				if got := derivsBefore - derivationCount(t, sys); got != report.DerivationsDeleted {
					t.Fatalf("DerivationsDeleted=%d, storage lost %d derivations (op del %s[%d])",
						report.DerivationsDeleted, got, rel, x)
				}
				if !sys.DeltaReady() {
					t.Fatalf("deletion of %s[%d] broke the delta chain", rel, x)
				}
				switch rel {
				case "R":
					sup.r = false
				case "P":
					sup.p = false
				case "Q":
					sup.q = false
				}
				// With inserts buffered the journals legitimately lag
				// the tables and public rows of freshly inserted keys
				// don't exist yet, so full-coherence checks only run
				// when nothing was buffered since the last run.
				if pending == 0 {
					if err := sys.JournalsMirrorTables(); err != nil {
						t.Fatalf("journals diverged after del %s[%d]: %v", rel, x, err)
					}
					checkCycle(fmt.Sprintf("after del %s[%d]", rel, x))
				}
			case action < 6: // insert (buffered)
				rel := []string{"R", "P", "Q"}[action-3]
				if err := sys.InsertLocal(rel, model.Tuple{x}); err != nil {
					t.Fatal(err)
				}
				fresh := false
				switch rel {
				case "R":
					fresh, sup.r = !sup.r, true
				case "P":
					fresh, sup.p = !sup.p, true
				case "Q":
					fresh, sup.q = !sup.q, true
				}
				if fresh {
					pending++
				}
			default: // run
				tuplesBefore := publicRowCount(sys)
				derivsBefore := derivationCount(t, sys)
				report, err := sys.RunDelta()
				if err != nil {
					t.Fatal(err)
				}
				if report.Full {
					t.Fatal("RunDelta fell back to a full fixpoint")
				}
				if got := publicRowCount(sys) - tuplesBefore; got != len(report.InsertedTuples) {
					t.Fatalf("InsertedTuples=%d, storage gained %d rows", len(report.InsertedTuples), got)
				}
				if got := derivationCount(t, sys) - derivsBefore; got != len(report.InsertedDerivations) {
					t.Fatalf("InsertedDerivations=%d, storage gained %d derivations",
						len(report.InsertedDerivations), got)
				}
				pending = 0
				if err := sys.JournalsMirrorTables(); err != nil {
					t.Fatalf("journals diverged after delta run: %v", err)
				}
				checkCycle("after run")
			}
		}
	})
}

// fuzzOptions decodes the mode byte every fuzz target reserves at
// ops[0]: bit 0 switches MaterializeAll, bits 1–2 pick the engine
// shard count from {1, 2, 3, 8} — the corpus explores both provenance
// layouts at serial and shard-parallel execution.
func fuzzOptions(mode byte) exchange.Options {
	return exchange.Options{
		MaterializeAll: mode%2 == 1,
		Shards:         []int{0, 2, 3, 8}[int(mode>>1)%4],
	}
}

// buildCycleSetting constructs the P⇄Q / R→P schema with base data
// R_l = {0,1,2}, P_l = {1}, Q_l = {1,2}.
func buildCycleSetting(t *testing.T, opts exchange.Options) *exchange.System {
	t.Helper()
	schema := model.NewSchema()
	cols := []model.Column{{Name: "x", Type: model.TypeInt}}
	for _, name := range []string{"P", "Q", "R"} {
		if err := schema.AddRelation(model.MustRelation(name, cols, "x")); err != nil {
			t.Fatal(err)
		}
	}
	v := model.V
	for _, m := range []*model.Mapping{
		model.NewMapping("mRP", model.NewAtom("P", v("x")), model.NewAtom("R", v("x"))),
		model.NewMapping("mPQ", model.NewAtom("Q", v("x")), model.NewAtom("P", v("x"))),
		model.NewMapping("mQP", model.NewAtom("P", v("x")), model.NewAtom("Q", v("x"))),
	} {
		if err := schema.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	sys, err := exchange.NewSystem(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sys.InsertLocal("R", model.Tuple{int64(0)}, model.Tuple{int64(1)}, model.Tuple{int64(2)}))
	must(sys.InsertLocal("P", model.Tuple{int64(1)}))
	must(sys.InsertLocal("Q", model.Tuple{int64(1)}, model.Tuple{int64(2)}))
	must(sys.Run())
	return sys
}

func publicRowCount(sys *exchange.System) int {
	total := 0
	for _, r := range sys.Schema.PublicRelations() {
		total += sys.DB.MustTable(r.Name).Len()
	}
	return total
}

// derivationCount counts all derivations, materialized and virtual.
func derivationCount(t *testing.T, sys *exchange.System) int {
	t.Helper()
	total := 0
	for _, m := range sys.Schema.Mappings() {
		rows, err := sys.ProvRows(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	return total
}
