package exchange_test

import (
	"math/rand"
	"testing"

	"repro/internal/exchange"
	"repro/internal/model"
)

// Three-way differential for incremental insertion, mirroring the
// deletion differential: on randomly generated CDSS settings (acyclic
// and cyclic mapping graphs) and random insertion batches, the
// Δ-seeded RunDelta must leave the database, the provenance tables,
// AND the support index identical to (a) a full re-run on the same
// warm system and (b) a from-scratch exchange oracle over all base
// data inserted so far. Some trials interleave deletions: DeleteLocal
// repairs the persistent journals from its report, so the following
// RunDelta must STAY delta-seeded (no full-run fallback) and still
// converge to the oracle.

func TestDifferentialInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < 70; trial++ {
		cyclic := trial%2 == 1
		withDeletes := trial%5 == 4
		s := genDelSetting(rng, cyclic)

		// Split base data: roughly half seeds the initial exchange, the
		// rest arrives in insertion batches.
		initial := make([][]model.Tuple, len(s.facts))
		var later []struct {
			ri  int
			row model.Tuple
		}
		for i, rows := range s.facts {
			for _, row := range rows {
				if rng.Intn(2) == 0 {
					initial[i] = append(initial[i], row)
				} else {
					later = append(later, struct {
						ri  int
						row model.Tuple
					}{i, row})
				}
			}
		}

		sysDelta := s.build(t, initial)
		sysFull := s.build(t, initial)

		// current[i] tracks the base rows present, keyed by encoding
		// (all columns are the key), for the oracle arm.
		current := make([]map[string]model.Tuple, len(s.facts))
		for i, rows := range initial {
			current[i] = map[string]model.Tuple{}
			for _, row := range rows {
				current[i][model.EncodeDatums(row)] = row
			}
		}

		step := 0
		for len(later) > 0 {
			step++
			// Take a batch of 1–3 pending rows.
			n := 1 + rng.Intn(3)
			if n > len(later) {
				n = len(later)
			}
			batch := later[:n]
			later = later[n:]
			for _, ins := range batch {
				current[ins.ri][model.EncodeDatums(ins.row)] = ins.row
				if err := sysDelta.InsertLocal(relName(ins.ri), ins.row.Clone()); err != nil {
					t.Fatal(err)
				}
				if err := sysFull.InsertLocal(relName(ins.ri), ins.row.Clone()); err != nil {
					t.Fatal(err)
				}
			}

			if withDeletes && rng.Intn(3) == 0 {
				// Delete one surviving row from both systems; journal
				// repair must keep the delta state alive, so the next
				// RunDelta stays incremental across the deletion.
				ri := rng.Intn(len(current))
				for enc, row := range current[ri] {
					delete(current[ri], enc)
					if _, err := sysDelta.DeleteLocal(relName(ri), row); err != nil {
						t.Fatal(err)
					}
					if _, err := sysFull.DeleteLocal(relName(ri), row); err != nil {
						t.Fatal(err)
					}
					if !sysDelta.DeltaReady() {
						t.Fatalf("trial %d step %d: delta state lost across deletion (journal repair failed)", trial, step)
					}
					break
				}
			}

			wantFull := !sysDelta.DeltaReady()
			tuplesBefore := publicRowCount(sysDelta)
			derivsBefore := derivationCount(t, sysDelta)
			report, err := sysDelta.RunDelta()
			if err != nil {
				t.Fatalf("trial %d step %d: RunDelta: %v", trial, step, err)
			}
			if report.Full != wantFull {
				t.Fatalf("trial %d step %d: report.Full=%v, want %v", trial, step, report.Full, wantFull)
			}
			if !report.Full {
				// Report lists must match the observed storage deltas.
				if got := publicRowCount(sysDelta) - tuplesBefore; got != len(report.InsertedTuples) {
					t.Fatalf("trial %d step %d: InsertedTuples=%d, storage gained %d rows",
						trial, step, len(report.InsertedTuples), got)
				}
				if got := derivationCount(t, sysDelta) - derivsBefore; got != len(report.InsertedDerivations) {
					t.Fatalf("trial %d step %d: InsertedDerivations=%d, storage gained %d derivations",
						trial, step, len(report.InsertedDerivations), got)
				}
			}
			if err := sysFull.Run(); err != nil {
				t.Fatalf("trial %d step %d: full Run: %v", trial, step, err)
			}

			oracleFacts := make([][]model.Tuple, len(current))
			for i := range current {
				for _, row := range current[i] {
					oracleFacts[i] = append(oracleFacts[i], row)
				}
			}
			oracle := s.build(t, oracleFacts)

			sigDelta, sigFull, sigOracle := signature(t, sysDelta), signature(t, sysFull), signature(t, oracle)
			if sigDelta != sigOracle {
				t.Fatalf("trial %d step %d (cyclic=%v): delta != oracle\nmappings: %v\ndelta:\n%s\noracle:\n%s",
					trial, step, cyclic, s.mappings, sigDelta, sigOracle)
			}
			if sigFull != sigOracle {
				t.Fatalf("trial %d step %d (cyclic=%v): full != oracle\nmappings: %v\nfull:\n%s\noracle:\n%s",
					trial, step, cyclic, s.mappings, sigFull, sigOracle)
			}
			if sysDelta.HasSupportIndex() && oracle.HasSupportIndex() {
				if got, want := sysDelta.SupportSignature(), oracle.SupportSignature(); got != want {
					t.Fatalf("trial %d step %d: support index differs from from-scratch build\ndelta:\n%s\noracle:\n%s",
						trial, step, got, want)
				}
			}
		}
	}
}

// TestRunDeltaMultiHeadMapping covers the multi-head (GLAV) path of
// the head-surfacing hook: one derivation relates two target tuples,
// whose encoded keys the engine must surface without clobbering each
// other. Incremental insertion and a subsequent deletion must both
// leave storage and support index identical to a from-scratch oracle.
func TestRunDeltaMultiHeadMapping(t *testing.T) {
	build := func(xs ...int64) *exchange.System {
		t.Helper()
		schema := model.NewSchema()
		cols := []model.Column{{Name: "x", Type: model.TypeInt}}
		for _, name := range []string{"S", "T1", "T2"} {
			if err := schema.AddRelation(model.MustRelation(name, cols, "x")); err != nil {
				t.Fatal(err)
			}
		}
		v := model.V
		m := model.NewMultiHeadMapping("mGLAV",
			[]model.Atom{model.NewAtom("T1", v("x")), model.NewAtom("T2", v("x"))},
			[]model.Atom{model.NewAtom("S", v("x"))})
		if err := schema.AddMapping(m); err != nil {
			t.Fatal(err)
		}
		sys, err := exchange.NewSystem(schema, exchange.Options{MaterializeAll: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			if err := sys.InsertLocal("S", model.Tuple{x}); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := build(1, 2)
	if err := sys.InsertLocal("S", model.Tuple{int64(3)}); err != nil {
		t.Fatal(err)
	}
	report, err := sys.RunDelta()
	if err != nil {
		t.Fatal(err)
	}
	if report.Full {
		t.Fatal("unexpected full-run fallback")
	}
	// One new derivation relating two new target tuples.
	if len(report.InsertedDerivations) != 1 || len(report.InsertedTuples) != 3 {
		t.Fatalf("report = %+v, want 1 derivation and 3 tuples (S, T1, T2)", report)
	}
	oracle := build(1, 2, 3)
	if got, want := signature(t, sys), signature(t, oracle); got != want {
		t.Fatalf("multi-head delta != oracle\ndelta:\n%s\noracle:\n%s", got, want)
	}
	if got, want := sys.SupportSignature(), oracle.SupportSignature(); got != want {
		t.Fatalf("multi-head support index != oracle\ndelta:\n%s\noracle:\n%s", got, want)
	}
	// Deleting the base row must take both heads with it.
	rep, err := sys.DeleteLocal("S", []model.Datum{int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TuplesDeleted != 3 || rep.DerivationsDeleted != 1 {
		t.Fatalf("deletion report = %+v, want 3 tuples and 1 derivation", rep)
	}
	if got, want := signature(t, sys), signature(t, build(1, 2)); got != want {
		t.Fatalf("post-delete state != oracle\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunDeltaNoPendingIsCheapNoOp checks that RunDelta with nothing
// pending does no work and reports nothing.
func TestRunDeltaNoPendingIsCheapNoOp(t *testing.T) {
	sys := buildCycleSetting(t, exchange.Options{})
	report, err := sys.RunDelta()
	if err != nil {
		t.Fatal(err)
	}
	if report.Full {
		t.Fatal("RunDelta on warm system reported a full run")
	}
	if report.Derivations != 0 || len(report.InsertedTuples) != 0 || len(report.InsertedLocals) != 0 {
		t.Fatalf("no-pending RunDelta did work: %+v", report)
	}
}

// TestSupportPoolChurn drives sustained delete/re-derive churn through
// the cycle setting and asserts the support index's derivation, edge,
// and atom pools stay bounded by the live size (free lists recycle
// vacated slots) instead of growing with total churn.
func TestSupportPoolChurn(t *testing.T) {
	sys := buildCycleSetting(t, exchange.Options{})
	// Warm up one churn cycle so every pool reaches steady state.
	churn := func(x int64) {
		key := []model.Datum{x}
		if _, err := sys.DeleteLocal("R", key); err != nil {
			t.Fatal(err)
		}
		if err := sys.InsertLocal("R", model.Tuple{x}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunDelta(); err != nil {
			t.Fatal(err)
		}
	}
	churn(0)
	derivSlots0, live0, edges0, _, atoms0 := sys.SupportPoolSizes()
	for i := 0; i < 200; i++ {
		churn(int64(i % 3))
	}
	derivSlots, live, edges, freeEdges, atoms := sys.SupportPoolSizes()
	if live != live0 {
		t.Fatalf("live derivations drifted: %d -> %d", live0, live)
	}
	// Pools may exceed the warm-up size by at most one churn cycle's
	// worth of slack (deletion frees after the re-derive allocated).
	const slack = 8
	if derivSlots > derivSlots0+slack {
		t.Errorf("derivation slots grew with churn: %d -> %d", derivSlots0, derivSlots)
	}
	if edges > edges0+2*slack {
		t.Errorf("edge pool grew with churn: %d -> %d (free %d)", edges0, edges, freeEdges)
	}
	if atoms > atoms0+2*slack {
		t.Errorf("atom pool grew with churn: %d -> %d", atoms0, atoms)
	}
}
