package exchange

import (
	"fmt"

	"repro/internal/model"
)

// MaintenanceReport summarizes one incremental deletion propagation.
type MaintenanceReport struct {
	// LocalDeleted counts base tuples removed from local-contribution
	// tables.
	LocalDeleted int
	// TuplesDeleted counts derived tuples removed from public
	// relations because no derivation survived.
	TuplesDeleted int
	// DerivationsDeleted counts provenance rows removed because a
	// source tuple disappeared.
	DerivationsDeleted int
}

// DeleteLocal removes base tuples (by key) from a relation's
// local-contribution table and propagates the deletions: any tuple in
// any public relation that is no longer derivable from the remaining
// base data is removed, along with the provenance rows of invalidated
// derivations.
//
// This is the paper's use case Q5 — "during incremental view
// maintenance or update exchange, when a base tuple is deleted, we
// need to determine whether existing view tuples remain derivable;
// provenance can speed up this test" — implemented by evaluating the
// DERIVABILITY semiring over the stored provenance graph (the fixpoint
// handles cyclic settings, so mutually-supporting tuples whose external
// support vanished are removed together, which delete-and-rederive
// algorithms must special-case).
func (s *System) DeleteLocal(rel string, keys ...[]model.Datum) (*MaintenanceReport, error) {
	r, ok := s.Schema.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("exchange: unknown relation %q", rel)
	}
	lt, ok := s.DB.Table(r.LocalName())
	if !ok {
		return nil, fmt.Errorf("exchange: no local table for %q", rel)
	}
	report := &MaintenanceReport{}
	for _, key := range keys {
		deleted, err := lt.Delete(key)
		if err != nil {
			return nil, err
		}
		if deleted {
			report.LocalDeleted++
		}
	}
	if report.LocalDeleted == 0 {
		return report, nil
	}
	if err := s.maintain(report); err != nil {
		return nil, err
	}
	return report, nil
}

// maintain recomputes derivability over the provenance graph and
// removes underivable tuples and their invalidated derivations.
// Implemented here (rather than in provgraph) to avoid an import
// cycle: the graph structure is reconstructed inline from the
// provenance rows.
func (s *System) maintain(report *MaintenanceReport) error {
	type derivation struct {
		mapping string
		row     model.Tuple
		sources []RefKey
		targets []RefKey
	}
	var derivs []derivation
	// tuple ref -> key datums, and -> incoming derivation indices.
	keys := make(map[model.TupleRef][]model.Datum)
	incoming := make(map[model.TupleRef][]int)
	uses := make(map[model.TupleRef][]int)
	for _, m := range s.Schema.Mappings() {
		pr := s.Prov[m.Name]
		rows, err := s.ProvRows(m.Name)
		if err != nil {
			return err
		}
		for _, row := range rows {
			sources, targets, err := s.AtomRefKeys(pr, row)
			if err != nil {
				return err
			}
			idx := len(derivs)
			derivs = append(derivs, derivation{m.Name, row, sources, targets})
			for _, rk := range sources {
				keys[rk.Ref] = rk.Key
				uses[rk.Ref] = append(uses[rk.Ref], idx)
			}
			for _, rk := range targets {
				keys[rk.Ref] = rk.Key
				incoming[rk.Ref] = append(incoming[rk.Ref], idx)
			}
		}
	}
	// Register tuples present only via local contributions.
	for _, r := range s.Schema.PublicRelations() {
		t, ok := s.DB.Table(r.Name)
		if !ok {
			continue
		}
		t.Iterate(func(row model.Tuple) bool {
			ref := model.NewTupleRef(r, row)
			if _, seen := keys[ref]; !seen {
				keys[ref] = r.KeyOf(row)
			}
			return true
		})
	}

	// Monotone fixpoint of derivability (the boolean semiring of Table
	// 1) from the current local tables.
	derivable := make(map[model.TupleRef]bool, len(keys))
	for ref, key := range keys {
		if s.IsLeaf(ref.Rel, key) {
			derivable[ref] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range derivs {
			all := true
			for _, rk := range derivs[i].sources {
				if !derivable[rk.Ref] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, rk := range derivs[i].targets {
				if !derivable[rk.Ref] {
					derivable[rk.Ref] = true
					changed = true
				}
			}
		}
	}

	// Remove underivable tuples.
	for ref, key := range keys {
		if derivable[ref] {
			continue
		}
		t, ok := s.DB.Table(ref.Rel)
		if !ok {
			continue
		}
		removed, err := t.Delete(key)
		if err != nil {
			return err
		}
		if removed {
			report.TuplesDeleted++
		}
	}
	// Remove derivations that lost a source (materialized provenance
	// only; virtual rows track their source relation automatically).
	for i := range derivs {
		invalid := false
		for _, rk := range derivs[i].sources {
			if !derivable[rk.Ref] {
				invalid = true
				break
			}
		}
		if !invalid {
			continue
		}
		pr := s.Prov[derivs[i].mapping]
		if pr.Virtual {
			report.DerivationsDeleted++
			continue
		}
		removed, err := s.DB.MustTable(pr.TableName).Delete(derivs[i].row)
		if err != nil {
			return err
		}
		if removed {
			report.DerivationsDeleted++
		}
	}
	return nil
}
