package exchange

import (
	"fmt"
	"sync"

	"repro/internal/datalog"
	"repro/internal/model"
)

// MaintenanceReport summarizes one incremental deletion propagation.
type MaintenanceReport struct {
	// LocalDeleted counts base tuples removed from local-contribution
	// tables.
	LocalDeleted int
	// TuplesDeleted counts derived tuples removed from public
	// relations because no derivation survived.
	TuplesDeleted int
	// DerivationsDeleted counts provenance rows removed because a
	// source tuple disappeared.
	DerivationsDeleted int

	// TuplesVisited and DerivationsVisited measure the propagation's
	// cost: the size of the affected subgraph the delta-driven walk
	// examined. The legacy whole-graph walk reports the full instance
	// here; the delta-driven propagator reports only the refs reachable
	// from the deleted frontier — 0 derivations when the deleted tuples
	// feed no mapping.
	TuplesVisited      int
	DerivationsVisited int

	// DeletedLocals lists the refs of the base tuples removed from
	// local-contribution tables (the deletion frontier), DeletedTuples
	// the removed public-relation tuples, and DeletedDerivations the
	// removed provenance rows, so consumers (e.g. an incrementally
	// maintained provenance graph, provgraph.Apply) can apply the same
	// deletions without diffing storage. The tuple/derivation lists are
	// populated by the delta-driven propagator; MaintainLegacy leaves
	// them nil.
	DeletedLocals      []model.TupleRef
	DeletedTuples      []model.TupleRef
	DeletedDerivations []DeletedDerivation
}

// DeletedDerivation identifies one removed derivation: the mapping and
// its provenance-relation row.
type DeletedDerivation struct {
	Mapping string
	Row     model.Tuple
}

// DeleteLocal removes base tuples (by key) from a relation's
// local-contribution table and propagates the deletions: any tuple in
// any public relation that is no longer derivable from the remaining
// base data is removed, along with the provenance rows of invalidated
// derivations.
//
// This is the paper's use case Q5 — "during incremental view
// maintenance or update exchange, when a base tuple is deleted, we
// need to determine whether existing view tuples remain derivable;
// provenance can speed up this test". The propagation is delta-driven:
// the persistent support index (maintained as exchange runs) gives the
// derivations consuming each deleted ref, the affected subgraph is the
// forward closure of the deleted frontier through those support edges,
// and derivability (the boolean semiring of Table 1) is re-established
// only inside that subgraph by support counting — a derivation becomes
// valid when its last undecided source does, and tuples of a mutually-
// supporting (cyclic) component whose external support vanished are
// never counted down, so the whole cycle collapses together, which
// delete-and-rederive algorithms must special-case. Cost scales with
// the affected subgraph, not the database.
// After the propagation the deletion report is fed back into the
// compiled engine's persistent state: the deleted rows' keys join the
// deferred-repair buffer, and the next RunDelta flushes them into the
// journals (datalog.Program.ApplyDeletions) before seeding — so the
// engine state keeps mirroring the tables and the run after a
// DeleteLocal stays delta-seeded, while the deletion itself pays only
// O(deleted rows) on top of the support-index walk.
func (s *System) DeleteLocal(rel string, keys ...[]model.Datum) (*MaintenanceReport, error) {
	// One epoch for the base deletions plus everything the propagation
	// cascades to: snapshots taken mid-deletion observe none of it.
	s.DB.BeginBatch()
	defer s.DB.EndBatch()
	report, frontier, err := s.deleteLocalBase(rel, keys)
	if err != nil || report.LocalDeleted == 0 {
		return report, err
	}
	repairable := s.DeltaReady()
	if err := s.ensureSupport(); err != nil {
		s.invalidateDelta()
		return nil, err
	}
	if err := s.maintainDelta(report, frontier); err != nil {
		s.invalidateDelta()
		return nil, err
	}
	if !repairable {
		s.invalidateDelta()
		return report, nil
	}
	if err := s.deferJournalRepair(report); err != nil {
		// The tables themselves are consistent; degrade to the
		// pre-repair behavior (next run pays a full fixpoint).
		s.invalidateDelta()
	}
	return report, nil
}

// deferJournalRepair records a deletion report's removed rows in the
// deferred-repair buffer the next delta run flushes into the
// journals. Provenance rows live outside the Datalog program (they
// are hook-maintained), so only the local/public deletions are
// translated.
func (s *System) deferJournalRepair(report *MaintenanceReport) error {
	if s.deadRows == nil {
		s.deadRows = make(map[string][]string)
	}
	for _, ref := range report.DeletedLocals {
		r, ok := s.Schema.Relation(ref.Rel)
		if !ok {
			return fmt.Errorf("exchange: unknown relation %q in deletion report", ref.Rel)
		}
		name := r.LocalName()
		s.deadRows[name] = append(s.deadRows[name], ref.Key)
	}
	for _, ref := range report.DeletedTuples {
		s.deadRows[ref.Rel] = append(s.deadRows[ref.Rel], ref.Key)
	}
	return nil
}

// flushDeadRows applies the deferred journal repairs accumulated by
// DeleteLocal since the last run. A no-op when nothing is buffered or
// when the persistent state is already slated for a full reseed.
func (s *System) flushDeadRows() error {
	if len(s.deadRows) == 0 {
		return nil
	}
	dead := s.deadRows
	s.deadRows = nil
	if s.prog == nil || !s.prog.StateValid() {
		return nil
	}
	return s.prog.ApplyDeletions(dead)
}

// DeleteLocalLegacy is DeleteLocal propagating through MaintainLegacy's
// whole-graph derivability walk; kept for differential testing against
// the delta-driven propagator.
func (s *System) DeleteLocalLegacy(rel string, keys ...[]model.Datum) (*MaintenanceReport, error) {
	s.DB.BeginBatch()
	defer s.DB.EndBatch()
	report, _, err := s.deleteLocalBase(rel, keys)
	if err != nil || report.LocalDeleted == 0 {
		return report, err
	}
	if err := s.MaintainLegacy(report); err != nil {
		return nil, err
	}
	return report, nil
}

// deleteLocalBase removes the keys from the relation's local table and
// returns the refs of the tuples actually deleted (the frontier).
func (s *System) deleteLocalBase(rel string, keys [][]model.Datum) (*MaintenanceReport, []model.TupleRef, error) {
	r, ok := s.Schema.Relation(rel)
	if !ok {
		return nil, nil, fmt.Errorf("exchange: unknown relation %q", rel)
	}
	lt, ok := s.DB.Table(r.LocalName())
	if !ok {
		return nil, nil, fmt.Errorf("exchange: no local table for %q", rel)
	}
	report := &MaintenanceReport{}
	var frontier []model.TupleRef
	for _, key := range keys {
		deleted, err := lt.Delete(key)
		if err != nil {
			return nil, nil, err
		}
		if deleted {
			report.LocalDeleted++
			frontier = append(frontier, model.RefFromKey(rel, key))
			// A row inserted since the last run and deleted before it
			// ever propagated must leave the pending delta buffer too,
			// or the next RunDelta would seed from a row no table
			// holds.
			s.dropPending(rel, r, key)
		}
	}
	report.DeletedLocals = frontier
	return report, frontier, nil
}

// dropPending removes any buffered-but-not-yet-run local rows matching
// the deleted key from the pending delta buffer.
func (s *System) dropPending(rel string, r *model.Relation, key []model.Datum) {
	rows := s.pending[rel]
	if len(rows) == 0 {
		return
	}
	enc := model.EncodeDatums(key)
	kept := rows[:0]
	for _, row := range rows {
		if model.EncodeDatums(r.KeyOf(row)) != enc {
			kept = append(kept, row)
		}
	}
	if len(kept) == 0 {
		delete(s.pending, rel)
		return
	}
	s.pending[rel] = kept
}

// ensureSupport (re)builds the support index from the provenance
// relations when it is absent — after MaintainLegacy invalidated it, or
// when a ref-plan compilation failure disabled hook maintenance.
func (s *System) ensureSupport() error {
	if s.support != nil {
		return nil
	}
	n := s.opts.shardCount()
	ix := newSupportIndex(n)
	s.support = ix
	for _, m := range s.Schema.Mappings() {
		pr := s.Prov[m.Name]
		rows, err := s.ProvRows(m.Name)
		if err != nil {
			s.support = nil
			return err
		}
		for _, row := range rows {
			sources, targets, err := s.AtomRefs(pr, row)
			if err != nil {
				s.support = nil
				return err
			}
			// Route the derivation to the shard its head (first target)
			// key hashes to — the same shard whose engine worker fires
			// it, so hook maintenance and rebuilds agree on placement.
			shard := 0
			if n > 1 && len(targets) > 0 {
				shard = datalog.ShardOfKey(targets[0].Key, n)
			}
			if pr.Virtual {
				ix.shards[shard].markVirtual(m.Name, row)
			}
			s.supportAddRefs(shard, pr, row, sources, targets)
		}
	}
	return nil
}

// supportAddRefs interns the refs of one derivation and adds it to the
// given support shard (the ref-based slow path shared by the
// legacy-engine hook and index rebuilds; the compiled hooks intern
// straight from their slot buffers instead).
func (s *System) supportAddRefs(shard int, pr *ProvRel, row model.Tuple, sources, targets []model.TupleRef) {
	sup := s.support.shards[shard]
	ids := make([]int32, 0, len(sources)+len(targets))
	for _, ref := range sources {
		ids = append(ids, sup.tupleIDRef(ref))
	}
	for _, ref := range targets {
		ids = append(ids, sup.tupleIDRef(ref))
	}
	sup.add(pr.Mapping.Name, pr.Virtual, row, ids, len(sources))
}

// IsLeafRef is IsLeaf addressed by an encoded ref (no key re-encoding).
func (s *System) IsLeafRef(ref model.TupleRef) bool {
	r, ok := s.Schema.Relation(ref.Rel)
	if !ok || r.IsLocal {
		return false
	}
	lt, ok := s.DB.Table(r.LocalName())
	if !ok {
		return false
	}
	_, found := lt.LookupEncoded(ref.Key)
	return found
}

// maintainDelta propagates deletions from the frontier refs outward
// over the support index. Single-shard systems run the original
// shard-local int32 walk; sharded systems take maintainDeltaMulti,
// which walks all shards' pools under a transient global interning.
func (s *System) maintainDelta(report *MaintenanceReport, frontier []model.TupleRef) error {
	if s.support.nShards() > 1 {
		return s.maintainDeltaMulti(report, frontier)
	}
	ix := s.support.shards[0]

	// Affected subgraph: the forward closure of the frontier through
	// support edges. Every derivation consuming an affected tuple has
	// all its targets affected, so the derivations targeting affected
	// tuples (collected below) cover every derivation that can lose a
	// source.
	affected := make([]int32, 0, len(frontier))
	inAffected := make(map[int32]bool, len(frontier))
	addAffected := func(t int32) {
		if !inAffected[t] {
			inAffected[t] = true
			affected = append(affected, t)
		}
	}
	for _, ref := range frontier {
		// Interning a frontier ref the index has never seen is fine:
		// it simply has no adjacency, so only its own public row is
		// checked.
		addAffected(ix.tupleIDRef(ref))
	}
	for qi := 0; qi < len(affected); qi++ {
		for e := ix.usesHead[affected[qi]]; e != -1; e = ix.edgeNext[e] {
			for _, tgt := range ix.targets(&ix.derivs[ix.edgeDeriv[e]]) {
				addAffected(tgt)
			}
		}
	}
	var derivSet []int32
	pending := make(map[int32]int)
	for _, t := range affected {
		for e := ix.incomingHead[t]; e != -1; e = ix.edgeNext[e] {
			di := ix.edgeDeriv[e]
			if _, seen := pending[di]; !seen {
				pending[di] = 0
				derivSet = append(derivSet, di)
			}
		}
	}
	report.TuplesVisited = len(affected)
	report.DerivationsVisited = len(derivSet)

	// Localized derivability by support counting: a derivation's
	// pending count is the number of its source occurrences that sit in
	// the affected set and are not yet known derivable (sources outside
	// the set kept their derivability by construction). Leaves seed the
	// worklist; each count reaching zero fires the derivation and marks
	// its targets. Tuples never marked — including whole cyclic
	// components with no external support left — are underivable.
	derivable := make(map[int32]bool)
	for _, t := range affected {
		if s.IsLeafRef(ix.refs[t]) {
			derivable[t] = true
		}
	}
	var fire []int32
	for _, di := range derivSet {
		p := 0
		for _, src := range ix.sources(&ix.derivs[di]) {
			if inAffected[src] && !derivable[src] {
				p++
			}
		}
		pending[di] = p
		if p == 0 {
			fire = append(fire, di)
		}
	}
	for len(fire) > 0 {
		di := fire[len(fire)-1]
		fire = fire[:len(fire)-1]
		for _, tgt := range ix.targets(&ix.derivs[di]) {
			if !inAffected[tgt] || derivable[tgt] {
				continue
			}
			derivable[tgt] = true
			for e := ix.usesHead[tgt]; e != -1; e = ix.edgeNext[e] {
				ui := ix.edgeDeriv[e]
				if p, tracked := pending[ui]; tracked {
					p--
					pending[ui] = p
					if p == 0 {
						fire = append(fire, ui)
					}
				}
			}
		}
	}

	// Remove invalidated derivations (some source underivable). The
	// provenance row is deleted for materialized mappings; a virtual
	// row vanishes with its source tuple, which the same pass deletes.
	for _, di := range derivSet {
		if pending[di] == 0 {
			continue
		}
		d := &ix.derivs[di]
		if d.virtual {
			report.DerivationsDeleted++
		} else {
			removed, err := s.DB.MustTable(s.Prov[d.mapping].TableName).Delete(d.row)
			if err != nil {
				return err
			}
			if removed {
				report.DerivationsDeleted++
			}
		}
		report.DeletedDerivations = append(report.DeletedDerivations, DeletedDerivation{Mapping: d.mapping, Row: d.row})
		ix.remove(di)
	}

	// Remove underivable tuples. Every derivation touching them was
	// invalid (a valid one would have fired and marked them), so their
	// adjacency lists are empty by now.
	for _, t := range affected {
		if derivable[t] {
			continue
		}
		ref := ix.refs[t]
		if tbl, ok := s.DB.Table(ref.Rel); ok {
			removed, err := tbl.DeleteEncoded(ref.Key)
			if err != nil {
				return err
			}
			if removed {
				report.TuplesDeleted++
				report.DeletedTuples = append(report.DeletedTuples, ref)
			}
		}
	}
	return nil
}

// maintainDeltaMulti is the deletion walk over a sharded support
// index. Shard-local tuple ids are meaningless across shards (one
// tuple may be interned wherever a firing referenced it), so the walk
// interns the refs it reaches into transient walk ids of its own and
// addresses derivations globally as gid = shard<<32 | local index. A
// tuple's uses/incoming adjacency is the union over all shards'
// chains (probed read-only — shards that never saw the tuple must not
// grow); everything else — affected-closure, per-occurrence pending
// counts, leaf seeding, cycle collapse — mirrors the single-shard
// walk, and the visited counts it reports are the same unique-tuple /
// unique-derivation measures.
func (s *System) maintainDeltaMulti(report *MaintenanceReport, frontier []model.TupleRef) error {
	shards := s.support.shards

	wid := make(map[model.TupleRef]int32, len(frontier))
	var wrefs []model.TupleRef
	widOf := func(ref model.TupleRef) int32 {
		if id, ok := wid[ref]; ok {
			return id
		}
		id := int32(len(wrefs))
		wid[ref] = id
		wrefs = append(wrefs, ref)
		return id
	}

	affected := make([]int32, 0, len(frontier))
	inAffected := make(map[int32]bool, len(frontier))
	addAffected := func(t int32) {
		if !inAffected[t] {
			inAffected[t] = true
			affected = append(affected, t)
		}
	}
	for _, ref := range frontier {
		addAffected(widOf(ref))
	}
	// forEdges yields the derivations linked from ref's chain of the
	// given kind in every shard, in stable shard order.
	forEdges := func(ref model.TupleRef, incoming bool, f func(si int, di int32)) {
		for si, sh := range shards {
			lid, ok := sh.lookupID(ref)
			if !ok {
				continue
			}
			head := sh.usesHead
			if incoming {
				head = sh.incomingHead
			}
			for e := head[lid]; e != -1; e = sh.edgeNext[e] {
				f(si, sh.edgeDeriv[e])
			}
		}
	}
	for qi := 0; qi < len(affected); qi++ {
		forEdges(wrefs[affected[qi]], false, func(si int, di int32) {
			sh := shards[si]
			for _, tgt := range sh.targets(&sh.derivs[di]) {
				addAffected(widOf(sh.refs[tgt]))
			}
		})
	}
	// Pending counts partition by a derivation's home shard, which is
	// what lets the fire loop's decrement phase run shard-parallel.
	var derivSet []int64
	pendings := make([]map[int32]int, len(shards))
	for si := range pendings {
		pendings[si] = make(map[int32]int)
	}
	for _, t := range affected {
		forEdges(wrefs[t], true, func(si int, di int32) {
			if _, seen := pendings[si][di]; !seen {
				pendings[si][di] = 0
				derivSet = append(derivSet, int64(si)<<32|int64(di))
			}
		})
	}
	report.TuplesVisited = len(affected)
	report.DerivationsVisited = len(derivSet)

	derivable := make(map[int32]bool)
	for _, t := range affected {
		if s.IsLeafRef(wrefs[t]) {
			derivable[t] = true
		}
	}
	var fire []int64
	for _, g := range derivSet {
		sh := shards[g>>32]
		d := &sh.derivs[int32(g)]
		p := 0
		for _, src := range sh.sources(d) {
			// Every wid entry is affected by construction, so a hit in
			// the walk interning means the source sits in the subgraph.
			if wt, ok := wid[sh.refs[src]]; ok && !derivable[wt] {
				p++
			}
		}
		pendings[g>>32][int32(g)] = p
		if p == 0 {
			fire = append(fire, g)
		}
	}
	fireLoopMulti(shards, wid, derivable, pendings, fire)

	// Remove invalidated derivations (some source underivable).
	for _, g := range derivSet {
		if pendings[g>>32][int32(g)] == 0 {
			continue
		}
		sh := shards[g>>32]
		di := int32(g)
		d := &sh.derivs[di]
		if d.virtual {
			report.DerivationsDeleted++
		} else {
			removed, err := s.DB.MustTable(s.Prov[d.mapping].TableName).Delete(d.row)
			if err != nil {
				return err
			}
			if removed {
				report.DerivationsDeleted++
			}
		}
		report.DeletedDerivations = append(report.DeletedDerivations, DeletedDerivation{Mapping: d.mapping, Row: d.row})
		sh.remove(di)
	}

	// Remove underivable tuples.
	for _, t := range affected {
		if derivable[t] {
			continue
		}
		ref := wrefs[t]
		if tbl, ok := s.DB.Table(ref.Rel); ok {
			removed, err := tbl.DeleteEncoded(ref.Key)
			if err != nil {
				return err
			}
			if removed {
				report.TuplesDeleted++
				report.DeletedTuples = append(report.DeletedTuples, ref)
			}
		}
	}
	return nil
}

// fireLoopMulti propagates derivability from the zero-pending seed
// set. With a single shard it is the plain stack-driven walk. With
// several shards it runs in synchronized rounds: each shard's worker
// processes its home segment of the frontier (reading only its own
// adjacency arrays) and collects the fired derivations' target refs; a
// serial barrier dedups those into the newly derivable tuples; the
// workers then decrement their own pending partitions against the new
// tuples' uses chains and emit the next frontier. Pending counts
// partition by home shard, so no two workers touch the same entry, and
// each tuple becomes derivable exactly once, so every (tuple, use
// edge) pair decrements exactly once — the final derivable set and
// pending counts are identical to the serial walk's regardless of
// scheduling.
func fireLoopMulti(shards []*supportShard, wid map[model.TupleRef]int32, derivable map[int32]bool, pendings []map[int32]int, fire []int64) {
	if len(shards) <= 1 {
		for len(fire) > 0 {
			g := fire[len(fire)-1]
			fire = fire[:len(fire)-1]
			sh := shards[g>>32]
			for _, tgt := range sh.targets(&sh.derivs[int32(g)]) {
				ref := sh.refs[tgt]
				wt, ok := wid[ref]
				if !ok || derivable[wt] {
					continue
				}
				derivable[wt] = true
				for si, s2 := range shards {
					lid, found := s2.lookupID(ref)
					if !found {
						continue
					}
					for e := s2.usesHead[lid]; e != -1; e = s2.edgeNext[e] {
						di := s2.edgeDeriv[e]
						if p, tracked := pendings[si][di]; tracked {
							p--
							pendings[si][di] = p
							if p == 0 {
								fire = append(fire, int64(si)<<32|int64(di))
							}
						}
					}
				}
			}
		}
		return
	}

	frontier := fire
	homes := make([][]int64, len(shards))
	tgtRefs := make([][]model.TupleRef, len(shards))
	nextBy := make([][]int64, len(shards))
	for len(frontier) > 0 {
		for si := range homes {
			homes[si] = homes[si][:0]
		}
		for _, g := range frontier {
			homes[g>>32] = append(homes[g>>32], g)
		}
		// Phase 1 (parallel): each shard expands its home segment of
		// the frontier into target refs.
		var wg sync.WaitGroup
		for si := range shards {
			if len(homes[si]) == 0 {
				tgtRefs[si] = tgtRefs[si][:0]
				continue
			}
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				sh := shards[si]
				out := tgtRefs[si][:0]
				for _, g := range homes[si] {
					for _, tgt := range sh.targets(&sh.derivs[int32(g)]) {
						out = append(out, sh.refs[tgt])
					}
				}
				tgtRefs[si] = out
			}(si)
		}
		wg.Wait()
		// Barrier (serial): dedup targets into newly derivable tuples,
		// in stable shard order.
		var newly []model.TupleRef
		for _, refs := range tgtRefs {
			for _, ref := range refs {
				wt, ok := wid[ref]
				if !ok || derivable[wt] {
					continue
				}
				derivable[wt] = true
				newly = append(newly, ref)
			}
		}
		if len(newly) == 0 {
			return
		}
		// Phase 2 (parallel): each shard decrements its own pending
		// partition against the new tuples' uses chains.
		for si := range shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				sh := shards[si]
				pend := pendings[si]
				next := nextBy[si][:0]
				for _, ref := range newly {
					lid, ok := sh.lookupID(ref)
					if !ok {
						continue
					}
					for e := sh.usesHead[lid]; e != -1; e = sh.edgeNext[e] {
						di := sh.edgeDeriv[e]
						if p, tracked := pend[di]; tracked {
							p--
							pend[di] = p
							if p == 0 {
								next = append(next, int64(si)<<32|int64(di))
							}
						}
					}
				}
				nextBy[si] = next
			}(si)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, next := range nextBy {
			frontier = append(frontier, next...)
		}
	}
}

// MaintainLegacy recomputes derivability over the whole provenance
// graph — reconstructed inline from every provenance row — and removes
// underivable tuples and invalidated derivations. This is the pre-
// support-index propagator, kept for differential testing against
// maintainDelta; its cost is proportional to the database. It leaves
// the support index stale, so it is invalidated here and rebuilt on
// the next DeleteLocal.
func (s *System) MaintainLegacy(report *MaintenanceReport) error {
	s.support = nil
	s.invalidateDelta()
	type derivation struct {
		mapping string
		row     model.Tuple
		sources []RefKey
		targets []RefKey
	}
	var derivs []derivation
	// tuple ref -> key datums, and -> incoming derivation indices.
	keys := make(map[model.TupleRef][]model.Datum)
	incoming := make(map[model.TupleRef][]int)
	uses := make(map[model.TupleRef][]int)
	for _, m := range s.Schema.Mappings() {
		pr := s.Prov[m.Name]
		rows, err := s.ProvRows(m.Name)
		if err != nil {
			return err
		}
		for _, row := range rows {
			sources, targets, err := s.AtomRefKeys(pr, row)
			if err != nil {
				return err
			}
			idx := len(derivs)
			derivs = append(derivs, derivation{m.Name, row, sources, targets})
			for _, rk := range sources {
				keys[rk.Ref] = rk.Key
				uses[rk.Ref] = append(uses[rk.Ref], idx)
			}
			for _, rk := range targets {
				keys[rk.Ref] = rk.Key
				incoming[rk.Ref] = append(incoming[rk.Ref], idx)
			}
		}
	}
	// Register tuples present only via local contributions.
	for _, r := range s.Schema.PublicRelations() {
		t, ok := s.DB.Table(r.Name)
		if !ok {
			continue
		}
		t.Iterate(func(row model.Tuple) bool {
			ref := model.NewTupleRef(r, row)
			if _, seen := keys[ref]; !seen {
				keys[ref] = r.KeyOf(row)
			}
			return true
		})
	}
	report.TuplesVisited = len(keys)
	report.DerivationsVisited = len(derivs)

	// Monotone fixpoint of derivability (the boolean semiring of Table
	// 1) from the current local tables.
	derivable := make(map[model.TupleRef]bool, len(keys))
	for ref, key := range keys {
		if s.IsLeaf(ref.Rel, key) {
			derivable[ref] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range derivs {
			all := true
			for _, rk := range derivs[i].sources {
				if !derivable[rk.Ref] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, rk := range derivs[i].targets {
				if !derivable[rk.Ref] {
					derivable[rk.Ref] = true
					changed = true
				}
			}
		}
	}

	// Remove underivable tuples.
	for ref, key := range keys {
		if derivable[ref] {
			continue
		}
		t, ok := s.DB.Table(ref.Rel)
		if !ok {
			continue
		}
		removed, err := t.Delete(key)
		if err != nil {
			return err
		}
		if removed {
			report.TuplesDeleted++
		}
	}
	// Remove derivations that lost a source (materialized provenance
	// only; virtual rows track their source relation automatically).
	for i := range derivs {
		invalid := false
		for _, rk := range derivs[i].sources {
			if !derivable[rk.Ref] {
				invalid = true
				break
			}
		}
		if !invalid {
			continue
		}
		pr := s.Prov[derivs[i].mapping]
		if pr.Virtual {
			report.DerivationsDeleted++
			continue
		}
		removed, err := s.DB.MustTable(pr.TableName).Delete(derivs[i].row)
		if err != nil {
			return err
		}
		if removed {
			report.DerivationsDeleted++
		}
	}
	return nil
}
