package exchange

import (
	"fmt"

	"repro/internal/model"
)

// IncomingProbe describes how to find, in one mapping's provenance
// relation, the rows whose derivation produces a given target tuple:
// the reverse-edge access path of goal-directed provenance traversal.
// Every key term of a head atom is either a provenance variable or a
// constant (AtomRefKeys relies on the same invariant), so probing the
// provenance table on Cols with the target's key datums at KeyPos —
// after checking the constant positions — yields exactly the rows
// whose head atom Head reconstructs the target's reference. No other
// row can match: the probe covers every key position.
type IncomingProbe struct {
	Prov *ProvRel
	// Head is the head-atom index within the mapping (multi-head
	// mappings contribute one probe per head atom).
	Head int
	// Cols[i] is the provenance-row column that must equal the target
	// key datum at position KeyPos[i] (an index into the relation's
	// key-column order).
	Cols   []int
	KeyPos []int
	// ConstPos/Consts are the key positions the head atom fixes to
	// constants; a target whose key differs there matches no row.
	ConstPos []int
	Consts   []model.Datum
}

// Matches reports whether the probe's constant key positions agree
// with the target key (datums in the relation's key-column order).
func (p *IncomingProbe) Matches(key []model.Datum) bool {
	for i, kp := range p.ConstPos {
		if !model.Equal(key[kp], p.Consts[i]) {
			return false
		}
	}
	return true
}

// ProbeVals resolves the provenance-column values a matching row must
// hold, parallel to Cols, from the target key.
func (p *IncomingProbe) ProbeVals(key []model.Datum) []model.Datum {
	vals := make([]model.Datum, len(p.Cols))
	for i, kp := range p.KeyPos {
		vals[i] = key[kp]
	}
	return vals
}

// IncomingProbes builds, per target relation, the probe descriptors
// over all mappings and head atoms — the edge index the goal-directed
// ASR backend walks instead of materializing the provenance graph.
func (s *System) IncomingProbes() (map[string][]IncomingProbe, error) {
	probes := make(map[string][]IncomingProbe)
	for _, m := range s.Schema.Mappings() {
		pr, ok := s.Prov[m.Name]
		if !ok {
			return nil, fmt.Errorf("exchange: no provenance relation for mapping %q", m.Name)
		}
		varCol := make(map[string]int, len(pr.Vars))
		for i, v := range pr.Vars {
			varCol[v] = i
		}
		for hi, a := range m.Head {
			r, ok := s.Schema.Relation(a.Rel)
			if !ok {
				return nil, fmt.Errorf("exchange: unknown relation %q in mapping %s", a.Rel, m.Name)
			}
			p := IncomingProbe{Prov: pr, Head: hi}
			for ki, k := range r.Key {
				t := a.Args[k]
				if t.IsConst {
					p.ConstPos = append(p.ConstPos, ki)
					p.Consts = append(p.Consts, t.Const)
					continue
				}
				c, bound := varCol[t.Var]
				if !bound {
					return nil, fmt.Errorf("exchange: mapping %s key var %q not in provenance row", m.Name, t.Var)
				}
				p.Cols = append(p.Cols, c)
				p.KeyPos = append(p.KeyPos, ki)
			}
			probes[a.Rel] = append(probes[a.Rel], p)
		}
	}
	return probes, nil
}
