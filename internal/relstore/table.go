// Package relstore is the relational storage and execution substrate:
// an in-memory stand-in for the RDBMS (DB2 in the paper) that stores
// the peer instances, the provenance relations of Section 4.1, and the
// ASR tables of Section 5, and executes the physical plans that ProQL
// queries are translated into (scans, filters, hash joins including
// outer joins, UNION ALL, and GROUP BY/HAVING with semiring
// aggregation).
package relstore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// TableSchema describes a stored table. Unlike model.Relation, a table
// may have no primary key (ASR tables contain NULL-padded rows and may
// hold duplicates) — Key is nil in that case.
type TableSchema struct {
	Name    string
	Columns []model.Column
	Key     []int // nil => no primary key, duplicates allowed
}

// ColumnIndex returns the position of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SchemaOf adapts a model.Relation to a table schema.
func SchemaOf(r *model.Relation) *TableSchema {
	return &TableSchema{Name: r.Name, Columns: r.Columns, Key: r.Key}
}

// Table is an in-memory table with optional primary-key enforcement and
// optional secondary hash indexes.
type Table struct {
	Schema *TableSchema
	rows   []model.Tuple
	// pk maps encoded key datums to row index (only when Key != nil).
	pk map[string]int
	// indexes maps an index name (from IndexName) to a hash index.
	indexes map[string]*hashIndex
	// free lists row slots vacated by Delete for reuse; nil rows in
	// rows mark deleted slots.
	free []int
	// keyBuf is the reusable scratch buffer for key encoding, so an
	// insert or probe costs no builder allocation (the Datalog
	// engine's firing passes insert millions of rows). ixBuf is the
	// separate scratch for secondary-index keys, so the primary-key
	// encoding of the row just inserted stays valid until the table's
	// next key-encoding operation (InsertKeyed relies on this).
	keyBuf []byte
	ixBuf  []byte
}

// hashIndex maps encoded column values to the row indexes holding them.
type hashIndex struct {
	cols    []int
	buckets map[string][]int
}

// NewTable creates an empty table.
func NewTable(schema *TableSchema) *Table {
	t := &Table{Schema: schema, indexes: make(map[string]*hashIndex)}
	if schema.Key != nil {
		t.pk = make(map[string]int)
	}
	return t
}

// IndexName derives the registry key for a secondary index on cols.
func IndexName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// Len returns the number of live rows.
func (t *Table) Len() int { return len(t.rows) - len(t.free) }

// Insert adds a row. With a primary key, set semantics apply: a row
// whose key already exists is ignored and Insert reports false. The
// row is stored by reference; callers must not mutate it afterwards.
func (t *Table) Insert(row model.Tuple) (bool, error) {
	if len(row) != len(t.Schema.Columns) {
		return false, fmt.Errorf("relstore: %s: row arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	if t.pk != nil {
		// Duplicate lookup through the scratch buffer is allocation-
		// free; the key string is materialized only for new rows.
		key := t.encodeKey(row, t.Schema.Key)
		if _, dup := t.pk[string(key)]; dup {
			return false, nil
		}
		idx := t.claimSlot(row)
		t.pk[string(key)] = idx
		t.indexRow(idx, row)
		return true, nil
	}
	idx := t.claimSlot(row)
	t.indexRow(idx, row)
	return true, nil
}

// encodeKey encodes the row's cols into the table's scratch buffer;
// the result is only valid until the next encodeKey call.
func (t *Table) encodeKey(row model.Tuple, cols []int) []byte {
	buf := t.keyBuf[:0]
	for _, c := range cols {
		buf = model.AppendDatum(buf, row[c])
	}
	t.keyBuf = buf
	return buf
}

func (t *Table) claimSlot(row model.Tuple) int {
	if n := len(t.free); n > 0 {
		idx := t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[idx] = row
		return idx
	}
	t.rows = append(t.rows, row)
	return len(t.rows) - 1
}

func (t *Table) indexRow(idx int, row model.Tuple) {
	if len(t.indexes) == 0 {
		return
	}
	for _, ix := range t.indexes {
		buf := t.ixBuf[:0]
		for _, c := range ix.cols {
			buf = model.AppendDatum(buf, row[c])
		}
		t.ixBuf = buf
		ix.buckets[string(buf)] = append(ix.buckets[string(buf)], idx)
	}
}

// InsertKeyed is Insert additionally surfacing the row's canonical
// primary-key encoding (the same bytes as model.EncodeDatums of the key
// attributes, i.e. a model.TupleRef's Key). Consumers that intern
// tuples by encoded key — the update-exchange support index — reuse the
// probe Insert performs anyway instead of re-encoding the key. The
// returned slice aliases the table's scratch buffer: it is valid only
// until the table's next key-encoding operation (insert, delete, or
// keyed lookup) and must be copied to be retained. For keyless tables
// the encoding is nil.
func (t *Table) InsertKeyed(row model.Tuple) ([]byte, bool, error) {
	if len(row) != len(t.Schema.Columns) {
		return nil, false, fmt.Errorf("relstore: %s: row arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	if t.pk == nil {
		idx := t.claimSlot(row)
		t.indexRow(idx, row)
		return nil, true, nil
	}
	key := t.encodeKey(row, t.Schema.Key)
	if _, dup := t.pk[string(key)]; dup {
		return key, false, nil
	}
	idx := t.claimSlot(row)
	t.pk[string(key)] = idx
	t.indexRow(idx, row)
	return key, true, nil
}

// Delete removes the row with the given primary key, reporting whether
// it existed. Only valid on keyed tables.
func (t *Table) Delete(key []model.Datum) (bool, error) {
	if t.pk == nil {
		return false, fmt.Errorf("relstore: %s has no primary key", t.Schema.Name)
	}
	return t.DeleteEncoded(model.EncodeDatums(key))
}

// DeleteEncoded is Delete for callers that already hold the canonical
// key encoding (model.EncodeDatums of the key attributes) — deletion
// propagation addresses tuples by model.TupleRef, whose Key field is
// exactly this encoding, so the delete needs no re-encoding round trip.
func (t *Table) DeleteEncoded(enc string) (bool, error) {
	if t.pk == nil {
		return false, fmt.Errorf("relstore: %s has no primary key", t.Schema.Name)
	}
	idx, ok := t.pk[enc]
	if !ok {
		return false, nil
	}
	row := t.rows[idx]
	delete(t.pk, enc)
	t.unindexAndFree(idx, row)
	return true, nil
}

// unindexAndFree removes a live row's entries from every secondary
// index and returns its slot to the free list (shared by the keyed
// and predicate delete paths, so index maintenance cannot diverge).
func (t *Table) unindexAndFree(idx int, row model.Tuple) {
	for _, ix := range t.indexes {
		k := encodeCols(row, ix.cols)
		bucket := ix.buckets[k]
		for i, r := range bucket {
			if r == idx {
				ix.buckets[k] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(ix.buckets[k]) == 0 {
			delete(ix.buckets, k)
		}
	}
	t.rows[idx] = nil
	t.free = append(t.free, idx)
}

// DeleteWhere removes every live row for which match returns true,
// maintaining the primary key (if any) and all secondary indexes, and
// reports how many rows were removed. Unlike Delete it works on
// keyless tables (ASR backing tables hold NULL-padded span rows with
// no primary key), which is what incremental ASR maintenance patches.
// match must not mutate the rows or the table.
func (t *Table) DeleteWhere(match func(model.Tuple) bool) int {
	removed := 0
	for idx, row := range t.rows {
		if row == nil || !match(row) {
			continue
		}
		if t.pk != nil {
			key := t.encodeKey(row, t.Schema.Key)
			delete(t.pk, string(key))
		}
		t.unindexAndFree(idx, row)
		removed++
	}
	return removed
}

// LookupKey returns the row with the given primary key, if present.
func (t *Table) LookupKey(key []model.Datum) (model.Tuple, bool) {
	if t.pk == nil {
		return nil, false
	}
	return t.LookupEncoded(model.EncodeDatums(key))
}

// LookupKeyBytes is LookupEncoded for callers holding the canonical
// key encoding as a byte scratch: the map probe allocates nothing. It
// is a pure read and safe under concurrent readers as long as no
// writer runs — the sharded exchange hooks use it as their duplicate
// probe against tables that are only written between runs.
func (t *Table) LookupKeyBytes(enc []byte) (model.Tuple, bool) {
	if t.pk == nil {
		return nil, false
	}
	idx, ok := t.pk[string(enc)]
	if !ok {
		return nil, false
	}
	return t.rows[idx], true
}

// LookupEncoded is LookupKey for callers holding the canonical key
// encoding (a model.TupleRef's Key field).
func (t *Table) LookupEncoded(enc string) (model.Tuple, bool) {
	if t.pk == nil {
		return nil, false
	}
	idx, ok := t.pk[enc]
	if !ok {
		return nil, false
	}
	return t.rows[idx], true
}

// CreateIndex builds (or rebuilds) a secondary hash index on cols.
func (t *Table) CreateIndex(cols []int) {
	ix := &hashIndex{cols: append([]int(nil), cols...), buckets: make(map[string][]int)}
	for idx, row := range t.rows {
		if row == nil {
			continue
		}
		k := encodeCols(row, cols)
		ix.buckets[k] = append(ix.buckets[k], idx)
	}
	t.indexes[IndexName(cols)] = ix
}

// HasIndex reports whether an index on exactly cols exists.
func (t *Table) HasIndex(cols []int) bool {
	_, ok := t.indexes[IndexName(cols)]
	return ok
}

// EnsureIndex builds a secondary hash index on cols unless one already
// exists — the idempotent entry point for goal-directed probes that
// want an index on first use without paying a rebuild on every call.
func (t *Table) EnsureIndex(cols []int) {
	if !t.HasIndex(cols) {
		t.CreateIndex(cols)
	}
}

// ProbeEach calls fn for every live row whose cols equal vals, using an
// index if one exists and scanning otherwise. Unlike Probe it
// materializes no result slice; fn returning false stops the
// enumeration. fn must not mutate the rows or the table.
func (t *Table) ProbeEach(cols []int, vals []model.Datum, fn func(model.Tuple) bool) {
	if ix, ok := t.indexes[IndexName(cols)]; ok {
		// Local buffer, not t.keyBuf: a read path, safe under
		// concurrent readers.
		var buf []byte
		for _, v := range vals {
			buf = model.AppendDatum(buf, v)
		}
		for _, i := range ix.buckets[string(buf)] {
			if !fn(t.rows[i]) {
				return
			}
		}
		return
	}
	want := model.EncodeDatums(vals)
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		if encodeCols(row, cols) == want {
			if !fn(row) {
				return
			}
		}
	}
}

// Probe returns the rows whose cols equal vals, using an index if one
// exists and scanning otherwise.
func (t *Table) Probe(cols []int, vals []model.Datum) []model.Tuple {
	if ix, ok := t.indexes[IndexName(cols)]; ok {
		// Local buffer, not t.keyBuf: Probe is a read path and must
		// stay safe under concurrent readers.
		var buf []byte
		for _, v := range vals {
			buf = model.AppendDatum(buf, v)
		}
		idxs := ix.buckets[string(buf)]
		out := make([]model.Tuple, 0, len(idxs))
		for _, i := range idxs {
			out = append(out, t.rows[i])
		}
		return out
	}
	want := model.EncodeDatums(vals)
	var out []model.Tuple
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		if encodeCols(row, cols) == want {
			out = append(out, row)
		}
	}
	return out
}

// Rows returns the live rows. The returned slice is freshly allocated
// but shares the underlying tuples; callers must not mutate them.
func (t *Table) Rows() []model.Tuple {
	out := make([]model.Tuple, 0, t.Len())
	for _, row := range t.rows {
		if row != nil {
			out = append(out, row)
		}
	}
	return out
}

// Iterate calls fn for every live row, stopping early if fn returns
// false. Unlike Rows it allocates nothing; hot paths (engine seeding,
// scans) use it to avoid a fresh slice per pass. fn must not mutate the
// rows or the table.
func (t *Table) Iterate(fn func(model.Tuple) bool) {
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(row) {
			return
		}
	}
}

// Cursor is a resumable, allocation-free iterator over a table's live
// rows, for pull-based consumers (relstore.Stream). Rows inserted after
// the cursor was created may or may not be visited.
type Cursor struct {
	t   *Table
	pos int
}

// Cursor returns a cursor positioned before the first live row.
func (t *Table) Cursor() *Cursor { return &Cursor{t: t} }

// Next returns the next live row, or false when exhausted.
func (c *Cursor) Next() (model.Tuple, bool) {
	for c.pos < len(c.t.rows) {
		row := c.t.rows[c.pos]
		c.pos++
		if row != nil {
			return row, true
		}
	}
	return nil, false
}

// SortedRows returns the live rows in lexicographic datum order;
// used for deterministic output in tests and the CLI.
func (t *Table) SortedRows() []model.Tuple {
	out := t.Rows()
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out
}

func compareRows(a, b model.Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := model.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

func encodeCols(row model.Tuple, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		model.EncodeDatum(&sb, row[c])
	}
	return sb.String()
}

// Database is a named collection of tables — one peer's replica of the
// whole CDSS (the paper's standalone ORCHESTRA engine keeps a complete
// replica at each peer).
type Database struct {
	tables map[string]*Table
	// version counts definition changes (table creates and drops); see
	// Version.
	version uint64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Version returns a counter bumped on every definition change
// (CreateTable/DropTable). Caches keyed on query shape — the ProQL
// plan cache — compare it to detect that mappings, provenance tables
// or ASR materializations changed out from under a cached plan. Row
// churn does not bump it: cached planning decisions stay sound across
// data changes, only definition changes invalidate.
func (db *Database) Version() uint64 { return db.version }

// CreateTable registers a new empty table.
func (db *Database) CreateTable(schema *TableSchema) (*Table, error) {
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", schema.Name)
	}
	t := NewTable(schema)
	db.tables[schema.Name] = t
	db.version++
	return t, nil
}

// DropTable removes a table if it exists.
func (db *Database) DropTable(name string) {
	if _, ok := db.tables[name]; ok {
		delete(db.tables, name)
		db.version++
	}
}

// Table looks up a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// MustTable looks up a table, panicking if absent (programming error).
func (db *Database) MustTable(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic(fmt.Sprintf("relstore: no such table %q", name))
	}
	return t
}

// TableNames returns all table names, sorted.
func (db *Database) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalRows sums Len over all tables; the "instance size" metric of
// Figures 9 and 10.
func (db *Database) TotalRows() int {
	total := 0
	for _, t := range db.tables {
		total += t.Len()
	}
	return total
}
