// Package relstore is the relational storage and execution substrate:
// an in-memory stand-in for the RDBMS (DB2 in the paper) that stores
// the peer instances, the provenance relations of Section 4.1, and the
// ASR tables of Section 5, and executes the physical plans that ProQL
// queries are translated into (scans, filters, hash joins including
// outer joins, UNION ALL, and GROUP BY/HAVING with semiring
// aggregation).
//
// Tables are multi-versioned: every row slot carries the epoch it was
// born in and, once deleted, the epoch it died in. Database.Snapshot
// pins an epoch and returns a read-only view whose reads observe
// exactly the rows committed by that epoch, so ProQL queries run
// against a consistent state while delta runs keep committing. The
// writer pays O(changed rows) per commit — no copy-on-write of tables
// or indexes — and deleted slots are reclaimed once no pinned snapshot
// can still observe them. See snapshot.go for the epoch discipline,
// backend.go for the pluggable slot store behind each table, and
// snapshot.go's commit hook for the write-ahead logging seam.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
)

// TableSchema describes a stored table. Unlike model.Relation, a table
// may have no primary key (ASR tables contain NULL-padded rows and may
// hold duplicates) — Key is nil in that case.
type TableSchema struct {
	Name    string
	Columns []model.Column
	Key     []int // nil => no primary key, duplicates allowed
}

// ColumnIndex returns the position of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SchemaOf adapts a model.Relation to a table schema.
func SchemaOf(r *model.Relation) *TableSchema {
	return &TableSchema{Name: r.Name, Columns: r.Columns, Key: r.Key}
}

// Table is a handle to a stored table with optional primary-key
// enforcement and optional secondary hash indexes. The handle is
// cheap: the writable head table and every snapshot view share the
// same guarded state, differing only in the epoch they read as of.
// Writes are rejected on views. Mutating methods may be called by one
// logical writer at a time (concurrent writers inside a sharded sync
// are serialized per operation by the internal lock, but the scratch
// aliasing of InsertKeyed assumes one writer per table); reads are
// safe from any number of goroutines.
type Table struct {
	Schema *TableSchema
	s      *tableState
	// asOf is 0 on the writable head (reads see the latest state,
	// including uncommitted writes) and the pinned epoch on views.
	asOf uint64
}

// tableState is the versioned storage shared by a head table and all
// of its snapshot views: a slot Backend holding the row versions, plus
// the key map, secondary indexes, and reclamation bookkeeping.
type tableState struct {
	mu     sync.RWMutex
	schema *TableSchema
	// db is the owning database (epoch source); nil for standalone
	// tables, which delete eagerly since no snapshot can observe them.
	db *Database
	// be stores the row versions (slot → tuple, born/died interval,
	// version-chain link). memBackend unless the database plugs in
	// another one.
	be Backend
	// pk maps encoded key datums to the newest slot for that key (only
	// when Key != nil). The entry may point at a dead slot until the
	// slot is reclaimed; prev links chain the older versions behind it.
	pk map[string]int
	// indexes maps an index name (from IndexName) to a hash index.
	// Buckets hold live and dead-but-unreclaimed slots; probes filter
	// by visibility.
	indexes map[string]*hashIndex
	// dead lists deleted slots awaiting reclamation (empty for
	// standalone tables, which reclaim inside the delete).
	dead []int
	// live counts rows visible to the writer.
	live int
	// keyBuf is the reusable scratch buffer for key encoding, so an
	// insert or probe costs no builder allocation (the Datalog
	// engine's firing passes insert millions of rows). ixBuf is the
	// separate scratch for secondary-index keys, so the primary-key
	// encoding of the row just inserted stays valid until the table's
	// next key-encoding operation (InsertKeyed relies on this).
	keyBuf []byte
	ixBuf  []byte
}

// hashIndex maps encoded column values to the row slots holding them.
type hashIndex struct {
	cols    []int
	buckets map[string][]int
}

// NewTable creates an empty standalone table (not owned by a
// Database): deletes reclaim immediately and no snapshots exist.
func NewTable(schema *TableSchema) *Table {
	return newTable(schema, nil)
}

func newTable(schema *TableSchema, db *Database) *Table {
	factory := newMemBackend
	if db != nil && db.BackendFactory != nil {
		factory = db.BackendFactory
	}
	s := &tableState{schema: schema, db: db, be: factory(schema), indexes: make(map[string]*hashIndex)}
	if schema.Key != nil {
		s.pk = make(map[string]int)
	}
	return &Table{Schema: schema, s: s}
}

// stamp is the epoch new writes are born (and deletes die) in: one
// past the last published epoch, so a snapshot taken before the
// surrounding commit publishes cannot see them.
func (s *tableState) stamp() uint64 {
	if s.db == nil {
		return 1
	}
	return s.db.published.Load() + 1
}

// visible reports whether slot i exists at epoch asOf (0 = the
// writer's view of the latest state). Callers hold s.mu.
func (s *tableState) visible(i int, asOf uint64) bool {
	_, ok := s.liveRow(i, asOf)
	return ok
}

// liveRow returns the slot's row when it is visible at asOf (0 = the
// writer's view). Callers hold s.mu.
func (s *tableState) liveRow(i int, asOf uint64) (model.Tuple, bool) {
	row := s.be.Row(i)
	if row == nil {
		return nil, false
	}
	born, died := s.be.Stamps(i)
	if asOf == 0 {
		if died != 0 {
			return nil, false
		}
		return row, true
	}
	if born <= asOf && (died == 0 || died > asOf) {
		return row, true
	}
	return nil, false
}

func (t *Table) readOnlyErr() error {
	return fmt.Errorf("relstore: %s: write rejected on a read-only snapshot (epoch %d)", t.Schema.Name, t.asOf)
}

// IndexName derives the registry key for a secondary index on cols.
func IndexName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// Len returns the number of live rows (at the view's epoch, for
// snapshots).
func (t *Table) Len() int {
	s := t.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t.asOf == 0 {
		return s.live
	}
	n := 0
	for i, slots := 0, s.be.Slots(); i < slots; i++ {
		if s.visible(i, t.asOf) {
			n++
		}
	}
	return n
}

// Insert adds a row. With a primary key, set semantics apply: a row
// whose key already exists is ignored and Insert reports false. The
// row is stored by reference; callers must not mutate it afterwards.
func (t *Table) Insert(row model.Tuple) (bool, error) {
	_, ok, err := t.InsertKeyed(row)
	return ok, err
}

// InsertKeyed is Insert additionally surfacing the row's canonical
// primary-key encoding (the same bytes as model.EncodeDatums of the key
// attributes, i.e. a model.TupleRef's Key). Consumers that intern
// tuples by encoded key — the update-exchange support index — reuse the
// probe Insert performs anyway instead of re-encoding the key. The
// returned slice aliases the table's scratch buffer: it is valid only
// until the table's next key-encoding operation (insert, delete, or
// keyed lookup) and must be copied to be retained. For keyless tables
// the encoding is nil.
func (t *Table) InsertKeyed(row model.Tuple) ([]byte, bool, error) {
	if t.asOf != 0 {
		return nil, false, t.readOnlyErr()
	}
	if len(row) != len(t.Schema.Columns) {
		return nil, false, fmt.Errorf("relstore: %s: row arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	s := t.s
	s.mu.Lock()
	key, inserted := s.insert(row)
	s.mu.Unlock()
	if inserted && s.db != nil {
		s.db.opPublish()
	}
	return key, inserted, nil
}

// BulkLoad inserts a batch of rows through a single lock acquisition
// and a single publish, presizing the backend and the primary-key map
// for the whole batch. It is the checkpoint-recovery fast path:
// loading a large snapshot through per-row Insert pays a lock round
// trip, a publish check, a duplicate probe, and incremental map and
// slice growth per row, which dominates restart time. Every row must
// be new — on keyed tables a key that repeats within the batch or
// already exists in the table is an error (a consistent snapshot
// never holds one; a checkpoint that does is corrupt), detected by
// the map's size not growing, so each key is hashed exactly once. On
// error the table is left partially loaded and must be discarded.
// Rows are stored by reference; the batch publishes as one epoch.
// Returns how many rows were inserted.
func (t *Table) BulkLoad(rows []model.Tuple) (int, error) {
	if t.asOf != 0 {
		return 0, t.readOnlyErr()
	}
	s := t.s
	for _, row := range rows {
		if len(row) != len(t.Schema.Columns) {
			return 0, fmt.Errorf("relstore: %s: row arity %d, want %d", t.Schema.Name, len(row), len(t.Schema.Columns))
		}
	}
	s.mu.Lock()
	if g, ok := s.be.(growableBackend); ok {
		g.Grow(len(rows))
	}
	if s.pk != nil && len(s.pk) == 0 {
		s.pk = make(map[string]int, len(rows))
	}
	for _, row := range rows {
		idx := s.be.Claim(row, s.stamp())
		if s.pk != nil {
			key := s.encodeKey(row, s.schema.Key)
			before := len(s.pk)
			s.pk[string(key)] = idx
			if len(s.pk) == before {
				s.mu.Unlock()
				return 0, fmt.Errorf("relstore: %s: duplicate key %q in bulk load", t.Schema.Name, key)
			}
		}
		s.indexRow(idx, row)
		s.live++
		s.logInsert(row)
	}
	s.mu.Unlock()
	if len(rows) > 0 && s.db != nil {
		s.db.opPublish()
	}
	return len(rows), nil
}

// insert does the keyed/keyless insert under s.mu, returning the key
// encoding (aliasing keyBuf) and whether the row was new.
func (s *tableState) insert(row model.Tuple) ([]byte, bool) {
	if s.pk == nil {
		idx := s.be.Claim(row, s.stamp())
		s.indexRow(idx, row)
		s.live++
		s.logInsert(row)
		return nil, true
	}
	// Duplicate lookup through the scratch buffer is allocation-free;
	// the key string is materialized only for new rows.
	key := s.encodeKey(row, s.schema.Key)
	if head, ok := s.pk[string(key)]; ok {
		if _, died := s.be.Stamps(head); died == 0 {
			return key, false
		}
		// The key was deleted: the new row starts a fresh version,
		// chained to the dead one so snapshots keep finding the old
		// version until it is reclaimed.
		idx := s.be.Claim(row, s.stamp())
		s.be.SetPrev(idx, head)
		s.pk[string(key)] = idx
		s.indexRow(idx, row)
		s.live++
		s.logInsert(row)
		return key, true
	}
	idx := s.be.Claim(row, s.stamp())
	s.pk[string(key)] = idx
	s.indexRow(idx, row)
	s.live++
	s.logInsert(row)
	return key, true
}

// logInsert captures the insert for the database's commit log. Called
// under s.mu; a no-op unless a commit hook is installed.
func (s *tableState) logInsert(row model.Tuple) {
	if s.db == nil || s.db.hook == nil {
		return
	}
	s.db.logOp(LoggedOp{Kind: OpInsert, Table: s.schema.Name, Row: row})
}

// logDelete captures the logical delete of a live row for the
// database's commit log: by canonical key encoding for keyed tables,
// by full row for keyless ones (replay removes one matching row, which
// is exactly one delete under multiset semantics). Called under s.mu.
func (s *tableState) logDelete(row model.Tuple) {
	if s.db == nil || s.db.hook == nil {
		return
	}
	op := LoggedOp{Table: s.schema.Name}
	if s.schema.Key != nil {
		op.Kind, op.Key = OpDeleteKey, encodeCols(row, s.schema.Key)
	} else {
		op.Kind, op.Row = OpDeleteRow, row
	}
	s.db.logOp(op)
}

// encodeKey encodes the row's cols into the table's scratch buffer;
// the result is only valid until the next encodeKey call.
func (s *tableState) encodeKey(row model.Tuple, cols []int) []byte {
	buf := s.keyBuf[:0]
	for _, c := range cols {
		buf = model.AppendDatum(buf, row[c])
	}
	s.keyBuf = buf
	return buf
}

func (s *tableState) indexRow(idx int, row model.Tuple) {
	if len(s.indexes) == 0 {
		return
	}
	for _, ix := range s.indexes {
		buf := s.ixBuf[:0]
		for _, c := range ix.cols {
			buf = model.AppendDatum(buf, row[c])
		}
		s.ixBuf = buf
		ix.buckets[string(buf)] = append(ix.buckets[string(buf)], idx)
	}
}

// Delete removes the row with the given primary key, reporting whether
// it existed. Only valid on keyed tables.
func (t *Table) Delete(key []model.Datum) (bool, error) {
	if t.s.pk == nil {
		return false, fmt.Errorf("relstore: %s has no primary key", t.Schema.Name)
	}
	return t.DeleteEncoded(model.EncodeDatums(key))
}

// DeleteEncoded is Delete for callers that already hold the canonical
// key encoding (model.EncodeDatums of the key attributes) — deletion
// propagation addresses tuples by model.TupleRef, whose Key field is
// exactly this encoding, so the delete needs no re-encoding round trip.
func (t *Table) DeleteEncoded(enc string) (bool, error) {
	if t.asOf != 0 {
		return false, t.readOnlyErr()
	}
	s := t.s
	if s.pk == nil {
		return false, fmt.Errorf("relstore: %s has no primary key", t.Schema.Name)
	}
	s.mu.Lock()
	idx, ok := s.pk[enc]
	if ok {
		if _, died := s.be.Stamps(idx); died == 0 {
			s.kill(idx)
		} else {
			ok = false
		}
	}
	s.mu.Unlock()
	if ok && s.db != nil {
		s.db.opPublish()
	}
	return ok, nil
}

// kill marks a live slot dead in the pending epoch. Standalone tables
// reclaim immediately (no snapshot can observe them); tables owned by
// a database defer reclamation to the epoch sweep.
func (s *tableState) kill(idx int) {
	s.logDelete(s.be.Row(idx))
	s.be.Kill(idx, s.stamp())
	s.live--
	if s.db == nil {
		s.reclaim(idx)
		return
	}
	s.dead = append(s.dead, idx)
	s.db.noteDead(s)
}

// reclaim removes a dead slot for good: its secondary-index entries
// and primary-key chain link go away and the slot returns to the
// backend's free pool. Callers hold s.mu and guarantee no snapshot can
// still see it.
func (s *tableState) reclaim(idx int) {
	row := s.be.Row(idx)
	for _, ix := range s.indexes {
		k := encodeCols(row, ix.cols)
		bucket := ix.buckets[k]
		for i, r := range bucket {
			if r == idx {
				ix.buckets[k] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(ix.buckets[k]) == 0 {
			delete(ix.buckets, k)
		}
	}
	if s.pk != nil {
		// encodeCols, not encodeKey: the keyBuf scratch belongs to the
		// insert path, whose callers may still hold the returned alias
		// without the lock — and reclamation can run on whichever
		// goroutine released the last snapshot pin.
		key := encodeCols(row, s.schema.Key)
		if head, ok := s.pk[key]; ok {
			if head == idx {
				if prev := s.be.Prev(idx); prev >= 0 {
					s.pk[key] = prev
				} else {
					delete(s.pk, key)
				}
			} else {
				for cur := head; cur >= 0; cur = s.be.Prev(cur) {
					if s.be.Prev(cur) == idx {
						s.be.SetPrev(cur, s.be.Prev(idx))
						break
					}
				}
			}
		}
	}
	s.be.Release(idx)
}

// sweep reclaims every dead slot no longer observable, returning how
// many it reclaimed and whether unreclaimable dead slots remain. pins
// is the ascending set of pinned snapshot epochs and pub the published
// epoch as read under the pin lock: a reader exists (or can start) at
// each pin and at any epoch >= pub, so a dead version is reclaimable
// iff it died at or before pub and its [born, died) interval contains
// no pin. Sweeping against the whole pin set — not just the oldest pin
// — is what squashes hot-key version chains under a long-pinned
// snapshot: intermediate versions born and dead between two pins go
// away immediately, keeping only the newest version visible per
// pinned epoch. floor is the retention floor (history.go): a version
// that died after it is still answerable through SnapshotAt and is
// kept regardless of pins; 0 means retention is off.
func (s *tableState) sweep(pins []uint64, pub uint64, floor uint64) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.dead) == 0 {
		return 0, false
	}
	kept := s.dead[:0]
	n := 0
	for _, idx := range s.dead {
		born, died := s.be.Stamps(idx)
		if died == 0 {
			// Defensive: a live slot has no business on the dead list.
			continue
		}
		if died > pub {
			// Could still become visible to a snapshot pinned at or
			// after pub.
			kept = append(kept, idx)
			continue
		}
		if floor != 0 && died > floor {
			// Retained history: some epoch in [floor, pub] still sees
			// this version (born <= pub always holds for died <= pub).
			kept = append(kept, idx)
			continue
		}
		// Observable iff some pinned epoch falls inside [born, died).
		i := sort.Search(len(pins), func(i int) bool { return pins[i] >= born })
		if i < len(pins) && pins[i] < died {
			kept = append(kept, idx)
			continue
		}
		s.reclaim(idx)
		n++
	}
	s.dead = kept
	return n, len(kept) > 0
}

// ChainLen reports how many versions the table currently holds for the
// given primary key: the newest slot plus every chained older version
// awaiting reclamation. 0 when the key has no slot at all. Diagnostics
// for the version-chain squash; O(chain length).
func (t *Table) ChainLen(key []model.Datum) int {
	s := t.s
	if s.pk == nil {
		return 0
	}
	enc := model.EncodeDatums(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.pk[enc]
	if !ok {
		return 0
	}
	n := 0
	for cur := idx; cur >= 0; cur = s.be.Prev(cur) {
		n++
	}
	return n
}

// DeleteWhere removes every live row for which match returns true,
// maintaining the primary key (if any) and all secondary indexes, and
// reports how many rows were removed. Unlike Delete it works on
// keyless tables (ASR backing tables hold NULL-padded span rows with
// no primary key), which is what incremental ASR maintenance patches.
// match must not mutate the rows or the table; it runs under the
// table's write lock.
func (t *Table) DeleteWhere(match func(model.Tuple) bool) int {
	if t.asOf != 0 {
		panic(t.readOnlyErr())
	}
	s := t.s
	s.mu.Lock()
	removed := 0
	for idx, slots := 0, s.be.Slots(); idx < slots; idx++ {
		row, ok := s.liveRow(idx, 0)
		if !ok || !match(row) {
			continue
		}
		s.kill(idx)
		removed++
	}
	s.mu.Unlock()
	if removed > 0 && s.db != nil {
		s.db.opPublish()
	}
	return removed
}

// LookupKey returns the row with the given primary key, if present.
func (t *Table) LookupKey(key []model.Datum) (model.Tuple, bool) {
	if t.s.pk == nil {
		return nil, false
	}
	return t.LookupEncoded(model.EncodeDatums(key))
}

// LookupKeyBytes is LookupEncoded for callers holding the canonical
// key encoding as a byte scratch: the map probe allocates nothing.
func (t *Table) LookupKeyBytes(enc []byte) (model.Tuple, bool) {
	s := t.s
	if s.pk == nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.pk[string(enc)]
	if !ok {
		return nil, false
	}
	return s.lookupVersion(idx, t.asOf)
}

// LookupEncoded is LookupKey for callers holding the canonical key
// encoding (a model.TupleRef's Key field).
func (t *Table) LookupEncoded(enc string) (model.Tuple, bool) {
	s := t.s
	if s.pk == nil {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.pk[enc]
	if !ok {
		return nil, false
	}
	return s.lookupVersion(idx, t.asOf)
}

// lookupVersion walks the version chain from the newest slot to the
// one visible at asOf. The writer view stops at the head: only the
// newest version of a key can be live.
func (s *tableState) lookupVersion(idx int, asOf uint64) (model.Tuple, bool) {
	for idx >= 0 {
		if row, ok := s.liveRow(idx, asOf); ok {
			return row, true
		}
		if asOf == 0 {
			return nil, false
		}
		idx = s.be.Prev(idx)
	}
	return nil, false
}

// CreateIndex builds (or rebuilds) a secondary hash index on cols.
// A no-op on snapshot views (probes fall back to scans).
func (t *Table) CreateIndex(cols []int) {
	if t.asOf != 0 {
		return
	}
	s := t.s
	s.mu.Lock()
	s.createIndexLocked(cols)
	s.mu.Unlock()
}

func (s *tableState) createIndexLocked(cols []int) {
	// Presized for the worst case of all-distinct keys: an index build
	// over a loaded table (the recovery path rebuilds every probe index
	// at reopen) would otherwise spend most of its time rehashing the
	// growing bucket map.
	slots := s.be.Slots()
	ix := &hashIndex{cols: append([]int(nil), cols...), buckets: make(map[string][]int, slots)}
	// Dead-but-unreclaimed slots are indexed too: snapshot probes must
	// still find them, and reclamation removes their entries.
	buf := s.ixBuf
	for idx := 0; idx < slots; idx++ {
		row := s.be.Row(idx)
		if row == nil {
			continue
		}
		buf = buf[:0]
		for _, c := range cols {
			buf = model.AppendDatum(buf, row[c])
		}
		k := string(buf)
		ix.buckets[k] = append(ix.buckets[k], idx)
	}
	s.ixBuf = buf
	s.indexes[IndexName(cols)] = ix
}

// HasIndex reports whether an index on exactly cols exists.
func (t *Table) HasIndex(cols []int) bool {
	s := t.s
	s.mu.RLock()
	_, ok := s.indexes[IndexName(cols)]
	s.mu.RUnlock()
	return ok
}

// EnsureIndex builds a secondary hash index on cols unless one already
// exists — the idempotent entry point for writers that want an index
// on first use without paying a rebuild on every call. A no-op on
// snapshot views: query paths must not mutate shared table state, so
// views scan when the writer did not pre-build the index.
func (t *Table) EnsureIndex(cols []int) {
	if t.asOf != 0 {
		return
	}
	s := t.s
	s.mu.Lock()
	if _, ok := s.indexes[IndexName(cols)]; !ok {
		s.createIndexLocked(cols)
	}
	s.mu.Unlock()
}

// ProbeEach calls fn for every live row whose cols equal vals, using an
// index if one exists and scanning otherwise. fn returning false stops
// the enumeration. The matching rows are collected under the read lock
// and yielded outside it, so fn may freely query this or other tables.
// fn must not mutate the rows.
func (t *Table) ProbeEach(cols []int, vals []model.Datum, fn func(model.Tuple) bool) {
	var stack [16]model.Tuple
	for _, row := range t.probeInto(stack[:0], cols, vals) {
		if !fn(row) {
			return
		}
	}
}

// Probe returns the rows whose cols equal vals, using an index if one
// exists and scanning otherwise.
func (t *Table) Probe(cols []int, vals []model.Datum) []model.Tuple {
	return t.probeInto(nil, cols, vals)
}

func (t *Table) probeInto(out []model.Tuple, cols []int, vals []model.Datum) []model.Tuple {
	s := t.s
	s.mu.RLock()
	if ix, ok := s.indexes[IndexName(cols)]; ok {
		// Local buffer, not s.keyBuf: a read path, safe under
		// concurrent readers.
		var buf []byte
		for _, v := range vals {
			buf = model.AppendDatum(buf, v)
		}
		for _, i := range ix.buckets[string(buf)] {
			if row, ok := s.liveRow(i, t.asOf); ok {
				out = append(out, row)
			}
		}
	} else {
		want := model.EncodeDatums(vals)
		for i, slots := 0, s.be.Slots(); i < slots; i++ {
			if row, ok := s.liveRow(i, t.asOf); ok && encodeCols(row, cols) == want {
				out = append(out, row)
			}
		}
	}
	s.mu.RUnlock()
	return out
}

// Rows returns the live rows. The returned slice is freshly allocated
// but shares the underlying tuples; callers must not mutate them.
func (t *Table) Rows() []model.Tuple {
	s := t.s
	s.mu.RLock()
	out := make([]model.Tuple, 0, s.live)
	for i, slots := 0, s.be.Slots(); i < slots; i++ {
		if row, ok := s.liveRow(i, t.asOf); ok {
			out = append(out, row)
		}
	}
	s.mu.RUnlock()
	return out
}

// iterateBatch is the shared refill size for Iterate and Cursor: rows
// are collected under the read lock in batches of this many and
// yielded outside it, bounding how long a scan can hold the lock while
// letting callbacks query tables without re-entering it.
const iterateBatch = 64

// Iterate calls fn for every live row, stopping early if fn returns
// false. Rows are yielded outside the table lock in small batches; fn
// must not mutate the rows. On the writer view, rows inserted by fn
// itself may or may not be visited.
func (t *Table) Iterate(fn func(model.Tuple) bool) {
	s := t.s
	var batch [iterateBatch]model.Tuple
	pos := 0
	for {
		s.mu.RLock()
		slots := s.be.Slots()
		n := 0
		for pos < slots && n < len(batch) {
			if row, ok := s.liveRow(pos, t.asOf); ok {
				batch[n] = row
				n++
			}
			pos++
		}
		done := pos >= slots
		s.mu.RUnlock()
		for i := 0; i < n; i++ {
			if !fn(batch[i]) {
				return
			}
		}
		if done {
			return
		}
	}
}

// Cursor is a resumable iterator over a table's live rows, for
// pull-based consumers (relstore.Stream). It refills a small buffer
// under the table's read lock and serves rows from it, so Next never
// blocks behind a whole commit. On the writer view, rows inserted
// after the cursor was created may or may not be visited; on a
// snapshot view the cursor sees exactly the pinned epoch.
type Cursor struct {
	t   *Table
	pos int
	buf []model.Tuple
	bi  int
}

// Cursor returns a cursor positioned before the first live row.
func (t *Table) Cursor() *Cursor { return &Cursor{t: t} }

// Next returns the next live row, or false when exhausted.
func (c *Cursor) Next() (model.Tuple, bool) {
	if c.bi < len(c.buf) {
		row := c.buf[c.bi]
		c.bi++
		return row, true
	}
	s := c.t.s
	if c.buf == nil {
		c.buf = make([]model.Tuple, 0, iterateBatch)
	}
	c.buf = c.buf[:0]
	c.bi = 0
	s.mu.RLock()
	slots := s.be.Slots()
	for c.pos < slots && len(c.buf) < iterateBatch {
		if row, ok := s.liveRow(c.pos, c.t.asOf); ok {
			c.buf = append(c.buf, row)
		}
		c.pos++
	}
	s.mu.RUnlock()
	if len(c.buf) == 0 {
		return nil, false
	}
	c.bi = 1
	return c.buf[0], true
}

// SortedRows returns the live rows in lexicographic datum order;
// used for deterministic output in tests and the CLI.
func (t *Table) SortedRows() []model.Tuple {
	out := t.Rows()
	sort.Slice(out, func(i, j int) bool { return compareRows(out[i], out[j]) < 0 })
	return out
}

func compareRows(a, b model.Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := model.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

func encodeCols(row model.Tuple, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		model.EncodeDatum(&sb, row[c])
	}
	return sb.String()
}
