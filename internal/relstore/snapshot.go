package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Database is a named collection of tables — one peer's replica of the
// whole CDSS (the paper's standalone ORCHESTRA engine keeps a complete
// replica at each peer) — and the epoch authority for snapshot
// isolation.
//
// Epoch discipline: writes stamp rows with published+1 (the pending
// epoch). Outside a batch every mutating table operation publishes
// immediately, so single-caller code behaves exactly as before:
// a write is visible to every snapshot taken after it returns.
// BeginBatch/EndBatch group a multi-step commit (a delta run plus its
// ASR patches) into one atomic epoch: snapshots taken mid-batch see
// none of the batch's writes, and EndBatch makes them all visible at
// once. Snapshot pins the current epoch and returns a read-only view;
// deleted slots are reclaimed only once no pin can still observe them.
type Database struct {
	// BackendFactory, when non-nil, supplies the slot store behind every
	// table subsequently created on this database (backend.go); nil uses
	// the in-memory default. Set it before creating tables.
	BackendFactory func(*TableSchema) Backend

	mu     sync.Mutex // guards tables and pins
	tables map[string]*Table
	pins   map[uint64]int
	// version counts definition changes (table creates and drops); see
	// Version.
	version atomic.Uint64
	// published is the newest committed epoch; snapshots read as of it.
	published atomic.Uint64
	// batch suppresses per-operation publishing while > 0.
	batch atomic.Int32
	// ndead counts dead slots awaiting reclamation across all tables —
	// the fast-path guard that keeps publish O(1) when nothing died.
	ndead     atomic.Int64
	dirtyMu   sync.Mutex
	dirtyTabs map[*tableState]struct{}

	// retain and histFloor configure the time-travel retention horizon
	// (history.go): retain is the depth in epochs (0 = off, RetainAll =
	// unbounded) and histFloor the epoch history begins at.
	retain    atomic.Uint64
	histFloor atomic.Uint64

	// Commit capture: while hook is set, every mutation appends a
	// LoggedOp to logOps (under logMu — sharded syncs write different
	// tables concurrently) and publish hands the batch to the hook with
	// its epoch. hook is written once, before any logged mutation.
	hook   CommitHook
	logMu  sync.Mutex
	logOps []LoggedOp

	// Snapshot views: base points at the writable database, snapEpoch
	// and snapVersion freeze what the view observes.
	base        *Database
	snapEpoch   uint64
	snapVersion uint64
	closed      atomic.Bool
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	db := &Database{
		tables:    make(map[string]*Table),
		pins:      make(map[uint64]int),
		dirtyTabs: make(map[*tableState]struct{}),
	}
	// Epochs start at 1: asOf 0 is reserved for the writer's own view,
	// so even a snapshot of a never-written database pins a real epoch.
	db.published.Store(1)
	return db
}

// Version returns a counter bumped on every definition change
// (CreateTable/DropTable). Caches keyed on query shape — the ProQL
// plan cache — compare it to detect that mappings, provenance tables
// or ASR materializations changed out from under a cached plan. Row
// churn does not bump it: cached planning decisions stay sound across
// data changes, only definition changes invalidate. On a snapshot
// view this is the version frozen at snapshot time.
func (db *Database) Version() uint64 {
	if db.base != nil {
		return db.snapVersion
	}
	return db.version.Load()
}

// Epoch returns the newest committed epoch (for views, the pinned
// one). It only moves forward; two equal epochs observe equal data.
func (db *Database) Epoch() uint64 {
	if db.base != nil {
		return db.snapEpoch
	}
	return db.published.Load()
}

// IsSnapshot reports whether this database is a read-only view.
func (db *Database) IsSnapshot() bool { return db.base != nil }

// Snapshot pins the current epoch and returns a read-only view: every
// table read through it observes exactly the state committed by that
// epoch, no matter what the writer commits afterwards. The caller
// must Close the view to release the pin (holding it only delays
// reclamation of deleted rows — it can never corrupt reads).
// Snapshotting a snapshot re-pins the same epoch.
func (db *Database) Snapshot() *Database {
	base := db
	if db.base != nil {
		base = db.base
	}
	base.mu.Lock()
	e := base.published.Load()
	ver := base.version.Load()
	var tabs map[string]*Table
	if db.base != nil {
		e, ver = db.snapEpoch, db.snapVersion
		tabs = db.tables // immutable once built
	} else {
		tabs = make(map[string]*Table, len(db.tables))
		for name, t := range db.tables {
			tabs[name] = &Table{Schema: t.Schema, s: t.s, asOf: e}
		}
	}
	base.pins[e]++
	base.mu.Unlock()
	return &Database{tables: tabs, base: base, snapEpoch: e, snapVersion: ver}
}

// Close releases a snapshot view's pin, allowing rows deleted after
// its epoch to be reclaimed. A no-op on the writable database and on
// an already-closed view.
func (db *Database) Close() {
	if db.base == nil || !db.closed.CompareAndSwap(false, true) {
		return
	}
	db.base.mu.Lock()
	if n := db.base.pins[db.snapEpoch]; n > 1 {
		db.base.pins[db.snapEpoch] = n - 1
	} else {
		delete(db.base.pins, db.snapEpoch)
	}
	db.base.mu.Unlock()
	db.base.tryReclaim()
}

// BeginBatch suppresses per-operation publishing: writes made until
// the matching EndBatch stamp the same pending epoch and stay
// invisible to new snapshots. Batches nest.
func (db *Database) BeginBatch() {
	if db.base != nil {
		return
	}
	db.batch.Add(1)
}

// EndBatch closes the innermost batch; the outermost EndBatch
// publishes everything the batch wrote as one atomic epoch.
func (db *Database) EndBatch() {
	if db.base != nil {
		return
	}
	if db.batch.Add(-1) == 0 {
		db.publish()
	}
}

// opPublish publishes after a single mutating table operation unless a
// batch is open. Table code calls it outside the table lock.
func (db *Database) opPublish() {
	if db.batch.Load() == 0 {
		db.publish()
	}
}

func (db *Database) publish() {
	e := db.published.Add(1)
	if db.hook != nil {
		db.logMu.Lock()
		ops := db.logOps
		db.logOps = nil
		db.logMu.Unlock()
		if len(ops) > 0 {
			db.hook(e, ops)
		}
	}
	db.tryReclaim()
}

// noteDead registers a table as holding dead slots awaiting
// reclamation. Called under the table's write lock; dirtyMu is a leaf
// lock so the ordering is safe.
func (db *Database) noteDead(s *tableState) {
	db.ndead.Add(1)
	db.dirtyMu.Lock()
	db.dirtyTabs[s] = struct{}{}
	db.dirtyMu.Unlock()
}

// tryReclaim sweeps dead slots that no pinned snapshot can still
// observe. The observable epochs are the pinned ones plus the
// published epoch (a future snapshot pins at or after it); a dead
// version whose [born, died) interval contains none of them is gone
// for good. Sweeping against the whole pin set — not just the oldest
// pin — squashes hot-key version chains under a long-pinned snapshot:
// versions born and dead entirely between two pins reclaim
// immediately instead of accumulating behind the horizon.
func (db *Database) tryReclaim() {
	if db.base != nil || db.ndead.Load() == 0 {
		return
	}
	db.dirtyMu.Lock()
	if len(db.dirtyTabs) == 0 {
		db.dirtyMu.Unlock()
		return
	}
	tabs := make([]*tableState, 0, len(db.dirtyTabs))
	for s := range db.dirtyTabs {
		tabs = append(tabs, s)
	}
	clear(db.dirtyTabs)
	db.dirtyMu.Unlock()
	db.mu.Lock()
	// pub must be read under the same lock Snapshot pins under: a pin
	// racing in after the copy lands at an epoch >= pub, and sweep
	// keeps everything that died after pub. The retention floor is
	// derived under the same lock for the same reason: SnapshotAt
	// validates against a floor computed from a pub at least as new as
	// any sweep already past this section (see retentionFloorAt).
	pub := db.published.Load()
	floor := db.retentionFloorAt(pub)
	// Ratchet the history floor to what this sweep reclaims under:
	// versions below it are gone for good, so a later retention
	// widening must not rewind the floor into destroyed history —
	// SnapshotAt would answer those epochs with silently partial state.
	if floor > db.histFloor.Load() {
		db.histFloor.Store(floor)
	}
	pins := make([]uint64, 0, len(db.pins))
	for e := range db.pins {
		pins = append(pins, e)
	}
	db.mu.Unlock()
	sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
	total := 0
	for _, s := range tabs {
		n, remaining := s.sweep(pins, pub, floor)
		total += n
		if remaining {
			db.dirtyMu.Lock()
			db.dirtyTabs[s] = struct{}{}
			db.dirtyMu.Unlock()
		}
	}
	if total > 0 {
		db.ndead.Add(-int64(total))
	}
}

// OpKind discriminates the mutations a commit hook observes.
type OpKind uint8

const (
	// OpInsert is a row insertion; Row holds the stored tuple.
	OpInsert OpKind = iota + 1
	// OpDeleteKey is a keyed delete; Key holds the canonical primary-key
	// encoding (model.EncodeDatums of the key attributes).
	OpDeleteKey
	// OpDeleteRow is a keyless delete; Row holds the removed tuple
	// (replay removes one matching row — one delete under multiset
	// semantics).
	OpDeleteRow
	// OpCreateTable is a table creation; Schema holds the definition.
	OpCreateTable
	// OpDropTable removes the named table.
	OpDropTable
)

// LoggedOp is one captured mutation, in execution order within its
// commit. Row tuples are aliased, not copied — they are immutable once
// stored, and hooks run synchronously inside the commit.
type LoggedOp struct {
	Kind   OpKind
	Table  string
	Row    model.Tuple
	Key    string
	Schema *TableSchema
}

// CommitHook observes committed batches: epoch is the just-published
// epoch and ops every mutation it made visible, in execution order.
// The hook runs synchronously inside the publish (EndBatch or the
// per-operation publish outside batches) — this is the write-ahead
// log's append point. It must not mutate the database.
type CommitHook func(epoch uint64, ops []LoggedOp)

// SetCommitHook installs the commit hook. It must be installed before
// any mutation it should observe and before concurrent use of the
// database; mutations made while no hook is set are not captured
// (recovery replays run exactly so).
func (db *Database) SetCommitHook(h CommitHook) { db.hook = h }

// logOp appends one captured mutation to the pending commit's log.
func (db *Database) logOp(op LoggedOp) {
	db.logMu.Lock()
	db.logOps = append(db.logOps, op)
	db.logMu.Unlock()
}

// FastForward advances the published epoch to at least e. Recovery
// uses it after replaying a write-ahead log so that epochs committed
// after the restart stay ahead of every epoch already on disk.
func (db *Database) FastForward(e uint64) {
	for {
		cur := db.published.Load()
		if e <= cur || db.published.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Pins returns how many snapshot views are currently open (testing
// and stats).
func (db *Database) Pins() int {
	base := db
	if db.base != nil {
		base = db.base
	}
	base.mu.Lock()
	n := 0
	for _, c := range base.pins {
		n += c
	}
	base.mu.Unlock()
	return n
}

// CreateTable registers a new empty table.
func (db *Database) CreateTable(schema *TableSchema) (*Table, error) {
	if db.base != nil {
		return nil, fmt.Errorf("relstore: CreateTable on a read-only snapshot")
	}
	db.mu.Lock()
	if _, dup := db.tables[schema.Name]; dup {
		db.mu.Unlock()
		return nil, fmt.Errorf("relstore: table %q already exists", schema.Name)
	}
	t := newTable(schema, db)
	db.tables[schema.Name] = t
	db.version.Add(1)
	logged := db.hook != nil
	if logged {
		db.logOp(LoggedOp{Kind: OpCreateTable, Table: schema.Name, Schema: schema})
	}
	db.mu.Unlock()
	if logged {
		// DDL publishes like any mutation so the logged op reaches the
		// commit hook even when no row write follows it.
		db.opPublish()
	}
	return t, nil
}

// DropTable removes a table if it exists. Existing snapshot views
// keep reading their copy. A no-op on views.
func (db *Database) DropTable(name string) {
	if db.base != nil {
		return
	}
	db.mu.Lock()
	logged := false
	if _, ok := db.tables[name]; ok {
		delete(db.tables, name)
		db.version.Add(1)
		if db.hook != nil {
			db.logOp(LoggedOp{Kind: OpDropTable, Table: name})
			logged = true
		}
	}
	db.mu.Unlock()
	if logged {
		db.opPublish()
	}
}

// Table looks up a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	if db.base != nil {
		t, ok := db.tables[name]
		return t, ok
	}
	db.mu.Lock()
	t, ok := db.tables[name]
	db.mu.Unlock()
	return t, ok
}

// MustTable looks up a table, panicking if absent (programming error).
func (db *Database) MustTable(name string) *Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("relstore: no such table %q", name))
	}
	return t
}

// TableNames returns all table names, sorted.
func (db *Database) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	if db.base != nil {
		for n := range db.tables {
			names = append(names, n)
		}
	} else {
		db.mu.Lock()
		for n := range db.tables {
			names = append(names, n)
		}
		db.mu.Unlock()
	}
	sort.Strings(names)
	return names
}

// TotalRows sums Len over all tables; the "instance size" metric of
// Figures 9 and 10.
func (db *Database) TotalRows() int {
	total := 0
	for _, name := range db.TableNames() {
		if t, ok := db.Table(name); ok {
			total += t.Len()
		}
	}
	return total
}
