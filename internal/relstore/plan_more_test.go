package relstore

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestGroupByEmptyInput(t *testing.T) {
	db := NewDatabase()
	db.CreateTable(&TableSchema{Name: "E", Columns: []model.Column{intCol("a")}})
	g := &GroupBy{
		Input:     &Scan{Table: "E", Width: 1},
		GroupCols: []int{0},
		Aggs: []AggSpec{{
			Name:  "count",
			Init:  func() any { return int64(0) },
			Step:  func(acc any, _ model.Tuple) (any, error) { return acc.(int64) + 1, nil },
			Final: func(acc any) model.Datum { return acc.(int64) },
		}},
	}
	rows := runPlan(t, db, g)
	if len(rows) != 0 {
		t.Errorf("empty input should yield no groups: %v", rows)
	}
	if g.Arity() != 2 {
		t.Errorf("arity = %d", g.Arity())
	}
}

func TestGroupByCarriesSemiringValues(t *testing.T) {
	// Aggregation columns may hold arbitrary Go values (semiring
	// annotations) since model.Datum is dynamically typed.
	db := joinFixture(t)
	g := &GroupBy{
		Input:     &Scan{Table: "R", Width: 2},
		GroupCols: []int{0},
		Aggs: []AggSpec{{
			Name: "concat",
			Init: func() any { return []string{} },
			Step: func(acc any, row model.Tuple) (any, error) {
				return append(acc.([]string), row[1].(string)), nil
			},
			Final: func(acc any) model.Datum { return acc },
		}},
	}
	rows := runPlan(t, db, g)
	for _, r := range rows {
		if _, ok := r[1].([]string); !ok {
			t.Fatalf("aggregate column should carry []string, got %T", r[1])
		}
	}
}

func TestFilterFuncErrorPropagates(t *testing.T) {
	db := joinFixture(t)
	wantErr := errors.New("boom")
	f := &FilterFunc{
		Input: &Scan{Table: "R", Width: 2},
		Desc:  "always fails",
		Fn:    func(model.Tuple) (bool, error) { return false, wantErr },
	}
	if _, err := f.Run(db); !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestAggStepErrorPropagates(t *testing.T) {
	db := joinFixture(t)
	wantErr := errors.New("agg fail")
	g := &GroupBy{
		Input:     &Scan{Table: "R", Width: 2},
		GroupCols: []int{0},
		Aggs: []AggSpec{{
			Name:  "bad",
			Init:  func() any { return nil },
			Step:  func(any, model.Tuple) (any, error) { return nil, wantErr },
			Final: func(any) model.Datum { return nil },
		}},
	}
	if _, err := g.Run(db); !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	plan := &FilterFunc{
		Desc: "having",
		Input: &GroupBy{
			Input: &Distinct{Input: &UnionAll{Inputs: []Plan{
				ProjectCols(&HashJoin{
					Left:      &Scan{Table: "L", Width: 2},
					Right:     &IndexProbe{Table: "R", Cols: []int{0}, Vals: []model.Datum{int64(1)}, Width: 2},
					LeftKeys:  []int{0},
					RightKeys: []int{0},
					Type:      LeftOuterJoin,
				}, 0),
				&Values{Rows: []model.Tuple{{int64(1)}}},
			}}},
			GroupCols: []int{0},
		},
		Fn: func(model.Tuple) (bool, error) { return true, nil },
	}
	out := Explain(plan)
	for _, want := range []string{"FilterFunc(having)", "GroupBy", "Distinct", "UnionAll", "Project", "HashJoin(left", "Scan(L)", "IndexProbe(R", "Values(1 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := And{
		L: Or{L: Cmp{Op: NE, L: Col(0), R: Lit{Val: int64(1)}}, R: IsNull{E: Col(1)}},
		R: Not{E: Cmp{Op: LE, L: Col(2), R: Lit{Val: "x"}}},
	}
	s := e.String()
	for _, want := range []string{"<>", "IS NULL", "NOT", "<=", "AND", "OR", "$0", "$1", "$2"} {
		if !strings.Contains(s, want) {
			t.Errorf("expr string %q missing %q", s, want)
		}
	}
	for op, want := range map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="} {
		if op.String() != want {
			t.Errorf("op %d = %q", int(op), op.String())
		}
	}
	for jt, want := range map[JoinType]string{InnerJoin: "inner", LeftOuterJoin: "left", RightOuterJoin: "right", FullOuterJoin: "full"} {
		if jt.String() != want {
			t.Errorf("join type %d = %q", int(jt), jt.String())
		}
	}
}

func TestJoinKeyArityMismatch(t *testing.T) {
	db := joinFixture(t)
	j := &HashJoin{
		Left:      &Scan{Table: "L", Width: 2},
		Right:     &Scan{Table: "R", Width: 2},
		LeftKeys:  []int{0},
		RightKeys: []int{0, 1},
	}
	if _, err := j.Run(db); err == nil {
		t.Error("key arity mismatch should error")
	}
}

func TestCrossJoinWithEmptyKeys(t *testing.T) {
	db := joinFixture(t)
	j := &HashJoin{
		Left:  &Scan{Table: "L", Width: 2},
		Right: &Scan{Table: "R", Width: 2},
		Type:  InnerJoin,
	}
	rows := runPlan(t, db, j)
	if len(rows) != 3*4 {
		t.Errorf("cross join = %d rows, want 12", len(rows))
	}
}
