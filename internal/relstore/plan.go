package relstore

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Plan is a materializing physical query plan node. Run evaluates the
// subtree against a database and returns the result rows; Arity is the
// output width. Because model.Datum is dynamically typed, intermediate
// rows may carry semiring values produced by aggregation.
type Plan interface {
	Run(db *Database) ([]model.Tuple, error)
	Arity() int
	explain(sb *strings.Builder, indent int)
}

// Explain renders a plan tree for debugging and EXPLAIN-style output.
func Explain(p Plan) string {
	var sb strings.Builder
	p.explain(&sb, 0)
	return sb.String()
}

func writeLine(sb *strings.Builder, indent int, format string, args ...any) {
	for i := 0; i < indent; i++ {
		sb.WriteString("  ")
	}
	fmt.Fprintf(sb, format, args...)
	sb.WriteByte('\n')
}

// Scan reads all rows of a table.
type Scan struct {
	Table string
	Width int
}

// Run implements Plan.
func (s *Scan) Run(db *Database) ([]model.Tuple, error) {
	t, ok := db.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("relstore: scan of unknown table %q", s.Table)
	}
	out := make([]model.Tuple, 0, t.Len())
	t.Iterate(func(row model.Tuple) bool {
		out = append(out, row)
		return true
	})
	return out, nil
}

// Arity implements Plan.
func (s *Scan) Arity() int { return s.Width }

func (s *Scan) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Scan(%s)", s.Table)
}

// IndexProbe reads the rows of a table whose Cols match constant Vals,
// using a secondary index when available. It implements the
// goal-directed evaluation of Section 4.2: "only evaluate provenance
// for the selected tuples".
type IndexProbe struct {
	Table string
	Cols  []int
	Vals  []model.Datum
	Width int
}

// Run implements Plan.
func (p *IndexProbe) Run(db *Database) ([]model.Tuple, error) {
	t, ok := db.Table(p.Table)
	if !ok {
		return nil, fmt.Errorf("relstore: probe of unknown table %q", p.Table)
	}
	return t.Probe(p.Cols, p.Vals), nil
}

// Arity implements Plan.
func (p *IndexProbe) Arity() int { return p.Width }

func (p *IndexProbe) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "IndexProbe(%s cols=%v)", p.Table, p.Cols)
}

// Values returns a constant row set; used to seed plans with tuples of
// interest from a ProQL WHERE clause.
type Values struct {
	Rows []model.Tuple
}

// Run implements Plan.
func (v *Values) Run(*Database) ([]model.Tuple, error) { return v.Rows, nil }

// Arity implements Plan.
func (v *Values) Arity() int {
	if len(v.Rows) == 0 {
		return 0
	}
	return len(v.Rows[0])
}

func (v *Values) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Values(%d rows)", len(v.Rows))
}

// Filter keeps rows satisfying Pred.
type Filter struct {
	Input Plan
	Pred  Expr
}

// Run implements Plan.
func (f *Filter) Run(db *Database) ([]model.Tuple, error) {
	in, err := f.Input.Run(db)
	if err != nil {
		return nil, err
	}
	var out []model.Tuple
	for _, row := range in {
		ok, err := evalBool(f.Pred, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// Arity implements Plan.
func (f *Filter) Arity() int { return f.Input.Arity() }

func (f *Filter) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Filter(%s)", f.Pred)
	f.Input.explain(sb, indent+1)
}

// Project evaluates one expression per output column.
type Project struct {
	Input Plan
	Exprs []Expr
}

// ProjectCols builds a Project that selects input columns by position.
func ProjectCols(input Plan, cols ...int) *Project {
	exprs := make([]Expr, len(cols))
	for i, c := range cols {
		exprs[i] = Col(c)
	}
	return &Project{Input: input, Exprs: exprs}
}

// Run implements Plan.
func (p *Project) Run(db *Database) ([]model.Tuple, error) {
	in, err := p.Input.Run(db)
	if err != nil {
		return nil, err
	}
	out := make([]model.Tuple, 0, len(in))
	for _, row := range in {
		nr := make(model.Tuple, len(p.Exprs))
		for i, e := range p.Exprs {
			v, err := e.Eval(row)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		out = append(out, nr)
	}
	return out, nil
}

// Arity implements Plan.
func (p *Project) Arity() int { return len(p.Exprs) }

func (p *Project) explain(sb *strings.Builder, indent int) {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	writeLine(sb, indent, "Project(%s)", strings.Join(parts, ", "))
	p.Input.explain(sb, indent+1)
}

// JoinType enumerates hash-join variants. The outer joins implement the
// ASR constructions of Section 5.1: a left outer join indexes a path
// and its prefixes, a right outer join a path and its suffixes, and a
// full outer join a path and all its subpaths.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
)

func (j JoinType) String() string {
	switch j {
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "left"
	case RightOuterJoin:
		return "right"
	case FullOuterJoin:
		return "full"
	}
	return "?"
}

// HashJoin joins two inputs on positional key columns. Rows with NULL
// in any key column never match (SQL semantics) but are preserved by
// the outer variants. Output rows are left columns followed by right
// columns, NULL-padded on the non-matching side of outer joins.
type HashJoin struct {
	Left, Right         Plan
	LeftKeys, RightKeys []int
	Type                JoinType
}

// Run implements Plan.
func (j *HashJoin) Run(db *Database) ([]model.Tuple, error) {
	if len(j.LeftKeys) != len(j.RightKeys) {
		return nil, fmt.Errorf("relstore: join key arity mismatch %d vs %d", len(j.LeftKeys), len(j.RightKeys))
	}
	left, err := j.Left.Run(db)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Run(db)
	if err != nil {
		return nil, err
	}
	lw, rw := j.Left.Arity(), j.Right.Arity()

	// Build on the right side.
	build := make(map[string][]int, len(right))
	for i, row := range right {
		if hasNullAt(row, j.RightKeys) {
			continue
		}
		k := encodeCols(row, j.RightKeys)
		build[k] = append(build[k], i)
	}
	rightMatched := make([]bool, len(right))
	var out []model.Tuple
	for _, lrow := range left {
		matched := false
		if !hasNullAt(lrow, j.LeftKeys) {
			k := encodeCols(lrow, j.LeftKeys)
			for _, ri := range build[k] {
				matched = true
				rightMatched[ri] = true
				out = append(out, concatRows(lrow, right[ri], lw, rw))
			}
		}
		if !matched && (j.Type == LeftOuterJoin || j.Type == FullOuterJoin) {
			out = append(out, concatRows(lrow, nil, lw, rw))
		}
	}
	if j.Type == RightOuterJoin || j.Type == FullOuterJoin {
		for i, rrow := range right {
			if !rightMatched[i] {
				out = append(out, concatRows(nil, rrow, lw, rw))
			}
		}
	}
	return out, nil
}

// Arity implements Plan.
func (j *HashJoin) Arity() int { return j.Left.Arity() + j.Right.Arity() }

func (j *HashJoin) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "HashJoin(%s, left=%v right=%v)", j.Type, j.LeftKeys, j.RightKeys)
	j.Left.explain(sb, indent+1)
	j.Right.explain(sb, indent+1)
}

func hasNullAt(row model.Tuple, cols []int) bool {
	for _, c := range cols {
		if row[c] == nil {
			return true
		}
	}
	return false
}

func concatRows(l, r model.Tuple, lw, rw int) model.Tuple {
	out := make(model.Tuple, lw+rw)
	copy(out, l) // nil l leaves NULLs
	if r != nil {
		copy(out[lw:], r)
	}
	return out
}

// UnionAll concatenates the outputs of same-arity inputs — the SQL
// UNION ALL that combines the per-derivation-shape conjunctive rules
// of Section 4.2.4.
type UnionAll struct {
	Inputs []Plan
}

// Run implements Plan.
func (u *UnionAll) Run(db *Database) ([]model.Tuple, error) {
	var out []model.Tuple
	for _, in := range u.Inputs {
		rows, err := in.Run(db)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// Arity implements Plan.
func (u *UnionAll) Arity() int {
	if len(u.Inputs) == 0 {
		return 0
	}
	return u.Inputs[0].Arity()
}

func (u *UnionAll) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "UnionAll(%d inputs)", len(u.Inputs))
	for _, in := range u.Inputs {
		in.explain(sb, indent+1)
	}
}

// Distinct removes duplicate rows. Rows containing non-encodable
// values (semiring annotations) cannot be deduplicated and cause an
// error; deduplicate before attaching annotations.
type Distinct struct {
	Input Plan
}

// Run implements Plan.
func (d *Distinct) Run(db *Database) ([]model.Tuple, error) {
	in, err := d.Input.Run(db)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(in))
	var out []model.Tuple
	for _, row := range in {
		k := model.EncodeDatums(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out, nil
}

// Arity implements Plan.
func (d *Distinct) Arity() int { return d.Input.Arity() }

func (d *Distinct) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Distinct")
	d.Input.explain(sb, indent+1)
}

// AggSpec is one aggregate computed per group. Init produces the
// accumulator, Step folds a row in, Final extracts the output value.
// Semiring aggregation supplies Init = Zero and Step = Plus over an
// annotation column.
type AggSpec struct {
	Name  string
	Init  func() any
	Step  func(acc any, row model.Tuple) (any, error)
	Final func(acc any) model.Datum
}

// GroupBy groups input rows by GroupCols and computes Aggs per group.
// Output rows are the group columns followed by one column per
// aggregate. This is the final aggregation of Section 4.2.4 (GROUP BY
// tuple values, combine provenance with an aggregation function).
type GroupBy struct {
	Input     Plan
	GroupCols []int
	Aggs      []AggSpec
}

// Run implements Plan.
func (g *GroupBy) Run(db *Database) ([]model.Tuple, error) {
	in, err := g.Input.Run(db)
	if err != nil {
		return nil, err
	}
	type group struct {
		key  model.Tuple
		accs []any
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range in {
		k := encodeCols(row, g.GroupCols)
		grp, ok := groups[k]
		if !ok {
			keyRow := make(model.Tuple, len(g.GroupCols))
			for i, c := range g.GroupCols {
				keyRow[i] = row[c]
			}
			accs := make([]any, len(g.Aggs))
			for i, a := range g.Aggs {
				accs[i] = a.Init()
			}
			grp = &group{key: keyRow, accs: accs}
			groups[k] = grp
			order = append(order, k)
		}
		for i, a := range g.Aggs {
			grp.accs[i], err = a.Step(grp.accs[i], row)
			if err != nil {
				return nil, err
			}
		}
	}
	out := make([]model.Tuple, 0, len(groups))
	for _, k := range order {
		grp := groups[k]
		row := make(model.Tuple, len(g.GroupCols)+len(g.Aggs))
		copy(row, grp.key)
		for i, a := range g.Aggs {
			row[len(g.GroupCols)+i] = a.Final(grp.accs[i])
		}
		out = append(out, row)
	}
	return out, nil
}

// Arity implements Plan.
func (g *GroupBy) Arity() int { return len(g.GroupCols) + len(g.Aggs) }

func (g *GroupBy) explain(sb *strings.Builder, indent int) {
	names := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		names[i] = a.Name
	}
	writeLine(sb, indent, "GroupBy(cols=%v aggs=%s)", g.GroupCols, strings.Join(names, ","))
	g.Input.explain(sb, indent+1)
}

// FilterFunc filters rows with an arbitrary Go predicate; it implements
// HAVING clauses over semiring annotation columns that Expr predicates
// cannot inspect.
type FilterFunc struct {
	Input Plan
	Desc  string
	Fn    func(model.Tuple) (bool, error)
}

// Run implements Plan.
func (f *FilterFunc) Run(db *Database) ([]model.Tuple, error) {
	in, err := f.Input.Run(db)
	if err != nil {
		return nil, err
	}
	var out []model.Tuple
	for _, row := range in {
		ok, err := f.Fn(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// Arity implements Plan.
func (f *FilterFunc) Arity() int { return f.Input.Arity() }

func (f *FilterFunc) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "FilterFunc(%s)", f.Desc)
	f.Input.explain(sb, indent+1)
}
