package relstore

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// commitEpochs drives a keyed table through n single-insert commits and
// returns the epoch published by each.
func commitEpochs(t *testing.T, db *Database, tbl *Table, n int) []uint64 {
	t.Helper()
	epochs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(model.Tuple{int64(i), "v"}); err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, db.Epoch())
	}
	return epochs
}

func TestSnapshotAtRetainAll(t *testing.T) {
	db := NewDatabase()
	db.SetRetention(RetainAll)
	tbl := newKeyedTable(t, db, "R")
	epochs := commitEpochs(t, db, tbl, 5)

	// Each retained epoch reads exactly the rows committed by then,
	// including epochs whose rows were later overwritten.
	db.BeginBatch()
	tbl.Delete([]model.Datum{int64(0)})
	tbl.Insert(model.Tuple{int64(0), "v2"})
	db.EndBatch()

	for i, e := range epochs {
		snap, err := db.SnapshotAt(e)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", e, err)
		}
		if got := snap.MustTable("R").Len(); got != i+1 {
			t.Errorf("epoch %d: %d rows, want %d", e, got, i+1)
		}
		if row, ok := snap.MustTable("R").LookupKey([]model.Datum{int64(0)}); !ok || row[1] != "v" {
			t.Errorf("epoch %d: key 0 = %v %v, want pre-overwrite v", e, row, ok)
		}
		snap.Close()
	}
	// The live view sees the overwrite.
	if row, ok := tbl.LookupKey([]model.Datum{int64(0)}); !ok || row[1] != "v2" {
		t.Errorf("writer key 0 = %v %v, want v2", row, ok)
	}
}

func TestSnapshotAtRejectsOutOfRange(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	commitEpochs(t, db, tbl, 3)
	pub := db.Epoch()

	// Without retention only the newest epoch is answerable.
	snap, err := db.SnapshotAt(pub)
	if err != nil {
		t.Fatalf("SnapshotAt(newest): %v", err)
	}
	snap.Close()
	for _, e := range []uint64{0, pub - 1, pub + 1} {
		_, err := db.SnapshotAt(e)
		var oor *ErrEpochOutOfRange
		if !errors.As(err, &oor) {
			t.Fatalf("SnapshotAt(%d) = %v, want ErrEpochOutOfRange", e, err)
		}
		if oor.Newest != pub {
			t.Errorf("SnapshotAt(%d): Newest = %d, want %d", e, oor.Newest, pub)
		}
		if e <= pub && oor.Floor != 0 {
			t.Errorf("SnapshotAt(%d): Floor = %d, want 0 with retention off", e, oor.Floor)
		}
	}
}

func TestRetentionSweepBoundary(t *testing.T) {
	const depth = 4
	db := NewDatabase()
	db.SetRetention(depth)
	tbl := newKeyedTable(t, db, "R")

	// Overwrite one key repeatedly: every commit kills the previous
	// version, so history size is governed purely by the horizon.
	var epochs []uint64
	for i := 0; i < 20; i++ {
		db.BeginBatch()
		tbl.Delete([]model.Datum{int64(1)})
		tbl.Insert(model.Tuple{int64(1), "v"})
		db.EndBatch()
		epochs = append(epochs, db.Epoch())
	}
	pub := db.Epoch()
	floor := db.RetentionFloor()
	if want := pub - depth + 1; floor != want {
		t.Fatalf("floor = %d, want %d", floor, want)
	}
	for _, e := range epochs {
		snap, err := db.SnapshotAt(e)
		if e >= floor {
			if err != nil {
				t.Fatalf("SnapshotAt(%d) in window: %v", e, err)
			}
			if got := snap.MustTable("R").Len(); got != 1 {
				t.Errorf("epoch %d: %d rows, want 1", e, got)
			}
			snap.Close()
			continue
		}
		var oor *ErrEpochOutOfRange
		if !errors.As(err, &oor) {
			t.Fatalf("SnapshotAt(%d) below floor = %v, want ErrEpochOutOfRange", e, err)
		}
		if oor.Floor != floor {
			t.Errorf("SnapshotAt(%d): Floor = %d, want %d", e, oor.Floor, floor)
		}
	}
	// The sweep reclaimed everything below the horizon: at most depth
	// superseded versions remain (one kill per retained epoch).
	if nd := db.DeadVersions(); nd > depth {
		t.Errorf("%d dead versions retained, want <= %d", nd, depth)
	}
}

func TestRetentionFloorHoldsAtEnablePoint(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	commitEpochs(t, db, tbl, 3)
	enabledAt := db.Epoch()
	db.SetRetention(RetainAll)
	tbl.Insert(model.Tuple{int64(100), "x"})

	if floor := db.RetentionFloor(); floor != enabledAt {
		t.Fatalf("floor = %d, want enable epoch %d", floor, enabledAt)
	}
	// Pre-enable epochs are not answerable even though nothing from
	// them was overwritten: history starts at the enable point.
	if _, err := db.SnapshotAt(enabledAt - 1); err == nil {
		t.Error("pre-enable epoch answered")
	}
	snap, err := db.SnapshotAt(enabledAt)
	if err != nil {
		t.Fatalf("SnapshotAt(enable epoch): %v", err)
	}
	snap.Close()
}

func TestVersionsLoadVersionsRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.SetRetention(RetainAll)
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "a"})
	tbl.Insert(model.Tuple{int64(2), "b"})
	tbl.Delete([]model.Datum{int64(1)})
	tbl.Insert(model.Tuple{int64(1), "a2"})
	tbl.Delete([]model.Datum{int64(2)})

	floor := db.RetentionFloor()
	vers := tbl.Versions(floor)

	re := NewDatabase()
	re.SetRetention(RetainAll)
	rt := newKeyedTable(t, re, "R")
	if _, err := rt.LoadVersions(vers); err != nil {
		t.Fatal(err)
	}
	re.FastForward(db.Epoch())
	re.RestoreHistoryFloor(floor)

	for e := floor; e <= db.Epoch(); e++ {
		want, err := db.SnapshotAt(e)
		if err != nil {
			t.Fatalf("source SnapshotAt(%d): %v", e, err)
		}
		got, err := re.SnapshotAt(e)
		if err != nil {
			t.Fatalf("restored SnapshotAt(%d): %v", e, err)
		}
		if w, g := rowSet(want.MustTable("R")), rowSet(got.MustTable("R")); w != g {
			t.Errorf("epoch %d: restored %q, want %q", e, g, w)
		}
		got.Close()
		want.Close()
	}
	// The restored chain still rejects a duplicate live head.
	if row, ok := rt.LookupKey([]model.Datum{int64(1)}); !ok || row[1] != "a2" {
		t.Errorf("restored key 1 = %v %v, want a2", row, ok)
	}
	if _, ok := rt.LookupKey([]model.Datum{int64(2)}); ok {
		t.Error("restored key 2 should be dead at the head")
	}
}
