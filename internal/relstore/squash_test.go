package relstore

import (
	"testing"

	"repro/internal/model"
)

// TestHotKeyChainSquashedUnderPin is the version-chain squash bound:
// churning one key under a long-pinned snapshot must not grow its
// version chain. Every intermediate version is born and dead between
// the pin and the head, so the sweep reclaims it at the next commit —
// the chain holds at most the live head, the version the pin observes,
// and the one version whose death is not yet published.
func TestHotKeyChainSquashedUnderPin(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "v0"})
	snap := db.Snapshot()
	defer snap.Close()

	const churns = 200
	for i := 0; i < churns; i++ {
		db.BeginBatch()
		tbl.Delete([]model.Datum{int64(1)})
		tbl.Insert(model.Tuple{int64(1), "v" + string(rune('A'+i%26))})
		db.EndBatch()
		if n := tbl.ChainLen([]model.Datum{int64(1)}); n > 3 {
			t.Fatalf("churn %d: version chain grew to %d (want <= 3)", i, n)
		}
	}
	// The pinned snapshot still reads the version it pinned.
	row, ok := snap.MustTable("R").LookupKey([]model.Datum{int64(1)})
	if !ok || row[1] != "v0" {
		t.Fatalf("pinned snapshot lost its version: %v %v", row, ok)
	}
	// Releasing the pin collapses the chain to the live head.
	snap.Close()
	db.BeginBatch()
	tbl.Delete([]model.Datum{int64(2)}) // no-op write to trigger a sweep
	db.EndBatch()
	if n := tbl.ChainLen([]model.Datum{int64(1)}); n != 1 {
		t.Fatalf("chain after unpin = %d, want 1", n)
	}
}

// TestChainSquashKeepsNewestPerPin pins several epochs across a churn
// history and checks each pin still reads exactly its version while
// everything between pins is reclaimed.
func TestChainSquashKeepsNewestPerPin(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	var snaps []*Database
	var want []string
	cur := ""
	for i := 0; i < 30; i++ {
		v := "g" + string(rune('0'+i%10))
		db.BeginBatch()
		if cur != "" {
			tbl.Delete([]model.Datum{int64(7)})
		}
		tbl.Insert(model.Tuple{int64(7), v})
		db.EndBatch()
		cur = v
		if i%10 == 3 {
			snaps = append(snaps, db.Snapshot())
			want = append(want, v)
		}
	}
	// 30 churns with 3 pins: the chain is bounded by pins+2, far below
	// the 30 versions an oldest-pin horizon would have kept.
	if n := tbl.ChainLen([]model.Datum{int64(7)}); n > len(snaps)+2 {
		t.Fatalf("chain = %d versions, want <= %d", n, len(snaps)+2)
	}
	for i, snap := range snaps {
		row, ok := snap.MustTable("R").LookupKey([]model.Datum{int64(7)})
		if !ok || row[1] != want[i] {
			t.Fatalf("pin %d reads %v %v, want %s", i, row, ok, want[i])
		}
		snap.Close()
	}
}
