package relstore

import (
	"slices"

	"repro/internal/model"
)

// Backend is the pluggable row-version store behind one table: a
// slot-addressed collection of MVCC row versions. A slot holds one
// immutable tuple together with its visibility interval — the epoch it
// was born in and, once deleted, the epoch it died in (0 = live) — and
// an optional link to the previous version of the same primary key.
//
// The Table/tableState layer owns all policy (visibility rules, key
// and index maintenance, locking, deferred reclamation); a Backend is
// pure storage. memBackend, the in-memory parallel arrays extracted
// from the original table implementation, is the default; a
// disk-backed implementation can be substituted per database via
// Database.BackendFactory without touching the Table surface.
//
// Callers serialize access through the table lock: a Backend needs no
// internal synchronization.
type Backend interface {
	// Slots is the slot-space size: every slot index in [0, Slots()) is
	// addressable, including released ones (whose Row is nil).
	Slots() int
	// Row returns the tuple stored in a slot, or nil for a released slot.
	Row(slot int) model.Tuple
	// Stamps returns the slot's visibility interval (born, died); died
	// is 0 while the version is live.
	Stamps(slot int) (born, died uint64)
	// Prev returns the slot holding the previous version of the same
	// primary key, or -1.
	Prev(slot int) int
	// SetPrev rewrites the version-chain link (reclamation splices
	// reclaimed versions out of their chain).
	SetPrev(slot, prev int)
	// Claim stores a new live version (died 0, prev -1), reusing a
	// released slot when one is free, and returns its slot.
	Claim(row model.Tuple, born uint64) int
	// Kill marks a live slot dead as of the given epoch.
	Kill(slot int, died uint64)
	// Release frees a dead slot for reuse: the row is dropped, the
	// chain link reset, and the slot becomes claimable again.
	Release(slot int)
}

// growableBackend is the optional bulk-preallocation extension: a
// Backend implementing it is told how many Claims are coming so it can
// size its storage once instead of growing incrementally. Checkpoint
// recovery loads whole tables through this hint.
type growableBackend interface {
	Grow(n int)
}

// memBackend is the default Backend: row versions in parallel
// in-memory slices with a free list of released slots.
type memBackend struct {
	rows []model.Tuple
	born []uint64
	died []uint64
	prev []int
	free []int
}

func newMemBackend(*TableSchema) Backend { return &memBackend{} }

func (m *memBackend) Slots() int { return len(m.rows) }

func (m *memBackend) Row(slot int) model.Tuple { return m.rows[slot] }

func (m *memBackend) Stamps(slot int) (uint64, uint64) { return m.born[slot], m.died[slot] }

func (m *memBackend) Prev(slot int) int { return m.prev[slot] }

func (m *memBackend) SetPrev(slot, prev int) { m.prev[slot] = prev }

func (m *memBackend) Claim(row model.Tuple, born uint64) int {
	if n := len(m.free); n > 0 {
		idx := m.free[n-1]
		m.free = m.free[:n-1]
		m.rows[idx] = row
		m.born[idx], m.died[idx], m.prev[idx] = born, 0, -1
		return idx
	}
	m.rows = append(m.rows, row)
	m.born = append(m.born, born)
	m.died = append(m.died, 0)
	m.prev = append(m.prev, -1)
	return len(m.rows) - 1
}

func (m *memBackend) Grow(n int) {
	m.rows = slices.Grow(m.rows, n)
	m.born = slices.Grow(m.born, n)
	m.died = slices.Grow(m.died, n)
	m.prev = slices.Grow(m.prev, n)
}

func (m *memBackend) Kill(slot int, died uint64) { m.died[slot] = died }

func (m *memBackend) Release(slot int) {
	m.rows[slot] = nil
	m.prev[slot] = -1
	m.free = append(m.free, slot)
}
