package relstore

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// RetainAll is the SetRetention depth that keeps every epoch since
// retention was enabled: the horizon never advances.
const RetainAll = ^uint64(0)

// SetRetention configures the time-travel retention horizon: the last
// depth published epochs stay answerable through SnapshotAt instead of
// having their superseded row versions reclaimed by the epoch sweep.
// RetainAll keeps everything since the call; 0 disables retention
// (the default), returning the sweep to pure snapshot-pin semantics.
// History starts at the epoch current when retention is enabled —
// versions that died earlier are already gone.
//
// Call it at setup time, before the database serves concurrent
// traffic: changing the horizon races benignly with readers (pinned
// snapshots stay sound) but the set of answerable epochs shifts.
// Widening the horizon later never resurrects history: the floor
// ratchets forward with each sweep, so epochs whose versions were
// already reclaimed stay rejected rather than answering partially.
func (db *Database) SetRetention(depth uint64) {
	if db.base != nil {
		return
	}
	if depth == 0 {
		db.retain.Store(0)
		db.histFloor.Store(0)
		return
	}
	db.mu.Lock()
	if db.histFloor.Load() == 0 {
		db.histFloor.Store(db.published.Load())
	}
	db.retain.Store(depth)
	db.mu.Unlock()
}

// RestoreHistoryFloor rewinds the history floor to e — recovery uses
// it after loading a checkpoint that carries retained versions older
// than the recovered database's enable point, so the reopened store
// answers exactly the epochs the checkpoint covers. Only meaningful
// after SetRetention.
func (db *Database) RestoreHistoryFloor(e uint64) {
	if db.base != nil || e == 0 {
		return
	}
	db.mu.Lock()
	if db.retain.Load() != 0 {
		db.histFloor.Store(e)
	}
	db.mu.Unlock()
}

// RetentionFloor returns the oldest epoch SnapshotAt can answer, or 0
// when retention is disabled. With a finite depth d the floor tracks
// the writer: epochs in [published-d+1, published] stay answerable.
func (db *Database) RetentionFloor() uint64 {
	base := db
	if db.base != nil {
		base = db.base
	}
	base.mu.Lock()
	floor := base.retentionFloorAt(base.published.Load())
	base.mu.Unlock()
	return floor
}

// retentionFloorAt computes the oldest answerable epoch given the
// published epoch as read under db.mu. Both the sweep and SnapshotAt
// derive the floor inside the same mutex section that reads pub and
// pins: the floor is monotone in pub, so any sweep serialized before a
// SnapshotAt validation used a floor no newer than the one validated
// against, and any sweep after it observes the new pin. 0 = retention
// disabled.
func (db *Database) retentionFloorAt(pub uint64) uint64 {
	d := db.retain.Load()
	if d == 0 {
		return 0
	}
	floor := db.histFloor.Load()
	if floor == 0 {
		floor = 1
	}
	if d != RetainAll && pub >= d {
		if w := pub - d + 1; w > floor {
			floor = w
		}
	}
	return floor
}

// DeadVersions reports how many superseded row versions are currently
// held across all tables — retained history plus versions pinned by
// open snapshots. The E17 memory-overhead counter.
func (db *Database) DeadVersions() int64 {
	base := db
	if db.base != nil {
		base = db.base
	}
	return base.ndead.Load()
}

// ErrEpochOutOfRange reports an AS OF epoch the store cannot answer:
// below the retention floor (history already reclaimed, or retention
// never enabled) or ahead of the newest published epoch.
type ErrEpochOutOfRange struct {
	Epoch  uint64 // the requested epoch
	Floor  uint64 // oldest answerable epoch; 0 = no retention configured
	Newest uint64 // newest published epoch
}

func (e *ErrEpochOutOfRange) Error() string {
	if e.Epoch > e.Newest {
		return fmt.Sprintf("relstore: epoch %d not yet published (newest is %d)", e.Epoch, e.Newest)
	}
	if e.Floor == 0 {
		return fmt.Sprintf("relstore: epoch %d not retained (retention is disabled; newest is %d)", e.Epoch, e.Newest)
	}
	return fmt.Sprintf("relstore: epoch %d below the retention floor %d (newest is %d)", e.Epoch, e.Floor, e.Newest)
}

// SnapshotAt pins the given epoch and returns a read-only view
// observing exactly the state committed by it, exactly as Snapshot
// does for the newest epoch. Any epoch from the retention floor
// through the published epoch is answerable; others return
// *ErrEpochOutOfRange. The caller must Close the view.
//
// Table definitions are not versioned: the view resolves the current
// table set, so a table dropped since the requested epoch is absent
// and a table created after it reads as empty (every row version in it
// was born later).
func (db *Database) SnapshotAt(epoch uint64) (*Database, error) {
	base := db
	if db.base != nil {
		base = db.base
	}
	base.mu.Lock()
	pub := base.published.Load()
	ver := base.version.Load()
	if epoch == 0 || epoch > pub {
		base.mu.Unlock()
		return nil, &ErrEpochOutOfRange{Epoch: epoch, Floor: base.retentionFloorAt(pub), Newest: pub}
	}
	if epoch < pub {
		if floor := base.retentionFloorAt(pub); floor == 0 || epoch < floor {
			base.mu.Unlock()
			return nil, &ErrEpochOutOfRange{Epoch: epoch, Floor: floor, Newest: pub}
		}
	}
	tabs := make(map[string]*Table, len(base.tables))
	for name, t := range base.tables {
		tabs[name] = &Table{Schema: t.Schema, s: t.s, asOf: epoch}
	}
	base.pins[epoch]++
	base.mu.Unlock()
	return &Database{tables: tabs, base: base, snapEpoch: epoch, snapVersion: ver}, nil
}

// Version is one row version with its visibility interval: the row
// exists at every epoch e with Born <= e and (Died == 0 or e < Died).
// Versions dumps them and LoadVersions restores them — the checkpoint
// path's history-preserving replacement for Rows/BulkLoad.
type Version struct {
	Row  model.Tuple
	Born uint64
	Died uint64 // 0 = still live
}

// Versions dumps the table's observable history as of the handle's
// epoch: every row live at it plus every dead version that some epoch
// at or above floor can still see (floor 0 dumps live rows only — the
// no-retention checkpoint shape). On a snapshot view the view's epoch
// is the ceiling of the cut: versions born after it are omitted and a
// death after it is clamped back to "live" — both arrive through log
// replay — so the dump is a pure function of the cut plus its retained
// history. Versions of the same primary key are ordered oldest-first,
// the order LoadVersions rebuilds chains in. Rows are aliased, not
// copied.
func (t *Table) Versions(floor uint64) []Version {
	s := t.s
	ceil := t.asOf
	s.mu.RLock()
	out := make([]Version, 0, s.live)
	for i, slots := 0, s.be.Slots(); i < slots; i++ {
		row := s.be.Row(i)
		if row == nil {
			continue
		}
		born, died := s.be.Stamps(i)
		if ceil != 0 {
			if born > ceil {
				continue
			}
			if died > ceil {
				died = 0
			}
		}
		if died != 0 && (floor == 0 || died <= floor) {
			continue
		}
		out = append(out, Version{Row: row, Born: born, Died: died})
	}
	s.mu.RUnlock()
	// Oldest-first per key: Born ascending, then Died ascending with
	// live (0) last — an insert+delete+reinsert inside one epoch dumps
	// the dead version before the live one that supersedes it.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Born != out[j].Born {
			return out[i].Born < out[j].Born
		}
		di, dj := out[i].Died, out[j].Died
		if di == 0 {
			return false
		}
		if dj == 0 {
			return true
		}
		return di < dj
	})
	return out
}

// LoadVersions restores a Versions dump into an empty table,
// reconstructing version chains with their original epoch stamps. It
// is recovery-only: nothing is logged or published, and the caller is
// expected to FastForward the database past the dumped epochs.
// Versions of the same key must arrive oldest-first with the live
// version (if any) last, which is exactly what Versions emits.
// Returns how many versions were loaded.
func (t *Table) LoadVersions(vs []Version) (int, error) {
	if t.asOf != 0 {
		return 0, t.readOnlyErr()
	}
	s := t.s
	for _, v := range vs {
		if len(v.Row) != len(t.Schema.Columns) {
			return 0, fmt.Errorf("relstore: %s: row arity %d, want %d", t.Schema.Name, len(v.Row), len(t.Schema.Columns))
		}
		if v.Born == 0 {
			return 0, fmt.Errorf("relstore: %s: version born at epoch 0", t.Schema.Name)
		}
		if v.Died != 0 && v.Died < v.Born {
			return 0, fmt.Errorf("relstore: %s: version died (%d) before it was born (%d)", t.Schema.Name, v.Died, v.Born)
		}
	}
	deadN := 0
	s.mu.Lock()
	if g, ok := s.be.(growableBackend); ok {
		g.Grow(len(vs))
	}
	if s.pk != nil && len(s.pk) == 0 {
		s.pk = make(map[string]int, len(vs))
	}
	for _, v := range vs {
		idx := s.be.Claim(v.Row, v.Born)
		if v.Died != 0 {
			s.be.Kill(idx, v.Died)
		}
		if s.pk != nil {
			key := s.encodeKey(v.Row, s.schema.Key)
			if head, ok := s.pk[string(key)]; ok {
				if _, headDied := s.be.Stamps(head); headDied == 0 {
					s.mu.Unlock()
					return 0, fmt.Errorf("relstore: %s: key %q has a version after its live one", t.Schema.Name, key)
				}
				s.be.SetPrev(idx, head)
			}
			s.pk[string(key)] = idx
		}
		s.indexRow(idx, v.Row)
		if v.Died == 0 {
			s.live++
		} else {
			s.dead = append(s.dead, idx)
			deadN++
		}
	}
	s.mu.Unlock()
	if deadN > 0 && s.db != nil {
		s.db.ndead.Add(int64(deadN))
		s.db.dirtyMu.Lock()
		s.db.dirtyTabs[s] = struct{}{}
		s.db.dirtyMu.Unlock()
	}
	return len(vs), nil
}
