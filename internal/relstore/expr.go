package relstore

import (
	"fmt"

	"repro/internal/model"
)

// Expr is a scalar expression evaluated against a row. Expressions
// implement the WHERE-clause predicates of translated ProQL queries.
type Expr interface {
	Eval(row model.Tuple) (model.Datum, error)
	String() string
}

// Col references a column by position.
type Col int

// Eval implements Expr.
func (c Col) Eval(row model.Tuple) (model.Datum, error) {
	if int(c) < 0 || int(c) >= len(row) {
		return nil, fmt.Errorf("relstore: column %d out of range (row arity %d)", int(c), len(row))
	}
	return row[c], nil
}

func (c Col) String() string { return fmt.Sprintf("$%d", int(c)) }

// Lit is a literal datum.
type Lit struct{ Val model.Datum }

// Eval implements Expr.
func (l Lit) Eval(model.Tuple) (model.Datum, error) { return l.Val, nil }

func (l Lit) String() string { return model.FormatDatum(l.Val) }

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Cmp compares two sub-expressions. Comparisons involving NULL are
// false (SQL three-valued logic collapsed to two, which matches how
// the generated plans use predicates). Ordered comparisons across
// types use the model.Compare total order; equality across numeric
// types coerces int64/float64.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(row model.Tuple) (model.Datum, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return nil, err
	}
	if l == nil || r == nil {
		return false, nil
	}
	l, r = coerceNumeric(l, r)
	cmp := model.Compare(l, r)
	switch c.Op {
	case EQ:
		return cmp == 0 && model.TypeOf(l) == model.TypeOf(r), nil
	case NE:
		return cmp != 0 || model.TypeOf(l) != model.TypeOf(r), nil
	case LT:
		return cmp < 0, nil
	case LE:
		return cmp <= 0, nil
	case GT:
		return cmp > 0, nil
	case GE:
		return cmp >= 0, nil
	}
	return nil, fmt.Errorf("relstore: bad comparison op %d", c.Op)
}

func (c Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// coerceNumeric widens int64 to float64 when compared with a float64.
func coerceNumeric(l, r model.Datum) (model.Datum, model.Datum) {
	li, lOK := l.(int64)
	rf, rIsF := r.(float64)
	if lOK && rIsF {
		return float64(li), rf
	}
	lf, lIsF := l.(float64)
	ri, rOK := r.(int64)
	if lIsF && rOK {
		return lf, float64(ri)
	}
	return l, r
}

// And is logical conjunction.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a And) Eval(row model.Tuple) (model.Datum, error) {
	l, err := evalBool(a.L, row)
	if err != nil || !l {
		return false, err
	}
	return evalBool(a.R, row)
}

func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o Or) Eval(row model.Tuple) (model.Datum, error) {
	l, err := evalBool(o.L, row)
	if err != nil || l {
		return l, err
	}
	return evalBool(o.R, row)
}

func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is logical negation.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(row model.Tuple) (model.Datum, error) {
	v, err := evalBool(n.E, row)
	return !v, err
}

func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// IsNull tests a sub-expression for NULL.
type IsNull struct{ E Expr }

// Eval implements Expr.
func (i IsNull) Eval(row model.Tuple) (model.Datum, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return nil, err
	}
	return v == nil, nil
}

func (i IsNull) String() string { return fmt.Sprintf("(%s IS NULL)", i.E) }

// TrueExpr is the always-true predicate.
type TrueExpr struct{}

// Eval implements Expr.
func (TrueExpr) Eval(model.Tuple) (model.Datum, error) { return true, nil }

func (TrueExpr) String() string { return "TRUE" }

// evalBool evaluates e and coerces to bool; non-bool results error.
func evalBool(e Expr, row model.Tuple) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("relstore: predicate %s evaluated to non-bool %T", e, v)
	}
	return b, nil
}

// AndAll folds a slice of predicates into a conjunction (TRUE if empty).
func AndAll(es []Expr) Expr {
	if len(es) == 0 {
		return TrueExpr{}
	}
	out := es[0]
	for _, e := range es[1:] {
		out = And{out, e}
	}
	return out
}
