package relstore

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/stream"
)

// Stream exposes a plan as a pull-based tuple iterator — the same
// stream.Iterator interface the graph backend's physical operators
// produce, so the engine can drain either backend through one loop.
// Pipeline operators (Filter, Project, FilterFunc, Distinct, UnionAll)
// stream over their inputs without materializing; pipeline breakers
// (joins, grouping) materialize on first Next exactly as Run does.
func Stream(p Plan, db *Database) stream.Iterator[model.Tuple] {
	switch n := p.(type) {
	case *UnionAll:
		idx := 0
		var cur stream.Iterator[model.Tuple]
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				for {
					if cur == nil {
						if idx >= len(n.Inputs) {
							return nil, false, nil
						}
						cur = Stream(n.Inputs[idx], db)
						idx++
					}
					row, ok, err := cur.Next()
					if err != nil {
						return nil, false, err
					}
					if ok {
						return row, true, nil
					}
					cur.Close()
					cur = nil
				}
			},
			CloseFn: func() {
				if cur != nil {
					cur.Close()
				}
			},
		}
	case *Filter:
		in := Stream(n.Input, db)
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				for {
					row, ok, err := in.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					keep, err := evalBool(n.Pred, row)
					if err != nil {
						return nil, false, err
					}
					if keep {
						return row, true, nil
					}
				}
			},
			CloseFn: in.Close,
		}
	case *FilterFunc:
		in := Stream(n.Input, db)
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				for {
					row, ok, err := in.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					keep, err := n.Fn(row)
					if err != nil {
						return nil, false, err
					}
					if keep {
						return row, true, nil
					}
				}
			},
			CloseFn: in.Close,
		}
	case *Project:
		in := Stream(n.Input, db)
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				row, ok, err := in.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				nr := make(model.Tuple, len(n.Exprs))
				for i, e := range n.Exprs {
					v, err := e.Eval(row)
					if err != nil {
						return nil, false, err
					}
					nr[i] = v
				}
				return nr, true, nil
			},
			CloseFn: in.Close,
		}
	case *Distinct:
		in := Stream(n.Input, db)
		seen := map[string]bool{}
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				for {
					row, ok, err := in.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					k := model.EncodeDatums(row)
					if seen[k] {
						continue
					}
					seen[k] = true
					return row, true, nil
				}
			},
			CloseFn: in.Close,
		}
	case *Scan:
		// Table scans stream straight off the storage cursor — no
		// materialized row slice per drain.
		var cur *Cursor
		started := false
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				if !started {
					started = true
					t, ok := db.Table(n.Table)
					if !ok {
						return nil, false, fmt.Errorf("relstore: scan of unknown table %q", n.Table)
					}
					cur = t.Cursor()
				}
				if cur == nil {
					return nil, false, nil
				}
				row, ok := cur.Next()
				return row, ok, nil
			},
		}
	default:
		// Pipeline breaker (IndexProbe, Values, HashJoin, GroupBy):
		// materialize lazily on first pull.
		var rows []model.Tuple
		started := false
		pos := 0
		return &stream.Func[model.Tuple]{
			NextFn: func() (model.Tuple, bool, error) {
				if !started {
					started = true
					var err error
					rows, err = p.Run(db)
					if err != nil {
						return nil, false, err
					}
				}
				if pos >= len(rows) {
					return nil, false, nil
				}
				row := rows[pos]
				pos++
				return row, true, nil
			},
		}
	}
}
