package relstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

func rowSet(t *Table) string {
	rows := t.SortedRows()
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = fmt.Sprint(r)
	}
	return strings.Join(parts, ";")
}

func TestSnapshotIsolatesBatchedCommit(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "a"})
	tbl.Insert(model.Tuple{int64(2), "b"})

	snap := db.Snapshot()
	defer snap.Close()
	view := snap.MustTable("R")
	before := rowSet(view)

	// A batched commit: delete one row, insert another, overwrite
	// nothing — invisible to the snapshot, atomic for later readers.
	db.BeginBatch()
	if ok, err := tbl.Delete([]model.Datum{int64(1)}); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	tbl.Insert(model.Tuple{int64(3), "c"})

	// Mid-batch: the pending writes are invisible even to a fresh
	// snapshot.
	mid := db.Snapshot()
	if got := rowSet(mid.MustTable("R")); got != before {
		t.Errorf("mid-batch snapshot sees pending writes: %q vs %q", got, before)
	}
	mid.Close()
	db.EndBatch()

	// The old snapshot still reads its epoch.
	if got := rowSet(view); got != before {
		t.Errorf("snapshot changed after commit: %q vs %q", got, before)
	}
	if _, ok := view.LookupKey([]model.Datum{int64(1)}); !ok {
		t.Error("snapshot lost the deleted row")
	}
	if _, ok := view.LookupKey([]model.Datum{int64(3)}); ok {
		t.Error("snapshot sees post-commit insert")
	}
	// A fresh snapshot sees the committed state.
	after := db.Snapshot()
	defer after.Close()
	if _, ok := after.MustTable("R").LookupKey([]model.Datum{int64(1)}); ok {
		t.Error("fresh snapshot still sees deleted row")
	}
	if _, ok := after.MustTable("R").LookupKey([]model.Datum{int64(3)}); !ok {
		t.Error("fresh snapshot misses committed insert")
	}
	if tbl.Len() != 2 || after.MustTable("R").Len() != 2 || view.Len() != 2 {
		t.Errorf("Len mismatch: writer %d, after %d, old view %d", tbl.Len(), after.MustTable("R").Len(), view.Len())
	}
}

func TestSnapshotUnbatchedWritesVisibleImmediately(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "a"})
	s1 := db.Snapshot()
	defer s1.Close()
	if s1.MustTable("R").Len() != 1 {
		t.Fatalf("unbatched insert invisible to a later snapshot")
	}
	tbl.Delete([]model.Datum{int64(1)})
	if s1.MustTable("R").Len() != 1 {
		t.Error("unbatched delete leaked into older snapshot")
	}
	s2 := db.Snapshot()
	defer s2.Close()
	if s2.MustTable("R").Len() != 0 {
		t.Error("unbatched delete invisible to a later snapshot")
	}
}

func TestSnapshotDeleteReinsertChain(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "v1"})
	sOld := db.Snapshot()
	defer sOld.Close()

	db.BeginBatch()
	tbl.Delete([]model.Datum{int64(1)})
	tbl.Insert(model.Tuple{int64(1), "v2"})
	db.EndBatch()
	sNew := db.Snapshot()
	defer sNew.Close()

	if row, ok := sOld.MustTable("R").LookupKey([]model.Datum{int64(1)}); !ok || row[1] != "v1" {
		t.Errorf("old snapshot key 1 = %v %v, want v1", row, ok)
	}
	if row, ok := sNew.MustTable("R").LookupKey([]model.Datum{int64(1)}); !ok || row[1] != "v2" {
		t.Errorf("new snapshot key 1 = %v %v, want v2", row, ok)
	}
	if row, ok := tbl.LookupKey([]model.Datum{int64(1)}); !ok || row[1] != "v2" {
		t.Errorf("writer key 1 = %v %v, want v2", row, ok)
	}
	// Probe paths agree with lookup paths on both versions.
	if got := sOld.MustTable("R").Probe([]int{0}, []model.Datum{int64(1)}); len(got) != 1 || got[0][1] != "v1" {
		t.Errorf("old snapshot probe = %v", got)
	}
	if got := sNew.MustTable("R").Probe([]int{0}, []model.Datum{int64(1)}); len(got) != 1 || got[0][1] != "v2" {
		t.Errorf("new snapshot probe = %v", got)
	}
}

func TestReclamationWaitsForPins(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	for i := int64(0); i < 10; i++ {
		tbl.Insert(model.Tuple{i, "x"})
	}
	snap := db.Snapshot()
	for i := int64(0); i < 10; i++ {
		tbl.Delete([]model.Datum{i})
	}
	// The snapshot still reads all ten rows: nothing was reclaimed.
	if n := snap.MustTable("R").Len(); n != 10 {
		t.Fatalf("pinned snapshot lost rows: %d", n)
	}
	if db.ndead.Load() != 10 {
		t.Fatalf("expected 10 dead slots pending, got %d", db.ndead.Load())
	}
	snap.Close()
	// Closing the pin reclaims; the next write triggers the sweep too,
	// but Close already ran it.
	if db.ndead.Load() != 0 {
		t.Errorf("dead slots not reclaimed after Close: %d", db.ndead.Load())
	}
	if got := len(tbl.s.be.(*memBackend).free); got != 10 {
		t.Errorf("free list = %d slots, want 10", got)
	}
	// Double Close is a no-op.
	snap.Close()
}

func TestSnapshotCursorStableAcrossEpochBoundary(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	for i := int64(0); i < 100; i++ {
		tbl.Insert(model.Tuple{i, "x"})
	}
	snap := db.Snapshot()
	defer snap.Close()
	cur := snap.MustTable("R").Cursor()
	// Drain half, then churn the writer hard (deletes, reinserts,
	// slot reuse), then drain the rest: the cursor must deliver
	// exactly the snapshot's 100 keys.
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		row, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor exhausted at %d", i)
		}
		seen[row[0].(int64)] = true
	}
	for i := int64(0); i < 100; i += 2 {
		tbl.Delete([]model.Datum{i})
	}
	for i := int64(200); i < 300; i++ {
		tbl.Insert(model.Tuple{i, "y"})
	}
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		k := row[0].(int64)
		if seen[k] {
			t.Fatalf("cursor yielded key %d twice", k)
		}
		seen[k] = true
	}
	if len(seen) != 100 {
		t.Fatalf("cursor saw %d keys, want 100", len(seen))
	}
	for i := int64(0); i < 100; i++ {
		if !seen[i] {
			t.Fatalf("cursor missed key %d", i)
		}
	}
}

func TestSnapshotViewIsReadOnly(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "a"})
	snap := db.Snapshot()
	defer snap.Close()
	view := snap.MustTable("R")
	if _, err := view.Insert(model.Tuple{int64(9), "z"}); err == nil {
		t.Error("Insert on a view should fail")
	}
	if _, err := view.Delete([]model.Datum{int64(1)}); err == nil {
		t.Error("Delete on a view should fail")
	}
	if _, err := snap.CreateTable(&TableSchema{Name: "S"}); err == nil {
		t.Error("CreateTable on a view should fail")
	}
	// EnsureIndex on a view is a no-op; probes fall back to scanning.
	view.EnsureIndex([]int{1})
	if view.HasIndex([]int{1}) {
		t.Error("EnsureIndex on a view must not build an index")
	}
	if got := view.Probe([]int{1}, []model.Datum{"a"}); len(got) != 1 {
		t.Errorf("scan-fallback probe = %v", got)
	}
}

func TestSnapshotIndexProbesFilterByEpoch(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.CreateIndex([]int{1})
	tbl.Insert(model.Tuple{int64(1), "a"})
	tbl.Insert(model.Tuple{int64(2), "a"})
	snap := db.Snapshot()
	defer snap.Close()
	tbl.Delete([]model.Datum{int64(1)})
	tbl.Insert(model.Tuple{int64(3), "a"})
	if got := snap.MustTable("R").Probe([]int{1}, []model.Datum{"a"}); len(got) != 2 {
		t.Errorf("snapshot indexed probe = %d rows, want 2", len(got))
	}
	if got := tbl.Probe([]int{1}, []model.Datum{"a"}); len(got) != 2 {
		t.Errorf("writer indexed probe = %d rows, want 2 (keys 2,3)", len(got))
	}
}

func TestStandaloneTableDeletesEagerly(t *testing.T) {
	tbl := NewTable(&TableSchema{
		Name:    "solo",
		Columns: []model.Column{intCol("id"), strCol("v")},
		Key:     []int{0},
	})
	tbl.Insert(model.Tuple{int64(1), "a"})
	tbl.Delete([]model.Datum{int64(1)})
	if len(tbl.s.be.(*memBackend).free) != 1 || len(tbl.s.dead) != 0 {
		t.Errorf("standalone delete not eager: free=%d dead=%d", len(tbl.s.be.(*memBackend).free), len(tbl.s.dead))
	}
}

// TestConcurrentSnapshotReadsUnderChurn is the relstore-level race
// smoke: reader goroutines iterate, probe, and cursor-scan pinned
// snapshots while the writer churns delete/insert cycles. Under
// -race this exercises every locked path; the assertion is that each
// reader observes an internally consistent snapshot (a full key range
// of one parity).
func TestConcurrentSnapshotReadsUnderChurn(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.CreateIndex([]int{1})
	const n = 50
	// State A: keys 0..n-1 tagged "a". Each commit flips atomically
	// to tag "b" and back. A snapshot must see exactly n rows of one
	// tag.
	for i := int64(0); i < n; i++ {
		tbl.Insert(model.Tuple{i, "a"})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tag := [2]string{"a", "b"}
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			db.BeginBatch()
			for i := int64(0); i < n; i++ {
				tbl.Delete([]model.Datum{i})
				tbl.Insert(model.Tuple{i, tag[gen%2]})
			}
			db.EndBatch()
		}
	}()
	var readers sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for iter := 0; iter < 40; iter++ {
				snap := db.Snapshot()
				view := snap.MustTable("R")
				tags := map[string]int{}
				keys := map[int64]bool{}
				view.Iterate(func(row model.Tuple) bool {
					tags[row[1].(string)]++
					keys[row[0].(int64)] = true
					return true
				})
				if len(keys) != n || len(tags) != 1 {
					errs <- fmt.Errorf("inconsistent snapshot: %d keys, tags %v", len(keys), tags)
					snap.Close()
					return
				}
				// The indexed probe agrees with the iteration.
				var tag string
				for k := range tags {
					tag = k
				}
				if got := view.Probe([]int{1}, []model.Datum{tag}); len(got) != n {
					errs <- fmt.Errorf("probe saw %d rows of %q, want %d", len(got), tag, n)
					snap.Close()
					return
				}
				snap.Close()
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// FuzzSnapshotOps interprets op bytes as inserts, deletes, batch
// boundaries, snapshot pins, snapshot reads, and retention changes,
// checking every snapshot against a map-based oracle of the state it
// pinned. When an op enables history retention, the harness also
// records the oracle state at every published epoch and replays the
// whole history through SnapshotAt at the end: retained epochs must
// match their recorded state exactly, swept ones must be rejected with
// ErrEpochOutOfRange — the retention sweep boundary under arbitrary
// op interleavings.
func FuzzSnapshotOps(f *testing.F) {
	// Seed exercising reads across an epoch boundary: insert, pin,
	// batched delete+reinsert, read old pin, pin new, compare.
	f.Add([]byte{0x10, 0x11, 0x12, 0x80, 0x40, 0x20, 0x11, 0x41, 0x90, 0x91, 0xC0, 0xC1, 0x21, 0x80, 0xC0})
	f.Add([]byte{0x10, 0x80, 0x20, 0x10, 0x80, 0xC0})
	// Retention seeds: enable a 3-epoch horizon (0xB2) / retain-all
	// (0xBF) early, then churn one key past the horizon.
	f.Add([]byte{0xB2, 0x10, 0x40, 0x40, 0x40, 0x40, 0x40, 0x40, 0x20, 0x10})
	f.Add([]byte{0x10, 0xBF, 0x90, 0x40, 0x41, 0xA0, 0x40, 0x20, 0x80, 0xC0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		db := NewDatabase()
		tbl, err := db.CreateTable(&TableSchema{
			Name:    "F",
			Columns: []model.Column{intCol("id"), intCol("gen")},
			Key:     []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[int64]int64{} // key -> gen, the writer's view
		type pinned struct {
			snap  *Database
			state map[int64]int64
		}
		var pins []pinned
		var batchBase map[int64]int64 // pre-batch oracle during a batch
		inBatch := false
		gen := int64(0)
		// Per-epoch oracle for the time-travel end-check, recorded only
		// once retention is on (epochs before that are not answerable).
		retention := false
		history := map[uint64]map[int64]int64{}
		record := func() {
			if !retention || inBatch {
				return
			}
			state := make(map[int64]int64, len(oracle))
			for k, g := range oracle {
				state[k] = g
			}
			history[db.Epoch()] = state
		}
		defer func() {
			for _, p := range pins {
				p.snap.Close()
			}
		}()
		check := func(p pinned) {
			view := p.snap.MustTable("F")
			got := map[int64]int64{}
			view.Iterate(func(row model.Tuple) bool {
				got[row[0].(int64)] = row[1].(int64)
				return true
			})
			if len(got) != len(p.state) {
				t.Fatalf("snapshot rows = %v, want %v", got, p.state)
			}
			for k, g := range p.state {
				if got[k] != g {
					t.Fatalf("snapshot key %d gen %d, want %d", k, got[k], g)
				}
				if row, ok := view.LookupKey([]model.Datum{k}); !ok || row[1].(int64) != g {
					t.Fatalf("snapshot lookup key %d = %v %v, want gen %d", k, row, ok, g)
				}
			}
		}
		for _, op := range ops {
			key := int64(op & 0x0F)
			switch {
			case op&0xF0 == 0x10: // insert key
				gen++
				ins, err := tbl.Insert(model.Tuple{key, gen})
				if err != nil {
					t.Fatal(err)
				}
				if _, had := oracle[key]; ins == had {
					t.Fatalf("insert key %d reported %v, oracle had=%v", key, ins, had)
				}
				if ins {
					oracle[key] = gen
				}
			case op&0xF0 == 0x20: // delete key
				ok, err := tbl.Delete([]model.Datum{key})
				if err != nil {
					t.Fatal(err)
				}
				if _, had := oracle[key]; ok != had {
					t.Fatalf("delete key %d reported %v, oracle had=%v", key, ok, had)
				}
				delete(oracle, key)
			case op&0xF0 == 0x40: // delete+reinsert in place (chain builder)
				if _, had := oracle[key]; had {
					tbl.Delete([]model.Datum{key})
					gen++
					tbl.Insert(model.Tuple{key, gen})
					oracle[key] = gen
				}
			case op&0xF0 == 0x80: // pin a snapshot
				state := make(map[int64]int64, len(oracle))
				if !inBatch {
					for k, g := range oracle {
						state[k] = g
					}
				} else {
					// Mid-batch snapshots see the pre-batch state; the
					// oracle for them was captured at batch start.
					for k, g := range batchBase {
						state[k] = g
					}
				}
				pins = append(pins, pinned{snap: db.Snapshot(), state: state})
			case op&0xF0 == 0x90: // begin batch
				if !inBatch {
					inBatch = true
					batchBase = make(map[int64]int64, len(oracle))
					for k, g := range oracle {
						batchBase[k] = g
					}
					db.BeginBatch()
				}
			case op&0xF0 == 0xA0: // end batch
				if inBatch {
					inBatch = false
					db.EndBatch()
				}
			case op&0xF0 == 0xB0: // set retention horizon
				switch {
				case key == 0:
					db.SetRetention(0)
					retention = false
				case key == 0x0F:
					db.SetRetention(RetainAll)
					retention = true
				default:
					db.SetRetention(uint64(key) + 1)
					retention = true
				}
			case op&0xF0 == 0xC0: // check + release oldest pin
				if len(pins) > 0 {
					check(pins[0])
					pins[0].snap.Close()
					pins = pins[1:]
				}
			}
			record()
		}
		if inBatch {
			inBatch = false
			db.EndBatch()
			record()
		}
		for _, p := range pins {
			check(p)
		}
		// Time-travel end-check: every recorded epoch either answers
		// with exactly its recorded state or is rejected as out of
		// range, according to the final retention floor.
		pub := db.Epoch()
		floor := db.RetentionFloor()
		for e, state := range history {
			snap, err := db.SnapshotAt(e)
			if e != pub && (floor == 0 || e < floor) {
				var oor *ErrEpochOutOfRange
				if !errors.As(err, &oor) {
					t.Fatalf("SnapshotAt(%d) = %v, want ErrEpochOutOfRange (floor %d, pub %d)", e, err, floor, pub)
				}
				continue
			}
			if err != nil {
				t.Fatalf("SnapshotAt(%d) in window [%d, %d]: %v", e, floor, pub, err)
			}
			got := map[int64]int64{}
			snap.MustTable("F").Iterate(func(row model.Tuple) bool {
				got[row[0].(int64)] = row[1].(int64)
				return true
			})
			if len(got) != len(state) {
				t.Fatalf("as-of %d rows = %v, want %v", e, got, state)
			}
			for k, g := range state {
				if got[k] != g {
					t.Fatalf("as-of %d key %d gen %d, want %d", e, k, got[k], g)
				}
			}
			snap.Close()
		}
		// Writer's final state matches the oracle.
		got := map[int64]int64{}
		tbl.Iterate(func(row model.Tuple) bool {
			got[row[0].(int64)] = row[1].(int64)
			return true
		})
		if len(got) != len(oracle) {
			t.Fatalf("writer rows = %v, want %v", got, oracle)
		}
		var keys []int64
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if got[k] != oracle[k] {
				t.Fatalf("writer key %d gen %d, want %d", k, got[k], oracle[k])
			}
		}
	})
}
