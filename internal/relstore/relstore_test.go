package relstore

import (
	"testing"

	"repro/internal/model"
)

func intCol(name string) model.Column { return model.Column{Name: name, Type: model.TypeInt} }
func strCol(name string) model.Column { return model.Column{Name: name, Type: model.TypeString} }

func newKeyedTable(t *testing.T, db *Database, name string) *Table {
	t.Helper()
	tbl, err := db.CreateTable(&TableSchema{
		Name:    name,
		Columns: []model.Column{intCol("id"), strCol("v")},
		Key:     []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableInsertSetSemantics(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	ins, err := tbl.Insert(model.Tuple{int64(1), "a"})
	if err != nil || !ins {
		t.Fatalf("first insert: %v %v", ins, err)
	}
	ins, err = tbl.Insert(model.Tuple{int64(1), "b"})
	if err != nil || ins {
		t.Fatalf("duplicate key should be ignored: %v %v", ins, err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	row, ok := tbl.LookupKey([]model.Datum{int64(1)})
	if !ok || row[1] != "a" {
		t.Errorf("LookupKey = %v %v", row, ok)
	}
	if _, err := tbl.Insert(model.Tuple{int64(2)}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestTableDeleteAndSlotReuse(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	for i := int64(0); i < 5; i++ {
		tbl.Insert(model.Tuple{i, "x"})
	}
	ok, err := tbl.Delete([]model.Datum{int64(2)})
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, _ := tbl.Delete([]model.Datum{int64(2)}); ok {
		t.Error("double delete should report false")
	}
	if tbl.Len() != 4 {
		t.Errorf("Len = %d", tbl.Len())
	}
	// Reinsert reuses the freed slot.
	tbl.Insert(model.Tuple{int64(9), "y"})
	if tbl.Len() != 5 {
		t.Errorf("Len after reinsert = %d", tbl.Len())
	}
	if _, ok := tbl.LookupKey([]model.Datum{int64(9)}); !ok {
		t.Error("reinserted row missing")
	}
	rows := tbl.Rows()
	if len(rows) != 5 {
		t.Errorf("Rows() = %d", len(rows))
	}
	for _, r := range rows {
		if r == nil {
			t.Error("Rows leaked a deleted slot")
		}
	}
}

func TestTableIterateAndCursor(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	for i := int64(0); i < 5; i++ {
		tbl.Insert(model.Tuple{i, "x"})
	}
	tbl.Delete([]model.Datum{int64(2)})

	// Iterate visits exactly the live rows and honors early stop.
	var seen []int64
	tbl.Iterate(func(row model.Tuple) bool {
		seen = append(seen, row[0].(int64))
		return true
	})
	if len(seen) != 4 {
		t.Errorf("Iterate visited %d rows, want 4", len(seen))
	}
	for _, id := range seen {
		if id == 2 {
			t.Error("Iterate visited a deleted row")
		}
	}
	stops := 0
	tbl.Iterate(func(model.Tuple) bool {
		stops++
		return stops < 2
	})
	if stops != 2 {
		t.Errorf("early-stop Iterate visited %d rows, want 2", stops)
	}

	// Cursor streams the same live rows.
	var fromCursor []int64
	for cur := tbl.Cursor(); ; {
		row, ok := cur.Next()
		if !ok {
			break
		}
		fromCursor = append(fromCursor, row[0].(int64))
	}
	if len(fromCursor) != len(seen) {
		t.Fatalf("Cursor visited %d rows, Iterate %d", len(fromCursor), len(seen))
	}
	for i := range seen {
		if fromCursor[i] != seen[i] {
			t.Errorf("row %d: cursor %d, iterate %d", i, fromCursor[i], seen[i])
		}
	}
}

func TestStreamScanCursors(t *testing.T) {
	// The streaming path for Scan must not materialize and must agree
	// with Run, including skipping deleted slots.
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	for i := int64(0); i < 6; i++ {
		tbl.Insert(model.Tuple{i, "x"})
	}
	tbl.Delete([]model.Datum{int64(3)})
	it := Stream(&Scan{Table: "R", Width: 2}, db)
	defer it.Close()
	n := 0
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if row[0].(int64) == 3 {
			t.Error("streamed a deleted row")
		}
		n++
	}
	if n != 5 {
		t.Errorf("streamed %d rows, want 5", n)
	}
	// Unknown table surfaces as an error on first pull.
	bad := Stream(&Scan{Table: "nope", Width: 1}, db)
	if _, _, err := bad.Next(); err == nil {
		t.Error("unknown table should error")
	}
}

func TestSecondaryIndexProbe(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(1), "a"})
	tbl.Insert(model.Tuple{int64(2), "a"})
	tbl.Insert(model.Tuple{int64(3), "b"})
	// Probe without index scans.
	got := tbl.Probe([]int{1}, []model.Datum{"a"})
	if len(got) != 2 {
		t.Fatalf("scan probe = %d rows", len(got))
	}
	tbl.CreateIndex([]int{1})
	if !tbl.HasIndex([]int{1}) || tbl.HasIndex([]int{0, 1}) {
		t.Error("HasIndex wrong")
	}
	got = tbl.Probe([]int{1}, []model.Datum{"a"})
	if len(got) != 2 {
		t.Fatalf("index probe = %d rows", len(got))
	}
	// Index maintained under insert and delete.
	tbl.Insert(model.Tuple{int64(4), "a"})
	tbl.Delete([]model.Datum{int64(1)})
	got = tbl.Probe([]int{1}, []model.Datum{"a"})
	if len(got) != 2 {
		t.Fatalf("index probe after churn = %d rows", len(got))
	}
}

func TestDatabaseOps(t *testing.T) {
	db := NewDatabase()
	newKeyedTable(t, db, "R")
	if _, err := db.CreateTable(&TableSchema{Name: "R", Columns: []model.Column{intCol("x")}}); err == nil {
		t.Error("duplicate table should error")
	}
	if _, ok := db.Table("R"); !ok {
		t.Error("table lookup failed")
	}
	if _, ok := db.Table("Z"); ok {
		t.Error("phantom table")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "R" {
		t.Errorf("TableNames = %v", names)
	}
	db.MustTable("R").Insert(model.Tuple{int64(1), "a"})
	if db.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	db.DropTable("R")
	if _, ok := db.Table("R"); ok {
		t.Error("drop failed")
	}
}

func TestExprEval(t *testing.T) {
	row := model.Tuple{int64(5), "abc", nil, 2.5}
	cases := []struct {
		e    Expr
		want model.Datum
	}{
		{Cmp{EQ, Col(0), Lit{int64(5)}}, true},
		{Cmp{EQ, Col(0), Lit{2.5}}, false},
		{Cmp{LT, Col(0), Lit{5.5}}, true}, // numeric coercion
		{Cmp{GE, Col(3), Lit{int64(2)}}, true},
		{Cmp{NE, Col(1), Lit{"abc"}}, false},
		{Cmp{EQ, Col(2), Lit{nil}}, false}, // NULL compares false
		{IsNull{Col(2)}, true},
		{IsNull{Col(0)}, false},
		{And{Cmp{EQ, Col(0), Lit{int64(5)}}, Cmp{EQ, Col(1), Lit{"abc"}}}, true},
		{Or{Cmp{EQ, Col(0), Lit{int64(0)}}, Cmp{EQ, Col(1), Lit{"abc"}}}, true},
		{Not{Cmp{EQ, Col(0), Lit{int64(5)}}}, false},
		{TrueExpr{}, true},
	}
	for _, c := range cases {
		got, err := c.e.Eval(row)
		if err != nil {
			t.Errorf("%s: %v", c.e, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := (Col(9)).Eval(row); err == nil {
		t.Error("out-of-range column should error")
	}
	if _, err := evalBool(Lit{int64(1)}, row); err == nil {
		t.Error("non-bool predicate should error")
	}
}

func TestAndAll(t *testing.T) {
	row := model.Tuple{int64(1)}
	if ok, _ := evalBool(AndAll(nil), row); !ok {
		t.Error("empty AndAll should be TRUE")
	}
	e := AndAll([]Expr{Cmp{EQ, Col(0), Lit{int64(1)}}, Cmp{LT, Col(0), Lit{int64(2)}}})
	if ok, _ := evalBool(e, row); !ok {
		t.Error("conjunction should hold")
	}
}

// joinFixture loads two small tables: L(id, lv), R(id, rv).
func joinFixture(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	l, _ := db.CreateTable(&TableSchema{Name: "L", Columns: []model.Column{intCol("id"), strCol("lv")}})
	r, _ := db.CreateTable(&TableSchema{Name: "R", Columns: []model.Column{intCol("id"), strCol("rv")}})
	l.Insert(model.Tuple{int64(1), "l1"})
	l.Insert(model.Tuple{int64(2), "l2"})
	l.Insert(model.Tuple{nil, "lnull"})
	r.Insert(model.Tuple{int64(2), "r2"})
	r.Insert(model.Tuple{int64(2), "r2b"})
	r.Insert(model.Tuple{int64(3), "r3"})
	r.Insert(model.Tuple{nil, "rnull"})
	return db
}

func runPlan(t *testing.T, db *Database, p Plan) []model.Tuple {
	t.Helper()
	rows, err := p.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestHashJoinInner(t *testing.T) {
	db := joinFixture(t)
	j := &HashJoin{
		Left:      &Scan{Table: "L", Width: 2},
		Right:     &Scan{Table: "R", Width: 2},
		LeftKeys:  []int{0},
		RightKeys: []int{0},
		Type:      InnerJoin,
	}
	rows := runPlan(t, db, j)
	if len(rows) != 2 {
		t.Fatalf("inner join = %d rows, want 2 (L2 with r2, r2b)", len(rows))
	}
	for _, r := range rows {
		if r[0] != int64(2) || r[2] != int64(2) {
			t.Errorf("bad join row %v", r)
		}
	}
}

func TestHashJoinOuterVariants(t *testing.T) {
	db := joinFixture(t)
	mk := func(jt JoinType) *HashJoin {
		return &HashJoin{
			Left:      &Scan{Table: "L", Width: 2},
			Right:     &Scan{Table: "R", Width: 2},
			LeftKeys:  []int{0},
			RightKeys: []int{0},
			Type:      jt,
		}
	}
	// Left outer: 2 matches + L1 and Lnull padded = 4.
	rows := runPlan(t, db, mk(LeftOuterJoin))
	if len(rows) != 4 {
		t.Fatalf("left outer = %d rows, want 4", len(rows))
	}
	padded := 0
	for _, r := range rows {
		if r[2] == nil && r[3] == nil {
			padded++
		}
	}
	if padded != 2 {
		t.Errorf("left outer padded = %d, want 2", padded)
	}
	// Right outer: 2 matches + r3 and rnull padded = 4.
	rows = runPlan(t, db, mk(RightOuterJoin))
	if len(rows) != 4 {
		t.Fatalf("right outer = %d rows, want 4", len(rows))
	}
	// Full outer: 2 + 2 + 2 = 6.
	rows = runPlan(t, db, mk(FullOuterJoin))
	if len(rows) != 6 {
		t.Fatalf("full outer = %d rows, want 6", len(rows))
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	db := joinFixture(t)
	j := &HashJoin{
		Left:      &Scan{Table: "L", Width: 2},
		Right:     &Scan{Table: "R", Width: 2},
		LeftKeys:  []int{0},
		RightKeys: []int{0},
		Type:      InnerJoin,
	}
	rows := runPlan(t, db, j)
	for _, r := range rows {
		if r[0] == nil {
			t.Errorf("NULL key joined: %v", r)
		}
	}
}

func TestProjectFilterDistinctUnion(t *testing.T) {
	db := joinFixture(t)
	// SELECT DISTINCT lv-prefix rows with id >= 1
	p := &Distinct{Input: ProjectCols(&Filter{
		Input: &Scan{Table: "L", Width: 2},
		Pred:  Cmp{GE, Col(0), Lit{int64(1)}},
	}, 0)}
	rows := runPlan(t, db, p)
	if len(rows) != 2 {
		t.Fatalf("distinct project = %d rows", len(rows))
	}
	u := &UnionAll{Inputs: []Plan{p, p}}
	rows = runPlan(t, db, u)
	if len(rows) != 4 {
		t.Fatalf("union all = %d rows", len(rows))
	}
	if u.Arity() != 1 {
		t.Errorf("union arity = %d", u.Arity())
	}
}

func TestGroupByWithHaving(t *testing.T) {
	db := joinFixture(t)
	count := AggSpec{
		Name:  "count",
		Init:  func() any { return int64(0) },
		Step:  func(acc any, _ model.Tuple) (any, error) { return acc.(int64) + 1, nil },
		Final: func(acc any) model.Datum { return acc.(int64) },
	}
	g := &GroupBy{Input: &Scan{Table: "R", Width: 2}, GroupCols: []int{0}, Aggs: []AggSpec{count}}
	rows := runPlan(t, db, g)
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3 (2, 3, NULL)", len(rows))
	}
	// HAVING count > 1 keeps only id=2.
	h := &FilterFunc{Input: g, Desc: "count>1", Fn: func(r model.Tuple) (bool, error) {
		return r[1].(int64) > 1, nil
	}}
	rows = runPlan(t, db, h)
	if len(rows) != 1 || rows[0][0] != int64(2) || rows[0][1] != int64(2) {
		t.Fatalf("having = %v", rows)
	}
}

func TestIndexProbePlanAndValues(t *testing.T) {
	db := joinFixture(t)
	db.MustTable("R").CreateIndex([]int{0})
	p := &IndexProbe{Table: "R", Cols: []int{0}, Vals: []model.Datum{int64(2)}, Width: 2}
	rows := runPlan(t, db, p)
	if len(rows) != 2 {
		t.Fatalf("probe = %d rows", len(rows))
	}
	v := &Values{Rows: []model.Tuple{{int64(9), "z"}}}
	rows = runPlan(t, db, v)
	if len(rows) != 1 || v.Arity() != 2 {
		t.Fatalf("values wrong: %v arity=%d", rows, v.Arity())
	}
}

func TestScanUnknownTableErrors(t *testing.T) {
	db := NewDatabase()
	if _, err := (&Scan{Table: "nope", Width: 1}).Run(db); err == nil {
		t.Error("scan of unknown table should error")
	}
	if _, err := (&IndexProbe{Table: "nope"}).Run(db); err == nil {
		t.Error("probe of unknown table should error")
	}
}

func TestExplainRendering(t *testing.T) {
	p := &Filter{Input: &Scan{Table: "L", Width: 2}, Pred: TrueExpr{}}
	out := Explain(p)
	if out == "" {
		t.Error("Explain produced nothing")
	}
}

func TestSortedRowsDeterministic(t *testing.T) {
	db := NewDatabase()
	tbl := newKeyedTable(t, db, "R")
	tbl.Insert(model.Tuple{int64(3), "c"})
	tbl.Insert(model.Tuple{int64(1), "a"})
	tbl.Insert(model.Tuple{int64(2), "b"})
	rows := tbl.SortedRows()
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].(int64) > rows[i][0].(int64) {
			t.Fatalf("not sorted: %v", rows)
		}
	}
}
