package provgraph

import (
	"sort"
	"testing"

	"repro/internal/fixture"
	"repro/internal/model"
)

// graphsEqual compares two graphs as labeled structures: same tuple
// nodes (with leaf marks), same derivation nodes, same adjacency.
// Insertion order may differ (the patched graph keeps its original
// order), so everything is compared as sorted sets.
func graphsEqual(t *testing.T, patched, rebuilt *Graph) {
	t.Helper()
	if patched.NumTuples() != rebuilt.NumTuples() {
		t.Errorf("tuples: patched %d, rebuilt %d", patched.NumTuples(), rebuilt.NumTuples())
	}
	if patched.NumDerivations() != rebuilt.NumDerivations() {
		t.Errorf("derivations: patched %d, rebuilt %d", patched.NumDerivations(), rebuilt.NumDerivations())
	}
	derivIDs := func(ds []*DerivNode) []string {
		out := make([]string, len(ds))
		for i, d := range ds {
			out[i] = d.ID
		}
		sort.Strings(out)
		return out
	}
	strsEq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, want := range rebuilt.Tuples() {
		got, ok := patched.Lookup(want.Ref)
		if !ok {
			t.Errorf("tuple %s missing from patched graph", want.Ref)
			continue
		}
		if got.Leaf != want.Leaf {
			t.Errorf("tuple %s: leaf=%v, rebuilt %v", want.Ref, got.Leaf, want.Leaf)
		}
		if !strsEq(derivIDs(got.Derivations), derivIDs(want.Derivations)) {
			t.Errorf("tuple %s: incoming derivations differ\npatched %v\nrebuilt %v",
				want.Ref, derivIDs(got.Derivations), derivIDs(want.Derivations))
		}
		if !strsEq(derivIDs(got.Uses), derivIDs(want.Uses)) {
			t.Errorf("tuple %s: uses differ\npatched %v\nrebuilt %v",
				want.Ref, derivIDs(got.Uses), derivIDs(want.Uses))
		}
	}
	for _, want := range rebuilt.Derivations() {
		got, ok := patched.derivs[want.ID]
		if !ok {
			t.Errorf("derivation %s missing from patched graph", want.ID)
			continue
		}
		if got.Mapping != want.Mapping {
			t.Errorf("derivation %s: mapping %q vs %q", want.ID, got.Mapping, want.Mapping)
		}
	}
	// Label and mapping indexes must agree with the node registries.
	for _, rel := range []string{"A", "C", "N", "O"} {
		if got, want := len(patched.TuplesOf(rel)), len(rebuilt.TuplesOf(rel)); got != want {
			t.Errorf("TuplesOf(%s): patched %d, rebuilt %d", rel, got, want)
		}
	}
}

func applyAndRebuild(t *testing.T, opts fixture.Options, rel string, key []model.Datum) (*Graph, *Graph) {
	t.Helper()
	sys := fixture.MustSystem(opts)
	g, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.DeleteLocal(rel, key)
	if err != nil {
		t.Fatal(err)
	}
	Apply(g, sys, report)
	rebuilt, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return g, rebuilt
}

func TestApplyMatchesRebuild(t *testing.T) {
	patched, rebuilt := applyAndRebuild(t, fixture.Options{}, "A", []model.Datum{int64(1)})
	graphsEqual(t, patched, rebuilt)
}

func TestApplyMatchesRebuildCyclic(t *testing.T) {
	patched, rebuilt := applyAndRebuild(t, fixture.Options{IncludeM3: true},
		"N", []model.Datum{int64(1), "cn1", false})
	graphsEqual(t, patched, rebuilt)
}

// TestApplyClearsLeafOnSurvivor: deleting a local contribution whose
// tuple survives through a mapping must clear the node's leaf mark
// without removing it.
func TestApplyClearsLeafOnSurvivor(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{IncludeM3: true})
	// N(1,cn1,false) is locally contributed and also derived by m3
	// from C(1,cn1)... which in turn rests on N via m1: the cycle has
	// no external support left, so everything goes. Instead exercise
	// the survivor case with a fresh local row that shadows a derived
	// tuple: insert a local contribution for the m2-derived N(1,sn1,true).
	if err := sys.InsertLocal("N", model.Tuple{int64(1), "sn1", true}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	g, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	ref := model.RefFromKey("N", []model.Datum{int64(1), "sn1", true})
	if tn, ok := g.Lookup(ref); !ok || !tn.Leaf {
		t.Fatalf("precondition: %s should be a leaf", ref)
	}
	report, err := sys.DeleteLocal("N", []model.Datum{int64(1), "sn1", true})
	if err != nil {
		t.Fatal(err)
	}
	if report.TuplesDeleted != 0 {
		t.Fatalf("tuple should survive via m2, report=%+v", report)
	}
	Apply(g, sys, report)
	tn, ok := g.Lookup(ref)
	if !ok {
		t.Fatal("surviving tuple was removed from the graph")
	}
	if tn.Leaf {
		t.Error("leaf mark should have been cleared")
	}
	rebuilt, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, rebuilt)
}

// TestRemoveTupleCascades: removing a tuple node takes its incident
// derivations with it, and ordinals are never reused afterwards.
func TestRemoveTupleCascades(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	g, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumDerivations()
	ref := model.RefFromKey("A", []model.Datum{int64(1)})
	tn, _ := g.Lookup(ref)
	incident := len(tn.Uses) + len(tn.Derivations)
	if incident == 0 {
		t.Fatal("precondition: A[1] should touch derivations")
	}
	maxOrd := -1
	for _, n := range g.Tuples() {
		if n.Ord() > maxOrd {
			maxOrd = n.Ord()
		}
	}
	if !g.RemoveTuple(ref) {
		t.Fatal("RemoveTuple reported missing node")
	}
	if g.RemoveTuple(ref) {
		t.Error("second RemoveTuple should report false")
	}
	if g.NumDerivations() >= before {
		t.Errorf("derivations not cascaded: %d -> %d", before, g.NumDerivations())
	}
	for _, d := range g.Derivations() {
		for _, src := range d.Sources {
			if src.Ref == ref {
				t.Errorf("derivation %s still references removed tuple", d.ID)
			}
		}
	}
	// A fresh node must get a fresh ordinal, not a recycled one.
	fresh := g.Tuple(model.RefFromKey("A", []model.Datum{int64(999)}))
	if fresh.Ord() <= maxOrd {
		t.Errorf("ordinal %d reused (max was %d)", fresh.Ord(), maxOrd)
	}
}

// TestRemoveDerivationKeepsTuples: removing one derivation leaves its
// tuples in place with spliced adjacency.
func TestRemoveDerivationKeepsTuples(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	g, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Derivations()[0]
	srcs := append([]*TupleNode(nil), d.Sources...)
	if !g.RemoveDerivation(d.ID) {
		t.Fatal("RemoveDerivation reported missing node")
	}
	for _, tn := range srcs {
		if _, ok := g.Lookup(tn.Ref); !ok {
			t.Errorf("tuple %s should survive its derivation", tn.Ref)
		}
		for _, u := range tn.Uses {
			if u.ID == d.ID {
				t.Errorf("tuple %s still lists removed derivation", tn.Ref)
			}
		}
	}
}
