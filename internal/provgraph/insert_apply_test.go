package provgraph

import (
	"testing"

	"repro/internal/exchange"
	"repro/internal/fixture"
	"repro/internal/model"
)

// insertAndPatch inserts rows, runs the Δ-seeded RunDelta, applies the
// insertion report to the prebuilt graph, and returns the patched
// graph next to a from-scratch rebuild.
func insertAndPatch(t *testing.T, opts fixture.Options, insert func(sys *exchange.System)) (*Graph, *Graph) {
	t.Helper()
	sys := fixture.MustSystem(opts)
	g, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	insert(sys)
	report, err := sys.RunDelta()
	if err != nil {
		t.Fatal(err)
	}
	if report.Full {
		t.Fatal("RunDelta on a warm system should not fall back to a full run")
	}
	ok, err := ApplyInsertions(g, sys, report)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ApplyInsertions refused a delta report")
	}
	rebuilt, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return g, rebuilt
}

// TestApplyInsertionsMatchesRebuild: inserting a new A row cascades
// through m2/m4 into new N and O tuples plus their derivations; the
// patched graph must be label-equal to a rebuild.
func TestApplyInsertionsMatchesRebuild(t *testing.T) {
	patched, rebuilt := insertAndPatch(t, fixture.Options{}, func(sys *exchange.System) {
		if err := sys.InsertLocal("A", model.Tuple{int64(3), "sn3", int64(9)}); err != nil {
			t.Fatal(err)
		}
	})
	graphsEqual(t, patched, rebuilt)
	// The new chain must actually be present.
	if _, ok := patched.Lookup(model.RefFromKey("O", []model.Datum{"sn3", int64(9)})); !ok {
		t.Error("patched graph is missing the newly derived O tuple")
	}
}

// TestApplyInsertionsMatchesRebuildCyclic is the same check over the
// cyclic mapping set (m1/m3 derive C and N from each other).
func TestApplyInsertionsMatchesRebuildCyclic(t *testing.T) {
	patched, rebuilt := insertAndPatch(t, fixture.Options{IncludeM3: true}, func(sys *exchange.System) {
		if err := sys.InsertLocal("A", model.Tuple{int64(4), "sn4", int64(2)}); err != nil {
			t.Fatal(err)
		}
		if err := sys.InsertLocal("N", model.Tuple{int64(4), "cn4", false}); err != nil {
			t.Fatal(err)
		}
	})
	graphsEqual(t, patched, rebuilt)
}

// TestApplyInsertionsPromotesLeafOnSurvivor: a new local contribution
// for an already-derived tuple adds no nodes but must set the
// survivor's leaf mark.
func TestApplyInsertionsPromotesLeafOnSurvivor(t *testing.T) {
	ref := model.RefFromKey("N", []model.Datum{int64(1), "sn1", true})
	patched, rebuilt := insertAndPatch(t, fixture.Options{}, func(sys *exchange.System) {
		// N(1,sn1,true) is derived by m2 from A(1); contribute it
		// locally too.
		if err := sys.InsertLocal("N", model.Tuple{int64(1), "sn1", true}); err != nil {
			t.Fatal(err)
		}
	})
	tn, ok := patched.Lookup(ref)
	if !ok {
		t.Fatal("survivor vanished from patched graph")
	}
	if !tn.Leaf {
		t.Error("survivor should have been promoted to leaf")
	}
	graphsEqual(t, patched, rebuilt)
}

// TestApplyInsertionsRejectsFullReport: a fallback full run carries no
// insertion lists; ApplyInsertions must refuse (the caller rebuilds).
func TestApplyInsertionsRejectsFullReport(t *testing.T) {
	sys := fixture.MustSystem(fixture.Options{})
	g, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumTuples()
	ok, err := ApplyInsertions(g, sys, &exchange.InsertionReport{Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ApplyInsertions accepted a Full report")
	}
	if g.NumTuples() != before {
		t.Fatal("refused patch still mutated the graph")
	}
}
