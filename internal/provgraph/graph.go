// Package provgraph implements the provenance graph model of Figure 1:
// a bipartite graph of tuple nodes and derivation nodes, built from the
// relationally-encoded provenance of an exchange.System. It provides
// the annotation evaluation of Section 2.1 (bottom-up for acyclic
// graphs, fixpoint for cyclic graphs under cycle-safe semirings),
// subgraph projections, and DOT export for interactive provenance
// browsers.
package provgraph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/exchange"
	"repro/internal/model"
)

// TupleNode is a rectangle of Figure 1: one tuple in some relation.
type TupleNode struct {
	Ref model.TupleRef
	// ord is the node's graph-wide insertion ordinal; see Ord.
	ord int
	// Row is the full tuple when available (used for labels and leaf
	// CASE conditions); may be nil for dangling references.
	Row model.Tuple
	// Leaf reports a local contribution ('+' node): the tuple appears
	// in its relation's local-contribution table.
	Leaf bool
	// Derivations are the derivation nodes targeting this tuple
	// (alternative ways it was derived — combined with ⊕).
	Derivations []*DerivNode
	// Uses are the derivation nodes consuming this tuple as a source.
	Uses []*DerivNode
}

// Ord returns the node's insertion ordinal, unique across the tuple
// nodes of one graph. Ordinals give collision-free, allocation-cheap
// deduplication and join keys for query evaluation.
func (t *TupleNode) Ord() int { return t.ord }

// TupleRef implements the physplan tuple-handle surface.
func (t *TupleNode) TupleRef() model.TupleRef { return t.Ref }

// TupleOrd implements the physplan tuple-handle surface.
func (t *TupleNode) TupleOrd() int { return t.ord }

// TupleRow implements the physplan tuple-handle surface.
func (t *TupleNode) TupleRow() model.Tuple { return t.Row }

// TupleLeaf implements the physplan tuple-handle surface.
func (t *TupleNode) TupleLeaf() bool { return t.Leaf }

// DerivNode is an ellipse of Figure 1: one firing of a mapping,
// relating its m source tuples to its n target tuples.
type DerivNode struct {
	// ord is the node's graph-wide insertion ordinal; see Ord.
	ord int
	// ID is unique within the graph: mapping name + provenance row key.
	ID      string
	Mapping string
	Sources []*TupleNode
	Targets []*TupleNode
	// ProvRow is the backing provenance-relation row when the graph
	// was built from storage; incremental maintenance uses it to
	// delete invalidated derivations.
	ProvRow model.Tuple
}

// Graph is a provenance graph. Beyond the node maps it maintains the
// secondary indexes the ProQL physical operators rely on: tuples
// grouped by relation (label index) and derivations grouped by mapping,
// so path steps are index lookups instead of full-graph scans. The
// per-node adjacency (tuple→derivations in both directions) lives on
// the nodes themselves as Derivations/Uses.
type Graph struct {
	tuples map[model.TupleRef]*TupleNode
	derivs map[string]*DerivNode
	// insertion order for deterministic iteration
	tupleOrder []model.TupleRef
	derivOrder []string
	// byRel indexes tuple nodes by relation name, in insertion order.
	byRel map[string][]*TupleNode
	// byMapping indexes derivation nodes by mapping name, in insertion
	// order.
	byMapping map[string][]*DerivNode
	// nextTupleOrd and nextDerivOrd are monotone ordinal counters,
	// never reused: after incremental removals (Apply) the order
	// slices shrink, so slice lengths would hand out colliding
	// ordinals.
	nextTupleOrd int
	nextDerivOrd int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		tuples:    make(map[model.TupleRef]*TupleNode),
		derivs:    make(map[string]*DerivNode),
		byRel:     make(map[string][]*TupleNode),
		byMapping: make(map[string][]*DerivNode),
	}
}

// Tuple returns the node for ref, creating it if needed.
func (g *Graph) Tuple(ref model.TupleRef) *TupleNode {
	if n, ok := g.tuples[ref]; ok {
		return n
	}
	n := &TupleNode{Ref: ref, ord: g.nextTupleOrd}
	g.nextTupleOrd++
	g.tuples[ref] = n
	g.tupleOrder = append(g.tupleOrder, ref)
	g.byRel[ref.Rel] = append(g.byRel[ref.Rel], n)
	return n
}

// Lookup returns the node for ref without creating it.
func (g *Graph) Lookup(ref model.TupleRef) (*TupleNode, bool) {
	n, ok := g.tuples[ref]
	return n, ok
}

// AddDerivation inserts a derivation node relating sources to targets.
// Re-adding an existing ID is a no-op returning the existing node.
func (g *Graph) AddDerivation(id, mapping string, sources, targets []model.TupleRef) *DerivNode {
	if d, ok := g.derivs[id]; ok {
		return d
	}
	d := &DerivNode{ID: id, Mapping: mapping, ord: g.nextDerivOrd}
	g.nextDerivOrd++
	for _, ref := range sources {
		tn := g.Tuple(ref)
		d.Sources = append(d.Sources, tn)
		tn.Uses = append(tn.Uses, d)
	}
	for _, ref := range targets {
		tn := g.Tuple(ref)
		d.Targets = append(d.Targets, tn)
		tn.Derivations = append(tn.Derivations, d)
	}
	g.derivs[id] = d
	g.derivOrder = append(g.derivOrder, id)
	g.byMapping[mapping] = append(g.byMapping[mapping], d)
	return d
}

// Ord returns the node's insertion ordinal, unique across the
// derivation nodes of one graph.
func (d *DerivNode) Ord() int { return d.ord }

// DerivOrd implements the physplan derivation-handle surface.
func (d *DerivNode) DerivOrd() int { return d.ord }

// DerivID implements the physplan derivation-handle surface.
func (d *DerivNode) DerivID() string { return d.ID }

// DerivMapping implements the physplan derivation-handle surface.
func (d *DerivNode) DerivMapping() string { return d.Mapping }

// Tuples iterates tuple nodes in insertion order.
func (g *Graph) Tuples() []*TupleNode {
	out := make([]*TupleNode, 0, len(g.tupleOrder))
	for _, ref := range g.tupleOrder {
		out = append(out, g.tuples[ref])
	}
	return out
}

// Derivations iterates derivation nodes in insertion order.
func (g *Graph) Derivations() []*DerivNode {
	out := make([]*DerivNode, 0, len(g.derivOrder))
	for _, id := range g.derivOrder {
		out = append(out, g.derivs[id])
	}
	return out
}

// NumTuples returns the tuple-node count.
func (g *Graph) NumTuples() int { return len(g.tuples) }

// NumDerivations returns the derivation-node count.
func (g *Graph) NumDerivations() int { return len(g.derivs) }

// TuplesOf returns the tuple nodes of one relation, sorted by key.
func (g *Graph) TuplesOf(rel string) []*TupleNode {
	idx := g.byRel[rel]
	out := make([]*TupleNode, len(idx))
	copy(out, idx)
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.Key < out[j].Ref.Key })
	return out
}

// TuplesOfUnordered returns the relation's tuple nodes in insertion
// order, straight from the label index without copying or sorting.
// Callers must not mutate the returned slice.
func (g *Graph) TuplesOfUnordered(rel string) []*TupleNode { return g.byRel[rel] }

// NumTuplesOf returns the tuple-node count of one relation.
func (g *Graph) NumTuplesOf(rel string) int { return len(g.byRel[rel]) }

// DerivationsOf returns the derivation nodes of one mapping in
// insertion order, straight from the mapping index. Callers must not
// mutate the returned slice.
func (g *Graph) DerivationsOf(mapping string) []*DerivNode { return g.byMapping[mapping] }

// buildCount counts full-graph materializations; see Builds.
var buildCount atomic.Int64

// Builds returns the number of Build calls since process start. Tests
// use the delta to assert that goal-directed backends never pay a
// whole-graph materialization.
func Builds() int64 { return buildCount.Load() }

// Build constructs the full provenance graph of an exchanged system:
// one derivation node per provenance-relation row (materialized or
// virtual), plus leaf marks from the local-contribution tables.
func Build(sys *exchange.System) (*Graph, error) {
	buildCount.Add(1)
	g := New()
	for _, m := range sys.Schema.Mappings() {
		pr := sys.Prov[m.Name]
		rows, err := sys.ProvRows(m.Name)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			sources, targets, err := sys.AtomRefs(pr, row)
			if err != nil {
				return nil, err
			}
			id := derivID(m.Name, row)
			d := g.AddDerivation(id, m.Name, sources, targets)
			d.ProvRow = row
		}
	}
	// Attach full rows and leaf marks, and register tuples that exist
	// only as local contributions (they never appear in a provenance
	// row but are part of the instance).
	for _, r := range sys.Schema.PublicRelations() {
		t, ok := sys.DB.Table(r.Name)
		if !ok {
			return nil, fmt.Errorf("provgraph: missing table %q", r.Name)
		}
		t.Iterate(func(row model.Tuple) bool {
			ref := model.NewTupleRef(r, row)
			tn := g.Tuple(ref)
			if tn.Row == nil {
				tn.Row = row
			}
			tn.Leaf = sys.IsLeaf(r.Name, r.KeyOf(row))
			return true
		})
	}
	return g, nil
}

func derivID(mapping string, row model.Tuple) string {
	return mapping + "#" + model.EncodeDatums(row)
}

// DerivIDFor returns the canonical derivation-node ID for one
// provenance row of a mapping. Goal-directed backends that never build
// the graph use it to mint IDs identical to Build's, so projected
// subgraphs and annotations agree across backends.
func DerivIDFor(mapping string, row model.Tuple) string { return derivID(mapping, row) }

// IsCyclic reports whether the graph contains a derivation cycle
// (a tuple transitively deriving itself).
func (g *Graph) IsCyclic() bool {
	_, acyclic := g.topoOrder()
	return !acyclic
}
