package provgraph

import (
	"fmt"

	"repro/internal/semiring"
)

// EvalOptions configures annotation computation (Section 2.1).
type EvalOptions struct {
	// Leaf assigns base semiring values to leaf tuple nodes (EDB
	// tuples). nil assigns One to every leaf — the default of an
	// omitted ASSIGNING EACH clause.
	Leaf func(*TupleNode) semiring.Value
	// MapFunc returns the unary function attached to a mapping; nil
	// (or a nil return) means the identity function N_m.
	MapFunc func(mapping string) semiring.MappingFunc
	// MaxIterations bounds cyclic fixpoint evaluation; 0 uses
	// 2·(#tuples+#derivations)+2, enough for any monotone lattice
	// evaluation of the built-in cycle-safe semirings.
	MaxIterations int
}

// Annotations maps tuple nodes (by ref) to their computed values.
type Annotations map[string]semiring.Value

// Eval computes a semiring annotation for every tuple node of the
// graph: leaves contribute their base value via ⊕; each derivation
// contributes f_m(⊗ of its source annotations); a tuple's annotation is
// the ⊕ of all contributions. Acyclic graphs are evaluated bottom-up in
// topological order; cyclic graphs by monotone fixpoint iteration,
// which requires a cycle-safe semiring.
func Eval(g *Graph, s semiring.Semiring, opts EvalOptions) (Annotations, error) {
	leaf := opts.Leaf
	if leaf == nil {
		one := s.One()
		leaf = func(*TupleNode) semiring.Value { return one }
	}
	mapFunc := func(m string) semiring.MappingFunc {
		if opts.MapFunc == nil {
			return semiring.Identity
		}
		if f := opts.MapFunc(m); f != nil {
			return f
		}
		return semiring.Identity
	}

	if order, acyclic := g.topoOrder(); acyclic {
		return evalAcyclic(g, s, leaf, mapFunc, order), nil
	}
	if !s.CycleSafe() {
		return nil, fmt.Errorf("provgraph: graph is cyclic and semiring %s cannot be evaluated by fixpoint (annotations may diverge)", s.Name())
	}
	return evalFixpoint(g, s, leaf, mapFunc, opts.MaxIterations)
}

// tupleContribution computes the annotation of one tuple from current
// values: leaf base value ⊕ per-derivation products.
func tupleContribution(
	tn *TupleNode,
	s semiring.Semiring,
	leaf func(*TupleNode) semiring.Value,
	mapFunc func(string) semiring.MappingFunc,
	current func(*TupleNode) semiring.Value,
) semiring.Value {
	acc := s.Zero()
	if tn.Leaf {
		acc = s.Plus(acc, leaf(tn))
	}
	for _, d := range tn.Derivations {
		prod := s.One()
		for _, src := range d.Sources {
			prod = s.Times(prod, current(src))
		}
		acc = s.Plus(acc, mapFunc(d.Mapping)(prod))
	}
	return acc
}

func evalAcyclic(
	g *Graph,
	s semiring.Semiring,
	leaf func(*TupleNode) semiring.Value,
	mapFunc func(string) semiring.MappingFunc,
	order []*TupleNode,
) Annotations {
	ann := make(Annotations, g.NumTuples())
	current := func(tn *TupleNode) semiring.Value {
		if v, ok := ann[annKey(tn)]; ok {
			return v
		}
		return s.Zero()
	}
	for _, tn := range order {
		ann[annKey(tn)] = tupleContribution(tn, s, leaf, mapFunc, current)
	}
	return ann
}

func evalFixpoint(
	g *Graph,
	s semiring.Semiring,
	leaf func(*TupleNode) semiring.Value,
	mapFunc func(string) semiring.MappingFunc,
	maxIters int,
) (Annotations, error) {
	tuples := g.Tuples()
	if maxIters <= 0 {
		maxIters = 2*(g.NumTuples()+g.NumDerivations()) + 2
	}
	ann := make(Annotations, len(tuples))
	for _, tn := range tuples {
		ann[annKey(tn)] = s.Zero()
	}
	current := func(tn *TupleNode) semiring.Value { return ann[annKey(tn)] }
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for _, tn := range tuples {
			next := tupleContribution(tn, s, leaf, mapFunc, current)
			// Accumulate to keep the iteration monotone: x ⊕ next.
			next = s.Plus(ann[annKey(tn)], next)
			if !s.Eq(next, ann[annKey(tn)]) {
				ann[annKey(tn)] = next
				changed = true
			}
		}
		if !changed {
			return ann, nil
		}
	}
	return nil, fmt.Errorf("provgraph: fixpoint did not converge within %d iterations", maxIters)
}

// annKey is the Annotations map key of a node.
func annKey(tn *TupleNode) string { return tn.Ref.Rel + "\x00" + tn.Ref.Key }

// Annotation fetches a tuple's computed value.
func (a Annotations) Annotation(tn *TupleNode) (semiring.Value, bool) {
	v, ok := a[annKey(tn)]
	return v, ok
}

// topoOrder returns the tuple nodes in dependency order (sources before
// the tuples derived from them), and whether the graph is acyclic.
// Derivation nodes are traversed implicitly: a tuple depends on all
// sources of all its derivations.
func (g *Graph) topoOrder() ([]*TupleNode, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, g.NumTuples())
	var order []*TupleNode
	acyclic := true

	// Iterative DFS to survive deep chains without blowing the stack.
	type frame struct {
		tn   *TupleNode
		next int // index into dependency list
		deps []*TupleNode
	}
	depsOf := func(tn *TupleNode) []*TupleNode {
		var deps []*TupleNode
		for _, d := range tn.Derivations {
			deps = append(deps, d.Sources...)
		}
		return deps
	}
	for _, start := range g.Tuples() {
		if color[annKey(start)] != white {
			continue
		}
		stack := []frame{{tn: start, deps: depsOf(start)}}
		color[annKey(start)] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.deps) {
				dep := f.deps[f.next]
				f.next++
				switch color[annKey(dep)] {
				case white:
					color[annKey(dep)] = gray
					stack = append(stack, frame{tn: dep, deps: depsOf(dep)})
				case gray:
					acyclic = false
				}
				continue
			}
			color[annKey(f.tn)] = black
			order = append(order, f.tn)
			stack = stack[:len(stack)-1]
		}
	}
	return order, acyclic
}
