// Incremental graph maintenance: rather than rebuilding the whole
// provenance graph after an update (Build is proportional to the
// database), the hooks below patch exactly the nodes a report says
// changed, keeping the adjacency and the label/mapping indexes
// coherent. Apply removes what an exchange.MaintenanceReport says a
// deletion propagated away; ApplyInsertions adds what an
// exchange.InsertionReport says a Δ-seeded RunDelta derived — the
// graph-side counterparts of the two delta-driven propagators.

package provgraph

import (
	"fmt"

	"repro/internal/exchange"
	"repro/internal/model"
)

// Apply updates a built graph in place after an incremental deletion:
// the report's deleted derivations and tuples are removed (with their
// adjacency), and the leaf marks of surviving tuples whose local
// contribution was deleted are cleared. Only reports produced by the
// delta-driven DeleteLocal carry the deletion lists; MaintainLegacy
// reports leave them empty, in which case Apply is a no-op and the
// caller must rebuild.
func Apply(g *Graph, sys *exchange.System, report *exchange.MaintenanceReport) {
	if report == nil {
		return
	}
	deadD := make(map[string]bool, len(report.DeletedDerivations))
	for _, dd := range report.DeletedDerivations {
		deadD[derivID(dd.Mapping, dd.Row)] = true
	}
	deadT := make(map[model.TupleRef]bool, len(report.DeletedTuples))
	for _, ref := range report.DeletedTuples {
		deadT[ref] = true
	}
	if len(deadD) > 0 || len(deadT) > 0 {
		g.removeBatch(deadT, deadD)
	}
	// A deleted local contribution demotes a surviving tuple from leaf
	// status (it may remain derivable through mappings).
	for _, ref := range report.DeletedLocals {
		if tn, ok := g.tuples[ref]; ok {
			tn.Leaf = sys.IsLeafRef(ref)
		}
	}
}

// ApplyInsertions updates a built graph in place after an incremental
// insertion (exchange.System.RunDelta): the report's new public tuples
// become tuple nodes (with rows and leaf marks), its new derivations
// become derivation nodes wired to their source and target tuples, and
// surviving tuples that gained a local contribution are re-marked as
// leaves. Reports with Full set carry no insertion lists (the run
// reseeded everything); callers holding one must rebuild instead —
// ApplyInsertions reports false in that case and leaves the graph
// untouched.
func ApplyInsertions(g *Graph, sys *exchange.System, report *exchange.InsertionReport) (bool, error) {
	if report == nil {
		return true, nil
	}
	if report.Full {
		return false, nil
	}
	for _, it := range report.InsertedTuples {
		tn := g.Tuple(it.Ref)
		if tn.Row == nil {
			tn.Row = it.Row
		}
		tn.Leaf = sys.IsLeafRef(it.Ref)
	}
	for _, id := range report.InsertedDerivations {
		pr, ok := sys.Prov[id.Mapping]
		if !ok {
			return false, fmt.Errorf("provgraph: insertion report names unknown mapping %q", id.Mapping)
		}
		sources, targets, err := sys.AtomRefs(pr, id.Row)
		if err != nil {
			return false, err
		}
		d := g.AddDerivation(derivID(id.Mapping, id.Row), id.Mapping, sources, targets)
		if d.ProvRow == nil {
			d.ProvRow = id.Row
		}
	}
	// A new local contribution promotes a surviving tuple to leaf
	// status (new tuples already got their mark above).
	for _, ref := range report.InsertedLocals {
		if tn, ok := g.tuples[ref]; ok {
			tn.Leaf = sys.IsLeafRef(ref)
		}
	}
	return true, nil
}

// RemoveDerivation deletes one derivation node, splicing it out of its
// source and target tuples' adjacency and the mapping index. It
// reports whether the node existed.
func (g *Graph) RemoveDerivation(id string) bool {
	if _, ok := g.derivs[id]; !ok {
		return false
	}
	g.removeBatch(nil, map[string]bool{id: true})
	return true
}

// RemoveTuple deletes one tuple node together with every derivation
// touching it (a derivation without one of its tuples is meaningless),
// keeping all indexes coherent. It reports whether the node existed.
func (g *Graph) RemoveTuple(ref model.TupleRef) bool {
	if _, ok := g.tuples[ref]; !ok {
		return false
	}
	g.removeBatch(map[model.TupleRef]bool{ref: true}, map[string]bool{})
	return true
}

// removeBatch removes the given tuple refs and derivation ids in one
// pass. Derivations incident to a removed tuple are cascaded into the
// dead set (deadD is extended in place). Node ordinals are never
// reused, so ordinal-keyed consumers stay collision-free.
func (g *Graph) removeBatch(deadT map[model.TupleRef]bool, deadD map[string]bool) {
	// Cascade: a removed tuple takes its incident derivations along.
	for ref := range deadT {
		if tn, ok := g.tuples[ref]; ok {
			for _, d := range tn.Derivations {
				deadD[d.ID] = true
			}
			for _, d := range tn.Uses {
				deadD[d.ID] = true
			}
		}
	}
	// Splice dead derivations out of surviving tuples' adjacency.
	touched := make(map[*TupleNode]bool)
	deadMappings := make(map[string]bool)
	for id := range deadD {
		d, ok := g.derivs[id]
		if !ok {
			continue
		}
		deadMappings[d.Mapping] = true
		for _, tn := range d.Sources {
			if !deadT[tn.Ref] {
				touched[tn] = true
			}
		}
		for _, tn := range d.Targets {
			if !deadT[tn.Ref] {
				touched[tn] = true
			}
		}
	}
	for tn := range touched {
		tn.Uses = filterDerivs(tn.Uses, deadD)
		tn.Derivations = filterDerivs(tn.Derivations, deadD)
	}
	// Drop dead derivations from the registry, order, and mapping
	// index.
	removedD := false
	for id := range deadD {
		if _, ok := g.derivs[id]; ok {
			delete(g.derivs, id)
			removedD = true
		}
	}
	if removedD {
		kept := g.derivOrder[:0]
		for _, id := range g.derivOrder {
			if _, ok := g.derivs[id]; ok {
				kept = append(kept, id)
			}
		}
		g.derivOrder = kept
		for m := range deadMappings {
			keptD := g.byMapping[m][:0]
			for _, d := range g.byMapping[m] {
				if !deadD[d.ID] {
					keptD = append(keptD, d)
				}
			}
			g.byMapping[m] = keptD
		}
	}
	// Drop dead tuples likewise.
	removedT := false
	deadRels := make(map[string]bool)
	for ref := range deadT {
		if _, ok := g.tuples[ref]; ok {
			delete(g.tuples, ref)
			deadRels[ref.Rel] = true
			removedT = true
		}
	}
	if removedT {
		kept := g.tupleOrder[:0]
		for _, ref := range g.tupleOrder {
			if _, ok := g.tuples[ref]; ok {
				kept = append(kept, ref)
			}
		}
		g.tupleOrder = kept
		for rel := range deadRels {
			keptT := g.byRel[rel][:0]
			for _, tn := range g.byRel[rel] {
				if !deadT[tn.Ref] {
					keptT = append(keptT, tn)
				}
			}
			g.byRel[rel] = keptT
		}
	}
}

// filterDerivs drops every dead derivation from list in place.
func filterDerivs(list []*DerivNode, dead map[string]bool) []*DerivNode {
	kept := list[:0]
	for _, d := range list {
		if !dead[d.ID] {
			kept = append(kept, d)
		}
	}
	return kept
}
