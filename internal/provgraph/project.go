package provgraph

import "repro/internal/model"

// ProjectOptions restricts a projection.
type ProjectOptions struct {
	// Relations restricts traversal to derivations all of whose
	// source tuples belong to these relations (nil = no restriction).
	// This implements use case Q2 ("derivations involving tuples from
	// a certain relation").
	Relations map[string]bool
	// Mappings restricts traversal to derivations of these mappings
	// (nil = no restriction) — use case Q3.
	Mappings map[string]bool
	// MaxDepth bounds the number of derivation steps followed; 0 means
	// unbounded (the <-+ wildcard).
	MaxDepth int
}

// ProjectAncestors returns the subgraph of everything the root tuples
// derive from: for each root, its derivations, their source tuples, and
// so on transitively (the paper's Q1 projection). Whenever a derivation
// node is included, all of its m sources and n targets are included,
// preserving the arity of the mapping.
func (g *Graph) ProjectAncestors(roots []model.TupleRef, opts ProjectOptions) *Graph {
	return g.project(roots, opts, false)
}

// ProjectDescendants returns the subgraph of everything derivable from
// the root tuples (following derivations forward) — the direction used
// for "what tuples are derived from this relation?".
func (g *Graph) ProjectDescendants(roots []model.TupleRef, opts ProjectOptions) *Graph {
	return g.project(roots, opts, true)
}

func (g *Graph) project(roots []model.TupleRef, opts ProjectOptions, forward bool) *Graph {
	out := New()
	type item struct {
		tn    *TupleNode
		depth int
	}
	var queue []item
	seen := make(map[string]bool)
	for _, ref := range roots {
		if tn, ok := g.Lookup(ref); ok {
			queue = append(queue, item{tn, 0})
			seen[annKey(tn)] = true
		}
	}
	admitDeriv := func(d *DerivNode) bool {
		if opts.Mappings != nil && !opts.Mappings[d.Mapping] {
			return false
		}
		if opts.Relations != nil {
			for _, src := range d.Sources {
				if !opts.Relations[src.Ref.Rel] {
					return false
				}
			}
		}
		return true
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		cur := it.tn
		// Always materialize the frontier tuple in the output graph.
		copyTuple(out, cur)
		if opts.MaxDepth > 0 && it.depth >= opts.MaxDepth {
			continue
		}
		derivs := cur.Derivations
		if forward {
			derivs = cur.Uses
		}
		for _, d := range derivs {
			if !admitDeriv(d) {
				continue
			}
			nd := out.AddDerivation(d.ID, d.Mapping, refsOf(d.Sources), refsOf(d.Targets))
			// Copy node metadata for everything the derivation touches.
			for _, tn := range append(append([]*TupleNode{}, d.Sources...), d.Targets...) {
				copyTuple(out, tn)
			}
			_ = nd
			next := d.Sources
			if forward {
				next = d.Targets
			}
			for _, tn := range next {
				if !seen[annKey(tn)] {
					seen[annKey(tn)] = true
					queue = append(queue, item{tn, it.depth + 1})
				}
			}
		}
	}
	return out
}

func copyTuple(out *Graph, tn *TupleNode) {
	n := out.Tuple(tn.Ref)
	n.Row = tn.Row
	n.Leaf = tn.Leaf
}

func refsOf(tns []*TupleNode) []model.TupleRef {
	out := make([]model.TupleRef, len(tns))
	for i, tn := range tns {
		out[i] = tn.Ref
	}
	return out
}

// CommonAncestors returns the tuple refs that appear in the ancestor
// projections of both a and b — the "common provenance" test of use
// case Q4 ("join using provenance").
func (g *Graph) CommonAncestors(a, b model.TupleRef) []model.TupleRef {
	ga := g.ProjectAncestors([]model.TupleRef{a}, ProjectOptions{})
	gb := g.ProjectAncestors([]model.TupleRef{b}, ProjectOptions{})
	var out []model.TupleRef
	for _, tn := range ga.Tuples() {
		if _, ok := gb.Lookup(tn.Ref); ok {
			out = append(out, tn.Ref)
		}
	}
	return out
}

// Lineage returns the set of leaf tuple refs reachable backwards from
// root — Cui-style lineage (use case Q6) computed directly on the
// graph; cross-checked against the LINEAGE semiring evaluation in
// tests.
func (g *Graph) Lineage(root model.TupleRef) []model.TupleRef {
	sub := g.ProjectAncestors([]model.TupleRef{root}, ProjectOptions{})
	var out []model.TupleRef
	for _, tn := range sub.Tuples() {
		if tn.Leaf {
			out = append(out, tn.Ref)
		}
	}
	return out
}
