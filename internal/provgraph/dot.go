package provgraph

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/model"
)

// WriteDOT renders the graph in Graphviz DOT format in the visual
// vocabulary of Figure 1: rectangles for tuple nodes (boldface label
// for local contributions), ellipses labeled with the mapping name for
// derivation nodes, and small '+' ovals feeding leaf tuples. This is
// the backend for the "interactive provenance browsers and viewers"
// use case of Section 1.
func WriteDOT(w io.Writer, g *Graph, title string) error {
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", title)
	}
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontsize=10];\n")

	ids := make(map[string]string, g.NumTuples())
	for i, tn := range g.Tuples() {
		id := fmt.Sprintf("t%d", i)
		ids[annKey(tn)] = id
		style := "shape=box"
		if tn.Leaf {
			style += ", style=bold"
		}
		fmt.Fprintf(&b, "  %s [%s, label=%q];\n", id, style, tupleLabel(tn))
		if tn.Leaf {
			fmt.Fprintf(&b, "  plus_%s [shape=oval, label=\"+\", width=0.2, height=0.2];\n", id)
			fmt.Fprintf(&b, "  plus_%s -> %s;\n", id, id)
		}
	}
	for i, d := range g.Derivations() {
		id := fmt.Sprintf("d%d", i)
		fmt.Fprintf(&b, "  %s [shape=ellipse, label=%q];\n", id, d.Mapping)
		for _, src := range d.Sources {
			fmt.Fprintf(&b, "  %s -> %s;\n", ids[annKey(src)], id)
		}
		for _, tgt := range d.Targets {
			fmt.Fprintf(&b, "  %s -> %s;\n", id, ids[annKey(tgt)])
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func tupleLabel(tn *TupleNode) string {
	if tn.Row != nil {
		return tn.Ref.Rel + tn.Row.Format()
	}
	return tn.Ref.String()
}

// FormatRef renders a tuple ref with its row when available — used by
// the CLI and examples for readable output.
func FormatRef(g *Graph, ref model.TupleRef) string {
	if tn, ok := g.Lookup(ref); ok && tn.Row != nil {
		return tupleLabel(tn)
	}
	return ref.String()
}
