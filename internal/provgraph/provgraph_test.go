package provgraph_test

import (
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/provgraph"
	"repro/internal/semiring"
)

func refO(name string, h int64) model.TupleRef {
	return model.RefFromKey("O", []model.Datum{name, h})
}

func refA(id int64) model.TupleRef {
	return model.RefFromKey("A", []model.Datum{id})
}

func refC(id int64, name string) model.TupleRef {
	return model.RefFromKey("C", []model.Datum{id, name})
}

func refN(id int64, name string, canon bool) model.TupleRef {
	return model.RefFromKey("N", []model.Datum{id, name, canon})
}

func buildExample(t *testing.T, includeM3 bool) *provgraph.Graph {
	t.Helper()
	sys := fixture.MustSystem(fixture.Options{IncludeM3: includeM3})
	g, err := provgraph.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildRunningExample(t *testing.T) {
	g := buildExample(t, false)
	// Tuples: A(2) + N(3) + C(2) + O(4) = 11.
	if g.NumTuples() != 11 {
		t.Errorf("tuples = %d, want 11", g.NumTuples())
	}
	// Derivations: m1(1) + m2(2) + m4(2) + m5(2) = 7.
	if g.NumDerivations() != 7 {
		t.Errorf("derivations = %d, want 7", g.NumDerivations())
	}
	// Leaves: A(1), A(2), N(1,cn1,false), C(2,cn2).
	leaves := 0
	for _, tn := range g.Tuples() {
		if tn.Leaf {
			leaves++
		}
	}
	if leaves != 4 {
		t.Errorf("leaves = %d, want 4", leaves)
	}
	if g.IsCyclic() {
		t.Error("acyclic example classified as cyclic")
	}
	// O(cn2,5) has exactly one derivation (m5); O(sn1,7) one (m4).
	o, ok := g.Lookup(refO("cn2", 5))
	if !ok {
		t.Fatal("missing O(cn2,5)")
	}
	if len(o.Derivations) != 1 || o.Derivations[0].Mapping != "m5" {
		t.Errorf("O(cn2,5) derivations = %v", o.Derivations)
	}
	if len(o.Derivations[0].Sources) != 2 {
		t.Errorf("m5 derivation has %d sources, want 2", len(o.Derivations[0].Sources))
	}
}

func TestEvalDerivability(t *testing.T) {
	g := buildExample(t, false)
	ann, err := provgraph.Eval(g, semiring.Derivability{}, provgraph.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple in the materialized instance is derivable.
	for _, tn := range g.Tuples() {
		v, ok := ann.Annotation(tn)
		if !ok || v != true {
			t.Errorf("%v derivability = %v (ok=%v), want true", tn.Ref, v, ok)
		}
	}
}

func TestEvalDerivabilityWithUntrustedLeaf(t *testing.T) {
	g := buildExample(t, false)
	// Drop A(1): tuples depending only on it become underivable.
	ann, err := provgraph.Eval(g, semiring.Derivability{}, provgraph.EvalOptions{
		Leaf: func(tn *provgraph.TupleNode) semiring.Value {
			return tn.Ref != refA(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectFalse := []model.TupleRef{
		refA(1), refO("sn1", 7), refO("cn1", 7), refC(1, "cn1"), refN(1, "sn1", true),
	}
	for _, ref := range expectFalse {
		tn, ok := g.Lookup(ref)
		if !ok {
			t.Fatalf("missing %v", ref)
		}
		if v, _ := ann.Annotation(tn); v != false {
			t.Errorf("%v should be underivable without A(1)", ref)
		}
	}
	expectTrue := []model.TupleRef{
		refA(2), refO("sn2", 5), refO("cn2", 5), refC(2, "cn2"), refN(1, "cn1", false),
	}
	for _, ref := range expectTrue {
		tn, ok := g.Lookup(ref)
		if !ok {
			t.Fatalf("missing %v", ref)
		}
		if v, _ := ann.Annotation(tn); v != true {
			t.Errorf("%v should stay derivable", ref)
		}
	}
}

func TestEvalTrustWithDistrustedMapping(t *testing.T) {
	// Paper Q7: distrust m4; O tuples derivable only through m4 become
	// untrusted, those with an m5 alternative stay trusted.
	g := buildExample(t, false)
	tr := semiring.Trust{}
	ann, err := provgraph.Eval(g, tr, provgraph.EvalOptions{
		MapFunc: func(m string) semiring.MappingFunc {
			if m == "m4" {
				return semiring.ConstZero(tr)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for ref, want := range map[model.TupleRef]bool{
		refO("sn1", 7): false, // only via m4
		refO("sn2", 5): false, // only via m4
		refO("cn1", 7): true,  // via m5
		refO("cn2", 5): true,  // via m5
	} {
		tn, _ := g.Lookup(ref)
		if v, _ := ann.Annotation(tn); v != want {
			t.Errorf("trust(%v) = %v, want %v", ref, v, want)
		}
	}
}

func TestEvalCountingNumberOfDerivations(t *testing.T) {
	g := buildExample(t, false)
	ann, err := provgraph.Eval(g, semiring.Counting{}, provgraph.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// C(2,cn2) is a leaf only (m1 derives only C(1,cn1) here): count 1.
	// O(cn2,5) derived once via m5 from A(2)·C(2,cn2): 1·1 = 1.
	// O(sn1,7): once via m4.
	for ref, want := range map[model.TupleRef]int64{
		refC(2, "cn2"): 1,
		refC(1, "cn1"): 1,
		refO("cn2", 5): 1,
		refO("sn1", 7): 1,
	} {
		tn, _ := g.Lookup(ref)
		if v, _ := ann.Annotation(tn); v != want {
			t.Errorf("count(%v) = %v, want %d", ref, v, want)
		}
	}
}

func TestEvalWeight(t *testing.T) {
	g := buildExample(t, false)
	// Weight 1 per leaf: derived tuple cost = number of leaves joined,
	// cheapest alternative wins.
	ann, err := provgraph.Eval(g, semiring.Weight{}, provgraph.EvalOptions{
		Leaf: func(*provgraph.TupleNode) semiring.Value { return 1.0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// O(cn1,7) via m5 from A(1) (cost 1) and C(1,cn1) (m1: A(1)+N(1,cn1,false) = 2) → 3.
	tn, _ := g.Lookup(refO("cn1", 7))
	if v, _ := ann.Annotation(tn); v != 3.0 {
		t.Errorf("weight(O(cn1,7)) = %v, want 3", v)
	}
	// N(1,cn1,false) is a leaf → 1.
	tn, _ = g.Lookup(refN(1, "cn1", false))
	if v, _ := ann.Annotation(tn); v != 1.0 {
		t.Errorf("weight(N(1,cn1,false)) = %v, want 1", v)
	}
}

func TestEvalLineageMatchesGraphLineage(t *testing.T) {
	g := buildExample(t, false)
	ann, err := provgraph.Eval(g, semiring.Lineage{}, provgraph.EvalOptions{
		Leaf: func(tn *provgraph.TupleNode) semiring.Value {
			return semiring.NewLineage(tn.Ref.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []model.TupleRef{refO("cn1", 7), refO("cn2", 5), refO("sn1", 7)} {
		tn, _ := g.Lookup(root)
		v, _ := ann.Annotation(tn)
		ls := v.(semiring.LineageSet)
		want := g.Lineage(root)
		if len(ls.IDs) != len(want) {
			t.Errorf("lineage(%v) = %v, graph walk found %v", root, ls.IDs, want)
			continue
		}
		for _, ref := range want {
			if !ls.Contains(ref.String()) {
				t.Errorf("lineage(%v) missing %v", root, ref)
			}
		}
	}
}

func TestEvalProbabilityEvents(t *testing.T) {
	g := buildExample(t, false)
	ann, err := provgraph.Eval(g, semiring.Probability{}, provgraph.EvalOptions{
		Leaf: func(tn *provgraph.TupleNode) semiring.Value {
			return semiring.VarDNF(tn.Ref.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// O(cn1,7) event: A(1) ∧ (A(1) ∧ N(1,cn1,false)) = A(1) ∧ N(1,cn1,false).
	tn, _ := g.Lookup(refO("cn1", 7))
	v, _ := ann.Annotation(tn)
	event := v.(semiring.DNF)
	want := semiring.VarDNF(refA(1).String()).And(semiring.VarDNF(refN(1, "cn1", false).String()))
	if !semiring.EqDNF(event, want) {
		t.Errorf("event = %s, want %s", event, want)
	}
	probs := map[string]float64{
		refA(1).String():               0.5,
		refN(1, "cn1", false).String(): 0.4,
	}
	p := semiring.ProbabilityOf(event, probs, 0)
	if p != 0.2 {
		t.Errorf("P = %g, want 0.2", p)
	}
}

func TestEvalCyclicFixpoint(t *testing.T) {
	// With m3 the graph is cyclic (C(1,cn1) ⇄ N(1,cn1,false)).
	g := buildExample(t, true)
	if !g.IsCyclic() {
		t.Fatal("example with m3 should be cyclic")
	}
	// Cycle-safe semiring: fixpoint converges; everything derivable.
	ann, err := provgraph.Eval(g, semiring.Derivability{}, provgraph.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range g.Tuples() {
		if v, _ := ann.Annotation(tn); v != true {
			t.Errorf("%v not derivable under fixpoint", tn.Ref)
		}
	}
	// Counting must refuse.
	if _, err := provgraph.Eval(g, semiring.Counting{}, provgraph.EvalOptions{}); err == nil {
		t.Error("counting over a cyclic graph should be rejected")
	}
}

func TestEvalCyclicDropLeaf(t *testing.T) {
	// In the cyclic graph, derivability must not bootstrap itself
	// through the cycle: with N(1,cn1,false) untrusted as a leaf, it is
	// still derivable via m3 from C(1,cn1)? C(1,cn1) needs N(1,cn1,false)
	// via m1 — a pure cycle with no external support collapses to false.
	g := buildExample(t, true)
	ann, err := provgraph.Eval(g, semiring.Derivability{}, provgraph.EvalOptions{
		Leaf: func(tn *provgraph.TupleNode) semiring.Value {
			return tn.Ref != refN(1, "cn1", false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []model.TupleRef{refN(1, "cn1", false), refC(1, "cn1"), refO("cn1", 7)} {
		tn, _ := g.Lookup(ref)
		if v, _ := ann.Annotation(tn); v != false {
			t.Errorf("%v should be false: the derivation cycle has no external support", ref)
		}
	}
	// Independent tuples survive.
	tn, _ := g.Lookup(refO("cn2", 5))
	if v, _ := ann.Annotation(tn); v != true {
		t.Error("O(cn2,5) should remain derivable")
	}
}

func TestProjectAncestors(t *testing.T) {
	g := buildExample(t, false)
	sub := g.ProjectAncestors([]model.TupleRef{refO("cn1", 7)}, provgraph.ProjectOptions{})
	// Expected subgraph: O(cn1,7) ← m5 ← {A(1), C(1,cn1)}; C(1,cn1) ← m1 ← {A(1), N(1,cn1,false)}.
	if sub.NumDerivations() != 2 {
		t.Errorf("projection has %d derivations, want 2", sub.NumDerivations())
	}
	wantTuples := []model.TupleRef{refO("cn1", 7), refA(1), refC(1, "cn1"), refN(1, "cn1", false)}
	if sub.NumTuples() != len(wantTuples) {
		t.Errorf("projection has %d tuples, want %d", sub.NumTuples(), len(wantTuples))
	}
	for _, ref := range wantTuples {
		if _, ok := sub.Lookup(ref); !ok {
			t.Errorf("projection missing %v", ref)
		}
	}
	// Leaf marks preserved.
	tn, _ := sub.Lookup(refA(1))
	if !tn.Leaf {
		t.Error("A(1) must stay a leaf in the projection")
	}
}

func TestProjectWithMappingRestriction(t *testing.T) {
	g := buildExample(t, false)
	sub := g.ProjectAncestors([]model.TupleRef{refO("sn1", 7)}, provgraph.ProjectOptions{
		Mappings: map[string]bool{"m5": true},
	})
	// O(sn1,7) is derived only via m4, so restricting to m5 leaves just
	// the root.
	if sub.NumDerivations() != 0 || sub.NumTuples() != 1 {
		t.Errorf("restricted projection = %d derivs / %d tuples, want 0/1",
			sub.NumDerivations(), sub.NumTuples())
	}
}

func TestProjectDescendants(t *testing.T) {
	g := buildExample(t, false)
	sub := g.ProjectDescendants([]model.TupleRef{refA(2)}, provgraph.ProjectOptions{})
	// A(2) feeds m2 (N(2,sn2,true)), m4 (O(sn2,5)), m5 (O(cn2,5)).
	for _, ref := range []model.TupleRef{refN(2, "sn2", true), refO("sn2", 5), refO("cn2", 5)} {
		if _, ok := sub.Lookup(ref); !ok {
			t.Errorf("descendants missing %v", ref)
		}
	}
	if _, ok := sub.Lookup(refO("cn1", 7)); ok {
		t.Error("descendants must not include O(cn1,7)")
	}
}

func TestProjectMaxDepth(t *testing.T) {
	g := buildExample(t, false)
	sub := g.ProjectAncestors([]model.TupleRef{refO("cn1", 7)}, provgraph.ProjectOptions{MaxDepth: 1})
	// One step: m5 and its sources/targets only — m1 not followed.
	if sub.NumDerivations() != 1 {
		t.Errorf("depth-1 projection has %d derivations, want 1", sub.NumDerivations())
	}
}

func TestCommonAncestors(t *testing.T) {
	g := buildExample(t, false)
	common := g.CommonAncestors(refO("cn1", 7), refO("sn1", 7))
	// Both derive from A(1).
	found := false
	for _, ref := range common {
		if ref == refA(1) {
			found = true
		}
	}
	if !found {
		t.Errorf("common ancestors %v should include A(1)", common)
	}
	// O(cn2,5) and O(cn1,7) share nothing.
	common = g.CommonAncestors(refO("cn2", 5), refO("cn1", 7))
	for _, ref := range common {
		if ref == refA(1) || ref == refA(2) {
			t.Errorf("unexpected common ancestor %v", ref)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildExample(t, false)
	var sb strings.Builder
	if err := provgraph.WriteDOT(&sb, g, "fig1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph provenance", "shape=box", "shape=ellipse", `label="m5"`, `label="+"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestEvalConfidentiality(t *testing.T) {
	g := buildExample(t, false)
	// A tuples are secret, others public; any join involving A requires
	// secret clearance.
	ann, err := provgraph.Eval(g, semiring.Confidentiality{}, provgraph.EvalOptions{
		Leaf: func(tn *provgraph.TupleNode) semiring.Value {
			if tn.Ref.Rel == "A" {
				return semiring.Secret
			}
			return semiring.Public
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := g.Lookup(refO("cn1", 7))
	if v, _ := ann.Annotation(tn); v != semiring.Secret {
		t.Errorf("O(cn1,7) confidentiality = %v, want secret", v)
	}
	tn, _ = g.Lookup(refC(2, "cn2"))
	if v, _ := ann.Annotation(tn); v != semiring.Public {
		t.Errorf("C(2,cn2) confidentiality = %v, want public (it is a public leaf)", v)
	}
}

func TestLabelIndexes(t *testing.T) {
	g := buildExample(t, false)
	// Relation index agrees with a full iteration.
	for _, rel := range []string{"O", "A", "C", "N"} {
		want := 0
		for _, tn := range g.Tuples() {
			if tn.Ref.Rel == rel {
				want++
			}
		}
		if got := g.NumTuplesOf(rel); got != want {
			t.Errorf("NumTuplesOf(%s) = %d, want %d", rel, got, want)
		}
		if got := len(g.TuplesOfUnordered(rel)); got != want {
			t.Errorf("TuplesOfUnordered(%s) = %d nodes, want %d", rel, got, want)
		}
		sorted := g.TuplesOf(rel)
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1].Ref.Key > sorted[i].Ref.Key {
				t.Errorf("TuplesOf(%s) not sorted", rel)
			}
		}
	}
	// Mapping index agrees with a full iteration and partitions the
	// derivations.
	total := 0
	for _, m := range []string{"m1", "m2", "m4", "m5"} {
		want := 0
		for _, d := range g.Derivations() {
			if d.Mapping == m {
				want++
			}
		}
		got := len(g.DerivationsOf(m))
		if got != want {
			t.Errorf("DerivationsOf(%s) = %d, want %d", m, got, want)
		}
		total += got
	}
	if total != g.NumDerivations() {
		t.Errorf("mapping index covers %d derivations, graph has %d", total, g.NumDerivations())
	}
}

func TestNodeOrdinalsUnique(t *testing.T) {
	g := buildExample(t, false)
	seenT := map[int]bool{}
	for _, tn := range g.Tuples() {
		if seenT[tn.Ord()] {
			t.Fatalf("duplicate tuple ordinal %d", tn.Ord())
		}
		seenT[tn.Ord()] = true
	}
	seenD := map[int]bool{}
	for _, d := range g.Derivations() {
		if seenD[d.Ord()] {
			t.Fatalf("duplicate derivation ordinal %d", d.Ord())
		}
		seenD[d.Ord()] = true
	}
}

func TestIndexesTrackIncrementalAdds(t *testing.T) {
	g := provgraph.New()
	g.AddDerivation("m#1", "m", []model.TupleRef{refA(1)}, []model.TupleRef{refC(1, "x")})
	if g.NumTuplesOf("A") != 1 || g.NumTuplesOf("C") != 1 {
		t.Fatalf("label index after first add: A=%d C=%d", g.NumTuplesOf("A"), g.NumTuplesOf("C"))
	}
	// Re-adding the same derivation is a no-op everywhere.
	g.AddDerivation("m#1", "m", []model.TupleRef{refA(1)}, []model.TupleRef{refC(1, "x")})
	if len(g.DerivationsOf("m")) != 1 {
		t.Fatalf("mapping index after duplicate add: %d", len(g.DerivationsOf("m")))
	}
	g.AddDerivation("m#2", "m", []model.TupleRef{refA(2)}, []model.TupleRef{refC(1, "x")})
	if len(g.DerivationsOf("m")) != 2 || g.NumTuplesOf("A") != 2 || g.NumTuplesOf("C") != 1 {
		t.Fatalf("indexes after second add: m=%d A=%d C=%d",
			len(g.DerivationsOf("m")), g.NumTuplesOf("A"), g.NumTuplesOf("C"))
	}
}
