package proql

import (
	"strings"
	"testing"
)

func TestExplainRelationalQuery(t *testing.T) {
	e := exampleEngine(t)
	out, err := e.ExplainString(paperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"backend: relational",
		"anchor: O ($x)",
		"matched mappings: m1, m2, m4, m5",
		"unfolded rules: 3",
		"HashJoin",
		"Scan(P_m5)",
		"Scan(A_l)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainGraphQuery(t *testing.T) {
	e := exampleEngine(t)
	out, err := e.ExplainString(paperQueries["Q4"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "backend: graph") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestExplainParseError(t *testing.T) {
	e := exampleEngine(t)
	if _, err := e.ExplainString("FOR nonsense"); err == nil {
		t.Error("bad query should error")
	}
}

func TestExplainShowsVirtualProvenanceView(t *testing.T) {
	// m4 is superfluous: its provenance atom must appear as a
	// projection over A, not a table scan.
	e := exampleEngine(t)
	out, err := e.ExplainString(paperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "P_m4") {
		t.Fatalf("m4 rule missing:\n%s", out)
	}
	if strings.Contains(out, "Scan(P_m4)") {
		t.Errorf("P_m4 is virtual and must not be a table scan:\n%s", out)
	}
}
