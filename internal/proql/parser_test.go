package proql

import (
	"strings"
	"testing"
)

// The paper's example queries (Sections 3.2.1–3.2.2).
var paperQueries = map[string]string{
	"Q1": `FOR [O $x]
	       INCLUDE PATH [$x] <-+ []
	       RETURN $x`,
	"Q2": `FOR [O $x] <-+ [A $y]
	       INCLUDE PATH [$x] <-+ [$y]
	       RETURN $x`,
	"Q3": `FOR [$x] <$p [], [$y] <- [$x]
	       WHERE $p = m1 OR $p = m2
	       INCLUDE PATH [$y] <- [$x]
	       RETURN $y`,
	"Q4": `FOR [O $x] <-+ [$z], [C $y] <-+ [$z]
	       INCLUDE PATH [$x] <-+ [], [$y] <-+ []
	       RETURN $x, $y`,
	"Q5": `EVALUATE DERIVABILITY OF {
	         FOR [O $x]
	         INCLUDE PATH [$x] <-+ []
	         RETURN $x
	       }`,
	"Q6": `EVALUATE LINEAGE OF {
	         FOR [O $x]
	         INCLUDE PATH [$x] <-+ []
	         RETURN $x
	       }`,
	"Q7": `EVALUATE TRUST OF {
	         FOR [O $x]
	         INCLUDE PATH [$x] <-+ []
	         RETURN $x
	       } ASSIGNING EACH leaf_node $y {
	         CASE $y in C : SET true
	         CASE $y in A and $y.length >= 6 : SET false
	         DEFAULT : SET true
	       } ASSIGNING EACH mapping $p($z) {
	         CASE $p = m4 : SET false
	         DEFAULT : SET $z
	       }`,
}

func TestParsePaperQueries(t *testing.T) {
	for name, text := range paperQueries {
		q, err := Parse(text)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if name >= "Q5" && q.Evaluate == "" {
			t.Errorf("%s: expected EVALUATE clause", name)
		}
	}
}

func TestParseQ1Structure(t *testing.T) {
	q := MustParse(paperQueries["Q1"])
	proj := q.Projection
	if len(proj.For) != 1 {
		t.Fatalf("For paths = %d", len(proj.For))
	}
	p := proj.For[0]
	if len(p.Nodes) != 1 || p.Nodes[0].Rel != "O" || p.Nodes[0].Var != "x" {
		t.Errorf("FOR path = %s", p)
	}
	if len(proj.Include) != 1 {
		t.Fatalf("Include paths = %d", len(proj.Include))
	}
	inc := proj.Include[0]
	if len(inc.Edges) != 1 || inc.Edges[0].Kind != EdgePlus {
		t.Errorf("include edge = %v", inc.Edges)
	}
	if inc.Nodes[1].Rel != "" || inc.Nodes[1].Var != "" {
		t.Errorf("include end = %v", inc.Nodes[1])
	}
	if len(proj.Return) != 1 || proj.Return[0] != "x" {
		t.Errorf("Return = %v", proj.Return)
	}
}

func TestParseQ3Structure(t *testing.T) {
	q := MustParse(paperQueries["Q3"])
	proj := q.Projection
	if len(proj.For) != 2 {
		t.Fatalf("For paths = %d", len(proj.For))
	}
	if proj.For[0].Edges[0].Var != "p" {
		t.Errorf("first edge should bind $p: %v", proj.For[0].Edges[0])
	}
	or, ok := proj.Where.(CondOr)
	if !ok {
		t.Fatalf("Where = %T", proj.Where)
	}
	l, ok := or.L.(CondCmp)
	if !ok || l.L.Var != "p" || l.R.Lit != "m1" {
		t.Errorf("left cond = %v", or.L)
	}
}

func TestParseQ7Structure(t *testing.T) {
	q := MustParse(paperQueries["Q7"])
	if q.Evaluate != "TRUST" {
		t.Errorf("Evaluate = %q", q.Evaluate)
	}
	if q.LeafAssign == nil || q.MapAssign == nil {
		t.Fatal("missing ASSIGNING clauses")
	}
	if len(q.LeafAssign.Cases) != 2 || q.LeafAssign.Default == nil {
		t.Errorf("leaf clause cases = %d", len(q.LeafAssign.Cases))
	}
	// Second case: $y in A and $y.length >= 6.
	and, ok := q.LeafAssign.Cases[1].Cond.(CondAnd)
	if !ok {
		t.Fatalf("second case cond = %T", q.LeafAssign.Cases[1].Cond)
	}
	in, ok := and.L.(CondIn)
	if !ok || in.Rel != "A" {
		t.Errorf("left = %v", and.L)
	}
	cmp, ok := and.R.(CondCmp)
	if !ok || cmp.L.Attr != "length" || cmp.Op != ">=" || cmp.R.Lit != int64(6) {
		t.Errorf("right = %v", and.R)
	}
	if q.MapAssign.ArgVar != "z" {
		t.Errorf("mapping arg var = %q", q.MapAssign.ArgVar)
	}
	if q.MapAssign.Cases[0].Value.Lit != false || q.MapAssign.Cases[0].Value.UseArg {
		t.Errorf("case value = %v", q.MapAssign.Cases[0].Value)
	}
	if q.MapAssign.Default == nil || !q.MapAssign.Default.UseArg {
		t.Errorf("default = %v", q.MapAssign.Default)
	}
}

func TestParseNamedMappingEdge(t *testing.T) {
	q := MustParse(`FOR [C $x] <m1 [A $y] RETURN $x`)
	e := q.Projection.For[0].Edges[0]
	if e.Kind != EdgeDirect || e.Mapping != "m1" {
		t.Errorf("edge = %v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOR",
		"FOR [O $x]",                 // missing RETURN
		"FOR [O $x RETURN $x",        // unterminated bracket
		"FOR [O $x] RETURN",          // missing var
		"FOR [O $x] WHERE RETURN $x", // empty where
		"EVALUATE OF { FOR [O $x] RETURN $x }",
		"EVALUATE TRUST OF FOR [O $x] RETURN $x", // missing brace
		"FOR [O $x] <- RETURN $x",                // dangling edge
		"FOR [O $x] WHERE $x. RETURN $x",         // dangling attr
		"FOR [O $x] RETURN $x extra",             // trailing tokens
		`EVALUATE TRUST OF { FOR [O $x] RETURN $x } ASSIGNING EACH widget $y { }`, // bad kind
		"FOR [O $x] WHERE $x IN RETURN $x",                                        // IN without relation
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("expected parse error for %q", text)
		}
	}
}

func TestParseStringAndNumberLiterals(t *testing.T) {
	q := MustParse(`FOR [O $x] WHERE $x.name = 'sn1' AND $x.height > 2.5 RETURN $x`)
	and, ok := q.Projection.Where.(CondAnd)
	if !ok {
		t.Fatalf("Where = %T", q.Projection.Where)
	}
	l := and.L.(CondCmp)
	if l.R.Lit != "sn1" {
		t.Errorf("string literal = %v", l.R.Lit)
	}
	r := and.R.(CondCmp)
	if r.R.Lit != 2.5 {
		t.Errorf("float literal = %v", r.R.Lit)
	}
}

func TestParseNegativeNumberAndNotEq(t *testing.T) {
	q := MustParse(`FOR [O $x] WHERE $x.height != -3 RETURN $x`)
	c := q.Projection.Where.(CondCmp)
	if c.Op != "!=" || c.R.Lit != int64(-3) {
		t.Errorf("cond = %v %v", c.Op, c.R.Lit)
	}
	q = MustParse(`FOR [O $x] WHERE $x.height <> 4 RETURN $x`)
	c = q.Projection.Where.(CondCmp)
	if c.Op != "!=" {
		t.Errorf("<> should parse as !=")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`for [O $x] include path [$x] <-+ [] return $x`); err != nil {
		t.Errorf("lowercase keywords should parse: %v", err)
	}
	if _, err := Parse(`evaluate trust of { for [O $x] return $x }`); err != nil {
		t.Errorf("lowercase evaluate should parse: %v", err)
	}
}

func TestPathExprString(t *testing.T) {
	q := MustParse(`FOR [O $x] <-+ [A $y] RETURN $x`)
	s := q.Projection.For[0].String()
	if !strings.Contains(s, "[O $x]") || !strings.Contains(s, "<-+") || !strings.Contains(s, "[A $y]") {
		t.Errorf("String = %q", s)
	}
}

func TestParseExistentialPathCondition(t *testing.T) {
	q := MustParse(`FOR [O $x] WHERE [$x] <- [A] RETURN $x`)
	if _, ok := q.Projection.Where.(CondPath); !ok {
		t.Fatalf("Where = %T, want CondPath", q.Projection.Where)
	}
}
