package proql

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/relstore"
)

// TestPlanCacheHitsOnRepeatedShape runs the same query shape with
// different constants on each backend and expects cache hits after the
// first execution.
func TestPlanCacheHitsOnRepeatedShape(t *testing.T) {
	for _, backend := range []string{"relational", "graph", "asr"} {
		e := exampleEngine(t)
		e.Backend = backend
		for i, n := range []int{5, 6, 7} {
			q := MustParse(fmt.Sprintf(`FOR [A $x] WHERE $x.length >= %d RETURN $x`, n))
			if _, err := e.Exec(context.Background(), q, Options{}); err != nil {
				t.Fatalf("%s: run %d: %v", backend, i, err)
			}
		}
		st := e.PlanCacheStats()
		if st.Hits != 2 || st.Misses != 1 {
			t.Errorf("%s: stats = %+v, want 2 hits / 1 miss", backend, st)
		}
	}
}

// TestPlanCacheConstantsStillApply guards against the classic plan-
// cache bug: a hit must still evaluate the *current* constants.
func TestPlanCacheConstantsStillApply(t *testing.T) {
	for _, backend := range []string{"relational", "graph", "asr"} {
		e := exampleEngine(t)
		e.Backend = backend
		counts := map[int]int{}
		// A_l rows have length 7 and 5 (Figure 1).
		for _, n := range []int{0, 6, 100} {
			res, err := e.Exec(context.Background(), MustParse(fmt.Sprintf(`FOR [A $x] WHERE $x.length >= %d RETURN $x`, n)), Options{})
			if err != nil {
				t.Fatalf("%s: length >= %d: %v", backend, n, err)
			}
			counts[n] = len(res.SortedRefs("x"))
		}
		if counts[0] != 2 || counts[6] != 1 || counts[100] != 0 {
			t.Errorf("%s: counts = %v, want {0:2 6:1 100:0}", backend, counts)
		}
	}
}

// TestPlanCacheMissOnDifferentBindingPattern changes a literal operand
// into a variable access: same operator, different binding pattern,
// must not share an entry.
func TestPlanCacheMissOnDifferentBindingPattern(t *testing.T) {
	e := exampleEngine(t)
	e.Backend = "relational"
	if _, err := e.Exec(context.Background(), MustParse(`FOR [A $x] WHERE $x.length >= 6 RETURN $x`), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(), MustParse(`FOR [A $x] WHERE $x.length >= $x.id RETURN $x`), Options{}); err != nil {
		t.Fatal(err)
	}
	st := e.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses (distinct binding patterns)", st)
	}
}

// TestPlanCacheInvalidationOnDefinitionChange bumps the store's
// definition version (as Materialize's DropTable+CreateTable does) and
// expects the next execution to re-plan; row churn alone must not
// invalidate.
func TestPlanCacheInvalidationOnDefinitionChange(t *testing.T) {
	e := exampleEngine(t)
	e.Backend = "graph"
	q := `FOR [O $x] <-+ [$z], [C $y] <-+ [$z] RETURN $x, $y`
	for i := 0; i < 2; i++ {
		if _, err := e.Exec(context.Background(), MustParse(q), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.PlanCacheStats(); st.Hits != 1 {
		t.Fatalf("warmup stats = %+v, want 1 hit", st)
	}
	// Row churn: entries stay valid.
	if _, err := e.Sys.DB.MustTable("A_l").Insert(model.Tuple{int64(99), "x", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(), MustParse(q), Options{}); err != nil {
		t.Fatal(err)
	}
	if st := e.PlanCacheStats(); st.Hits != 2 {
		t.Fatalf("after row churn stats = %+v, want 2 hits", st)
	}
	// Definition change: a new table bumps the version and invalidates.
	if _, err := e.Sys.DB.CreateTable(&relstore.TableSchema{
		Name:    "ASR_test",
		Columns: []model.Column{{Name: "k", Type: model.TypeInt}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(context.Background(), MustParse(q), Options{}); err != nil {
		t.Fatal(err)
	}
	st := e.PlanCacheStats()
	if st.Hits != 2 {
		t.Errorf("definition change should force a miss: stats = %+v", st)
	}
	if st.Misses < 2 {
		t.Errorf("expected a second miss after invalidation: stats = %+v", st)
	}
}
