// Package physplan is the physical layer of the ProQL graph backend:
// it compiles a query's FOR/WHERE/INCLUDE/RETURN block into a DAG of
// streaming physical operators over a materialized provenance graph
// (internal/provgraph), choosing a join order for the FOR path
// expressions by estimated selectivity.
//
// The operator set mirrors a relational engine specialized to
// provenance-graph navigation:
//
//   - Scan enumerates the instance-level matches of one path
//     expression, seeding from the graph's label indexes (relation →
//     tuples, mapping → derivations) and optionally partitioning its
//     start tuples over a worker pool.
//   - Extend is the index-nested-loop join: it extends each incoming
//     row through a path whose start is already bound, following
//     per-node adjacency lists (goal-directed evaluation).
//   - HashJoin joins two independent sub-plans on their shared
//     variables.
//   - Filter, Dedup, Include and Project do WHERE evaluation,
//     duplicate elimination on the RETURN variables, provenance
//     subgraph projection, and final column selection.
//
// Rows are positional ([]any indexed by a Schema), holding Tuple /
// Deriv handles; nil marks a variable not yet bound. All operators of
// one plan share the plan-wide schema, so joins merge rows without
// column remapping. Operators run over the Graph storage interface, so
// the same plans serve the materialized provgraph and the goal-directed
// ASR adapter.
package physplan

// Row is one variable binding: a slice indexed by the plan Schema,
// holding Tuple or Deriv handles (nil = unbound).
type Row []any

func cloneRow(r Row) Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Schema maps variable names to row columns.
type Schema struct {
	cols []string
	idx  map[string]int
}

// NewSchema builds a schema over the given column (variable) names.
func NewSchema(cols []string) *Schema {
	s := &Schema{cols: cols, idx: make(map[string]int, len(cols))}
	for i, c := range cols {
		s.idx[c] = i
	}
	return s
}

// Extend returns a schema with extra columns appended (names already
// present are ignored).
func (s *Schema) Extend(extra []string) *Schema {
	cols := make([]string, len(s.cols), len(s.cols)+len(extra))
	copy(cols, s.cols)
	for _, c := range extra {
		if _, ok := s.idx[c]; !ok {
			cols = append(cols, c)
		}
	}
	return NewSchema(cols)
}

// Cols returns the column names in order.
func (s *Schema) Cols() []string { return s.cols }

// Width returns the row width.
func (s *Schema) Width() int { return len(s.cols) }

// Col returns the column of a variable, or -1 if absent.
func (s *Schema) Col(name string) int {
	if i, ok := s.idx[name]; ok {
		return i
	}
	return -1
}

// nodeKey appends a collision-free encoding of one bound value to buf:
// node ordinals are unique per store and contain no separator
// ambiguity, unlike the raw string signatures they replace.
func nodeKey(buf []byte, v any) []byte {
	switch n := v.(type) {
	case Tuple:
		buf = append(buf, 't')
		buf = appendInt(buf, n.TupleOrd())
	case Deriv:
		buf = append(buf, 'd')
		buf = appendInt(buf, n.DerivOrd())
	default:
		buf = append(buf, '?')
	}
	return append(buf, ',')
}

func appendInt(buf []byte, n int) []byte {
	if n == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(buf, tmp[i:]...)
}

// RowKey encodes the given columns of a row as a dedup/join key.
func RowKey(r Row, cols []int) string {
	buf := make([]byte, 0, 8*len(cols))
	for _, c := range cols {
		if c < 0 {
			buf = append(buf, '?', ',')
			continue
		}
		buf = nodeKey(buf, r[c])
	}
	return string(buf)
}
