package physplan

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/provgraph"
	"repro/internal/stream"
)

func ref(rel string, k int) model.TupleRef {
	return model.RefFromKey(rel, []model.Datum{int64(k)})
}

// diamondGraph builds a graph of n diamonds: O(i) derived from B(i)
// and C(i) by mapping mo, each of those derived from A(i) by ma. One
// extra mapping mx derives O(0) directly from A(0).
func diamondGraph(n int) *provgraph.Graph {
	g := provgraph.New()
	for i := 0; i < n; i++ {
		g.AddDerivation(fmt.Sprintf("mo#%d", i), "mo",
			[]model.TupleRef{ref("B", i), ref("C", i)}, []model.TupleRef{ref("O", i)})
		g.AddDerivation(fmt.Sprintf("maB#%d", i), "ma",
			[]model.TupleRef{ref("A", i)}, []model.TupleRef{ref("B", i)})
		g.AddDerivation(fmt.Sprintf("maC#%d", i), "ma",
			[]model.TupleRef{ref("A", i)}, []model.TupleRef{ref("C", i)})
	}
	g.AddDerivation("mx#0", "mx", []model.TupleRef{ref("A", 0)}, []model.TupleRef{ref("O", 0)})
	return g
}

func mustRows(t *testing.T, op Op) []Row {
	t.Helper()
	it, err := op.Open()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stream.Collect[Row](it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// rowStrings renders projected rows for order-insensitive comparison.
func rowStrings(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			switch n := v.(type) {
			case *provgraph.TupleNode:
				s += n.Ref.String() + ";"
			case *provgraph.DerivNode:
				s += n.ID + ";"
			default:
				s += "?;"
			}
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func compilePlan(t *testing.T, g *provgraph.Graph, spec Spec) *Plan {
	t.Helper()
	plan, err := Compile(NewMem(g), spec)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestScanSinglePath(t *testing.T) {
	g := diamondGraph(3)
	// [O $x] <- [B $y]: one match per diamond.
	p := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Rel: "B", Var: "y"}},
		Edges: []Edge{{Kind: EdgeDirect}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p}, Return: []string{"x", "y"}})
	rows := mustRows(t, plan.Root)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestScanMappingIndexStart(t *testing.T) {
	g := diamondGraph(4)
	// [$x] <mx [$y]: only O(0) qualifies; the scan should seed from the
	// mapping index, not the whole graph.
	p := Path{
		Nodes: []Node{{Var: "x"}, {Var: "y"}},
		Edges: []Edge{{Kind: EdgeDirect, Mapping: "mx"}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p}, Return: []string{"x", "y"}})
	if want := "start=index:mapping(mx)"; !contains(Explain(plan.Root), want) {
		t.Errorf("plan should use the mapping index:\n%s", Explain(plan.Root))
	}
	rows := mustRows(t, plan.Root)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if got := rows[0][0].(*provgraph.TupleNode).Ref; got != ref("O", 0) {
		t.Errorf("x = %v", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestHashJoinOnSharedVar(t *testing.T) {
	g := diamondGraph(3)
	// Common ancestor: [O $x] <-+ [A $z], [C $y] <-+ [A $z]. Each O(i)
	// and C(i) share A(i); plus O(0) reaches A(0) via mx too (same
	// ancestor set).
	p1 := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Rel: "A", Var: "z"}},
		Edges: []Edge{{Kind: EdgePlus}},
	}
	p2 := Path{
		Nodes: []Node{{Rel: "C", Var: "y"}, {Rel: "A", Var: "z"}},
		Edges: []Edge{{Kind: EdgePlus}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p1, p2}, Return: []string{"x", "y", "z"}})
	rows := mustRows(t, plan.Root)
	// Every (O(i), C(i), A(i)) triple.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(rows), rowStrings(rows))
	}
	for _, r := range rows {
		x := r[0].(*provgraph.TupleNode).Ref
		y := r[1].(*provgraph.TupleNode).Ref
		z := r[2].(*provgraph.TupleNode).Ref
		if x.Key != z.Key || y.Key != z.Key {
			t.Errorf("mismatched diamond: %v %v %v", x, y, z)
		}
	}
}

func TestExtendWhenStartBound(t *testing.T) {
	g := diamondGraph(3)
	// Second path starts at the already-bound $y: planner must pick
	// Extend, not a hash join.
	p1 := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Rel: "B", Var: "y"}},
		Edges: []Edge{{Kind: EdgeDirect}},
	}
	p2 := Path{
		Nodes: []Node{{Var: "y"}, {Rel: "A", Var: "z"}},
		Edges: []Edge{{Kind: EdgeDirect}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p1, p2}, Return: []string{"x", "z"}})
	if !contains(Explain(plan.Root), "Extend(") {
		t.Fatalf("expected an Extend operator:\n%s", Explain(plan.Root))
	}
	rows := mustRows(t, plan.Root)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestFilterPushdown(t *testing.T) {
	g := diamondGraph(3)
	p1 := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Rel: "B", Var: "y"}},
		Edges: []Edge{{Kind: EdgeDirect}},
	}
	p2 := Path{
		Nodes: []Node{{Var: "y"}, {Rel: "A", Var: "z"}},
		Edges: []Edge{{Kind: EdgeDirect}},
	}
	keep := ref("O", 1)
	calls := 0
	filter := FilterSpec{
		Desc: "x = O(1)",
		Vars: []string{"x"},
		Fn: func(s *Schema, r Row) (bool, error) {
			calls++
			tn := r[s.Col("x")].(*provgraph.TupleNode)
			return tn.Ref == keep, nil
		},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p1, p2}, Filters: []FilterSpec{filter}, Return: []string{"x", "z"}})
	rows := mustRows(t, plan.Root)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	// Pushdown: a lenient pruning copy must sit below Extend (closer to
	// the scan), with the authoritative filter at the top of the
	// pipeline.
	ex := Explain(plan.Root)
	if idxPrune, idxExtend := indexOf(ex, "Filter(prune:"), indexOf(ex, "Extend("); idxPrune < 0 || idxExtend < 0 || idxPrune < idxExtend {
		t.Errorf("pruning filter should sit below Extend:\n%s", ex)
	}
	if idxStrict, idxExtend := indexOf(ex, "Filter(x"), indexOf(ex, "Extend("); idxStrict < 0 || idxStrict > idxExtend {
		t.Errorf("authoritative filter should sit above the join:\n%s", ex)
	}
}

func TestDedupDistinctNodesNoCollision(t *testing.T) {
	g := provgraph.New()
	// Derivation IDs crafted so naive string concatenation of (p, q)
	// collides: ("m\x001", "x") vs ("m", "1\x00x").
	d1 := g.AddDerivation("m\x001", "m1", nil, []model.TupleRef{ref("O", 1)})
	d2 := g.AddDerivation("x", "m1", nil, []model.TupleRef{ref("O", 2)})
	d3 := g.AddDerivation("m", "m1", nil, []model.TupleRef{ref("O", 3)})
	d4 := g.AddDerivation("1\x00x", "m1", nil, []model.TupleRef{ref("O", 4)})
	k1 := RowKey(Row{d1, d2}, []int{0, 1})
	k2 := RowKey(Row{d3, d4}, []int{0, 1})
	if k1 == k2 {
		t.Fatalf("distinct derivation pairs must not collide: %q", k1)
	}
	// Unbound vs bound must differ too.
	if RowKey(Row{d1, nil}, []int{0, 1}) == RowKey(Row{d1, d2}, []int{0, 1}) {
		t.Fatal("unbound column must produce a distinct key")
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	g := diamondGraph(50)
	p1 := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Var: "z"}},
		Edges: []Edge{{Kind: EdgePlus}},
	}
	spec := Spec{Paths: []Path{p1}, Return: []string{"x", "z"}}
	serial := compilePlan(t, g, spec)
	spec.Workers = 4
	parallel := compilePlan(t, g, spec)
	a := rowStrings(mustRows(t, serial.Root))
	b := rowStrings(mustRows(t, parallel.Root))
	if len(a) != len(b) {
		t.Fatalf("serial %d rows vs parallel %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestParallelScanEarlyClose(t *testing.T) {
	g := diamondGraph(100)
	p1 := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Var: "z"}},
		Edges: []Edge{{Kind: EdgePlus}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p1}, Return: []string{"x"}, Workers: 4})
	it, err := plan.Root.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	it.Close() // must not deadlock or leak workers blocked on send
}

func TestExistsChecker(t *testing.T) {
	g := diamondGraph(2)
	base := NewSchema([]string{"x"})
	// [$x] <- [B]: true for O tuples (derived from B), false for A.
	check := NewExistsChecker(NewMem(g), Path{
		Nodes: []Node{{Var: "x"}, {Rel: "B"}},
		Edges: []Edge{{Kind: EdgeDirect}},
	}, base)
	o0, _ := g.Lookup(ref("O", 0))
	a0, _ := g.Lookup(ref("A", 0))
	if got, err := check(Row{o0}); err != nil || !got {
		t.Errorf("O(0) <- [B] = %v, %v; want true", got, err)
	}
	if got, err := check(Row{a0}); err != nil || got {
		t.Errorf("A(0) <- [B] = %v, %v; want false", got, err)
	}
}

func TestGreedyOrderPrefersSelectiveStart(t *testing.T) {
	g := diamondGraph(10)
	// Path over all tuples vs path over the single mx derivation: the
	// mx path must come first, and the other path joins on $x.
	broad := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}, {Var: "z"}},
		Edges: []Edge{{Kind: EdgePlus}},
	}
	narrow := Path{
		Nodes: []Node{{Var: "x"}, {Rel: "A", Var: "w"}},
		Edges: []Edge{{Kind: EdgeDirect, Mapping: "mx"}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{broad, narrow}, Return: []string{"x", "z", "w"}})
	if len(plan.Order) != 2 || plan.Order[0] != 1 {
		t.Fatalf("order = %v, want the narrow mapping-indexed path first\n%s", plan.Order, Explain(plan.Root))
	}
	rows := mustRows(t, plan.Root)
	// O(0)'s ancestors: B(0), C(0), A(0) → 3 z bindings with w=A(0).
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(rows), rowStrings(rows))
	}
}

func TestIncludeProjectsSubgraph(t *testing.T) {
	g := diamondGraph(3)
	out := provgraph.New()
	p := Path{
		Nodes: []Node{{Rel: "O", Var: "x"}},
	}
	inc := Path{
		Nodes: []Node{{Var: "x"}, {}},
		Edges: []Edge{{Kind: EdgePlus}},
	}
	plan := compilePlan(t, g, Spec{Paths: []Path{p}, Include: []Path{inc}, Return: []string{"x"}, Out: out})
	rows := mustRows(t, plan.Root)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// All 10 derivations are ancestors of some O tuple.
	if out.NumDerivations() != 10 {
		t.Errorf("included derivations = %d, want 10", out.NumDerivations())
	}
}

func TestLenientFilterDefersErrors(t *testing.T) {
	g := diamondGraph(2)
	schema := NewSchema([]string{"x"})
	scan := &Scan{
		g:      NewMem(g),
		bp:     bindPath(Path{Nodes: []Node{{Rel: "O", Var: "x"}}}, schema),
		schema: schema,
	}
	boom := func(s *Schema, r Row) (bool, error) {
		return false, fmt.Errorf("no stored row")
	}
	// The lenient pruning copy passes erroring rows through: later
	// joins may prune them, and the authoritative filter decides.
	lenient := &Filter{input: scan, desc: "boom", fn: boom, lenient: true}
	rows := mustRows(t, lenient)
	if len(rows) != 2 {
		t.Fatalf("lenient filter should pass erroring rows through, got %d", len(rows))
	}
	// The authoritative copy surfaces the error.
	strict := &Filter{input: scan, desc: "boom", fn: boom}
	it, err := strict.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, _, err := it.Next(); err == nil {
		t.Fatal("strict filter must surface evaluation errors")
	}
}
