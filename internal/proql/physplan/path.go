package physplan

import (
	"fmt"
	"strings"
)

// EdgeKind distinguishes single derivation steps from <-+ paths.
type EdgeKind int

// Edge kinds.
const (
	EdgeDirect EdgeKind = iota // <- , <mapping , <$var
	EdgePlus                   // <-+ (one or more steps)
)

// Node matches a tuple node: relation and/or variable, both optional.
type Node struct {
	Rel string
	Var string
}

func (n Node) String() string {
	switch {
	case n.Rel != "" && n.Var != "":
		return "[" + n.Rel + " $" + n.Var + "]"
	case n.Rel != "":
		return "[" + n.Rel + "]"
	case n.Var != "":
		return "[$" + n.Var + "]"
	}
	return "[]"
}

// Edge matches a derivation step (or, for EdgePlus, one or more
// steps). Mapping and Var are only meaningful for EdgeDirect.
type Edge struct {
	Kind    EdgeKind
	Mapping string
	Var     string
}

func (e Edge) String() string {
	switch {
	case e.Kind == EdgePlus:
		return "<-+"
	case e.Mapping != "":
		return "<" + e.Mapping
	case e.Var != "":
		return "<$" + e.Var
	}
	return "<-"
}

// Path is an alternating sequence of node and edge patterns, written
// left-to-right from derived tuples back toward their sources.
type Path struct {
	Nodes []Node // len = len(Edges)+1
	Edges []Edge
}

func (p Path) String() string {
	var sb strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			sb.WriteByte(' ')
			sb.WriteString(p.Edges[i-1].String())
			sb.WriteByte(' ')
		}
		sb.WriteString(n.String())
	}
	return sb.String()
}

// Vars returns the variables bound by the path, tuple vars then
// derivation vars, in order of appearance.
func (p Path) Vars() []string {
	var out []string
	for _, n := range p.Nodes {
		if n.Var != "" {
			out = append(out, n.Var)
		}
	}
	for _, e := range p.Edges {
		if e.Var != "" {
			out = append(out, e.Var)
		}
	}
	return out
}

// boundPath is a path compiled against a schema: every variable
// resolved to its row column (-1 for variables without a column, which
// act as wildcards — used by INCLUDE paths, whose unbound variables
// never join).
type boundPath struct {
	path    Path
	nodeCol []int
	edgeCol []int
}

func bindPath(p Path, s *Schema) boundPath {
	bp := boundPath{
		path:    p,
		nodeCol: make([]int, len(p.Nodes)),
		edgeCol: make([]int, len(p.Edges)),
	}
	for i, n := range p.Nodes {
		bp.nodeCol[i] = -1
		if n.Var != "" {
			bp.nodeCol[i] = s.Col(n.Var)
		}
	}
	for i, e := range p.Edges {
		bp.edgeCol[i] = -1
		if e.Var != "" {
			bp.edgeCol[i] = s.Col(e.Var)
		}
	}
	return bp
}

// nodeMatches reports whether tn satisfies node pattern i under row.
func (bp *boundPath) nodeMatches(i int, tn Tuple, row Row) bool {
	if r := bp.path.Nodes[i].Rel; r != "" && tn.TupleRef().Rel != r {
		return false
	}
	if c := bp.nodeCol[i]; c >= 0 {
		if prev := row[c]; prev != nil && prev != any(tn) {
			return false
		}
	}
	return true
}

// eachStart enumerates the candidate start tuples of the path under
// row, narrowest index first: a bound start variable, a bound
// first-edge derivation variable (its targets), the relation label
// index, the first-edge mapping index (targets of its derivations), or
// the whole store. With useIndexes false the derivation-variable and
// mapping shortcuts are skipped and candidate sets match the naive
// enumeration exactly (INCLUDE paths copy metadata for every
// candidate, so their candidate set is semantically visible).
func (bp *boundPath) eachStart(g Graph, row Row, useIndexes bool, yield func(Tuple) bool) error {
	n0 := bp.path.Nodes[0]
	if c := bp.nodeCol[0]; c >= 0 && row[c] != nil {
		tn, ok := row[c].(Tuple)
		if !ok {
			return fmt.Errorf("proql: variable $%s is a derivation node but used as a tuple node", n0.Var)
		}
		yield(tn)
		return nil
	}
	if useIndexes && len(bp.path.Edges) > 0 && bp.path.Edges[0].Kind == EdgeDirect {
		if c := bp.edgeCol[0]; c >= 0 && row[c] != nil {
			if d, ok := row[c].(Deriv); ok {
				g.EachTarget(d, yield)
				return nil
			}
		}
	}
	if n0.Rel != "" {
		g.EachTupleOf(n0.Rel, yield)
		return nil
	}
	if useIndexes && len(bp.path.Edges) > 0 && bp.path.Edges[0].Kind == EdgeDirect && bp.path.Edges[0].Mapping != "" {
		// Label index: a valid start must be the target of at least one
		// derivation of the first edge's mapping.
		seen := map[Tuple]bool{}
		cont := true
		g.EachDerivOf(bp.path.Edges[0].Mapping, func(d Deriv) bool {
			g.EachTarget(d, func(t Tuple) bool {
				if !seen[t] {
					seen[t] = true
					cont = yield(t)
				}
				return cont
			})
			return cont
		})
		return nil
	}
	g.EachTuple(yield)
	return nil
}

// startTuples materializes eachStart's candidates (the parallel scan
// partitions them over workers).
func (bp *boundPath) startTuples(g Graph, row Row, useIndexes bool) ([]Tuple, error) {
	var out []Tuple
	err := bp.eachStart(g, row, useIndexes, func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out, err
}

// startsDesc describes the start strategy for EXPLAIN output, given the
// variables bound before this path runs.
func (bp *boundPath) startsDesc(bound map[string]bool) string {
	n0 := bp.path.Nodes[0]
	if n0.Var != "" && bound[n0.Var] {
		return "start=$" + n0.Var
	}
	if len(bp.path.Edges) > 0 && bp.path.Edges[0].Kind == EdgeDirect && bp.path.Edges[0].Var != "" && bound[bp.path.Edges[0].Var] {
		return "start=targets($" + bp.path.Edges[0].Var + ")"
	}
	if n0.Rel != "" {
		return "start=index:rel(" + n0.Rel + ")"
	}
	if len(bp.path.Edges) > 0 && bp.path.Edges[0].Kind == EdgeDirect && bp.path.Edges[0].Mapping != "" {
		return "start=index:mapping(" + bp.path.Edges[0].Mapping + ")"
	}
	return "start=scan:all"
}

// matchAll enumerates every extension of row that satisfies the path,
// passing each completed row (a fresh copy) to yield. yield returning
// false stops the enumeration early.
func (bp *boundPath) matchAll(g Graph, row Row, yield func(Row) bool) error {
	cont := true
	err := bp.eachStart(g, row, true, func(st Tuple) bool {
		cont = bp.matchStart(g, st, row, yield)
		return cont
	})
	return err
}

// matchStart enumerates the path's matches anchored at one start
// tuple. It reports false when yield stopped the enumeration.
func (bp *boundPath) matchStart(g Graph, st Tuple, row Row, yield func(Row) bool) bool {
	if !bp.nodeMatches(0, st, row) {
		return true
	}
	nr := row
	if c := bp.nodeCol[0]; c >= 0 && nr[c] == nil {
		nr = cloneRow(nr)
		nr[c] = st
	}
	visited := map[Tuple]bool{st: true}
	return bp.step(g, 0, st, nr, visited, yield)
}

// step matches the path's edge edgeIdx (and everything after it) from
// cur, mirroring the tree-walking interpreter's simple-path semantics:
// within one path match a tuple node is never revisited.
func (bp *boundPath) step(g Graph, edgeIdx int, cur Tuple, row Row, visited map[Tuple]bool, yield func(Row) bool) bool {
	if edgeIdx == len(bp.path.Edges) {
		return yield(cloneRow(row))
	}
	edge := bp.path.Edges[edgeIdx]
	nextCol := bp.nodeCol[edgeIdx+1]
	cont := true
	switch edge.Kind {
	case EdgeDirect:
		ec := bp.edgeCol[edgeIdx]
		g.EachDerivInto(cur, edge.Mapping, func(d Deriv) bool {
			if ec >= 0 {
				if prev := row[ec]; prev != nil && prev != any(d) {
					return true
				}
			}
			g.EachSource(d, func(src Tuple) bool {
				if visited[src] || !bp.nodeMatches(edgeIdx+1, src, row) {
					return true
				}
				nr, cloned := row, false
				if ec >= 0 && nr[ec] == nil {
					nr, cloned = cloneRow(nr), true
					nr[ec] = d
				}
				if nextCol >= 0 && nr[nextCol] == nil {
					if !cloned {
						nr = cloneRow(nr)
					}
					nr[nextCol] = src
				}
				visited[src] = true
				cont = bp.step(g, edgeIdx+1, src, nr, visited, yield)
				delete(visited, src)
				return cont
			})
			return cont
		})
	case EdgePlus:
		// All ancestors at distance >= 1 reachable by simple paths, in
		// discovery order for determinism.
		var reached []Tuple
		seen := map[Tuple]bool{}
		var walk func(t Tuple)
		walk = func(t Tuple) {
			g.EachDerivInto(t, "", func(d Deriv) bool {
				g.EachSource(d, func(src Tuple) bool {
					if visited[src] {
						return true
					}
					if !seen[src] {
						seen[src] = true
						reached = append(reached, src)
					}
					visited[src] = true
					walk(src)
					delete(visited, src)
					return true
				})
				return true
			})
		}
		walk(cur)
		for _, src := range reached {
			if !bp.nodeMatches(edgeIdx+1, src, row) {
				continue
			}
			nr := row
			if nextCol >= 0 && nr[nextCol] == nil {
				nr = cloneRow(nr)
				nr[nextCol] = src
			}
			visited[src] = true
			cont = bp.step(g, edgeIdx+1, src, nr, visited, yield)
			delete(visited, src)
			if !cont {
				break
			}
		}
	}
	return cont
}

// NewExistsChecker precompiles an existential path condition against a
// schema, returning a predicate over that schema's rows. It is the
// WHERE-clause path-condition primitive: variables of the path absent
// from s are existential.
func NewExistsChecker(g Graph, p Path, s *Schema) func(Row) (bool, error) {
	ext := s.Extend(p.Vars())
	bp := bindPath(p, ext)
	width := ext.Width()
	return func(row Row) (bool, error) {
		seed := make(Row, width)
		copy(seed, row)
		found := false
		err := bp.matchAll(g, seed, func(Row) bool {
			found = true
			return false
		})
		return found, err
	}
}
