package physplan

import (
	"repro/internal/model"
	"repro/internal/provgraph"
)

// Tuple is a handle to one tuple node of a provenance store. Handles
// are interned: one store hands out exactly one (pointer-comparable)
// handle per tuple, so interface equality and map keys work as node
// identity throughout the operators.
type Tuple interface {
	// TupleRef identifies the tuple.
	TupleRef() model.TupleRef
	// TupleOrd is a store-wide unique ordinal (dedup/join keys).
	TupleOrd() int
	// TupleRow is the stored row, or nil for dangling references.
	TupleRow() model.Tuple
	// TupleLeaf reports a local contribution ('+' node).
	TupleLeaf() bool
}

// Deriv is a handle to one derivation node; interned like Tuple.
type Deriv interface {
	// DerivOrd is a store-wide unique ordinal.
	DerivOrd() int
	// DerivID is the derivation's unique ID (mapping # provenance key).
	DerivID() string
	// DerivMapping names the mapping that fired.
	DerivMapping() string
}

// Graph is the provenance-store surface the physical operators run
// over. The materialized provgraph and the goal-directed ASR adapter
// both implement it, so one operator set serves both backends.
//
// Enumeration is callback-style (yield returning false stops early) so
// lazy implementations never build intermediate slices. Implementations
// that can fail mid-enumeration (storage-backed adapters) record the
// first failure and surface it from Err; the engine checks Err after
// draining a plan.
type Graph interface {
	// EachDerivInto enumerates the derivations targeting t — its
	// incoming edges — restricted to one mapping when mapping != ""
	// (the goal-direction hook: storage adapters probe only that
	// mapping's provenance table).
	EachDerivInto(t Tuple, mapping string, yield func(Deriv) bool)
	// EachDerivOf enumerates one mapping's derivations.
	EachDerivOf(mapping string, yield func(Deriv) bool)
	// EachSource enumerates d's source tuples in atom order.
	EachSource(d Deriv, yield func(Tuple) bool)
	// EachTarget enumerates d's target tuples in atom order.
	EachTarget(d Deriv, yield func(Tuple) bool)
	// EachTupleOf enumerates one relation's tuples.
	EachTupleOf(rel string, yield func(Tuple) bool)
	// EachTuple enumerates every tuple.
	EachTuple(yield func(Tuple) bool)
	// NumTuples, NumTuplesOf, NumDerivations, NumDerivationsOf and
	// SourcePairs are the cardinality statistics the planner's cost
	// model uses; estimates are fine.
	NumTuples() int
	NumTuplesOf(rel string) int
	NumDerivations() int
	NumDerivationsOf(mapping string) int
	// SourcePairs counts (derivation, source) pairs — the fanout
	// numerator.
	SourcePairs() int
	// Err returns the first enumeration failure, or nil.
	Err() error
}

// Mem adapts a materialized *provgraph.Graph to the Graph interface:
// handles are the graph's own node pointers, enumeration walks the
// adjacency slices directly.
type Mem struct {
	G *provgraph.Graph
}

// NewMem wraps a materialized provenance graph.
func NewMem(g *provgraph.Graph) Mem { return Mem{G: g} }

// EachDerivInto implements Graph.
func (m Mem) EachDerivInto(t Tuple, mapping string, yield func(Deriv) bool) {
	for _, d := range t.(*provgraph.TupleNode).Derivations {
		if mapping != "" && d.Mapping != mapping {
			continue
		}
		if !yield(d) {
			return
		}
	}
}

// EachDerivOf implements Graph.
func (m Mem) EachDerivOf(mapping string, yield func(Deriv) bool) {
	for _, d := range m.G.DerivationsOf(mapping) {
		if !yield(d) {
			return
		}
	}
}

// EachSource implements Graph.
func (m Mem) EachSource(d Deriv, yield func(Tuple) bool) {
	for _, s := range d.(*provgraph.DerivNode).Sources {
		if !yield(s) {
			return
		}
	}
}

// EachTarget implements Graph.
func (m Mem) EachTarget(d Deriv, yield func(Tuple) bool) {
	for _, t := range d.(*provgraph.DerivNode).Targets {
		if !yield(t) {
			return
		}
	}
}

// EachTupleOf implements Graph.
func (m Mem) EachTupleOf(rel string, yield func(Tuple) bool) {
	for _, t := range m.G.TuplesOfUnordered(rel) {
		if !yield(t) {
			return
		}
	}
}

// EachTuple implements Graph.
func (m Mem) EachTuple(yield func(Tuple) bool) {
	for _, t := range m.G.Tuples() {
		if !yield(t) {
			return
		}
	}
}

// NumTuples implements Graph.
func (m Mem) NumTuples() int { return m.G.NumTuples() }

// NumTuplesOf implements Graph.
func (m Mem) NumTuplesOf(rel string) int { return m.G.NumTuplesOf(rel) }

// NumDerivations implements Graph.
func (m Mem) NumDerivations() int { return m.G.NumDerivations() }

// NumDerivationsOf implements Graph.
func (m Mem) NumDerivationsOf(mapping string) int { return len(m.G.DerivationsOf(mapping)) }

// SourcePairs implements Graph.
func (m Mem) SourcePairs() int {
	pairs := 0
	for _, d := range m.G.Derivations() {
		pairs += len(d.Sources)
	}
	return pairs
}

// Err implements Graph; in-memory enumeration cannot fail.
func (m Mem) Err() error { return nil }
