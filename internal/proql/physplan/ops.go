package physplan

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/stream"
)

// Op is a streaming physical operator. Open returns a fresh iterator
// over the operator's output rows; Schema describes the row layout.
// Every operator of one plan shares the plan-wide schema except
// Project, which narrows it.
type Op interface {
	Open() (stream.Iterator[Row], error)
	Schema() *Schema
	explain(sb *strings.Builder, indent int)
}

// Explain renders an operator tree, one operator per line, children
// indented under parents.
func Explain(root Op) string {
	var sb strings.Builder
	root.explain(&sb, 0)
	return sb.String()
}

func writeLine(sb *strings.Builder, indent int, format string, args ...any) {
	for i := 0; i < indent; i++ {
		sb.WriteString("  ")
	}
	fmt.Fprintf(sb, format, args...)
	sb.WriteByte('\n')
}

// batchIter drains per-item row batches produced on demand — the
// streaming granularity of path matching is one start tuple (or one
// input row) at a time, whose matches form a batch.
type batchIter struct {
	produce func() ([]Row, bool, error)
	closeFn func()
	buf     []Row
	pos     int
}

func (b *batchIter) Next() (Row, bool, error) {
	for {
		if b.pos < len(b.buf) {
			r := b.buf[b.pos]
			b.pos++
			return r, true, nil
		}
		batch, ok, err := b.produce()
		if err != nil || !ok {
			return nil, false, err
		}
		b.buf, b.pos = batch, 0
	}
}

func (b *batchIter) Close() {
	if b.closeFn != nil {
		b.closeFn()
	}
}

// Scan enumerates the matches of one path expression over the whole
// graph, seeding from the narrowest available index. With Workers > 1
// the start tuples are partitioned over a worker pool; row order then
// depends on scheduling, so parallel scans belong under order-
// insensitive consumers (the planner always deduplicates and the
// engine sorts final bindings).
type Scan struct {
	g       Graph
	bp      boundPath
	schema  *Schema
	workers int
	desc    string
	est     float64
	cancel  func() error
}

// Schema implements Op.
func (s *Scan) Schema() *Schema { return s.schema }

func (s *Scan) explain(sb *strings.Builder, indent int) {
	par := ""
	if s.workers > 1 {
		par = fmt.Sprintf(" workers=%d", s.workers)
	}
	writeLine(sb, indent, "Scan(%s, %s, est=%.0f%s)", s.bp.path, s.desc, s.est, par)
}

// Open implements Op.
func (s *Scan) Open() (stream.Iterator[Row], error) {
	seed := make(Row, s.schema.Width())
	starts, err := s.bp.startTuples(s.g, seed, true)
	if err != nil {
		return nil, err
	}
	if s.workers <= 1 {
		i := 0
		return &batchIter{produce: func() ([]Row, bool, error) {
			for i < len(starts) {
				if s.cancel != nil {
					if err := s.cancel(); err != nil {
						return nil, false, err
					}
				}
				st := starts[i]
				i++
				var batch []Row
				s.bp.matchStart(s.g, st, seed, func(r Row) bool {
					batch = append(batch, r)
					return true
				})
				if len(batch) > 0 {
					return batch, true, nil
				}
			}
			return nil, false, nil
		}}, nil
	}
	return s.openParallel(starts, seed), nil
}

// openParallel partitions the start tuples over the worker pool; each
// worker streams its matches into a shared channel.
func (s *Scan) openParallel(starts []Tuple, seed Row) stream.Iterator[Row] {
	type scanBatch struct{ rows []Row }
	out := make(chan scanBatch, s.workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	next := make(chan int) // work queue of start indexes
	go func() {
		defer close(next)
		for i := range starts {
			select {
			case next <- i:
			case <-stop:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if s.cancel != nil && s.cancel() != nil {
					return
				}
				var batch []Row
				s.bp.matchStart(s.g, starts[i], seed, func(r Row) bool {
					batch = append(batch, r)
					return true
				})
				if len(batch) == 0 {
					continue
				}
				select {
				case out <- scanBatch{rows: batch}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return &batchIter{
		produce: func() ([]Row, bool, error) {
			if s.cancel != nil {
				if err := s.cancel(); err != nil {
					return nil, false, err
				}
			}
			b, ok := <-out
			if !ok {
				return nil, false, nil
			}
			return b.rows, true, nil
		},
		closeFn: func() { stopOnce.Do(func() { close(stop) }) },
	}
}

// Extend is the index-nested-loop join: for each input row it
// enumerates the path's extensions, resolving the start tuple from the
// row's bindings (goal-directed) or from the label indexes.
type Extend struct {
	input  Op
	g      Graph
	bp     boundPath
	schema *Schema
	desc   string
	cancel func() error
}

// Schema implements Op.
func (e *Extend) Schema() *Schema { return e.schema }

func (e *Extend) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Extend(%s, %s)", e.bp.path, e.desc)
	e.input.explain(sb, indent+1)
}

// Open implements Op.
func (e *Extend) Open() (stream.Iterator[Row], error) {
	in, err := e.input.Open()
	if err != nil {
		return nil, err
	}
	return &batchIter{
		produce: func() ([]Row, bool, error) {
			for {
				if e.cancel != nil {
					if err := e.cancel(); err != nil {
						return nil, false, err
					}
				}
				row, ok, err := in.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				var batch []Row
				if err := e.bp.matchAll(e.g, row, func(r Row) bool {
					batch = append(batch, r)
					return true
				}); err != nil {
					return nil, false, err
				}
				if len(batch) > 0 {
					return batch, true, nil
				}
			}
		},
		closeFn: in.Close,
	}, nil
}

// HashJoin joins two sub-plans on their shared variables (an empty On
// list is a cross product). The right side is materialized into a hash
// table; the left side streams.
type HashJoin struct {
	left, right Op
	on          []string
	onCols      []int
	schema      *Schema
}

// Schema implements Op.
func (j *HashJoin) Schema() *Schema { return j.schema }

func (j *HashJoin) explain(sb *strings.Builder, indent int) {
	if len(j.on) == 0 {
		writeLine(sb, indent, "HashJoin(cross)")
	} else {
		writeLine(sb, indent, "HashJoin(on $%s)", strings.Join(j.on, ", $"))
	}
	j.left.explain(sb, indent+1)
	j.right.explain(sb, indent+1)
}

// Open implements Op.
func (j *HashJoin) Open() (stream.Iterator[Row], error) {
	rit, err := j.right.Open()
	if err != nil {
		return nil, err
	}
	build := map[string][]Row{}
	for {
		row, ok, err := rit.Next()
		if err != nil {
			rit.Close()
			return nil, err
		}
		if !ok {
			break
		}
		k := RowKey(row, j.onCols)
		build[k] = append(build[k], row)
	}
	rit.Close()
	lit, err := j.left.Open()
	if err != nil {
		return nil, err
	}
	return &batchIter{
		produce: func() ([]Row, bool, error) {
			for {
				lrow, ok, err := lit.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				matches := build[RowKey(lrow, j.onCols)]
				if len(matches) == 0 {
					continue
				}
				batch := make([]Row, 0, len(matches))
				for _, rrow := range matches {
					out := cloneRow(lrow)
					for c, v := range rrow {
						if out[c] == nil {
							out[c] = v
						}
					}
					batch = append(batch, out)
				}
				return batch, true, nil
			}
		},
		closeFn: lit.Close,
	}, nil
}

// FilterFn evaluates a predicate over a row; the schema is the plan
// schema the predicate was compiled against.
type FilterFn func(*Schema, Row) (bool, error)

// Filter keeps rows satisfying a compiled WHERE conjunct. A lenient
// filter is a pushed-down pruning copy running on partially joined
// rows: a predicate's value is stable once its variables are bound
// (extensions never rebind), so false rows can be dropped early, but
// evaluation errors must not surface for rows later joins would have
// pruned — the lenient copy passes them through and the authoritative
// end-of-pipeline filter re-evaluates, matching the interpreter's
// evaluate-after-all-paths error semantics.
type Filter struct {
	input   Op
	desc    string
	fn      FilterFn
	lenient bool
}

// Schema implements Op.
func (f *Filter) Schema() *Schema { return f.input.Schema() }

func (f *Filter) explain(sb *strings.Builder, indent int) {
	if f.lenient {
		writeLine(sb, indent, "Filter(prune: %s)", f.desc)
	} else {
		writeLine(sb, indent, "Filter(%s)", f.desc)
	}
	f.input.explain(sb, indent+1)
}

// Open implements Op.
func (f *Filter) Open() (stream.Iterator[Row], error) {
	in, err := f.input.Open()
	if err != nil {
		return nil, err
	}
	s := f.input.Schema()
	return &stream.Func[Row]{
		NextFn: func() (Row, bool, error) {
			for {
				row, ok, err := in.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				keep, err := f.fn(s, row)
				if err != nil {
					if f.lenient {
						return row, true, nil
					}
					return nil, false, err
				}
				if keep {
					return row, true, nil
				}
			}
		},
		CloseFn: in.Close,
	}, nil
}

// Dedup keeps the first row per distinct combination of the given
// variables, keyed by node ordinals (collision-free, unlike string
// concatenation of node names).
type Dedup struct {
	input  Op
	on     []string
	onCols []int
}

// Schema implements Op.
func (d *Dedup) Schema() *Schema { return d.input.Schema() }

func (d *Dedup) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Dedup($%s)", strings.Join(d.on, ", $"))
	d.input.explain(sb, indent+1)
}

// Open implements Op.
func (d *Dedup) Open() (stream.Iterator[Row], error) {
	in, err := d.input.Open()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	return &stream.Func[Row]{
		NextFn: func() (Row, bool, error) {
			for {
				row, ok, err := in.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				k := RowKey(row, d.onCols)
				if seen[k] {
					continue
				}
				seen[k] = true
				return row, true, nil
			}
		},
		CloseFn: in.Close,
	}, nil
}

// Project narrows rows to the given variables, in order. Variables
// absent from the input schema project to nil (the engine reports them
// as unbound when assembling bindings, preserving the interpreter's
// error behavior).
type Project struct {
	input  Op
	cols   []string
	colIdx []int
	schema *Schema
}

// Schema implements Op.
func (p *Project) Schema() *Schema { return p.schema }

func (p *Project) explain(sb *strings.Builder, indent int) {
	writeLine(sb, indent, "Project($%s)", strings.Join(p.cols, ", $"))
	p.input.explain(sb, indent+1)
}

// Open implements Op.
func (p *Project) Open() (stream.Iterator[Row], error) {
	in, err := p.input.Open()
	if err != nil {
		return nil, err
	}
	return &stream.Func[Row]{
		NextFn: func() (Row, bool, error) {
			row, ok, err := in.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			out := make(Row, len(p.colIdx))
			for i, c := range p.colIdx {
				if c >= 0 {
					out[i] = row[c]
				}
			}
			return out, true, nil
		},
		CloseFn: in.Close,
	}, nil
}
