package physplan

import (
	"fmt"
	"strings"

	"repro/internal/provgraph"
)

// FilterSpec is one WHERE conjunct: the variables it needs bound (only
// those a FOR path can bind — the planner places the filter at the
// earliest operator where all are available) and the compiled
// predicate.
type FilterSpec struct {
	Desc string
	Vars []string
	Fn   FilterFn
}

// Spec is the logical input to the planner: the FOR paths, the WHERE
// conjuncts, the INCLUDE paths with their output graph, and the RETURN
// variables.
type Spec struct {
	Paths   []Path
	Filters []FilterSpec
	Return  []string
	Include []Path
	// Out receives the projected provenance subgraph (tuple metadata
	// and included derivations). Required when Include is non-empty.
	Out *provgraph.Graph
	// Workers > 1 partitions the root path scan's start tuples over a
	// worker pool.
	Workers int
	// Cancel, when non-nil, is polled by the long-running operators
	// (one check per start tuple / input row); a non-nil return aborts
	// the plan with that error. The engine wires a request context's
	// Err here so servers can bound query time.
	Cancel func() error
}

// Decisions captures the planner's data-dependent choices — the join
// order of the FOR paths and their estimated costs. They depend only on
// the query shape and store statistics, never on WHERE constants, so a
// plan cache can replay them via CompileWithDecisions and skip the
// estimator entirely.
type Decisions struct {
	Order []int
	Costs []float64
}

// Plan is a compiled physical plan.
type Plan struct {
	// Root streams the final projected rows (one column per RETURN
	// variable, in order).
	Root Op
	// Order is the chosen evaluation order of Spec.Paths, most
	// selective first.
	Order []int
	// Costs are the estimated per-path costs, parallel to Order.
	Costs []float64
	// Schema is the plan-wide row layout (every FOR-path variable).
	Schema *Schema
}

// Decisions returns the plan's cacheable planning choices.
func (p *Plan) Decisions() Decisions { return Decisions{Order: p.Order, Costs: p.Costs} }

// ExplainString renders the join order and the operator tree.
func (p *Plan) ExplainString() string {
	var sb strings.Builder
	if len(p.Order) > 1 {
		parts := make([]string, len(p.Order))
		for i, idx := range p.Order {
			parts[i] = fmt.Sprintf("%d", idx+1)
		}
		fmt.Fprintf(&sb, "join order: path %s\n", strings.Join(parts, " -> "))
	}
	sb.WriteString("physical plan:\n")
	sb.WriteString(Explain(p.Root))
	return sb.String()
}

// Compile builds the physical plan for spec over g: greedy ordering of
// the FOR paths by estimated cost (connected paths preferred, bound
// starts exploited), index-nested-loop extension where a path's start
// is bound, hash joins on shared variables otherwise, filters pushed
// to the earliest operator with their variables in scope, then
// dedup on the RETURN variables, subgraph projection, and column
// projection.
func Compile(g Graph, spec Spec) (*Plan, error) {
	return compile(g, spec, nil)
}

// CompileWithDecisions builds the physical plan replaying previously
// made planning decisions (a plan-cache hit): the estimator and greedy
// ordering are skipped, only the operator tree — whose filter closures
// capture the current query's constants — is rebuilt.
func CompileWithDecisions(g Graph, spec Spec, dec Decisions) (*Plan, error) {
	if len(dec.Order) != len(spec.Paths) {
		return nil, fmt.Errorf("physplan: cached decisions cover %d paths, query has %d", len(dec.Order), len(spec.Paths))
	}
	return compile(g, spec, &dec)
}

func compile(g Graph, spec Spec, dec *Decisions) (*Plan, error) {
	// Plan-wide schema: every FOR-path variable, first appearance
	// order. (Stable under reordering, so filter predicates compiled
	// against it stay valid regardless of the chosen join order.)
	var cols []string
	seen := map[string]bool{}
	for _, p := range spec.Paths {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				cols = append(cols, v)
			}
		}
	}
	schema := NewSchema(cols)

	var order []int
	var costs []float64
	var est *estimator
	if dec != nil {
		order = dec.Order
		costs = make([]float64, len(order))
		copy(costs, dec.Costs)
	} else {
		est = newEstimator(g)
		order = greedyOrder(est, spec.Paths)
		costs = make([]float64, len(order))
	}
	// costFor records (or replays, on a cache hit) the estimate shown
	// in EXPLAIN for the path at order slot oi.
	costFor := func(oi int, p Path, bound map[string]bool) float64 {
		if est != nil {
			costs[oi] = est.pathCost(p, bound)
		}
		if oi < len(costs) {
			return costs[oi]
		}
		return 0
	}

	bound := map[string]bool{}
	var root Op
	// Pushed-down filters are lenient pruning copies (see Filter); the
	// authoritative evaluation happens once at the end of the pipeline,
	// in query order, so errors and AND short-circuiting behave exactly
	// as the interpreter's evaluate-after-all-paths semantics.
	unpushed := make([]FilterSpec, len(spec.Filters))
	copy(unpushed, spec.Filters)
	pushFilters := func() {
		var rest []FilterSpec
		for _, f := range unpushed {
			if root != nil && varsBound(f.Vars, bound) {
				root = &Filter{input: root, desc: f.Desc, fn: f.Fn, lenient: true}
			} else {
				rest = append(rest, f)
			}
		}
		unpushed = rest
	}

	for oi, idx := range order {
		p := spec.Paths[idx]
		bp := bindPath(p, schema)
		desc := bp.startsDesc(bound)
		switch {
		case root == nil:
			root = &Scan{g: g, bp: bp, schema: schema, workers: spec.Workers, desc: desc, est: costFor(oi, p, bound), cancel: spec.Cancel}
		case startBound(p, bound):
			// Goal-directed: the start tuple (or first-edge derivation)
			// is bound by earlier paths — extend row by row.
			root = &Extend{input: root, g: g, bp: bp, schema: schema, desc: desc, cancel: spec.Cancel}
		default:
			// Independent scan hash-joined on the shared variables
			// (empty = cross product).
			shared := sharedVars(p, bound)
			onCols := make([]int, len(shared))
			for i, v := range shared {
				onCols[i] = schema.Col(v)
			}
			// The independent scan runs uncorrelated, so its cost
			// ignores variables bound on the probe side.
			right := &Scan{g: g, bp: bp, schema: schema, desc: desc, est: costFor(oi, p, nil), cancel: spec.Cancel}
			root = &HashJoin{left: root, right: right, on: shared, onCols: onCols, schema: schema}
		}
		for _, v := range p.Vars() {
			bound[v] = true
		}
		if oi < len(order)-1 {
			pushFilters()
		}
	}
	if root == nil {
		// No FOR paths: a single empty row (mirrors the interpreter's
		// unit seed binding).
		root = &Scan{g: g, bp: bindPath(Path{Nodes: []Node{{}}}, schema), schema: schema, desc: "start=scan:all", cancel: spec.Cancel}
	}
	// The authoritative filters, in query order. Filters whose
	// variables no FOR path binds surface the interpreter's
	// unbound-variable errors here.
	for _, f := range spec.Filters {
		root = &Filter{input: root, desc: f.Desc, fn: f.Fn}
	}

	retCols := make([]int, len(spec.Return))
	for i, v := range spec.Return {
		retCols[i] = schema.Col(v)
	}
	root = &Dedup{input: root, on: spec.Return, onCols: retCols}
	if len(spec.Include) > 0 {
		if spec.Out == nil {
			return nil, fmt.Errorf("physplan: INCLUDE paths require Spec.Out")
		}
		bps := make([]boundPath, len(spec.Include))
		for i, p := range spec.Include {
			bps[i] = bindPath(p, schema)
		}
		root = &Include{input: root, g: g, out: spec.Out, paths: bps}
	}
	root = &Project{input: root, cols: spec.Return, colIdx: retCols, schema: NewSchema(spec.Return)}
	return &Plan{Root: root, Order: order, Costs: costs, Schema: schema}, nil
}

func varsBound(vars []string, bound map[string]bool) bool {
	for _, v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

// startBound reports whether evaluating p row-by-row can seed from a
// binding: its start node variable or first-edge derivation variable
// is already bound.
func startBound(p Path, bound map[string]bool) bool {
	if v := p.Nodes[0].Var; v != "" && bound[v] {
		return true
	}
	if len(p.Edges) > 0 && p.Edges[0].Kind == EdgeDirect {
		if v := p.Edges[0].Var; v != "" && bound[v] {
			return true
		}
	}
	return false
}

func sharedVars(p Path, bound map[string]bool) []string {
	var out []string
	for _, v := range p.Vars() {
		if bound[v] {
			out = append(out, v)
		}
	}
	return out
}

// estimator provides the cheap cardinality statistics the greedy
// ordering uses: index sizes and average in-degree fanout.
type estimator struct {
	g Graph
	// fanout is the expected number of (derivation, source) pairs one
	// backward step from a tuple node explores.
	fanout float64
}

func newEstimator(g Graph) *estimator {
	tuples := g.NumTuples()
	if tuples == 0 {
		return &estimator{g: g, fanout: 1}
	}
	f := float64(g.SourcePairs()) / float64(tuples)
	if f < 1 {
		f = 1
	}
	return &estimator{g: g, fanout: f}
}

// pathCost estimates the number of (row, node) visits evaluating p
// under the already-bound variables: start candidate count times the
// per-edge expansion, discounted for every additional bound variable
// (each acts as an equality filter).
func (e *estimator) pathCost(p Path, bound map[string]bool) float64 {
	var start float64
	n0 := p.Nodes[0]
	switch {
	case n0.Var != "" && bound[n0.Var]:
		start = 1
	case len(p.Edges) > 0 && p.Edges[0].Kind == EdgeDirect && p.Edges[0].Var != "" && bound[p.Edges[0].Var]:
		start = 2 // targets of one bound derivation
	case n0.Rel != "":
		start = float64(e.g.NumTuplesOf(n0.Rel))
	case len(p.Edges) > 0 && p.Edges[0].Kind == EdgeDirect && p.Edges[0].Mapping != "":
		start = float64(e.g.NumDerivationsOf(p.Edges[0].Mapping))
	default:
		start = float64(e.g.NumTuples())
	}
	cost := start + 1
	derivs := float64(e.g.NumDerivations())
	for i, edge := range p.Edges {
		f := e.fanout
		if edge.Kind == EdgePlus {
			// Multi-hop: quadratic in the average fanout as a crude
			// stand-in for expected ancestor-set size.
			f = e.fanout*e.fanout + 1
		} else if edge.Mapping != "" && derivs > 0 {
			// A named mapping keeps only its share of derivations.
			share := float64(e.g.NumDerivationsOf(edge.Mapping)) / derivs
			f *= share
			if f < 0.1 {
				f = 0.1
			}
		}
		cost *= f
		// A bound or relation-constrained endpoint filters the
		// expansion.
		end := p.Nodes[i+1]
		if end.Var != "" && bound[end.Var] {
			cost /= 8
		} else if end.Rel != "" {
			cost /= 2
		}
	}
	return cost
}

// greedyOrder picks the evaluation order of the FOR paths: the
// cheapest path first, then repeatedly the cheapest path connected to
// the bound variables (falling back to disconnected paths only when no
// connected one remains). Ties break toward query order.
func greedyOrder(est *estimator, paths []Path) []int {
	n := len(paths)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[string]bool{}
	for len(order) < n {
		best, bestCost, bestConnected := -1, 0.0, false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := len(order) == 0 || len(sharedVars(paths[i], bound)) > 0
			cost := est.pathCost(paths[i], bound)
			better := false
			switch {
			case best == -1:
				better = true
			case connected != bestConnected:
				better = connected
			default:
				better = cost < bestCost
			}
			if better {
				best, bestCost, bestConnected = i, cost, connected
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range paths[best].Vars() {
			bound[v] = true
		}
	}
	return order
}
