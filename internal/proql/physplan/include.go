package physplan

import (
	"strings"

	"repro/internal/model"
	"repro/internal/provgraph"
	"repro/internal/stream"
)

// Include copies the provenance paths matching the query's INCLUDE
// PATH expressions (under each surviving row) into the output graph,
// passing rows through unchanged. Include runs after Dedup, mirroring
// the interpreter: one projection per distinct RETURN row. Variables
// of an include path that the row leaves unbound act as wildcards; the
// walk never binds them.
type Include struct {
	input Op
	g     Graph
	out   *provgraph.Graph
	paths []boundPath
}

// Schema implements Op.
func (inc *Include) Schema() *Schema { return inc.input.Schema() }

func (inc *Include) explain(sb *strings.Builder, indent int) {
	descs := make([]string, len(inc.paths))
	for i, bp := range inc.paths {
		descs[i] = bp.path.String()
	}
	writeLine(sb, indent, "Include(%s)", strings.Join(descs, "; "))
	inc.input.explain(sb, indent+1)
}

// Open implements Op.
func (inc *Include) Open() (stream.Iterator[Row], error) {
	in, err := inc.input.Open()
	if err != nil {
		return nil, err
	}
	return &stream.Func[Row]{
		NextFn: func() (Row, bool, error) {
			row, ok, err := in.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			for i := range inc.paths {
				if err := inc.paths[i].include(inc.g, inc.out, row); err != nil {
					return nil, false, err
				}
			}
			return row, true, nil
		},
		CloseFn: in.Close,
	}, nil
}

// include copies the paths matching bp under row into out. Every
// candidate start tuple's metadata is copied even when no path matches
// it, and every included derivation brings all of its sources and
// targets — both mirroring the interpreter's projection semantics.
func (bp *boundPath) include(g Graph, out *provgraph.Graph, row Row) error {
	return bp.eachStart(g, row, false, func(st Tuple) bool {
		if r := bp.path.Nodes[0].Rel; r != "" && st.TupleRef().Rel != r {
			return true
		}
		CopyTupleMeta(out, st)
		bp.walkInclude(g, out, 0, st, row, map[Tuple]bool{st: true})
		return true
	})
}

func (bp *boundPath) walkInclude(g Graph, out *provgraph.Graph, edgeIdx int, cur Tuple, row Row, visited map[Tuple]bool) bool {
	if edgeIdx == len(bp.path.Edges) {
		return true
	}
	edge := bp.path.Edges[edgeIdx]
	nextCol := bp.nodeCol[edgeIdx+1]
	nextRel := bp.path.Nodes[edgeIdx+1].Rel
	// Fast path for the ubiquitous [$x] <-+ [] suffix: every ancestor
	// derivation is included, so a linear BFS replaces simple-path
	// enumeration (which can be exponential, and matters on cyclic
	// graphs).
	if edge.Kind == EdgePlus && edgeIdx == len(bp.path.Edges)-1 &&
		nextRel == "" && (nextCol < 0 || row[nextCol] == nil) {
		return includeAllAncestors(g, out, cur)
	}
	matchedAny := false
	switch edge.Kind {
	case EdgeDirect:
		ec := bp.edgeCol[edgeIdx]
		g.EachDerivInto(cur, edge.Mapping, func(d Deriv) bool {
			if ec >= 0 {
				if prev := row[ec]; prev != nil && prev != any(d) {
					return true
				}
			}
			g.EachSource(d, func(src Tuple) bool {
				if visited[src] || !bp.nodeMatches(edgeIdx+1, src, row) {
					return true
				}
				visited[src] = true
				if bp.walkInclude(g, out, edgeIdx+1, src, row, visited) {
					CopyDerivation(g, out, d)
					matchedAny = true
				}
				delete(visited, src)
				return true
			})
			return true
		})
	case EdgePlus:
		// Treat <-+ as one step followed by zero-or-more: copy a
		// derivation iff its source either matches the next pattern
		// (path ends here) or continues to a successful match.
		var walk func(t Tuple) bool
		walk = func(t Tuple) bool {
			ok := false
			g.EachDerivInto(t, "", func(d Deriv) bool {
				g.EachSource(d, func(src Tuple) bool {
					if visited[src] {
						return true
					}
					visited[src] = true
					endsHere := false
					if bp.nodeMatches(edgeIdx+1, src, row) {
						if bp.walkInclude(g, out, edgeIdx+1, src, row, visited) {
							endsHere = true
						}
					}
					continues := walk(src)
					if endsHere || continues {
						CopyDerivation(g, out, d)
						ok = true
					}
					delete(visited, src)
					return true
				})
				return true
			})
			return ok
		}
		matchedAny = walk(cur)
	}
	return matchedAny
}

// includeAllAncestors copies every derivation backwards-reachable from
// cur into the output graph, reporting whether any exists.
func includeAllAncestors(g Graph, out *provgraph.Graph, cur Tuple) bool {
	seen := map[Tuple]bool{cur: true}
	queue := []Tuple{cur}
	found := false
	for len(queue) > 0 {
		tn := queue[0]
		queue = queue[1:]
		g.EachDerivInto(tn, "", func(d Deriv) bool {
			found = true
			CopyDerivation(g, out, d)
			g.EachSource(d, func(src Tuple) bool {
				if !seen[src] {
					seen[src] = true
					queue = append(queue, src)
				}
				return true
			})
			return true
		})
	}
	return found
}

// CopyDerivation copies a derivation node (with all sources and
// targets, including their metadata) into out.
func CopyDerivation(g Graph, out *provgraph.Graph, d Deriv) {
	var srcs, tgts []model.TupleRef
	g.EachSource(d, func(s Tuple) bool {
		srcs = append(srcs, s.TupleRef())
		return true
	})
	g.EachTarget(d, func(t Tuple) bool {
		tgts = append(tgts, t.TupleRef())
		return true
	})
	out.AddDerivation(d.DerivID(), d.DerivMapping(), srcs, tgts)
	g.EachSource(d, func(s Tuple) bool {
		CopyTupleMeta(out, s)
		return true
	})
	g.EachTarget(d, func(t Tuple) bool {
		CopyTupleMeta(out, t)
		return true
	})
}

// CopyTupleMeta copies one tuple node's stored row and leaf mark into
// out.
func CopyTupleMeta(out *provgraph.Graph, tn Tuple) {
	n := out.Tuple(tn.TupleRef())
	if n.Row == nil {
		n.Row = tn.TupleRow()
	}
	n.Leaf = tn.TupleLeaf()
}
