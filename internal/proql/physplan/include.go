package physplan

import (
	"strings"

	"repro/internal/model"
	"repro/internal/provgraph"
	"repro/internal/stream"
)

// Include copies the provenance paths matching the query's INCLUDE
// PATH expressions (under each surviving row) into the output graph,
// passing rows through unchanged. Include runs after Dedup, mirroring
// the interpreter: one projection per distinct RETURN row. Variables
// of an include path that the row leaves unbound act as wildcards; the
// walk never binds them.
type Include struct {
	input Op
	g     *provgraph.Graph
	out   *provgraph.Graph
	paths []boundPath
}

// Schema implements Op.
func (inc *Include) Schema() *Schema { return inc.input.Schema() }

func (inc *Include) explain(sb *strings.Builder, indent int) {
	descs := make([]string, len(inc.paths))
	for i, bp := range inc.paths {
		descs[i] = bp.path.String()
	}
	writeLine(sb, indent, "Include(%s)", strings.Join(descs, "; "))
	inc.input.explain(sb, indent+1)
}

// Open implements Op.
func (inc *Include) Open() (stream.Iterator[Row], error) {
	in, err := inc.input.Open()
	if err != nil {
		return nil, err
	}
	return &stream.Func[Row]{
		NextFn: func() (Row, bool, error) {
			row, ok, err := in.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			for i := range inc.paths {
				if err := inc.paths[i].include(inc.g, inc.out, row); err != nil {
					return nil, false, err
				}
			}
			return row, true, nil
		},
		CloseFn: in.Close,
	}, nil
}

// include copies the paths matching bp under row into out. Every
// candidate start tuple's metadata is copied even when no path matches
// it, and every included derivation brings all of its sources and
// targets — both mirroring the interpreter's projection semantics.
func (bp *boundPath) include(g, out *provgraph.Graph, row Row) error {
	starts, err := bp.starts(g, row, false)
	if err != nil {
		return err
	}
	for _, st := range starts {
		if r := bp.path.Nodes[0].Rel; r != "" && st.Ref.Rel != r {
			continue
		}
		CopyTupleMeta(out, st)
		bp.walkInclude(g, out, 0, st, row, map[*provgraph.TupleNode]bool{st: true})
	}
	return nil
}

func (bp *boundPath) walkInclude(g, out *provgraph.Graph, edgeIdx int, cur *provgraph.TupleNode, row Row, visited map[*provgraph.TupleNode]bool) bool {
	if edgeIdx == len(bp.path.Edges) {
		return true
	}
	edge := bp.path.Edges[edgeIdx]
	nextCol := bp.nodeCol[edgeIdx+1]
	nextRel := bp.path.Nodes[edgeIdx+1].Rel
	// Fast path for the ubiquitous [$x] <-+ [] suffix: every ancestor
	// derivation is included, so a linear BFS replaces simple-path
	// enumeration (which can be exponential, and matters on cyclic
	// graphs).
	if edge.Kind == EdgePlus && edgeIdx == len(bp.path.Edges)-1 &&
		nextRel == "" && (nextCol < 0 || row[nextCol] == nil) {
		return includeAllAncestors(out, cur)
	}
	matchedAny := false
	switch edge.Kind {
	case EdgeDirect:
		ec := bp.edgeCol[edgeIdx]
		for _, d := range cur.Derivations {
			if edge.Mapping != "" && d.Mapping != edge.Mapping {
				continue
			}
			if ec >= 0 {
				if prev := row[ec]; prev != nil && prev != any(d) {
					continue
				}
			}
			for _, src := range d.Sources {
				if visited[src] || !bp.nodeMatches(edgeIdx+1, src, row) {
					continue
				}
				visited[src] = true
				if bp.walkInclude(g, out, edgeIdx+1, src, row, visited) {
					CopyDerivation(out, d)
					matchedAny = true
				}
				delete(visited, src)
			}
		}
	case EdgePlus:
		// Treat <-+ as one step followed by zero-or-more: copy a
		// derivation iff its source either matches the next pattern
		// (path ends here) or continues to a successful match.
		var walk func(t *provgraph.TupleNode) bool
		walk = func(t *provgraph.TupleNode) bool {
			ok := false
			for _, d := range t.Derivations {
				for _, src := range d.Sources {
					if visited[src] {
						continue
					}
					visited[src] = true
					endsHere := false
					if bp.nodeMatches(edgeIdx+1, src, row) {
						if bp.walkInclude(g, out, edgeIdx+1, src, row, visited) {
							endsHere = true
						}
					}
					continues := walk(src)
					if endsHere || continues {
						CopyDerivation(out, d)
						ok = true
					}
					delete(visited, src)
				}
			}
			return ok
		}
		matchedAny = walk(cur)
	}
	return matchedAny
}

// includeAllAncestors copies every derivation backwards-reachable from
// cur into the output graph, reporting whether any exists.
func includeAllAncestors(out *provgraph.Graph, cur *provgraph.TupleNode) bool {
	seen := map[*provgraph.TupleNode]bool{cur: true}
	queue := []*provgraph.TupleNode{cur}
	found := false
	for len(queue) > 0 {
		tn := queue[0]
		queue = queue[1:]
		for _, d := range tn.Derivations {
			found = true
			CopyDerivation(out, d)
			for _, src := range d.Sources {
				if !seen[src] {
					seen[src] = true
					queue = append(queue, src)
				}
			}
		}
	}
	return found
}

// CopyDerivation copies a derivation node (with all sources and
// targets, including their metadata) into out.
func CopyDerivation(out *provgraph.Graph, d *provgraph.DerivNode) {
	srcs := make([]model.TupleRef, len(d.Sources))
	for i, s := range d.Sources {
		srcs[i] = s.Ref
	}
	tgts := make([]model.TupleRef, len(d.Targets))
	for i, t := range d.Targets {
		tgts[i] = t.Ref
	}
	out.AddDerivation(d.ID, d.Mapping, srcs, tgts)
	for _, s := range d.Sources {
		CopyTupleMeta(out, s)
	}
	for _, t := range d.Targets {
		CopyTupleMeta(out, t)
	}
}

// CopyTupleMeta copies one tuple node's stored row and leaf mark into
// out.
func CopyTupleMeta(out *provgraph.Graph, tn *provgraph.TupleNode) {
	n := out.Tuple(tn.Ref)
	if n.Row == nil {
		n.Row = tn.Row
	}
	n.Leaf = tn.Leaf
}
