package proql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar    // $name
	tokNumber // integer or float literal
	tokString // 'quoted' or "quoted"
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokDot
	tokArrowPlus // <-+
	tokArrow     // <-
	tokLess      // <
	tokLessEq    // <=
	tokGreater   // >
	tokGreaterEq // >=
	tokEq        // =
	tokNotEq     // != or <>
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokArrowPlus:
		return "'<-+'"
	case tokArrow:
		return "'<-'"
	case tokLess:
		return "'<'"
	case tokLessEq:
		return "'<='"
	case tokGreater:
		return "'>'"
	case tokGreaterEq:
		return "'>='"
	case tokEq:
		return "'='"
	case tokNotEq:
		return "'!='"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// lex tokenizes a ProQL query. Keywords are returned as tokIdent; the
// parser matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '<':
			switch {
			case strings.HasPrefix(input[i:], "<-+"):
				toks = append(toks, token{tokArrowPlus, "<-+", i})
				i += 3
			case strings.HasPrefix(input[i:], "<-"):
				toks = append(toks, token{tokArrow, "<-", i})
				i += 2
			case strings.HasPrefix(input[i:], "<="):
				toks = append(toks, token{tokLessEq, "<=", i})
				i += 2
			case strings.HasPrefix(input[i:], "<>"):
				toks = append(toks, token{tokNotEq, "<>", i})
				i += 2
			default:
				toks = append(toks, token{tokLess, "<", i})
				i++
			}
		case c == '>':
			if strings.HasPrefix(input[i:], ">=") {
				toks = append(toks, token{tokGreaterEq, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGreater, ">", i})
				i++
			}
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if !strings.HasPrefix(input[i:], "!=") {
				return nil, fmt.Errorf("proql: lex error at %d: expected '!='", i)
			}
			toks = append(toks, token{tokNotEq, "!=", i})
			i += 2
		case c == '$':
			j := i + 1
			for j < n && isIdentChar(input[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("proql: lex error at %d: '$' must be followed by a name", i)
			}
			toks = append(toks, token{tokVar, input[i+1 : j], i})
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && input[j] != quote {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("proql: lex error at %d: unterminated string", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentChar(input[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("proql: lex error at %d: unexpected character %q", i, rune(c))
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// parseNumber converts a number token to an int64 or float64 datum.
func parseNumber(text string) (any, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, err
		}
		return f, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, err
	}
	return v, nil
}
