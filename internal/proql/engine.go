package proql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/provgraph"
	"repro/internal/relstore"
	"repro/internal/semiring"
)

// Engine executes ProQL queries over an exchanged system. It prefers
// the relational backend (Section 4) and falls back to the graph
// backend for query shapes the relational translation does not cover.
type Engine struct {
	Sys *exchange.System

	// Backend forces an execution backend: "relational", "graph", or
	// "asr" (goal-directed evaluation over the provenance tables, no
	// graph materialization). Empty or "auto" keeps the default policy:
	// relational when the translation covers the query, graph
	// otherwise.
	Backend string

	// RewriteRules, when set, rewrites the unfolded conjunctive rules
	// before planning — the hook the ASR layer (Section 5) uses to
	// substitute materialized path indexes.
	RewriteRules func([]*ConjRule) []*ConjRule
	// AtomPlanOverride, when set, supplies plans for atoms the base
	// system does not know (ASR tables).
	AtomPlanOverride func(atom model.Atom) (relstore.Plan, bool)

	// Parallelism > 1 partitions the graph backend's root path scan
	// over that many workers. Results are identical (the pipeline
	// deduplicates and the engine sorts bindings); only which
	// representative row survives deduplication for INCLUDE paths over
	// non-returned variables may vary with scheduling.
	Parallelism int

	// graphMu guards the cached materialized graph (patched in place by
	// Maintain*) and the ASR adapter handle. Graph-backend queries hold
	// the read side for their whole evaluation, so a maintenance patch
	// (write side) never mutates the graph mid-query: readers started
	// before a commit finish on the pre-patch graph, then the patch
	// applies. graphEpoch is the storage epoch the cached graph
	// reflects; Maintain* skips the patch when a concurrent rebuild
	// already observed the post-commit state (double-patch guard).
	graphMu    sync.RWMutex
	graph      *provgraph.Graph
	graphEpoch uint64
	// asr is the goal-directed adapter bound to a pinned storage
	// snapshot; it is shared (refcounted) by concurrent ASR queries at
	// the same epoch and retired when the epoch moves on.
	asr *asrGraph
	// plans is the shape-keyed plan cache shared by all backends; it is
	// internally synchronized.
	plans *planCache
}

// NewEngine builds an engine over a system. The engine is safe for
// concurrent queries (Exec/ExecString); maintenance entry points
// (Graph invalidation and patching) may run concurrently with queries
// but must themselves be serialized by the caller, as core.System
// does under its writer lock.
func NewEngine(sys *exchange.System) *Engine {
	return &Engine{Sys: sys, plans: newPlanCache()}
}

// Binding is one RETURN row: distinguished variable → tuple node.
type Binding map[string]model.TupleRef

// Stats reports how a query was executed. UnfoldTime and EvalTime are
// the two components the paper plots separately in Figures 7–8;
// PlanTime is the graph backend's physical-planning component. AsOf
// is the historical epoch the query evaluated at (0 = the live epoch).
type Stats struct {
	Backend       string // "relational", "graph", or "asr"
	AsOf          uint64
	UnfoldedRules int
	UnfoldTime    time.Duration
	PlanTime      time.Duration
	EvalTime      time.Duration
}

// Result is a ProQL query result: the distinguished-variable bindings,
// (for EVALUATE queries) the computed annotations keyed by tuple node,
// and the projected provenance subgraph.
//
// Mirroring the paper's implementation — which populates relational
// *output tables* of provenance edges, leaving graph assembly to the
// client — the relational backend stores the projected derivations as
// rows and only links them into a provgraph.Graph when Graph() is
// first called. Stats therefore measure query processing exactly as
// Section 6 does.
type Result struct {
	Bindings    []Binding
	Annotations map[model.TupleRef]semiring.Value
	Semiring    semiring.Semiring
	Stats       Stats

	graph      *provgraph.Graph
	buildGraph func() (*provgraph.Graph, error)
}

// Graph returns the projected provenance subgraph, assembling it from
// the collected output rows on first call.
func (r *Result) Graph() (*provgraph.Graph, error) {
	if r.graph != nil {
		return r.graph, nil
	}
	if r.buildGraph == nil {
		r.graph = provgraph.New()
		return r.graph, nil
	}
	g, err := r.buildGraph()
	if err != nil {
		return nil, err
	}
	r.graph = g
	return g, nil
}

// MustGraph is Graph for callers that treat assembly failure as fatal
// (tests, examples).
func (r *Result) MustGraph() *provgraph.Graph {
	g, err := r.Graph()
	if err != nil {
		panic(err)
	}
	return g
}

// SortedRefs returns the distinct bound refs of a variable, sorted —
// convenience for deterministic output.
func (r *Result) SortedRefs(v string) []model.TupleRef {
	seen := map[model.TupleRef]bool{}
	var out []model.TupleRef
	for _, b := range r.Bindings {
		if ref, ok := b[v]; ok && !seen[ref] {
			seen[ref] = true
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Options selects how one Exec call runs. The zero value is the
// default policy: the engine's configured backend (or auto) against
// the live epoch.
type Options struct {
	// Backend forces an execution backend for this call: "relational",
	// "graph", "asr", or "graph-legacy" (the tree-walking interpreter
	// kept for differential testing). Empty falls back to the engine's
	// Backend field, then to auto (relational when the translation
	// covers the query, graph otherwise).
	Backend string
	// AsOfEpoch, when non-zero, evaluates the query AS OF that storage
	// epoch: every backend pins a SnapshotAt view instead of the live
	// snapshot, so the answer is the one the same query produced when
	// that epoch was current. The epoch must be within the retention
	// window (relstore.Database.SetRetention) or Exec returns
	// *relstore.ErrEpochOutOfRange. 0 = live.
	AsOfEpoch uint64
}

// Exec is the query entry point: it runs an already parsed query under
// ctx with the given per-call options. A cancellable ctx (one with a
// Done channel) is polled during evaluation — per result row / start
// tuple — and aborts the query with ctx.Err() once cancelled or past
// its deadline; context.Background() and nil impose no bound.
//
// The context binding is per-call state on q: a *Query shared by
// concurrent Exec calls must use non-cancellable contexts (the
// concurrency the plan cache is built for), since binding a
// cancellable one mutates q.
func (e *Engine) Exec(ctx context.Context, q *Query, opts Options) (*Result, error) {
	if ctx != nil && ctx.Done() != nil {
		q.Cancel = ctx.Err
	}
	backend := opts.Backend
	if backend == "" {
		backend = e.Backend
	}
	asOf := opts.AsOfEpoch
	switch backend {
	case "", "auto":
		comp, err := e.compileUnfoldCached(q)
		if err != nil {
			var nr *ErrNotRelational
			if errors.As(err, &nr) {
				return e.execPlanned(q, asOf)
			}
			return nil, err
		}
		return e.execUnfold(comp, asOf)
	case "relational":
		comp, err := e.compileUnfoldCached(q)
		if err != nil {
			return nil, err
		}
		return e.execUnfold(comp, asOf)
	case "graph":
		return e.execPlanned(q, asOf)
	case "asr":
		return e.execASR(q, asOf)
	case "graph-legacy":
		return e.execGraph(q, asOf)
	default:
		return nil, fmt.Errorf("proql: unknown backend %q (want relational, graph, asr, or graph-legacy)", backend)
	}
}

// ExecString parses and runs a query with default options.
func (e *Engine) ExecString(query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Exec(context.Background(), q, Options{})
}

// snapshotAt pins the system for one query: the live epoch when asOf
// is 0, the retained historical epoch otherwise.
func (e *Engine) snapshotAt(asOf uint64) (*exchange.System, func(), error) {
	if asOf == 0 {
		sys, release := e.Sys.Snapshot()
		return sys, release, nil
	}
	return e.Sys.SnapshotAt(asOf)
}

// ExecGraph forces evaluation on the graph backend.
//
// Deprecated: use Exec with Options{Backend: "graph"}.
func (e *Engine) ExecGraph(q *Query) (*Result, error) {
	return e.Exec(context.Background(), q, Options{Backend: "graph"})
}

// ExecASR forces evaluation on the goal-directed ASR backend.
//
// Deprecated: use Exec with Options{Backend: "asr"}.
func (e *Engine) ExecASR(q *Query) (*Result, error) {
	return e.Exec(context.Background(), q, Options{Backend: "asr"})
}

// ExecGraphLegacy forces the graph backend's original tree-walking
// interpreter (kept to cross-check the planned pipeline).
//
// Deprecated: use Exec with Options{Backend: "graph-legacy"}.
func (e *Engine) ExecGraphLegacy(q *Query) (*Result, error) {
	return e.Exec(context.Background(), q, Options{Backend: "graph-legacy"})
}

// ExecContext is Exec on the default backend.
//
// Deprecated: use Exec.
func (e *Engine) ExecContext(ctx context.Context, q *Query) (*Result, error) {
	return e.Exec(ctx, q, Options{})
}

// ExecGraphContext is Exec on the graph backend.
//
// Deprecated: use Exec with Options{Backend: "graph"}.
func (e *Engine) ExecGraphContext(ctx context.Context, q *Query) (*Result, error) {
	return e.Exec(ctx, q, Options{Backend: "graph"})
}

// ExecASRContext is Exec on the ASR backend.
//
// Deprecated: use Exec with Options{Backend: "asr"}.
func (e *Engine) ExecASRContext(ctx context.Context, q *Query) (*Result, error) {
	return e.Exec(ctx, q, Options{Backend: "asr"})
}

// Graph returns the engine's materialized provenance graph, building
// it on first use from a consistent storage snapshot. The returned
// graph is the live cache: a later maintenance commit may patch it in
// place. Callers that need mid-commit stability should run queries
// (which hold the graph latch for their whole evaluation) instead of
// holding the pointer across commits.
func (e *Engine) Graph() (*provgraph.Graph, error) {
	g, release, err := e.acquireGraph()
	if err != nil {
		return nil, err
	}
	release()
	return g, nil
}

// acquireGraph returns the cached graph with the read latch held; the
// caller must invoke the release function when done reading. While
// any reader holds the latch, maintenance patches wait, so the graph
// never changes under an in-flight query.
func (e *Engine) acquireGraph() (*provgraph.Graph, func(), error) {
	for {
		e.graphMu.RLock()
		if e.graph != nil {
			return e.graph, e.graphMu.RUnlock, nil
		}
		e.graphMu.RUnlock()
		if err := e.buildGraph(); err != nil {
			return nil, nil, err
		}
	}
}

// buildGraph materializes the provenance graph from a pinned storage
// snapshot, so a concurrent exchange commit cannot leak half of its
// writes into the build. The epoch the snapshot pinned is recorded for
// the Maintain* double-patch guard.
func (e *Engine) buildGraph() error {
	e.graphMu.Lock()
	defer e.graphMu.Unlock()
	if e.graph != nil {
		return nil
	}
	snap, release := e.Sys.Snapshot()
	defer release()
	g, err := provgraph.Build(snap)
	if err != nil {
		return err
	}
	e.graph = g
	e.graphEpoch = snap.DB.Epoch()
	return nil
}

// InvalidateGraph drops the cached graph and retires the ASR adapter
// (call after new exchange runs). In-flight queries finish on the
// graph or adapter they already hold.
func (e *Engine) InvalidateGraph() {
	e.graphMu.Lock()
	defer e.graphMu.Unlock()
	e.graph = nil
	e.graphEpoch = 0
	e.retireASRLocked()
}

// retireASRLocked detaches the current ASR adapter: new queries build
// a fresh one, in-flight queries keep reading their pinned snapshot,
// and the snapshot is released once the last of them finishes. Callers
// hold graphMu.
func (e *Engine) retireASRLocked() {
	g := e.asr
	if g == nil {
		return
	}
	e.asr = nil
	g.retired = true
	if g.refs == 0 && g.release != nil {
		rel := g.release
		g.release = nil
		rel()
	}
}

// MaintainGraph applies an incremental-deletion report to the cached
// provenance graph in place, so a deletion costs a subgraph patch
// instead of a full rebuild on the next graph-backend query. A no-op
// when no graph is cached. Reports without deletion lists (the legacy
// propagator's) cannot be patched in; callers holding one must
// InvalidateGraph instead. The patch waits for in-flight graph
// queries: they finish on the pre-patch graph.
func (e *Engine) MaintainGraph(report *exchange.MaintenanceReport) {
	e.graphMu.Lock()
	defer e.graphMu.Unlock()
	// The ASR adapter is bound to a pre-commit snapshot; retire it so
	// the next ASR query re-pins current state (it re-interns lazily,
	// so the drop costs only the warmed handles).
	e.retireASRLocked()
	if e.graph == nil || report == nil {
		return
	}
	post := e.Sys.DB.Epoch()
	if post == e.graphEpoch {
		// A concurrent query rebuilt the graph from the post-commit
		// state after the deletion published; patching it again would
		// double-apply the report.
		return
	}
	provgraph.Apply(e.graph, e.Sys, report)
	e.graphEpoch = post
}

// MaintainGraphInsert applies an incremental-insertion report (a
// RunDelta's) to the cached provenance graph in place, so new local
// data costs a subgraph patch instead of a full rebuild on the next
// graph-backend query. A no-op when no graph is cached; when the
// report says the run was a full re-exchange (or the patch fails) the
// cache is invalidated and the next query rebuilds. Like
// MaintainGraph, the patch waits for in-flight graph queries.
func (e *Engine) MaintainGraphInsert(report *exchange.InsertionReport) {
	e.graphMu.Lock()
	defer e.graphMu.Unlock()
	e.retireASRLocked()
	if e.graph == nil || report == nil {
		return
	}
	post := e.Sys.DB.Epoch()
	if post == e.graphEpoch {
		return // rebuilt post-commit by a concurrent query; see MaintainGraph
	}
	if ok, err := provgraph.ApplyInsertions(e.graph, e.Sys, report); !ok || err != nil {
		e.graph = nil
		e.graphEpoch = 0
		return
	}
	e.graphEpoch = post
}
