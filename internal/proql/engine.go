package proql

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/exchange"
	"repro/internal/model"
	"repro/internal/provgraph"
	"repro/internal/relstore"
	"repro/internal/semiring"
)

// Engine executes ProQL queries over an exchanged system. It prefers
// the relational backend (Section 4) and falls back to the graph
// backend for query shapes the relational translation does not cover.
type Engine struct {
	Sys *exchange.System

	// Backend forces an execution backend: "relational", "graph", or
	// "asr" (goal-directed evaluation over the provenance tables, no
	// graph materialization). Empty or "auto" keeps the default policy:
	// relational when the translation covers the query, graph
	// otherwise.
	Backend string

	// RewriteRules, when set, rewrites the unfolded conjunctive rules
	// before planning — the hook the ASR layer (Section 5) uses to
	// substitute materialized path indexes.
	RewriteRules func([]*ConjRule) []*ConjRule
	// AtomPlanOverride, when set, supplies plans for atoms the base
	// system does not know (ASR tables).
	AtomPlanOverride func(atom model.Atom) (relstore.Plan, bool)

	// Parallelism > 1 partitions the graph backend's root path scan
	// over that many workers. Results are identical (the pipeline
	// deduplicates and the engine sorts bindings); only which
	// representative row survives deduplication for INCLUDE paths over
	// non-returned variables may vary with scheduling.
	Parallelism int

	// graph caches the materialized provenance graph for the graph
	// backend; asr caches the goal-directed adapter's interned handles.
	// plans is the shape-keyed plan cache shared by all backends.
	graph *provgraph.Graph
	asr   *asrGraph
	plans *planCache
}

// NewEngine builds an engine over a system.
func NewEngine(sys *exchange.System) *Engine {
	return &Engine{Sys: sys}
}

// Binding is one RETURN row: distinguished variable → tuple node.
type Binding map[string]model.TupleRef

// Stats reports how a query was executed. UnfoldTime and EvalTime are
// the two components the paper plots separately in Figures 7–8;
// PlanTime is the graph backend's physical-planning component.
type Stats struct {
	Backend       string // "relational", "graph", or "asr"
	UnfoldedRules int
	UnfoldTime    time.Duration
	PlanTime      time.Duration
	EvalTime      time.Duration
}

// Result is a ProQL query result: the distinguished-variable bindings,
// (for EVALUATE queries) the computed annotations keyed by tuple node,
// and the projected provenance subgraph.
//
// Mirroring the paper's implementation — which populates relational
// *output tables* of provenance edges, leaving graph assembly to the
// client — the relational backend stores the projected derivations as
// rows and only links them into a provgraph.Graph when Graph() is
// first called. Stats therefore measure query processing exactly as
// Section 6 does.
type Result struct {
	Bindings    []Binding
	Annotations map[model.TupleRef]semiring.Value
	Semiring    semiring.Semiring
	Stats       Stats

	graph      *provgraph.Graph
	buildGraph func() (*provgraph.Graph, error)
}

// Graph returns the projected provenance subgraph, assembling it from
// the collected output rows on first call.
func (r *Result) Graph() (*provgraph.Graph, error) {
	if r.graph != nil {
		return r.graph, nil
	}
	if r.buildGraph == nil {
		r.graph = provgraph.New()
		return r.graph, nil
	}
	g, err := r.buildGraph()
	if err != nil {
		return nil, err
	}
	r.graph = g
	return g, nil
}

// MustGraph is Graph for callers that treat assembly failure as fatal
// (tests, examples).
func (r *Result) MustGraph() *provgraph.Graph {
	g, err := r.Graph()
	if err != nil {
		panic(err)
	}
	return g
}

// SortedRefs returns the distinct bound refs of a variable, sorted —
// convenience for deterministic output.
func (r *Result) SortedRefs(v string) []model.TupleRef {
	seen := map[model.TupleRef]bool{}
	var out []model.TupleRef
	for _, b := range r.Bindings {
		if ref, ok := b[v]; ok && !seen[ref] {
			seen[ref] = true
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Exec parses nothing: it runs an already parsed query on the engine's
// selected backend (Backend), defaulting to relational-with-graph-
// fallback.
func (e *Engine) Exec(q *Query) (*Result, error) {
	switch e.Backend {
	case "", "auto":
	case "relational":
		comp, err := e.compileUnfoldCached(q)
		if err != nil {
			return nil, err
		}
		return e.execUnfold(comp)
	case "graph":
		return e.execPlanned(q)
	case "asr":
		return e.ExecASR(q)
	default:
		return nil, fmt.Errorf("proql: unknown backend %q (want relational, graph, or asr)", e.Backend)
	}
	comp, err := e.compileUnfoldCached(q)
	if err != nil {
		var nr *ErrNotRelational
		if errors.As(err, &nr) {
			return e.execPlanned(q)
		}
		return nil, err
	}
	return e.execUnfold(comp)
}

// ExecGraph forces evaluation on the graph backend, bypassing the
// relational translation. Useful for cross-checking backends and for
// interactive exploration over a prebuilt graph. Queries run through
// the physical-plan pipeline (internal/proql/physplan).
func (e *Engine) ExecGraph(q *Query) (*Result, error) {
	return e.execPlanned(q)
}

// ExecASR forces evaluation on the goal-directed ASR backend: the same
// physical-plan pipeline as the graph backend, but running directly
// over the provenance relations (and their secondary indexes) through
// an adapter that interns tuple and derivation handles on demand — no
// provenance graph is ever materialized, so memory stays proportional
// to the portion of the graph the query actually touches.
func (e *Engine) ExecASR(q *Query) (*Result, error) {
	g, err := e.asrAdapter()
	if err != nil {
		return nil, err
	}
	// The adapter interns handles in shared maps, so plans run
	// single-worker regardless of e.Parallelism.
	return e.execPhys(q, g, "asr", 1)
}

// ExecGraphLegacy forces evaluation on the graph backend's original
// tree-walking interpreter. It exists to cross-check the planned
// pipeline (differential tests, benchmarks) and will be removed once
// the pipeline has fully replaced it.
func (e *Engine) ExecGraphLegacy(q *Query) (*Result, error) {
	return e.execGraph(q)
}

// ExecString parses and runs a query.
func (e *Engine) ExecString(query string) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Exec(q)
}

// Graph returns the engine's materialized provenance graph, building
// it on first use.
func (e *Engine) Graph() (*provgraph.Graph, error) {
	if e.graph == nil {
		g, err := provgraph.Build(e.Sys)
		if err != nil {
			return nil, err
		}
		e.graph = g
	}
	return e.graph, nil
}

// InvalidateGraph drops the cached graph and the ASR adapter's
// interned handles (call after new exchange runs).
func (e *Engine) InvalidateGraph() {
	e.graph = nil
	e.asr = nil
}

// MaintainGraph applies an incremental-deletion report to the cached
// provenance graph in place, so a deletion costs a subgraph patch
// instead of a full rebuild on the next graph-backend query. A no-op
// when no graph is cached. Reports without deletion lists (the legacy
// propagator's) cannot be patched in; callers holding one must
// InvalidateGraph instead.
func (e *Engine) MaintainGraph(report *exchange.MaintenanceReport) {
	// The ASR adapter caches rows and adjacency read from the tables;
	// any maintenance invalidates it (it re-interns lazily, so a drop
	// costs only the warmed handles).
	e.asr = nil
	if e.graph == nil || report == nil {
		return
	}
	provgraph.Apply(e.graph, e.Sys, report)
}

// MaintainGraphInsert applies an incremental-insertion report (a
// RunDelta's) to the cached provenance graph in place, so new local
// data costs a subgraph patch instead of a full rebuild on the next
// graph-backend query. A no-op when no graph is cached; when the
// report says the run was a full re-exchange (or the patch fails) the
// cache is invalidated and the next query rebuilds.
func (e *Engine) MaintainGraphInsert(report *exchange.InsertionReport) {
	e.asr = nil
	if e.graph == nil || report == nil {
		return
	}
	if ok, err := provgraph.ApplyInsertions(e.graph, e.Sys, report); !ok || err != nil {
		e.graph = nil
	}
}
