package proql

import (
	"context"
	"testing"

	"repro/internal/fixture"
	"repro/internal/model"
	"repro/internal/semiring"
)

func refO(name string, h int64) model.TupleRef {
	return model.RefFromKey("O", []model.Datum{name, h})
}

func refA(id int64) model.TupleRef {
	return model.RefFromKey("A", []model.Datum{id})
}

func refC(id int64, name string) model.TupleRef {
	return model.RefFromKey("C", []model.Datum{id, name})
}

func exampleEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(fixture.MustSystem(fixture.Options{}))
}

func TestSchemaGraphMatchTargetQuery(t *testing.T) {
	e := exampleEngine(t)
	sg := NewSchemaGraph(e.Sys.Schema)
	// [O] <-+ []: all simple backward paths out of O.
	path := MustParse(`FOR [O $x] <-+ [] RETURN $x`).Projection.For[0]
	insts, err := sg.MatchPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 {
		t.Fatal("no instantiations")
	}
	all := Allowed{Relations: map[string]bool{}, Mappings: map[string]bool{}}
	for _, in := range insts {
		for _, r := range in.AllRelations() {
			all.Relations[r] = true
		}
		for _, m := range in.AllMappings() {
			all.Mappings[m] = true
		}
	}
	for _, m := range []string{"m1", "m2", "m4", "m5"} {
		if !all.Mappings[m] {
			t.Errorf("mapping %s should be reachable from O", m)
		}
	}
	for _, r := range []string{"O", "A", "C", "N"} {
		if !all.Relations[r] {
			t.Errorf("relation %s should be reachable from O", r)
		}
	}
}

func TestSchemaGraphMatchRestrictedEnd(t *testing.T) {
	e := exampleEngine(t)
	sg := NewSchemaGraph(e.Sys.Schema)
	path := MustParse(`FOR [C $x] <m1 [A $y] RETURN $x`).Projection.For[0]
	insts, err := sg.MatchPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("instantiations = %d, want 1", len(insts))
	}
	if insts[0].Rels[0] != "C" || insts[0].Rels[1] != "A" || insts[0].Chains[0][0] != "m1" {
		t.Errorf("instantiation = %+v", insts[0])
	}
	// Unknown relation errors.
	bad := MustParse(`FOR [Zzz $x] RETURN $x`).Projection.For[0]
	if _, err := sg.MatchPath(bad); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestCompileTargetQueryRuleCount(t *testing.T) {
	e := exampleEngine(t)
	comp, err := CompileUnfold(e.Sys, MustParse(paperQueries["Q1"]))
	if err != nil {
		t.Fatal(err)
	}
	// O has no local data. Derivation-tree shapes:
	//   m4 ∘ A_l                                  (1)
	//   m5 ∘ (A_l, C_l)                           (1)
	//   m5 ∘ (A_l, m1 ∘ (A_l, N_l))               (1)
	if len(comp.Rules) != 3 {
		for _, r := range comp.Rules {
			t.Logf("rule: anchor=%s body=%v", r.Anchor, r.Body)
		}
		t.Fatalf("unfolded rules = %d, want 3", len(comp.Rules))
	}
}

func TestExecQ1GraphProjection(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "relational" {
		t.Errorf("backend = %s", res.Stats.Backend)
	}
	// All four O tuples bound.
	refs := res.SortedRefs("x")
	if len(refs) != 4 {
		t.Fatalf("bindings = %d, want 4", len(refs))
	}
	// Subgraph: m4 fires twice, m5 twice, m1 once = 5 derivations.
	if res.MustGraph().NumDerivations() != 5 {
		t.Errorf("derivations = %d, want 5", res.MustGraph().NumDerivations())
	}
	// Every leaf of Figure 1 present.
	leafCount := 0
	for _, tn := range res.MustGraph().Tuples() {
		if tn.Leaf {
			leafCount++
		}
	}
	if leafCount != 4 {
		t.Errorf("leaves = %d, want 4", leafCount)
	}
}

func TestExecQ5Derivability(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q5"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Semiring.Name() != "DERIVABILITY" {
		t.Fatalf("semiring = %v", res.Semiring)
	}
	if len(res.Annotations) != 4 {
		t.Fatalf("annotations = %d, want 4", len(res.Annotations))
	}
	for ref, v := range res.Annotations {
		if v != true {
			t.Errorf("%v should be derivable", ref)
		}
	}
}

func TestExecQ6Lineage(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q6"])
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Annotations[refO("cn1", 7)]
	if !ok {
		t.Fatal("missing O(cn1,7)")
	}
	ls := v.(semiring.LineageSet)
	// Lineage of O(cn1,7): A(1) and N(1,cn1,false).
	if len(ls.IDs) != 2 || !ls.Contains(refA(1).String()) {
		t.Errorf("lineage = %v", ls.IDs)
	}
}

func TestExecQ7Trust(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q7"])
	if err != nil {
		t.Fatal(err)
	}
	// m4 is distrusted; A tuples with length >= 6 are distrusted.
	// O(sn1,7), O(sn2,5): only m4 → false.
	// O(cn1,7): m5 over A(1) (length 7 → false leaf) → false.
	// O(cn2,5): m5 over A(2) (length 5 → true) and C(2,cn2) (in C → true) → true.
	want := map[model.TupleRef]bool{
		refO("sn1", 7): false,
		refO("sn2", 5): false,
		refO("cn1", 7): false,
		refO("cn2", 5): true,
	}
	for ref, wantV := range want {
		got, ok := res.Annotations[ref]
		if !ok {
			t.Errorf("missing annotation for %v", ref)
			continue
		}
		if got != wantV {
			t.Errorf("trust(%v) = %v, want %v", ref, got, wantV)
		}
	}
}

func TestExecWeightQuery(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(`EVALUATE WEIGHT OF {
		FOR [O $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	} ASSIGNING EACH leaf_node $y {
		DEFAULT : SET 1
	}`)
	if err != nil {
		t.Fatal(err)
	}
	// O(cn1,7): m5 over A(1)=1 and C(1,cn1)=m1 over A(1)+N = 2 → 3.
	if v := res.Annotations[refO("cn1", 7)]; v != 3.0 {
		t.Errorf("weight(O(cn1,7)) = %v, want 3", v)
	}
	// O(sn1,7): m4 over A(1) → 1.
	if v := res.Annotations[refO("sn1", 7)]; v != 1.0 {
		t.Errorf("weight(O(sn1,7)) = %v, want 1", v)
	}
}

func TestExecCountQuery(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(`EVALUATE COUNT OF {
		FOR [C $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	}`)
	if err != nil {
		t.Fatal(err)
	}
	// C(2,cn2): local only → 1 derivation. C(1,cn1): via m1 → 1.
	if v := res.Annotations[refC(2, "cn2")]; v != int64(1) {
		t.Errorf("count(C(2,cn2)) = %v", v)
	}
	if v := res.Annotations[refC(1, "cn1")]; v != int64(1) {
		t.Errorf("count(C(1,cn1)) = %v", v)
	}
}

func TestExecProbabilityQuery(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(`EVALUATE PROBABILITY OF {
		FOR [O $x]
		INCLUDE PATH [$x] <-+ []
		RETURN $x
	}`)
	if err != nil {
		t.Fatal(err)
	}
	event := res.Annotations[refO("cn1", 7)].(semiring.DNF)
	// Event: A(1) ∧ N(1,cn1,false) (A(1) absorbed from the double use).
	if len(event.Monomials) != 1 || len(event.Monomials[0]) != 2 {
		t.Errorf("event = %s", event)
	}
}

func TestExecWhereOnAnchor(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(`FOR [O $x] WHERE $x.height >= 6 INCLUDE PATH [$x] <-+ [] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}
	refs := res.SortedRefs("x")
	if len(refs) != 2 {
		t.Fatalf("bindings = %d, want 2 (height 7 tuples)", len(refs))
	}
	for _, ref := range refs {
		if ref != refO("cn1", 7) && ref != refO("sn1", 7) {
			t.Errorf("unexpected binding %v", ref)
		}
	}
	// The projected subgraph must only contain derivations of the
	// selected tuples (goal-directed evaluation).
	for _, d := range res.MustGraph().Derivations() {
		for _, tgt := range d.Targets {
			if tgt.Ref.Rel == "O" && tgt.Ref != refO("cn1", 7) && tgt.Ref != refO("sn1", 7) {
				t.Errorf("unselected derivation for %v leaked into the output", tgt.Ref)
			}
		}
	}
}

func TestExecQ2PathRestriction(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q2"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "relational" {
		t.Errorf("backend = %s", res.Stats.Backend)
	}
	// Every O tuple has a derivation passing through A.
	if got := len(res.SortedRefs("x")); got != 4 {
		t.Errorf("bindings = %d, want 4", got)
	}
}

func TestExecQ3GraphBackend(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q3"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "graph" {
		t.Fatalf("backend = %s, want graph", res.Stats.Backend)
	}
	// Tuples derived via m1 or m2: C(1,cn1), N(1,sn1,true), N(2,sn2,true).
	// One-step derivations *from* those tuples: C(1,cn1) feeds m5 → O(cn1,7).
	refs := res.SortedRefs("y")
	if len(refs) != 1 || refs[0] != refO("cn1", 7) {
		t.Errorf("Q3 bindings = %v, want [O(cn1,7)]", refs)
	}
	// The include path copies the one-step derivation m5.
	if res.MustGraph().NumDerivations() == 0 {
		t.Error("include path should copy the m5 derivation")
	}
}

func TestExecQ4CommonProvenance(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q4"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "graph" {
		t.Fatalf("backend = %s, want graph", res.Stats.Backend)
	}
	// Only C(1,cn1) has incoming derivations (C(2,cn2) is a pure leaf,
	// so [C $y] <-+ [$z] cannot match it). Pairs: O(cn1,7) shares A(1)
	// and N(1,cn1,false) with C(1,cn1); O(sn1,7) shares A(1).
	want := map[[2]model.TupleRef]bool{
		{refO("cn1", 7), refC(1, "cn1")}: false,
		{refO("sn1", 7), refC(1, "cn1")}: false,
	}
	for _, b := range res.Bindings {
		pair := [2]model.TupleRef{b["x"], b["y"]}
		if _, ok := want[pair]; !ok {
			t.Errorf("unexpected common-provenance pair %v", pair)
			continue
		}
		want[pair] = true
	}
	for pair, seen := range want {
		if !seen {
			t.Errorf("missing common-provenance pair %v", pair)
		}
	}
}

// TestBackendParity cross-checks the relational and graph backends on
// the same annotation queries.
func TestBackendParity(t *testing.T) {
	e := exampleEngine(t)
	for name, text := range map[string]string{
		"derivability": paperQueries["Q5"],
		"trust":        paperQueries["Q7"],
		"projection":   paperQueries["Q1"],
	} {
		q := MustParse(text)
		rel, err := e.Exec(context.Background(), q, Options{})
		if err != nil {
			t.Fatalf("%s relational: %v", name, err)
		}
		gr, err := e.execGraph(q, 0)
		if err != nil {
			t.Fatalf("%s graph: %v", name, err)
		}
		relRefs := rel.SortedRefs("x")
		grRefs := gr.SortedRefs("x")
		if len(relRefs) != len(grRefs) {
			t.Errorf("%s: bindings %d vs %d", name, len(relRefs), len(grRefs))
			continue
		}
		for i := range relRefs {
			if relRefs[i] != grRefs[i] {
				t.Errorf("%s: binding %d: %v vs %v", name, i, relRefs[i], grRefs[i])
			}
		}
		if rel.MustGraph().NumDerivations() != gr.MustGraph().NumDerivations() {
			t.Errorf("%s: derivations %d vs %d", name, rel.MustGraph().NumDerivations(), gr.MustGraph().NumDerivations())
		}
		if rel.Annotations != nil {
			for ref, v := range rel.Annotations {
				gv, ok := gr.Annotations[ref]
				if !ok {
					t.Errorf("%s: graph backend missing annotation for %v", name, ref)
					continue
				}
				if !rel.Semiring.Eq(v, gv) {
					t.Errorf("%s: annotation(%v) = %v vs %v", name, ref,
						rel.Semiring.Format(v), rel.Semiring.Format(gv))
				}
			}
		}
	}
}

func TestExecUnknownSemiring(t *testing.T) {
	e := exampleEngine(t)
	if _, err := e.ExecString(`EVALUATE BOGUS OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`); err == nil {
		t.Error("unknown semiring should error")
	}
}

func TestExecSingleNodeNoInclude(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(`FOR [A $x] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.SortedRefs("x")); got != 2 {
		t.Errorf("bindings = %d, want 2", got)
	}
	if res.MustGraph().NumDerivations() != 0 {
		t.Errorf("no INCLUDE PATH → no derivations, got %d", res.MustGraph().NumDerivations())
	}
}

func TestExecNamedMappingEdge(t *testing.T) {
	e := exampleEngine(t)
	// C tuples derived via m1 in one step from A tuples.
	res, err := e.ExecString(`FOR [C $x] <m1 [A $y] INCLUDE PATH [$x] <m1 [$y] RETURN $x`)
	if err != nil {
		t.Fatal(err)
	}
	refs := res.SortedRefs("x")
	if len(refs) != 1 || refs[0] != refC(1, "cn1") {
		t.Errorf("bindings = %v, want [C(1,cn1)]", refs)
	}
}

func TestResultSortedRefsStable(t *testing.T) {
	e := exampleEngine(t)
	res, err := e.ExecString(paperQueries["Q1"])
	if err != nil {
		t.Fatal(err)
	}
	a := res.SortedRefs("x")
	b := res.SortedRefs("x")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SortedRefs not stable")
		}
	}
}
