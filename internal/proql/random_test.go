package proql_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asr"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/workload"
)

// randomConfig draws a small random CDSS setting.
func randomConfig(rng *rand.Rand) workload.Config {
	topo := workload.Chain
	if rng.Intn(2) == 1 {
		topo = workload.Branched
	}
	profile := workload.ProfileLinear
	if rng.Intn(3) == 0 {
		profile = workload.ProfileFan
	}
	n := 2 + rng.Intn(5) // 2..6 peers
	// Random non-empty subset of peers with data.
	var data []int
	for p := 0; p < n; p++ {
		if rng.Intn(2) == 0 {
			data = append(data, p)
		}
	}
	if len(data) == 0 {
		data = append(data, n-1)
	}
	return workload.Config{
		Topology:   topo,
		Profile:    profile,
		NumPeers:   n,
		DataPeers:  data,
		BaseSize:   3 + rng.Intn(10),
		Categories: 4,
		Seed:       rng.Int63(),
	}
}

// TestRandomSettingsBackendParity generates random settings and
// cross-checks the relational and graph backends on the target query
// and its trust evaluation — the strongest end-to-end invariant the
// system has.
func TestRandomSettingsBackendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20100611))
	for trial := 0; trial < 25; trial++ {
		cfg := randomConfig(rng)
		label := fmt.Sprintf("trial %d (%s/%s peers=%d data=%v base=%d)",
			trial, cfg.Topology, cfg.Profile, cfg.NumPeers, cfg.DataPeers, cfg.BaseSize)
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		eng := proql.NewEngine(set.Sys)
		for _, text := range []string{
			set.TargetQuery(),
			set.TargetAnnotationQuery(),
		} {
			q := proql.MustParse(text)
			rel, err := eng.Exec(context.Background(), q, proql.Options{})
			if err != nil {
				t.Fatalf("%s: relational: %v", label, err)
			}
			if rel.Stats.Backend != "relational" {
				t.Fatalf("%s: expected relational backend", label)
			}
			gr, err := eng.Exec(context.Background(), q, proql.Options{Backend: "graph"})
			if err != nil {
				t.Fatalf("%s: graph: %v", label, err)
			}
			leg, err := eng.Exec(context.Background(), q, proql.Options{Backend: "graph-legacy"})
			if err != nil {
				t.Fatalf("%s: legacy graph: %v", label, err)
			}
			relRefs := rel.SortedRefs("x")
			grRefs := gr.SortedRefs("x")
			legRefs := leg.SortedRefs("x")
			if len(relRefs) != len(grRefs) || len(relRefs) != len(legRefs) {
				t.Fatalf("%s: bindings %d (relational) vs %d (planned) vs %d (legacy)",
					label, len(relRefs), len(grRefs), len(legRefs))
			}
			for i := range relRefs {
				if relRefs[i] != grRefs[i] || relRefs[i] != legRefs[i] {
					t.Fatalf("%s: binding %d differs", label, i)
				}
			}
			if rel.MustGraph().NumDerivations() != gr.MustGraph().NumDerivations() ||
				leg.MustGraph().NumDerivations() != gr.MustGraph().NumDerivations() {
				t.Errorf("%s: projected derivations %d (relational) vs %d (planned) vs %d (legacy)", label,
					rel.MustGraph().NumDerivations(), gr.MustGraph().NumDerivations(), leg.MustGraph().NumDerivations())
			}
			if rel.Annotations != nil {
				for ref, v := range rel.Annotations {
					gv, ok := gr.Annotations[ref]
					if !ok || !rel.Semiring.Eq(v, gv) {
						t.Errorf("%s: annotation mismatch for %v", label, ref)
					}
					lv, ok := leg.Annotations[ref]
					if !ok || !rel.Semiring.Eq(v, lv) {
						t.Errorf("%s: legacy annotation mismatch for %v", label, ref)
					}
				}
			}
			// Every tuple of the target relation is derivable: the
			// binding count must equal the materialized table size.
			if got, want := len(relRefs), set.Sys.DB.MustTable(workload.ARel(0)).Len(); got != want {
				t.Errorf("%s: bindings %d, table has %d", label, got, want)
			}
		}
	}
}

// randomQuery draws a random ProQL query over a setting's A relations.
// The shapes cover both backends: anchored single-path queries the
// relational translation handles, and multi-path / derivation-variable
// / path-condition queries that route to the graph backend.
func randomQuery(rng *rand.Rand, numPeers int) (string, []string) {
	mid := 1 + rng.Intn(numPeers-1)
	any := rng.Intn(numPeers)
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf(`FOR [%s $x] INCLUDE PATH [$x] <-+ [] RETURN $x`, workload.ARel(any)), []string{"x"}
	case 1:
		return fmt.Sprintf(`FOR [%s $x] <-+ [%s $y] RETURN $x`, workload.ARel(0), workload.ARel(mid)), []string{"x"}
	case 2:
		return fmt.Sprintf(`FOR [%s $x] <-+ [$z], [%s $y] <-+ [$z] RETURN $x, $y`,
			workload.ARel(0), workload.ARel(mid)), []string{"x", "y"}
	case 3:
		return fmt.Sprintf(`FOR [$x] <$p [%s $y] RETURN $x, $y`, workload.ARel(any)), []string{"x", "y"}
	case 4:
		return fmt.Sprintf(`FOR [%s $x] WHERE $x.c >= %d RETURN $x`, workload.ARel(any), rng.Intn(4)), []string{"x"}
	default:
		return fmt.Sprintf(`FOR [%s $x] WHERE [$x] <-+ [%s] RETURN $x`, workload.ARel(0), workload.ARel(mid)), []string{"x"}
	}
}

// TestRandomQueriesDifferential generates random queries over random
// settings and cross-checks every evaluation path the engine has: the
// automatically chosen backend (Exec), the planned graph pipeline, and
// the legacy graph interpreter must agree on bindings and projected
// derivations.
func TestRandomQueriesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < 20; trial++ {
		cfg := randomConfig(rng)
		cfg.NumPeers = 2 + rng.Intn(3) // keep the legacy interpreter tractable
		cfg.BaseSize = 3 + rng.Intn(5)
		cfg.DataPeers = workload.UpstreamDataPeers(cfg.NumPeers, 1+rng.Intn(cfg.NumPeers))
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := proql.NewEngine(set.Sys)
		for qi := 0; qi < 4; qi++ {
			text, vars := randomQuery(rng, cfg.NumPeers)
			label := fmt.Sprintf("trial %d query %q", trial, text)
			q := proql.MustParse(text)
			auto, err := eng.Exec(context.Background(), q, proql.Options{})
			if err != nil {
				t.Fatalf("%s: exec: %v", label, err)
			}
			planned, err := eng.Exec(context.Background(), q, proql.Options{Backend: "graph"})
			if err != nil {
				t.Fatalf("%s: planned: %v", label, err)
			}
			legacy, err := eng.Exec(context.Background(), q, proql.Options{Backend: "graph-legacy"})
			if err != nil {
				t.Fatalf("%s: legacy: %v", label, err)
			}
			goal, err := eng.Exec(context.Background(), q, proql.Options{Backend: "asr"})
			if err != nil {
				t.Fatalf("%s: asr: %v", label, err)
			}
			for _, v := range vars {
				aRefs, pRefs, lRefs, sRefs := auto.SortedRefs(v), planned.SortedRefs(v), legacy.SortedRefs(v), goal.SortedRefs(v)
				if len(aRefs) != len(pRefs) || len(aRefs) != len(lRefs) || len(aRefs) != len(sRefs) {
					t.Fatalf("%s: $%s bindings %d (%s) vs %d (planned) vs %d (legacy) vs %d (asr)",
						label, v, len(aRefs), auto.Stats.Backend, len(pRefs), len(lRefs), len(sRefs))
				}
				for i := range aRefs {
					if aRefs[i] != pRefs[i] || aRefs[i] != lRefs[i] || aRefs[i] != sRefs[i] {
						t.Fatalf("%s: $%s binding %d differs", label, v, i)
					}
				}
			}
			if pd, ld := planned.MustGraph().NumDerivations(), legacy.MustGraph().NumDerivations(); pd != ld {
				t.Errorf("%s: projected derivations %d (planned) vs %d (legacy)", label, pd, ld)
			}
			if pd, sd := planned.MustGraph().NumDerivations(), goal.MustGraph().NumDerivations(); pd != sd {
				t.Errorf("%s: projected derivations %d (planned) vs %d (asr)", label, pd, sd)
			}
		}
	}
}

// TestRandomASRPreservation defines random ASR configurations over
// random linear settings and verifies rewritten queries return
// identical results.
func TestRandomASRPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(18071807))
	kinds := []asr.Kind{asr.CompletePath, asr.Subpath, asr.Prefix, asr.Suffix}
	for trial := 0; trial < 15; trial++ {
		cfg := randomConfig(rng)
		cfg.Profile = workload.ProfileLinear // long chains for meaningful ASRs
		cfg.NumPeers = 4 + rng.Intn(6)       // 4..9
		cfg.DataPeers = workload.UpstreamDataPeers(cfg.NumPeers, 1+rng.Intn(3))
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := proql.NewEngine(set.Sys)
		q := proql.MustParse(set.TargetQuery())
		base, err := eng.Exec(context.Background(), q, proql.Options{})
		if err != nil {
			t.Fatal(err)
		}
		kind := kinds[rng.Intn(len(kinds))]
		maxLen := 1 + rng.Intn(5)
		ix := asr.NewIndex(set.Sys)
		for _, chain := range set.AChains() {
			for _, seg := range workload.SplitChain(chain, maxLen) {
				if _, err := ix.Define(kind, seg...); err != nil {
					t.Fatalf("trial %d: define %v over %v: %v", trial, kind, seg, err)
				}
			}
		}
		if err := ix.Materialize(); err != nil {
			t.Fatal(err)
		}
		eng.RewriteRules = ix.RewriteRules
		opt, err := eng.Exec(context.Background(), q, proql.Options{})
		if err != nil {
			t.Fatalf("trial %d (%v len=%d): %v", trial, kind, maxLen, err)
		}
		baseRefs := base.SortedRefs("x")
		optRefs := opt.SortedRefs("x")
		if len(baseRefs) != len(optRefs) {
			t.Fatalf("trial %d (%v len=%d): bindings %d vs %d", trial, kind, maxLen, len(baseRefs), len(optRefs))
		}
		for i := range baseRefs {
			if baseRefs[i] != optRefs[i] {
				t.Fatalf("trial %d: binding %d differs", trial, i)
			}
		}
		if base.MustGraph().NumDerivations() != opt.MustGraph().NumDerivations() {
			t.Errorf("trial %d (%v len=%d): derivations %d vs %d", trial, kind, maxLen,
				base.MustGraph().NumDerivations(), opt.MustGraph().NumDerivations())
		}
	}
}

// TestRandomDeletionMatchesRebuild deletes random base tuples and
// compares the incrementally maintained instance against a rebuilt
// one.
func TestRandomDeletionMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 10; trial++ {
		cfg := randomConfig(rng)
		cfg.Profile = workload.ProfileLinear
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a random data peer and delete a random base tuple.
		peer := cfg.DataPeers[rng.Intn(len(cfg.DataPeers))]
		victim := int64(peer)*10_000_000 + int64(rng.Intn(cfg.BaseSize))
		if _, err := set.Sys.DeleteLocal(workload.ARel(peer), []model.Datum{victim}); err != nil {
			t.Fatal(err)
		}
		// The target query must still satisfy bindings == table size
		// and all-derivable trust.
		eng := proql.NewEngine(set.Sys)
		res, err := eng.ExecString(set.TargetAnnotationQuery())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(res.SortedRefs("x")), set.Sys.DB.MustTable(workload.ARel(0)).Len(); got != want {
			t.Errorf("trial %d: bindings %d, table %d", trial, got, want)
		}
		for ref, v := range res.Annotations {
			if v != true {
				t.Errorf("trial %d: %v survived maintenance but is not derivable", trial, ref)
			}
		}
	}
}

// TestRandomASRBackendAfterChurn cross-checks the asr and graph
// backends on random queries issued immediately after deletion and
// delta-insertion churn — the window where the asr adapter's lazily
// interned handles and the maintained graph are most likely to
// diverge from the tables if invalidation is wrong.
func TestRandomASRBackendAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 10; trial++ {
		cfg := randomConfig(rng)
		cfg.Profile = workload.ProfileLinear
		cfg.NumPeers = 2 + rng.Intn(3)
		cfg.DataPeers = workload.UpstreamDataPeers(cfg.NumPeers, 1+rng.Intn(cfg.NumPeers))
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := proql.NewEngine(set.Sys)
		// Warm both backends pre-churn so stale caches would be caught.
		if _, err := eng.Exec(context.Background(), proql.MustParse(set.TargetQuery()), proql.Options{Backend: "asr"}); err != nil {
			t.Fatalf("trial %d: warm asr: %v", trial, err)
		}
		if _, err := eng.Exec(context.Background(), proql.MustParse(set.TargetQuery()), proql.Options{Backend: "graph"}); err != nil {
			t.Fatalf("trial %d: warm graph: %v", trial, err)
		}
		for round := 0; round < 3; round++ {
			src := cfg.DataPeers[rng.Intn(len(cfg.DataPeers))]
			switch rng.Intn(2) {
			case 0:
				victim := int64(src)*10_000_000 + int64(rng.Intn(cfg.BaseSize))
				rep, err := set.Sys.DeleteLocal(workload.ARel(src), []model.Datum{victim})
				if err != nil {
					t.Fatalf("trial %d round %d: delete: %v", trial, round, err)
				}
				eng.MaintainGraph(rep)
			default:
				k := int64(src)*10_000_000 + int64(cfg.BaseSize) + int64(100*trial+round)
				row := model.Tuple{k, k % int64(cfg.Categories)}
				for a := 0; a < 10; a++ {
					row = append(row, k+int64(a))
				}
				if err := set.Sys.InsertLocal(workload.ARel(src), row); err != nil {
					t.Fatalf("trial %d round %d: insert: %v", trial, round, err)
				}
				rep, err := set.Sys.RunDelta()
				if err != nil {
					t.Fatalf("trial %d round %d: delta: %v", trial, round, err)
				}
				eng.MaintainGraphInsert(rep)
			}
			// Query immediately after the churn.
			text, vars := randomQuery(rng, cfg.NumPeers)
			q := proql.MustParse(text)
			gr, err := eng.Exec(context.Background(), q, proql.Options{Backend: "graph"})
			if err != nil {
				t.Fatalf("trial %d round %d %q: graph: %v", trial, round, text, err)
			}
			goal, err := eng.Exec(context.Background(), q, proql.Options{Backend: "asr"})
			if err != nil {
				t.Fatalf("trial %d round %d %q: asr: %v", trial, round, text, err)
			}
			for _, v := range vars {
				gRefs, sRefs := gr.SortedRefs(v), goal.SortedRefs(v)
				if len(gRefs) != len(sRefs) {
					t.Fatalf("trial %d round %d %q: $%s bindings %d (graph) vs %d (asr)",
						trial, round, text, v, len(gRefs), len(sRefs))
				}
				for i := range gRefs {
					if gRefs[i] != sRefs[i] {
						t.Fatalf("trial %d round %d %q: $%s binding %d differs", trial, round, text, v, i)
					}
				}
			}
			if gd, sd := gr.MustGraph().NumDerivations(), goal.MustGraph().NumDerivations(); gd != sd {
				t.Errorf("trial %d round %d %q: projected derivations %d (graph) vs %d (asr)",
					trial, round, text, gd, sd)
			}
		}
	}
}
