package proql_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asr"
	"repro/internal/model"
	"repro/internal/proql"
	"repro/internal/workload"
)

// randomConfig draws a small random CDSS setting.
func randomConfig(rng *rand.Rand) workload.Config {
	topo := workload.Chain
	if rng.Intn(2) == 1 {
		topo = workload.Branched
	}
	profile := workload.ProfileLinear
	if rng.Intn(3) == 0 {
		profile = workload.ProfileFan
	}
	n := 2 + rng.Intn(5) // 2..6 peers
	// Random non-empty subset of peers with data.
	var data []int
	for p := 0; p < n; p++ {
		if rng.Intn(2) == 0 {
			data = append(data, p)
		}
	}
	if len(data) == 0 {
		data = append(data, n-1)
	}
	return workload.Config{
		Topology:   topo,
		Profile:    profile,
		NumPeers:   n,
		DataPeers:  data,
		BaseSize:   3 + rng.Intn(10),
		Categories: 4,
		Seed:       rng.Int63(),
	}
}

// TestRandomSettingsBackendParity generates random settings and
// cross-checks the relational and graph backends on the target query
// and its trust evaluation — the strongest end-to-end invariant the
// system has.
func TestRandomSettingsBackendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20100611))
	for trial := 0; trial < 25; trial++ {
		cfg := randomConfig(rng)
		label := fmt.Sprintf("trial %d (%s/%s peers=%d data=%v base=%d)",
			trial, cfg.Topology, cfg.Profile, cfg.NumPeers, cfg.DataPeers, cfg.BaseSize)
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		eng := proql.NewEngine(set.Sys)
		for _, text := range []string{
			set.TargetQuery(),
			set.TargetAnnotationQuery(),
		} {
			q := proql.MustParse(text)
			rel, err := eng.Exec(q)
			if err != nil {
				t.Fatalf("%s: relational: %v", label, err)
			}
			if rel.Stats.Backend != "relational" {
				t.Fatalf("%s: expected relational backend", label)
			}
			gr, err := eng.ExecGraph(q)
			if err != nil {
				t.Fatalf("%s: graph: %v", label, err)
			}
			relRefs := rel.SortedRefs("x")
			grRefs := gr.SortedRefs("x")
			if len(relRefs) != len(grRefs) {
				t.Fatalf("%s: bindings %d vs %d", label, len(relRefs), len(grRefs))
			}
			for i := range relRefs {
				if relRefs[i] != grRefs[i] {
					t.Fatalf("%s: binding %d differs", label, i)
				}
			}
			if rel.MustGraph().NumDerivations() != gr.MustGraph().NumDerivations() {
				t.Errorf("%s: projected derivations %d vs %d", label,
					rel.MustGraph().NumDerivations(), gr.MustGraph().NumDerivations())
			}
			if rel.Annotations != nil {
				for ref, v := range rel.Annotations {
					gv, ok := gr.Annotations[ref]
					if !ok || !rel.Semiring.Eq(v, gv) {
						t.Errorf("%s: annotation mismatch for %v", label, ref)
					}
				}
			}
			// Every tuple of the target relation is derivable: the
			// binding count must equal the materialized table size.
			if got, want := len(relRefs), set.Sys.DB.MustTable(workload.ARel(0)).Len(); got != want {
				t.Errorf("%s: bindings %d, table has %d", label, got, want)
			}
		}
	}
}

// TestRandomASRPreservation defines random ASR configurations over
// random linear settings and verifies rewritten queries return
// identical results.
func TestRandomASRPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(18071807))
	kinds := []asr.Kind{asr.CompletePath, asr.Subpath, asr.Prefix, asr.Suffix}
	for trial := 0; trial < 15; trial++ {
		cfg := randomConfig(rng)
		cfg.Profile = workload.ProfileLinear // long chains for meaningful ASRs
		cfg.NumPeers = 4 + rng.Intn(6)       // 4..9
		cfg.DataPeers = workload.UpstreamDataPeers(cfg.NumPeers, 1+rng.Intn(3))
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := proql.NewEngine(set.Sys)
		q := proql.MustParse(set.TargetQuery())
		base, err := eng.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		kind := kinds[rng.Intn(len(kinds))]
		maxLen := 1 + rng.Intn(5)
		ix := asr.NewIndex(set.Sys)
		for _, chain := range set.AChains() {
			for _, seg := range workload.SplitChain(chain, maxLen) {
				if _, err := ix.Define(kind, seg...); err != nil {
					t.Fatalf("trial %d: define %v over %v: %v", trial, kind, seg, err)
				}
			}
		}
		if err := ix.Materialize(); err != nil {
			t.Fatal(err)
		}
		eng.RewriteRules = ix.RewriteRules
		opt, err := eng.Exec(q)
		if err != nil {
			t.Fatalf("trial %d (%v len=%d): %v", trial, kind, maxLen, err)
		}
		baseRefs := base.SortedRefs("x")
		optRefs := opt.SortedRefs("x")
		if len(baseRefs) != len(optRefs) {
			t.Fatalf("trial %d (%v len=%d): bindings %d vs %d", trial, kind, maxLen, len(baseRefs), len(optRefs))
		}
		for i := range baseRefs {
			if baseRefs[i] != optRefs[i] {
				t.Fatalf("trial %d: binding %d differs", trial, i)
			}
		}
		if base.MustGraph().NumDerivations() != opt.MustGraph().NumDerivations() {
			t.Errorf("trial %d (%v len=%d): derivations %d vs %d", trial, kind, maxLen,
				base.MustGraph().NumDerivations(), opt.MustGraph().NumDerivations())
		}
	}
}

// TestRandomDeletionMatchesRebuild deletes random base tuples and
// compares the incrementally maintained instance against a rebuilt
// one.
func TestRandomDeletionMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 10; trial++ {
		cfg := randomConfig(rng)
		cfg.Profile = workload.ProfileLinear
		set, err := workload.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a random data peer and delete a random base tuple.
		peer := cfg.DataPeers[rng.Intn(len(cfg.DataPeers))]
		victim := int64(peer)*10_000_000 + int64(rng.Intn(cfg.BaseSize))
		if _, err := set.Sys.DeleteLocal(workload.ARel(peer), []model.Datum{victim}); err != nil {
			t.Fatal(err)
		}
		// The target query must still satisfy bindings == table size
		// and all-derivable trust.
		eng := proql.NewEngine(set.Sys)
		res, err := eng.ExecString(set.TargetAnnotationQuery())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(res.SortedRefs("x")), set.Sys.DB.MustTable(workload.ARel(0)).Len(); got != want {
			t.Errorf("trial %d: bindings %d, table %d", trial, got, want)
		}
		for ref, v := range res.Annotations {
			if v != true {
				t.Errorf("trial %d: %v survived maintenance but is not derivable", trial, ref)
			}
		}
	}
}
