package proql

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestPlanCacheConcurrentSameShape hammers one engine with the same
// query shape (varying constants) from many goroutines across all
// three backends. Under -race this exercises the plan cache's mutex,
// the graph latch, and the ASR adapter's refcounting; afterwards the
// stats must balance: every execution was either a hit or a miss, and
// the shape interned exactly one entry per backend.
func TestPlanCacheConcurrentSameShape(t *testing.T) {
	for _, backend := range []string{"relational", "graph", "asr"} {
		e := exampleEngine(t)
		e.Backend = backend

		const goroutines = 8
		const iters = 25
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					n := (seed + i) % 9
					q := MustParse(fmt.Sprintf(`FOR [A $x] WHERE $x.length >= %d RETURN $x`, n))
					res, err := e.Exec(context.Background(), q, Options{})
					if err != nil {
						t.Errorf("%s: goroutine %d: %v", backend, seed, err)
						return
					}
					// A_l rows have length 7 and 5 (Figure 1): the hit
					// path must still apply the current constant.
					want := 2
					if n > 5 {
						want = 1
					}
					if n > 7 {
						want = 0
					}
					if got := len(res.SortedRefs("x")); got != want {
						t.Errorf("%s: length >= %d returned %d rows, want %d", backend, n, got, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()

		st := e.PlanCacheStats()
		if st.Hits+st.Misses != goroutines*iters {
			t.Errorf("%s: hits(%d)+misses(%d) != %d executions", backend, st.Hits, st.Misses, goroutines*iters)
		}
		// Concurrent first executions may each miss and store, but the
		// map must converge to one entry for the single shape.
		if st.Entries != 1 {
			t.Errorf("%s: entries = %d, want 1", backend, st.Entries)
		}
		if st.Hits == 0 {
			t.Errorf("%s: no cache hits across %d executions", backend, goroutines*iters)
		}
	}
}
