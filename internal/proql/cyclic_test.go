package proql

import (
	"testing"

	"repro/internal/fixture"
	"repro/internal/semiring"
)

// cyclicEngine builds the running example *with* mapping m3, which
// makes C and N derive each other — a recursive mapping set whose
// Datalog program the relational backend cannot unfold (paper footnote
// 4). The engine must route such queries to the graph backend, whose
// fixpoint evaluation (Section 2.1 "Cycles") handles them.
func cyclicEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(fixture.MustSystem(fixture.Options{IncludeM3: true}))
}

// nQuery anchors the target query at N, whose backward schema paths
// include the C ⇄ N recursion (anchoring at O stays acyclic: matching
// prunes paths that revisit a relation, so the relational backend
// legitimately handles it).
const nQuery = `FOR [N $x] INCLUDE PATH [$x] <-+ [] RETURN $x`

func TestCyclicCompileRejected(t *testing.T) {
	e := cyclicEngine(t)
	_, err := CompileUnfold(e.Sys, MustParse(nQuery))
	if err == nil {
		t.Fatal("recursive mapping set should not compile for the relational backend")
	}
	if _, ok := err.(*ErrNotRelational); !ok {
		t.Fatalf("error should be ErrNotRelational, got %T: %v", err, err)
	}
}

func TestCyclicFallsBackToGraphBackend(t *testing.T) {
	e := cyclicEngine(t)
	res, err := e.ExecString(nQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "graph" {
		t.Fatalf("backend = %s, want graph", res.Stats.Backend)
	}
	// N holds: (1,cn1,false), (1,sn1,true), (2,sn2,true), (2,cn2,false).
	if got := len(res.SortedRefs("x")); got != 4 {
		t.Errorf("bindings = %d, want 4", got)
	}
	// The projection includes the m3 derivations participating in the
	// C ⇄ N cycle.
	foundM3 := false
	for _, d := range res.MustGraph().Derivations() {
		if d.Mapping == "m3" {
			foundM3 = true
		}
	}
	if !foundM3 {
		t.Error("cyclic projection should include m3 derivations")
	}
}

func TestCyclicDerivabilityFixpoint(t *testing.T) {
	e := cyclicEngine(t)
	res, err := e.ExecString(`EVALUATE DERIVABILITY OF { ` + nQuery + ` }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Backend != "graph" {
		t.Fatalf("backend = %s", res.Stats.Backend)
	}
	for ref, v := range res.Annotations {
		if v != true {
			t.Errorf("%v should be derivable over the cyclic graph", ref)
		}
	}
}

func TestCyclicCountRejected(t *testing.T) {
	// The counting semiring diverges on cycles; evaluation must refuse
	// rather than loop (Section 2.1: counts may not converge).
	e := cyclicEngine(t)
	_, err := e.ExecString(`EVALUATE COUNT OF { ` + nQuery + ` }`)
	if err == nil {
		t.Fatal("COUNT over a cyclic projection should be rejected")
	}
}

func TestCyclicTrustWithDistrustedLeaf(t *testing.T) {
	// Dropping N(1,cn1,false)'s leaf support must not let the C ⇄ N
	// cycle bootstrap itself (least-fixpoint semantics).
	e := cyclicEngine(t)
	res, err := e.ExecString(`EVALUATE TRUST OF {
		FOR [C $x] INCLUDE PATH [$x] <-+ [] RETURN $x
	} ASSIGNING EACH leaf_node $y {
		CASE $y in N : SET false
		DEFAULT : SET true
	}`)
	if err != nil {
		t.Fatal(err)
	}
	refC1 := refC(1, "cn1")
	v, ok := res.Annotations[refC1]
	if !ok {
		t.Fatal("missing annotation for C(1,cn1)")
	}
	if v != false {
		t.Errorf("C(1,cn1) should be untrusted: its only support cycles through the distrusted N leaf, got %v",
			res.Semiring.Format(v))
	}
	// C(2,cn2) is itself a trusted leaf.
	if v := res.Annotations[refC(2, "cn2")]; v != true {
		t.Errorf("C(2,cn2) should stay trusted, got %v", v)
	}
}

func TestCyclicLineage(t *testing.T) {
	e := cyclicEngine(t)
	res, err := e.ExecString(`EVALUATE LINEAGE OF {
		FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }`)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Annotations[refO("cn1", 7)]
	if !ok {
		t.Fatal("missing annotation")
	}
	ls := v.(semiring.LineageSet)
	if !ls.Contains(refA(1).String()) {
		t.Errorf("lineage should include A(1): %v", ls.IDs)
	}
}
